package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tanoq/internal/experiments"
	"tanoq/internal/scenario"
)

// newFlagSet builds one subcommand's flag set with its own usage text:
// synopsis is the one-line invocation form, body the subcommand's help
// paragraphs (printed above the flag defaults).
func newFlagSet(name, synopsis, body string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: %s\n", synopsis)
		if body != "" {
			fmt.Fprintln(fs.Output(), body)
		}
		fmt.Fprintln(fs.Output(), "flags:")
		fs.PrintDefaults()
	}
	return fs
}

// simFlags are the simulation knobs shared by every cell-running
// subcommand (sweep, degrade, trace, bench, and the experiment drivers):
// the RNG seed, the warmup/measure schedule, worker fan-out, idle
// skipping and the quick scale.
type simFlags struct {
	seed     uint64
	warmup   int
	measure  int
	parallel int
	skip     bool
	quick    bool
}

// addSimFlags registers the shared simulation flags on a subcommand's
// flag set.
func addSimFlags(fs *flag.FlagSet) *simFlags {
	s := &simFlags{}
	fs.Uint64Var(&s.seed, "seed", 42, "RNG seed")
	fs.IntVar(&s.warmup, "warmup", 20_000, "warmup cycles before measurement")
	fs.IntVar(&s.measure, "measure", 100_000, "measurement window in cycles")
	fs.IntVar(&s.parallel, "parallel", 0, "simulation workers (0 = one per CPU, 1 = sequential; results identical)")
	fs.BoolVar(&s.skip, "skip", true, "fast-forward over idle cycle windows (results identical either way)")
	fs.BoolVar(&s.quick, "quick", false, "scale runs down for a fast smoke pass")
	return s
}

// explicitFlags reports which flags the user actually passed (by name);
// parse the set first.
func explicitFlags(fs *flag.FlagSet) map[string]bool {
	m := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { m[f.Name] = true })
	return m
}

// params assembles experiment parameters from the shared flags, with
// -quick's scale below any explicitly-set schedule flag.
func (s *simFlags) params(explicit map[string]bool) experiments.Params {
	p := experiments.Params{Seed: s.seed, Warmup: s.warmup, Measure: s.measure}
	if s.quick {
		p = experiments.QuickParams()
		p.Seed = s.seed
		if explicit["warmup"] {
			p.Warmup = s.warmup
		}
		if explicit["measure"] {
			p.Measure = s.measure
		}
	}
	p.Workers = s.parallel
	p.DisableIdleSkip = !s.skip
	return p
}

// multiFlag collects a repeatable string flag (-set key=value).
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ", ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// layerOpts names the CLI-side layers of the scenario resolver pipeline,
// shared by sweep, degrade and trace record. Precedence, lowest first:
// include chain < file < profile < TANOQ_SET_* env < -quick <
// explicit -seed/-warmup/-measure < -set.
type layerOpts struct {
	sim      *simFlags
	explicit map[string]bool
	params   experiments.Params
	profile  string
	set      []string
}

// loadLayered resolves a scenario argument ("file", "file#profile", or a
// built-in name) through the layered resolver. Built-ins predate the raw
// key-value tree, so only the dedicated schedule flags apply to them;
// profiles and -set need a file. The Resolution is nil for built-ins.
func loadLayered(arg string, lo layerOpts) (*scenario.Scenario, *scenario.Resolution, error) {
	path, prof := scenario.SplitProfile(arg)
	if lo.profile != "" {
		prof = lo.profile
	}
	if !fileScenario(path) {
		if prof != "" || len(lo.set) > 0 {
			return nil, nil, fmt.Errorf("scenario %q is a built-in: -profile and -set need a scenario file", path)
		}
		sc, err := scenario.Load(path)
		if err != nil {
			return nil, nil, err
		}
		if lo.sim.quick {
			q := experiments.QuickParams()
			sc.Warmup, sc.Measure = q.Warmup, q.Measure
		}
		if lo.explicit["seed"] {
			sc.Seeds = []uint64{lo.params.Seed}
		}
		if lo.explicit["warmup"] {
			sc.Warmup = lo.params.Warmup
		}
		if lo.explicit["measure"] {
			sc.Measure = lo.params.Measure
		}
		if err := sc.Validate(); err != nil {
			return nil, nil, err
		}
		return sc, nil, nil
	}
	layers := []scenario.Layer{scenario.FileLayer(path)}
	if prof != "" {
		layers = append(layers, scenario.ProfileLayer(prof))
	}
	layers = append(layers, scenario.EnvLayer(os.Environ()))
	if lo.sim.quick {
		q := experiments.QuickParams()
		layers = append(layers, scenario.OverrideLayer("-quick",
			fmt.Sprintf("warmup=%d", q.Warmup), fmt.Sprintf("measure=%d", q.Measure)))
	}
	if lo.explicit["seed"] {
		layers = append(layers, scenario.OverrideLayer("-seed", fmt.Sprintf("seed=%d", lo.params.Seed)))
	}
	if lo.explicit["warmup"] {
		layers = append(layers, scenario.OverrideLayer("-warmup", fmt.Sprintf("warmup=%d", lo.params.Warmup)))
	}
	if lo.explicit["measure"] {
		layers = append(layers, scenario.OverrideLayer("-measure", fmt.Sprintf("measure=%d", lo.params.Measure)))
	}
	if len(lo.set) > 0 {
		layers = append(layers, scenario.SetLayer(lo.set...))
	}
	return scenario.Resolve(layers...)
}

// fileScenario reports whether a scenario argument names a file (exists,
// or looks like a path) rather than a built-in scenario.
func fileScenario(p string) bool {
	if _, err := os.Stat(p); err == nil {
		return true
	}
	return strings.ContainsAny(p, "/\\.")
}
