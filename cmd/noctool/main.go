// Command noctool regenerates the tables and figures of "Topology-aware
// Quality-of-Service Support in Highly Integrated Chip Multiprocessors"
// (Grot, Keckler, Mutlu — WIOSCA 2010) from the tanoq simulator.
//
// Usage:
//
//	noctool [flags] <experiment>...
//
// Experiments:
//
//	fig3     router area overhead per topology
//	fig4a    latency vs injection rate, uniform random
//	fig4b    latency vs injection rate, tornado
//	preempt  Section 5.2 in-saturation packet replay rates
//	table2   hotspot fairness (per-flow throughput dispersion)
//	fig5     preemption rates under adversarial Workloads 1 and 2
//	fig6     preemption slowdown and max-min deviation, Workloads 1 and 2
//	fig7     router energy per flit by hop type
//	chip        chip-level QoS hardware savings of the topology-aware design
//	motivation  Section 1's starvation demonstration (no-QoS vs PVC)
//	ablate      PVC design-parameter sweeps (beyond the paper)
//	closed      closed-loop hotspot clients: per-client completed-request
//	            dispersion and round-trip latency per topology x QoS mode
//	            (the workload class where QoS moves end-to-end throughput)
//	bench       machine-readable engine benchmarks -> BENCH_<date>.json
//	all         the paper's artifacts (fig3..motivation) in paper order;
//	            ablate, closed, bench and sweep run separately
//
//	sweep <scenario>
//	            expand and run a declarative scenario file (.json/.toml,
//	            see internal/scenario) or built-in scenario name; the
//	            explicitly-set -seed/-warmup/-measure flags override the
//	            file's values, and -out writes machine-readable JSON.
//	            With -cache (or a [run] table with cache = true) the
//	            sweep runs durably: each cell's result is memoized in a
//	            content-addressed store under -cache-dir, completed cells
//	            are journaled as they finish, SIGINT/SIGTERM drains
//	            in-flight cells and checkpoints before exiting, and
//	            -resume serves the finished rows from the cache and runs
//	            only what is missing — bit-identical to an uninterrupted
//	            run. -cache-verify N re-executes N cached hits and fails
//	            on any divergence.
//
//	version     print the engine version stamp (set at build time via
//	            -ldflags; "dev" otherwise) that is embedded in cache
//	            keys, BENCH_*.json and v2 trace headers
//
//	degrade <scenario>
//	            degradation sweep of a scenario with a [faults] table: run
//	            the faulted grid and a fault-free baseline, and report per
//	            point the delivered fraction, retry/drop counts, victim
//	            slowdown and mean/p99 latency inflation per QoS mode
//	            (-out writes the CSV rows)
//
//	trace record <scenario>   capture a single-cell scenario's injection
//	            stream into a binary trace (-out names the file) and
//	            print its delivery fingerprint
//	trace replay <file>       replay a recorded trace as a first-class
//	            workload in the recorded cell; an open-loop recording
//	            reproduces its fingerprint exactly
//	trace info <file>         print a trace's header and record stats
//
// Flags:
//
//	-seed      RNG seed (default 42)
//	-warmup    warmup cycles before measurement (default 20000)
//	-measure   measurement window in cycles (default 100000)
//	-parallel  worker goroutines for independent simulation cells
//	           (default 0 = one per CPU; 1 = sequential; results are
//	           bit-identical for every value)
//	-skip      fast-forward the engine clock over provably idle cycle
//	           windows (default true; results are bit-identical either
//	           way — disable only to benchmark the tick-driven engine)
//	-quick     scale runs down ~6x for a fast smoke pass
//	-csv       emit CSV rows instead of formatted tables
//	-out       output path for bench's/sweep's JSON
//	-note      free-form annotation stored in bench's JSON
//	-baseline  bench only: committed BENCH_*.json to compare engine
//	           ns/cycle against, failing the run on regression
//	-maxregress  bench only: tolerated fractional ns/cycle regression
//	           against -baseline (default 0.25)
//	-engine-only  bench only: measure just the per-topology engine step
//	           cost (the section -baseline compares), skipping the
//	           wall-clock grids
//	-cpuprofile  bench only: write a runtime/pprof CPU profile of the
//	           benchmark run to the given file
//	-memprofile  bench only: write a heap profile at the end of the run
//	           to the given file
//	-cache     sweep only: memoize cell results in the content-addressed
//	           store and serve hits without simulating
//	-cache-dir sweep only: result store directory (default .tanoq-cache)
//	-resume    sweep only: resume an interrupted sweep from the cache
//	           (implies -cache)
//	-cache-verify  sweep only: re-execute up to N cached hits and fail
//	           the run if any recomputed row diverges from its cache
//	-deadline  sweep only: wall-clock budget per simulation cell (0 =
//	           none); a cell that exceeds it is aborted and retried
//	-retries   sweep only: extra attempts per failed cell (default 1;
//	           0 disables retries)
//	-backoff   sweep only: base delay before retrying a failed cell,
//	           doubling per attempt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tanoq/internal/experiments"
	"tanoq/internal/network"
	"tanoq/internal/store"
	"tanoq/internal/topology"
)

func main() {
	seed := flag.Uint64("seed", 42, "RNG seed")
	warmup := flag.Int("warmup", 20_000, "warmup cycles before measurement")
	measure := flag.Int("measure", 100_000, "measurement window in cycles")
	parallel := flag.Int("parallel", 0, "simulation workers (0 = one per CPU, 1 = sequential; results identical)")
	skip := flag.Bool("skip", true, "fast-forward over idle cycle windows (results identical either way)")
	quick := flag.Bool("quick", false, "scale runs down for a fast smoke pass")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	out := flag.String("out", "", "output path for bench's/sweep's JSON")
	note := flag.String("note", "", "free-form annotation stored in bench's JSON")
	baseline := flag.String("baseline", "", "bench: BENCH_*.json baseline to compare engine ns/cycle against")
	maxRegress := flag.Float64("maxregress", 0.25, "bench: tolerated fractional ns/cycle regression vs -baseline")
	engineOnly := flag.Bool("engine-only", false, "bench: measure only the per-topology engine step cost")
	cpuProfile := flag.String("cpuprofile", "", "bench: write a CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "bench: write a heap profile at the end of the run to this file")
	cache := flag.Bool("cache", false, "sweep: memoize cell results in the content-addressed store")
	cacheDir := flag.String("cache-dir", store.DefaultDir, "sweep: result store directory")
	resume := flag.Bool("resume", false, "sweep: resume an interrupted sweep from the cache (implies -cache)")
	cacheVerify := flag.Int("cache-verify", 0, "sweep: re-execute up to N cached hits and fail on divergence")
	deadline := flag.Duration("deadline", 0, "sweep: wall-clock budget per cell (0 = none)")
	retries := flag.Int("retries", 1, "sweep: extra attempts per failed cell (0 disables retries)")
	backoff := flag.Duration("backoff", 0, "sweep: base retry delay, doubling per attempt")
	flag.Usage = usage
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	p := experiments.Params{Seed: *seed, Warmup: *warmup, Measure: *measure}
	if *quick {
		p = experiments.QuickParams()
		p.Seed = *seed
		// An explicitly-set schedule flag beats -quick's defaults, so
		// `-quick -warmup 500` means quick scale with a 500-cycle warmup.
		if explicit["warmup"] {
			p.Warmup = *warmup
		}
		if explicit["measure"] {
			p.Measure = *measure
		}
	}
	p.Workers = *parallel
	p.DisableIdleSkip = !*skip

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	for i := 0; i < len(args); i++ {
		var err error
		switch arg := strings.ToLower(args[i]); arg {
		case "bench":
			err = runBench(p, benchOpts{
				outPath: *out, note: *note,
				baseline: *baseline, maxRegress: *maxRegress, engineOnly: *engineOnly,
				cpuProfile: *cpuProfile, memProfile: *memProfile,
			})
		case "sweep":
			if i+1 >= len(args) {
				err = fmt.Errorf("sweep needs a scenario file or built-in name")
			} else {
				i++
				err = runSweep(args[i], sweepOpts{
					params: p, explicit: explicit, quick: *quick, csv: *csv, outPath: *out,
					cache: *cache, cacheDir: *cacheDir, resume: *resume, verify: *cacheVerify,
					deadline: *deadline, retries: *retries, backoff: *backoff,
				})
			}
		case "degrade":
			if i+1 >= len(args) {
				err = fmt.Errorf("degrade needs a scenario file with a [faults] table")
			} else {
				i++
				err = runDegrade(args[i], sweepOpts{
					params: p, explicit: explicit, quick: *quick, csv: *csv, outPath: *out,
				})
			}
		case "version":
			fmt.Printf("tanoq engine %s\n", network.EngineVersion())
		case "trace":
			if i+2 >= len(args) {
				err = fmt.Errorf("trace needs a verb and a target: trace record <scenario> | trace replay <file> | trace info <file>")
			} else {
				verb, target := args[i+1], args[i+2]
				i += 2
				err = runTrace(verb, target, traceOpts{
					params: p, explicit: explicit, quick: *quick, outPath: *out,
				})
			}
		default:
			err = run(arg, p, *quick, *csv)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "noctool: %v\n", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: noctool [flags] <experiment>... | sweep <scenario> | degrade <scenario> | trace record|replay|info <target> | version

experiments: fig3 fig4a fig4b preempt table2 fig5 fig6 fig7 chip motivation ablate closed bench all
sweep runs a declarative scenario file (.json/.toml) or built-in scenario;
  -cache/-resume make it durable (content-addressed result store, checkpoint
  on SIGINT/SIGTERM, bit-identical resume), -deadline/-retries/-backoff bound
  wedged cells, -cache-verify audits cached rows against re-execution
degrade runs a faulted scenario against its fault-free baseline (delivered fraction, victim slowdown, p99 inflation)
trace records a single-cell scenario's injection stream / replays a trace / prints its stats
version prints the engine version stamp embedded in cache keys and reports
flags:
`)
	flag.PrintDefaults()
}

func run(name string, p experiments.Params, quick, csv bool) error {
	switch name {
	case "fig3":
		rows := experiments.Fig3()
		if csv {
			fmt.Print(experiments.Fig3CSV(rows))
		} else {
			fmt.Println(experiments.RenderFig3(rows))
		}
	case "fig4a", "fig4b":
		pattern := experiments.Uniform
		if name == "fig4b" {
			pattern = experiments.TornadoPattern
		}
		rates := experiments.DefaultFig4Rates()
		if quick {
			rates = experiments.QuickFig4Rates()
		}
		series := experiments.Fig4(pattern, rates, p)
		if csv {
			fmt.Print(experiments.Fig4CSV(series))
		} else {
			fmt.Println(experiments.RenderFig4(pattern, series))
		}
	case "preempt":
		fmt.Println(experiments.RenderSaturationPreemptions(experiments.SaturationPreemptions(p)))
	case "table2":
		tp := experiments.Table2Params()
		if quick {
			tp = p
		}
		tp.Seed = p.Seed
		tp.Workers = p.Workers
		rows := experiments.Table2(tp)
		if csv {
			fmt.Print(experiments.Table2CSV(rows))
		} else {
			fmt.Println(experiments.RenderTable2(rows))
		}
	case "fig5":
		for _, wl := range []experiments.Adversarial{experiments.Workload1, experiments.Workload2} {
			rows := experiments.Fig5(wl, p)
			if csv {
				fmt.Print(experiments.Fig5CSV(rows))
			} else {
				fmt.Println(experiments.RenderFig5(wl, rows))
			}
		}
	case "fig6":
		for _, wl := range []experiments.Adversarial{experiments.Workload1, experiments.Workload2} {
			rows := experiments.Fig6(wl, p)
			if csv {
				fmt.Print(experiments.Fig6CSV(rows))
			} else {
				fmt.Println(experiments.RenderFig6(wl, rows))
			}
		}
	case "fig7":
		rows := experiments.Fig7()
		if csv {
			fmt.Print(experiments.Fig7CSV(rows))
		} else {
			fmt.Println(experiments.RenderFig7(rows))
		}
	case "chip":
		fmt.Println(experiments.RenderChipCost(experiments.ChipCost()))
	case "closed":
		rows := experiments.ClosedLoop(p)
		if csv {
			fmt.Print(experiments.ClosedLoopCSV(rows))
		} else {
			fmt.Println(experiments.RenderClosedLoop(rows))
		}
	case "motivation":
		rows := experiments.Motivation(topology.MeshX1, p)
		fmt.Println(experiments.RenderMotivation(topology.MeshX1, rows))
	case "ablate":
		fmt.Println(experiments.RenderAblation(
			"Ablation: PVC frame duration (hotspot fairness, DPS)", "frame",
			experiments.AblateFrame(topology.DPS, experiments.DefaultFrameSweep, p)))
		fmt.Println(experiments.RenderAblation(
			"Ablation: priority quantum (hotspot fairness, DPS)", "quantum",
			experiments.AblateQuantum(topology.DPS, experiments.DefaultQuantumSweep, p)))
		fmt.Println(experiments.RenderAblation(
			"Ablation: retransmission window (single fast distant flow, mesh x1)", "window",
			experiments.AblateWindow(topology.MeshX1, experiments.DefaultWindowSweep, p)))
		fmt.Println(experiments.RenderMarginAblation(
			experiments.AblateMargin(topology.MeshX1, experiments.DefaultMarginSweep, p)))
		fmt.Println(experiments.RenderQuotaAblation(
			experiments.AblateQuota(topology.MeshX1, p)))
	case "all":
		for _, e := range []string{"fig3", "fig4a", "fig4b", "preempt", "table2", "fig5", "fig6", "fig7", "chip", "motivation"} {
			if err := run(e, p, quick, csv); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
