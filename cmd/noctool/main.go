// Command noctool regenerates the tables and figures of "Topology-aware
// Quality-of-Service Support in Highly Integrated Chip Multiprocessors"
// (Grot, Keckler, Mutlu — WIOSCA 2010) from the tanoq simulator.
//
// Usage:
//
//	noctool <subcommand> [flags] [args]
//	noctool [flags] <experiment>...
//
// Subcommands (each has its own flag set; run `noctool <cmd> -h`):
//
//	sweep <scenario>[#profile]
//	            expand and run a declarative scenario file (.json/.toml,
//	            see internal/scenario) or built-in scenario name. Files
//	            resolve through the layered pipeline — defaults < include
//	            chain < file < -profile (or a #profile suffix) <
//	            TANOQ_SET_* environment < -quick/-seed/-warmup/-measure <
//	            -set key=value — and -explain prints the resolved keys
//	            with per-key provenance instead of running. With -cache
//	            (or cache = true in the scenario's [run] table) the sweep
//	            runs durably: cell results are memoized in a
//	            content-addressed store under -cache-dir, completed cells
//	            are journaled as they finish, SIGINT/SIGTERM drains
//	            in-flight cells and checkpoints before exiting, and
//	            -resume serves the finished rows from the cache and runs
//	            only what is missing — bit-identical to an uninterrupted
//	            run. -cache-verify N re-executes N cached hits and fails
//	            on any divergence. -progress prints throttled ETA lines,
//	            -http ADDR serves live Prometheus /metrics and
//	            /debug/pprof/* while the sweep runs (-http-linger keeps
//	            the endpoint up afterwards), and -timeline PATH writes
//	            per-cell telemetry series when the scenario has a
//	            [telemetry] table.
//
//	degrade <scenario>[#profile]
//	            degradation sweep of a scenario with a [faults] table: run
//	            the faulted grid and a fault-free baseline, and report per
//	            point the delivered fraction, retry/drop counts, victim
//	            slowdown and mean/p99 latency inflation per QoS mode
//	            (-out writes the CSV rows)
//
//	timeline <scenario>[#profile]
//	            run a scenario with in-run telemetry probes ([telemetry]
//	            table or -interval) and print each cell's per-interval
//	            time series as a compact table, the per-router VC
//	            occupancy heatmap (-heatmap), or JSON/CSV (-json, -out);
//	            probes ride the event calendar, so results stay
//	            bit-identical to an unprobed run
//
//	trace record <scenario>[#profile]   capture a single-cell scenario's
//	            injection stream into a binary trace (-out names the
//	            file) and print its delivery fingerprint
//	trace replay <file>       replay a recorded trace as a first-class
//	            workload in the recorded cell; an open-loop recording
//	            reproduces its fingerprint exactly
//	trace info <file>         print a trace's header and record stats
//	            (-stats adds per-flow record counts and cycle spans)
//
//	bench       machine-readable engine benchmarks -> BENCH_<date>.json;
//	            -baseline/-maxregress gate on ns/cycle regressions
//
//	version     print the engine version stamp (set at build time via
//	            -ldflags; "dev" otherwise) that is embedded in cache
//	            keys, BENCH_*.json and v2 trace headers
//
// Experiments (no subcommand; shared simulation flags apply):
//
//	fig3     router area overhead per topology
//	fig4a    latency vs injection rate, uniform random
//	fig4b    latency vs injection rate, tornado
//	preempt  Section 5.2 in-saturation packet replay rates
//	table2   hotspot fairness (per-flow throughput dispersion)
//	fig5     preemption rates under adversarial Workloads 1 and 2
//	fig6     preemption slowdown and max-min deviation, Workloads 1 and 2
//	fig7     router energy per flit by hop type
//	chip        chip-level QoS hardware savings of the topology-aware design
//	motivation  Section 1's starvation demonstration (no-QoS vs PVC)
//	ablate      PVC design-parameter sweeps (beyond the paper)
//	closed      closed-loop hotspot clients: per-client completed-request
//	            dispersion and round-trip latency per topology x QoS mode
//	all         the paper's artifacts (fig3..motivation) in paper order
package main

import (
	"fmt"
	"os"
	"strings"

	"tanoq/internal/experiments"
	"tanoq/internal/network"
	"tanoq/internal/topology"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch strings.ToLower(args[0]) {
	case "sweep":
		err = sweepMain(args[1:])
	case "degrade":
		err = degradeMain(args[1:])
	case "timeline":
		err = timelineMain(args[1:])
	case "trace":
		err = traceMain(args[1:])
	case "bench":
		err = benchMain(args[1:])
	case "version":
		fmt.Printf("tanoq engine %s\n", network.EngineVersion())
	case "help", "-h", "--help":
		usage()
	default:
		// Anything else is the experiment driver, which keeps the original
		// flags-first syntax (`noctool -quick all`).
		err = experimentsMain(args)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "noctool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: noctool <subcommand> [flags] [args]
       noctool [flags] <experiment>...

subcommands (run noctool <cmd> -h for that command's flags):
  sweep <scenario>[#profile]    expand and run a scenario file or built-in;
                                layered resolution (includes, profiles,
                                TANOQ_SET_* env, -set), -explain provenance,
                                durable -cache/-resume execution
  degrade <scenario>[#profile]  faulted scenario vs fault-free baseline
  timeline <scenario>[#profile] run with telemetry probes; per-interval
                                time-series table, heatmap, JSON/CSV
  trace record|replay|info      capture / replay / inspect injection traces
  bench                         engine benchmarks -> BENCH_<date>.json
  version                       engine version stamp

experiments: fig3 fig4a fig4b preempt table2 fig5 fig6 fig7 chip motivation
             ablate closed all
`)
}

// experimentsMain runs the paper's experiment drivers, preserving the
// original `noctool [flags] <experiment>...` syntax.
func experimentsMain(args []string) error {
	fs := newFlagSet("noctool", "noctool [flags] <experiment>...",
		"experiments: fig3 fig4a fig4b preempt table2 fig5 fig6 fig7 chip motivation ablate closed all")
	sim := addSimFlags(fs)
	csv := fs.Bool("csv", false, "emit CSV instead of tables")
	fs.Parse(args)
	names := fs.Args()
	if len(names) == 0 {
		usage()
		os.Exit(2)
	}
	p := sim.params(explicitFlags(fs))
	for _, name := range names {
		name = strings.ToLower(name)
		switch name {
		case "sweep", "degrade", "timeline", "trace", "bench", "version":
			return fmt.Errorf("subcommand flags now follow the subcommand: noctool %s [flags] ...", name)
		}
		if err := run(name, p, sim.quick, *csv); err != nil {
			return err
		}
	}
	return nil
}

func run(name string, p experiments.Params, quick, csv bool) error {
	switch name {
	case "fig3":
		rows := experiments.Fig3()
		if csv {
			fmt.Print(experiments.Fig3CSV(rows))
		} else {
			fmt.Println(experiments.RenderFig3(rows))
		}
	case "fig4a", "fig4b":
		pattern := experiments.Uniform
		if name == "fig4b" {
			pattern = experiments.TornadoPattern
		}
		rates := experiments.DefaultFig4Rates()
		if quick {
			rates = experiments.QuickFig4Rates()
		}
		series := experiments.Fig4(pattern, rates, p)
		if csv {
			fmt.Print(experiments.Fig4CSV(series))
		} else {
			fmt.Println(experiments.RenderFig4(pattern, series))
		}
	case "preempt":
		fmt.Println(experiments.RenderSaturationPreemptions(experiments.SaturationPreemptions(p)))
	case "table2":
		tp := experiments.Table2Params()
		if quick {
			tp = p
		}
		tp.Seed = p.Seed
		tp.Workers = p.Workers
		rows := experiments.Table2(tp)
		if csv {
			fmt.Print(experiments.Table2CSV(rows))
		} else {
			fmt.Println(experiments.RenderTable2(rows))
		}
	case "fig5":
		for _, wl := range []experiments.Adversarial{experiments.Workload1, experiments.Workload2} {
			rows := experiments.Fig5(wl, p)
			if csv {
				fmt.Print(experiments.Fig5CSV(rows))
			} else {
				fmt.Println(experiments.RenderFig5(wl, rows))
			}
		}
	case "fig6":
		for _, wl := range []experiments.Adversarial{experiments.Workload1, experiments.Workload2} {
			rows := experiments.Fig6(wl, p)
			if csv {
				fmt.Print(experiments.Fig6CSV(rows))
			} else {
				fmt.Println(experiments.RenderFig6(wl, rows))
			}
		}
	case "fig7":
		rows := experiments.Fig7()
		if csv {
			fmt.Print(experiments.Fig7CSV(rows))
		} else {
			fmt.Println(experiments.RenderFig7(rows))
		}
	case "chip":
		fmt.Println(experiments.RenderChipCost(experiments.ChipCost()))
	case "closed":
		rows := experiments.ClosedLoop(p)
		if csv {
			fmt.Print(experiments.ClosedLoopCSV(rows))
		} else {
			fmt.Println(experiments.RenderClosedLoop(rows))
		}
	case "motivation":
		rows := experiments.Motivation(topology.MeshX1, p)
		fmt.Println(experiments.RenderMotivation(topology.MeshX1, rows))
	case "ablate":
		fmt.Println(experiments.RenderAblation(
			"Ablation: PVC frame duration (hotspot fairness, DPS)", "frame",
			experiments.AblateFrame(topology.DPS, experiments.DefaultFrameSweep, p)))
		fmt.Println(experiments.RenderAblation(
			"Ablation: priority quantum (hotspot fairness, DPS)", "quantum",
			experiments.AblateQuantum(topology.DPS, experiments.DefaultQuantumSweep, p)))
		fmt.Println(experiments.RenderAblation(
			"Ablation: retransmission window (single fast distant flow, mesh x1)", "window",
			experiments.AblateWindow(topology.MeshX1, experiments.DefaultWindowSweep, p)))
		fmt.Println(experiments.RenderMarginAblation(
			experiments.AblateMargin(topology.MeshX1, experiments.DefaultMarginSweep, p)))
		fmt.Println(experiments.RenderQuotaAblation(
			experiments.AblateQuota(topology.MeshX1, p)))
	case "all":
		for _, e := range []string{"fig3", "fig4a", "fig4b", "preempt", "table2", "fig5", "fig6", "fig7", "chip", "motivation"} {
			if err := run(e, p, quick, csv); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
