package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tanoq/internal/scenario"
	"tanoq/internal/sim"
	"tanoq/internal/telemetry"
)

// timelineOpts carries the timeline subcommand's CLI state.
type timelineOpts struct {
	layers   layerOpts
	interval int
	top      int
	series   string
	heatmap  bool
	asJSON   bool
	outPath  string
}

// timelineMain parses the timeline subcommand's flags and runs it.
func timelineMain(args []string) error {
	fs := newFlagSet("timeline", "noctool timeline [flags] <scenario>[#profile]",
		`Run a scenario with in-run telemetry probes and print each cell's
per-interval time series as a compact table (or the per-router VC
occupancy heatmap with -heatmap). The scenario's [telemetry] table
selects interval and series; -interval adds probes to a scenario
without one. Probes ride the event calendar, so the simulation
results are bit-identical to an unprobed run.`)
	sim := addSimFlags(fs)
	profile := fs.String("profile", "", "named [profiles.<name>] patch to apply (overrides a #profile suffix)")
	var set multiFlag
	fs.Var(&set, "set", "top-layer override `key=value` (dotted paths; repeatable)")
	interval := fs.Int("interval", 0, "probe interval in cycles (overrides the [telemetry] table)")
	top := fs.Int("top", 0, "per-flow series for the top K flows (overrides the [telemetry] table)")
	series := fs.String("series", "", "comma-separated series selection (empty = scenario's, or all)")
	heatmap := fs.Bool("heatmap", false, "emit the per-router occupancy heatmap matrix (CSV) instead of the table")
	asJSON := fs.Bool("json", false, "emit timelines as JSON instead of the table")
	out := fs.String("out", "", "write to `path` instead of stdout (.json and .csv pick the format)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("timeline needs exactly one scenario file or built-in name")
	}
	explicit := explicitFlags(fs)
	return runTimeline(fs.Arg(0), timelineOpts{
		layers: layerOpts{
			sim: sim, explicit: explicit, params: sim.params(explicit),
			profile: *profile, set: set,
		},
		interval: *interval, top: *top, series: *series,
		heatmap: *heatmap, asJSON: *asJSON, outPath: *out,
	})
}

// runTimeline resolves the scenario, arms (or overrides) its telemetry
// table, runs the grid and renders each cell's timeline.
func runTimeline(pathOrName string, o timelineOpts) error {
	sc, _, err := loadLayered(pathOrName, o.layers)
	if err != nil {
		return err
	}
	if sc.Telemetry == nil {
		if o.interval <= 0 {
			return fmt.Errorf("scenario %q has no [telemetry] table: add one or pass -interval N", pathOrName)
		}
		sc.Telemetry = &scenario.Telemetry{}
	}
	if o.interval > 0 {
		sc.Telemetry.Interval = sim.Cycle(o.interval)
	}
	if o.top > 0 {
		sc.Telemetry.TopFlows = o.top
	}
	if o.series != "" {
		sc.Telemetry.Series = splitSeries(o.series)
	}
	if o.heatmap && len(sc.Telemetry.Series) > 0 && !hasSeries(sc.Telemetry.Series, telemetry.SeriesHeatmap) {
		sc.Telemetry.Series = append(sc.Telemetry.Series, telemetry.SeriesHeatmap)
	}
	// The flag overrides bypass the decoder, so re-validate the mutated
	// scenario before spending cycles on it.
	if err := sc.Validate(); err != nil {
		return err
	}
	grid, err := sc.Grid()
	if err != nil {
		return err
	}
	results := grid.Run(scenario.RunOpts{
		Workers:         o.layers.params.Workers,
		DisableIdleSkip: o.layers.params.DisableIdleSkip,
	})

	if o.outPath != "" {
		if err := writeTimelines(o.outPath, results); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "timeline: wrote %s\n", o.outPath)
		return nil
	}
	if o.asJSON {
		blob, err := timelineJSON(results)
		if err != nil {
			return err
		}
		os.Stdout.Write(blob)
		return nil
	}
	for _, r := range results {
		if r.Error != "" {
			fmt.Printf("# %s: FAILED: %s\n", pointLabel(r), r.Error)
			continue
		}
		if r.Timeline == nil {
			continue
		}
		fmt.Printf("# %s\n", pointLabel(r))
		var err error
		if o.heatmap {
			err = r.Timeline.WriteHeatmap(os.Stdout)
		} else {
			err = r.Timeline.WriteTable(os.Stdout)
		}
		if err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// pointLabel names one grid cell for timeline output.
func pointLabel(r scenario.Result) string {
	return fmt.Sprintf("%s/%s/%s/%s/seed%d/rate%g",
		r.Workload, r.Pattern, r.Topology, r.Mode, r.Seed, r.Rate)
}

func splitSeries(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func hasSeries(series []string, name string) bool {
	for _, s := range series {
		if s == name {
			return true
		}
	}
	return false
}

// timelineJSON marshals every probed cell as {label, timeline}.
func timelineJSON(results []scenario.Result) ([]byte, error) {
	type row struct {
		Label    string              `json:"label"`
		Timeline *telemetry.Timeline `json:"timeline"`
	}
	rows := make([]row, 0, len(results))
	for _, r := range results {
		if r.Timeline == nil {
			continue
		}
		rows = append(rows, row{Label: pointLabel(r), Timeline: r.Timeline})
	}
	blob, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// writeTimelines emits the probed cells' timelines to path: .json for
// the JSON array, .csv for the long-format per-interval rows (shared by
// `noctool timeline -out` and `noctool sweep -timeline`).
func writeTimelines(path string, results []scenario.Result) error {
	switch ext := filepath.Ext(path); ext {
	case ".json":
		blob, err := timelineJSON(results)
		if err != nil {
			return err
		}
		return os.WriteFile(path, blob, 0o644)
	case ".csv":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := writeTimelineCSV(f, results); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	default:
		return fmt.Errorf("timeline output %q: want a .json or .csv extension", path)
	}
}

func writeTimelineCSV(w io.Writer, results []scenario.Result) error {
	if _, err := io.WriteString(w, telemetry.CSVHeader); err != nil {
		return err
	}
	for _, r := range results {
		if r.Timeline == nil {
			continue
		}
		if err := r.Timeline.WriteCSV(w, pointLabel(r)); err != nil {
			return err
		}
	}
	return nil
}
