package main

import (
	"fmt"
	"os"

	"tanoq/internal/experiments"
	"tanoq/internal/scenario"
)

// sweepOpts carries the CLI state the sweep subcommand layers over a
// scenario file: runtime knobs (workers, idle skip, output format) plus
// the subset of flags the user set explicitly, which override the file's
// values — the same precedence order as a layered config system (file
// below flags).
type sweepOpts struct {
	params experiments.Params
	// explicit marks flags the user passed on the command line (by flag
	// name); only those override the scenario file.
	explicit map[string]bool
	quick    bool
	csv      bool
	outPath  string
}

// loadScenario loads a scenario file or built-in name and applies the
// CLI layer (quick scale, explicitly-set seed/warmup/measure flags).
func loadScenario(pathOrName string, o sweepOpts) (*scenario.Scenario, error) {
	sc, err := scenario.Load(pathOrName)
	if err != nil {
		return nil, err
	}
	if o.quick {
		q := experiments.QuickParams()
		sc.Warmup, sc.Measure = q.Warmup, q.Measure
	}
	if o.explicit["seed"] {
		sc.Seeds = []uint64{o.params.Seed}
	}
	if o.explicit["warmup"] {
		sc.Warmup = o.params.Warmup
	}
	if o.explicit["measure"] {
		sc.Measure = o.params.Measure
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// runSweep loads a scenario file (or built-in scenario name), applies the
// CLI layer, expands the sweep grid, runs it on the parallel runner and
// emits a table or CSV to stdout (plus JSON to -out when given).
func runSweep(pathOrName string, o sweepOpts) error {
	sc, err := loadScenario(pathOrName, o)
	if err != nil {
		return err
	}
	grid, err := sc.Grid()
	if err != nil {
		return err
	}
	results := grid.Run(scenario.RunOpts{
		Workers:         o.params.Workers,
		DisableIdleSkip: o.params.DisableIdleSkip,
	})
	if o.csv {
		fmt.Print(scenario.CSV(sc.Name, results))
	} else {
		fmt.Println(scenario.Render(sc.Name, results))
	}
	if o.outPath != "" {
		blob, err := scenario.JSONReport(sc.Name, results)
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.outPath, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote %s\n", o.outPath)
	}
	return nil
}

// runDegrade runs the degradation sweep of a faulted scenario: the grid
// as written plus a fault-free baseline, joined per point to report
// delivered fraction, victim slowdown and latency inflation per QoS mode
// (-out writes the CSV rows).
func runDegrade(pathOrName string, o sweepOpts) error {
	sc, err := loadScenario(pathOrName, o)
	if err != nil {
		return err
	}
	rows, err := scenario.Degrade(sc, scenario.RunOpts{
		Workers:         o.params.Workers,
		DisableIdleSkip: o.params.DisableIdleSkip,
	})
	if err != nil {
		return err
	}
	if o.csv {
		fmt.Print(scenario.DegradeCSV(sc.Name, rows))
	} else {
		fmt.Println(scenario.RenderDegrade(sc.Name, rows))
	}
	if o.outPath != "" {
		if err := os.WriteFile(o.outPath, []byte(scenario.DegradeCSV(sc.Name, rows)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "degrade: wrote %s\n", o.outPath)
	}
	return nil
}
