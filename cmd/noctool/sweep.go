package main

import (
	"fmt"
	"os"

	"tanoq/internal/experiments"
	"tanoq/internal/scenario"
)

// sweepOpts carries the CLI state the sweep subcommand layers over a
// scenario file: runtime knobs (workers, idle skip, output format) plus
// the subset of flags the user set explicitly, which override the file's
// values — the same precedence order as a layered config system (file
// below flags).
type sweepOpts struct {
	params experiments.Params
	// explicit marks flags the user passed on the command line (by flag
	// name); only those override the scenario file.
	explicit map[string]bool
	quick    bool
	csv      bool
	outPath  string
}

// runSweep loads a scenario file (or built-in scenario name), applies the
// CLI layer, expands the sweep grid, runs it on the parallel runner and
// emits a table or CSV to stdout (plus JSON to -out when given).
func runSweep(pathOrName string, o sweepOpts) error {
	sc, err := scenario.Load(pathOrName)
	if err != nil {
		return err
	}
	if o.quick {
		q := experiments.QuickParams()
		sc.Warmup, sc.Measure = q.Warmup, q.Measure
	}
	if o.explicit["seed"] {
		sc.Seeds = []uint64{o.params.Seed}
	}
	if o.explicit["warmup"] {
		sc.Warmup = o.params.Warmup
	}
	if o.explicit["measure"] {
		sc.Measure = o.params.Measure
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	grid, err := sc.Grid()
	if err != nil {
		return err
	}
	results := grid.Run(scenario.RunOpts{
		Workers:         o.params.Workers,
		DisableIdleSkip: o.params.DisableIdleSkip,
	})
	if o.csv {
		fmt.Print(scenario.CSV(sc.Name, results))
	} else {
		fmt.Println(scenario.Render(sc.Name, results))
	}
	if o.outPath != "" {
		blob, err := scenario.JSONReport(sc.Name, results)
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.outPath, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote %s\n", o.outPath)
	}
	return nil
}
