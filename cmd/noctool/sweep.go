package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tanoq/internal/runner"
	"tanoq/internal/scenario"
	"tanoq/internal/store"
)

// sweepOpts carries the CLI state the sweep subcommand layers over a
// scenario file: the resolver layers (profile, env, schedule flags,
// -set), output format, and the durable-execution knobs. The durable
// knobs (cache and per-cell deadline/retry budget) never change results,
// only whether and how cells execute, so they stay out of cache keys.
type sweepOpts struct {
	layers  layerOpts
	csv     bool
	outPath string
	explain bool
	lanes   int

	cache    bool
	cacheDir string
	resume   bool
	verify   int
	deadline time.Duration
	retries  int
	backoff  time.Duration

	httpAddr     string
	httpLinger   time.Duration
	progress     bool
	timelinePath string
}

// sweepMain parses the sweep subcommand's flags and runs the sweep.
func sweepMain(args []string) error {
	fs := newFlagSet("sweep", "noctool sweep [flags] <scenario>[#profile]",
		`Expand and run a declarative scenario file (.json/.toml) or built-in
scenario name. Files resolve through the layered pipeline — defaults <
include chain < file < profile < TANOQ_SET_* env < schedule flags <
-set — and -explain prints every resolved key with its provenance.`)
	sim := addSimFlags(fs)
	csv := fs.Bool("csv", false, "emit CSV instead of tables")
	out := fs.String("out", "", "output path for the sweep's JSON report")
	profile := fs.String("profile", "", "named [profiles.<name>] patch to apply (overrides a #profile suffix)")
	var set multiFlag
	fs.Var(&set, "set", "top-layer override `key=value` (dotted paths; repeatable)")
	explain := fs.Bool("explain", false, "print the resolved scenario with per-key provenance instead of running")
	lanes := fs.Int("lanes", 1, "batch up to N seed-axis cells per ensemble (1 disables grouping; never changes results)")
	cache := fs.Bool("cache", false, "memoize cell results in the content-addressed store")
	cacheDir := fs.String("cache-dir", store.DefaultDir, "result store directory")
	resume := fs.Bool("resume", false, "resume an interrupted sweep from the cache (implies -cache)")
	cacheVerify := fs.Int("cache-verify", 0, "re-execute up to N cached hits and fail on divergence")
	deadline := fs.Duration("deadline", 0, "wall-clock budget per cell (0 = none)")
	retries := fs.Int("retries", 1, "extra attempts per failed cell (0 disables retries)")
	backoff := fs.Duration("backoff", 0, "base retry delay, doubling per attempt")
	httpAddr := fs.String("http", "", "serve live Prometheus /metrics and /debug/pprof on `addr` while the sweep runs")
	httpLinger := fs.Duration("http-linger", 0, "keep the -http endpoint up this long after the sweep finishes")
	progress := fs.Bool("progress", false, "print throttled progress lines with an ETA to stderr")
	timeline := fs.String("timeline", "", "write per-cell telemetry timelines to `path` (.json or .csv; needs a [telemetry] table)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("sweep needs exactly one scenario file or built-in name")
	}
	explicit := explicitFlags(fs)
	return runSweep(fs.Arg(0), sweepOpts{
		layers: layerOpts{
			sim: sim, explicit: explicit, params: sim.params(explicit),
			profile: *profile, set: set,
		},
		csv: *csv, outPath: *out, explain: *explain, lanes: *lanes,
		cache: *cache, cacheDir: *cacheDir, resume: *resume, verify: *cacheVerify,
		deadline: *deadline, retries: *retries, backoff: *backoff,
		httpAddr: *httpAddr, httpLinger: *httpLinger, progress: *progress,
		timelinePath: *timeline,
	})
}

// degradeMain parses the degrade subcommand's flags and runs the
// degradation sweep.
func degradeMain(args []string) error {
	fs := newFlagSet("degrade", "noctool degrade [flags] <scenario>[#profile]",
		`Run a scenario with a [faults] table against its fault-free baseline
and report per point the delivered fraction, retry/drop counts, victim
slowdown and latency inflation per QoS mode. Scenario files resolve
through the same layered pipeline as sweep.`)
	sim := addSimFlags(fs)
	csv := fs.Bool("csv", false, "emit CSV instead of tables")
	out := fs.String("out", "", "output path for the degradation CSV")
	profile := fs.String("profile", "", "named [profiles.<name>] patch to apply (overrides a #profile suffix)")
	var set multiFlag
	fs.Var(&set, "set", "top-layer override `key=value` (dotted paths; repeatable)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("degrade needs exactly one scenario file with a [faults] table")
	}
	explicit := explicitFlags(fs)
	return runDegrade(fs.Arg(0), sweepOpts{
		layers: layerOpts{
			sim: sim, explicit: explicit, params: sim.params(explicit),
			profile: *profile, set: set,
		},
		csv: *csv, outPath: *out,
	})
}

// runSweep resolves a scenario through the layer pipeline, expands the
// sweep grid, runs it through the durable runner and emits a table or
// CSV to stdout (plus JSON to -out when given).
//
// Every sweep goes through Grid.RunDurable: without -cache it behaves
// exactly like the plain grid runner (plus the deadline/retry knobs and
// graceful SIGINT draining); with -cache (or cache = true in the
// scenario's [run] table) finished rows are checkpointed to the
// content-addressed store as they land, and -resume serves them back
// without simulating.
func runSweep(pathOrName string, o sweepOpts) error {
	sc, res, err := loadLayered(pathOrName, o.layers)
	if err != nil {
		return err
	}
	if o.explain {
		if res == nil {
			return fmt.Errorf("scenario %q is a built-in: -explain needs a scenario file (built-ins have no layers)", pathOrName)
		}
		fmt.Print(res.Explain())
		return nil
	}
	grid, err := sc.Grid()
	if err != nil {
		return err
	}

	// Layer the durable knobs: the scenario's [run] table below the
	// explicitly-set flags (same precedence as seed/warmup/measure). An
	// explicit `-retries 0` means "no retries", which the runner spells
	// as a negative budget; 0 there means "use the default single retry".
	opts := scenario.DurableOpts{
		RunOpts: scenario.RunOpts{
			Workers:         o.layers.params.Workers,
			DisableIdleSkip: o.layers.params.DisableIdleSkip,
			EnsembleLanes:   o.lanes,
		},
		Deadline:     sc.Deadline,
		Retries:      sc.Retries,
		Backoff:      sc.Backoff,
		VerifySample: o.verify,
	}
	if o.layers.explicit["deadline"] {
		opts.Deadline = o.deadline
	}
	if o.layers.explicit["retries"] {
		opts.Retries = o.retries
		if o.retries == 0 {
			opts.Retries = -1
		}
	}
	if o.layers.explicit["backoff"] {
		opts.Backoff = o.backoff
	}

	// Live accounting: the /metrics endpoint and the -progress printer
	// share one sweepMetrics instance fed from the per-cell completion
	// callback. Observability never changes what executes — OnCell only
	// observes results as they land.
	var metrics *sweepMetrics
	var prog *progressPrinter
	if o.httpAddr != "" || o.progress {
		metrics = newSweepMetrics(len(grid.Points), runner.Workers(opts.Workers), o.lanes)
		opts.OnCell = metrics.onCell
		if o.progress {
			prog = &progressPrinter{m: metrics}
			inner := opts.OnCell
			opts.OnCell = func(ev scenario.CellEvent) {
				inner(ev)
				prog.onCell(ev)
			}
		}
		if o.httpAddr != "" {
			stop, err := serveMetrics(metrics, o.httpAddr, o.httpLinger)
			if err != nil {
				return err
			}
			defer stop()
		}
	}

	if o.cache || o.resume || sc.Cache {
		st, err := store.Open(o.cacheDir)
		if err != nil {
			return err
		}
		opts.Store = st
		jr, err := store.OpenJournal(filepath.Join(o.cacheDir, "journal"))
		if err != nil {
			return err
		}
		defer jr.Close()
		opts.Journal = jr
	}

	// First SIGINT/SIGTERM cancels the grid: no new cells are issued,
	// in-flight cells drain and checkpoint, and the partial table is
	// printed. A second signal exits immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "sweep: interrupt — draining in-flight cells and checkpointing (interrupt again to exit now)")
		cancel()
		<-sig
		os.Exit(130)
	}()

	rep, err := grid.RunDurable(ctx, opts)
	if err != nil {
		return err
	}
	results := rep.Results
	if metrics != nil {
		metrics.setGroups(rep.Groups)
	}
	if prog != nil {
		prog.Close()
	}

	if o.timelinePath != "" {
		if err := writeTimelines(o.timelinePath, results); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote %s\n", o.timelinePath)
	}

	if o.csv {
		fmt.Print(scenario.CSV(sc.Name, results))
	} else {
		fmt.Println(scenario.Render(sc.Name, results))
	}
	if rep.Interrupted {
		// The marker rides only on interrupted output: a resumed run
		// finishes clean, so its table diffs bit-identical against an
		// uninterrupted one.
		fmt.Println("# interrupted: partial results — finished cells are checkpointed, re-run with -resume")
	}
	if o.outPath != "" {
		if rep.Interrupted {
			fmt.Fprintf(os.Stderr, "sweep: not writing %s (sweep interrupted)\n", o.outPath)
		} else {
			blob, err := scenario.JSONReport(sc.Name, results)
			if err != nil {
				return err
			}
			if err := os.WriteFile(o.outPath, blob, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "sweep: wrote %s\n", o.outPath)
		}
	}
	if rep.Lanes > 1 {
		fmt.Fprintf(os.Stderr, "sweep: ensemble: %d groups, %d lanes\n", rep.Groups, rep.Lanes)
	}
	if opts.Store != nil {
		// FAILED rows used to be invisible here until the table printed;
		// the %d failed field folds them into the one-line accounting.
		fmt.Fprintf(os.Stderr, "sweep: %d cells: %d cached, executed %d, %d failed, skipped %d (cache %s)\n",
			len(results), rep.Hits, rep.Executed, rep.Failed, rep.Skipped, o.cacheDir)
		if o.verify > 0 {
			fmt.Fprintf(os.Stderr, "sweep: cache-verify: %d verified, %d diverged\n",
				rep.Verified, len(rep.VerifyBad))
		}
	}
	if len(rep.VerifyBad) > 0 {
		return fmt.Errorf("cache verification failed:\n  %s", strings.Join(rep.VerifyBad, "\n  "))
	}
	if rep.Interrupted {
		done := len(results) - rep.Skipped
		if opts.Store != nil {
			return fmt.Errorf("sweep interrupted: %d of %d cells finished and checkpointed; re-run with -resume to continue", done, len(results))
		}
		return fmt.Errorf("sweep interrupted: %d of %d cells finished (run with -cache to make interruptions resumable)", done, len(results))
	}
	return nil
}

// runDegrade runs the degradation sweep of a faulted scenario: the grid
// as written plus a fault-free baseline, joined per point to report
// delivered fraction, victim slowdown and latency inflation per QoS mode
// (-out writes the CSV rows).
func runDegrade(pathOrName string, o sweepOpts) error {
	sc, _, err := loadLayered(pathOrName, o.layers)
	if err != nil {
		return err
	}
	rows, err := scenario.Degrade(sc, scenario.RunOpts{
		Workers:         o.layers.params.Workers,
		DisableIdleSkip: o.layers.params.DisableIdleSkip,
	})
	if err != nil {
		return err
	}
	if o.csv {
		fmt.Print(scenario.DegradeCSV(sc.Name, rows))
	} else {
		fmt.Println(scenario.RenderDegrade(sc.Name, rows))
	}
	if o.outPath != "" {
		if err := os.WriteFile(o.outPath, []byte(scenario.DegradeCSV(sc.Name, rows)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "degrade: wrote %s\n", o.outPath)
	}
	return nil
}
