package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tanoq/internal/experiments"
	"tanoq/internal/scenario"
	"tanoq/internal/store"
)

// sweepOpts carries the CLI state the sweep subcommand layers over a
// scenario file: runtime knobs (workers, idle skip, output format) plus
// the subset of flags the user set explicitly, which override the file's
// values — the same precedence order as a layered config system (file
// below flags).
type sweepOpts struct {
	params experiments.Params
	// explicit marks flags the user passed on the command line (by flag
	// name); only those override the scenario file.
	explicit map[string]bool
	quick    bool
	csv      bool
	outPath  string
	// Durable-execution knobs: the result cache and the per-cell
	// deadline/retry budget. These never change results, only whether and
	// how cells execute, so they stay out of cache keys.
	cache    bool
	cacheDir string
	resume   bool
	verify   int
	deadline time.Duration
	retries  int
	backoff  time.Duration
}

// loadScenario loads a scenario file or built-in name and applies the
// CLI layer (quick scale, explicitly-set seed/warmup/measure flags).
func loadScenario(pathOrName string, o sweepOpts) (*scenario.Scenario, error) {
	sc, err := scenario.Load(pathOrName)
	if err != nil {
		return nil, err
	}
	if o.quick {
		q := experiments.QuickParams()
		sc.Warmup, sc.Measure = q.Warmup, q.Measure
	}
	if o.explicit["seed"] {
		sc.Seeds = []uint64{o.params.Seed}
	}
	if o.explicit["warmup"] {
		sc.Warmup = o.params.Warmup
	}
	if o.explicit["measure"] {
		sc.Measure = o.params.Measure
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// runSweep loads a scenario file (or built-in scenario name), applies the
// CLI layer, expands the sweep grid, runs it through the durable runner
// and emits a table or CSV to stdout (plus JSON to -out when given).
//
// Every sweep goes through Grid.RunDurable: without -cache it behaves
// exactly like the plain grid runner (plus the deadline/retry knobs and
// graceful SIGINT draining); with -cache (or cache = true in the
// scenario's [run] table) finished rows are checkpointed to the
// content-addressed store as they land, and -resume serves them back
// without simulating.
func runSweep(pathOrName string, o sweepOpts) error {
	sc, err := loadScenario(pathOrName, o)
	if err != nil {
		return err
	}
	grid, err := sc.Grid()
	if err != nil {
		return err
	}

	// Layer the durable knobs: the scenario's [run] table below the
	// explicitly-set flags (same precedence as seed/warmup/measure). An
	// explicit `-retries 0` means "no retries", which the runner spells
	// as a negative budget; 0 there means "use the default single retry".
	opts := scenario.DurableOpts{
		RunOpts: scenario.RunOpts{
			Workers:         o.params.Workers,
			DisableIdleSkip: o.params.DisableIdleSkip,
		},
		Deadline:     sc.Deadline,
		Retries:      sc.Retries,
		Backoff:      sc.Backoff,
		VerifySample: o.verify,
	}
	if o.explicit["deadline"] {
		opts.Deadline = o.deadline
	}
	if o.explicit["retries"] {
		opts.Retries = o.retries
		if o.retries == 0 {
			opts.Retries = -1
		}
	}
	if o.explicit["backoff"] {
		opts.Backoff = o.backoff
	}

	if o.cache || o.resume || sc.Cache {
		st, err := store.Open(o.cacheDir)
		if err != nil {
			return err
		}
		opts.Store = st
		jr, err := store.OpenJournal(filepath.Join(o.cacheDir, "journal"))
		if err != nil {
			return err
		}
		defer jr.Close()
		opts.Journal = jr
	}

	// First SIGINT/SIGTERM cancels the grid: no new cells are issued,
	// in-flight cells drain and checkpoint, and the partial table is
	// printed. A second signal exits immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "sweep: interrupt — draining in-flight cells and checkpointing (interrupt again to exit now)")
		cancel()
		<-sig
		os.Exit(130)
	}()

	rep, err := grid.RunDurable(ctx, opts)
	if err != nil {
		return err
	}
	results := rep.Results

	if o.csv {
		fmt.Print(scenario.CSV(sc.Name, results))
	} else {
		fmt.Println(scenario.Render(sc.Name, results))
	}
	if rep.Interrupted {
		// The marker rides only on interrupted output: a resumed run
		// finishes clean, so its table diffs bit-identical against an
		// uninterrupted one.
		fmt.Println("# interrupted: partial results — finished cells are checkpointed, re-run with -resume")
	}
	if o.outPath != "" {
		if rep.Interrupted {
			fmt.Fprintf(os.Stderr, "sweep: not writing %s (sweep interrupted)\n", o.outPath)
		} else {
			blob, err := scenario.JSONReport(sc.Name, results)
			if err != nil {
				return err
			}
			if err := os.WriteFile(o.outPath, blob, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "sweep: wrote %s\n", o.outPath)
		}
	}
	if opts.Store != nil {
		fmt.Fprintf(os.Stderr, "sweep: %d cells: %d cached, executed %d, skipped %d (cache %s)\n",
			len(results), rep.Hits, rep.Executed, rep.Skipped, o.cacheDir)
		if o.verify > 0 {
			fmt.Fprintf(os.Stderr, "sweep: cache-verify: %d verified, %d diverged\n",
				rep.Verified, len(rep.VerifyBad))
		}
	}
	if len(rep.VerifyBad) > 0 {
		return fmt.Errorf("cache verification failed:\n  %s", strings.Join(rep.VerifyBad, "\n  "))
	}
	if rep.Interrupted {
		done := len(results) - rep.Skipped
		if opts.Store != nil {
			return fmt.Errorf("sweep interrupted: %d of %d cells finished and checkpointed; re-run with -resume to continue", done, len(results))
		}
		return fmt.Errorf("sweep interrupted: %d of %d cells finished (run with -cache to make interruptions resumable)", done, len(results))
	}
	return nil
}

// runDegrade runs the degradation sweep of a faulted scenario: the grid
// as written plus a fault-free baseline, joined per point to report
// delivered fraction, victim slowdown and latency inflation per QoS mode
// (-out writes the CSV rows).
func runDegrade(pathOrName string, o sweepOpts) error {
	sc, err := loadScenario(pathOrName, o)
	if err != nil {
		return err
	}
	rows, err := scenario.Degrade(sc, scenario.RunOpts{
		Workers:         o.params.Workers,
		DisableIdleSkip: o.params.DisableIdleSkip,
	})
	if err != nil {
		return err
	}
	if o.csv {
		fmt.Print(scenario.DegradeCSV(sc.Name, rows))
	} else {
		fmt.Println(scenario.RenderDegrade(sc.Name, rows))
	}
	if o.outPath != "" {
		if err := os.WriteFile(o.outPath, []byte(scenario.DegradeCSV(sc.Name, rows)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "degrade: wrote %s\n", o.outPath)
	}
	return nil
}
