package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"tanoq/internal/scenario"
)

// sweepMetrics aggregates the live accounting of one running sweep. It
// is fed from scenario.CellEvent callbacks (worker goroutines) and read
// by the /metrics handler and the -progress printer, so every access
// takes the mutex. The exposition set is fixed at construction — every
// family is always emitted, values start at zero — so the format is
// stable from the first scrape and golden-diffable modulo values.
type sweepMetrics struct {
	mu       sync.Mutex
	start    time.Time
	total    int // visible grid cells
	workers  int
	lanes    int
	groups   int
	cached   int
	executed int
	failed   int
	skipped  int
	retries  int // attempts beyond the first, summed over executed cells

	execWall    time.Duration // wall-clock summed over executed cells
	workerWall  []time.Duration
	workerCycle []int64
}

func newSweepMetrics(total, workers, lanes int) *sweepMetrics {
	return &sweepMetrics{
		start: time.Now(), total: total, workers: workers, lanes: lanes,
		workerWall:  make([]time.Duration, workers),
		workerCycle: make([]int64, workers),
	}
}

// onCell folds one finished cell into the counters.
func (m *sweepMetrics) onCell(ev scenario.CellEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case ev.Cached:
		m.cached++
	case ev.Skipped:
		m.skipped++
	default:
		m.executed++
		if ev.Failed {
			m.failed++
		}
		if ev.Attempts > 1 {
			m.retries += ev.Attempts - 1
		}
		m.execWall += ev.Wall
		if ev.Worker >= 0 && ev.Worker < len(m.workerWall) {
			m.workerWall[ev.Worker] += ev.Wall
			m.workerCycle[ev.Worker] += ev.Cycles
		}
	}
}

// setGroups records the ensemble accounting once the plan is known.
func (m *sweepMetrics) setGroups(groups int) {
	m.mu.Lock()
	m.groups = groups
	m.mu.Unlock()
}

// render writes the Prometheus text exposition. Families and label sets
// are fixed, so two scrapes differ only in sample values.
func (m *sweepMetrics) render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter("tanoq_sweep_cells_total", "Visible grid cells in this sweep.", m.total)
	counter("tanoq_sweep_cells_completed_total", "Cells finished so far (cached + executed + skipped).", m.cached+m.executed+m.skipped)
	counter("tanoq_sweep_cells_cached_total", "Cells served from the result cache.", m.cached)
	counter("tanoq_sweep_cells_executed_total", "Cells actually simulated.", m.executed)
	counter("tanoq_sweep_cells_failed_total", "Executed cells whose every attempt died.", m.failed)
	counter("tanoq_sweep_cells_skipped_total", "Cells abandoned by cancellation.", m.skipped)
	counter("tanoq_sweep_cell_retries_total", "Attempts beyond the first, summed over executed cells.", m.retries)
	ratio := 0.0
	if done := m.cached + m.executed; done > 0 {
		ratio = float64(m.cached) / float64(done)
	}
	gauge("tanoq_sweep_cache_hit_ratio", "Cached fraction of completed cells.", fmt.Sprintf("%.6f", ratio))
	gauge("tanoq_sweep_lanes", "Configured ensemble lane cap (1 = standalone).", m.lanes)
	gauge("tanoq_sweep_lane_groups", "Ensemble batches in the execution plan.", m.groups)
	gauge("tanoq_sweep_workers", "Runner worker count.", m.workers)
	gauge("tanoq_sweep_elapsed_seconds", "Wall-clock seconds since the sweep started.", fmt.Sprintf("%.3f", time.Since(m.start).Seconds()))
	fmt.Fprintf(w, "# HELP tanoq_sweep_worker_cycles_per_second Simulated cycles per wall second, per worker slot.\n")
	fmt.Fprintf(w, "# TYPE tanoq_sweep_worker_cycles_per_second gauge\n")
	for i := range m.workerCycle {
		cps := 0.0
		if m.workerWall[i] > 0 {
			cps = float64(m.workerCycle[i]) / m.workerWall[i].Seconds()
		}
		fmt.Fprintf(w, "tanoq_sweep_worker_cycles_per_second{worker=\"%d\"} %.0f\n", i, cps)
	}
}

// progressLine formats the -progress stderr line: completed counts plus
// an ETA extrapolated from the mean wall-clock of executed cells,
// divided across the worker pool (cache hits are effectively free, so
// only the executed mean feeds the estimate).
func (m *sweepMetrics) progressLine() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	done := m.cached + m.executed + m.skipped
	var b strings.Builder
	fmt.Fprintf(&b, "progress: %d/%d cells (%d cached, %d failed)", done, m.total, m.cached, m.failed)
	fmt.Fprintf(&b, ", %s elapsed", time.Since(m.start).Round(100*time.Millisecond))
	if remaining := m.total - done; remaining > 0 && m.executed > 0 {
		mean := m.execWall / time.Duration(m.executed)
		workers := m.workers
		if workers < 1 {
			workers = 1
		}
		eta := mean * time.Duration(remaining) / time.Duration(workers)
		fmt.Fprintf(&b, ", ETA %s", eta.Round(100*time.Millisecond))
	}
	return b.String()
}

// serveMetrics starts the live metrics endpoint: Prometheus text at
// /metrics and the standard pprof handlers at /debug/pprof/* on a
// dedicated mux (the default mux stays untouched). The returned stop
// function closes the listener; linger keeps serving that long after
// stop is called, so a scrape can still observe a finished sweep.
func serveMetrics(m *sweepMetrics, addr string, linger time.Duration) (stop func(), err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.render(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics endpoint: %w", err)
	}
	fmt.Fprintf(os.Stderr, "sweep: serving /metrics and /debug/pprof on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return func() {
		if linger > 0 {
			time.Sleep(linger)
		}
		srv.Close()
	}, nil
}

// progressPrinter rate-limits the -progress stderr line: one line per
// completed cell at most every 200ms, plus a final line from Close.
type progressPrinter struct {
	m    *sweepMetrics
	mu   sync.Mutex
	last time.Time
}

func (p *progressPrinter) onCell(scenario.CellEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if time.Since(p.last) < 200*time.Millisecond {
		return
	}
	p.last = time.Now()
	fmt.Fprintln(os.Stderr, p.m.progressLine())
}

// Close prints the final accounting line unconditionally.
func (p *progressPrinter) Close() {
	fmt.Fprintln(os.Stderr, p.m.progressLine())
}
