package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tanoq/internal/experiments"
	"tanoq/internal/network"
	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// benchReport is the machine-readable performance snapshot `noctool bench`
// writes to BENCH_<date>.json, tracking the engine's perf trajectory
// PR over PR: raw per-cycle engine cost, wall-clock for the quick Figure 4
// grid (sequential vs parallel, idle skipping on vs off), and the
// low-load cells where the event-driven engine's O(work) behaviour shows.
type benchReport struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Seed       uint64 `json:"seed"`
	Note       string `json:"note,omitempty"`
	// Provenance of the measurement, so baselines recorded on different
	// machines or revisions are never compared blind: the commit the
	// binary was built from, the measuring host, and its CPU model.
	GitHead       string      `json:"git_head,omitempty"`
	EngineVersion string      `json:"engine_version,omitempty"`
	Hostname      string      `json:"hostname,omitempty"`
	CPUModel      string      `json:"cpu_model,omitempty"`
	EngineStep    []stepBench `json:"engine_step"`
	// EnsembleStep is the seed-axis batching trajectory: aggregate
	// per-lane-cycle cost of advancing K lanes through one ensemble,
	// at the steady-state operating point. K=1 is the control (the
	// ensemble wrapper over a single engine); the K=4/8 points are
	// where shared-table amortization shows, and the gate holds them
	// to the same regression and zero-allocation bars as engine_step.
	EnsembleStep  []ensembleBench `json:"ensemble_step,omitempty"`
	QuickFig4Grid []gridBench     `json:"quick_fig4_grid"`
	LowLoadCells  []cellBench     `json:"low_load_cells"`
	// IdleHorizon times a fixed 200K-cycle horizon over a workload that
	// stops injecting at cycle 2K — the drain-tail / stopped-workload
	// pattern of Figure 6 and the run-to-drain tests. This is where
	// clock fast-forwarding itself pays: the tick engine executes every
	// idle cycle, the skipping engine only the occupied ones.
	IdleHorizon []cellBench `json:"idle_horizon"`
}

// stepBench is the per-topology cost of one tick-driven Step (the
// engine's inner loop, with idle skipping out of the picture), measured
// at two operating points: steady state below saturation, and a
// near-saturation rate where arbitration dominates (deep candidate
// lists, inversion checks every cycle, preemptions under PVC).
type stepBench struct {
	Topology   string  `json:"topology"`
	Rate       float64 `json:"rate"`
	NsPerCycle float64 `json:"ns_per_cycle"`
	// AllocsPerStep must be exactly zero at the sub-saturation point
	// (the regression gate fails otherwise). Saturated marks the
	// arbitration-heavy point, where source backlog grows by design and
	// the amortized container growth it causes is offered load, not an
	// engine leak — the alloc gate skips those entries.
	AllocsPerStep float64 `json:"allocs_per_step"`
	Saturated     bool    `json:"saturated,omitempty"`
}

// ensembleBench is one ensemble operating point: K seed-axis lanes of
// the same topology advanced together, cost expressed per lane-cycle so
// the number is directly comparable to the single-engine engine_step
// ns/cycle at the same topology and rate.
type ensembleBench struct {
	Topology string  `json:"topology"`
	Rate     float64 `json:"rate"`
	Lanes    int     `json:"lanes"`
	// NsPerLaneCycle is wall-clock over (cycles × lanes): the aggregate
	// per-seed simulation cost the seed axis actually pays.
	NsPerLaneCycle float64 `json:"ns_per_lane_cycle"`
	// AllocsPerLaneStep must be exactly zero — the ensemble points run
	// at the sub-saturation rate, where a warm engine allocates nothing.
	AllocsPerLaneStep float64 `json:"allocs_per_lane_step"`
}

// gridBench is one full quick-Figure-4-grid regeneration.
type gridBench struct {
	Workers  int     `json:"workers"` // 0 = one per CPU
	SkipIdle bool    `json:"skip_idle"`
	WallMs   float64 `json:"wall_ms"`
}

// cellBench is one low-load simulation cell, timed with idle skipping on
// (skip) and off (tick); TickOverSkip is the skipping speedup.
type cellBench struct {
	Topology     string  `json:"topology"`
	Rate         float64 `json:"rate"`
	SkipWallMs   float64 `json:"skip_wall_ms"`
	TickWallMs   float64 `json:"tick_wall_ms"`
	TickOverSkip float64 `json:"tick_over_skip"`
}

// benchOpts carries the bench subcommand's CLI state.
type benchOpts struct {
	outPath string
	note    string
	// baseline, when set, names a committed BENCH_*.json to compare the
	// fresh engine-step measurements against; a per-point ns/cycle
	// regression beyond maxRegress (fractional) fails the run, as does
	// any steady-state allocation. This is CI's perf gate.
	baseline   string
	maxRegress float64
	// engineOnly skips the wall-clock grid sections, leaving the
	// per-topology engine step cost and the ensemble aggregate points —
	// everything the baseline comparison reads.
	engineOnly bool
	// cpuProfile/memProfile, when set, write runtime/pprof profiles of
	// the benchmark run, so perf work can be profiled with the shipped
	// tool instead of a patched one. The CPU profile covers the whole
	// run; the heap profile is written at the end.
	cpuProfile string
	memProfile string
}

// benchMain parses the bench subcommand's flags and runs the benchmarks.
func benchMain(args []string) error {
	fs := newFlagSet("bench", "noctool bench [flags]",
		`Measure engine benchmarks and write a machine-readable BENCH_<date>.json
report. -baseline compares the per-topology engine step cost against a
committed report, failing the run past -maxregress; this is CI's perf gate.`)
	sim := addSimFlags(fs)
	out := fs.String("out", "", "output path for the benchmark JSON (default BENCH_<date>.json)")
	note := fs.String("note", "", "free-form annotation stored in the JSON")
	baseline := fs.String("baseline", "", "BENCH_*.json baseline to compare engine ns/cycle against")
	maxRegress := fs.Float64("maxregress", 0.25, "tolerated fractional ns/cycle regression vs -baseline")
	engineOnly := fs.Bool("engine-only", false, "measure only the per-topology engine step cost")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("bench takes no arguments, got %q", fs.Args())
	}
	return runBench(sim.params(explicitFlags(fs)), benchOpts{
		outPath: *out, note: *note,
		baseline: *baseline, maxRegress: *maxRegress, engineOnly: *engineOnly,
		cpuProfile: *cpuProfile, memProfile: *memProfile,
	})
}

// runBench measures and writes the report. Wall-clock samples are
// best-of-three to shave scheduler noise; simulation results themselves
// are deterministic so repetition only stabilizes timing.
func runBench(p experiments.Params, o benchOpts) error {
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return fmt.Errorf("bench -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("bench -cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	outPath := o.outPath
	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
	}
	rep := benchReport{
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          p.Seed,
		Note:          o.note,
		GitHead:       gitHead(),
		EngineVersion: network.EngineVersion(),
		Hostname:      hostname(),
		CPUModel:      cpuModel(),
	}

	fmt.Println("bench: engine Step cost per topology (steady state + near-saturation)")
	for _, kind := range topology.Kinds() {
		rep.EngineStep = append(rep.EngineStep, benchStep(kind, steadyRate, false, p.Seed))
		rep.EngineStep = append(rep.EngineStep, benchStep(kind, saturationRate(kind), true, p.Seed))
	}

	fmt.Println("bench: ensemble aggregate cost per lane-cycle (seed-axis batching)")
	for _, kind := range topology.Kinds() {
		for _, lanes := range []int{1, 4, 8} {
			rep.EnsembleStep = append(rep.EnsembleStep, benchEnsemble(kind, steadyRate, lanes, p.Seed))
		}
	}

	if !o.engineOnly {
		fmt.Println("bench: quick Fig4 grid wall-clock (workers x idle skip)")
		quick := experiments.QuickParams()
		quick.Seed = p.Seed
		for _, workers := range []int{1, 0} {
			for _, skip := range []bool{true, false} {
				g := quick
				g.Workers = workers
				g.DisableIdleSkip = !skip
				rep.QuickFig4Grid = append(rep.QuickFig4Grid, gridBench{
					Workers:  workers,
					SkipIdle: skip,
					WallMs: bestOf(3, func() {
						experiments.Fig4(experiments.Uniform, experiments.QuickFig4Rates(), g)
					}),
				})
			}
		}

		fmt.Println("bench: low-load cells, idle skipping on vs off")
		for _, kind := range topology.Kinds() {
			for _, rate := range []float64{0.01, 0.02} {
				rep.LowLoadCells = append(rep.LowLoadCells, benchCell(kind, rate, p.Seed))
			}
		}

		fmt.Println("bench: idle horizon (fixed 200K-cycle run, injection stops at 2K)")
		for _, kind := range topology.Kinds() {
			rep.IdleHorizon = append(rep.IdleHorizon, benchIdleHorizon(kind, p.Seed))
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %s\n", outPath)
	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return fmt.Errorf("bench -memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("bench -memprofile: %w", err)
		}
	}
	for _, c := range rep.LowLoadCells {
		fmt.Printf("  low-load %-8s rate %.2f: skip %.2fms  tick %.2fms  (%.2fx)\n",
			c.Topology, c.Rate, c.SkipWallMs, c.TickWallMs, c.TickOverSkip)
	}
	for _, c := range rep.IdleHorizon {
		fmt.Printf("  idle-horizon %-8s: skip %.2fms  tick %.2fms  (%.2fx)\n",
			c.Topology, c.SkipWallMs, c.TickWallMs, c.TickOverSkip)
	}
	if o.baseline != "" {
		return compareBaseline(rep, o.baseline, o.maxRegress)
	}
	return nil
}

// stepKey identifies one engine_step operating point across reports.
func stepKey(s stepBench) string { return fmt.Sprintf("%s@%.2f", s.Topology, s.Rate) }

// ensembleKey identifies one ensemble_step operating point across
// reports.
func ensembleKey(s ensembleBench) string {
	return fmt.Sprintf("%s@%.2fxK%d", s.Topology, s.Rate, s.Lanes)
}

// compareBaseline fails when any engine_step point regressed more than
// maxRegress (fractional) against the committed baseline's ns/cycle, or
// when the fresh run allocated at a sub-saturation point (the engine
// must be exactly allocation-free there; saturated points legitimately
// grow backlog). Points present in only one report are reported but
// tolerated, so adding a topology or rate does not wedge CI.
func compareBaseline(rep benchReport, baselinePath string, maxRegress float64) error {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %w", baselinePath, err)
	}
	baseNs := map[string]float64{}
	for _, s := range base.EngineStep {
		baseNs[stepKey(s)] = s.NsPerCycle
	}
	fmt.Printf("bench: comparing engine ns/cycle against %s (max regression %.0f%%)\n",
		baselinePath, maxRegress*100)
	if base.CPUModel != "" && base.CPUModel != rep.CPUModel {
		fmt.Printf("bench: WARNING baseline CPU %q differs from this host's %q\n", base.CPUModel, rep.CPUModel)
	}
	var failures []string
	for _, s := range rep.EngineStep {
		if !s.Saturated && s.AllocsPerStep != 0 {
			failures = append(failures, fmt.Sprintf("%s allocates %v/step at steady state (want exactly 0)",
				stepKey(s), s.AllocsPerStep))
		}
		old, ok := baseNs[stepKey(s)]
		if !ok || old <= 0 {
			fmt.Printf("  %-14s %8.1f ns/cycle (no baseline entry)\n", stepKey(s), s.NsPerCycle)
			continue
		}
		delta := (s.NsPerCycle - old) / old
		fmt.Printf("  %-14s %8.1f ns/cycle vs %8.1f baseline (%+.1f%%)\n",
			stepKey(s), s.NsPerCycle, old, delta*100)
		if delta > maxRegress {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (%.1f -> %.1f ns/cycle)",
				stepKey(s), delta*100, old, s.NsPerCycle))
		}
	}
	// The ensemble points go through the same bars: exact zero
	// allocation (they run at the sub-saturation rate only) and the
	// regression tolerance against the baseline's matching K point.
	// Reports predating the ensemble section simply lack the entries —
	// tolerated like any missing point. Where the baseline carries a
	// single-engine measurement at the same topology and rate, the
	// amortization the batch bought over that baseline is printed too.
	baseEns := map[string]float64{}
	for _, s := range base.EnsembleStep {
		baseEns[ensembleKey(s)] = s.NsPerLaneCycle
	}
	for _, s := range rep.EnsembleStep {
		if s.AllocsPerLaneStep != 0 {
			failures = append(failures, fmt.Sprintf("%s allocates %v/lane-step at steady state (want exactly 0)",
				ensembleKey(s), s.AllocsPerLaneStep))
		}
		var vsSingle string
		if old, ok := baseNs[fmt.Sprintf("%s@%.2f", s.Topology, s.Rate)]; ok && old > 0 {
			vsSingle = fmt.Sprintf("  [%.2fx vs baseline single engine]", old/s.NsPerLaneCycle)
		}
		old, ok := baseEns[ensembleKey(s)]
		if !ok || old <= 0 {
			fmt.Printf("  %-16s %8.1f ns/lane-cycle (no baseline entry)%s\n", ensembleKey(s), s.NsPerLaneCycle, vsSingle)
			continue
		}
		delta := (s.NsPerLaneCycle - old) / old
		fmt.Printf("  %-16s %8.1f ns/lane-cycle vs %8.1f baseline (%+.1f%%)%s\n",
			ensembleKey(s), s.NsPerLaneCycle, old, delta*100, vsSingle)
		if delta > maxRegress {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (%.1f -> %.1f ns/lane-cycle)",
				ensembleKey(s), delta*100, old, s.NsPerLaneCycle))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("bench: regression gate passed")
	return nil
}

// steadyRate is the sub-saturation engine_step operating point: every
// topology digests it with bounded queues, so the allocation gate
// applies.
const steadyRate = 0.04

// saturationRate returns the per-topology arbitration-heavy operating
// point: offered load at or just past the topology's uniform-random
// saturation knee (Figure 4(a)), where candidate lists run deep,
// inversion checks fire every cycle and PVC preemptions appear. The
// baseline mesh saturates earliest; replicated meshes and the
// express-channel topologies hold out longer.
func saturationRate(kind topology.Kind) float64 {
	switch kind {
	case topology.MeshX1:
		return 0.10
	case topology.MeshX2:
		return 0.14
	default:
		return 0.16
	}
}

// benchStep times the raw tick path: a warmed network advanced one Step
// at a time, with allocations counted across the timed window. Like the
// wall-clock sections, the measurement is best-of-three — the simulated
// work is deterministic (every repetition resets the engine to the same
// seed), so repetition only shaves scheduler and cache noise off the
// committed baseline and CI comparisons.
func benchStep(kind topology.Kind, rate float64, saturated bool, seed uint64) stepBench {
	const warm, steps, reps = 30_000, 100_000, 3
	w := traffic.UniformRandom(topology.ColumnNodes, rate)
	cfg := network.Config{
		Kind:     kind,
		QoS:      qos.DefaultConfig(w.TotalFlows()),
		Workload: w,
		Seed:     seed,
		// The tick path is what is being timed; skipping lives in Run.
		DisableIdleSkip: true,
	}
	n := network.MustNew(cfg)
	best := stepBench{Topology: kind.String(), Rate: rate, Saturated: saturated}
	for rep := 0; rep < reps; rep++ {
		if rep > 0 {
			if err := n.Reset(cfg); err != nil {
				panic(err)
			}
		}
		n.Run(warm)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < steps; i++ {
			n.Step()
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(wall.Nanoseconds()) / steps
		if rep == 0 || ns < best.NsPerCycle {
			best.NsPerCycle = ns
		}
		// The simulation is deterministic, but only the first repetition
		// grows fresh containers; steady-state allocation behaviour is
		// what the gate guards, so keep the quietest repetition's count
		// (any later rep re-runs on pre-grown backing arrays, exactly
		// like a long-lived engine).
		allocs := float64(after.Mallocs-before.Mallocs) / steps
		if rep == 0 || allocs < best.AllocsPerStep {
			best.AllocsPerStep = allocs
		}
	}
	return best
}

// benchEnsemble times the seed-axis batch path: K lanes (seeds seed,
// seed+1, …) advanced through one Ensemble with the tick path forced
// (idle skipping off, exactly like benchStep), cost reported per
// lane-cycle. Best-of-three like every other wall-clock section; each
// repetition resets the ensemble to the same configurations, so only
// timing noise varies.
func benchEnsemble(kind topology.Kind, rate float64, lanes int, seed uint64) ensembleBench {
	// Best-of-five where the single-engine points take three: the
	// ensemble numbers feed a throughput acceptance bar, and wider
	// minimum-taking shaves more scheduler noise off the committed
	// baseline on busy hosts.
	const warm, cycles, reps = 30_000, 100_000, 5
	cfgs := make([]network.Config, lanes)
	for i := range cfgs {
		w := traffic.UniformRandom(topology.ColumnNodes, rate)
		cfgs[i] = network.Config{
			Kind:            kind,
			QoS:             qos.DefaultConfig(w.TotalFlows()),
			Workload:        w,
			Seed:            seed + uint64(i),
			DisableIdleSkip: true,
		}
	}
	e, err := network.NewEnsemble(cfgs)
	if err != nil {
		panic(err)
	}
	best := ensembleBench{Topology: kind.String(), Rate: rate, Lanes: lanes}
	laneSteps := float64(cycles) * float64(lanes)
	for rep := 0; rep < reps; rep++ {
		if rep > 0 {
			if err := e.Reset(cfgs); err != nil {
				panic(err)
			}
		}
		e.Run(warm)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		e.Run(cycles)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(wall.Nanoseconds()) / laneSteps
		if rep == 0 || ns < best.NsPerLaneCycle {
			best.NsPerLaneCycle = ns
		}
		allocs := float64(after.Mallocs-before.Mallocs) / laneSteps
		if rep == 0 || allocs < best.AllocsPerLaneStep {
			best.AllocsPerLaneStep = allocs
		}
	}
	return best
}

// gitHead returns the commit the working tree is at ("-dirty" appended
// when tracked files carry uncommitted changes), or "" outside a
// repository (provenance only — never fails the run).
func gitHead() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	head := strings.TrimSpace(string(out))
	// A baseline measured from a modified tree must say so: the commit
	// hash alone would claim provenance the working tree doesn't have.
	if diff, err := exec.Command("git", "status", "--porcelain", "--untracked-files=no").Output(); err == nil &&
		len(strings.TrimSpace(string(diff))) > 0 {
		head += "-dirty"
	}
	return head
}

// hostname names the measuring machine.
func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return ""
	}
	return h
}

// cpuModel reads the CPU model from /proc/cpuinfo (Linux; "" elsewhere).
func cpuModel() string {
	blob, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// benchCell times one warmup+measure quick cell with skipping on and off.
func benchCell(kind topology.Kind, rate float64, seed uint64) cellBench {
	run := func(disable bool) float64 {
		w := traffic.UniformRandom(topology.ColumnNodes, rate)
		return bestOf(3, func() {
			n := network.MustNew(network.Config{
				Kind:            kind,
				QoS:             qos.DefaultConfig(w.TotalFlows()),
				Workload:        w,
				Seed:            seed,
				DisableIdleSkip: disable,
			})
			n.WarmupAndMeasure(experiments.QuickParams().Warmup, experiments.QuickParams().Measure)
		})
	}
	skip, tick := run(false), run(true)
	return cellBench{
		Topology:     kind.String(),
		Rate:         rate,
		SkipWallMs:   skip,
		TickWallMs:   tick,
		TickOverSkip: tick / skip,
	}
}

// benchIdleHorizon times a fixed horizon dominated by post-drain idle
// cycles, with skipping on and off.
func benchIdleHorizon(kind topology.Kind, seed uint64) cellBench {
	const rate, stop, horizon = 0.03, 2_000, 200_000
	run := func(disable bool) float64 {
		w := traffic.UniformRandom(topology.ColumnNodes, rate).WithStop(stop)
		return bestOf(3, func() {
			n := network.MustNew(network.Config{
				Kind:            kind,
				QoS:             qos.DefaultConfig(w.TotalFlows()),
				Workload:        w,
				Seed:            seed,
				DisableIdleSkip: disable,
			})
			n.Run(horizon)
		})
	}
	skip, tick := run(false), run(true)
	return cellBench{
		Topology:     kind.String(),
		Rate:         rate,
		SkipWallMs:   skip,
		TickWallMs:   tick,
		TickOverSkip: tick / skip,
	}
}

// bestOf runs fn reps times and returns the fastest wall-clock in
// milliseconds.
func bestOf(reps int, fn func()) float64 {
	best := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / 1e6
}
