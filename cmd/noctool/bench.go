package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tanoq/internal/experiments"
	"tanoq/internal/network"
	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// benchReport is the machine-readable performance snapshot `noctool bench`
// writes to BENCH_<date>.json, tracking the engine's perf trajectory
// PR over PR: raw per-cycle engine cost, wall-clock for the quick Figure 4
// grid (sequential vs parallel, idle skipping on vs off), and the
// low-load cells where the event-driven engine's O(work) behaviour shows.
type benchReport struct {
	Date          string      `json:"date"`
	GoVersion     string      `json:"go_version"`
	GOMAXPROCS    int         `json:"gomaxprocs"`
	Seed          uint64      `json:"seed"`
	Note          string      `json:"note,omitempty"`
	EngineStep    []stepBench `json:"engine_step"`
	QuickFig4Grid []gridBench `json:"quick_fig4_grid"`
	LowLoadCells  []cellBench `json:"low_load_cells"`
	// IdleHorizon times a fixed 200K-cycle horizon over a workload that
	// stops injecting at cycle 2K — the drain-tail / stopped-workload
	// pattern of Figure 6 and the run-to-drain tests. This is where
	// clock fast-forwarding itself pays: the tick engine executes every
	// idle cycle, the skipping engine only the occupied ones.
	IdleHorizon []cellBench `json:"idle_horizon"`
}

// stepBench is the per-topology cost of one tick-driven Step at steady
// state (the engine's inner loop, with idle skipping out of the picture).
type stepBench struct {
	Topology      string  `json:"topology"`
	Rate          float64 `json:"rate"`
	NsPerCycle    float64 `json:"ns_per_cycle"`
	AllocsPerStep float64 `json:"allocs_per_step"`
}

// gridBench is one full quick-Figure-4-grid regeneration.
type gridBench struct {
	Workers  int     `json:"workers"` // 0 = one per CPU
	SkipIdle bool    `json:"skip_idle"`
	WallMs   float64 `json:"wall_ms"`
}

// cellBench is one low-load simulation cell, timed with idle skipping on
// (skip) and off (tick); TickOverSkip is the skipping speedup.
type cellBench struct {
	Topology     string  `json:"topology"`
	Rate         float64 `json:"rate"`
	SkipWallMs   float64 `json:"skip_wall_ms"`
	TickWallMs   float64 `json:"tick_wall_ms"`
	TickOverSkip float64 `json:"tick_over_skip"`
}

// benchOpts carries the bench subcommand's CLI state.
type benchOpts struct {
	outPath string
	note    string
	// baseline, when set, names a committed BENCH_*.json to compare the
	// fresh engine-step measurements against; a per-topology ns/cycle
	// regression beyond maxRegress (fractional) fails the run, as does
	// any steady-state allocation. This is CI's perf gate.
	baseline   string
	maxRegress float64
	// engineOnly skips the wall-clock grid sections, leaving just the
	// per-topology engine step cost the baseline comparison reads.
	engineOnly bool
}

// runBench measures and writes the report. Wall-clock samples are
// best-of-three to shave scheduler noise; simulation results themselves
// are deterministic so repetition only stabilizes timing.
func runBench(p experiments.Params, o benchOpts) error {
	outPath := o.outPath
	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
	}
	rep := benchReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       p.Seed,
		Note:       o.note,
	}

	fmt.Println("bench: engine Step cost per topology (steady state, uniform 4%)")
	for _, kind := range topology.Kinds() {
		rep.EngineStep = append(rep.EngineStep, benchStep(kind, p.Seed))
	}

	if !o.engineOnly {
		fmt.Println("bench: quick Fig4 grid wall-clock (workers x idle skip)")
		quick := experiments.QuickParams()
		quick.Seed = p.Seed
		for _, workers := range []int{1, 0} {
			for _, skip := range []bool{true, false} {
				g := quick
				g.Workers = workers
				g.DisableIdleSkip = !skip
				rep.QuickFig4Grid = append(rep.QuickFig4Grid, gridBench{
					Workers:  workers,
					SkipIdle: skip,
					WallMs: bestOf(3, func() {
						experiments.Fig4(experiments.Uniform, experiments.QuickFig4Rates(), g)
					}),
				})
			}
		}

		fmt.Println("bench: low-load cells, idle skipping on vs off")
		for _, kind := range topology.Kinds() {
			for _, rate := range []float64{0.01, 0.02} {
				rep.LowLoadCells = append(rep.LowLoadCells, benchCell(kind, rate, p.Seed))
			}
		}

		fmt.Println("bench: idle horizon (fixed 200K-cycle run, injection stops at 2K)")
		for _, kind := range topology.Kinds() {
			rep.IdleHorizon = append(rep.IdleHorizon, benchIdleHorizon(kind, p.Seed))
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %s\n", outPath)
	for _, c := range rep.LowLoadCells {
		fmt.Printf("  low-load %-8s rate %.2f: skip %.2fms  tick %.2fms  (%.2fx)\n",
			c.Topology, c.Rate, c.SkipWallMs, c.TickWallMs, c.TickOverSkip)
	}
	for _, c := range rep.IdleHorizon {
		fmt.Printf("  idle-horizon %-8s: skip %.2fms  tick %.2fms  (%.2fx)\n",
			c.Topology, c.SkipWallMs, c.TickWallMs, c.TickOverSkip)
	}
	if o.baseline != "" {
		return compareBaseline(rep, o.baseline, o.maxRegress)
	}
	return nil
}

// compareBaseline fails when any topology's steady-state engine cost
// regressed more than maxRegress (fractional) against the committed
// baseline's ns/cycle, or when the fresh run allocated on the hot path.
// Topologies present in only one report are reported but tolerated, so
// adding a topology does not wedge CI.
func compareBaseline(rep benchReport, baselinePath string, maxRegress float64) error {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %w", baselinePath, err)
	}
	baseNs := map[string]float64{}
	for _, s := range base.EngineStep {
		baseNs[s.Topology] = s.NsPerCycle
	}
	fmt.Printf("bench: comparing engine ns/cycle against %s (max regression %.0f%%)\n",
		baselinePath, maxRegress*100)
	var failures []string
	for _, s := range rep.EngineStep {
		if s.AllocsPerStep > 0.01 {
			failures = append(failures, fmt.Sprintf("%s allocates %.3f/step at steady state (want 0)",
				s.Topology, s.AllocsPerStep))
		}
		old, ok := baseNs[s.Topology]
		if !ok || old <= 0 {
			fmt.Printf("  %-9s %8.1f ns/cycle (no baseline entry)\n", s.Topology, s.NsPerCycle)
			continue
		}
		delta := (s.NsPerCycle - old) / old
		fmt.Printf("  %-9s %8.1f ns/cycle vs %8.1f baseline (%+.1f%%)\n",
			s.Topology, s.NsPerCycle, old, delta*100)
		if delta > maxRegress {
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%% (%.1f -> %.1f ns/cycle)",
				s.Topology, delta*100, old, s.NsPerCycle))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("bench: regression gate passed")
	return nil
}

// benchStep times the raw tick path: a steady-state network advanced one
// Step at a time, with allocations counted across the timed window.
func benchStep(kind topology.Kind, seed uint64) stepBench {
	const rate, warm, steps = 0.04, 30_000, 100_000
	w := traffic.UniformRandom(topology.ColumnNodes, rate)
	n := network.MustNew(network.Config{
		Kind:     kind,
		QoS:      qos.DefaultConfig(w.TotalFlows()),
		Workload: w,
		Seed:     seed,
		// The tick path is what is being timed; skipping lives in Run.
		DisableIdleSkip: true,
	})
	n.Run(warm)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < steps; i++ {
		n.Step()
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return stepBench{
		Topology:      kind.String(),
		Rate:          rate,
		NsPerCycle:    float64(wall.Nanoseconds()) / steps,
		AllocsPerStep: float64(after.Mallocs-before.Mallocs) / steps,
	}
}

// benchCell times one warmup+measure quick cell with skipping on and off.
func benchCell(kind topology.Kind, rate float64, seed uint64) cellBench {
	run := func(disable bool) float64 {
		w := traffic.UniformRandom(topology.ColumnNodes, rate)
		return bestOf(3, func() {
			n := network.MustNew(network.Config{
				Kind:            kind,
				QoS:             qos.DefaultConfig(w.TotalFlows()),
				Workload:        w,
				Seed:            seed,
				DisableIdleSkip: disable,
			})
			n.WarmupAndMeasure(experiments.QuickParams().Warmup, experiments.QuickParams().Measure)
		})
	}
	skip, tick := run(false), run(true)
	return cellBench{
		Topology:     kind.String(),
		Rate:         rate,
		SkipWallMs:   skip,
		TickWallMs:   tick,
		TickOverSkip: tick / skip,
	}
}

// benchIdleHorizon times a fixed horizon dominated by post-drain idle
// cycles, with skipping on and off.
func benchIdleHorizon(kind topology.Kind, seed uint64) cellBench {
	const rate, stop, horizon = 0.03, 2_000, 200_000
	run := func(disable bool) float64 {
		w := traffic.UniformRandom(topology.ColumnNodes, rate).WithStop(stop)
		return bestOf(3, func() {
			n := network.MustNew(network.Config{
				Kind:            kind,
				QoS:             qos.DefaultConfig(w.TotalFlows()),
				Workload:        w,
				Seed:            seed,
				DisableIdleSkip: disable,
			})
			n.Run(horizon)
		})
	}
	skip, tick := run(false), run(true)
	return cellBench{
		Topology:     kind.String(),
		Rate:         rate,
		SkipWallMs:   skip,
		TickWallMs:   tick,
		TickOverSkip: tick / skip,
	}
}

// bestOf runs fn reps times and returns the fastest wall-clock in
// milliseconds.
func bestOf(reps int, fn func()) float64 {
	best := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / 1e6
}
