package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/sim"
	"tanoq/internal/workload"
)

// traceOpts carries the CLI state of the trace subcommands: the same
// resolver layers as sweep (record resolves scenario files through the
// layered pipeline) plus the output path.
type traceOpts struct {
	layers  layerOpts
	outPath string
	stats   bool
}

// traceMain parses the trace subcommand's flags and dispatches its verb.
func traceMain(args []string) error {
	fs := newFlagSet("trace", "noctool trace [flags] record <scenario>[#profile] | replay <file> | info <file>",
		`record captures a single-cell scenario's injection stream into a binary
trace and prints its delivery fingerprint (scenario files resolve through
the same layered pipeline as sweep); replay re-runs a recorded trace in
the recorded cell; info prints a trace's header and record stats
(-stats adds a per-flow breakdown of record counts and cycle spans).`)
	sim := addSimFlags(fs)
	out := fs.String("out", "", "output path for the recorded trace")
	profile := fs.String("profile", "", "record: named [profiles.<name>] patch to apply (overrides a #profile suffix)")
	var set multiFlag
	fs.Var(&set, "set", "record: top-layer override `key=value` (dotted paths; repeatable)")
	stats := fs.Bool("stats", false, "info: print per-flow record counts and cycle spans")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("trace needs a verb and a target: trace record <scenario> | trace replay <file> | trace info <file>")
	}
	explicit := explicitFlags(fs)
	return runTrace(fs.Arg(0), fs.Arg(1), traceOpts{
		layers: layerOpts{
			sim: sim, explicit: explicit, params: sim.params(explicit),
			profile: *profile, set: set,
		},
		outPath: *out,
		stats:   *stats,
	})
}

// runTrace dispatches `noctool trace record|replay|info <target>`.
func runTrace(verb, target string, o traceOpts) error {
	switch verb {
	case "record":
		return runTraceRecord(target, o)
	case "replay":
		return runTraceReplay(target, o)
	case "info":
		return runTraceInfo(target, o.stats)
	default:
		return fmt.Errorf("trace: unknown verb %q (want record, replay or info)", verb)
	}
}

// runTraceRecord runs a single-cell scenario with a recorder attached and
// writes the captured injection stream as a binary trace whose header
// carries the cell (topology, QoS, overrides, seed, schedule) — so the
// trace replays self-contained. The printed fingerprint is what `trace
// replay` must reproduce (make trace-smoke diffs the two).
func runTraceRecord(scenarioArg string, o traceOpts) error {
	sc, _, err := loadLayered(scenarioArg, o.layers)
	if err != nil {
		return err
	}
	grid, err := sc.Grid()
	if err != nil {
		return err
	}
	if grid.Size() != 1 {
		return fmt.Errorf("trace record needs a single-cell scenario, got %d cells — narrow the axes (one pattern/topology/qos/seed/rate)", grid.Size())
	}
	cell := grid.Cell(0)
	cell.Config.DisableIdleSkip = o.layers.params.DisableIdleSkip
	n, err := network.New(cell.Config)
	if err != nil {
		return err
	}
	if cell.Setup != nil {
		cell.Setup(n)
	}
	rec := &workload.Recorder{}
	rec.Attach(n)
	n.WarmupAndMeasure(cell.Warmup, cell.Measure)

	point := grid.Points[0]
	tr := rec.Trace(workload.TraceHeader{
		Nodes:         cell.Config.Nodes,
		Topology:      point.Topology.String(),
		QoS:           point.Mode.String(),
		Seed:          point.Seed,
		Warmup:        cell.Warmup,
		Measure:       cell.Measure,
		FrameCycles:   int(sc.FrameCycles),
		WindowPackets: sc.WindowPackets,
		QuantumFlits:  sc.QuantumFlits,
		MarginClasses: sc.MarginClasses,
		// A faulted cell's configuration rides along in the version-2
		// header, so replays reproduce the same fault schedule.
		Faults:         cell.Config.Faults.Windows,
		RetryTimeout:   cell.Config.Faults.RetryTimeout,
		MaxRetries:     cell.Config.Faults.MaxRetries,
		WatchdogCycles: cell.Config.WatchdogCycles,
		// The recording engine's version stamp rides in the version-2
		// header; fault-free captures encode as version 1 and drop it.
		Engine: network.EngineVersion(),
	})
	out := o.outPath
	if out == "" {
		out = sc.Name + ".trace"
	}
	blob := tr.Encode()
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d records over cycles 0..%d (%d bytes, %.1f bytes/record)\n",
		out, rec.Len(), n.Now(), len(blob), float64(len(blob))/float64(max(rec.Len(), 1)))
	fmt.Printf("cell: %s %s nodes=%d seed=%d warmup=%d measure=%d\n",
		point.Topology, point.Mode, cell.Config.Nodes, point.Seed, cell.Warmup, cell.Measure)
	fmt.Printf("fingerprint: %s\n", workload.Fingerprint(n.Stats(), n.Now()))
	return nil
}

// runTraceReplay rebuilds the recorded cell from the trace header, runs
// the replay workload through the recorded schedule and prints the
// delivery fingerprint. For an open-loop recording the fingerprint equals
// the recorded run's exactly.
func runTraceReplay(path string, o traceOpts) error {
	tr, err := workload.ReadTraceFile(path)
	if err != nil {
		return err
	}
	name := "replay:" + strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	cfg, warmup, measure, err := tr.Cell(name)
	if err != nil {
		return err
	}
	cfg.DisableIdleSkip = o.layers.params.DisableIdleSkip
	n, err := network.New(cfg)
	if err != nil {
		return err
	}
	n.WarmupAndMeasure(warmup, measure)
	st := n.Stats()
	fmt.Printf("replayed %s: %d records, delivered %d packets, mean latency %.1f cycles\n",
		path, len(tr.Records), st.TotalDelivered, st.MeanLatency())
	fmt.Printf("cell: %s %s nodes=%d seed=%d warmup=%d measure=%d\n",
		tr.Header.Topology, tr.Header.QoS, tr.Header.Nodes, tr.Header.Seed, warmup, measure)
	fmt.Printf("fingerprint: %s\n", workload.Fingerprint(st, n.Now()))
	return nil
}

// runTraceInfo prints a trace's header and record statistics without
// running anything; -stats adds a per-flow breakdown (record count,
// flits, cycle span) sorted by flow id.
func runTraceInfo(path string, stats bool) error {
	tr, err := workload.ReadTraceFile(path)
	if err != nil {
		return err
	}
	h := tr.Header
	fmt.Printf("%s: %d records\n", path, len(tr.Records))
	fmt.Printf("cell: %s %s nodes=%d seed=%d warmup=%d measure=%d\n",
		h.Topology, h.QoS, h.Nodes, h.Seed, h.Warmup, h.Measure)
	if h.FrameCycles != 0 || h.WindowPackets != 0 || h.QuantumFlits != 0 || h.MarginClasses != 0 {
		fmt.Printf("qos overrides: frame=%d window=%d quantum=%d margin=%d\n",
			h.FrameCycles, h.WindowPackets, h.QuantumFlits, h.MarginClasses)
	}
	if h.RetryTimeout != 0 || h.MaxRetries != 0 || h.WatchdogCycles != 0 {
		fmt.Printf("recovery: retry_timeout=%d max_retries=%d watchdog=%d\n",
			h.RetryTimeout, h.MaxRetries, h.WatchdogCycles)
	}
	for _, w := range h.Faults {
		fmt.Printf("fault: %s\n", w)
	}
	if len(tr.Records) == 0 {
		return nil
	}
	flows := map[noc.FlowID]int{}
	classes := map[noc.Class]int{}
	var flits int
	for _, r := range tr.Records {
		flows[r.Flow]++
		classes[r.Class]++
		flits += r.Class.Flits()
	}
	first, last := tr.Records[0].At, tr.Records[len(tr.Records)-1].At
	span := last - first + 1
	fmt.Printf("cycles %d..%d, %d active flows, %d requests / %d replies, %d flits (%.4f flits/cycle)\n",
		first, last, len(flows), classes[noc.ClassRequest], classes[noc.ClassReply],
		flits, float64(flits)/float64(span))
	if stats {
		printFlowStats(tr)
	}
	return nil
}

// printFlowStats renders the -stats per-flow table: records are grouped
// by flow and the injection stream is scanned once per table to keep
// the records slice streaming-friendly.
func printFlowStats(tr *workload.Trace) {
	type flowStat struct {
		records, flits int
		first, last    sim.Cycle
	}
	stats := map[noc.FlowID]*flowStat{}
	var ids []noc.FlowID
	for _, r := range tr.Records {
		s := stats[r.Flow]
		if s == nil {
			s = &flowStat{first: r.At, last: r.At}
			stats[r.Flow] = s
			ids = append(ids, r.Flow)
		}
		s.records++
		s.flits += r.Class.Flits()
		if r.At < s.first {
			s.first = r.At
		}
		if r.At > s.last {
			s.last = r.At
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Printf("%6s %9s %9s %11s %11s %10s\n", "flow", "records", "flits", "first", "last", "span")
	for _, id := range ids {
		s := stats[id]
		fmt.Printf("%6d %9d %9d %11d %11d %10d\n",
			id, s.records, s.flits, s.first, s.last, s.last-s.first+1)
	}
}
