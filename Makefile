# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

.PHONY: build test vet bench bench-json

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# bench runs the repository benchmark suite once through `go test`.
bench:
	go test -run '^$$' -bench . -benchtime 1x -benchmem .

# bench-json writes the machine-readable perf snapshot BENCH_<date>.json
# (engine step cost, quick Fig4 grid wall-clock, low-load cell speedups).
bench-json:
	go run ./cmd/noctool bench
