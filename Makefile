# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

.PHONY: build test vet lint race determinism audit sweep-smoke trace-smoke fuzz-smoke resume-smoke ensemble-smoke metrics-smoke bench bench-json

# The engine version stamp: embedded in `noctool version`, cache keys,
# BENCH_*.json and v2 trace headers, so results name the engine that made
# them (a new stamp retires every cached sweep row). Binaries built
# without the ldflags report "dev".
VERSION := $(shell git describe --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -X tanoq/internal/network.buildVersion=$(VERSION)

build:
	go build -ldflags "$(LDFLAGS)" ./...

vet:
	go vet ./...

test:
	go test ./...

# lint mirrors CI's static-analysis job: vet always, staticcheck when the
# tool is installed (go install honnef.co/go/tools/cmd/staticcheck@latest).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# race runs the full test suite under the race detector (CI's test step).
race:
	go test -race ./...

# determinism is CI's named gate for the engine's core contract: the
# idle-skip equivalence and worker-count/skip determinism suites, run
# twice (the pattern covers ...Equivalent..., ...Determinism and
# ...Deterministic... test names across network/runner/experiments/
# scenario/sim).
determinism:
	go test -run 'Equivalen|Determin' -count=2 ./...

# audit reruns the robustness and determinism suites with the engine's
# invariant auditor armed (TANOQ_AUDIT): every 256 cycles each network
# walks its free lists, event census, VC pools and credit windows and
# fails loudly on the first conservation violation, so silent state
# corruption cannot hide behind a passing fingerprint (CI's audit job).
audit:
	TANOQ_AUDIT=256 go test -run 'Fault|Retry|Recover|Watchdog|Audit|Equivalen|Determin' -count=1 ./...

# sweep-smoke exercises the declarative scenario path end to end: the
# quick Figure 4 grid from a JSON file, the permutation-pattern grid from
# a TOML file (an include over the shared base), the closed-loop client
# sweep, a trace-replay sweep of the committed example capture, the
# aggressor/victim DoS sweep (victim slowdown column), and a
# fault-injection degradation sweep (CI's sweep step). The layered block
# then gates the resolver itself: -explain provenance against a committed
# golden, a profiled run against its hand-flattened equivalent
# (byte-identical CSV modulo the wall-clock columns), and cache
# transparency (the profiled run against the warm cache the flat run
# filled must execute zero cells).
sweep-smoke:
	go run ./cmd/noctool sweep -quick examples/sweep/fig4-quick.json
	go run ./cmd/noctool sweep examples/sweep/patterns.toml
	go run ./cmd/noctool sweep examples/sweep/closed-loop.toml
	go run ./cmd/noctool sweep examples/sweep/replay.toml
	go run ./cmd/noctool sweep examples/sweep/aggressor-victim.toml
	go run ./cmd/noctool degrade examples/sweep/degrade.toml
	go run ./cmd/noctool sweep -explain examples/sweep/layered.toml#quick > /tmp/tanoq-layered.explain
	diff examples/sweep/layered-quick.explain /tmp/tanoq-layered.explain
	rm -rf /tmp/tanoq-layered-cache
	go run ./cmd/noctool sweep -csv -cache -cache-dir /tmp/tanoq-layered-cache examples/sweep/layered-flat.toml > /tmp/tanoq-layered-flat.csv
	go run ./cmd/noctool sweep -csv -cache -cache-dir /tmp/tanoq-layered-cache examples/sweep/layered.toml#quick > /tmp/tanoq-layered-prof.csv 2> /tmp/tanoq-layered-prof.err
	cut -d, --complement -f28,29 /tmp/tanoq-layered-flat.csv > /tmp/tanoq-layered-flat.cut
	cut -d, --complement -f28,29 /tmp/tanoq-layered-prof.csv > /tmp/tanoq-layered-prof.cut
	diff /tmp/tanoq-layered-flat.cut /tmp/tanoq-layered-prof.cut
	grep 'executed 0' /tmp/tanoq-layered-prof.err
	@echo "sweep-smoke: profile matched its hand-flattened file byte-identically; warm cache executed zero cells"

# trace-smoke proves the record→replay exactness contract end to end:
# capture a short open-loop run's injection stream, replay the trace in
# the recorded cell, and diff the two delivery fingerprints (any byte of
# drift fails the diff).
trace-smoke:
	go run ./cmd/noctool trace -out /tmp/tanoq-trace-smoke.trace record examples/sweep/trace-smoke.toml | tee /tmp/tanoq-trace-rec.txt
	go run ./cmd/noctool trace replay /tmp/tanoq-trace-smoke.trace | tee /tmp/tanoq-trace-rep.txt
	@grep '^fingerprint: ' /tmp/tanoq-trace-rec.txt > /tmp/tanoq-trace-rec.fp
	@grep '^fingerprint: ' /tmp/tanoq-trace-rep.txt > /tmp/tanoq-trace-rep.fp
	diff /tmp/tanoq-trace-rec.fp /tmp/tanoq-trace-rep.fp
	@echo "trace-smoke: record and replay fingerprints match"

# resume-smoke proves durable sweep execution end to end: run the grid
# uninterrupted for reference, SIGINT a cached sequential run mid-grid
# (finished cells checkpoint to the content-addressed store as they
# land), resume with -resume and require the resumed table to diff
# bit-identical against the reference (modulo the wall-clock columns,
# which record each run's own elapsed time), then re-run fully cached with
# verification and grep the "executed 0" accounting line — a warm cache
# runs zero simulations. The kill is timing-tolerant by construction:
# wherever the signal lands, the resumed output must still match.
resume-smoke:
	rm -rf /tmp/tanoq-resume-cache
	go build -ldflags "$(LDFLAGS)" -o /tmp/tanoq-resume-noctool ./cmd/noctool
	/tmp/tanoq-resume-noctool sweep -csv examples/sweep/resume-smoke.toml > /tmp/tanoq-resume-ref.csv
	( /tmp/tanoq-resume-noctool sweep -parallel 1 -csv -cache -cache-dir /tmp/tanoq-resume-cache examples/sweep/resume-smoke.toml > /tmp/tanoq-resume-int.csv 2> /tmp/tanoq-resume-int.err & \
	  pid=$$!; sleep 2; kill -INT $$pid 2>/dev/null; wait $$pid ) || true
	@echo "resume-smoke: interrupted run said:"; tail -n 2 /tmp/tanoq-resume-int.err
	/tmp/tanoq-resume-noctool sweep -csv -resume -cache-dir /tmp/tanoq-resume-cache examples/sweep/resume-smoke.toml > /tmp/tanoq-resume-res.csv 2> /tmp/tanoq-resume-res.err
	cut -d, --complement -f28,29 /tmp/tanoq-resume-ref.csv > /tmp/tanoq-resume-ref.cut
	cut -d, --complement -f28,29 /tmp/tanoq-resume-res.csv > /tmp/tanoq-resume-res.cut
	diff /tmp/tanoq-resume-ref.cut /tmp/tanoq-resume-res.cut
	/tmp/tanoq-resume-noctool sweep -csv -resume -cache-dir /tmp/tanoq-resume-cache -cache-verify 2 examples/sweep/resume-smoke.toml > /dev/null 2> /tmp/tanoq-resume-full.err
	grep 'executed 0' /tmp/tanoq-resume-full.err
	@echo "resume-smoke: interrupted sweep resumed bit-identically; warm cache executed zero cells"

# ensemble-smoke proves seed-axis batching is purely an execution
# strategy: the same grid swept cell by cell and with -lanes 4 must
# produce byte-identical CSVs once the wall-clock columns (28–29, the
# only legitimately non-deterministic ones) are cut, the grouped run
# must report its grouping on stderr ("N groups, 4 lanes"), and the warm
# cache the grouped run filled must serve an ungrouped -resume with zero
# executions — grouping never touches cache keys.
ensemble-smoke:
	rm -rf /tmp/tanoq-ensemble-cache
	go run ./cmd/noctool sweep -csv examples/sweep/ensemble-smoke.toml > /tmp/tanoq-ens-flat.csv
	go run ./cmd/noctool sweep -csv -lanes 4 -cache -cache-dir /tmp/tanoq-ensemble-cache examples/sweep/ensemble-smoke.toml > /tmp/tanoq-ens-lanes.csv 2> /tmp/tanoq-ens-lanes.err
	cut -d, --complement -f28,29 /tmp/tanoq-ens-flat.csv > /tmp/tanoq-ens-flat.cut
	cut -d, --complement -f28,29 /tmp/tanoq-ens-lanes.csv > /tmp/tanoq-ens-lanes.cut
	diff /tmp/tanoq-ens-flat.cut /tmp/tanoq-ens-lanes.cut
	grep 'groups, 4 lanes' /tmp/tanoq-ens-lanes.err
	go run ./cmd/noctool sweep -csv -resume -cache-dir /tmp/tanoq-ensemble-cache examples/sweep/ensemble-smoke.toml > /dev/null 2> /tmp/tanoq-ens-warm.err
	grep 'executed 0' /tmp/tanoq-ens-warm.err
	@echo "ensemble-smoke: grouped sweep matched ungrouped byte-identically; warm cache executed zero cells"

# metrics-smoke gates the observability surface end to end. First the
# in-run half: `noctool timeline` over the committed telemetry scenario
# must reproduce its per-interval table byte-identically (probes ride
# the event calendar, so the series is as deterministic as the run).
# Then the live half: a short sweep serving -http must answer /metrics
# with exactly the committed exposition shape (families, HELP/TYPE
# lines and label sets are static from the first scrape; the sed strips
# sample values) and answer /debug/pprof/*, and -progress must emit its
# accounting line. The scrape retry loop tolerates slow process start;
# -http-linger keeps the endpoint up after the (sub-second) sweep
# finishes so the scrape never races completion, and the kill -9 just
# cuts the linger short.
metrics-smoke:
	go build -ldflags "$(LDFLAGS)" -o /tmp/tanoq-metrics-noctool ./cmd/noctool
	/tmp/tanoq-metrics-noctool timeline examples/sweep/timeline-smoke.toml > /tmp/tanoq-timeline.out
	diff examples/sweep/timeline-smoke.golden /tmp/tanoq-timeline.out
	rm -rf /tmp/tanoq-metrics-cache
	/tmp/tanoq-metrics-noctool sweep -parallel 1 -progress -cache -cache-dir /tmp/tanoq-metrics-cache \
	  -http 127.0.0.1:29471 -http-linger 60s examples/sweep/timeline-smoke.toml > /dev/null 2> /tmp/tanoq-metrics.err & \
	pid=$$!; \
	ok=; for i in $$(seq 1 150); do \
	  if grep -q 'progress:' /tmp/tanoq-metrics.err 2>/dev/null; then ok=1; break; fi; \
	  sleep 0.2; done; \
	test -n "$$ok" || { echo "metrics-smoke: sweep never reported progress" >&2; kill -9 $$pid 2>/dev/null; exit 1; }; \
	curl -sf http://127.0.0.1:29471/metrics > /tmp/tanoq-metrics.raw || { echo "metrics-smoke: /metrics not served" >&2; kill -9 $$pid 2>/dev/null; exit 1; }; \
	curl -sf http://127.0.0.1:29471/debug/pprof/cmdline > /dev/null || { echo "metrics-smoke: pprof not served" >&2; kill -9 $$pid 2>/dev/null; exit 1; }; \
	kill -9 $$pid 2>/dev/null; true
	sed -E 's/ [0-9][0-9.eE+-]*$$/ V/' /tmp/tanoq-metrics.raw > /tmp/tanoq-metrics.norm
	diff examples/sweep/metrics-smoke.golden /tmp/tanoq-metrics.norm
	grep 'progress:' /tmp/tanoq-metrics.err
	@echo "metrics-smoke: timeline golden matched; /metrics exposition matched modulo values; pprof answered"

# fuzz-smoke runs the scenario-decoder fuzzer for a short budget (CI's
# fuzz step); `go test -fuzz FuzzScenarioDecode ./internal/scenario` runs
# it open-ended.
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzScenarioDecode -fuzztime 10s ./internal/scenario

# bench runs the repository benchmark suite once through `go test`.
bench:
	go test -run '^$$' -bench . -benchtime 1x -benchmem .

# bench-json writes the machine-readable perf snapshot BENCH_<date>.json
# (engine step cost, quick Fig4 grid wall-clock, low-load cell speedups);
# commit it to refresh CI's bench-regression baseline.
bench-json:
	go run ./cmd/noctool bench
