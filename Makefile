# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

.PHONY: build test vet lint race determinism sweep-smoke bench bench-json

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# lint mirrors CI's static-analysis job: vet always, staticcheck when the
# tool is installed (go install honnef.co/go/tools/cmd/staticcheck@latest).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# race runs the full test suite under the race detector (CI's test step).
race:
	go test -race ./...

# determinism is CI's named gate for the engine's core contract: the
# idle-skip equivalence and worker-count/skip determinism suites, run
# twice (the pattern covers ...Equivalent..., ...Determinism and
# ...Deterministic... test names across network/runner/experiments/
# scenario/sim).
determinism:
	go test -run 'Equivalen|Determin' -count=2 ./...

# sweep-smoke exercises the declarative scenario path end to end: the
# quick Figure 4 grid from a JSON file and the permutation-pattern grid
# from a TOML file (CI's sweep step).
sweep-smoke:
	go run ./cmd/noctool -quick sweep examples/sweep/fig4-quick.json
	go run ./cmd/noctool sweep examples/sweep/patterns.toml

# bench runs the repository benchmark suite once through `go test`.
bench:
	go test -run '^$$' -bench . -benchtime 1x -benchmem .

# bench-json writes the machine-readable perf snapshot BENCH_<date>.json
# (engine step cost, quick Fig4 grid wall-clock, low-load cell speedups);
# commit it to refresh CI's bench-regression baseline.
bench-json:
	go run ./cmd/noctool bench
