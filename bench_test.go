// Repository benchmarks: one per table and figure of the paper's
// evaluation, each regenerating its artifact through the same drivers as
// cmd/noctool, at QuickParams scale so a full -bench=. pass stays in CI
// territory. Custom metrics expose the headline number of each artifact
// (mean latency, preemption rate, fairness dispersion, ...) alongside the
// usual ns/op.
package tanoq_test

import (
	"testing"

	"tanoq/internal/experiments"
	"tanoq/internal/network"
	"tanoq/internal/qos"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// BenchmarkFig3RouterArea regenerates Figure 3: router area overhead by
// component for all five shared-region topologies.
func BenchmarkFig3RouterArea(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3()
		total = rows[len(rows)-1].Area.Total()
	}
	b.ReportMetric(total*1000, "dps-router-mm2/1000")
}

// BenchmarkFig4aUniformRandom regenerates Figure 4(a): the load-latency
// sweep on uniform random traffic (reduced rate grid).
func BenchmarkFig4aUniformRandom(b *testing.B) {
	rates := []float64{0.02, 0.08, 0.14}
	var lat float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig4(experiments.Uniform, rates, experiments.QuickParams())
		for _, s := range series {
			if s.Kind == topology.DPS {
				lat = s.Points[0].MeanLatency
			}
		}
	}
	b.ReportMetric(lat, "dps-latency-cycles")
}

// BenchmarkFig4bTornado regenerates Figure 4(b): the tornado sweep.
func BenchmarkFig4bTornado(b *testing.B) {
	rates := []float64{0.02, 0.08, 0.14}
	var lat float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig4(experiments.TornadoPattern, rates, experiments.QuickParams())
		for _, s := range series {
			if s.Kind == topology.MECS {
				lat = s.Points[0].MeanLatency
			}
		}
	}
	b.ReportMetric(lat, "mecs-latency-cycles")
}

// BenchmarkSec52SaturationPreemptions regenerates the in-text saturation
// replay rates of Section 5.2.
func BenchmarkSec52SaturationPreemptions(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.SaturationPreemptions(experiments.QuickParams()) {
			if r.PreemptionPct > worst {
				worst = r.PreemptionPct
			}
		}
	}
	b.ReportMetric(worst, "worst-preempt-%")
}

// BenchmarkTable2HotspotFairness regenerates Table 2: per-flow throughput
// dispersion under saturating hotspot traffic.
func BenchmarkTable2HotspotFairness(b *testing.B) {
	var maxDev float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(experiments.QuickParams())
		maxDev = 0
		for _, r := range rows {
			if d := r.Summary.MaxDeviationPct(); d > maxDev {
				maxDev = d
			}
		}
	}
	b.ReportMetric(maxDev, "worst-deviation-%")
}

// BenchmarkFig5Workload1 regenerates Figure 5(a): preemption incidence
// under adversarial Workload 1.
func BenchmarkFig5Workload1(b *testing.B) {
	var meshX4 float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Fig5(experiments.Workload1, experiments.QuickParams()) {
			if r.Kind == topology.MeshX4 {
				meshX4 = r.HopsPct
			}
		}
	}
	b.ReportMetric(meshX4, "meshx4-wasted-hops-%")
}

// BenchmarkFig5Workload2 regenerates Figure 5(b).
func BenchmarkFig5Workload2(b *testing.B) {
	var x1 float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Fig5(experiments.Workload2, experiments.QuickParams()) {
			if r.Kind == topology.MeshX1 {
				x1 = r.HopsPct
			}
		}
	}
	b.ReportMetric(x1, "meshx1-wasted-hops-%")
}

// BenchmarkFig6SlowdownFairness regenerates Figure 6: preemption slowdown
// vs the per-flow-queueing reference and max-min deviation, Workload 1.
func BenchmarkFig6SlowdownFairness(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, r := range experiments.Fig6(experiments.Workload1, experiments.QuickParams()) {
			if r.SlowdownPct > worst {
				worst = r.SlowdownPct
			}
		}
	}
	b.ReportMetric(worst, "worst-slowdown-%")
}

// BenchmarkFig7RouterEnergy regenerates Figure 7: per-flit router energy
// by hop type.
func BenchmarkFig7RouterEnergy(b *testing.B) {
	var dps3 float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Fig7() {
			if r.Kind == topology.DPS {
				dps3 = r.ThreeHops.Total()
			}
		}
	}
	b.ReportMetric(dps3, "dps-3hop-nJ")
}

// BenchmarkChipCost regenerates the Section 2 cost argument: chip-wide QoS
// hardware savings of the topology-aware architecture.
func BenchmarkChipCost(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		saved = experiments.ChipCost().SavedAreaFraction
	}
	b.ReportMetric(100*saved, "saved-%")
}

// benchFig4 regenerates the quick Figure 4(a) grid through the experiment
// runner with the given worker-pool size and idle-skip setting.
func benchFig4(b *testing.B, workers int, skip bool) {
	p := experiments.QuickParams()
	p.Workers = workers
	p.DisableIdleSkip = !skip
	var lat float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig4(experiments.Uniform, experiments.QuickFig4Rates(), p)
		lat = series[0].Points[0].MeanLatency
	}
	b.ReportMetric(lat, "meshx1-latency-cycles")
}

// BenchmarkFig4Sequential is the sequential half of the runner speedup
// pair: the same cell grid as BenchmarkFig4Parallel on one worker.
func BenchmarkFig4Sequential(b *testing.B) { benchFig4(b, 1, true) }

// BenchmarkFig4Parallel fans the grid across one worker per CPU. The
// ns/op ratio against BenchmarkFig4Sequential is the runner's wall-clock
// speedup; results are asserted bit-identical in the experiments tests.
func BenchmarkFig4Parallel(b *testing.B) { benchFig4(b, 0, true) }

// BenchmarkFig4SequentialTicked is the same sequential grid with idle
// skipping force-disabled — the tick-driven engine. Its ns/op ratio
// against BenchmarkFig4Sequential is the grid-level cost of ticking
// through idle cycles (results are bit-identical either way, asserted in
// the experiments tests).
func BenchmarkFig4SequentialTicked(b *testing.B) { benchFig4(b, 1, false) }

// BenchmarkEngineCycles measures raw simulator speed: cycles simulated
// per second for each topology at steady state, below every topology's
// saturation point so the working set stabilizes. The warmup lets the
// packet free list, event ring, source queues and scratch buffers reach
// capacity — after it, Step must be allocation-free (the CI benchmark
// smoke step fails on a nonzero allocs/op here, guarding the invariant).
func BenchmarkEngineCycles(b *testing.B) {
	for _, kind := range topology.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			w := traffic.UniformRandom(topology.ColumnNodes, 0.04)
			n := network.MustNew(network.Config{
				Kind:     kind,
				QoS:      qos.DefaultConfig(w.TotalFlows()),
				Workload: w,
				Seed:     5,
				// Step is the tick path; skipping lives in Run and
				// would make "cycles per second" unbounded.
				DisableIdleSkip: true,
			})
			n.Run(30_000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Step()
			}
		})
	}
}

// BenchmarkLowLoadCell times one near-idle quick Fig4 cell per engine
// mode — the regime the event-driven redesign targets (ISSUE 2): skipping
// on versus the tick-driven reference.
func BenchmarkLowLoadCell(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"skip", false}, {"tick", true}} {
		b.Run(mode.name, func(b *testing.B) {
			w := traffic.UniformRandom(topology.ColumnNodes, 0.01)
			for i := 0; i < b.N; i++ {
				n := network.MustNew(network.Config{
					Kind:            topology.MeshX1,
					QoS:             qos.DefaultConfig(w.TotalFlows()),
					Workload:        w,
					Seed:            42,
					DisableIdleSkip: mode.disable,
				})
				n.WarmupAndMeasure(3_000, 15_000)
			}
		})
	}
}

// BenchmarkMaxMinShares measures the fairness expectation math used by the
// Figure 6 harness.
func BenchmarkMaxMinShares(b *testing.B) {
	demands := traffic.Workload1Rates
	var shares []float64
	for i := 0; i < b.N; i++ {
		shares = stats.MaxMinShares(demands, 1.0)
	}
	_ = shares
}
