// Adversary: the paper's Section 5.3 threat model made concrete. A cloud
// tenant crafts traffic to trigger preemption storms against PVC — only a
// subset of sources transmits, so reserved quotas exhaust early in every
// frame — and the example shows both of the paper's findings:
//
//  1. preemptions happen (Figure 5), widely varying by topology, with the
//     replicated meshes thrashing and mesh x1/DPS discarding mostly near
//     the source;
//
//  2. the attack barely works: completion-time slowdown versus an ideal
//     preemption-free per-flow-queue network stays in single digits, and
//     every source still receives ~its max-min fair share (Figure 6).
//
//     go run ./examples/adversary
package main

import (
	"fmt"

	"tanoq/internal/experiments"
	"tanoq/internal/topology"
)

func main() {
	p := experiments.Params{Seed: 7, Warmup: 2_000, Measure: 100_000}

	fmt.Println("== Adversarial Workload 1: eight terminals, rates 5-20%, one hotspot ==")
	fmt.Println()
	rows := experiments.Fig5(experiments.Workload1, p)
	fmt.Println(experiments.RenderFig5(experiments.Workload1, rows))

	fmt.Println("== Adversarial Workload 2: all eight injectors of the farthest node ==")
	fmt.Println()
	rows2 := experiments.Fig5(experiments.Workload2, p)
	fmt.Println(experiments.RenderFig5(experiments.Workload2, rows2))

	fmt.Println("== Damage assessment: slowdown vs preemption-free per-flow queueing ==")
	fmt.Println()
	f6 := experiments.Fig6(experiments.Workload1, experiments.Params{Seed: 7, Measure: 100_000})
	fmt.Println(experiments.RenderFig6(experiments.Workload1, f6))

	worst := 0.0
	worstKind := topology.MeshX1
	for _, r := range f6 {
		if r.SlowdownPct > worst {
			worst, worstKind = r.SlowdownPct, r.Kind
		}
	}
	fmt.Printf("verdict: the attack's worst-case slowdown is %.1f%% (%v) — the\n", worst, worstKind)
	fmt.Println("preemption-throttling machinery (reserved quotas, hysteresis, windows)")
	fmt.Println("absorbs the storm while max-min fairness holds.")
}
