// Quickstart: simulate the paper's QoS-enabled shared region in a few
// lines — a DPS column with Preemptive Virtual Clock, uniform random
// traffic, and the headline metrics printed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"tanoq/internal/network"
	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

func main() {
	// The shared region: one column of 8 nodes, 64 traffic injectors
	// (each node's terminal plus its seven MECS row inputs), all
	// provisioned with equal QoS rates.
	workload := traffic.UniformRandom(topology.ColumnNodes, 0.08)
	net := network.MustNew(network.Config{
		Kind:     topology.DPS, // the paper's new topology
		QoS:      qos.DefaultConfig(workload.TotalFlows()),
		Workload: workload,
		Seed:     1,
	})

	// Warm the network up, then measure a window.
	net.WarmupAndMeasure(10_000, 50_000)

	st := net.Stats()
	fmt.Println("tanoq quickstart — DPS shared region, uniform random @ 8%")
	fmt.Printf("  delivered packets:     %d\n", st.TotalDelivered)
	fmt.Printf("  mean packet latency:   %.1f cycles\n", st.MeanLatency())
	fmt.Printf("  accepted throughput:   %.3f flits/cycle\n", st.AcceptedFlitRate(net.Now()))
	fmt.Printf("  preemption rate:       %.2f%% of packets\n", st.PreemptionPacketRate())
	fmt.Printf("  wasted hop traversals: %.2f%%\n", st.WastedHopRate())

	// Per-flow fairness: with equal assigned rates and a benign pattern,
	// every injector should see comparable service.
	var lo, hi int64 = 1 << 62, 0
	for _, flits := range st.FlitsByFlow() {
		if flits < lo {
			lo = flits
		}
		if flits > hi {
			hi = flits
		}
	}
	fmt.Printf("  per-flow flits:        min %d, max %d\n", lo, hi)
}
