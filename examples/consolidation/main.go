// Consolidation: the paper's server-consolidation scenario (Figure 1(b))
// end to end. Three virtual machines are allocated convex domains on a
// 256-tile CMP, threads are co-scheduled, the OS contract is verified
// (convexity, co-scheduling, cross-VM isolation on unprotected channels),
// and then the VMs' memory traffic runs through the QoS-protected shared
// column — once under PVC and once without QoS — to show the service-level
// guarantee the architecture exists for.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"tanoq/internal/chip"
	"tanoq/internal/core"
	"tanoq/internal/qos"
)

func main() {
	sys := core.MustNewSystem(core.DefaultConfig())

	// The hypervisor allocates convex domains: a web server VM, a
	// database VM and a low-priority batch VM.
	if _, err := sys.AllocateVM(1, 12); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AllocateVM(2, 8); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AllocateVM(3, 16); err != nil {
		log.Fatal(err)
	}
	// Co-schedule threads onto VM 1's cores (2 cores per node).
	threads := make([]int, 16)
	for i := range threads {
		threads[i] = 100 + i
	}
	if err := sys.ScheduleThreads(1, threads); err != nil {
		log.Fatal(err)
	}

	fmt.Println("domains allocated:")
	for _, d := range sys.Chip().Domains() {
		fmt.Printf("  VM %d: %d nodes, first %v, convex: %v\n",
			d.VM, len(d.Nodes), d.Nodes[0], chip.IsConvex(d.Nodes))
	}

	// The OS contract: convexity, co-scheduling, and physical isolation
	// of every unprotected channel.
	if err := sys.VerifyInvariants(); err != nil {
		log.Fatalf("invariant violated: %v", err)
	}
	fmt.Println("OS contract verified: co-scheduling, convex containment, isolation")

	// Memory traffic: VM 1 and VM 2 have equal SLAs; VM 3 is a noisy
	// neighbour oversubscribing the shared column's 8 flits/cycle of
	// aggregate memory bandwidth (shares are fractions of it).
	loads := []core.MemoryLoad{
		{VM: 1, Share: 0.35, Offered: 2.0},
		{VM: 2, Share: 0.35, Offered: 2.0},
		{VM: 3, Share: 0.30, Offered: 7.0}, // aggressor
	}

	for _, mode := range []qos.Mode{qos.PVC, qos.NoQoS} {
		net, err := sys.BuildSharedRegion(mode, loads)
		if err != nil {
			log.Fatal(err)
		}
		net.WarmupAndMeasure(10_000, 50_000)
		tp, err := sys.VMThroughput(net, loads)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nshared-region throughput under %v:\n", mode)
		for _, l := range loads {
			rate := float64(tp[l.VM]) / 50_000
			fmt.Printf("  VM %d: %.3f flits/cycle (share %.2f, offered %.2f)\n",
				l.VM, rate, l.Share, l.Offered)
		}
	}
	fmt.Println("\nUnder PVC the victims keep ~their offered load despite the aggressor;")
	fmt.Println("without QoS the aggressor's volume squeezes them out.")

	// And the cost argument: QoS hardware in 8 routers instead of 64.
	r := sys.Cost()
	fmt.Printf("\nQoS hardware: %d of %d routers (%.0f%% area saved vs QoS-everywhere)\n",
		r.RoutersWithQoS, r.RoutersTotal, 100*r.SavedAreaFraction)
}
