// Topologysweep: the designer's view of Section 5 — for each candidate
// shared-region interconnect, one summary line combining the four axes the
// paper evaluates: zero-load latency and saturation throughput (Figure 4),
// router area (Figure 3), and multi-hop energy (Figure 7). This is the
// comparison that motivates DPS: mesh-like cost with MECS-like latency and
// energy on multi-hop transfers.
//
//	go run ./examples/topologysweep
package main

import (
	"fmt"

	"tanoq/internal/network"
	"tanoq/internal/physical"
	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

func measure(kind topology.Kind, rate float64) (latency, accepted float64) {
	w := traffic.UniformRandom(topology.ColumnNodes, rate)
	n := network.MustNew(network.Config{
		Kind:     kind,
		QoS:      qos.DefaultConfig(w.TotalFlows()),
		Workload: w,
		Seed:     11,
	})
	n.WarmupAndMeasure(5_000, 25_000)
	return n.Stats().MeanLatency(), n.Stats().AcceptedFlitRate(n.Now())
}

func main() {
	fmt.Println("shared-region topology comparison (8-node column, PVC QoS)")
	fmt.Println()
	fmt.Printf("%-9s %12s %14s %12s %13s %12s\n",
		"topology", "lat@2% (cy)", "accept@14%", "area (mm2)", "3-hop (nJ)", "bisection")
	for _, kind := range topology.Kinds() {
		low, _ := measure(kind, 0.02)
		_, acc := measure(kind, 0.14)
		s := topology.StructureOf(kind, topology.ColumnNodes,
			topology.ColumnNodes*topology.InjectorsPerNode)
		area := physical.RouterArea(s).Total()
		energy := physical.RouteEnergy(s, 3).Total()
		fmt.Printf("%-9s %12.1f %14.3f %12.4f %13.1f %12d\n",
			kind, low, acc, area, energy, kind.BisectionChannels(topology.ColumnNodes))
	}
	fmt.Println()
	fmt.Println("reading guide: DPS matches MECS's latency and multi-hop energy at a")
	fmt.Println("fraction of its buffer area; the baseline mesh is cheapest but slow and")
	fmt.Println("bandwidth-starved; replicating the mesh buys bandwidth with crossbar area.")
}
