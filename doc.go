// Package tanoq is a from-scratch reproduction of "Topology-aware
// Quality-of-Service Support in Highly Integrated Chip Multiprocessors"
// (Grot, Keckler, Mutlu — WIOSCA 2010).
//
// The library models the paper's complete system stack:
//
//   - a cycle-driven, virtual cut-through network-on-chip simulator for the
//     QoS-enabled shared region of a highly integrated CMP
//     (internal/network),
//   - the Preemptive Virtual Clock QoS scheme with flow-state tables,
//     frames, reserved quotas, preemption, the dedicated ACK network and
//     source retransmission windows (internal/qos, internal/network),
//   - five shared-region topologies: mesh x1/x2/x4, MECS and Destination
//     Partitioned Subnets (internal/topology),
//   - a synthetic traffic pattern library — uniform random, tornado, the
//     bit-permutation canon (transpose, bit-complement, bit-reversal,
//     shuffle), weighted hotspots and MMPP-style bursty on/off sources —
//     plus the paper's adversarial preemption workloads
//     (internal/traffic),
//   - a declarative scenario subsystem: JSON/TOML files describing
//     pattern × topology × QoS × rate × seed sweep grids, validated and
//     expanded onto the parallel runner, with the paper's own evaluation
//     grids available as built-in scenarios (internal/scenario,
//     noctool sweep),
//   - a closed-loop workload subsystem (internal/workload): per-node
//     request–reply clients with a bounded window of outstanding
//     requests and geometric think time, wired through the engine's
//     delivery hook and scheduled-injection surface — a delivered
//     request triggers a reply at the ejection side, charged to the
//     requesting client's flow, and the reply's delivery credits the
//     client's window — the first workload class where QoS mode changes
//     end-to-end client throughput rather than just latency tails
//     (noctool closed; the scenario [workload] table sweeps
//     mode/outstanding/think_time),
//   - a deterministic trace layer (internal/workload): a recorder
//     capturing any run's injection stream through the engine's
//     generation hook, a compact varint-delta binary format with a
//     self-describing header, and a replayer that re-runs the stream as
//     a first-class injection source behind the engine's arrival
//     schedule — replaying an open-loop recording reproduces its
//     delivery fingerprint exactly, and replays are bit-identical
//     across worker counts and idle-skip settings (noctool trace
//     record|replay|info, make trace-smoke),
//   - Orion/CACTI-style analytical area and energy models at 32 nm
//     (internal/physical),
//   - the chip-level topology-aware architecture: a 256-tile CMP with 4-way
//     concentration, convex VM domains, shared-resource columns and the OS
//     placement contract (internal/chip, internal/core),
//   - one experiment driver per table and figure in the paper's evaluation
//     (internal/experiments, cmd/noctool),
//   - a parallel experiment runner (internal/runner) that fans the
//     independent simulation cells of each evaluation grid out across a
//     worker pool, with one reusable simulation engine per worker slot
//     (network.Reset re-targets it per cell). Determinism survives both
//     parallelization and reuse: every cell owns its seeded RNG, results
//     return in input order, and experiment output is bit-identical for
//     every worker count and to fresh per-cell builds (noctool -parallel).
//
// The engine is hybrid tick/event-driven, O(work) instead of O(cycles x
// machine size): injection is sampled by geometric inter-arrival gaps
// (one RNG draw per packet, statistically identical to the modeled
// per-cycle Bernoulli process), sources sit on an arrival heap and an
// offerable list so a cycle touches only the injectors acting in it,
// arbitration visits only ports holding candidates, events live in an
// O(1) calendar-ring queue, and Run fast-forwards the clock across
// provably idle windows to the next event, arrival, injection-VC free or
// PVC frame boundary. Skipping is mechanical: with it disabled the
// engine ticks through every cycle and produces bit-identical results
// (asserted across all topologies and QoS modes).
//
// The engine core is data-oriented (see internal/network's package doc
// for the full design): packets live in a flat arena addressed by 32-bit
// generation-guarded handles rather than behind pointers, router state is
// struct-of-arrays (value-slice ports/buffers/sources; per-buffer VC
// state as parallel arrays with a free-VC occupancy bitmap), PVC
// priorities are cached per port in flat per-flow arrays maintained
// eagerly on bandwidth recording and frame flush, and events are 40-byte
// pointer-free records. Every hot container is invisible to the garbage
// collector, steady-state operation allocates exactly nothing (packet
// slots recycle through a free stack; containers are pre-sized to their
// working set), and the layout is mechanical — results are bit-identical
// to the historical pointer-based engine. `noctool bench` writes a
// BENCH_<date>.json snapshot (engine step cost at steady and
// near-saturation operating points, wall-clock grids, host/commit
// provenance) tracking all of this PR over PR, and `noctool bench
// -cpuprofile/-memprofile` profiles it in place.
//
// The root package exists to host repository-level benchmarks
// (bench_test.go); the programmable surface lives in the internal packages
// and is exercised by the examples under examples/.
package tanoq
