// Package tanoq is a from-scratch reproduction of "Topology-aware
// Quality-of-Service Support in Highly Integrated Chip Multiprocessors"
// (Grot, Keckler, Mutlu — WIOSCA 2010).
//
// The library models the paper's complete system stack:
//
//   - a cycle-driven, virtual cut-through network-on-chip simulator for the
//     QoS-enabled shared region of a highly integrated CMP
//     (internal/network),
//   - the Preemptive Virtual Clock QoS scheme with flow-state tables,
//     frames, reserved quotas, preemption, the dedicated ACK network and
//     source retransmission windows (internal/qos, internal/network),
//   - five shared-region topologies: mesh x1/x2/x4, MECS and Destination
//     Partitioned Subnets (internal/topology),
//   - synthetic traffic generators including the paper's adversarial
//     preemption workloads (internal/traffic),
//   - Orion/CACTI-style analytical area and energy models at 32 nm
//     (internal/physical),
//   - the chip-level topology-aware architecture: a 256-tile CMP with 4-way
//     concentration, convex VM domains, shared-resource columns and the OS
//     placement contract (internal/chip, internal/core),
//   - one experiment driver per table and figure in the paper's evaluation
//     (internal/experiments, cmd/noctool),
//   - a parallel experiment runner (internal/runner) that fans the
//     independent simulation cells of each evaluation grid out across a
//     worker pool. Determinism survives parallelization: every cell owns
//     its seeded RNG, results return in input order, and experiment
//     output is bit-identical for every worker count (noctool -parallel).
//
// The simulation hot path is allocation-free at steady state: delivered
// packets are recycled through a free list, arbitration uses reusable
// scratch buffers, the event queue is a hand-rolled typed heap, and Step
// scans only the still-active injectors.
//
// The root package exists to host repository-level benchmarks
// (bench_test.go); the programmable surface lives in the internal packages
// and is exercised by the examples under examples/.
package tanoq
