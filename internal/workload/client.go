package workload

import (
	"fmt"

	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
	"tanoq/internal/traffic"
)

// ClientConfig parameterizes a closed-loop client population.
type ClientConfig struct {
	// Outstanding is each client's window: the bounded number of
	// requests it may have awaiting replies (>= 1; 0 selects 1).
	Outstanding int
	// ThinkMean is the mean think time in cycles: the geometric gap a
	// client waits after a reply before issuing its next request
	// (support >= 1; 0 or values below 1 issue back-to-back, one cycle
	// after the reply).
	ThinkMean float64
	// Pattern picks each request's destination per client node (nil =
	// uniform over the other nodes).
	Pattern traffic.Pattern
	// ClientNodes lists the nodes hosting clients (nil = every node).
	// Every node still needs a terminal injector spec in the workload —
	// replies are injected at whichever node a request lands on.
	ClientNodes []noc.NodeID
	// RequestFlits and ReplyFlits select the transaction shape (each 0
	// selects the default). The default is read-shaped: 1-flit requests,
	// 4-flit cache-line replies. Write-shaped traffic inverts it — 4-flit
	// write requests into the contended resource, 1-flit completion acks
	// back — which puts the transaction's bandwidth on the request path,
	// where per-client QoS arbitration (not the server's FIFO injection
	// VC) decides who completes work. Only the two modeled packet sizes
	// (1 and 4 flits) are valid.
	RequestFlits int
	ReplyFlits   int
	// StopIssuing, when positive, stops clients from issuing requests
	// whose generation cycle would land at or past it; in-flight round
	// trips still complete, so the network drains (the closed-loop
	// analogue of traffic.Spec.StopAt).
	StopIssuing sim.Cycle
	// Seed derives the controller's private randomness (think times and
	// destination picks), independent of the network's seed.
	Seed uint64
}

// client is one closed-loop client: a window of outstanding requests over
// a private RNG stream and destination picker.
type client struct {
	node        noc.NodeID
	rng         sim.RNG
	dest        traffic.Dest
	outstanding int32
}

// Controller drives a closed-loop client population over a network: it
// owns the delivery hook, issues requests via ScheduleInjection, answers
// delivered requests with replies at the ejection side, credits client
// windows on reply delivery, and accumulates round-trip statistics.
//
// A Controller attaches to exactly one network for one cell; Reset clears
// the attachment, so sweep drivers build a fresh Controller per cell
// (runner.Cell.Setup). All state is engine-thread-local and every client
// wake-up is an engine event, so closed-loop runs are bit-identical
// across worker counts and idle-skip settings.
type Controller struct {
	net *network.Network
	cfg ClientConfig
	// reqClass/repClass are the resolved transaction-shape classes.
	reqClass noc.Class
	repClass noc.Class

	// siByNode maps each node to its terminal injector's index in the
	// workload spec order (-1 = none); clientByNode maps a node to its
	// client index (-1 = no client there).
	siByNode     []int32
	clientByNode []int32
	clients      []client

	// RT accumulates measured round trips (windowed like the network's
	// collector: observations are only charged while it is measuring).
	RT *stats.RoundTrip
	// Issued and Completed count all round trips, un-windowed (drain
	// bookkeeping and tests).
	Issued    int64
	Completed int64
}

// ClientWorkload builds the injector population a closed-loop run needs:
// the terminal injector of every column node, with no open-loop rate —
// all generation is controller-scheduled. (Row injectors stay provisioned
// in the QoS tables but host no sources.)
func ClientWorkload(name string, nodes int) traffic.Workload {
	w := traffic.Workload{Name: name, Nodes: nodes}
	for n := 0; n < nodes; n++ {
		w.Specs = append(w.Specs, traffic.Spec{
			Flow: traffic.FlowOf(noc.NodeID(n), 0),
			Node: noc.NodeID(n),
		})
	}
	return w
}

// NewController builds a controller and attaches it to the network: the
// delivery hook is installed and every client's initial window of
// requests is scheduled (each slot issues after an independent think-time
// draw, so clients ramp up staggered rather than in lockstep). The
// network must have a terminal injector spec at every node.
func NewController(n *network.Network, cfg ClientConfig) (*Controller, error) {
	if cfg.Outstanding <= 0 {
		cfg.Outstanding = 1
	}
	if cfg.Pattern == nil {
		cfg.Pattern = traffic.UniformTraffic()
	}
	reqClass, err := classOfFlits(cfg.RequestFlits, noc.ClassRequest)
	if err != nil {
		return nil, err
	}
	repClass, err := classOfFlits(cfg.ReplyFlits, noc.ClassReply)
	if err != nil {
		return nil, err
	}
	nodes := n.Config().Nodes
	ct := &Controller{
		net:          n,
		cfg:          cfg,
		reqClass:     reqClass,
		repClass:     repClass,
		siByNode:     make([]int32, nodes),
		clientByNode: make([]int32, nodes),
	}
	for i := range ct.siByNode {
		ct.siByNode[i] = -1
		ct.clientByNode[i] = -1
	}
	for i, spec := range n.Config().Workload.Specs {
		if spec.Flow == traffic.FlowOf(spec.Node, 0) {
			ct.siByNode[spec.Node] = int32(i)
		}
	}
	for node, si := range ct.siByNode {
		if si < 0 {
			return nil, fmt.Errorf("workload: closed-loop needs a terminal injector spec at every node; node %d has none", node)
		}
	}
	clientNodes := cfg.ClientNodes
	if clientNodes == nil {
		clientNodes = make([]noc.NodeID, nodes)
		for i := range clientNodes {
			clientNodes[i] = noc.NodeID(i)
		}
	}
	root := sim.NewRNG(cfg.Seed ^ 0x636c6f7365646c70) // "closedlp"
	for _, node := range clientNodes {
		if int(node) < 0 || int(node) >= nodes {
			return nil, fmt.Errorf("workload: client node %d outside column of %d", node, nodes)
		}
		if ct.clientByNode[node] >= 0 {
			return nil, fmt.Errorf("workload: duplicate client at node %d", node)
		}
		dest, err := cfg.Pattern.DestFor(node, nodes)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		c := client{node: node, dest: dest}
		root.SplitInto(&c.rng)
		ct.clientByNode[node] = int32(len(ct.clients))
		ct.clients = append(ct.clients, c)
	}
	ct.RT = stats.NewRoundTrip(len(ct.clients))
	n.SetDeliveryHook(ct.onDelivery)
	now := n.Now()
	for ci := range ct.clients {
		for w := 0; w < cfg.Outstanding; w++ {
			// Like the open-loop first arrival, the initial issue lands
			// at gap-1 so a think-free client starts at the current
			// cycle.
			c := &ct.clients[ci]
			ct.issue(int32(ci), now+ct.thinkGap(&c.rng)-1)
		}
	}
	return ct, nil
}

// Clients returns the client population size.
func (ct *Controller) Clients() int { return len(ct.clients) }

// Outstanding returns the total outstanding requests across all clients.
func (ct *Controller) Outstanding() int {
	total := 0
	for i := range ct.clients {
		total += int(ct.clients[i].outstanding)
	}
	return total
}

// thinkGap draws one think-time gap (>= 1 cycle; mean ThinkMean).
func (ct *Controller) thinkGap(r *sim.RNG) sim.Cycle {
	if ct.cfg.ThinkMean < 1 {
		return 1
	}
	return sim.Cycle(r.Geometric(1 / ct.cfg.ThinkMean))
}

// issue schedules one request generation at cycle at, unless issuing has
// stopped. The request carries its generation cycle as parent metadata;
// the reply echoes it back, so the round trip is measured without any
// correlation state.
func (ct *Controller) issue(ci int32, at sim.Cycle) {
	if ct.cfg.StopIssuing > 0 && at >= ct.cfg.StopIssuing {
		return
	}
	c := &ct.clients[ci]
	dst := c.dest.Pick(&c.rng)
	ct.net.ScheduleInjection(int(ct.siByNode[c.node]), -1, dst, ct.reqClass, noc.KindRequest, uint64(at), at)
	c.outstanding++
	ct.Issued++
}

// classOfFlits maps a configured packet size to its class (0 keeps def).
func classOfFlits(flits int, def noc.Class) (noc.Class, error) {
	switch flits {
	case 0:
		return def, nil
	case noc.RequestFlits:
		return noc.ClassRequest, nil
	case noc.ReplyFlits:
		return noc.ClassReply, nil
	default:
		return 0, fmt.Errorf("workload: %d-flit packets not modeled (want %d or %d)", flits, noc.RequestFlits, noc.ReplyFlits)
	}
}

// onDelivery is the engine delivery hook: delivered requests trigger a
// same-cycle reply from the ejection side's terminal injector, and
// delivered replies credit the issuing client's window, record the round
// trip, and — after a think-time draw — issue the client's next request.
//
// The reply is charged to the requesting client's flow (d.Flow), not the
// server's: that is the accounting request–reply hardware uses, and it is
// what lets PVC equalize per-client reply bandwidth on the contended path
// back — the mechanism behind QoS moving end-to-end client throughput.
func (ct *Controller) onDelivery(d network.Delivery) {
	switch d.Kind {
	case noc.KindRequest:
		ct.net.ScheduleInjection(int(ct.siByNode[d.Dst]), d.Flow, d.Src, ct.repClass, noc.KindReply, d.Parent, d.At)
	case noc.KindReply:
		ci := ct.clientByNode[d.Dst]
		c := &ct.clients[ci]
		c.outstanding--
		ct.Completed++
		if ct.net.Stats().Measuring() {
			ct.RT.Observe(int(ci), int64(d.At)-int64(d.Parent))
		}
		ct.issue(ci, d.At+ct.thinkGap(&c.rng))
	}
}
