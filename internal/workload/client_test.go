package workload

import (
	"testing"

	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// closedCell builds a closed-loop cell: the all-nodes client workload on
// the given topology and QoS mode, with a controller attached.
func closedCell(t *testing.T, kind topology.Kind, mode qos.Mode, cfg ClientConfig, seed uint64, disableSkip bool) (*network.Network, *Controller) {
	t.Helper()
	w := ClientWorkload("closed", topology.ColumnNodes)
	qcfg := qos.DefaultConfig(w.TotalFlows())
	qcfg.Mode = mode
	n, err := network.New(network.Config{
		Kind: kind, QoS: qcfg, Workload: w, Seed: seed,
		DisableIdleSkip: disableSkip,
	})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := NewController(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, ct
}

// TestClosedLoopRoundTrips pins the basic closed-loop contract: requests
// go out, every one is answered, windows never exceed their bound, and
// round-trip latencies are recorded.
func TestClosedLoopRoundTrips(t *testing.T) {
	n, ct := closedCell(t, topology.MeshX2, qos.PVC,
		ClientConfig{Outstanding: 4, ThinkMean: 20, Seed: 7}, 1, false)
	n.Run(50_000)
	if ct.Issued == 0 {
		t.Fatal("no requests issued")
	}
	if ct.Completed == 0 {
		t.Fatal("no round trips completed")
	}
	if got := ct.Outstanding(); got > 4*ct.Clients() {
		t.Errorf("outstanding %d exceeds aggregate window %d", got, 4*ct.Clients())
	}
	if ct.RT.TotalCompleted() == 0 || ct.RT.MeanRTT() <= 0 {
		t.Errorf("round-trip stats empty: completed %d mean %.1f", ct.RT.TotalCompleted(), ct.RT.MeanRTT())
	}
	// Request and reply populations must match one-for-one on the wire:
	// every delivered flow is a terminal flow.
	for f, pkts := range n.Stats().DeliveredPackets {
		if pkts > 0 && f%topology.InjectorsPerNode != 0 {
			t.Errorf("non-terminal flow %d delivered %d packets in a closed-loop run", f, pkts)
		}
	}
}

// TestClosedLoopDrainsInFlightToZero pins in-flight/drain accounting under
// the delivery hook: once issuing stops, every outstanding round trip
// completes, the engine drains, and Network.InFlight returns to exactly
// zero — with idle skipping on and off.
func TestClosedLoopDrainsInFlightToZero(t *testing.T) {
	for _, disable := range []bool{false, true} {
		for _, mode := range []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS} {
			n, ct := closedCell(t, topology.MECS, mode,
				ClientConfig{Outstanding: 3, ThinkMean: 15, StopIssuing: 8_000, Seed: 3}, 9, disable)
			if _, drained := n.RunUntilDrained(300_000); !drained {
				t.Fatalf("mode %v skip=%v: closed loop did not drain (in flight %d, outstanding %d)",
					mode, !disable, n.InFlight(), ct.Outstanding())
			}
			if got := n.InFlight(); got != 0 {
				t.Errorf("mode %v skip=%v: InFlight %d after drain, want 0", mode, !disable, got)
			}
			if got := ct.Outstanding(); got != 0 {
				t.Errorf("mode %v skip=%v: %d outstanding after drain, want 0", mode, !disable, got)
			}
			if ct.Issued != ct.Completed {
				t.Errorf("mode %v skip=%v: issued %d != completed %d after drain", mode, !disable, ct.Issued, ct.Completed)
			}
			if ct.Issued == 0 {
				t.Errorf("mode %v skip=%v: nothing issued", mode, !disable)
			}
		}
	}
}

// TestClosedLoopWindowBound pins the window semantics: with think time
// disabled and a single-node hotspot server, a client never holds more
// than Outstanding requests in flight.
func TestClosedLoopWindowBound(t *testing.T) {
	n, ct := closedCell(t, topology.MeshX1, qos.PVC,
		ClientConfig{Outstanding: 2, Pattern: traffic.HotspotTraffic(nil), Seed: 5}, 2, false)
	for i := 0; i < 20_000; i++ {
		n.Step()
		for ci := range ct.clients {
			if o := ct.clients[ci].outstanding; o < 0 || o > 2 {
				t.Fatalf("cycle %d: client %d outstanding %d outside [0,2]", i, ci, o)
			}
		}
	}
	if ct.Completed == 0 {
		t.Fatal("no round trips completed")
	}
}

// TestClientWorkloadNeedsTerminals pins the attachment validation: a
// workload missing a node's terminal injector cannot host replies.
func TestClientWorkloadNeedsTerminals(t *testing.T) {
	w := ClientWorkload("partial", topology.ColumnNodes)
	w.Specs = w.Specs[:4] // drop nodes 4..7
	n := network.MustNew(network.Config{
		Kind: topology.MeshX1, QoS: qos.DefaultConfig(w.TotalFlows()), Workload: w, Seed: 1,
	})
	if _, err := NewController(n, ClientConfig{Outstanding: 1}); err == nil {
		t.Fatal("controller attached to a workload with missing terminal injectors")
	}
}

// TestScheduleInjectionOpenLoopUnused pins the zero-cost contract from the
// network side: a run that never installs hooks or schedules injections is
// bit-identical to the pre-subsystem engine — proxied here by comparing an
// open-loop run against one with a no-op delivery hook installed.
func TestScheduleInjectionOpenLoopUnused(t *testing.T) {
	run := func(hook bool) (int64, int64, sim.Cycle) {
		w := traffic.UniformRandom(topology.ColumnNodes, 0.05)
		n := network.MustNew(network.Config{
			Kind: topology.DPS, QoS: qos.DefaultConfig(w.TotalFlows()), Workload: w, Seed: 11,
		})
		if hook {
			n.SetDeliveryHook(func(network.Delivery) {})
		}
		n.WarmupAndMeasure(2_000, 10_000)
		st := n.Stats()
		return st.TotalDelivered, st.TotalLatency, st.LastDelivery
	}
	d0, l0, e0 := run(false)
	d1, l1, e1 := run(true)
	if d0 != d1 || l0 != l1 || e0 != e1 {
		t.Errorf("no-op delivery hook changed results: %d/%d/%d vs %d/%d/%d", d0, l0, e0, d1, l1, e1)
	}
}

// TestDeliveryHookSeesKinds pins the hook payload: closed-loop requests
// and replies arrive marked with their kinds and correlated parents.
func TestDeliveryHookSeesKinds(t *testing.T) {
	n, ct := closedCell(t, topology.MeshX2, qos.PVC,
		ClientConfig{Outstanding: 1, ThinkMean: 10, Seed: 13}, 4, false)
	var requests, replies int
	prev := n.Now()
	// Wrap the controller's hook: observe, then forward to it.
	inner := ct.onDelivery
	n.SetDeliveryHook(func(d network.Delivery) {
		if d.At < prev {
			t.Errorf("delivery hook saw time run backwards: %d after %d", d.At, prev)
		}
		prev = d.At
		switch d.Kind {
		case noc.KindRequest:
			requests++
			if d.Class != noc.ClassRequest {
				t.Errorf("request delivered with class %v", d.Class)
			}
		case noc.KindReply:
			replies++
			if d.Class != noc.ClassReply {
				t.Errorf("reply delivered with class %v", d.Class)
			}
			if sim.Cycle(d.Parent) > d.At {
				t.Errorf("reply parent cycle %d after delivery %d", d.Parent, d.At)
			}
		default:
			t.Errorf("open-kind packet in a closed-loop run")
		}
		inner(d)
	})
	n.Run(20_000)
	if requests == 0 || replies == 0 {
		t.Fatalf("saw %d requests, %d replies", requests, replies)
	}
}
