// Package workload is the closed-loop traffic subsystem and the
// deterministic trace layer of tanoq, built on the engine's workload-
// attachment surface (network.SetDeliveryHook / SetGenHook /
// ScheduleInjection).
//
// # Closed-loop clients
//
// The open-loop generators of internal/traffic inject at a configured
// rate no matter what the network does. Real clients are closed-loop:
// they hold a bounded window of outstanding requests and wait for replies
// before issuing more work. Controller models that — per-node clients at
// the terminal injectors with an Outstanding-deep window and geometric
// think time. A client request (1 flit, noc.KindRequest) delivered at its
// destination triggers a reply (4 flits, noc.KindReply) injected at the
// ejection side by the server node's terminal injector in the same cycle;
// the reply's delivery back at the client credits the window, and after a
// think-time draw the client issues its next request. Every client
// wake-up is a first-class engine event (ScheduleInjection), so idle-skip
// horizons stay exact and closed-loop runs are bit-identical with
// skipping on or off and for any worker count.
//
// This is the regime where QoS changes end-to-end throughput rather than
// just latency tails: a starved flow stalls its client's window, so
// no-QoS hotspot starvation compounds into client throughput collapse,
// while PVC keeps the per-client completion counts balanced (see
// experiments.ClosedLoop and stats.RoundTrip).
//
// # Trace record and replay
//
// Recorder captures any run's injection stream — open- or closed-loop —
// through the engine's generation hook as traffic.TraceRecord values
// ({cycle, flow, src, dst, flits}), and Trace encodes them into a compact
// binary format (magic "TQTR", a self-describing header with the recorded
// cell's topology/QoS/schedule, then varint delta-encoded records).
// Trace.Workload turns a decoded trace back into a first-class injection
// source: one traffic.Spec per recorded flow whose Replay stream the
// engine emits verbatim through the ordinary arrival schedule, consuming
// no randomness.
//
// Replay is deterministic by construction — bit-identical across worker
// counts and idle-skip settings — and recording an open-loop run and
// replaying its trace reproduces the original delivery fingerprint
// exactly (generation order, packet IDs and therefore every arbitration
// tie-break coincide; pinned by TestOpenLoopRecordReplayFingerprint).
// Replaying a recorded closed-loop run reproduces its injection stream,
// not its feedback dynamics: same-cycle generation order may differ from
// the closed-loop original, so the replay is a faithful open-loop
// re-execution of the captured workload rather than a bit-exact rerun.
// Captured workloads make any interesting injection stream a reproducible
// regression scenario (noctool trace record|replay|info, the scenario
// [workload] trace axis, and make trace-smoke).
package workload
