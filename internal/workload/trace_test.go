package workload

import (
	"reflect"
	"testing"

	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

func sampleTrace() *Trace {
	return &Trace{
		Header: TraceHeader{
			Nodes: 8, Topology: "mesh_x2", QoS: "pvc", Seed: 99,
			Warmup: 1_000, Measure: 5_000,
			FrameCycles: 10_000, WindowPackets: 8, QuantumFlits: 16, MarginClasses: 32,
		},
		Records: []traffic.TraceRecord{
			{At: 0, Flow: 0, Src: 0, Dst: 7, Class: noc.ClassRequest},
			{At: 0, Flow: 57, Src: 7, Dst: 0, Class: noc.ClassReply},
			{At: 3, Flow: 8, Src: 1, Dst: 2, Class: noc.ClassReply},
			// A large cycle jump exercises multi-byte varint deltas.
			{At: 1_000_000, Flow: 8, Src: 1, Dst: 5, Class: noc.ClassRequest},
			{At: 1_000_000, Flow: 16, Src: 2, Dst: 1, Class: noc.ClassRequest},
		},
	}
}

// TestTraceEncodeDecodeRoundTrip pins the binary format: header and
// records survive an encode/decode cycle bit-for-bit.
func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleTrace()
	got, err := DecodeTrace(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, want.Header) {
		t.Errorf("header diverged: %+v vs %+v", got.Header, want.Header)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("decoded %d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if got.Records[i] != want.Records[i] {
			t.Errorf("record %d diverged: %+v vs %+v", i, got.Records[i], want.Records[i])
		}
	}
}

// TestTraceV1ByteCompat pins that a trace without fault state still
// encodes as version 1, byte-identical to the original format — old
// traces and new fault-free captures are the same bytes.
func TestTraceV1ByteCompat(t *testing.T) {
	blob := sampleTrace().Encode()
	if blob[4] != traceVersion {
		t.Fatalf("fault-free trace encoded as version %d, want %d", blob[4], traceVersion)
	}
}

// TestTraceV2RoundTrip pins the fault section: a faulted header flips the
// version byte to 2 and survives encode/decode exactly, and the rebuilt
// cell carries the recorded fault configuration.
func TestTraceV2RoundTrip(t *testing.T) {
	want := sampleTrace()
	want.Header.Faults = []noc.FaultWindow{
		{Kind: noc.FaultLinkTransient, Port: 3, From: 100, Until: 900},
		{Kind: noc.FaultLinkPermanent, Port: 9, From: 2_000},
		{Kind: noc.FaultRouterStall, Node: 5, From: 1_500, Until: 1_600},
	}
	want.Header.RetryTimeout = 400
	want.Header.MaxRetries = 6
	want.Header.WatchdogCycles = 50_000
	blob := want.Encode()
	if blob[4] != traceVersionV2 {
		t.Fatalf("faulted trace encoded as version %d, want %d", blob[4], traceVersionV2)
	}
	got, err := DecodeTrace(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, want.Header) {
		t.Errorf("header diverged: %+v vs %+v", got.Header, want.Header)
	}
	cfg, _, _, err := got.Cell("v2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Faults.Windows, want.Header.Faults) ||
		cfg.Faults.RetryTimeout != 400 || cfg.Faults.MaxRetries != 6 || cfg.WatchdogCycles != 50_000 {
		t.Errorf("cell dropped fault config: %+v wd=%d", cfg.Faults, cfg.WatchdogCycles)
	}
}

// TestTraceV2RejectsBadFaults pins that malformed fault sections fail
// decoding instead of installing nonsense windows.
func TestTraceV2RejectsBadFaults(t *testing.T) {
	mk := func(w noc.FaultWindow) []byte {
		tr := sampleTrace()
		tr.Header.Faults = []noc.FaultWindow{w}
		return tr.Encode()
	}
	cases := map[string][]byte{
		"unknown kind":        mk(noc.FaultWindow{Kind: 99, Port: 1, From: 10, Until: 20}),
		"empty window":        mk(noc.FaultWindow{Kind: noc.FaultLinkTransient, Port: 1, From: 20, Until: 20}),
		"unbounded transient": mk(noc.FaultWindow{Kind: noc.FaultLinkTransient, Port: 1, From: 10}),
	}
	for name, blob := range cases {
		if _, err := DecodeTrace(blob); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// catchWatchdog runs fn and returns the watchdog trip it panics with, or
// nil if it runs to completion. Any other panic propagates.
func catchWatchdog(fn func()) (we *network.WatchdogError) {
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(*network.WatchdogError)
			if !ok {
				panic(r)
			}
			we = e
		}
	}()
	fn()
	return nil
}

// TestWatchdogReproTraceReplays pins the watchdog's headline debugging
// contract end to end: wedge a column with a permanent router stall, catch
// the dump, wrap its auto-captured repro trace in a version-2 trace
// carrying the same fault schedule, round-trip it through the binary
// encoding, and replay — the rebuilt cell must wedge identically, tripping
// the watchdog at the same cycle.
func TestWatchdogReproTraceReplays(t *testing.T) {
	w := traffic.UniformRandom(topology.ColumnNodes, 0.05)
	qcfg := qos.DefaultConfig(w.TotalFlows())
	cfg := network.Config{
		Kind: topology.MeshX1, QoS: qcfg, Workload: w, Seed: 23,
		Faults: network.FaultConfig{Windows: []noc.FaultWindow{
			{Kind: noc.FaultRouterStall, Node: 3, From: 500}, // never lifts
		}},
		WatchdogCycles: 1_500,
	}
	n := network.MustNew(cfg)
	we := catchWatchdog(func() { n.WarmupAndMeasure(0, 10_000) })
	if we == nil {
		t.Fatal("permanent router stall did not trip the watchdog")
	}
	if len(we.Report.Records) == 0 {
		t.Fatal("watchdog dump carries no repro trace")
	}

	tr := &Trace{
		Header: TraceHeader{
			Nodes: topology.ColumnNodes, Topology: cfg.Kind.String(), QoS: qcfg.Mode.String(),
			Seed: cfg.Seed, Warmup: 0, Measure: 10_000,
			Faults:         cfg.Faults.Windows,
			WatchdogCycles: cfg.WatchdogCycles,
		},
		Records: we.Report.Records,
	}
	decoded, err := DecodeTrace(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	rcfg, warmup, measure, err := decoded.Cell("repro")
	if err != nil {
		t.Fatal(err)
	}
	rn := network.MustNew(rcfg)
	again := catchWatchdog(func() { rn.WarmupAndMeasure(warmup, measure) })
	if again == nil {
		t.Fatal("replayed repro trace did not trip the watchdog")
	}
	if again.Report.At != we.Report.At || again.Report.LastProgress != we.Report.LastProgress {
		t.Errorf("replayed trip diverged: cycle %d/progress %d, recorded %d/%d",
			again.Report.At, again.Report.LastProgress, we.Report.At, we.Report.LastProgress)
	}
}

// TestTraceDecodeRejectsGarbage pins the decoder's error surface: bad
// magic, bad version, truncations at several depths, invalid record
// fields and trailing bytes must all fail cleanly, never panic.
func TestTraceDecodeRejectsGarbage(t *testing.T) {
	valid := sampleTrace().Encode()
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("NOPE\x01"),
		"bad version":   []byte("TQTR\x63"),
		"header only":   valid[:6],
		"mid header":    valid[:12],
		"mid records":   valid[:len(valid)-3],
		"trailing junk": append(append([]byte{}, valid...), 0x01),
	}
	for name, blob := range cases {
		if _, err := DecodeTrace(blob); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}

	// Field-level validation: a flow outside the population, nodes
	// outside the column.
	for name, rec := range map[string]traffic.TraceRecord{
		"bad flow": {At: 1, Flow: 64, Src: 0, Dst: 1, Class: noc.ClassRequest},
		"bad src":  {At: 1, Flow: 0, Src: 9, Dst: 1, Class: noc.ClassRequest},
		"bad dst":  {At: 1, Flow: 0, Src: 0, Dst: 8, Class: noc.ClassRequest},
	} {
		tr := sampleTrace()
		tr.Records = []traffic.TraceRecord{rec}
		if _, err := DecodeTrace(tr.Encode()); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// TestTraceWorkloadGrouping pins the replay-workload construction: one
// spec per flow in ascending flow order, each carrying its record
// subsequence in order, and inconsistent source nodes rejected.
func TestTraceWorkloadGrouping(t *testing.T) {
	tr := sampleTrace()
	w, err := tr.Workload("replay")
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Specs) != 4 {
		t.Fatalf("%d specs, want 4 (flows 0, 8, 16, 57)", len(w.Specs))
	}
	wantFlows := []noc.FlowID{0, 8, 16, 57}
	for i, s := range w.Specs {
		if s.Flow != wantFlows[i] {
			t.Errorf("spec %d is flow %d, want %d", i, s.Flow, wantFlows[i])
		}
		if s.Replay == nil || len(s.Replay.Events) == 0 {
			t.Fatalf("spec %d has no replay stream", i)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d invalid: %v", i, err)
		}
	}
	if evs := w.Specs[1].Replay.Events; len(evs) != 2 || evs[0].At != 3 || evs[1].At != 1_000_000 {
		t.Errorf("flow 8 stream wrong: %+v", evs)
	}

	// One flow injected from two nodes (a closed-loop capture's carried
	// charging: the client's requests plus the server's replies) becomes
	// two independent replay streams.
	carried := sampleTrace()
	carried.Records = append(carried.Records, traffic.TraceRecord{At: 2_000_000, Flow: 8, Src: 3, Dst: 1, Class: noc.ClassRequest})
	cw, err := carried.Workload("replay")
	if err != nil {
		t.Fatal(err)
	}
	if len(cw.Specs) != 5 {
		t.Fatalf("%d specs for a carried-charge trace, want 5", len(cw.Specs))
	}
	if s := cw.Specs[2]; s.Flow != 8 || s.Node != 3 || len(s.Replay.Events) != 1 {
		t.Errorf("carried-charge stream wrong: %+v", s)
	}
}

// TestTraceFileRoundTrip pins the file I/O helpers.
func TestTraceFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/t.trace"
	want := sampleTrace()
	if err := WriteTraceFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Header, want.Header) || len(got.Records) != len(want.Records) {
		t.Errorf("file round trip diverged")
	}
}

// TestTraceCellHonorsHeader pins Cell(): the header's topology, QoS mode,
// overrides and schedule come back in the rebuilt configuration.
func TestTraceCellHonorsHeader(t *testing.T) {
	cfg, warmup, measure, err := sampleTrace().Cell("replay")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != topology.MeshX2 || cfg.Nodes != 8 || cfg.Seed != 99 {
		t.Errorf("cell config wrong: %+v", cfg)
	}
	if warmup != 1_000 || measure != 5_000 {
		t.Errorf("schedule %d/%d, want 1000/5000", warmup, measure)
	}
	if cfg.QoS.FrameCycles != sim.Cycle(10_000) || cfg.QoS.WindowPackets != 8 ||
		cfg.QoS.QuantumFlits != 16 || cfg.QoS.MarginClasses != 32 {
		t.Errorf("QoS overrides lost: %+v", cfg.QoS)
	}
	for _, bad := range []TraceHeader{
		{Nodes: 8, Topology: "nope", QoS: "pvc"},
		{Nodes: 8, Topology: "mesh_x1", QoS: "nope"},
	} {
		tr := &Trace{Header: bad}
		if _, _, _, err := tr.Cell("x"); err == nil {
			t.Errorf("Cell accepted header %+v", bad)
		}
	}
}
