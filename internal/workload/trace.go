package workload

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Trace binary format (little varints throughout, magic "TQTR" + version):
//
//	"TQTR" <version=1|2>
//	uvarint nodes seed warmup measure
//	uvarint frame_cycles window_packets quantum_flits margin_classes
//	uvarint len(topology) <topology bytes> uvarint len(qos) <qos bytes>
//	version 2 only (fault section):
//	  uvarint retry_timeout max_retries watchdog_cycles window_count
//	  window*: uvarint kind port node from until
//	  uvarint len(engine) <engine bytes>
//	uvarint record_count
//	record*: uvarint cycle_delta flow src dst flits
//
// Records are stored in generation order, so cycles are non-decreasing
// and delta-encoding keeps the common record at five single-byte varints
// (~5 bytes/packet). The header captures the recorded cell — topology,
// QoS mode and overrides, seed and warmup/measure schedule — so a trace
// is self-contained: `noctool trace replay` rebuilds the exact cell and
// reproduces the recorded delivery fingerprint.
//
// Version 2 adds the cell's fault configuration (scheduled fault windows,
// retry timeout and bound, watchdog arming) plus the engine version stamp
// of the recording binary, so a trace captured from a faulted cell —
// including the repro trace a watchdog dump carries — replays with the
// same faults striking at the same cycles and names the engine that made
// it. Encode emits version 1 bytes whenever the fault section would be
// empty, so fault-free traces stay byte-identical to the original format.

const (
	traceMagic     = "TQTR"
	traceVersion   = 1
	traceVersionV2 = 2
)

// TraceHeader describes the cell a trace was recorded from.
type TraceHeader struct {
	// Nodes is the column height of the recorded network.
	Nodes int
	// Topology and QoS are the recorded cell's topology kind and QoS
	// mode, by name (topology.Kind.String / qos.Mode.String).
	Topology string
	QoS      string
	// Seed is the recorded cell's RNG seed (replay consumes no
	// randomness, but reusing it keeps provenance and derived streams
	// identical).
	Seed uint64
	// Warmup and Measure are the recorded schedule in cycles; replaying
	// with the same schedule reproduces the measurement window.
	Warmup  int
	Measure int
	// QoS parameter overrides of the recorded cell (0 = defaults), the
	// same four knobs a scenario file can set.
	FrameCycles   int
	WindowPackets int
	QuantumFlits  int
	MarginClasses int
	// Fault configuration of the recorded cell: scheduled fault windows,
	// end-to-end recovery knobs and the watchdog window. All zero for a
	// healthy cell, in which case Encode emits version-1 bytes.
	Faults         []noc.FaultWindow
	RetryTimeout   sim.Cycle
	MaxRetries     int
	WatchdogCycles sim.Cycle
	// Engine is the version stamp of the engine that recorded the trace
	// (network.EngineVersion at record time). It rides in the version-2
	// section only: a fault-free header encodes as version 1 and drops
	// the stamp, keeping the original format byte-identical.
	Engine string
}

// faulted reports whether the header carries any fault-section state and
// therefore needs the version-2 encoding.
func (h *TraceHeader) faulted() bool {
	return len(h.Faults) > 0 || h.RetryTimeout > 0 || h.MaxRetries > 0 || h.WatchdogCycles > 0
}

// Trace is a decoded (or to-be-encoded) injection-stream capture.
type Trace struct {
	Header  TraceHeader
	Records []traffic.TraceRecord
}

// Encode renders the trace in the binary format: version 1 when the
// header carries no fault state, version 2 otherwise.
func (t *Trace) Encode() []byte {
	version := byte(traceVersion)
	if t.Header.faulted() {
		version = traceVersionV2
	}
	out := make([]byte, 0, len(traceMagic)+1+32+len(t.Header.Faults)*6+len(t.Records)*5)
	out = append(out, traceMagic...)
	out = append(out, version)
	out = binary.AppendUvarint(out, uint64(t.Header.Nodes))
	out = binary.AppendUvarint(out, t.Header.Seed)
	out = binary.AppendUvarint(out, uint64(t.Header.Warmup))
	out = binary.AppendUvarint(out, uint64(t.Header.Measure))
	out = binary.AppendUvarint(out, uint64(t.Header.FrameCycles))
	out = binary.AppendUvarint(out, uint64(t.Header.WindowPackets))
	out = binary.AppendUvarint(out, uint64(t.Header.QuantumFlits))
	out = binary.AppendUvarint(out, uint64(t.Header.MarginClasses))
	out = appendString(out, t.Header.Topology)
	out = appendString(out, t.Header.QoS)
	if version == traceVersionV2 {
		out = binary.AppendUvarint(out, uint64(t.Header.RetryTimeout))
		out = binary.AppendUvarint(out, uint64(t.Header.MaxRetries))
		out = binary.AppendUvarint(out, uint64(t.Header.WatchdogCycles))
		out = binary.AppendUvarint(out, uint64(len(t.Header.Faults)))
		for _, w := range t.Header.Faults {
			out = binary.AppendUvarint(out, uint64(w.Kind))
			out = binary.AppendUvarint(out, uint64(w.Port))
			out = binary.AppendUvarint(out, uint64(w.Node))
			out = binary.AppendUvarint(out, uint64(w.From))
			out = binary.AppendUvarint(out, uint64(w.Until))
		}
		out = appendString(out, t.Header.Engine)
	}
	out = binary.AppendUvarint(out, uint64(len(t.Records)))
	prev := sim.Cycle(0)
	for _, r := range t.Records {
		out = binary.AppendUvarint(out, uint64(r.At-prev))
		prev = r.At
		out = binary.AppendUvarint(out, uint64(r.Flow))
		out = binary.AppendUvarint(out, uint64(r.Src))
		out = binary.AppendUvarint(out, uint64(r.Dst))
		out = binary.AppendUvarint(out, uint64(r.Class.Flits()))
	}
	return out
}

func appendString(out []byte, s string) []byte {
	out = binary.AppendUvarint(out, uint64(len(s)))
	return append(out, s...)
}

// traceReader walks an encoded trace, recording the first error.
type traceReader struct {
	buf []byte
	pos int
	err error
}

func (r *traceReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("workload: trace truncated reading %s", what)
		return 0
	}
	r.pos += n
	return v
}

func (r *traceReader) str(what string) string {
	n := int(r.uvarint(what + " length"))
	if r.err != nil {
		return ""
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("workload: trace truncated reading %s", what)
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

// DecodeTrace parses an encoded trace, validating the header and every
// record (classes must be the 1- or 4-flit sizes, flows within the
// header's population, sources within the column).
func DecodeTrace(blob []byte) (*Trace, error) {
	if len(blob) < len(traceMagic)+1 || string(blob[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("workload: not a trace file (bad magic)")
	}
	version := blob[len(traceMagic)]
	if version != traceVersion && version != traceVersionV2 {
		return nil, fmt.Errorf("workload: unsupported trace version %d (want %d or %d)", version, traceVersion, traceVersionV2)
	}
	r := &traceReader{buf: blob, pos: len(traceMagic) + 1}
	t := &Trace{}
	t.Header.Nodes = int(r.uvarint("nodes"))
	t.Header.Seed = r.uvarint("seed")
	t.Header.Warmup = int(r.uvarint("warmup"))
	t.Header.Measure = int(r.uvarint("measure"))
	t.Header.FrameCycles = int(r.uvarint("frame_cycles"))
	t.Header.WindowPackets = int(r.uvarint("window_packets"))
	t.Header.QuantumFlits = int(r.uvarint("quantum_flits"))
	t.Header.MarginClasses = int(r.uvarint("margin_classes"))
	t.Header.Topology = r.str("topology")
	t.Header.QoS = r.str("qos")
	if version == traceVersionV2 {
		t.Header.RetryTimeout = sim.Cycle(r.uvarint("retry timeout"))
		t.Header.MaxRetries = int(r.uvarint("max retries"))
		t.Header.WatchdogCycles = sim.Cycle(r.uvarint("watchdog cycles"))
		windows := r.uvarint("fault window count")
		for i := uint64(0); i < windows && r.err == nil; i++ {
			w := noc.FaultWindow{
				Kind:  noc.FaultKind(r.uvarint("fault kind")),
				Port:  int(r.uvarint("fault port")),
				Node:  int(r.uvarint("fault node")),
				From:  sim.Cycle(r.uvarint("fault from")),
				Until: sim.Cycle(r.uvarint("fault until")),
			}
			if r.err != nil {
				break
			}
			if err := w.Validate(); err != nil {
				return nil, fmt.Errorf("workload: trace fault window %d: %w", i, err)
			}
			t.Header.Faults = append(t.Header.Faults, w)
		}
		t.Header.Engine = r.str("engine")
	}
	count := r.uvarint("record count")
	if r.err != nil {
		return nil, r.err
	}
	if t.Header.Nodes < 2 {
		return nil, fmt.Errorf("workload: trace header nodes %d invalid", t.Header.Nodes)
	}
	flows := t.Header.Nodes * topology.InjectorsPerNode
	t.Records = make([]traffic.TraceRecord, 0, count)
	at := sim.Cycle(0)
	for i := uint64(0); i < count; i++ {
		at += sim.Cycle(r.uvarint("cycle delta"))
		flow := r.uvarint("flow")
		src := r.uvarint("src")
		dst := r.uvarint("dst")
		flits := r.uvarint("flits")
		if r.err != nil {
			return nil, r.err
		}
		var class noc.Class
		switch flits {
		case noc.RequestFlits:
			class = noc.ClassRequest
		case noc.ReplyFlits:
			class = noc.ClassReply
		default:
			return nil, fmt.Errorf("workload: trace record %d has %d flits (want %d or %d)", i, flits, noc.RequestFlits, noc.ReplyFlits)
		}
		if flow >= uint64(flows) {
			return nil, fmt.Errorf("workload: trace record %d flow %d outside population of %d", i, flow, flows)
		}
		if src >= uint64(t.Header.Nodes) || dst >= uint64(t.Header.Nodes) {
			return nil, fmt.Errorf("workload: trace record %d node %d/%d outside column of %d", i, src, dst, t.Header.Nodes)
		}
		t.Records = append(t.Records, traffic.TraceRecord{
			At: at, Flow: noc.FlowID(flow), Src: noc.NodeID(src), Dst: noc.NodeID(dst), Class: class,
		})
	}
	if r.pos != len(blob) {
		return nil, fmt.Errorf("workload: %d trailing bytes after trace records", len(blob)-r.pos)
	}
	return t, nil
}

// WriteTraceFile encodes the trace to path.
func WriteTraceFile(path string, t *Trace) error {
	return os.WriteFile(path, t.Encode(), 0o644)
}

// ReadTraceFile reads and decodes the trace at path.
func ReadTraceFile(path string) (*Trace, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return DecodeTrace(blob)
}

// Workload turns the trace into a replayable workload: one injector per
// recorded (flow, source node) pair carrying its record subsequence as a
// Replay stream, in ascending (flow, node) order — for an ordinary
// workload that is one spec per flow in exactly the relative order the
// original constructors used, which is what makes an open-loop
// record→replay reproduce generation order (and therefore packet IDs and
// arbitration tie-breaks) exactly. Closed-loop captures may legitimately
// carry one flow from two nodes (a client's requests plus the server's
// replies charged to that client), so the pair is the grouping key.
func (t *Trace) Workload(name string) (traffic.Workload, error) {
	type streamKey struct {
		flow noc.FlowID
		src  noc.NodeID
	}
	perStream := map[streamKey]*traffic.Replay{}
	for _, r := range t.Records {
		k := streamKey{r.Flow, r.Src}
		rp := perStream[k]
		if rp == nil {
			rp = &traffic.Replay{}
			perStream[k] = rp
		}
		rp.Events = append(rp.Events, traffic.ReplayEvent{At: r.At, Dst: r.Dst, Class: r.Class})
	}
	keys := make([]streamKey, 0, len(perStream))
	for k := range perStream {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].flow != keys[b].flow {
			return keys[a].flow < keys[b].flow
		}
		return keys[a].src < keys[b].src
	})
	w := traffic.Workload{Name: name, Nodes: t.Header.Nodes}
	for _, k := range keys {
		w.Specs = append(w.Specs, traffic.Spec{
			Flow:   k.flow,
			Node:   k.src,
			Replay: perStream[k],
		})
	}
	return w, nil
}

// Cell rebuilds the recorded cell as a replay configuration: the header's
// topology, QoS mode and overrides, seed and column height, with the
// trace as the workload. A version-2 header also restores the recorded
// fault configuration — windows, recovery knobs, watchdog — so faults
// strike the replay at the same cycles. The returned warmup/measure are
// the recorded schedule; running them through WarmupAndMeasure reproduces
// the recorded measurement window (and, for an open-loop recording, its
// delivery fingerprint exactly).
func (t *Trace) Cell(name string) (cfg network.Config, warmup, measure int, err error) {
	kind, err := topology.KindByName(t.Header.Topology)
	if err != nil {
		return network.Config{}, 0, 0, fmt.Errorf("workload: trace header: %w", err)
	}
	mode, err := qos.ModeByName(t.Header.QoS)
	if err != nil {
		return network.Config{}, 0, 0, fmt.Errorf("workload: trace header: %w", err)
	}
	w, err := t.Workload(name)
	if err != nil {
		return network.Config{}, 0, 0, err
	}
	qcfg := qos.DefaultConfig(w.TotalFlows())
	qcfg.Mode = mode
	if t.Header.FrameCycles > 0 {
		qcfg.FrameCycles = sim.Cycle(t.Header.FrameCycles)
	}
	if t.Header.WindowPackets > 0 {
		qcfg.WindowPackets = t.Header.WindowPackets
	}
	if t.Header.QuantumFlits > 0 {
		qcfg.QuantumFlits = t.Header.QuantumFlits
	}
	if t.Header.MarginClasses > 0 {
		qcfg.MarginClasses = t.Header.MarginClasses
	}
	return network.Config{
		Kind:     kind,
		Nodes:    t.Header.Nodes,
		QoS:      qcfg,
		Workload: w,
		Seed:     t.Header.Seed,
		Faults: network.FaultConfig{
			Windows:      t.Header.Faults,
			RetryTimeout: t.Header.RetryTimeout,
			MaxRetries:   t.Header.MaxRetries,
		},
		WatchdogCycles: t.Header.WatchdogCycles,
	}, t.Header.Warmup, t.Header.Measure, nil
}
