package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"tanoq/internal/network"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
	"tanoq/internal/traffic"
)

// Recorder captures a run's injection stream through the engine's
// generation hook. Attach it before running; every generated packet —
// open-loop, replayed or closed-loop — lands in Records in generation
// order, ready to encode as a Trace.
type Recorder struct {
	records []traffic.TraceRecord
}

// Attach installs the recorder on the network (replacing any previously
// installed generation hook). network.Reset clears the hook; re-attach
// per cell.
func (r *Recorder) Attach(n *network.Network) {
	n.SetGenHook(func(tr traffic.TraceRecord) {
		r.records = append(r.records, tr)
	})
}

// Len returns the number of captured records.
func (r *Recorder) Len() int { return len(r.records) }

// Records exposes the captured stream (owned by the recorder).
func (r *Recorder) Records() []traffic.TraceRecord { return r.records }

// Trace wraps the captured stream with a header describing the recorded
// cell.
func (r *Recorder) Trace(hdr TraceHeader) *Trace {
	return &Trace{Header: hdr, Records: r.records}
}

// Fingerprint condenses a finished run's delivery observables — totals,
// last delivery, final clock and the full per-flow flit vector — into a
// 16-hex-digit FNV-1a digest. Two runs with equal fingerprints delivered
// the same packet population with the same latencies to the same flows;
// the record→replay contract (and `make trace-smoke`) diffs exactly this.
func Fingerprint(st *stats.Collector, end sim.Cycle) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(st.TotalDelivered))
	put(uint64(st.TotalLatency))
	put(uint64(st.InjectedPackets))
	put(uint64(st.Retransmits))
	put(uint64(st.PreemptionEvents))
	put(uint64(st.WastedHops))
	put(uint64(st.TotalHops))
	put(uint64(st.LastDelivery))
	put(uint64(end))
	for _, f := range st.DeliveredFlits {
		put(uint64(f))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
