package workload

import (
	"testing"

	"tanoq/internal/network"
	"tanoq/internal/qos"
	"tanoq/internal/runner"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// closedFingerprint captures every observable of a finished closed-loop
// run: the engine's delivery fingerprint plus the controller's round-trip
// ledger.
type closedFingerprint struct {
	engine    string
	issued    int64
	completed int64
	perClient []int64
	rttP99    int64
}

func closedFP(n *network.Network, ct *Controller) closedFingerprint {
	fp := closedFingerprint{
		engine:    Fingerprint(n.Stats(), n.Now()),
		issued:    ct.Issued,
		completed: ct.Completed,
		rttP99:    ct.RT.Latencies.Percentile(99),
	}
	fp.perClient = append(fp.perClient, ct.RT.Completed...)
	return fp
}

func equalClosedFP(a, b closedFingerprint) bool {
	if a.engine != b.engine || a.issued != b.issued || a.completed != b.completed ||
		a.rttP99 != b.rttP99 || len(a.perClient) != len(b.perClient) {
		return false
	}
	for i := range a.perClient {
		if a.perClient[i] != b.perClient[i] {
			return false
		}
	}
	return true
}

// TestClosedLoopIdleSkipEquivalence pins the tentpole's skip contract:
// client wake-ups are first-class events, so idle fast-forwarding is
// mechanical for closed-loop runs too — bit-identical fingerprints across
// every topology and QoS mode, through warmup/measure plus a drain.
func TestClosedLoopIdleSkipEquivalence(t *testing.T) {
	for _, kind := range topology.Kinds() {
		for _, mode := range []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS} {
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				run := func(disable bool) closedFingerprint {
					n, ct := closedCell(t, kind, mode,
						ClientConfig{Outstanding: 4, ThinkMean: 120, StopIssuing: 9_000, Seed: 17}, 31, disable)
					n.WarmupAndMeasure(2_000, 5_000)
					if _, drained := n.RunUntilDrained(200_000); !drained {
						t.Fatalf("did not drain (in flight %d)", n.InFlight())
					}
					return closedFP(n, ct)
				}
				ticked, skipped := run(true), run(false)
				if ticked.completed == 0 {
					t.Fatal("test needs completed round trips to be meaningful")
				}
				if !equalClosedFP(ticked, skipped) {
					t.Errorf("skipping changed closed-loop results:\nticked:  %+v\nskipped: %+v", ticked, skipped)
				}
			})
		}
	}
}

// TestClosedLoopWorkerCountDeterminism runs a closed-loop sweep grid
// through the parallel runner at several worker counts and requires
// bit-identical per-cell fingerprints: controllers are per-cell state
// attached via Cell.Setup, so parallel fan-out cannot perturb them.
func TestClosedLoopWorkerCountDeterminism(t *testing.T) {
	buildCells := func() []runner.Cell {
		var cells []runner.Cell
		for _, kind := range []topology.Kind{topology.MeshX1, topology.MECS} {
			for _, mode := range []qos.Mode{qos.PVC, qos.NoQoS} {
				for _, seed := range []uint64{1, 2} {
					seed := seed // captured by Setup, which runs after the loop (go 1.21 semantics)
					w := ClientWorkload("closed", topology.ColumnNodes)
					qcfg := qos.DefaultConfig(w.TotalFlows())
					qcfg.Mode = mode
					cells = append(cells, runner.Cell{
						Config: network.Config{Kind: kind, QoS: qcfg, Workload: w, Seed: seed},
						Warmup: 1_000, Measure: 6_000,
						Setup: func(n *network.Network) any {
							ct, err := NewController(n, ClientConfig{Outstanding: 3, ThinkMean: 40, Seed: seed})
							if err != nil {
								panic(err)
							}
							return ct
						},
					})
				}
			}
		}
		return cells
	}
	fingerprints := func(workers int) []closedFingerprint {
		res := runner.RunCells(buildCells(), workers)
		out := make([]closedFingerprint, len(res))
		for i, r := range res {
			ct := r.Aux.(*Controller)
			out[i] = closedFingerprint{
				engine:    Fingerprint(r.Stats, r.End),
				issued:    ct.Issued,
				completed: ct.Completed,
				rttP99:    ct.RT.Latencies.Percentile(99),
			}
			out[i].perClient = append(out[i].perClient, ct.RT.Completed...)
		}
		return out
	}
	base := fingerprints(1)
	for _, workers := range []int{2, 4} {
		got := fingerprints(workers)
		for i := range base {
			if !equalClosedFP(base[i], got[i]) {
				t.Errorf("cell %d: workers=%d diverged from sequential:\nseq: %+v\npar: %+v",
					i, workers, base[i], got[i])
			}
		}
	}
	if base[0].completed == 0 {
		t.Fatal("test needs completed round trips to be meaningful")
	}
}

// TestOpenLoopRecordReplayFingerprint pins the trace layer's headline
// contract: recording an open-loop run and replaying the captured trace
// reproduces the delivery fingerprint exactly — generation order, packet
// IDs and every arbitration tie-break coincide.
func TestOpenLoopRecordReplayFingerprint(t *testing.T) {
	for _, tc := range []struct {
		kind topology.Kind
		mode qos.Mode
		rate float64
	}{
		{topology.MeshX1, qos.PVC, 0.05},
		{topology.MECS, qos.NoQoS, 0.08},
		{topology.DPS, qos.PerFlowQueue, 0.04},
	} {
		t.Run(tc.kind.String()+"/"+tc.mode.String(), func(t *testing.T) {
			w := traffic.UniformRandom(topology.ColumnNodes, tc.rate)
			qcfg := qos.DefaultConfig(w.TotalFlows())
			qcfg.Mode = tc.mode
			cfg := network.Config{Kind: tc.kind, QoS: qcfg, Workload: w, Seed: 23}

			rec := &Recorder{}
			n := network.MustNew(cfg)
			rec.Attach(n)
			n.WarmupAndMeasure(2_000, 8_000)
			want := Fingerprint(n.Stats(), n.Now())
			if rec.Len() == 0 {
				t.Fatal("recorder captured nothing")
			}

			trace := rec.Trace(TraceHeader{
				Nodes: topology.ColumnNodes, Topology: tc.kind.String(), QoS: tc.mode.String(),
				Seed: 23, Warmup: 2_000, Measure: 8_000,
			})
			// Round-trip through the binary encoding to prove the on-disk
			// form carries the full contract, not just the in-memory one.
			decoded, err := DecodeTrace(trace.Encode())
			if err != nil {
				t.Fatal(err)
			}
			rcfg, warmup, measure, err := decoded.Cell("replay")
			if err != nil {
				t.Fatal(err)
			}
			for _, disable := range []bool{false, true} {
				rcfg.DisableIdleSkip = disable
				rn := network.MustNew(rcfg)
				rn.WarmupAndMeasure(warmup, measure)
				if got := Fingerprint(rn.Stats(), rn.Now()); got != want {
					t.Errorf("skip=%v: replay fingerprint %s != recorded %s", !disable, got, want)
				}
			}
		})
	}
}

// TestReplayRerecordIsIdentity pins replay's own determinism: re-recording
// a replayed run captures the identical record stream.
func TestReplayRerecordIsIdentity(t *testing.T) {
	w := traffic.Tornado(topology.ColumnNodes, 0.06)
	cfg := network.Config{Kind: topology.MeshX2, QoS: qos.DefaultConfig(w.TotalFlows()), Workload: w, Seed: 5}
	rec := &Recorder{}
	n := network.MustNew(cfg)
	rec.Attach(n)
	n.Run(6_000)
	trace := rec.Trace(TraceHeader{Nodes: topology.ColumnNodes, Topology: "mesh_x2", QoS: "pvc", Seed: 5})

	rw, err := trace.Workload("replay")
	if err != nil {
		t.Fatal(err)
	}
	rec2 := &Recorder{}
	rn := network.MustNew(network.Config{Kind: topology.MeshX2, QoS: qos.DefaultConfig(rw.TotalFlows()), Workload: rw, Seed: 5})
	rec2.Attach(rn)
	rn.Run(6_000)
	if rec2.Len() != rec.Len() {
		t.Fatalf("re-record captured %d records, original %d", rec2.Len(), rec.Len())
	}
	for i := range rec.Records() {
		if rec.Records()[i] != rec2.Records()[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, rec.Records()[i], rec2.Records()[i])
		}
	}
}

// TestClosedLoopRecordReplayDrains pins that a captured closed-loop run
// replays as a well-formed open-loop workload: same generation count,
// and the replay drains completely.
func TestClosedLoopRecordReplayDrains(t *testing.T) {
	n, ct := closedCell(t, topology.MECS, qos.PVC,
		ClientConfig{Outstanding: 2, ThinkMean: 30, StopIssuing: 5_000, Seed: 3}, 8, false)
	rec := &Recorder{}
	// The controller owns the delivery hook; the recorder owns the gen
	// hook — they compose.
	rec.Attach(n)
	if _, drained := n.RunUntilDrained(200_000); !drained {
		t.Fatal("closed-loop run did not drain")
	}
	if int64(rec.Len()) != ct.Issued+ct.Completed {
		t.Fatalf("captured %d records, want issued %d + replies %d", rec.Len(), ct.Issued, ct.Completed)
	}
	trace := rec.Trace(TraceHeader{Nodes: topology.ColumnNodes, Topology: "mecs", QoS: "pvc", Seed: 8})
	rw, err := trace.Workload("closed-replay")
	if err != nil {
		t.Fatal(err)
	}
	rn := network.MustNew(network.Config{Kind: topology.MECS, QoS: qos.DefaultConfig(rw.TotalFlows()), Workload: rw, Seed: 8})
	if _, drained := rn.RunUntilDrained(200_000); !drained {
		t.Fatal("replayed closed-loop trace did not drain")
	}
	if got, want := rn.Stats().TotalDelivered, n.Stats().TotalDelivered; got != want {
		t.Errorf("replay delivered %d packets, recorded run %d", got, want)
	}
}
