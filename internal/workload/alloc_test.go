package workload

import (
	"testing"

	"tanoq/internal/qos"
	"tanoq/internal/topology"
)

// TestClosedLoopStepAllocationFree extends the engine's steady-state
// allocation guarantee to the full closed-loop path: with a controller
// attached — delivery hook firing per delivery, replies and think-time
// requests riding ScheduleInjection, round trips observed into the
// histogram — Step must still allocate exactly nothing once the pending-
// injection pool and event spillways have reached their working set.
func TestClosedLoopStepAllocationFree(t *testing.T) {
	n, ct := closedCell(t, topology.MECS, qos.PVC,
		ClientConfig{Outstanding: 4, ThinkMean: 50, Seed: 7}, 3, false)
	n.Run(30_000)
	if avg := testing.AllocsPerRun(5_000, n.Step); avg != 0 {
		t.Errorf("%v allocs per Step in a closed-loop steady state, want exactly 0", avg)
	}
	if ct.Completed == 0 {
		t.Fatal("closed loop made no progress")
	}
}
