package topology

import (
	"fmt"

	"tanoq/internal/noc"
)

// PortID indexes an output port in a Graph. An output port is the unit of
// link arbitration: one winner per allocation, flits cross it at one per
// cycle.
type PortID int

// BufID indexes an input buffer (a pool of virtual channels) in a Graph.
type BufID int

// PortSpec describes one contended output resource.
type PortSpec struct {
	Node int
	Name string
}

// BufSpec describes one input buffer: a VC pool at some node.
type BufSpec struct {
	Node int
	Name string
	// VCs is the pool size; one of them is reserved for rate-compliant
	// traffic when Reserved is true (network ports only, per Table 1).
	VCs      int
	Reserved bool
	// Ejection marks the terminal-interface buffer whose tail arrival
	// completes delivery.
	Ejection bool
}

// Leg is one hop of a packet's path: arbitration for Out at Node, then a
// transfer into buffer In after RouterDelay pipeline cycles plus WireDelay
// cycles of channel flight.
type Leg struct {
	// Node is where the arbitration for this leg happens.
	Node int
	// Out is the contended output resource.
	Out PortID
	// In is the downstream buffer that must grant a VC.
	In BufID
	// WireDelay is the channel flight time in cycles (|i-j| for a MECS
	// express channel, 1 for adjacent-router links, 0 for ejection).
	WireDelay int
	// RouterDelay is the pipeline depth charged before the head flit
	// reaches the channel.
	RouterDelay int
	// Intermediate marks a DPS mux hop: no flow-state access, the
	// packet's carried priority is reused.
	Intermediate bool
	// Final marks the ejection leg; tail arrival into In is delivery.
	Final bool
	// HopWeight is the mesh-equivalent hop count of this leg, used to
	// normalize wasted-hop accounting across topologies (Section 5.3):
	// a MECS express leg spanning d tiles counts as d mesh hops.
	HopWeight int
}

// Graph is the behavioural description of one shared-region column
// topology: its ports, buffers and all-pairs paths.
type Graph struct {
	Kind  Kind
	Nodes int

	Ports []PortSpec
	Bufs  []BufSpec

	termPort []PortID // per node: terminal (ejection) output port
	ejBuf    []BufID  // per node: ejection buffer

	// paths[src][dst][replica] is the precomputed leg sequence.
	paths [][][][]Leg
}

// NewGraph builds the column graph for a topology over the given number of
// nodes (ColumnNodes in the paper's configuration; smaller values are used
// in tests).
func NewGraph(kind Kind, nodes int) *Graph {
	if nodes < 2 {
		panic(fmt.Sprintf("topology: need at least 2 nodes, got %d", nodes))
	}
	g := &Graph{Kind: kind, Nodes: nodes}
	g.buildCommon()
	switch kind {
	case MeshX1, MeshX2, MeshX4:
		g.buildMesh(kind.Replication())
	case MECS:
		g.buildMECS()
	case DPS:
		g.buildDPS()
	default:
		panic(fmt.Sprintf("topology: unknown kind %v", kind))
	}
	return g
}

// NumReplicas returns how many parallel channel sets a source can spread
// packets over (mesh xK replication; 1 elsewhere).
func (g *Graph) NumReplicas() int { return g.Kind.Replication() }

// NumPorts returns the number of output ports NewGraph(kind, nodes) creates,
// in O(1) and without building the graph: n terminal ports plus the
// topology's channel ports. Fault-schedule validation uses it to range-check
// port ids cheaply. Returns 0 for configurations NewGraph would reject.
func NumPorts(kind Kind, nodes int) int {
	if nodes < 2 {
		return 0
	}
	switch kind {
	case MeshX1, MeshX2, MeshX4:
		// Per interior direction, Replication() channels out of each of
		// the n-1 upstream nodes.
		return nodes + 2*kind.Replication()*(nodes-1)
	case MECS:
		// One express channel per direction per non-edge endpoint.
		return nodes + 2*(nodes-1)
	case DPS:
		// Subnet d has an output at every node but d.
		return nodes + nodes*(nodes-1)
	default:
		return 0
	}
}

// Path returns the leg sequence from src to dst using the given replica
// (ignored by unreplicated topologies). The returned slice is shared and
// must not be mutated.
func (g *Graph) Path(src, dst noc.NodeID, replica int) []Leg {
	r := replica % g.NumReplicas()
	return g.paths[src][dst][r]
}

// TerminalPort returns the ejection output port of a node.
func (g *Graph) TerminalPort(n noc.NodeID) PortID { return g.termPort[n] }

// EjectionBuf returns the ejection buffer of a node.
func (g *Graph) EjectionBuf(n noc.NodeID) BufID { return g.ejBuf[n] }

// Distance returns the mesh-equivalent hop distance between two nodes.
func Distance(a, b noc.NodeID) int {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	return d
}

func (g *Graph) addPort(node int, name string) PortID {
	g.Ports = append(g.Ports, PortSpec{Node: node, Name: name})
	return PortID(len(g.Ports) - 1)
}

func (g *Graph) addBuf(node int, name string, vcs int, reserved, ejection bool) BufID {
	g.Bufs = append(g.Bufs, BufSpec{Node: node, Name: name, VCs: vcs, Reserved: reserved, Ejection: ejection})
	return BufID(len(g.Bufs) - 1)
}

// buildCommon creates the per-node terminal port and ejection buffer shared
// by all topologies, and the path table skeleton.
func (g *Graph) buildCommon() {
	n := g.Nodes
	g.termPort = make([]PortID, n)
	g.ejBuf = make([]BufID, n)
	for i := 0; i < n; i++ {
		g.termPort[i] = g.addPort(i, fmt.Sprintf("n%d.term", i))
		g.ejBuf[i] = g.addBuf(i, fmt.Sprintf("n%d.ej", i), EjectionVCs, false, true)
	}
	g.paths = make([][][][]Leg, n)
	for s := range g.paths {
		g.paths[s] = make([][][]Leg, n)
		for d := range g.paths[s] {
			g.paths[s][d] = make([][]Leg, g.NumReplicas())
		}
	}
}

// ejectionLeg builds the final leg: arbitration for the destination's
// terminal port, delivering into the ejection buffer.
func (g *Graph) ejectionLeg(dst int) Leg {
	return Leg{
		Node:        dst,
		Out:         g.termPort[dst],
		In:          g.ejBuf[dst],
		WireDelay:   0,
		RouterDelay: g.Kind.RouterDelay(false),
		Final:       true,
		HopWeight:   0,
	}
}

// buildMesh wires a k-replicated bidirectional chain: per node, k channels
// north and k channels south, each terminating in a 6-VC input buffer at
// the adjacent node. DOR on a single dimension degenerates to "walk the
// chain"; each hop is a full 2-stage router traversal.
func (g *Graph) buildMesh(k int) {
	n := g.Nodes
	// out[node][dir][replica]: dir 0 = toward smaller ids ("north"),
	// dir 1 = toward larger ids ("south").
	out := make([][2][]PortID, n)
	in := make([][2][]BufID, n) // in[node][dirOfTravel][replica]: buffer receiving traffic moving in dir
	for i := 0; i < n; i++ {
		for r := 0; r < k; r++ {
			if i > 0 {
				out[i][0] = append(out[i][0], g.addPort(i, fmt.Sprintf("n%d.N%d", i, r)))
				in[i-1][0] = append(in[i-1][0], g.addBuf(i-1, fmt.Sprintf("n%d.inN%d", i-1, r), MeshVCs, true, false))
			}
			if i < n-1 {
				out[i][1] = append(out[i][1], g.addPort(i, fmt.Sprintf("n%d.S%d", i, r)))
				in[i+1][1] = append(in[i+1][1], g.addBuf(i+1, fmt.Sprintf("n%d.inS%d", i+1, r), MeshVCs, true, false))
			}
		}
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			for r := 0; r < k; r++ {
				var legs []Leg
				dir, step := 1, 1
				if d < s {
					dir, step = 0, -1
				}
				for u := s; u != d; u += step {
					legs = append(legs, Leg{
						Node:        u,
						Out:         out[u][dir][r],
						In:          in[u+step][dir][r],
						WireDelay:   noc.WireDelay,
						RouterDelay: MeshRouterDelay,
						HopWeight:   1,
					})
				}
				legs = append(legs, g.ejectionLeg(d))
				g.paths[s][d][r] = legs
			}
		}
	}
}

// buildMECS wires point-to-multipoint express channels: each node drives
// one channel per direction; every other node in that direction has a
// dedicated 14-VC input buffer where the channel drops off. A transfer is
// a single express leg whose wire delay is the tile distance.
func (g *Graph) buildMECS() {
	n := g.Nodes
	out := make([][2]PortID, n)
	in := make([][]BufID, n) // in[dst][src]
	for i := 0; i < n; i++ {
		in[i] = make([]BufID, n)
		for j := range in[i] {
			in[i][j] = -1
		}
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			out[i][0] = g.addPort(i, fmt.Sprintf("n%d.N", i))
		}
		if i < n-1 {
			out[i][1] = g.addPort(i, fmt.Sprintf("n%d.S", i))
		}
	}
	for d := 0; d < n; d++ {
		for s := 0; s < n; s++ {
			if s == d {
				continue
			}
			in[d][s] = g.addBuf(d, fmt.Sprintf("n%d.in<-%d", d, s), MECSVCs, true, false)
		}
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			var legs []Leg
			if s != d {
				dir := 1
				if d < s {
					dir = 0
				}
				legs = append(legs, Leg{
					Node:        s,
					Out:         out[s][dir],
					In:          in[d][s],
					WireDelay:   Distance(noc.NodeID(s), noc.NodeID(d)) * noc.WireDelay,
					RouterDelay: MECSRouterDelay,
					HopWeight:   Distance(noc.NodeID(s), noc.NodeID(d)),
				})
			}
			legs = append(legs, g.ejectionLeg(d))
			g.paths[s][d][0] = legs
		}
	}
}

// buildDPS wires one dedicated subnetwork per destination node. Subnet d
// is a pair of chains converging on d; at every non-destination node the
// subnet has a single output (a 2:1 mux merging through traffic with local
// injections) and a 5-VC input buffer. Packets are switched only at the
// source (crossbar into the subnet) and at the destination; intermediate
// traversals take a single cycle.
func (g *Graph) buildDPS() {
	n := g.Nodes
	// out[u][d]: node u's output port on subnet d (toward d). Defined
	// for every u != d.
	out := make([][]PortID, n)
	// in[v][d]: the subnet-d input buffer at node v receiving traffic
	// moving toward d. Defined for every v that subnet-d traffic can
	// arrive at: all v on the chain, including two buffers at v == d
	// (one per side), stored as inAtDest.
	in := make([][]BufID, n)
	inAtDest := make([][2]BufID, n) // [d][side]: 0 = from north (v-1), 1 = from south (v+1)
	for u := 0; u < n; u++ {
		out[u] = make([]PortID, n)
		in[u] = make([]BufID, n)
		for d := range out[u] {
			out[u][d] = -1
			in[u][d] = -1
		}
	}
	for d := 0; d < n; d++ {
		for u := 0; u < n; u++ {
			if u == d {
				continue
			}
			out[u][d] = g.addPort(u, fmt.Sprintf("n%d.sub%d", u, d))
			// The buffer this port feeds sits at the next node
			// toward d.
			next := u + 1
			if d < u {
				next = u - 1
			}
			if next == d {
				// Destination-side buffers are built once per
				// side, below.
				continue
			}
			if in[next][d] < 0 {
				in[next][d] = g.addBuf(next, fmt.Sprintf("n%d.sub%d.in", next, d), DPSVCs, true, false)
			}
		}
	}
	// Destination-side buffers: one per side that has any upstream node.
	for d := 0; d < n; d++ {
		if d > 0 {
			inAtDest[d][0] = g.addBuf(d, fmt.Sprintf("n%d.sub%d.inN", d, d), DPSVCs, true, false)
		} else {
			inAtDest[d][0] = -1
		}
		if d < n-1 {
			inAtDest[d][1] = g.addBuf(d, fmt.Sprintf("n%d.sub%d.inS", d, d), DPSVCs, true, false)
		} else {
			inAtDest[d][1] = -1
		}
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			var legs []Leg
			if s != d {
				step := 1
				if d < s {
					step = -1
				}
				for u := s; u != d; u += step {
					next := u + step
					var buf BufID
					if next == d {
						side := 0
						if step < 0 {
							side = 1
						}
						buf = inAtDest[d][side]
					} else {
						buf = in[next][d]
					}
					rd := DPSIntermediateDelay
					intermediate := true
					if u == s {
						rd = MeshRouterDelay
						intermediate = false
					}
					legs = append(legs, Leg{
						Node:         u,
						Out:          out[u][d],
						In:           buf,
						WireDelay:    noc.WireDelay,
						RouterDelay:  rd,
						Intermediate: intermediate,
						HopWeight:    1,
					})
				}
			}
			legs = append(legs, g.ejectionLeg(d))
			g.paths[s][d][0] = legs
		}
	}
}
