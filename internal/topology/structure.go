package topology

// Structure is the physical description of one shared-region router, from
// which the area model (Figure 3) and energy model (Figure 7) are derived.
// All counts are per router at one column node.
//
// Crossbar geometry follows Section 3.2 and Figure 2: every router has a
// terminal input, two row-input switch ports (the seven MECS row channels
// share crossbar ports four/three to a side), and east/west/terminal
// outputs; the column-facing ports differ per topology:
//
//   - mesh xK: 2K column inputs and 2K column outputs on the crossbar —
//     5x5 for x1 and 11x11 for x4, the spans the paper quotes;
//   - MECS: all column inputs from a direction share one switch port, so
//     the crossbar stays 5x5, but the input lines that feed it run from
//     buffers spread along the express channels (the long wires that make
//     the MECS switch stage energy-hungry);
//   - DPS: intermediate traffic bypasses the crossbar through 2:1 muxes;
//     the crossbar carries injections (terminal + row ports) into one
//     output per subnet plus the ejection side, giving few inputs but many
//     outputs.
type Structure struct {
	Kind Kind

	// Column-facing input buffering.
	ColInPorts  int // network input ports facing the column
	ColVCsPerIn int // VCs per column input port
	FlitsPerVC  int
	FlitBytes   int
	// Row-facing input buffering, identical across topologies (the
	// dotted line in Figure 3).
	RowInPorts  int
	RowVCsPerIn int

	// Crossbar geometry.
	XbarIn  int
	XbarOut int
	// XbarInputLineTiles is the average wire length, in tile spans, from
	// an input buffer to the crossbar. ~0 for compact routers; several
	// tiles for MECS, whose drop-off buffers sit along the channel.
	XbarInputLineTiles float64

	// Flow state: PVC keeps a bandwidth counter per flow per output
	// port (DPS scales tables with its larger output-port count).
	FlowTables      int
	FlowTableFlows  int
	FlowCounterBits int
}

// Flow-state sizing: a PVC bandwidth counter must span a frame's worth of
// flits (50K cycles at 1 flit/cycle needs 16 bits) plus the fixed-point
// rate weight.
const (
	flowCounterBits = 24
	rowVCsPerInput  = 4
)

// StructureOf returns the physical router description of a topology, for a
// column of the given node count and flow population.
func StructureOf(kind Kind, nodes, flows int) Structure {
	s := Structure{
		Kind:            kind,
		FlitsPerVC:      4,
		FlitBytes:       16,
		RowInPorts:      RowInputsPerNode,
		RowVCsPerIn:     rowVCsPerInput,
		FlowTableFlows:  flows,
		FlowCounterBits: flowCounterBits,
	}
	switch kind {
	case MeshX1, MeshX2, MeshX4:
		k := kind.Replication()
		s.ColInPorts = 2 * k
		s.ColVCsPerIn = MeshVCs
		// Crossbar: 2K column in + 2 row switch ports + terminal in;
		// 2K column out + east/west/terminal out.
		s.XbarIn = 2*k + 3
		s.XbarOut = 2*k + 3
		s.XbarInputLineTiles = 0.25
	case MECS:
		// One input buffer per other node in the column; inputs from
		// a direction share a crossbar port.
		s.ColInPorts = nodes - 1
		s.ColVCsPerIn = MECSVCs
		s.XbarIn = 5
		s.XbarOut = 5
		// Drop-off buffers sit along the express channel span; the
		// average feed line is about half the column radius.
		s.XbarInputLineTiles = float64(nodes) / 2.0
	case DPS:
		// One buffer per through subnet plus the two destination-side
		// buffers of the node's own subnet.
		s.ColInPorts = nodes
		s.ColVCsPerIn = DPSVCs
		// Crossbar inputs: terminal + 2 row ports + the 2 own-subnet
		// buffers on the ejection side; outputs: one per subnet plus
		// east/west/terminal.
		s.XbarIn = 5
		s.XbarOut = (nodes - 1) + 3
		s.XbarInputLineTiles = 0.25
	}
	// One flow table per crossbar output port (PVC tracks bandwidth per
	// output; Section 3.2 notes DPS scales tables with its output count).
	s.FlowTables = s.XbarOut
	return s
}

// ColBufferBits returns the column-facing input buffer capacity in bits.
func (s Structure) ColBufferBits() int {
	return s.ColInPorts * s.ColVCsPerIn * s.FlitsPerVC * s.FlitBytes * 8
}

// RowBufferBits returns the row-facing input buffer capacity in bits
// (identical across topologies).
func (s Structure) RowBufferBits() int {
	return s.RowInPorts * s.RowVCsPerIn * s.FlitsPerVC * s.FlitBytes * 8
}

// FlowStateBits returns the flow-state storage in bits.
func (s Structure) FlowStateBits() int {
	return s.FlowTables * s.FlowTableFlows * s.FlowCounterBits
}
