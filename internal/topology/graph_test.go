package topology

import (
	"testing"
	"testing/quick"

	"tanoq/internal/noc"
)

func allGraphs(t *testing.T, nodes int) map[Kind]*Graph {
	t.Helper()
	gs := make(map[Kind]*Graph)
	for _, k := range Kinds() {
		gs[k] = NewGraph(k, nodes)
	}
	return gs
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		MeshX1: "mesh_x1", MeshX2: "mesh_x2", MeshX4: "mesh_x4",
		MECS: "mecs", DPS: "dps",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(k), k, s)
		}
	}
}

func TestNumPortsMatchesBuiltGraphs(t *testing.T) {
	for _, nodes := range []int{2, 3, 4, 8} {
		for k, g := range allGraphs(t, nodes) {
			if got, want := NumPorts(k, nodes), len(g.Ports); got != want {
				t.Errorf("NumPorts(%v, %d) = %d, graph has %d ports", k, nodes, got, want)
			}
		}
	}
	if NumPorts(MeshX1, 1) != 0 {
		t.Error("NumPorts must return 0 for configurations NewGraph rejects")
	}
}

func TestReplication(t *testing.T) {
	if MeshX1.Replication() != 1 || MeshX2.Replication() != 2 || MeshX4.Replication() != 4 {
		t.Error("mesh replication degrees wrong")
	}
	if MECS.Replication() != 1 || DPS.Replication() != 1 {
		t.Error("MECS/DPS must be unreplicated")
	}
}

func TestBisectionEquality(t *testing.T) {
	// Section 4: MECS, DPS and mesh x4 have equal bisection bandwidth;
	// mesh x1 and x2 have less.
	n := ColumnNodes
	b4 := MeshX4.BisectionChannels(n)
	if MECS.BisectionChannels(n) != b4 || DPS.BisectionChannels(n) != b4 {
		t.Errorf("bisection mismatch: mecs=%d dps=%d mesh_x4=%d",
			MECS.BisectionChannels(n), DPS.BisectionChannels(n), b4)
	}
	if MeshX1.BisectionChannels(n) >= b4 || MeshX2.BisectionChannels(n) >= b4 {
		t.Error("mesh x1/x2 should have less bisection bandwidth than mesh x4")
	}
}

func TestPathsTerminateAtDestination(t *testing.T) {
	for kind, g := range allGraphs(t, ColumnNodes) {
		for s := 0; s < g.Nodes; s++ {
			for d := 0; d < g.Nodes; d++ {
				for r := 0; r < g.NumReplicas(); r++ {
					legs := g.Path(noc.NodeID(s), noc.NodeID(d), r)
					if len(legs) == 0 {
						t.Fatalf("%v: empty path %d->%d", kind, s, d)
					}
					last := legs[len(legs)-1]
					if !last.Final {
						t.Errorf("%v: path %d->%d does not end with ejection", kind, s, d)
					}
					if last.Node != d {
						t.Errorf("%v: path %d->%d ejects at node %d", kind, s, d, last.Node)
					}
					if last.Out != g.TerminalPort(noc.NodeID(d)) || last.In != g.EjectionBuf(noc.NodeID(d)) {
						t.Errorf("%v: path %d->%d ejection leg misses terminal resources", kind, s, d)
					}
				}
			}
		}
	}
}

func TestPathsStartAtSource(t *testing.T) {
	for kind, g := range allGraphs(t, ColumnNodes) {
		for s := 0; s < g.Nodes; s++ {
			for d := 0; d < g.Nodes; d++ {
				legs := g.Path(noc.NodeID(s), noc.NodeID(d), 0)
				if legs[0].Node != s {
					t.Errorf("%v: path %d->%d starts at node %d", kind, s, d, legs[0].Node)
				}
			}
		}
	}
}

func TestPathLegsAreContiguous(t *testing.T) {
	// Each leg's downstream buffer must live at the node where the next
	// leg arbitrates.
	for kind, g := range allGraphs(t, ColumnNodes) {
		for s := 0; s < g.Nodes; s++ {
			for d := 0; d < g.Nodes; d++ {
				for r := 0; r < g.NumReplicas(); r++ {
					legs := g.Path(noc.NodeID(s), noc.NodeID(d), r)
					for i := 0; i+1 < len(legs); i++ {
						bufNode := g.Bufs[legs[i].In].Node
						if bufNode != legs[i+1].Node {
							t.Fatalf("%v %d->%d: leg %d lands at node %d but leg %d arbitrates at %d",
								kind, s, d, i, bufNode, i+1, legs[i+1].Node)
						}
						if g.Ports[legs[i].Out].Node != legs[i].Node {
							t.Fatalf("%v %d->%d: leg %d uses port of node %d",
								kind, s, d, i, g.Ports[legs[i].Out].Node)
						}
					}
				}
			}
		}
	}
}

func TestPathHopWeightEqualsDistance(t *testing.T) {
	// Normalized hop accounting: total hop weight of any path equals the
	// mesh-equivalent distance, regardless of topology (Section 5.3).
	for kind, g := range allGraphs(t, ColumnNodes) {
		for s := 0; s < g.Nodes; s++ {
			for d := 0; d < g.Nodes; d++ {
				legs := g.Path(noc.NodeID(s), noc.NodeID(d), 0)
				total := 0
				for _, l := range legs {
					total += l.HopWeight
				}
				if want := Distance(noc.NodeID(s), noc.NodeID(d)); total != want {
					t.Errorf("%v: %d->%d hop weight %d, want %d", kind, s, d, total, want)
				}
			}
		}
	}
}

// unloadedLatency computes the zero-load header+tail latency of a path for
// a packet of the given size, mirroring the engine's timing model.
func unloadedLatency(legs []Leg, size int) int {
	t := 0
	for _, l := range legs {
		t += l.RouterDelay + l.WireDelay
	}
	return t + size - 1
}

func TestZeroLoadLatencyShape(t *testing.T) {
	// The paper's latency relationships at zero load (Section 5.2):
	// mesh 3d+2, MECS d+6, DPS 2d+3 for a single-flit packet at
	// distance d.
	gm := NewGraph(MeshX1, ColumnNodes)
	ge := NewGraph(MECS, ColumnNodes)
	gd := NewGraph(DPS, ColumnNodes)
	for d := 1; d < ColumnNodes; d++ {
		mesh := unloadedLatency(gm.Path(0, noc.NodeID(d), 0), 1)
		mecs := unloadedLatency(ge.Path(0, noc.NodeID(d), 0), 1)
		dps := unloadedLatency(gd.Path(0, noc.NodeID(d), 0), 1)
		if mesh != 3*d+2 {
			t.Errorf("mesh latency at d=%d: %d, want %d", d, mesh, 3*d+2)
		}
		if mecs != d+6 {
			t.Errorf("MECS latency at d=%d: %d, want %d", d, mecs, d+6)
		}
		if dps != 2*d+3 {
			t.Errorf("DPS latency at d=%d: %d, want %d", d, dps, 2*d+3)
		}
	}
	// Crossover: short transfers favour DPS, long transfers favour MECS.
	if unloadedLatency(gd.Path(0, 1, 0), 1) >= unloadedLatency(ge.Path(0, 1, 0), 1) {
		t.Error("DPS should beat MECS at distance 1")
	}
	if unloadedLatency(ge.Path(0, 7, 0), 1) >= unloadedLatency(gd.Path(0, 7, 0), 1) {
		t.Error("MECS should beat DPS at distance 7")
	}
}

func TestMECSPathsAreSingleExpressLeg(t *testing.T) {
	g := NewGraph(MECS, ColumnNodes)
	for s := 0; s < g.Nodes; s++ {
		for d := 0; d < g.Nodes; d++ {
			legs := g.Path(noc.NodeID(s), noc.NodeID(d), 0)
			wantLegs := 2
			if s == d {
				wantLegs = 1
			}
			if len(legs) != wantLegs {
				t.Fatalf("MECS %d->%d has %d legs, want %d", s, d, len(legs), wantLegs)
			}
			if s != d && legs[0].WireDelay != Distance(noc.NodeID(s), noc.NodeID(d)) {
				t.Errorf("MECS %d->%d wire delay %d", s, d, legs[0].WireDelay)
			}
		}
	}
}

func TestDPSIntermediateLegsAreMuxHops(t *testing.T) {
	g := NewGraph(DPS, ColumnNodes)
	legs := g.Path(0, 7, 0)
	if len(legs) != 8 { // 7 transfer legs + ejection
		t.Fatalf("DPS 0->7 has %d legs, want 8", len(legs))
	}
	if legs[0].Intermediate || legs[0].RouterDelay != MeshRouterDelay {
		t.Error("DPS source leg must be a full 2-stage traversal")
	}
	for i := 1; i < 7; i++ {
		if !legs[i].Intermediate || legs[i].RouterDelay != DPSIntermediateDelay {
			t.Errorf("DPS leg %d: intermediate=%v delay=%d", i, legs[i].Intermediate, legs[i].RouterDelay)
		}
	}
	if legs[7].Intermediate || !legs[7].Final {
		t.Error("DPS ejection leg malformed")
	}
}

func TestDPSSubnetsShareNoTransferResources(t *testing.T) {
	// Packets to different destinations must never contend: subnets are
	// physically disjoint (ejection resources excluded — those belong to
	// a single destination anyway).
	g := NewGraph(DPS, ColumnNodes)
	portDest := make(map[PortID]int)
	bufDest := make(map[BufID]int)
	for s := 0; s < g.Nodes; s++ {
		for d := 0; d < g.Nodes; d++ {
			for _, l := range g.Path(noc.NodeID(s), noc.NodeID(d), 0) {
				if l.Final {
					continue
				}
				if prev, ok := portDest[l.Out]; ok && prev != d {
					t.Fatalf("port %d shared by subnets %d and %d", l.Out, prev, d)
				}
				portDest[l.Out] = d
				if prev, ok := bufDest[l.In]; ok && prev != d {
					t.Fatalf("buffer %d shared by subnets %d and %d", l.In, prev, d)
				}
				bufDest[l.In] = d
			}
		}
	}
}

func TestMeshReplicasAreDisjoint(t *testing.T) {
	g := NewGraph(MeshX4, ColumnNodes)
	for s := 0; s < g.Nodes; s++ {
		for d := 0; d < g.Nodes; d++ {
			if s == d {
				continue
			}
			seenPorts := make(map[PortID]int)
			for r := 0; r < 4; r++ {
				for _, l := range g.Path(noc.NodeID(s), noc.NodeID(d), r) {
					if l.Final {
						continue
					}
					if prev, ok := seenPorts[l.Out]; ok && prev != r {
						t.Fatalf("%d->%d: port %d on replicas %d and %d", s, d, l.Out, prev, r)
					}
					seenPorts[l.Out] = r
				}
			}
		}
	}
}

func TestVCProvisioningMatchesTable1(t *testing.T) {
	cases := map[Kind]int{MeshX1: 6, MeshX2: 6, MeshX4: 6, MECS: 14, DPS: 5}
	for kind, want := range cases {
		if got := kind.NetworkVCs(); got != want {
			t.Errorf("%v VCs = %d, want %d", kind, got, want)
		}
		g := NewGraph(kind, ColumnNodes)
		for _, b := range g.Bufs {
			if b.Ejection {
				if b.VCs != EjectionVCs {
					t.Errorf("%v: ejection buffer %s has %d VCs", kind, b.Name, b.VCs)
				}
				continue
			}
			if b.VCs != want {
				t.Errorf("%v: buffer %s has %d VCs, want %d", kind, b.Name, b.VCs, want)
			}
			if !b.Reserved {
				t.Errorf("%v: network buffer %s lacks a reserved VC", kind, b.Name)
			}
		}
	}
}

func TestReplicaSelectionWraps(t *testing.T) {
	g := NewGraph(MeshX2, ColumnNodes)
	// Replica indices beyond the replication degree must wrap, not panic.
	if got := g.Path(0, 3, 5); got == nil {
		t.Fatal("replica wrap returned nil path")
	}
	p5 := g.Path(0, 3, 5)
	p1 := g.Path(0, 3, 1)
	if &p5[0] != &p1[0] {
		t.Error("replica 5 should alias replica 1 for x2")
	}
}

func TestGraphPanicsOnTinyColumn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1-node column did not panic")
		}
	}()
	NewGraph(MeshX1, 1)
}

func TestDistanceProperty(t *testing.T) {
	check := func(a, b uint8) bool {
		x, y := noc.NodeID(a%8), noc.NodeID(b%8)
		d := Distance(x, y)
		return d >= 0 && d == Distance(y, x) && (d == 0) == (x == y)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPathsMonotoneTowardDestProperty(t *testing.T) {
	// Every transfer leg must strictly reduce the distance to the
	// destination (minimal DOR routing) for all topologies.
	gs := allGraphs(t, ColumnNodes)
	check := func(ks, ss, ds, rr uint8) bool {
		kind := Kinds()[int(ks)%len(Kinds())]
		g := gs[kind]
		s := noc.NodeID(ss % 8)
		d := noc.NodeID(ds % 8)
		legs := g.Path(s, d, int(rr))
		at := s
		for _, l := range legs {
			if l.Final {
				return at == d
			}
			next := noc.NodeID(g.Bufs[l.In].Node)
			if Distance(next, d) >= Distance(at, d) {
				return false
			}
			at = next
		}
		return false
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
