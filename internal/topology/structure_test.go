package topology

import "testing"

func TestCrossbarSpansMatchPaper(t *testing.T) {
	// Section 5.1 quotes crossbar spans explicitly: 5x5 for the baseline
	// mesh, 11x11 for the 4-way replicated mesh, one switch port per
	// direction for MECS.
	if s := StructureOf(MeshX1, ColumnNodes, 64); s.XbarIn != 5 || s.XbarOut != 5 {
		t.Errorf("mesh x1 crossbar %dx%d, want 5x5", s.XbarIn, s.XbarOut)
	}
	if s := StructureOf(MeshX4, ColumnNodes, 64); s.XbarIn != 11 || s.XbarOut != 11 {
		t.Errorf("mesh x4 crossbar %dx%d, want 11x11", s.XbarIn, s.XbarOut)
	}
	if s := StructureOf(MECS, ColumnNodes, 64); s.XbarIn != 5 || s.XbarOut != 5 {
		t.Errorf("MECS crossbar %dx%d, want 5x5", s.XbarIn, s.XbarOut)
	}
	d := StructureOf(DPS, ColumnNodes, 64)
	if d.XbarOut <= StructureOf(MECS, ColumnNodes, 64).XbarOut {
		t.Error("DPS must have more crossbar outputs than MECS (one per subnet)")
	}
}

func TestMECSHasLargestBuffers(t *testing.T) {
	// Figure 3: "the MECS topology has the largest buffer footprint".
	mecs := StructureOf(MECS, ColumnNodes, 64).ColBufferBits()
	for _, k := range Kinds() {
		if k == MECS {
			continue
		}
		if got := StructureOf(k, ColumnNodes, 64).ColBufferBits(); got >= mecs {
			t.Errorf("%v buffer bits %d >= MECS %d", k, got, mecs)
		}
	}
}

func TestDPSBuffersSmallerThanMECS(t *testing.T) {
	// Section 5.1: "DPS has smaller buffer requirements but a larger
	// crossbar".
	dps := StructureOf(DPS, ColumnNodes, 64)
	mecs := StructureOf(MECS, ColumnNodes, 64)
	if dps.ColBufferBits() >= mecs.ColBufferBits() {
		t.Error("DPS buffers should be smaller than MECS")
	}
	if dps.XbarOut <= mecs.XbarOut {
		t.Error("DPS crossbar should be larger than MECS")
	}
}

func TestRowBuffersIdenticalAcrossTopologies(t *testing.T) {
	// The dotted line in Figure 3: row-input buffering is identical for
	// every topology.
	want := StructureOf(MeshX1, ColumnNodes, 64).RowBufferBits()
	for _, k := range Kinds() {
		if got := StructureOf(k, ColumnNodes, 64).RowBufferBits(); got != want {
			t.Errorf("%v row buffer bits %d, want %d", k, got, want)
		}
	}
}

func TestFlowStateScalesWithFlows(t *testing.T) {
	small := StructureOf(MECS, ColumnNodes, 16).FlowStateBits()
	large := StructureOf(MECS, ColumnNodes, 64).FlowStateBits()
	if large != 4*small {
		t.Errorf("flow state bits %d -> %d, want 4x scaling", small, large)
	}
}

func TestDPSFlowTablesScaledUp(t *testing.T) {
	// Section 3.2: DPS flow tables scale with the per-subnet output
	// ports.
	dps := StructureOf(DPS, ColumnNodes, 64)
	mesh := StructureOf(MeshX1, ColumnNodes, 64)
	if dps.FlowTables <= mesh.FlowTables {
		t.Errorf("DPS flow tables %d should exceed mesh x1's %d", dps.FlowTables, mesh.FlowTables)
	}
}

func TestMECSInputLinesAreLong(t *testing.T) {
	// The root of MECS's energy-hungry switch stage (Section 5.4).
	mecs := StructureOf(MECS, ColumnNodes, 64)
	for _, k := range Kinds() {
		if k == MECS {
			continue
		}
		if s := StructureOf(k, ColumnNodes, 64); s.XbarInputLineTiles >= mecs.XbarInputLineTiles {
			t.Errorf("%v input lines (%v tiles) >= MECS (%v)", k, s.XbarInputLineTiles, mecs.XbarInputLineTiles)
		}
	}
}

func TestMeshReplicationGrowsStructure(t *testing.T) {
	x1 := StructureOf(MeshX1, ColumnNodes, 64)
	x2 := StructureOf(MeshX2, ColumnNodes, 64)
	x4 := StructureOf(MeshX4, ColumnNodes, 64)
	if !(x1.ColInPorts < x2.ColInPorts && x2.ColInPorts < x4.ColInPorts) {
		t.Error("column ports must grow with replication")
	}
	if !(x1.XbarIn*x1.XbarOut < x2.XbarIn*x2.XbarOut && x2.XbarIn*x2.XbarOut < x4.XbarIn*x4.XbarOut) {
		t.Error("crossbar area product must grow with replication")
	}
}
