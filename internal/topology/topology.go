// Package topology defines the five shared-region interconnects evaluated
// in the paper — mesh x1, mesh x2, mesh x4, MECS, and Destination
// Partitioned Subnets (DPS) — in two complementary forms:
//
//   - a behavioural Graph used by the cycle simulator: output ports,
//     input-buffer VC pools, and per-(source, destination) paths made of
//     Legs with the exact pipeline and wire latencies of Table 1;
//   - a Structure used by the physical models: port counts, buffer
//     capacities, crossbar geometry and flow-state provisioning, from
//     which router area (Figure 3) and per-hop energy (Figure 7) follow.
//
// The shared region is one column of the chip's 8x8 node grid. Each column
// node hosts one shared-resource terminal (e.g. a memory controller) plus
// seven MECS row inputs that deliver traffic from the node's row; all
// fifteen per-node injectors are QoS flows.
package topology

import (
	"fmt"
	"strings"
)

// Kind enumerates the evaluated shared-region topologies.
type Kind uint8

const (
	// MeshX1 is the baseline 1-ary mesh: one channel per direction.
	MeshX1 Kind = iota
	// MeshX2 replicates mesh channels twice, keeping one monolithic
	// crossbar per node (Section 3.2).
	MeshX2
	// MeshX4 replicates mesh channels four times, equalizing bisection
	// bandwidth with MECS and DPS.
	MeshX4
	// MECS uses point-to-multipoint express channels: each node drives
	// one channel per direction that drops off at every node it passes.
	MECS
	// DPS — Destination Partitioned Subnets, the paper's new topology —
	// dedicates a light-weight subnetwork to each destination node;
	// intermediate hops are 2:1 muxes with single-cycle traversal.
	DPS
)

// Kinds lists all evaluated topologies in the paper's presentation order.
func Kinds() []Kind { return []Kind{MeshX1, MeshX2, MeshX4, MECS, DPS} }

// KindByName resolves a kind from its String name — the single
// name-to-enum mapping shared by scenario files and trace headers.
func KindByName(name string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("topology: unknown kind %q (want %s)", name, kindNames())
}

func kindNames() string {
	var names []string
	for _, k := range Kinds() {
		names = append(names, k.String())
	}
	return strings.Join(names, ", ")
}

func (k Kind) String() string {
	switch k {
	case MeshX1:
		return "mesh_x1"
	case MeshX2:
		return "mesh_x2"
	case MeshX4:
		return "mesh_x4"
	case MECS:
		return "mecs"
	case DPS:
		return "dps"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Replication is the channel replication degree (mesh xK has K parallel
// channels per direction; MECS and DPS are unreplicated).
func (k Kind) Replication() int {
	switch k {
	case MeshX2:
		return 2
	case MeshX4:
		return 4
	default:
		return 1
	}
}

// Table 1 provisioning constants.
const (
	// ColumnNodes is the number of nodes in the shared-region column of
	// the 8x8 grid.
	ColumnNodes = 8
	// RowInputsPerNode is the number of MECS row channels feeding each
	// column node (seven other nodes in the row).
	RowInputsPerNode = 7
	// InjectorsPerNode counts the QoS flows sourced at each column node:
	// the shared-resource terminal plus the seven row inputs.
	InjectorsPerNode = 1 + RowInputsPerNode
	// MeshVCs, MECSVCs and DPSVCs are the virtual channels per network
	// input port of each topology, sized to cover round-trip credit
	// latency (Table 1).
	MeshVCs = 6
	MECSVCs = 14
	DPSVCs  = 5
	// InjectionVCs and EjectionVCs are common to all topologies.
	InjectionVCs = 1
	EjectionVCs  = 2
)

// Pipeline latencies in cycles (Table 1). Look-ahead routing and priority
// reuse remove the source route/priority-computation stage from the
// critical path, so it does not appear here.
const (
	// MeshRouterDelay is the 2-stage (VA, XT) mesh pipeline, also used
	// by DPS source and destination routers.
	MeshRouterDelay = 2
	// MECSRouterDelay is the 3-stage (VA-local, VA-global, XT) MECS
	// pipeline: the large port and VC count costs an extra arbitration
	// cycle.
	MECSRouterDelay = 3
	// DPSIntermediateDelay is the single-cycle traversal of a DPS
	// intermediate hop: a 2:1 mux with no crossbar, no routing and no
	// flow-state access.
	DPSIntermediateDelay = 1
)

// RouterDelay returns the pipeline depth of a router traversal of the given
// kind of hop.
func (k Kind) RouterDelay(intermediate bool) int {
	switch k {
	case MECS:
		return MECSRouterDelay
	case DPS:
		if intermediate {
			return DPSIntermediateDelay
		}
		return MeshRouterDelay
	default:
		return MeshRouterDelay
	}
}

// NetworkVCs returns the per-network-input-port VC count of the topology.
func (k Kind) NetworkVCs() int {
	switch k {
	case MECS:
		return MECSVCs
	case DPS:
		return DPSVCs
	default:
		return MeshVCs
	}
}

// BisectionChannels returns the number of 16-byte channels crossing the
// column's bisection in one direction. MECS, DPS and mesh x4 are equal by
// construction; mesh x1 and x2 trade bandwidth for router cost.
func (k Kind) BisectionChannels(nodes int) int {
	switch k {
	case MECS, DPS:
		// One channel per node on each side of the cut reaches across
		// it (an express channel for MECS, a destination subnet for
		// DPS).
		return nodes / 2
	default:
		return k.Replication()
	}
}
