package stats

import (
	"sort"
	"testing"
	"testing/quick"

	"tanoq/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 100 {
		t.Fatalf("max %d", h.Max())
	}
	if got := h.Percentile(100); got != 100 {
		t.Fatalf("p100 = %d", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative observation not clamped")
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Log buckets bound relative error by 2x within a bucket; with
	// interpolation the estimate should land within the bucket of the
	// exact percentile.
	var h Histogram
	values := []int64{3, 7, 12, 12, 20, 45, 80, 200, 500, 1000}
	for _, v := range values {
		h.Observe(v)
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{10, 50, 90} {
		exact := sorted[int(p/100*float64(len(sorted)-1))]
		got := h.Percentile(p)
		if got < exact/2 || got > exact*2+2 {
			t.Errorf("p%.0f = %d, exact %d (outside 2x bucket bound)", p, got, exact)
		}
	}
}

func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	var h Histogram
	r := uint64(12345)
	next := func() int64 {
		r = r*6364136223846793005 + 1442695040888963407
		return int64(r >> 40)
	}
	for i := 0; i < 5000; i++ {
		h.Observe(next())
	}
	check := func(a, b uint8) bool {
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return h.Percentile(pa) <= h.Percentile(pb)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i))
	}
	if got := h.Percentile(-5); got < 0 {
		t.Errorf("p<0 = %d", got)
	}
	if got := h.Percentile(200); got != h.Max() {
		t.Errorf("p>100 = %d, want max %d", got, h.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCollectorLatencyPercentiles(t *testing.T) {
	c := NewCollector(2)
	for i := 1; i <= 1000; i++ {
		c.Delivered(0, 1, int64(i), sim.Cycle(i))
	}
	p50 := c.Latencies.Percentile(50)
	p99 := c.Latencies.Percentile(99)
	if p50 < 250 || p50 > 1000 {
		t.Errorf("p50 = %d for uniform 1..1000", p50)
	}
	if p99 < p50 {
		t.Errorf("p99 %d < p50 %d", p99, p50)
	}
	c.Reset(0)
	if c.Latencies.Count() != 0 {
		t.Fatal("Reset must clear the latency histogram")
	}
}

func TestBucketOfBoundaries(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1 << 20: 20}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
	// Saturates instead of overflowing.
	if got := bucketOf(1 << 62); got != 47 {
		t.Errorf("bucketOf(2^62) = %d, want last bucket", got)
	}
}
