package stats

// Histogram is a log₂-bucketed histogram for latency distributions: cheap
// to update per delivery, and precise enough for the tail percentiles a
// QoS evaluation cares about (each bucket spans a factor of two; the
// percentile estimate interpolates linearly within a bucket).
type Histogram struct {
	// buckets[i] counts observations v with 2^i <= v < 2^(i+1);
	// buckets[0] also absorbs v <= 1.
	buckets [48]int64
	count   int64
	max     int64
}

// Observe records one sample (negative samples are clamped to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.count++
	if v > h.max {
		h.max = v
	}
}

func bucketOf(v int64) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	if b >= len(Histogram{}.buckets) {
		b = len(Histogram{}.buckets) - 1
	}
	return b
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the largest sample observed.
func (h *Histogram) Max() int64 { return h.max }

// Percentile estimates the p-th percentile (p in [0,100]) by linear
// interpolation within the containing power-of-two bucket. Returns 0 for
// an empty histogram.
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		p = 0
	}
	if p >= 100 {
		return h.max
	}
	target := p / 100 * float64(h.count)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := int64(1) << uint(i)
			if i == 0 {
				lo = 0
			}
			hi := int64(1) << uint(i+1)
			if hi > h.max {
				hi = h.max + 1
			}
			frac := (target - cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	return h.max
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	*h = Histogram{}
}
