package stats

// RoundTrip accumulates closed-loop transaction statistics: per-client
// completed request–reply round trips and their latencies, measured from
// request generation at the client to reply delivery back at it. The
// per-client completion counts are the closed-loop analogue of Table 2's
// per-flow throughput — feed PerClient into Summarize for the same
// min/max/stddev dispersion report — and the histogram serves the tail
// percentiles of the round-trip distribution.
//
// Like the Collector's counters, observations are charged by the caller
// only inside the measurement window; all state is fixed-size after
// construction, so observing is allocation-free.
type RoundTrip struct {
	// Completed and RTTSum are per-client: completed round trips and
	// their summed latencies in cycles.
	Completed []int64
	RTTSum    []int64
	// Latencies is the round-trip latency distribution across all
	// clients.
	Latencies Histogram
}

// NewRoundTrip creates a collector for the given client population.
func NewRoundTrip(clients int) *RoundTrip {
	return &RoundTrip{
		Completed: make([]int64, clients),
		RTTSum:    make([]int64, clients),
	}
}

// Observe records one completed round trip of the given client.
func (r *RoundTrip) Observe(client int, rtt int64) {
	r.Completed[client]++
	r.RTTSum[client] += rtt
	r.Latencies.Observe(rtt)
}

// TotalCompleted returns the number of round trips across all clients.
func (r *RoundTrip) TotalCompleted() int64 {
	var total int64
	for _, c := range r.Completed {
		total += c
	}
	return total
}

// MeanRTT returns the mean round-trip latency in cycles.
func (r *RoundTrip) MeanRTT() float64 {
	var lat, n int64
	for i, c := range r.Completed {
		n += c
		lat += r.RTTSum[i]
	}
	if n == 0 {
		return 0
	}
	return float64(lat) / float64(n)
}

// PerClient returns the per-client completion counts as floats — the
// Summarize input for Table-2-style fairness dispersion over clients.
func (r *RoundTrip) PerClient() []float64 {
	out := make([]float64, len(r.Completed))
	for i, c := range r.Completed {
		out[i] = float64(c)
	}
	return out
}
