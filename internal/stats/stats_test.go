package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCollectorDeliveryAccounting(t *testing.T) {
	c := NewCollector(4)
	c.Delivered(1, 4, 20, 100)
	c.Delivered(1, 1, 10, 120)
	c.Delivered(3, 4, 30, 90)
	if c.DeliveredPackets[1] != 2 || c.DeliveredFlits[1] != 5 {
		t.Errorf("flow 1: %d pkts %d flits", c.DeliveredPackets[1], c.DeliveredFlits[1])
	}
	if got := c.MeanLatency(); !almostEq(got, 20, 1e-9) {
		t.Errorf("mean latency %v, want 20", got)
	}
	if got := c.MeanLatencyOfFlow(1); !almostEq(got, 15, 1e-9) {
		t.Errorf("flow 1 latency %v, want 15", got)
	}
	if c.LastDelivery != 120 {
		t.Errorf("last delivery %d, want 120", c.LastDelivery)
	}
	if c.MaxLatency != 30 {
		t.Errorf("max latency %d, want 30", c.MaxLatency)
	}
}

func TestCollectorPauseGatesCounters(t *testing.T) {
	c := NewCollector(2)
	c.Pause()
	c.Delivered(0, 4, 10, 5)
	c.Injected(4)
	c.Preempted(3, true)
	c.HopTraversed(2)
	if c.TotalDelivered != 0 || c.InjectedPackets != 0 || c.PreemptionEvents != 0 || c.TotalHops != 0 {
		t.Fatal("paused collector recorded events")
	}
	c.Reset(50)
	if !c.Measuring() || c.Start() != 50 {
		t.Fatal("Reset did not restart measurement")
	}
	c.Delivered(0, 4, 10, 60)
	if c.TotalDelivered != 1 {
		t.Fatal("post-reset delivery not recorded")
	}
}

func TestCollectorPreemptionRates(t *testing.T) {
	c := NewCollector(2)
	for i := 0; i < 90; i++ {
		c.Delivered(0, 1, 5, 10)
	}
	for i := 0; i < 10; i++ {
		c.Preempted(2, i < 5) // 10 events, 5 unique packets
	}
	for i := 0; i < 180; i++ {
		c.HopTraversed(1)
	}
	if got := c.PreemptionPacketRate(); !almostEq(got, 100*10.0/90.0, 1e-9) {
		t.Errorf("packet preemption rate %v", got)
	}
	if got := c.WastedHopRate(); !almostEq(got, 100*20.0/180.0, 1e-9) {
		t.Errorf("wasted hop rate %v", got)
	}
	if c.PreemptedUnique != 5 {
		t.Errorf("unique preempted %d, want 5", c.PreemptedUnique)
	}
	if c.Retransmits != 10 {
		t.Errorf("retransmits %d, want 10", c.Retransmits)
	}
}

func TestCollectorRatesWithNoTraffic(t *testing.T) {
	c := NewCollector(1)
	if c.MeanLatency() != 0 || c.PreemptionPacketRate() != 0 || c.WastedHopRate() != 0 {
		t.Error("empty collector should report zero rates")
	}
	if c.AcceptedFlitRate(0) != 0 {
		t.Error("zero-length window should report zero rate")
	}
}

func TestAcceptedFlitRate(t *testing.T) {
	c := NewCollector(2)
	c.Reset(100)
	c.Delivered(0, 3, 1, 150)
	c.Delivered(1, 2, 1, 200)
	if got := c.AcceptedFlitRate(200); !almostEq(got, 5.0/100.0, 1e-9) {
		t.Errorf("accepted rate %v, want 0.05", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4180, 4200, 4220})
	if !almostEq(s.Mean, 4200, 1e-9) {
		t.Errorf("mean %v", s.Mean)
	}
	if s.Min != 4180 || s.Max != 4220 {
		t.Errorf("extrema %v %v", s.Min, s.Max)
	}
	want := math.Sqrt((400 + 0 + 400) / 3.0)
	if !almostEq(s.StdDev, want, 1e-9) {
		t.Errorf("stddev %v, want %v", s.StdDev, want)
	}
	if !almostEq(s.MinPctOfMean(), 100*4180.0/4200.0, 1e-9) {
		t.Errorf("min%% %v", s.MinPctOfMean())
	}
	if !almostEq(s.MaxDeviationPct(), 100*20.0/4200.0, 1e-9) {
		t.Errorf("max dev %v", s.MaxDeviationPct())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Mean != 0 || s.MinPctOfMean() != 0 || s.StdDevPctOfMean() != 0 {
		t.Error("empty summary should be all zero")
	}
}

func TestMaxMinUnderload(t *testing.T) {
	// Total demand below capacity: everyone gets their demand.
	shares := MaxMinShares([]float64{0.1, 0.2, 0.3}, 1.0)
	want := []float64{0.1, 0.2, 0.3}
	for i := range want {
		if !almostEq(shares[i], want[i], 1e-12) {
			t.Errorf("share[%d] = %v, want %v", i, shares[i], want[i])
		}
	}
}

func TestMaxMinOverload(t *testing.T) {
	// The paper's Workload 1 shape: capacity 1, demands around 1/8 each;
	// sources under the fair level keep their demand, the rest split.
	demands := []float64{0.05, 0.09, 0.12, 0.14, 0.16, 0.18, 0.19, 0.20}
	shares := MaxMinShares(demands, 1.0)
	sum := 0.0
	for i, s := range shares {
		if s > demands[i]+1e-12 {
			t.Errorf("share[%d]=%v exceeds demand %v", i, s, demands[i])
		}
		sum += s
	}
	if !almostEq(sum, 1.0, 1e-9) {
		t.Errorf("shares sum %v, want 1.0", sum)
	}
	// Source 0 demands 5% < fair level: fully granted.
	if !almostEq(shares[0], 0.05, 1e-12) {
		t.Errorf("low-demand source share %v, want its demand", shares[0])
	}
	// The top demands must all be clipped to a common level.
	if !almostEq(shares[6], shares[7], 1e-12) {
		t.Errorf("clipped sources unequal: %v vs %v", shares[6], shares[7])
	}
	if shares[7] >= 0.20 {
		t.Errorf("top source uncapped: %v", shares[7])
	}
}

func TestMaxMinEqualDemands(t *testing.T) {
	shares := MaxMinShares([]float64{0.5, 0.5, 0.5, 0.5}, 1.0)
	for i, s := range shares {
		if !almostEq(s, 0.25, 1e-12) {
			t.Errorf("share[%d]=%v, want 0.25", i, s)
		}
	}
}

func TestMaxMinDegenerate(t *testing.T) {
	if s := MaxMinShares(nil, 1.0); len(s) != 0 {
		t.Error("nil demands should yield empty shares")
	}
	s := MaxMinShares([]float64{0.5}, 0)
	if s[0] != 0 {
		t.Error("zero capacity should grant nothing")
	}
	s = MaxMinShares([]float64{-0.5, 0.3}, 1.0)
	if s[0] != 0 || !almostEq(s[1], 0.3, 1e-12) {
		t.Errorf("negative demand handling: %v", s)
	}
}

func TestMaxMinProperties(t *testing.T) {
	check := func(raw [6]uint8, capRaw uint8) bool {
		demands := make([]float64, len(raw))
		total := 0.0
		for i, v := range raw {
			demands[i] = float64(v) / 255.0
			total += demands[i]
		}
		capacity := float64(capRaw)/255.0 + 0.01
		shares := MaxMinShares(demands, capacity)
		sum := 0.0
		for i, s := range shares {
			if s < -1e-12 || s > demands[i]+1e-9 {
				return false
			}
			sum += s
		}
		want := math.Min(capacity, total)
		return almostEq(sum, want, 1e-6)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMaxMinWaterFillLevelProperty(t *testing.T) {
	// Any source not fully granted must receive at least as much as
	// every other source's share (the defining max-min property).
	check := func(raw [5]uint8, capRaw uint8) bool {
		demands := make([]float64, len(raw))
		for i, v := range raw {
			demands[i] = float64(v)/255.0 + 0.001
		}
		capacity := float64(capRaw)/255.0 + 0.01
		shares := MaxMinShares(demands, capacity)
		for i := range shares {
			if almostEq(shares[i], demands[i], 1e-9) {
				continue // fully granted
			}
			for j := range shares {
				if shares[j] > shares[i]+1e-6 && !almostEq(shares[j], demands[j], 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); !almostEq(got, 1.0, 1e-12) {
		t.Errorf("equal shares index %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("starved index %v, want 0.25", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Error("degenerate Jain index should be 0")
	}
}

func TestDeviationsPct(t *testing.T) {
	d := DeviationsPct([]float64{110, 90, 50}, []float64{100, 100, 0})
	if !almostEq(d[0], 10, 1e-12) || !almostEq(d[1], -10, 1e-12) || d[2] != 0 {
		t.Errorf("deviations %v", d)
	}
}

func TestMeanMinMax(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); !almostEq(got, 2, 1e-12) {
		t.Errorf("mean %v", got)
	}
	lo, hi := MinMax([]float64{3, -1, 2})
	if lo != -1 || hi != 3 {
		t.Errorf("minmax %v %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("empty minmax should be 0,0")
	}
}

func TestFlitsByFlowIsCopy(t *testing.T) {
	c := NewCollector(2)
	c.Delivered(0, 5, 1, 1)
	snap := c.FlitsByFlow()
	snap[0] = 999
	if c.DeliveredFlits[0] != 5 {
		t.Error("FlitsByFlow must return a copy")
	}
}
