package stats

import (
	"math"
	"sort"
)

// Summary holds the dispersion statistics Table 2 reports for per-flow
// throughput: mean, extrema (as fractions of the mean) and standard
// deviation.
type Summary struct {
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes dispersion statistics over per-flow values.
func Summarize(values []float64) Summary {
	var s Summary
	n := float64(len(values))
	if n == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, v := range values {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= n
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / n)
	return s
}

// MinPctOfMean returns the minimum as a percentage of the mean (Table 2's
// "min (% of mean)" column).
func (s Summary) MinPctOfMean() float64 {
	if s.Mean == 0 {
		return 0
	}
	return 100 * s.Min / s.Mean
}

// MaxPctOfMean returns the maximum as a percentage of the mean.
func (s Summary) MaxPctOfMean() float64 {
	if s.Mean == 0 {
		return 0
	}
	return 100 * s.Max / s.Mean
}

// StdDevPctOfMean returns the standard deviation as a percentage of the
// mean (the coefficient of variation).
func (s Summary) StdDevPctOfMean() float64 {
	if s.Mean == 0 {
		return 0
	}
	return 100 * s.StdDev / s.Mean
}

// MaxDeviationPct returns the largest absolute deviation of min or max
// from the mean, in percent — the paper's "maximum deviation from the
// mean" fairness headline.
func (s Summary) MaxDeviationPct() float64 {
	lo := math.Abs(100 - s.MinPctOfMean())
	hi := math.Abs(s.MaxPctOfMean() - 100)
	if lo > hi {
		return lo
	}
	return hi
}

// MaxMinShares computes the max-min fair allocation of capacity among
// sources with the given demands (Dally & Towles' standard definition,
// which the paper uses for the Workload 1/2 expectations): demands below
// the water-fill level are fully granted; the remaining capacity is split
// equally among the unsatisfied sources.
//
// Demands and capacity share a unit (e.g. flits/cycle). The result has
// one share per demand, shares[i] <= demands[i], and the shares sum to
// min(capacity, sum(demands)).
func MaxMinShares(demands []float64, capacity float64) []float64 {
	shares := make([]float64, len(demands))
	if capacity <= 0 || len(demands) == 0 {
		return shares
	}
	type src struct {
		idx    int
		demand float64
	}
	order := make([]src, 0, len(demands))
	total := 0.0
	for i, d := range demands {
		if d < 0 {
			d = 0
		}
		order = append(order, src{i, d})
		total += d
	}
	if total <= capacity {
		for i, d := range demands {
			if d > 0 {
				shares[i] = d
			}
		}
		return shares
	}
	sort.Slice(order, func(a, b int) bool { return order[a].demand < order[b].demand })
	remaining := capacity
	for k, s := range order {
		level := remaining / float64(len(order)-k)
		if s.demand <= level {
			shares[s.idx] = s.demand
			remaining -= s.demand
		} else {
			// Everyone left demands more than the level: split
			// evenly.
			for _, rest := range order[k:] {
				shares[rest.idx] = level
			}
			return shares
		}
	}
	return shares
}

// JainIndex computes Jain's fairness index over per-flow values: 1.0 is
// perfectly fair, 1/n is maximally unfair. Used by the no-QoS starvation
// demonstrations.
func JainIndex(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, sq float64
	for _, v := range values {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(values)) * sq)
}

// DeviationsPct returns, per source, the percentage deviation of measured
// from expected ((measured-expected)/expected × 100). Sources with zero
// expectation report zero deviation.
func DeviationsPct(measured, expected []float64) []float64 {
	out := make([]float64, len(measured))
	for i := range measured {
		if i < len(expected) && expected[i] > 0 {
			out[i] = 100 * (measured[i] - expected[i]) / expected[i]
		}
	}
	return out
}

// Mean returns the arithmetic mean of values (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// MinMax returns the extrema of values.
func MinMax(values []float64) (lo, hi float64) {
	if len(values) == 0 {
		return 0, 0
	}
	lo, hi = values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
