// Package stats provides the measurement machinery of the evaluation:
// per-flow throughput and latency collection with warmup-aware measurement
// windows, preemption accounting (events and normalized wasted hops), and
// the fairness mathematics the paper reports against — max-min fair
// allocations via water-filling, deviation from expectation, and summary
// dispersion statistics.
package stats

import (
	"tanoq/internal/noc"
	"tanoq/internal/sim"
)

// Collector accumulates simulation metrics. Counters are only charged
// while measuring, so a warmup phase can be excluded; resource-level
// bookkeeping (e.g. hop totals) follows the same gate.
type Collector struct {
	flows     int
	measuring bool
	start     sim.Cycle

	// Per-flow, measurement window only.
	DeliveredPackets []int64
	DeliveredFlits   []int64
	LatencySumByFlow []int64
	// RetriesByFlow counts timeout-driven end-to-end retransmissions
	// charged to each flow; DropsByFlow counts packets the flow abandoned
	// for good (retry budget exhausted, unroutable destination, or loss
	// with recovery disabled).
	RetriesByFlow []int64
	DropsByFlow   []int64

	// Aggregates, measurement window only.
	TotalDelivered   int64
	TotalLatency     int64
	InjectedPackets  int64
	InjectedFlits    int64
	PreemptionEvents int64
	PreemptedUnique  int64
	WastedHops       int64
	TotalHops        int64
	Retransmits      int64
	LastDelivery     sim.Cycle
	MaxLatency       int64
	// Fault-injection and end-to-end recovery aggregates: TotalRetries
	// and TotalDropped sum the per-flow counters above; FaultDrops counts
	// in-network transmission attempts killed by a fault (each such
	// attempt either retries or becomes a drop); RecoveredPackets and
	// RecoveryLatencySum track deliveries that needed at least one
	// timeout retransmission and their end-to-end latencies.
	TotalRetries       int64
	TotalDropped       int64
	FaultDrops         int64
	RecoveredPackets   int64
	RecoveryLatencySum int64

	// Latencies is the delivered-packet latency distribution, for tail
	// percentiles (p50/p99 of the load-latency curves).
	Latencies Histogram
}

// Totals is a plain-value snapshot of the collector's scalar counters —
// the slice of state a telemetry probe differences between sampling
// ticks. Returning it by value keeps the read allocation-free, and
// including the delivered-flit sum here (the collector tracks it only
// per flow) saves every consumer the same reduction.
type Totals struct {
	InjectedFlits    int64
	DeliveredFlits   int64
	DeliveredPackets int64
	Retransmits      int64
	Retries          int64
	Preemptions      int64
	Dropped          int64
	FaultDrops       int64
}

// Totals snapshots the scalar counters at this instant.
func (c *Collector) Totals() Totals {
	var df int64
	for _, f := range c.DeliveredFlits {
		df += f
	}
	return Totals{
		InjectedFlits:    c.InjectedFlits,
		DeliveredFlits:   df,
		DeliveredPackets: c.TotalDelivered,
		Retransmits:      c.Retransmits,
		Retries:          c.TotalRetries,
		Preemptions:      c.PreemptionEvents,
		Dropped:          c.TotalDropped,
		FaultDrops:       c.FaultDrops,
	}
}

// Sub returns the per-interval delta t−prev, field by field.
func (t Totals) Sub(prev Totals) Totals {
	return Totals{
		InjectedFlits:    t.InjectedFlits - prev.InjectedFlits,
		DeliveredFlits:   t.DeliveredFlits - prev.DeliveredFlits,
		DeliveredPackets: t.DeliveredPackets - prev.DeliveredPackets,
		Retransmits:      t.Retransmits - prev.Retransmits,
		Retries:          t.Retries - prev.Retries,
		Preemptions:      t.Preemptions - prev.Preemptions,
		Dropped:          t.Dropped - prev.Dropped,
		FaultDrops:       t.FaultDrops - prev.FaultDrops,
	}
}

// NewCollector creates a collector for the given flow population. It
// starts measuring immediately; call Reset after warmup to discard the
// transient.
func NewCollector(flows int) *Collector {
	c := &Collector{flows: flows, measuring: true}
	c.alloc()
	return c
}

func (c *Collector) alloc() {
	c.DeliveredPackets = make([]int64, c.flows)
	c.DeliveredFlits = make([]int64, c.flows)
	c.LatencySumByFlow = make([]int64, c.flows)
	c.RetriesByFlow = make([]int64, c.flows)
	c.DropsByFlow = make([]int64, c.flows)
}

// Flows returns the flow population size.
func (c *Collector) Flows() int { return c.flows }

// Reset clears all counters and marks the beginning of the measurement
// window at cycle now.
func (c *Collector) Reset(now sim.Cycle) {
	c.alloc()
	c.TotalDelivered, c.TotalLatency = 0, 0
	c.InjectedPackets, c.InjectedFlits = 0, 0
	c.PreemptionEvents, c.PreemptedUnique = 0, 0
	c.WastedHops, c.TotalHops = 0, 0
	c.Retransmits = 0
	c.LastDelivery = 0
	c.MaxLatency = 0
	c.TotalRetries, c.TotalDropped, c.FaultDrops = 0, 0, 0
	c.RecoveredPackets, c.RecoveryLatencySum = 0, 0
	c.Latencies.Reset()
	c.start = now
	c.measuring = true
}

// Pause suspends measurement (warmup/drain phases).
func (c *Collector) Pause() { c.measuring = false }

// Measuring reports whether counters are live.
func (c *Collector) Measuring() bool { return c.measuring }

// Start returns the beginning of the measurement window.
func (c *Collector) Start() sim.Cycle { return c.start }

// Injected records a packet entering the network.
func (c *Collector) Injected(flits int) {
	if !c.measuring {
		return
	}
	c.InjectedPackets++
	c.InjectedFlits += int64(flits)
}

// Delivered records a packet's arrival at its destination terminal.
func (c *Collector) Delivered(f noc.FlowID, flits int, latency int64, now sim.Cycle) {
	if !c.measuring {
		return
	}
	c.DeliveredPackets[f]++
	c.DeliveredFlits[f] += int64(flits)
	c.LatencySumByFlow[f] += latency
	c.TotalDelivered++
	c.TotalLatency += latency
	c.Latencies.Observe(latency)
	if latency > c.MaxLatency {
		c.MaxLatency = latency
	}
	if now > c.LastDelivery {
		c.LastDelivery = now
	}
}

// Preempted records one preemption event and the (mesh-normalized) hop
// traversals wasted by it. firstForPacket distinguishes packets' first
// preemption, for the unique-packet rate.
func (c *Collector) Preempted(wastedHops int, firstForPacket bool) {
	if !c.measuring {
		return
	}
	c.PreemptionEvents++
	c.Retransmits++
	c.WastedHops += int64(wastedHops)
	if firstForPacket {
		c.PreemptedUnique++
	}
}

// TimeoutRetry records one timeout-driven end-to-end retransmission
// charged to the owning flow.
func (c *Collector) TimeoutRetry(f noc.FlowID) {
	if !c.measuring {
		return
	}
	c.RetriesByFlow[f]++
	c.TotalRetries++
}

// Dropped records a packet abandoned for good: its retry budget ran out,
// its destination became unroutable, or it was lost with recovery disabled.
func (c *Collector) Dropped(f noc.FlowID) {
	if !c.measuring {
		return
	}
	c.DropsByFlow[f]++
	c.TotalDropped++
}

// FaultDropped records one in-network transmission attempt killed by a
// link fault or stall.
func (c *Collector) FaultDropped() {
	if !c.measuring {
		return
	}
	c.FaultDrops++
}

// Recovered records a delivery that needed at least one timeout
// retransmission, with its end-to-end latency (creation to delivery).
func (c *Collector) Recovered(latency int64) {
	if !c.measuring {
		return
	}
	c.RecoveredPackets++
	c.RecoveryLatencySum += latency
}

// HopTraversed records weight completed hop traversals (useful or not);
// the denominator of the wasted-hop rate.
func (c *Collector) HopTraversed(weight int) {
	if !c.measuring {
		return
	}
	c.TotalHops += int64(weight)
}

// MeanLatency returns the average delivered-packet latency in cycles.
func (c *Collector) MeanLatency() float64 {
	if c.TotalDelivered == 0 {
		return 0
	}
	return float64(c.TotalLatency) / float64(c.TotalDelivered)
}

// MeanLatencyOfFlow returns one flow's average latency.
func (c *Collector) MeanLatencyOfFlow(f noc.FlowID) float64 {
	if c.DeliveredPackets[f] == 0 {
		return 0
	}
	return float64(c.LatencySumByFlow[f]) / float64(c.DeliveredPackets[f])
}

// AcceptedFlitRate returns delivered flits per cycle over the window
// ending at cycle now.
func (c *Collector) AcceptedFlitRate(now sim.Cycle) float64 {
	d := now - c.start
	if d <= 0 {
		return 0
	}
	var total int64
	for _, v := range c.DeliveredFlits {
		total += v
	}
	return float64(total) / float64(d)
}

// PreemptionPacketRate returns preemption events as a percentage of
// delivered packets (Figure 5's "Packets" bar; a packet preempted twice
// counts twice, per Section 5.3).
func (c *Collector) PreemptionPacketRate() float64 {
	if c.TotalDelivered == 0 {
		return 0
	}
	return 100 * float64(c.PreemptionEvents) / float64(c.TotalDelivered)
}

// WastedHopRate returns wasted hop traversals as a percentage of all hop
// traversals (Figure 5's "Hops" bar).
func (c *Collector) WastedHopRate() float64 {
	if c.TotalHops == 0 {
		return 0
	}
	return 100 * float64(c.WastedHops) / float64(c.TotalHops)
}

// MeanRecoveryLatency returns the average end-to-end latency of packets
// that needed at least one timeout retransmission.
func (c *Collector) MeanRecoveryLatency() float64 {
	if c.RecoveredPackets == 0 {
		return 0
	}
	return float64(c.RecoveryLatencySum) / float64(c.RecoveredPackets)
}

// DeliveredFraction returns delivered packets over resolved packets
// (delivered plus dropped): the headline degradation metric. 1.0 when
// nothing was resolved.
func (c *Collector) DeliveredFraction() float64 {
	total := c.TotalDelivered + c.TotalDropped
	if total == 0 {
		return 1
	}
	return float64(c.TotalDelivered) / float64(total)
}

// FlitsByFlow returns a copy of the per-flow delivered flit counts.
func (c *Collector) FlitsByFlow() []int64 {
	out := make([]int64, len(c.DeliveredFlits))
	copy(out, c.DeliveredFlits)
	return out
}
