package physical

import (
	"testing"

	"tanoq/internal/topology"
)

func structOf(k topology.Kind) topology.Structure {
	return topology.StructureOf(k, topology.ColumnNodes, 64)
}

func areas() map[topology.Kind]AreaBreakdown {
	out := map[topology.Kind]AreaBreakdown{}
	for _, k := range topology.Kinds() {
		out[k] = RouterArea(structOf(k))
	}
	return out
}

func TestFig3AreaOrdering(t *testing.T) {
	a := areas()
	// "Mesh x1 is the most area-efficient topology"; "Mesh x4 ... has
	// the largest footprint".
	for _, k := range topology.Kinds() {
		if k == topology.MeshX1 {
			continue
		}
		if a[topology.MeshX1].Total() >= a[k].Total() {
			t.Errorf("mesh x1 (%.4f) not smaller than %v (%.4f)",
				a[topology.MeshX1].Total(), k, a[k].Total())
		}
		if k == topology.MeshX4 {
			continue
		}
		if a[topology.MeshX4].Total() <= a[k].Total() {
			t.Errorf("mesh x4 (%.4f) not larger than %v (%.4f)",
				a[topology.MeshX4].Total(), k, a[k].Total())
		}
	}
}

func TestFig3MeshX4CrossbarDominates(t *testing.T) {
	a := areas()
	// "mostly due to a crossbar that is roughly four times larger than
	// that in a baseline mesh" (5x5 vs 11x11 port spans).
	ratio := a[topology.MeshX4].Crossbar / a[topology.MeshX1].Crossbar
	if ratio < 3.5 || ratio > 6.0 {
		t.Errorf("x4/x1 crossbar ratio %.2f, want ~4-5", ratio)
	}
}

func TestFig3MECSBuffersLargestCrossbarCompact(t *testing.T) {
	a := areas()
	for _, k := range topology.Kinds() {
		if k == topology.MECS {
			continue
		}
		if a[k].ColBuffers >= a[topology.MECS].ColBuffers {
			t.Errorf("%v column buffers (%.4f) >= MECS (%.4f)", k, a[k].ColBuffers, a[topology.MECS].ColBuffers)
		}
	}
	if a[topology.MECS].Crossbar > a[topology.MeshX1].Crossbar {
		t.Error("MECS crossbar should be as compact as mesh x1's")
	}
}

func TestFig3DPSComparableToMECS(t *testing.T) {
	a := areas()
	// "DPS router's area overhead is comparable to that of MECS":
	// smaller buffers, larger crossbar, similar total (within ~35%).
	dps, mecs := a[topology.DPS], a[topology.MECS]
	if dps.ColBuffers >= mecs.ColBuffers {
		t.Error("DPS buffers should undercut MECS")
	}
	if dps.Crossbar <= mecs.Crossbar {
		t.Error("DPS crossbar should exceed MECS")
	}
	ratio := dps.Total() / mecs.Total()
	if ratio < 0.65 || ratio > 1.35 {
		t.Errorf("DPS/MECS total area ratio %.2f, want comparable", ratio)
	}
}

func TestFig3FlowStateIsMinorContributor(t *testing.T) {
	// "In all networks, PVC's per-flow state is not a significant
	// contributor to area overhead."
	for k, a := range areas() {
		if share := a.FlowState / a.Total(); share > 0.20 {
			t.Errorf("%v flow state is %.0f%% of router area", k, 100*share)
		}
	}
}

func TestFig3RowBuffersEqual(t *testing.T) {
	a := areas()
	want := a[topology.MeshX1].RowBuffers
	for k, v := range a {
		if v.RowBuffers != want {
			t.Errorf("%v row buffer area %.4f differs from %.4f", k, v.RowBuffers, want)
		}
	}
}

func TestFig3AbsoluteScale(t *testing.T) {
	// Figure 3's axis runs 0–0.14 mm²; routers must land in that decade.
	for k, a := range areas() {
		if tot := a.Total(); tot < 0.01 || tot > 0.2 {
			t.Errorf("%v router area %.4f mm² outside Figure 3's scale", k, tot)
		}
	}
}

func TestFig7MECSSwitchMostEnergyHungry(t *testing.T) {
	// "MECS has the most energy-hungry switch stage among the evaluated
	// topologies due to the long input lines feeding the crossbar."
	mecs := HopEnergy(structOf(topology.MECS), HopSource).Crossbar
	for _, k := range topology.Kinds() {
		if k == topology.MECS {
			continue
		}
		if got := HopEnergy(structOf(k), HopSource).Crossbar; got >= mecs {
			t.Errorf("%v switch energy %.2f >= MECS %.2f", k, got, mecs)
		}
	}
}

func TestFig7DPSIntermediateHopIsCheap(t *testing.T) {
	s := structOf(topology.DPS)
	inter := HopEnergy(s, HopIntermediate)
	src := HopEnergy(s, HopSource)
	if inter.FlowTable != 0 {
		t.Error("DPS intermediate hops must not touch flow state")
	}
	if inter.Crossbar >= src.Crossbar/2 {
		t.Error("DPS intermediate mux should be far cheaper than the source crossbar")
	}
	if inter.Total() >= src.Total()/2 {
		t.Errorf("DPS intermediate (%.2f) should be <half of source (%.2f)", inter.Total(), src.Total())
	}
}

func TestFig7ThreeHopShape(t *testing.T) {
	e := map[topology.Kind]float64{}
	for _, k := range topology.Kinds() {
		e[k] = RouteEnergy(structOf(k), 3).Total()
	}
	// Meshes are least efficient on 3-hop routes (four full traversals).
	if e[topology.DPS] >= e[topology.MeshX1] || e[topology.MECS] >= e[topology.MeshX1] {
		t.Errorf("3-hop: dps %.1f mecs %.1f should beat mesh x1 %.1f",
			e[topology.DPS], e[topology.MECS], e[topology.MeshX1])
	}
	// "DPS ... resulting in 17%% energy savings over mesh x1 and 33%%
	// over mesh x4" — hold the direction and rough magnitude.
	saveX1 := 1 - e[topology.DPS]/e[topology.MeshX1]
	saveX4 := 1 - e[topology.DPS]/e[topology.MeshX4]
	if saveX1 < 0.10 || saveX1 > 0.30 {
		t.Errorf("DPS vs mesh x1 3-hop savings %.0f%%, want ~17%%", 100*saveX1)
	}
	if saveX4 < 0.25 || saveX4 > 0.50 {
		t.Errorf("DPS vs mesh x4 3-hop savings %.0f%%, want ~33%%", 100*saveX4)
	}
	// "On the 3-hop pattern, MECS and DPS have nearly identical router
	// energy consumption."
	ratio := e[topology.MECS] / e[topology.DPS]
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("MECS/DPS 3-hop ratio %.2f, want ~1", ratio)
	}
}

func TestFig7DistanceCrossover(t *testing.T) {
	mecs, dps := structOf(topology.MECS), structOf(topology.DPS)
	// "Longer communication distances improve the efficiency of the
	// MECS topology, while near-neighbor patterns favor mesh and DPS."
	if RouteEnergy(dps, 1).Total() >= RouteEnergy(mecs, 1).Total() {
		t.Error("DPS should beat MECS at distance 1")
	}
	if RouteEnergy(mecs, 7).Total() >= RouteEnergy(dps, 7).Total() {
		t.Error("MECS should beat DPS at distance 7")
	}
	// MECS route energy is distance-invariant (no intermediate hops).
	if RouteEnergy(mecs, 2).Total() != RouteEnergy(mecs, 6).Total() {
		t.Error("MECS route energy must not grow with distance")
	}
}

func TestRouteEnergyDegenerate(t *testing.T) {
	s := structOf(topology.MeshX1)
	if RouteEnergy(s, 0).Total() != HopEnergy(s, HopSource).Total() {
		t.Error("distance 0 should cost one source traversal")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative distance did not panic")
		}
	}()
	RouteEnergy(s, -1)
}

func TestHopTypeString(t *testing.T) {
	if HopSource.String() != "src" || HopIntermediate.String() != "intermediate" || HopDest.String() != "dest" {
		t.Error("hop type strings wrong")
	}
}

func TestQoSLogicAreaShare(t *testing.T) {
	for _, k := range topology.Kinds() {
		share := QoSLogicAreaShare(structOf(k))
		if share <= 0 || share >= 0.35 {
			t.Errorf("%v QoS logic share %.2f implausible", k, share)
		}
	}
}

func TestEnergyBreakdownTotal(t *testing.T) {
	e := EnergyBreakdown{Buffers: 1, Crossbar: 2, FlowTable: 3}
	if e.Total() != 6 {
		t.Error("Total should sum components")
	}
	sum := e.add(EnergyBreakdown{Buffers: 1})
	if sum.Buffers != 2 || sum.Total() != 7 {
		t.Error("add broken")
	}
}
