// Package physical provides the analytical area and energy models behind
// Figures 3 and 7 of the paper. The paper used Orion 2.0 (crossbars,
// links) and CACTI 6.0 (SRAM buffers and flow-state arrays) at 32 nm and
// 0.9 V; this package rebuilds the same structural drivers in closed form:
//
//   - SRAM area/energy proportional to capacity with small-array periphery
//     overhead (input buffers and flow-state tables);
//   - crossbar area proportional to the product of input and output port
//     spans (each port is a 128-bit channel); crossbar traversal energy
//     proportional to the switched line length, including the long input
//     lines that feed a MECS router's switch from buffers spread along its
//     express channels;
//   - flow-table query/update energy per non-intermediate traversal.
//
// Absolute mm² and nJ values are calibration constants; every comparison
// the paper draws (which topology is biggest/smallest, who wins per hop
// type and on multi-hop routes) comes from the structural inputs in
// topology.Structure.
package physical

import "tanoq/internal/topology"

// Process and calibration constants (32 nm, 0.9 V).
const (
	// BufferBitArea is SRAM input-buffer area per bit in mm², dominated
	// by periphery at NoC-router array sizes.
	BufferBitArea = 1.2e-6
	// FlowStateBitArea is denser register-file storage for the flow
	// tables.
	FlowStateBitArea = 0.6e-6
	// XbarCrosspointArea is the area of one (128-bit x 128-bit)
	// crosspoint tile: (width x wire pitch)^2.
	XbarCrosspointArea = 4.19e-4

	// Per-flit energies in nJ.
	bufferBaseEnergy = 0.9  // write+read of a small array
	bufferVCEnergy   = 0.15 // bit/word-line growth per additional VC
	xbarPortEnergy   = 0.12 // per summed crossbar port
	xbarLineEnergy   = 0.45 // per tile of input-line span
	flowQueryEnergy  = 0.35 // flow-table query+update, base
	flowScaleEnergy  = 0.15 // growth at 64 tracked flows
	flowScaleFlows   = 64.0
	dpsMuxEnergy     = 0.15 // the 2:1 mux of a DPS intermediate hop
)

// AreaBreakdown is a router's area by component, in mm² (Figure 3's
// stacked bars).
type AreaBreakdown struct {
	RowBuffers float64 // identical across topologies (the dotted line)
	ColBuffers float64
	Crossbar   float64
	FlowState  float64
}

// InputBuffers returns the total buffer area (row + column).
func (a AreaBreakdown) InputBuffers() float64 { return a.RowBuffers + a.ColBuffers }

// Total returns the full router area overhead.
func (a AreaBreakdown) Total() float64 {
	return a.RowBuffers + a.ColBuffers + a.Crossbar + a.FlowState
}

// RouterArea evaluates the area model for one shared-region router.
func RouterArea(s topology.Structure) AreaBreakdown {
	return AreaBreakdown{
		RowBuffers: float64(s.RowBufferBits()) * BufferBitArea,
		ColBuffers: float64(s.ColBufferBits()) * BufferBitArea,
		Crossbar:   float64(s.XbarIn*s.XbarOut) * XbarCrosspointArea,
		FlowState:  float64(s.FlowStateBits()) * FlowStateBitArea,
	}
}

// HopType classifies a router traversal for the energy model (Figure 7's
// groups).
type HopType uint8

const (
	HopSource HopType = iota
	HopIntermediate
	HopDest
)

func (h HopType) String() string {
	switch h {
	case HopSource:
		return "src"
	case HopIntermediate:
		return "intermediate"
	case HopDest:
		return "dest"
	default:
		return "hop"
	}
}

// EnergyBreakdown is per-flit router energy by component, in nJ.
type EnergyBreakdown struct {
	Buffers   float64
	Crossbar  float64
	FlowTable float64
}

// Total returns the per-flit hop energy.
func (e EnergyBreakdown) Total() float64 { return e.Buffers + e.Crossbar + e.FlowTable }

// add accumulates component-wise.
func (e EnergyBreakdown) add(o EnergyBreakdown) EnergyBreakdown {
	return EnergyBreakdown{
		Buffers:   e.Buffers + o.Buffers,
		Crossbar:  e.Crossbar + o.Crossbar,
		FlowTable: e.FlowTable + o.FlowTable,
	}
}

// bufferEnergy is the write+read cost of parking a flit in an input
// buffer, growing with the VC count (longer bit/word lines).
func bufferEnergy(vcs int) float64 {
	return bufferBaseEnergy + bufferVCEnergy*float64(vcs)
}

// HopEnergy evaluates the per-flit energy of one router traversal of the
// given type.
//
// The asymmetries that drive Figure 7 fall out of the structure:
//   - MECS pays for large (14-VC) buffers and for input lines that run
//     from drop-off buffers along the express channel into the switch —
//     the most energy-hungry switch stage of the study — but has no
//     intermediate hops at all;
//   - DPS intermediate hops skip the crossbar and the flow table
//     entirely: a buffer pass plus a 2:1 mux;
//   - meshes pay the full buffer+crossbar+table toll at every hop.
func HopEnergy(s topology.Structure, h HopType) EnergyBreakdown {
	buf := bufferEnergy(s.ColVCsPerIn)
	xbar := xbarPortEnergy*float64(s.XbarIn+s.XbarOut) + xbarLineEnergy*s.XbarInputLineTiles
	flow := flowQueryEnergy + flowScaleEnergy*float64(s.FlowTableFlows)/flowScaleFlows

	if s.Kind == topology.DPS && h == HopIntermediate {
		return EnergyBreakdown{Buffers: buf, Crossbar: dpsMuxEnergy}
	}
	return EnergyBreakdown{Buffers: buf, Crossbar: xbar, FlowTable: flow}
}

// RouteEnergy evaluates the per-flit router energy of a transfer crossing
// the given mesh-equivalent distance (Figure 7's "3 hops" bars use
// distance 3, the average on uniform random traffic).
func RouteEnergy(s topology.Structure, distance int) EnergyBreakdown {
	if distance < 0 {
		panic("physical: negative distance")
	}
	e := HopEnergy(s, HopSource)
	if distance == 0 {
		return e
	}
	switch s.Kind {
	case topology.MECS:
		// Express channels bypass intermediate routers entirely.
	default:
		for i := 0; i < distance-1; i++ {
			e = e.add(HopEnergy(s, HopIntermediate))
		}
	}
	return e.add(HopEnergy(s, HopDest))
}

// QoSLogicAreaShare estimates the fraction of a router's area that exists
// only for QoS support: the flow-state tables plus the preemption/ACK
// machinery (modelled as a fixed fraction of the flow-state cost, per the
// PVC paper's observation that the ACK network is low-bandwidth and
// low-complexity). Used by the chip-level cost accounting: the
// topology-aware architecture pays this only in the shared columns.
func QoSLogicAreaShare(s topology.Structure) float64 {
	a := RouterArea(s)
	qos := a.FlowState * 1.5 // tables + preemption logic + ACK interface
	return qos / a.Total()
}
