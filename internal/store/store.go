// Package store is a content-addressed, on-disk result cache for sweep
// cells, plus the append-only journal that makes sweeps resumable.
//
// The cache maps a canonical description of a simulation cell — produced
// by the caller, typically internal/scenario's canonical cell encoding
// including the engine version stamp — to the cell's full result row.
// Keys are SHA-256 over the canonical bytes, so any semantic change to a
// cell (topology, QoS mode, rate, seed, faults, engine version, ...)
// addresses a different entry, while re-describing the same cell always
// lands on the same one. Because the simulator is deterministic and
// bit-identical across worker counts, a cached row is indistinguishable
// from a re-executed one; a false miss merely costs a re-run, and a
// false hit cannot happen short of a hash collision.
//
// Layout on disk, under the cache directory (default .tanoq-cache/):
//
//	v1/<key[:2]>/<key>.json   one entry per cell, atomically written
//	journal                   append-only log of completed keys (resume)
//
// Every entry is a JSON envelope {format, key, payload}: format names
// the payload schema version, key echoes the content address so an
// entry misfiled by hand is detected, and payload is the caller's row,
// stored verbatim. Entries are written via temp file + rename in the
// same directory, so a crash mid-write leaves either the old entry or
// none — a corrupt or truncated entry reads as a miss, never as data.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Format is the on-disk envelope schema version. Bump it when the
// envelope itself (not the payload) changes shape; old entries then
// read as misses.
const Format = "tanoq-cache/v1"

// DefaultDir is the conventional cache directory name, created in the
// working directory when the caller does not choose another location.
const DefaultDir = ".tanoq-cache"

// KeyOf content-addresses a canonical cell description: the lowercase
// hex SHA-256 of the bytes. Callers are responsible for canonical
// encoding (stable field order, no incidental fields); KeyOf itself is
// deliberately oblivious to structure.
func KeyOf(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// Store is an open cache directory. Methods are safe for concurrent use
// by multiple goroutines; concurrent processes sharing a directory are
// also safe because entries are immutable once renamed into place and
// two writers of the same key write identical bytes.
type Store struct {
	dir string
}

// envelope is the on-disk entry wrapper.
type envelope struct {
	Format  string          `json:"format"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// Open opens (creating if needed) a cache rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		dir = DefaultDir
	}
	if err := os.MkdirAll(filepath.Join(dir, "v1"), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its entry file, sharded by the first key byte so
// no single directory accumulates every entry.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, "v1", key[:2], key+".json")
}

// Get looks a key up and returns its payload. The second result is
// false on a miss — absent, unreadable, corrupt, wrong format, or
// mislabeled entries all count as misses, because a miss is always safe
// (the cell simply re-runs) while trusting a damaged entry never is.
func (s *Store) Get(key string) (json.RawMessage, bool) {
	if len(key) < 2 {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var env envelope
	if json.Unmarshal(data, &env) != nil || env.Format != Format || env.Key != key || len(env.Payload) == 0 {
		return nil, false
	}
	return env.Payload, true
}

// Put stores payload under key, atomically: the envelope is written to
// a temp file in the entry's directory and renamed into place, so
// readers (including other processes) only ever observe complete
// entries. Overwriting an existing entry is allowed and idempotent.
func (s *Store) Put(key string, payload json.RawMessage) error {
	if len(key) < 2 {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if !json.Valid(payload) {
		return fmt.Errorf("store: payload for %s is not valid JSON", key)
	}
	data, err := json.Marshal(envelope{Format: Format, Key: key, Payload: payload})
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", key, err)
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key[:8]+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", key, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: commit %s: %w", key, err)
	}
	return nil
}

// Len counts valid entries — a maintenance/introspection helper, not a
// hot path.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(filepath.Join(s.dir, "v1"), func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
