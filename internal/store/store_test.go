package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestKeyOfIsStableAndSensitive(t *testing.T) {
	a := KeyOf([]byte(`{"kind":"mesh","rate":0.1}`))
	if b := KeyOf([]byte(`{"kind":"mesh","rate":0.1}`)); b != a {
		t.Fatal("identical canonical bytes produced different keys")
	}
	if len(a) != 64 || !validKey(a) {
		t.Fatalf("key %q is not lowercase hex SHA-256", a)
	}
	if c := KeyOf([]byte(`{"kind":"mesh","rate":0.2}`)); c == a {
		t.Fatal("different canonical bytes collided")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf([]byte("cell-one"))
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	row := json.RawMessage(`{"mean_latency":12.5,"p99":40}`)
	if err := s.Put(key, row); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss immediately after Put")
	}
	if string(got) != string(row) {
		t.Fatalf("payload %s round-tripped as %s", row, got)
	}
	// Idempotent overwrite.
	if err := s.Put(key, row); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d after one key", s.Len())
	}
	// Reopening the same directory sees the entry.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key); !ok {
		t.Fatal("entry lost across reopen")
	}
}

// TestCorruptEntriesReadAsMisses pins the safety contract: any damaged
// entry — truncated, non-JSON, wrong format, wrong key echo — is a
// miss, never served data.
func TestCorruptEntriesReadAsMisses(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf([]byte("victim"))
	if err := s.Put(key, json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string]string{
		"truncated":    `{"format":"tanoq-cache/v1","key":"` + key + `","pa`,
		"not-json":     "garbage\n",
		"wrong-format": `{"format":"tanoq-cache/v999","key":"` + key + `","payload":{"v":1}}`,
		"wrong-key":    `{"format":"tanoq-cache/v1","key":"` + KeyOf([]byte("other")) + `","payload":{"v":1}}`,
		"empty":        "",
	} {
		if err := os.WriteFile(s.path(key), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("%s entry served as a hit", name)
		}
	}
	if _, ok := s.Get("zz"); ok {
		t.Error("malformed key served as a hit")
	}
	if err := s.Put(key, json.RawMessage(`not json`)); err == nil {
		t.Error("Put accepted an invalid-JSON payload")
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := KeyOf([]byte{byte(i)}) // all goroutines contend on the same 20 keys
				if err := s.Put(key, json.RawMessage(`{"i":`+string(rune('0'+i%10))+`}`)); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Get(key); !ok {
					t.Errorf("goroutine %d: miss after put", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Len(); got != 20 {
		t.Fatalf("Len() = %d, want 20", got)
	}
}

func TestJournalRecordsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := KeyOf([]byte("a")), KeyOf([]byte("b"))
	if j.Done(k1) || j.Len() != 0 {
		t.Fatal("fresh journal is not empty")
	}
	if err := j.Record(k1); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(k1); err != nil { // idempotent
		t.Fatal(err)
	}
	if !j.Done(k1) || j.Done(k2) || j.Len() != 1 {
		t.Fatalf("journal state wrong after one record: len=%d", j.Len())
	}
	if err := j.Record("short"); err == nil {
		t.Error("Record accepted an invalid key")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Done(k1) || j2.Len() != 1 {
		t.Fatal("recorded key lost across reopen")
	}
	if err := j2.Record(k2); err != nil {
		t.Fatal(err)
	}
	if !j2.Done(k2) || j2.Len() != 2 {
		t.Fatal("second record not visible")
	}
}

// TestJournalIgnoresTornLine pins crash tolerance: a torn (partial)
// final line is skipped on read instead of poisoning the done-set.
func TestJournalIgnoresTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	k := KeyOf([]byte("whole"))
	if err := os.WriteFile(path, []byte(k+"\nabc123"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if !j.Done(k) {
		t.Error("whole line not read")
	}
	if j.Len() != 1 {
		t.Errorf("torn line counted: len=%d", j.Len())
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				if err := j.Record(KeyOf([]byte{byte(i)})); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if j.Len() != 16 {
		t.Fatalf("Len() = %d, want 16", j.Len())
	}
}
