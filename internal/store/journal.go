package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal is the sweep checkpoint: an append-only file of completed
// cell keys, one per line, living alongside the cache entries. A
// resumed sweep reads it to learn which cells finished before the
// interruption; the cache then supplies their rows. The journal is the
// cheap, crash-ordered half of the pair — a key is recorded only after
// its entry has been renamed into the cache, so every journaled key is
// backed by a durable row (the converse need not hold; unjournaled
// cache entries are still served as ordinary hits).
//
// Lines that do not look like keys are ignored on read, so a torn final
// line from a crash costs at most one re-run.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]bool
}

// OpenJournal opens (creating if needed) the journal file at path,
// reading the set of already-recorded keys.
func OpenJournal(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal %s: %w", path, err)
	}
	j := &Journal{f: f, done: make(map[string]bool)}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if key := sc.Text(); validKey(key) {
			j.done[key] = true
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: journal %s: %w", path, err)
	}
	return j, nil
}

// validKey reports whether a journal line is a plausible cache key
// (lowercase hex SHA-256).
func validKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Done reports whether key was recorded, now or in a previous run.
func (j *Journal) Done(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done[key]
}

// Len returns the number of recorded keys.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends key to the journal and syncs it to disk. Recording an
// already-recorded key is a no-op. Safe for concurrent use.
func (j *Journal) Record(key string) error {
	if !validKey(key) {
		return fmt.Errorf("store: journal: invalid key %q", key)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done[key] {
		return nil
	}
	if _, err := j.f.WriteString(key + "\n"); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	j.done[key] = true
	return nil
}

// Close closes the journal file. Record must not be called after Close.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
