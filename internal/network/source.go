package network

import (
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/traffic"
)

// source is one traffic injector: a terminal port or a MECS row input at a
// column node. It owns the single injection VC (packets enter the network
// one at a time), the PVC retransmission window (unACKed packets stay
// buffered for replay) and the retransmission queue fed by NACKs.
//
// Sources are not scanned per cycle. Generation is driven by the
// network's arrival heap (a source is touched only on its precomputed
// arrival cycles), and offering by the offerable list (a source is
// touched only while it actually holds an injectable packet).
type source struct {
	net  *Network
	spec traffic.Spec
	rng  *sim.RNG
	// idx is the source's position in the workload spec order; it breaks
	// same-cycle ties in the arrival heap and orders the offerable list,
	// keeping both deterministic and identical to the historical
	// all-sources scan order.
	idx int
	// inOffer marks membership in the network's offerable list.
	inOffer bool

	// queue holds freshly generated packets awaiting first injection
	// (unbounded: offered load beyond acceptance shows up as source
	// queueing delay, the classic latency-throughput hockey stick).
	queue pktQueue
	// retx holds preempted packets awaiting re-injection; they are
	// replayed ahead of new traffic and already occupy window slots.
	retx pktQueue
	// offering is the packet currently registered as a first-leg
	// arbitration candidate (the injection VC).
	offering *pkt
	// window counts injected-but-unACKed packets.
	window int
	// busyUntil serializes the injection VC: the next packet may only
	// be offered after the previous one's tail left the source router.
	busyUntil sim.Cycle
	// replica round-robins packets across replicated mesh channels.
	replica int

	// arr draws packet inter-arrival gaps (traffic.ArrivalSampler): one
	// geometric draw per packet for smooth specs, reproducing the modeled
	// per-cycle Bernoulli process exactly, plus on/off window walking for
	// bursty MMPP-style specs. nextArrival is the precomputed cycle of
	// the next packet — the source's wake-up time in the arrival heap.
	arr         traffic.ArrivalSampler
	nextArrival sim.Cycle

	generated int64
	injected  int64
}

func newSource(n *Network, spec traffic.Spec) *source {
	s := &source{net: n, spec: spec, rng: n.rng.Split()}
	s.arr = spec.NewArrivalSampler(s.rng)
	if s.arr.Active() {
		// The first arrival lands at gap-1 so that cycle 0 succeeds with
		// the per-cycle packet probability, exactly like the first
		// Bernoulli trial.
		s.nextArrival = s.arr.NextGap(s.rng) - 1
	}
	return s
}

// pktQueue is an allocation-amortizing FIFO: pops advance a head index
// instead of reslicing away the backing array's front capacity (the
// `q = q[1:]` idiom makes every later append reallocate), the array is
// rewound whenever the queue drains, and a long-lived saturated queue is
// compacted in place once the dead prefix dominates.
type pktQueue struct {
	items []*pkt
	head  int
}

func (q *pktQueue) len() int    { return len(q.items) - q.head }
func (q *pktQueue) empty() bool { return q.head >= len(q.items) }
func (q *pktQueue) first() *pkt { return q.items[q.head] }

func (q *pktQueue) push(p *pkt) { q.items = append(q.items, p) }

func (q *pktQueue) pop() *pkt {
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head >= 64 && q.head*2 >= len(q.items):
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

// generate emits the precomputed arrival — the engine's arrival heap only
// pops a source on exactly its arrival cycle — then draws the next
// inter-arrival gap from the spec's arrival sampler (geometric for smooth
// specs, on/off-window modulated for bursty ones), so the emitted packet
// stream is statistically identical to per-cycle sampling of the modeled
// process at ~one RNG draw per packet, and off-arrival cycles never touch
// the source at all. Destination selection delegates to the spec's Dest
// pattern; both calls are allocation-free.
func (s *source) generate(t sim.Cycle) {
	class := noc.ClassReply
	if s.rng.Bernoulli(s.spec.RequestFraction) {
		class = noc.ClassRequest
	}
	p := s.net.newPacket(s, class, s.spec.Dest.Pick(s.rng), t)
	s.queue.push(p)
	s.generated++
	s.net.markOfferable(s)
	// Gaps are >= 1, so arrivals never bunch within a cycle and
	// nextArrival strictly advances.
	s.nextArrival = t + s.arr.NextGap(s.rng)
}

// offer registers the next injectable packet as a first-leg arbitration
// candidate. Retransmissions go first and already hold window slots; new
// packets need a free slot in the outstanding-packet window (PVC mode).
func (s *source) offer(t sim.Cycle) {
	if s.offering != nil || t < s.busyUntil {
		return
	}
	var p *pkt
	switch {
	case !s.retx.empty():
		p = s.retx.first()
	case !s.queue.empty():
		if s.net.mode == qos.PVC && s.window >= s.net.cfg.QoS.WindowPackets {
			return
		}
		p = s.queue.first()
	default:
		return
	}
	// (Re)compute the path; a retransmission may take a different
	// replica channel.
	p.legs = s.net.graph.Path(p.Src, p.Dst, s.replica)
	s.replica++
	// Rate compliance: the first rate x frame flits a source sends in a
	// frame are protected. A retransmission may gain protection if the
	// frame rolled over since the original attempt.
	if s.net.quota != nil && !p.Reserved {
		p.Reserved = s.net.quota.TryConsume(p.Flow, p.Size)
	}
	p.state = stAtSource
	p.enq = t
	s.offering = p
	s.net.register(s.net.ports[p.legs[0].Out], p)
}

// onInjected is called when the offered packet wins first-leg arbitration:
// it leaves the source queue and occupies a window slot.
func (s *source) onInjected(p *pkt, tailDeparture sim.Cycle, now sim.Cycle) {
	if s.offering != p {
		panic("network: injected packet was not the offered one")
	}
	s.offering = nil
	if !s.retx.empty() && s.retx.first() == p {
		s.retx.pop()
	} else {
		s.queue.pop()
		s.window++
		s.net.inFlight++
	}
	s.busyUntil = tailDeparture
	s.injected++
	p.Injected = now
	s.net.coll.Injected(p.Size)
	// Any remaining backlog goes back on the offerable list, to be
	// offered once the injection VC frees at busyUntil.
	s.net.markOfferable(s)
}

// onAck frees the window slot of a delivered packet. A window-capped
// source with a backlog becomes offerable again here.
func (s *source) onAck(p *pkt) {
	s.window--
	if s.window < 0 {
		panic("network: ACK without outstanding packet")
	}
	s.net.markOfferable(s)
}

// onNack queues a preempted packet for retransmission. The packet keeps
// its window slot — it is still unacknowledged.
func (s *source) onNack(p *pkt) {
	p.state = stAtSource
	s.retx.push(p)
	s.net.markOfferable(s)
}

// nextOffer returns the earliest cycle at which this offerable source
// could inject, for the engine's idle fast-forward: the injection VC
// frees at busyUntil. A window-capped source returns neverCycle — the
// unblocking ACK/NACK is an event the heap already covers.
func (s *source) nextOffer() sim.Cycle {
	if s.offering != nil {
		return neverCycle
	}
	if s.retx.empty() {
		if s.queue.empty() {
			return neverCycle
		}
		if s.net.mode == qos.PVC && s.window >= s.net.cfg.QoS.WindowPackets {
			return neverCycle
		}
	}
	return s.busyUntil
}

// srcHeap orders the engine's arrival schedule on (nextArrival, idx).
// Tie-breaking on the source index makes same-cycle generation order
// identical to the historical all-sources scan.
type srcHeap = minHeap[*source]

// lessThan orders sources by next arrival cycle, then spec order.
func (s *source) lessThan(o *source) bool {
	if s.nextArrival != o.nextArrival {
		return s.nextArrival < o.nextArrival
	}
	return s.idx < o.idx
}
