package network

import (
	"math/bits"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/traffic"
)

// source is one traffic injector: a terminal port or a MECS row input at a
// column node. It owns the single injection VC (packets enter the network
// one at a time), the PVC retransmission window (unACKed packets stay
// buffered for replay) and the retransmission queue fed by NACKs.
//
// Sources live by value in the network's flat source array and are not
// scanned per cycle. Generation is driven by the network's arrival heap
// (a source is touched only on its precomputed arrival cycles), and
// offering by the offerable list (a source is touched only while it
// actually holds an injectable packet).
type source struct {
	spec traffic.Spec
	// rng is the source's private stream, held by value: one fewer
	// indirection per draw, and reuse re-seeds it in place.
	rng sim.RNG
	// idx is the source's position in the workload spec order; it breaks
	// same-cycle ties in the arrival heap and orders the offerable list,
	// keeping both deterministic and identical to the historical
	// all-sources scan order.
	idx int32
	// inOffer marks membership in the network's offerable list.
	inOffer bool

	// queue holds freshly generated packets awaiting first injection
	// (unbounded: offered load beyond acceptance shows up as source
	// queueing delay, the classic latency-throughput hockey stick).
	queue pktQueue
	// retx holds preempted packets awaiting re-injection; they are
	// replayed ahead of new traffic and already occupy window slots.
	retx pktQueue
	// offering is the packet currently registered as a first-leg
	// arbitration candidate (the injection VC); noPkt when none.
	offering pktH
	// window counts injected-but-unACKed packets.
	window int
	// busyUntil serializes the injection VC: the next packet may only
	// be offered after the previous one's tail left the source router.
	busyUntil sim.Cycle
	// replica round-robins packets across replicated mesh channels.
	replica int

	// arr draws packet inter-arrival gaps (traffic.ArrivalSampler): one
	// geometric draw per packet for smooth specs, reproducing the modeled
	// per-cycle Bernoulli process exactly, plus on/off window walking for
	// bursty MMPP-style specs. nextArrival is the precomputed cycle of
	// the next packet — the source's wake-up time in the arrival heap.
	arr         traffic.ArrivalSampler
	nextArrival sim.Cycle

	// replay/replayPos drive trace-replay generation (spec.Replay set):
	// nextArrival walks the recorded event cycles and generation emits
	// the records verbatim, consuming no randomness. Unlike sampled
	// arrivals, recorded cycles may repeat (a server source can generate
	// two same-cycle replies), which the arrival loop already handles.
	replay    *traffic.Replay
	replayPos int32

	generated int64
	injected  int64
}

// reinit configures the source in place for a fresh simulation, splitting
// its private RNG stream off the network RNG exactly as the historical
// per-source constructor did, and reusing the queue backing arrays.
func (s *source) reinit(netRNG *sim.RNG, spec traffic.Spec, idx int32) {
	s.spec = spec
	netRNG.SplitInto(&s.rng)
	s.idx = idx
	s.inOffer = false
	s.queue.reset()
	s.retx.reset()
	s.offering = noPkt
	s.window = 0
	s.busyUntil = 0
	s.replica = 0
	s.generated = 0
	s.injected = 0
	s.nextArrival = 0
	s.replay = spec.Replay
	s.replayPos = 0
	if s.replay != nil {
		s.arr = traffic.ArrivalSampler{} // inactive; records drive generation
		if len(s.replay.Events) > 0 {
			s.nextArrival = s.replay.Events[0].At
		}
		return
	}
	s.arr = spec.NewArrivalSampler(&s.rng)
	if s.arr.Active() {
		// The first arrival lands at gap-1 so that cycle 0 succeeds with
		// the per-cycle packet probability, exactly like the first
		// Bernoulli trial.
		s.nextArrival = s.arr.NextGap(&s.rng) - 1
	}
}

// pktQueue is an allocation-amortizing FIFO of packet handles: pops
// advance a head index instead of reslicing away the backing array's
// front capacity (the `q = q[1:]` idiom makes every later append
// reallocate), the array is rewound whenever the queue drains, and a
// long-lived saturated queue is compacted in place once the dead prefix
// dominates. Elements are 4-byte handles, so the queue is invisible to
// the garbage collector.
type pktQueue struct {
	items []pktH
	head  int
}

func (q *pktQueue) len() int    { return len(q.items) - q.head }
func (q *pktQueue) empty() bool { return q.head >= len(q.items) }
func (q *pktQueue) first() pktH { return q.items[q.head] }

func (q *pktQueue) reset() {
	if q.items == nil {
		q.items = make([]pktH, 0, srcQueueCap)
	}
	q.items = q.items[:0]
	q.head = 0
}

func (q *pktQueue) push(h pktH) { q.items = append(q.items, h) }

func (q *pktQueue) pop() pktH {
	h := q.items[q.head]
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head >= 64 && q.head*2 >= len(q.items):
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return h
}

// generate emits the precomputed arrival — the engine's arrival heap only
// pops a source on exactly its arrival cycle — then draws the next
// inter-arrival gap from the spec's arrival sampler (geometric for smooth
// specs, on/off-window modulated for bursty ones), so the emitted packet
// stream is statistically identical to per-cycle sampling of the modeled
// process at ~one RNG draw per packet, and off-arrival cycles never touch
// the source at all. Destination selection delegates to the spec's Dest
// pattern; both calls are allocation-free.
func (n *Network) generate(s *source, t sim.Cycle) {
	if s.replay != nil {
		n.generateReplay(s, t)
		return
	}
	class := noc.ClassReply
	if s.rng.Bernoulli(s.spec.RequestFraction) {
		class = noc.ClassRequest
	}
	dst := s.spec.Dest.Pick(&s.rng)
	h := n.newPacket(s, class, dst, t)
	s.queue.push(h)
	s.generated++
	if n.genHook != nil {
		n.genHook(traffic.TraceRecord{At: t, Flow: s.spec.Flow, Src: s.spec.Node, Dst: dst, Class: class})
	}
	if n.wdWindow > 0 {
		n.wdRecords = append(n.wdRecords, traffic.TraceRecord{At: t, Flow: s.spec.Flow, Src: s.spec.Node, Dst: dst, Class: class})
	}
	n.markOfferable(s)
	// Gaps are >= 1, so arrivals never bunch within a cycle and
	// nextArrival strictly advances.
	s.nextArrival = t + s.arr.NextGap(&s.rng)
}

// generateReplay emits the source's next recorded event verbatim — the
// replay counterpart of generate, consuming no randomness. Re-recording a
// replayed run (the gen hook below) reproduces the trace.
func (n *Network) generateReplay(s *source, t sim.Cycle) {
	ev := s.replay.Events[s.replayPos]
	s.replayPos++
	h := n.newPacket(s, ev.Class, ev.Dst, t)
	s.queue.push(h)
	s.generated++
	if n.genHook != nil {
		n.genHook(traffic.TraceRecord{At: t, Flow: s.spec.Flow, Src: s.spec.Node, Dst: ev.Dst, Class: ev.Class})
	}
	if n.wdWindow > 0 {
		n.wdRecords = append(n.wdRecords, traffic.TraceRecord{At: t, Flow: s.spec.Flow, Src: s.spec.Node, Dst: ev.Dst, Class: ev.Class})
	}
	n.markOfferable(s)
	if int(s.replayPos) < len(s.replay.Events) {
		s.nextArrival = s.replay.Events[s.replayPos].At
	}
}

// offer registers the next injectable packet as a first-leg arbitration
// candidate. Retransmissions go first and already hold window slots; new
// packets need a free slot in the outstanding-packet window (PVC mode).
// With permanent link faults in effect, the route deterministically
// avoids dead ports (probing replica channels in round-robin order), and
// a destination no replica reaches is dropped as unroutable — the loop
// then considers the next queued packet.
func (n *Network) offer(s *source, t sim.Cycle) {
	if s.offering != noPkt || t < s.busyUntil {
		return
	}
	for {
		var h pktH
		fromRetx := false
		switch {
		case !s.retx.empty():
			h = s.retx.first()
			fromRetx = true
		case !s.queue.empty():
			if n.windowCapped(s) {
				return
			}
			h = s.queue.first()
		default:
			return
		}
		p := &n.arena[h]
		// (Re)compute the path; a retransmission may take a different
		// replica channel.
		p.legs = n.graph.Path(p.Src, p.Dst, s.replica)
		s.replica++
		if n.fltHasDead && n.legsCrossDead(p.legs, 0) && !n.reroute(s, p) {
			if fromRetx {
				s.retx.pop()
				n.abandon(h)
			} else {
				s.queue.pop()
				n.coll.Dropped(p.Flow)
				p.state = stDead
				n.recycle(h)
			}
			continue
		}
		// Rate compliance: the first rate x frame flits a source sends in a
		// frame are protected. A retransmission may gain protection if the
		// frame rolled over since the original attempt.
		if n.quota != nil && !p.Reserved {
			p.Reserved = n.quota.TryConsume(p.Flow, p.Size)
		}
		p.state = stAtSource
		p.enq = t
		s.offering = h
		n.register(&n.ports[p.legs[0].Out], h)
		return
	}
}

// onInjected is called when the offered packet wins first-leg arbitration:
// it leaves the source queue and occupies a window slot.
func (n *Network) onInjected(s *source, h pktH, tailDeparture sim.Cycle, now sim.Cycle) {
	if s.offering != h {
		panic("network: injected packet was not the offered one")
	}
	s.offering = noPkt
	if !s.retx.empty() && s.retx.first() == h {
		s.retx.pop()
	} else {
		s.queue.pop()
		s.window++
		n.inFlight++
	}
	s.busyUntil = tailDeparture
	s.injected++
	p := &n.arena[h]
	p.Injected = now
	n.coll.Injected(p.Size)
	// Each injection invalidates the previous attempt's delivery timer
	// (the timer event carries the sequence it was armed for) and arms a
	// fresh one when end-to-end recovery is configured.
	p.retrySeq++
	if n.retryTimeout > 0 {
		n.armRetryTimer(h, p, now)
	}
	// Any remaining backlog goes back on the offerable list, to be
	// offered once the injection VC frees at busyUntil.
	n.markOfferable(s)
}

// onAck frees the window slot of a delivered packet. A window-capped
// source with a backlog becomes offerable again here.
func (n *Network) onAck(s *source) {
	s.window--
	if s.window < 0 {
		panic("network: ACK without outstanding packet")
	}
	n.markOfferable(s)
}

// onNack queues a preempted packet for retransmission. The packet keeps
// its window slot — it is still unacknowledged.
func (n *Network) onNack(s *source, h pktH) {
	p := &n.arena[h]
	p.nackPending = false
	p.state = stAtSource
	s.retx.push(h)
	n.markOfferable(s)
}

// windowCapped reports whether the source cannot inject anything until an
// ACK frees a window slot: PVC window full, nothing to retransmit (a
// retransmission already holds its slot and bypasses the cap). Step's
// offer pass drops such a source from the offerable list — scanning it
// every cycle would be a guaranteed no-op — and the unblocking ACK/NACK
// handler re-adds it through markOfferable on exactly the cycle it can
// act again, before that cycle's offer pass runs, so the offered packet
// stream is identical to scanning it every cycle. With its window full
// the source always has packets in flight, so the idle check's
// offerable-list emptiness test is unaffected.
func (n *Network) windowCapped(s *source) bool {
	return n.mode == qos.PVC && s.retx.empty() &&
		s.window >= n.cfg.QoS.WindowPackets
}

// nextOffer returns the earliest cycle at which this offerable source
// could inject, for the engine's idle fast-forward: the injection VC
// frees at busyUntil. A window-capped source returns neverCycle — the
// unblocking ACK/NACK is an event the heap already covers.
func (n *Network) nextOffer(s *source) sim.Cycle {
	if s.offering != noPkt {
		return neverCycle
	}
	if s.retx.empty() {
		if s.queue.empty() {
			return neverCycle
		}
		if n.windowCapped(s) {
			return neverCycle
		}
	}
	return s.busyUntil
}

// arrival is one entry of the engine's arrival schedule: the cycle a
// source's next packet lands, and the source's index. Entries are
// 16-byte values — heap sifts move them without touching the sources.
type arrival struct {
	at  sim.Cycle
	idx int32
}

// lessThan orders arrivals by cycle, then spec order; the index
// tie-break makes same-cycle generation order identical to the
// historical all-sources scan.
func (a arrival) lessThan(o arrival) bool {
	if a.at != o.at {
		return a.at < o.at
	}
	return a.idx < o.idx
}

// arrHeap orders the engine's arrival schedule on (cycle, index). It is a
// hand-specialized copy of minHeap: the heap is popped and re-pushed once
// per generated packet, and the monomorphic comparison inlines where the
// generic dictionary-based call would not.
type arrHeap struct {
	items []arrival
}

func (h *arrHeap) Len() int { return len(h.items) }

func (h *arrHeap) push(v arrival) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].lessThan(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *arrHeap) pop() arrival {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	h.siftDown(last)
	return top
}

// replaceTop overwrites the minimum with v and restores heap order with a
// single sift — the engine pops a source's arrival and immediately pushes
// its next one, and fusing the two halves the sift work. Correctness
// needs no layout argument: (cycle, index) is a strict total order, so
// the pop sequence is the sorted sequence whatever the internal array
// arrangement.
func (h *arrHeap) replaceTop(v arrival) {
	h.items[0] = v
	h.siftDown(len(h.items))
}

func (h *arrHeap) siftDown(n int) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && h.items[r].lessThan(h.items[l]) {
			child = r
		}
		if !h.items[child].lessThan(h.items[i]) {
			break
		}
		h.items[i], h.items[child] = h.items[child], h.items[i]
		i = child
	}
}

// arrWheel schedules packet arrivals on a calendar wheel, replacing the
// per-arrival heap sift with O(1) bucket filing for the common case. Each
// bucket holds the sources due at one cycle within the wheel's horizon,
// kept in source-index order so same-cycle generation matches the
// historical all-sources scan (and the heap's (cycle, index) pop order)
// exactly. Arrivals drawn past the horizon — the geometric tail, and
// every arrival of a genuinely low-rate source — spill to the old heap
// and drain into buckets as the clock approaches, in (cycle, index)
// order, so the fired sequence is identical to the heap's whatever mix
// of near and far draws a workload produces.
type arrWheel struct {
	buckets [ringSize][]int32
	words   [ringWords]uint64 // bucket-occupancy bitmap
	near    int
	far     arrHeap
}

// reset clears the schedule, keeping backing arrays for reuse.
func (w *arrWheel) reset(capHint int) {
	for i := range w.buckets {
		if w.buckets[i] == nil {
			w.buckets[i] = make([]int32, 0, 8)
		}
		w.buckets[i] = w.buckets[i][:0]
	}
	for i := range w.words {
		w.words[i] = 0
	}
	w.near = 0
	if w.far.items == nil {
		w.far.items = make([]arrival, 0, capHint)
	}
	w.far.items = w.far.items[:0]
}

// Len returns the number of scheduled arrivals.
func (w *arrWheel) Len() int { return w.near + len(w.far.items) }

// insert files an arrival into its bucket, index-sorted.
func (w *arrWheel) insert(at sim.Cycle, idx int32) {
	bi := int(uint64(at) & ringMask)
	if len(w.buckets[bi]) == 0 {
		w.words[bi>>6] |= 1 << uint(bi&63)
	}
	b := append(w.buckets[bi], idx)
	for i := len(b) - 1; i > 0 && b[i-1] > idx; i-- {
		b[i], b[i-1] = b[i-1], b[i]
	}
	w.buckets[bi] = b
	w.near++
}

// add schedules source idx's arrival at cycle at. A same-cycle arrival
// (a replay record repeating the current cycle) lands in the current
// bucket, index-ordered after the entry being fired — exactly where the
// heap would pop it next.
func (w *arrWheel) add(at sim.Cycle, idx int32, now sim.Cycle) {
	if at-now >= ringSize {
		w.far.push(arrival{at: at, idx: idx})
		return
	}
	if at < now {
		at = now
	}
	w.insert(at, idx)
}

// drainFar moves far arrivals whose cycle has come within the horizon
// into their buckets.
func (w *arrWheel) drainFar(now sim.Cycle) {
	for len(w.far.items) > 0 && w.far.items[0].at-now < ringSize {
		a := w.far.pop()
		at := a.at
		if at < now {
			at = now
		}
		w.insert(at, a.idx)
	}
}

// nextAt reports the earliest scheduled arrival cycle (callers check Len
// first).
func (w *arrWheel) nextAt(now sim.Cycle) (sim.Cycle, bool) {
	if w.near > 0 {
		start := int(uint64(now) & ringMask)
		if v := w.words[start>>6] >> uint(start&63); v != 0 {
			return now + sim.Cycle(bits.TrailingZeros64(v)), true
		}
		for k := 1; k <= ringWords; k++ {
			wi := (start>>6 + k) & (ringWords - 1)
			if v := w.words[wi]; v != 0 {
				idx := wi<<6 + bits.TrailingZeros64(v)
				return now + sim.Cycle((idx-start)&ringMask), true
			}
		}
	}
	if len(w.far.items) > 0 {
		return w.far.items[0].at, true
	}
	return 0, false
}
