package network

import (
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/traffic"
)

// source is one traffic injector: a terminal port or a MECS row input at a
// column node. It owns the single injection VC (packets enter the network
// one at a time), the PVC retransmission window (unACKed packets stay
// buffered for replay) and the retransmission queue fed by NACKs.
type source struct {
	net  *Network
	spec traffic.Spec
	rng  *sim.RNG

	// queue holds freshly generated packets awaiting first injection
	// (unbounded: offered load beyond acceptance shows up as source
	// queueing delay, the classic latency-throughput hockey stick).
	queue pktQueue
	// retx holds preempted packets awaiting re-injection; they are
	// replayed ahead of new traffic and already occupy window slots.
	retx pktQueue
	// offering is the packet currently registered as a first-leg
	// arbitration candidate (the injection VC).
	offering *pkt
	// window counts injected-but-unACKed packets.
	window int
	// busyUntil serializes the injection VC: the next packet may only
	// be offered after the previous one's tail left the source router.
	busyUntil sim.Cycle
	// replica round-robins packets across replicated mesh channels.
	replica int

	generated int64
	injected  int64
}

func newSource(n *Network, spec traffic.Spec) *source {
	return &source{net: n, spec: spec, rng: n.rng.Split()}
}

// pktQueue is an allocation-amortizing FIFO: pops advance a head index
// instead of reslicing away the backing array's front capacity (the
// `q = q[1:]` idiom makes every later append reallocate), the array is
// rewound whenever the queue drains, and a long-lived saturated queue is
// compacted in place once the dead prefix dominates.
type pktQueue struct {
	items []*pkt
	head  int
}

func (q *pktQueue) len() int    { return len(q.items) - q.head }
func (q *pktQueue) empty() bool { return q.head >= len(q.items) }
func (q *pktQueue) first() *pkt { return q.items[q.head] }

func (q *pktQueue) push(p *pkt) { q.items = append(q.items, p) }

func (q *pktQueue) pop() *pkt {
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head >= 64 && q.head*2 >= len(q.items):
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

// active reports whether the injector still generates traffic at cycle t.
func (s *source) active(t sim.Cycle) bool {
	return s.spec.Rate > 0 && (s.spec.StopAt == 0 || t < s.spec.StopAt)
}

// exhausted reports whether the source will never produce work again.
// Exhaustion is permanent: generation has stopped, nothing is queued or
// offered, and with no outstanding window there is no NACK left that could
// refill the retransmission queue.
func (s *source) exhausted(t sim.Cycle) bool {
	return !s.active(t) && s.queue.empty() && s.retx.empty() && s.offering == nil && s.window == 0
}

// generate samples the Bernoulli packet process: the flit rate divided by
// the mean packet size gives the per-cycle packet probability for the
// stochastic 1-/4-flit mix.
func (s *source) generate(t sim.Cycle) {
	if !s.active(t) {
		return
	}
	pktProb := s.spec.Rate / s.spec.MeanFlitsPerPacket()
	if !s.rng.Bernoulli(pktProb) {
		return
	}
	class := noc.ClassReply
	if s.rng.Bernoulli(s.spec.RequestFraction) {
		class = noc.ClassRequest
	}
	p := s.net.newPacket(s, class, s.spec.Dest(s.rng), t)
	s.queue.push(p)
	s.generated++
}

// offer registers the next injectable packet as a first-leg arbitration
// candidate. Retransmissions go first and already hold window slots; new
// packets need a free slot in the outstanding-packet window (PVC mode).
func (s *source) offer(t sim.Cycle) {
	if s.offering != nil || t < s.busyUntil {
		return
	}
	var p *pkt
	switch {
	case !s.retx.empty():
		p = s.retx.first()
	case !s.queue.empty():
		if s.net.mode == qos.PVC && s.window >= s.net.cfg.QoS.WindowPackets {
			return
		}
		p = s.queue.first()
	default:
		return
	}
	// (Re)compute the path; a retransmission may take a different
	// replica channel.
	p.legs = s.net.graph.Path(p.Src, p.Dst, s.replica)
	s.replica++
	// Rate compliance: the first rate x frame flits a source sends in a
	// frame are protected. A retransmission may gain protection if the
	// frame rolled over since the original attempt.
	if s.net.quota != nil && !p.Reserved {
		p.Reserved = s.net.quota.TryConsume(p.Flow, p.Size)
	}
	p.state = stAtSource
	p.enq = t
	s.offering = p
	s.net.ports[p.legs[0].Out].register(p)
}

// onInjected is called when the offered packet wins first-leg arbitration:
// it leaves the source queue and occupies a window slot.
func (s *source) onInjected(p *pkt, tailDeparture sim.Cycle, now sim.Cycle) {
	if s.offering != p {
		panic("network: injected packet was not the offered one")
	}
	s.offering = nil
	if !s.retx.empty() && s.retx.first() == p {
		s.retx.pop()
	} else {
		s.queue.pop()
		s.window++
		s.net.inFlight++
	}
	s.busyUntil = tailDeparture
	s.injected++
	p.Injected = now
	s.net.coll.Injected(p.Size)
}

// onAck frees the window slot of a delivered packet.
func (s *source) onAck(p *pkt) {
	s.window--
	if s.window < 0 {
		panic("network: ACK without outstanding packet")
	}
}

// onNack queues a preempted packet for retransmission. The packet keeps
// its window slot — it is still unacknowledged.
func (s *source) onNack(p *pkt) {
	p.state = stAtSource
	s.retx.push(p)
}
