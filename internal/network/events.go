package network

import (
	"container/heap"

	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// evKind enumerates the scheduled occurrences of the engine.
type evKind uint8

const (
	// evHead: a packet's head flit reaches its next buffer; it becomes
	// an arbitration candidate there.
	evHead evKind = iota
	// evDeliver: a packet's tail flit crosses the destination terminal
	// port; delivery completes.
	evDeliver
	// evRelease: a VC's tail flit has fully departed (plus credit
	// return time); the VC is reusable upstream.
	evRelease
	// evAck: the dedicated ACK network delivers a positive
	// acknowledgment to the source; the window slot frees.
	evAck
	// evNack: the ACK network reports a preemption; the source queues
	// the packet for retransmission.
	evNack
)

// event is one scheduled occurrence. Packet-borne events carry the attempt
// (retransmission count) they were scheduled for; a preemption bumps the
// packet's attempt, turning in-flight stale events into no-ops.
type event struct {
	at      sim.Cycle
	seq     uint64 // FIFO order among same-cycle events
	kind    evKind
	p       *pkt
	attempt int
	// Release target.
	buf *inBuf
	vc  int
	gen uint32
}

// eventHeap is a min-heap on (cycle, seq), giving deterministic,
// insertion-ordered processing within a cycle.
type eventHeap struct {
	items []event
	seq   uint64
}

func (h *eventHeap) Len() int { return len(h.items) }
func (h *eventHeap) Less(i, j int) bool {
	if h.items[i].at != h.items[j].at {
		return h.items[i].at < h.items[j].at
	}
	return h.items[i].seq < h.items[j].seq
}
func (h *eventHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *eventHeap) Push(x any)    { h.items = append(h.items, x.(event)) }
func (h *eventHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// schedule enqueues an event at the given cycle.
func (n *Network) schedule(ev event, at sim.Cycle) {
	ev.at = at
	ev.seq = n.events.seq
	n.events.seq++
	heap.Push(&n.events, ev)
}

// processEvents fires every event due at or before now.
func (n *Network) processEvents(now sim.Cycle) {
	for n.events.Len() > 0 && n.events.items[0].at <= now {
		ev := heap.Pop(&n.events).(event)
		switch ev.kind {
		case evRelease:
			ev.buf.release(ev.vc, ev.gen)
		case evHead:
			n.onHeadArrival(ev.p, ev.attempt, now)
		case evDeliver:
			n.onDeliver(ev.p, ev.attempt, now)
		case evAck:
			ev.p.src.onAck(ev.p)
		case evNack:
			ev.p.src.onNack(ev.p)
		}
	}
}

// onHeadArrival moves a packet into the buffer its head flit just reached
// and registers it as an arbitration candidate for its next leg.
func (n *Network) onHeadArrival(p *pkt, attempt int, now sim.Cycle) {
	if p.Retransmits != attempt || p.state != stMoving {
		return // preempted while in flight
	}
	leg := p.legs[p.Hop()]
	p.curBuf, p.curVC = p.nxtBuf, p.nxtVC
	p.nxtBuf, p.nxtVC = nil, -1
	p.creditDelay = leg.WireDelay
	p.weightedHops += leg.HopWeight
	n.coll.HopTraversed(leg.HopWeight)
	p.AdvanceHop()
	p.state = stWaiting
	p.enq = now
	n.ports[p.legs[p.Hop()].Out].register(p)
}

// onDeliver completes a delivery: statistics, the ejection VC's drain, and
// the ACK that frees the source's window slot.
func (n *Network) onDeliver(p *pkt, attempt int, now sim.Cycle) {
	if p.Retransmits != attempt || p.state != stMoving {
		return
	}
	p.state = stDelivered
	n.inFlight--
	n.coll.Delivered(p.Flow, p.Size, int64(now-p.Created), now)
	// The ejection VC's recycle was scheduled at grant time (the
	// terminal's credit loop runs ahead of the tail's arrival).
	p.nxtBuf, p.nxtVC = nil, -1
	if n.mode == qos.PVC {
		dist := sim.Cycle(topology.Distance(p.Dst, p.Src))
		n.schedule(event{kind: evAck, p: p}, now+dist+n.cfg.QoS.AckDelay)
	} else {
		p.src.onAck(p)
	}
}
