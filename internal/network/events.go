package network

import (
	"math/bits"

	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// evKind enumerates the scheduled occurrences of the engine.
type evKind uint8

const (
	// evHead: a packet's head flit reaches its next buffer; it becomes
	// an arbitration candidate there.
	evHead evKind = iota
	// evDeliver: a packet's tail flit crosses the destination terminal
	// port; delivery completes.
	evDeliver
	// evRelease: a VC's tail flit has fully departed (plus credit
	// return time); the VC is reusable upstream.
	evRelease
	// evAck: the dedicated ACK network delivers a positive
	// acknowledgment to the source; the window slot frees.
	evAck
	// evNack: the ACK network reports a preemption; the source queues
	// the packet for retransmission.
	evNack
	// evInject: an externally scheduled packet generation comes due
	// (ScheduleInjection): the pending-injection record named by the
	// event's buf field is consumed and its packet generated. This is
	// how the closed-loop workload layer issues client requests and
	// server replies; making them events keeps idle-skip horizons exact.
	evInject
	// evFault: a fault window edge comes due (fault.go). The buf field
	// names the window; attempt 1 is the strike edge, 0 the heal edge.
	// Scheduled at Reset, so idle-skip horizons cover fault edges exactly.
	evFault
	// evRetry: a source-level delivery timeout fires (fault.go); the
	// attempt field carries the injection sequence the timer was armed
	// for, so reinjections supersede stale timers.
	evRetry
	// evWatchdog: the no-forward-progress watchdog checks in
	// (watchdog.go); it reschedules itself against the last progress
	// cycle and panics with a diagnostic report when the window lapses.
	evWatchdog
	// evProbe: a telemetry sampling tick comes due (probe.go). The
	// probe reschedules itself every SetProbe interval; riding the
	// event ring keeps idle-skip horizons exact, so an instrumented
	// run is bit-identical to an uninstrumented one with or without
	// fast-forwarding. The handler only reads engine state.
	evProbe
)

// event is one scheduled occurrence. Packet-borne events carry the attempt
// (retransmission count) and arena-slot generation they were scheduled
// for; a preemption bumps the packet's attempt and a recycle bumps the
// slot's generation, turning in-flight stale events into no-ops. The
// struct is 40 bytes and pointer-free — packets and buffers are named by
// handle/ID — so scheduling and firing copy five words with no write
// barriers, and the garbage collector never scans the ring's buckets.
type event struct {
	at  sim.Cycle
	seq uint64 // FIFO order among same-cycle events
	// p is the target packet's arena handle (noPkt for buffer events).
	p    pktH
	pgen uint32
	// buf is the release target's buffer ID.
	buf     int32
	gen     uint32
	attempt int32
	vc      int16
	kind    evKind
}

// The event queue is a calendar ring: every occurrence the engine
// schedules lands a small bounded distance ahead (router and wire
// pipeline delays, tail serialization, credit loops, ACK-network trips),
// so events live in per-cycle FIFO buckets indexed by cycle modulo
// ringSize, with a fixed occupancy bitmap locating the next non-empty
// bucket in a handful of word scans. Scheduling and firing are O(1) —
// the binary heap this replaces spent most of the low-load engine's time
// sifting — and determinism is untouched: bucket order is append order,
// which is exactly the (cycle, seq) order the heap produced.
//
// Two spillways keep the ring exact rather than merely fast:
//
//   - far holds the rare event scheduled >= ringSize cycles out (e.g. an
//     oversized configured AckDelay) in a min-heap, drained into the ring
//     as the clock approaches (drainFar inserts by seq, preserving FIFO
//     order among same-cycle events);
//   - late holds events scheduled at or before the current cycle (an
//     ACK/NACK with zero hop distance and zero configured delay, or one
//     scheduled from the arbitration phase after processEvents already
//     ran). The heap fired such an event on the next processEvents pass,
//     before anything of a later cycle; the late list reproduces that.
//
// ringSize is sized to the engine's scheduling horizon: the largest
// default-config delta is a release at tail departure plus the credit
// loop (~20 cycles on a MECS express channel), so 64 buckets cover every
// hot schedule while keeping the bucket headers and occupancy bitmap
// within a few cache lines. Oversized configured delays (a stress-test
// AckDelay, say) spill to the far heap and stay exact.
const (
	ringBits  = 6
	ringSize  = 1 << ringBits
	ringMask  = ringSize - 1
	ringWords = ringSize / 64
	// bucketCap pre-sizes each bucket (and the late list) so that
	// steady-state depth spikes land in existing capacity instead of
	// growing the slice (see the working-set capacities in arena.go).
	bucketCap = 32
)

type eventRing struct {
	buckets [ringSize][]event
	words   [ringWords]uint64 // bucket-occupancy bitmap
	late    []event
	far     eventHeap
	count   int    // pending events across buckets, late and far
	seq     uint64 // next schedule order stamp
}

// Len returns the number of pending events.
func (r *eventRing) Len() int { return r.count }

// reset clears every pending event while keeping the bucket, late-list
// and far-heap backing arrays for reuse (the Network.Reset path — a cell
// can end mid-simulation with events still scheduled).
func (r *eventRing) reset() {
	for i := range r.buckets {
		if r.buckets[i] == nil {
			r.buckets[i] = make([]event, 0, bucketCap)
		}
		r.buckets[i] = r.buckets[i][:0]
	}
	for i := range r.words {
		r.words[i] = 0
	}
	if r.late == nil {
		r.late = make([]event, 0, bucketCap)
	}
	r.late = r.late[:0]
	r.far.items = r.far.items[:0]
	r.count = 0
	r.seq = 0
}

// add files an event relative to the current cycle. The caller supplies
// now (every scheduling site already holds it), saving a clock load per
// event on the hottest write path of the engine.
func (r *eventRing) add(ev *event, now sim.Cycle) {
	r.count++
	delta := ev.at - now
	switch {
	case delta <= 0:
		r.late = append(r.late, *ev)
	case delta < ringSize:
		idx := int(uint64(ev.at) & ringMask)
		if len(r.buckets[idx]) == 0 {
			r.words[idx>>6] |= 1 << uint(idx&63)
		}
		r.buckets[idx] = append(r.buckets[idx], *ev)
	default:
		r.far.push(*ev)
	}
}

// dueNow reports in O(1) whether an event is due at or before now — the
// fast-fail for idle-wake attempts on busy cycles.
func (r *eventRing) dueNow(now sim.Cycle) bool {
	return len(r.late) > 0 || len(r.buckets[int(uint64(now)&ringMask)]) > 0
}

// nextAt reports the cycle of the earliest pending event. late events
// (at <= now) sort before everything; ring events all precede far events
// by construction (far holds only occurrences >= ringSize cycles out).
func (r *eventRing) nextAt(now sim.Cycle) (sim.Cycle, bool) {
	if r.count == 0 {
		return 0, false
	}
	if len(r.late) > 0 {
		return r.late[0].at, true
	}
	if at, ok := r.ringNext(now); ok {
		return at, true
	}
	if r.far.Len() > 0 {
		return r.far.items[0].at, true
	}
	return 0, false
}

// ringNext scans the occupancy bitmap for the first non-empty bucket at or
// after now, wrapping once around the ring.
func (r *eventRing) ringNext(now sim.Cycle) (sim.Cycle, bool) {
	return wheelNext(&r.words, now)
}

// drainFar moves far-future events whose cycle has come within the ring
// horizon into their buckets, inserting by seq so that same-cycle FIFO
// order is preserved.
func (r *eventRing) drainFar(now sim.Cycle) {
	for r.far.Len() > 0 && r.far.items[0].at-now < ringSize {
		ev := r.far.pop()
		idx := int(uint64(ev.at) & ringMask)
		b := append(r.buckets[idx], ev)
		for i := len(b) - 1; i > 0 && b[i-1].seq > ev.seq; i-- {
			b[i], b[i-1] = b[i-1], b[i]
		}
		r.buckets[idx] = b
		r.words[idx>>6] |= 1 << uint(idx&63)
	}
}

// popLate removes and returns the oldest late event.
func (r *eventRing) popLate() event {
	ev := r.late[0]
	copy(r.late, r.late[1:])
	r.late = r.late[:len(r.late)-1]
	r.count--
	return ev
}

// schedule enqueues an event at the given cycle. Callers targeting a
// packet stamp ev.pgen themselves (they already hold the slot pointer) so
// the event dies with the packet; now is the current cycle (every caller
// holds that too). The event travels by pointer and is copied exactly
// once, into its bucket.
func (n *Network) schedule(ev *event, at, now sim.Cycle) {
	ev.at = at
	ev.seq = n.events.seq
	n.events.seq++
	n.events.add(ev, now)
}

// processEvents fires every event due at or before now: carried-over late
// events first (their cycle already passed), then the current cycle's
// bucket in schedule order — picking up same-cycle events scheduled while
// firing — then anything a fired handler scheduled for this very cycle.
func (n *Network) processEvents(now sim.Cycle) {
	r := &n.events
	if r.count == 0 {
		return
	}
	if r.far.Len() > 0 {
		r.drainFar(now)
	}
	for len(r.late) > 0 {
		n.dispatch(r.popLate(), now)
	}
	idx := int(uint64(now) & ringMask)
	if b := r.buckets[idx]; len(b) > 0 {
		// The bucket cannot grow while being processed: a same-cycle
		// schedule has delta <= 0 and lands in late, and any other delta
		// maps to a different bucket (or to far), so iterating the
		// hoisted slice is safe.
		for i := 0; i < len(b); i++ {
			r.count--
			n.dispatch(b[i], now)
		}
		r.buckets[idx] = b[:0]
		r.words[idx>>6] &^= 1 << uint(idx&63)
	}
	for len(r.late) > 0 {
		n.dispatch(r.popLate(), now)
	}
}

// dispatch fires one event, unless the packet it targets has been
// recycled since it was scheduled. The target's arena slot is resolved
// once here and handed to the handler.
func (n *Network) dispatch(ev event, now sim.Cycle) {
	if ev.kind == evRelease {
		n.bufs[ev.buf].release(int32(ev.vc), ev.gen)
		return
	}
	if ev.kind == evInject {
		rec := n.injPool[ev.buf]
		n.injFree = append(n.injFree, ev.buf)
		n.generateScheduled(rec, now)
		return
	}
	if ev.kind == evFault {
		n.onFaultEdge(ev.buf, ev.attempt == 1, now)
		return
	}
	if ev.kind == evWatchdog {
		n.onWatchdog(now)
		return
	}
	if ev.kind == evProbe {
		n.onProbe(now)
		return
	}
	p := &n.arena[ev.p]
	if p.gen != ev.pgen {
		return // the packet was recycled; its slot moved on
	}
	switch ev.kind {
	case evHead:
		n.onHeadArrival(ev.p, p, int(ev.attempt), now)
	case evDeliver:
		n.onDeliver(ev.p, p, int(ev.attempt), now)
	case evAck:
		n.onAck(&n.srcs[p.srcIdx])
		n.recycle(ev.p)
	case evNack:
		n.onNack(&n.srcs[p.srcIdx], ev.p)
	case evRetry:
		n.onRetryTimeout(ev.p, p, ev.attempt, now)
	}
}

// relRec is one pending virtual-channel release in the release wheel:
// the (buffer, VC, generation) triple an evRelease would carry, without
// the 40-byte event envelope. Releases need no sequence stamp because
// they commute — see relWheel.
type relRec struct {
	buf int32
	gen uint32
	vc  int16
}

// relWheel is a dedicated calendar wheel for VC releases, the most
// frequent event class of the engine (one per hop per packet for the
// upstream credit loop, plus one per delivery for the ejection VC's
// drain). Releases are special among events: firing one touches only its
// own VC's state (owner, free bit, occupancy, generation), which no event
// handler reads — VC state is consulted only by the arbitration phase,
// after the whole event phase of the cycle — and two live releases never
// target the same (buffer, VC, generation). Every release therefore
// commutes with every other same-cycle occurrence, so the wheel drops the
// FIFO sequence stamp, the late list and the per-event dispatch switch,
// firing its whole due bucket with three stores per record. Scheduling
// outside the wheel's horizon (or at the current cycle, after the event
// phase already ran) falls back to an ordinary evRelease, preserving the
// historical semantics exactly where the wheel's assumptions end. Results
// are bit-identical either way; only the bookkeeping is cheaper.
type relWheel struct {
	buckets [ringSize][]relRec
	words   [ringWords]uint64 // bucket-occupancy bitmap
	count   int
}

// reset clears pending releases, keeping bucket backing arrays.
func (w *relWheel) reset() {
	for i := range w.buckets {
		if w.buckets[i] == nil {
			w.buckets[i] = make([]relRec, 0, bucketCap)
		}
		w.buckets[i] = w.buckets[i][:0]
	}
	for i := range w.words {
		w.words[i] = 0
	}
	w.count = 0
}

// add files a release due at cycle at; the caller guarantees
// 0 < at-now < ringSize.
func (w *relWheel) add(rec relRec, at sim.Cycle) {
	idx := int(uint64(at) & ringMask)
	if len(w.buckets[idx]) == 0 {
		w.words[idx>>6] |= 1 << uint(idx&63)
	}
	w.buckets[idx] = append(w.buckets[idx], rec)
	w.count++
}

// dueNow reports whether a release is due at now.
func (w *relWheel) dueNow(now sim.Cycle) bool {
	return len(w.buckets[int(uint64(now)&ringMask)]) > 0
}

// nextAt reports the cycle of the earliest pending release (callers check
// count first). Same bitmap scan as eventRing.ringNext.
func (w *relWheel) nextAt(now sim.Cycle) (sim.Cycle, bool) {
	return wheelNext(&w.words, now)
}

// wheelNext scans a wheel-occupancy bitmap for the first non-empty bucket
// at or after now, wrapping once around the ring (the shared core of every
// calendar wheel's nextAt).
func wheelNext(words *[ringWords]uint64, now sim.Cycle) (sim.Cycle, bool) {
	start := int(uint64(now) & ringMask)
	if v := words[start>>6] >> uint(start&63); v != 0 {
		return now + sim.Cycle(bits.TrailingZeros64(v)), true
	}
	for k := 1; k <= ringWords; k++ {
		wi := (start>>6 + k) & (ringWords - 1)
		if v := words[wi]; v != 0 {
			idx := wi<<6 + bits.TrailingZeros64(v)
			return now + sim.Cycle((idx-start)&ringMask), true
		}
	}
	return 0, false
}

// pktRec is one pending packet-timed occurrence — a head arrival, a
// delivery or an ACK — stripped to the fields its handler needs: the arena
// handle, the slot generation it was scheduled against (a recycle turns
// the record into a no-op, exactly like the ring's pgen guard) and the
// retransmission attempt.
type pktRec struct {
	p       pktH
	pgen    uint32
	attempt int32
}

// pktWheel is a calendar wheel for one dense packet-event kind. The engine
// schedules almost everything a small bounded distance ahead, so the three
// per-packet event kinds that dominate the ring's traffic — evHead (one
// per hop), evDeliver and evAck (one each per packet) — get wheels of
// 12-byte records instead of 40-byte ring events.
//
// Ordering is preserved where it is observable:
//
//   - Records of the SAME kind fire in schedule order: buckets keep append
//     order, and every record in a bucket was appended in schedule (seq)
//     order. Delivery fingerprints — a hash over deliveries in firing
//     order — are therefore untouched.
//   - Between a wheel record and a ring event due the same cycle, the ring
//     fires first (Step runs processEvents before the wheel phases). Ring
//     residents are either system events scheduled long ago (fault edges,
//     watchdog checks, retry timers — whose sequence stamps are older than
//     any wheel-horizon record's, so "ring first" reproduces the dominant
//     historical order) or far-horizon spills of these same kinds, drained
//     into the ring before their cycle comes (scheduled earlier than any
//     same-cycle wheel record by at least the horizon, hence also first in
//     the historical order).
//   - Between wheel kinds due the same cycle the engine fixes the phase
//     order delivers -> ACKs -> heads. The handlers touch disjoint state
//     (a deliver writes its own packet, statistics and the source window
//     path; an ACK frees a window slot and recycles an arena slot; a head
//     appends its own packet to an output port's candidate list), so the
//     phase order is unobservable except through the arena free-list
//     order, which it fixes deterministically.
type pktWheel struct {
	buckets [ringSize][]pktRec
	words   [ringWords]uint64 // bucket-occupancy bitmap
	count   int
}

// reset clears pending records, keeping bucket backing arrays.
func (w *pktWheel) reset() {
	for i := range w.buckets {
		if w.buckets[i] == nil {
			w.buckets[i] = make([]pktRec, 0, bucketCap)
		}
		w.buckets[i] = w.buckets[i][:0]
	}
	for i := range w.words {
		w.words[i] = 0
	}
	w.count = 0
}

// add files a record due at cycle at; the caller guarantees
// 0 < at-now < ringSize.
func (w *pktWheel) add(rec pktRec, at sim.Cycle) {
	idx := int(uint64(at) & ringMask)
	if len(w.buckets[idx]) == 0 {
		w.words[idx>>6] |= 1 << uint(idx&63)
	}
	w.buckets[idx] = append(w.buckets[idx], rec)
	w.count++
}

// nextAt reports the cycle of the earliest pending record (callers check
// count first).
func (w *pktWheel) nextAt(now sim.Cycle) (sim.Cycle, bool) {
	return wheelNext(&w.words, now)
}

// scheduleHead enqueues a head-arrival occurrence: the wheel in the common
// case, an ordinary ring event at the current cycle or past the horizon.
func (n *Network) scheduleHead(h pktH, pgen uint32, attempt int32, at, now sim.Cycle) {
	if d := at - now; d > 0 && d < ringSize {
		n.headw.add(pktRec{p: h, pgen: pgen, attempt: attempt}, at)
		return
	}
	n.schedule(&event{kind: evHead, p: h, pgen: pgen, attempt: attempt}, at, now)
}

// scheduleDeliver enqueues a delivery occurrence; fallback as scheduleHead.
func (n *Network) scheduleDeliver(h pktH, pgen uint32, attempt int32, at, now sim.Cycle) {
	if d := at - now; d > 0 && d < ringSize {
		n.delivw.add(pktRec{p: h, pgen: pgen, attempt: attempt}, at)
		return
	}
	n.schedule(&event{kind: evDeliver, p: h, pgen: pgen, attempt: attempt}, at, now)
}

// scheduleAck enqueues an ACK-network arrival. A zero-distance,
// zero-AckDelay ACK (delta 0) fires inline — it is due this very cycle,
// and the deliver phase it is scheduled from precedes the ACK phase.
func (n *Network) scheduleAck(h pktH, pgen uint32, at, now sim.Cycle) {
	d := at - now
	if d > 0 && d < ringSize {
		n.ackw.add(pktRec{p: h, pgen: pgen}, at)
		return
	}
	if d <= 0 {
		n.onAck(&n.srcs[n.arena[h].srcIdx])
		n.recycle(h)
		return
	}
	n.schedule(&event{kind: evAck, p: h, pgen: pgen}, at, now)
}

// fireDelivers completes every delivery due this cycle. A deliver handler
// schedules only future ACKs (or fires a degenerate zero-delay ACK
// inline), never another deliver, so the bucket cannot grow while firing.
func (n *Network) fireDelivers(now sim.Cycle) {
	w := &n.delivw
	idx := int(uint64(now) & ringMask)
	b := w.buckets[idx]
	if len(b) == 0 {
		return
	}
	for i := 0; i < len(b); i++ {
		p := &n.arena[b[i].p]
		if p.gen == b[i].pgen {
			n.onDeliver(b[i].p, p, int(b[i].attempt), now)
		}
	}
	w.count -= len(b)
	w.buckets[idx] = b[:0]
	w.words[idx>>6] &^= 1 << uint(idx&63)
}

// fireAcks frees the window slot and arena slot of every ACK due this
// cycle. ACK handlers schedule nothing, so the bucket cannot grow.
func (n *Network) fireAcks(now sim.Cycle) {
	w := &n.ackw
	idx := int(uint64(now) & ringMask)
	b := w.buckets[idx]
	if len(b) == 0 {
		return
	}
	for i := 0; i < len(b); i++ {
		p := &n.arena[b[i].p]
		if p.gen == b[i].pgen {
			n.onAck(&n.srcs[p.srcIdx])
			n.recycle(b[i].p)
		}
	}
	w.count -= len(b)
	w.buckets[idx] = b[:0]
	w.words[idx>>6] &^= 1 << uint(idx&63)
}

// fireHeads registers every head arrival due this cycle. Head handlers
// schedule nothing (the packet becomes an arbitration candidate; its next
// occurrence is scheduled at grant), so the bucket cannot grow.
func (n *Network) fireHeads(now sim.Cycle) {
	w := &n.headw
	idx := int(uint64(now) & ringMask)
	b := w.buckets[idx]
	if len(b) == 0 {
		return
	}
	for i := 0; i < len(b); i++ {
		p := &n.arena[b[i].p]
		if p.gen == b[i].pgen {
			n.onHeadArrival(b[i].p, p, int(b[i].attempt), now)
		}
	}
	w.count -= len(b)
	w.buckets[idx] = b[:0]
	w.words[idx>>6] &^= 1 << uint(idx&63)
}

// scheduleRelease enqueues a VC release. The near-future common case rides
// the release wheel; anything at the current cycle or beyond the wheel's
// horizon falls back to an ordinary evRelease event.
func (n *Network) scheduleRelease(buf int32, vc int16, gen uint32, at, now sim.Cycle) {
	if d := at - now; d > 0 && d < ringSize {
		n.relw.add(relRec{buf: buf, gen: gen, vc: vc}, at)
		return
	}
	n.schedule(&event{kind: evRelease, buf: buf, vc: vc, gen: gen}, at, now)
}

// fireReleases frees every VC whose release is due this cycle. Called by
// Step ahead of processEvents; position within the event phase is
// immaterial because releases commute (see relWheel). A release can never
// schedule further work, so the bucket cannot grow while firing.
func (n *Network) fireReleases(now sim.Cycle) {
	w := &n.relw
	idx := int(uint64(now) & ringMask)
	b := w.buckets[idx]
	if len(b) == 0 {
		return
	}
	for i := range b {
		n.bufs[b[i].buf].release(int32(b[i].vc), b[i].gen)
	}
	w.count -= len(b)
	w.buckets[idx] = b[:0]
	w.words[idx>>6] &^= 1 << uint(idx&63)
}

// eventHeap orders the calendar ring's far-future spillway on
// (cycle, seq).
type eventHeap = minHeap[event]

// lessThan orders events by cycle, then schedule order.
func (e event) lessThan(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// onHeadArrival moves a packet into the buffer its head flit just reached
// and registers it as an arbitration candidate for its next leg.
func (n *Network) onHeadArrival(h pktH, p *pkt, attempt int, now sim.Cycle) {
	if p.Retransmits != attempt || p.state != stMoving {
		return // preempted while in flight
	}
	leg := &p.legs[p.Hop()]
	p.curBuf, p.curVC = p.nxtBuf, p.nxtVC
	p.nxtBuf, p.nxtVC = noBuf, -1
	p.creditDelay = int32(leg.WireDelay)
	p.weightedHops += int32(leg.HopWeight)
	n.coll.HopTraversed(leg.HopWeight)
	p.AdvanceHop()
	p.state = stWaiting
	p.enq = now
	n.register(&n.ports[p.legs[p.Hop()].Out], h)
}

// onDeliver completes a delivery: statistics, the ejection VC's drain, and
// the ACK that frees the source's window slot.
func (n *Network) onDeliver(h pktH, p *pkt, attempt int, now sim.Cycle) {
	if p.Retransmits != attempt || p.state != stMoving {
		return
	}
	p.state = stDelivered
	n.inFlight--
	n.lastProgress = now
	n.coll.Delivered(p.Flow, p.Size, int64(now-p.Created), now)
	if p.timeoutRetries > 0 {
		n.coll.Recovered(int64(now - p.Created))
	}
	if n.deliveryHook != nil {
		// Value copy: the hook may trigger recycling-adjacent work (it
		// runs before the ACK that frees this slot) and must never hold
		// the arena slot itself.
		n.deliveryHook(Delivery{
			ID: p.ID, Parent: p.Parent, Flow: p.Flow, Src: p.Src, Dst: p.Dst,
			Class: p.Class, Kind: p.Kind, SrcIdx: p.srcIdx,
			Created: p.Created, Injected: p.Injected, At: now,
		})
	}
	// The ejection VC's release was scheduled at grant time (the
	// terminal's credit loop runs ahead of the tail's arrival), at
	// grant+Size+1 — and with every ejection RouterDelay >= 2, this
	// deliver fires no earlier than that; when they coincide the
	// release still wins, because Step runs the release phase before
	// the deliver phase. So the VC's ownership is always cleared
	// before the earliest possible recycle of this slot (the ACK,
	// scheduled just below, fires in a phase after delivers), and the
	// preemption logic can never price a drained slot off a reused
	// slot. Do NOT clear the ownership here instead: on MECS the
	// release fires a cycle before this deliver and the VC may already
	// belong to the next packet.
	p.nxtBuf, p.nxtVC = noBuf, -1
	if n.mode == qos.PVC {
		dist := sim.Cycle(topology.Distance(p.Dst, p.Src))
		n.scheduleAck(h, p.gen, now+dist+n.cfg.QoS.AckDelay, now)
	} else {
		n.onAck(&n.srcs[p.srcIdx])
		n.recycle(h)
	}
}
