package network

import (
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// evKind enumerates the scheduled occurrences of the engine.
type evKind uint8

const (
	// evHead: a packet's head flit reaches its next buffer; it becomes
	// an arbitration candidate there.
	evHead evKind = iota
	// evDeliver: a packet's tail flit crosses the destination terminal
	// port; delivery completes.
	evDeliver
	// evRelease: a VC's tail flit has fully departed (plus credit
	// return time); the VC is reusable upstream.
	evRelease
	// evAck: the dedicated ACK network delivers a positive
	// acknowledgment to the source; the window slot frees.
	evAck
	// evNack: the ACK network reports a preemption; the source queues
	// the packet for retransmission.
	evNack
)

// event is one scheduled occurrence. Packet-borne events carry the attempt
// (retransmission count) and wrapper generation they were scheduled for; a
// preemption bumps the packet's attempt and a recycle bumps the wrapper's
// generation, turning in-flight stale events into no-ops.
type event struct {
	at      sim.Cycle
	seq     uint64 // FIFO order among same-cycle events
	kind    evKind
	p       *pkt
	pgen    uint32
	attempt int
	// Release target.
	buf *inBuf
	vc  int
	gen uint32
}

// eventHeap is a min-heap on (cycle, seq), giving deterministic,
// insertion-ordered processing within a cycle. The sift operations are
// written out against the typed slice rather than container/heap: the
// standard interface converts every pushed event to an interface value,
// which allocates, and scheduling is a per-packet-per-hop hot path.
type eventHeap struct {
	items []event
	seq   uint64
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	if h.items[i].at != h.items[j].at {
		return h.items[i].at < h.items[j].at
	}
	return h.items[i].seq < h.items[j].seq
}

func (h *eventHeap) push(ev event) {
	h.items = append(h.items, ev)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = event{}
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		child := l
		if r < last && h.less(r, l) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h.items[i], h.items[child] = h.items[child], h.items[i]
		i = child
	}
	return top
}

// schedule enqueues an event at the given cycle, stamping the generation of
// the packet it targets (if any) so the event dies with the packet.
func (n *Network) schedule(ev event, at sim.Cycle) {
	ev.at = at
	ev.seq = n.events.seq
	n.events.seq++
	if ev.p != nil {
		ev.pgen = ev.p.gen
	}
	n.events.push(ev)
}

// processEvents fires every event due at or before now.
func (n *Network) processEvents(now sim.Cycle) {
	for n.events.Len() > 0 && n.events.items[0].at <= now {
		ev := n.events.pop()
		if ev.p != nil && ev.p.gen != ev.pgen {
			continue // the packet was recycled; its wrapper moved on
		}
		switch ev.kind {
		case evRelease:
			ev.buf.release(ev.vc, ev.gen)
		case evHead:
			n.onHeadArrival(ev.p, ev.attempt, now)
		case evDeliver:
			n.onDeliver(ev.p, ev.attempt, now)
		case evAck:
			ev.p.src.onAck(ev.p)
			n.recycle(ev.p)
		case evNack:
			ev.p.src.onNack(ev.p)
		}
	}
}

// onHeadArrival moves a packet into the buffer its head flit just reached
// and registers it as an arbitration candidate for its next leg.
func (n *Network) onHeadArrival(p *pkt, attempt int, now sim.Cycle) {
	if p.Retransmits != attempt || p.state != stMoving {
		return // preempted while in flight
	}
	leg := p.legs[p.Hop()]
	p.curBuf, p.curVC = p.nxtBuf, p.nxtVC
	p.nxtBuf, p.nxtVC = nil, -1
	p.creditDelay = leg.WireDelay
	p.weightedHops += leg.HopWeight
	n.coll.HopTraversed(leg.HopWeight)
	p.AdvanceHop()
	p.state = stWaiting
	p.enq = now
	n.ports[p.legs[p.Hop()].Out].register(p)
}

// onDeliver completes a delivery: statistics, the ejection VC's drain, and
// the ACK that frees the source's window slot.
func (n *Network) onDeliver(p *pkt, attempt int, now sim.Cycle) {
	if p.Retransmits != attempt || p.state != stMoving {
		return
	}
	p.state = stDelivered
	n.inFlight--
	n.coll.Delivered(p.Flow, p.Size, int64(now-p.Created), now)
	// The ejection VC's release was scheduled at grant time (the
	// terminal's credit loop runs ahead of the tail's arrival), at
	// grant+Size+1 — and with every ejection RouterDelay >= 2, this
	// deliver fires no earlier than that, with the release next in
	// same-cycle seq order when they coincide. So the VC's ownership is
	// always cleared before the earliest possible recycle of this
	// wrapper (the ACK, scheduled just below with a later seq), and the
	// preemption logic can never price a drained slot off a reused
	// wrapper. Do NOT clear the ownership here instead: on MECS the
	// release fires a cycle before this deliver and the VC may already
	// belong to the next packet.
	p.nxtBuf, p.nxtVC = nil, -1
	if n.mode == qos.PVC {
		dist := sim.Cycle(topology.Distance(p.Dst, p.Src))
		n.schedule(event{kind: evAck, p: p}, now+dist+n.cfg.QoS.AckDelay)
	} else {
		p.src.onAck(p)
		n.recycle(p)
	}
}
