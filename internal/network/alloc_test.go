package network

import (
	"testing"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// TestStepAllocationFreeAtSteadyState pins the engine's allocation
// behaviour: at steady state Step must allocate exactly nothing — not
// "almost nothing". The historical residual (~0.0015 allocs/step in the
// pre-arena engine) was amortized append-doubling: stochastic depth
// spikes pushing a source queue, an event bucket or a port's candidate
// list past its previous high-water mark, a trickle that never fully
// decayed. The arena engine pre-sizes every reusable container to its
// sub-saturation working set (arenaCap/waitersCap/srcQueueCap/bucketCap
// in arena.go and events.go), so spikes land in existing capacity and
// the steady-state allocation count is exactly zero; the load here sits
// below every topology's saturation point, because an oversaturated
// queue grows without bound by definition (offered load, not an engine
// leak).
func TestStepAllocationFreeAtSteadyState(t *testing.T) {
	for _, kind := range topology.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			w := traffic.UniformRandom(topology.ColumnNodes, 0.04)
			n := MustNew(Config{
				Kind:     kind,
				QoS:      qos.DefaultConfig(w.TotalFlows()),
				Workload: w,
				Seed:     3,
			})
			n.Run(30_000)
			if avg := testing.AllocsPerRun(5_000, n.Step); avg != 0 {
				t.Errorf("%v: %v allocs per Step at steady state, want exactly 0", kind, avg)
			}
		})
	}
}

// TestStepAllocationFreeWithDeliveryHook pins the workload-attachment
// contract: unlike the diagnostic preempt/grant hooks (which suppress
// slot recycling), a delivery hook is a production surface — installing
// one must leave the steady-state allocation count at exactly zero. The
// hook here does real work (field reads into package-level sinks) so the
// call cannot be optimized away.
func TestStepAllocationFreeWithDeliveryHook(t *testing.T) {
	var deliveries int64
	var lastFlow noc.FlowID
	w := traffic.UniformRandom(topology.ColumnNodes, 0.04)
	n := MustNew(Config{
		Kind:     topology.MECS,
		QoS:      qos.DefaultConfig(w.TotalFlows()),
		Workload: w,
		Seed:     3,
	})
	n.SetDeliveryHook(func(d Delivery) {
		deliveries++
		lastFlow = d.Flow
	})
	n.Run(30_000)
	before := deliveries
	if avg := testing.AllocsPerRun(5_000, n.Step); avg != 0 {
		t.Errorf("%v allocs per Step with a delivery hook installed, want exactly 0", avg)
	}
	if deliveries == before {
		t.Fatal("hook never fired during the measured window")
	}
	_ = lastFlow
	// The free list must have been exercised: a delivery hook does not
	// suppress recycling the way diagnostic hooks do.
	if len(n.free) == 0 {
		t.Error("delivery hook suppressed packet recycling")
	}
}

// TestResetClearsWorkloadAttachments pins the per-cell hygiene contract:
// a Reset network carries no delivery/generation hooks and no pending
// scheduled injections from its previous cell.
func TestResetClearsWorkloadAttachments(t *testing.T) {
	w := traffic.UniformRandom(topology.ColumnNodes, 0.03)
	cfg := Config{Kind: topology.MeshX1, QoS: qos.DefaultConfig(w.TotalFlows()), Workload: w, Seed: 1}
	n := MustNew(cfg)
	fired := false
	n.SetDeliveryHook(func(Delivery) { fired = true })
	n.SetGenHook(func(traffic.TraceRecord) { fired = true })
	n.ScheduleInjection(0, -1, 1, noc.ClassRequest, noc.KindRequest, 0, 100)
	if err := n.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	n.Run(5_000)
	if fired {
		t.Error("a workload hook survived Reset")
	}
	if len(n.injFree) != 0 || len(n.injPool) != 0 {
		t.Errorf("pending injections survived Reset: pool %d free %d", len(n.injPool), len(n.injFree))
	}
}

// TestRecycledPacketsAreIndistinguishable runs the same simulation with
// recycling enabled and disabled (hooks suppress the free list) and
// requires identical measurements: reusing a wrapper must never leak
// state from its previous life into the simulation.
func TestRecycledPacketsAreIndistinguishable(t *testing.T) {
	build := func(hooked bool) *Network {
		w := traffic.Workload1(topology.ColumnNodes, 20_000)
		cfg := qos.DefaultConfig(w.TotalFlows())
		cfg.MarginClasses = 8 // preemption-heavy: exercises retransmission reuse
		n := MustNew(Config{Kind: topology.MECS, QoS: cfg, Workload: w, Seed: 21})
		if hooked {
			n.preemptHook = func(*inBuf, pktH) {} // disables the free list
		}
		return n
	}
	recycled, pristine := build(false), build(true)
	recycled.RunUntilDrained(300_000)
	pristine.RunUntilDrained(300_000)
	if len(recycled.free) == 0 {
		t.Fatal("test expected the free stack to be exercised")
	}
	if len(pristine.free) != 0 {
		t.Fatal("hooks should have suppressed recycling")
	}
	rs, ps := recycled.Stats(), pristine.Stats()
	if rs.TotalDelivered != ps.TotalDelivered ||
		rs.TotalLatency != ps.TotalLatency ||
		rs.PreemptionEvents != ps.PreemptionEvents ||
		rs.TotalHops != ps.TotalHops ||
		rs.LastDelivery != ps.LastDelivery {
		t.Errorf("recycling changed results: delivered %d/%d latency %d/%d preempt %d/%d hops %d/%d last %d/%d",
			rs.TotalDelivered, ps.TotalDelivered, rs.TotalLatency, ps.TotalLatency,
			rs.PreemptionEvents, ps.PreemptionEvents, rs.TotalHops, ps.TotalHops,
			rs.LastDelivery, ps.LastDelivery)
	}
}
