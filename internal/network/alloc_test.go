package network

import (
	"testing"

	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// TestStepAllocationFreeAtSteadyState pins the engine's allocation
// behaviour: at steady state Step must allocate exactly nothing — not
// "almost nothing". The historical residual (~0.0015 allocs/step in the
// pre-arena engine) was amortized append-doubling: stochastic depth
// spikes pushing a source queue, an event bucket or a port's candidate
// list past its previous high-water mark, a trickle that never fully
// decayed. The arena engine pre-sizes every reusable container to its
// sub-saturation working set (arenaCap/waitersCap/srcQueueCap/bucketCap
// in arena.go and events.go), so spikes land in existing capacity and
// the steady-state allocation count is exactly zero; the load here sits
// below every topology's saturation point, because an oversaturated
// queue grows without bound by definition (offered load, not an engine
// leak).
func TestStepAllocationFreeAtSteadyState(t *testing.T) {
	for _, kind := range topology.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			w := traffic.UniformRandom(topology.ColumnNodes, 0.04)
			n := MustNew(Config{
				Kind:     kind,
				QoS:      qos.DefaultConfig(w.TotalFlows()),
				Workload: w,
				Seed:     3,
			})
			n.Run(30_000)
			if avg := testing.AllocsPerRun(5_000, n.Step); avg != 0 {
				t.Errorf("%v: %v allocs per Step at steady state, want exactly 0", kind, avg)
			}
		})
	}
}

// TestRecycledPacketsAreIndistinguishable runs the same simulation with
// recycling enabled and disabled (hooks suppress the free list) and
// requires identical measurements: reusing a wrapper must never leak
// state from its previous life into the simulation.
func TestRecycledPacketsAreIndistinguishable(t *testing.T) {
	build := func(hooked bool) *Network {
		w := traffic.Workload1(topology.ColumnNodes, 20_000)
		cfg := qos.DefaultConfig(w.TotalFlows())
		cfg.MarginClasses = 8 // preemption-heavy: exercises retransmission reuse
		n := MustNew(Config{Kind: topology.MECS, QoS: cfg, Workload: w, Seed: 21})
		if hooked {
			n.preemptHook = func(*inBuf, pktH) {} // disables the free list
		}
		return n
	}
	recycled, pristine := build(false), build(true)
	recycled.RunUntilDrained(300_000)
	pristine.RunUntilDrained(300_000)
	if len(recycled.free) == 0 {
		t.Fatal("test expected the free stack to be exercised")
	}
	if len(pristine.free) != 0 {
		t.Fatal("hooks should have suppressed recycling")
	}
	rs, ps := recycled.Stats(), pristine.Stats()
	if rs.TotalDelivered != ps.TotalDelivered ||
		rs.TotalLatency != ps.TotalLatency ||
		rs.PreemptionEvents != ps.PreemptionEvents ||
		rs.TotalHops != ps.TotalHops ||
		rs.LastDelivery != ps.LastDelivery {
		t.Errorf("recycling changed results: delivered %d/%d latency %d/%d preempt %d/%d hops %d/%d last %d/%d",
			rs.TotalDelivered, ps.TotalDelivered, rs.TotalLatency, ps.TotalLatency,
			rs.PreemptionEvents, ps.PreemptionEvents, rs.TotalHops, ps.TotalHops,
			rs.LastDelivery, ps.LastDelivery)
	}
}
