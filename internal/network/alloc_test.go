package network

import (
	"testing"

	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// TestStepAllocationFreeAtSteadyState pins the engine's allocation
// behaviour: once the packet free list, event heap, arbitration scratch
// buffers and source queues have grown to their working set, Step must not
// allocate. The warmup run is long enough for the first ACKed packets to
// seed the free list and for every amortized buffer to reach capacity;
// the load sits below every topology's saturation point so source queues
// stay bounded (an oversaturated queue grows forever by definition, which
// is offered load, not an engine leak).
func TestStepAllocationFreeAtSteadyState(t *testing.T) {
	for _, kind := range topology.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			w := traffic.UniformRandom(topology.ColumnNodes, 0.04)
			n := MustNew(Config{
				Kind:     kind,
				QoS:      qos.DefaultConfig(w.TotalFlows()),
				Workload: w,
				Seed:     3,
			})
			n.Run(30_000)
			if avg := testing.AllocsPerRun(5_000, n.Step); avg > 0.01 {
				t.Errorf("%v: %.3f allocs per Step at steady state, want 0", kind, avg)
			}
		})
	}
}

// TestRecycledPacketsAreIndistinguishable runs the same simulation with
// recycling enabled and disabled (hooks suppress the free list) and
// requires identical measurements: reusing a wrapper must never leak
// state from its previous life into the simulation.
func TestRecycledPacketsAreIndistinguishable(t *testing.T) {
	build := func(hooked bool) *Network {
		w := traffic.Workload1(topology.ColumnNodes, 20_000)
		cfg := qos.DefaultConfig(w.TotalFlows())
		cfg.MarginClasses = 8 // preemption-heavy: exercises retransmission reuse
		n := MustNew(Config{Kind: topology.MECS, QoS: cfg, Workload: w, Seed: 21})
		if hooked {
			n.preemptHook = func(*inBuf, *pkt) {} // disables the free list
		}
		return n
	}
	recycled, pristine := build(false), build(true)
	recycled.RunUntilDrained(300_000)
	pristine.RunUntilDrained(300_000)
	if len(recycled.pktFree) == 0 {
		t.Fatal("test expected the free list to be exercised")
	}
	if len(pristine.pktFree) != 0 {
		t.Fatal("hooks should have suppressed recycling")
	}
	rs, ps := recycled.Stats(), pristine.Stats()
	if rs.TotalDelivered != ps.TotalDelivered ||
		rs.TotalLatency != ps.TotalLatency ||
		rs.PreemptionEvents != ps.PreemptionEvents ||
		rs.TotalHops != ps.TotalHops ||
		rs.LastDelivery != ps.LastDelivery {
		t.Errorf("recycling changed results: delivered %d/%d latency %d/%d preempt %d/%d hops %d/%d last %d/%d",
			rs.TotalDelivered, ps.TotalDelivered, rs.TotalLatency, ps.TotalLatency,
			rs.PreemptionEvents, ps.PreemptionEvents, rs.TotalHops, ps.TotalHops,
			rs.LastDelivery, ps.LastDelivery)
	}
}
