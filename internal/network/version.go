package network

// buildVersion is the engine version stamp, overridden at build time via
//
//	go build -ldflags "-X tanoq/internal/network.buildVersion=$(git describe --always --dirty)"
//
// (the Makefile's build target does exactly this). Plain `go build` and
// `go run` report "dev". The stamp is part of every content-addressed
// result-cache key (internal/store via internal/scenario), rides the
// version-2 trace header and BENCH_*.json provenance, and is printed by
// `noctool version` — any engine change that ships under a new stamp
// invalidates cached results rather than silently serving stale rows.
var buildVersion = "dev"

// EngineVersion returns the engine's build version stamp ("dev" for
// unstamped builds).
func EngineVersion() string { return buildVersion }
