package network

import (
	"reflect"
	"testing"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// These tests pin the PR's headline contract: idle-cycle fast-forwarding
// is provably mechanical. With skipping force-disabled the engine ticks
// through every cycle; with it enabled the clock jumps over windows the
// engine proves empty. Every observable — deliveries, latencies,
// preemptions, retransmits, per-flow flit counts, frame flushes, final
// clock — must be bit-identical between the two, across all five
// topologies and all three QoS modes.

// skipFingerprint captures every observable of one finished simulation.
type skipFingerprint struct {
	delivered    int64
	latency      int64
	injected     int64
	retransmits  int64
	preemptions  int64
	wastedHops   int64
	totalHops    int64
	retries      int64
	drops        int64
	faultDrops   int64
	recovered    int64
	lastDelivery sim.Cycle
	frames       int
	clock        sim.Cycle
	flitsByFlow  []int64
}

func fingerprint(n *Network) skipFingerprint {
	st := n.Stats()
	return skipFingerprint{
		delivered:    st.TotalDelivered,
		latency:      st.TotalLatency,
		injected:     st.InjectedPackets,
		retransmits:  st.Retransmits,
		preemptions:  st.PreemptionEvents,
		wastedHops:   st.WastedHops,
		totalHops:    st.TotalHops,
		retries:      st.TotalRetries,
		drops:        st.TotalDropped,
		faultDrops:   st.FaultDrops,
		recovered:    st.RecoveredPackets,
		lastDelivery: st.LastDelivery,
		frames:       n.Frames(),
		clock:        n.Now(),
	}
}

func equalFingerprints(a, b skipFingerprint) bool {
	return reflect.DeepEqual(a, b)
}

// TestIdleSkipMechanicallyEquivalent runs a low-load finite workload —
// the regime where nearly every cycle is skippable — through
// WarmupAndMeasure plus a drain, for every topology x QoS mode, and
// requires identical fingerprints with skipping on and off.
func TestIdleSkipMechanicallyEquivalent(t *testing.T) {
	for _, kind := range topology.Kinds() {
		for _, mode := range []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS} {
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				run := func(disable bool) skipFingerprint {
					w := traffic.UniformRandom(topology.ColumnNodes, 0.02).WithStop(9_000)
					cfg := qos.DefaultConfig(w.TotalFlows())
					cfg.Mode = mode
					n := MustNew(Config{
						Kind: kind, QoS: cfg, Workload: w, Seed: 77,
						DisableIdleSkip: disable,
					})
					n.WarmupAndMeasure(2_000, 4_000)
					completion, drained := n.RunUntilDrained(120_000)
					if !drained {
						t.Fatalf("did not drain (in flight %d)", n.InFlight())
					}
					fp := fingerprint(n)
					fp.flitsByFlow = n.Stats().FlitsByFlow()
					if completion != fp.lastDelivery {
						t.Fatalf("completion %d != last delivery %d", completion, fp.lastDelivery)
					}
					return fp
				}
				ticked, skipped := run(true), run(false)
				if !equalFingerprints(ticked, skipped) {
					t.Errorf("skipping changed results:\nticked:  %+v\nskipped: %+v", ticked, skipped)
				}
			})
		}
	}
}

// TestIdleSkipEquivalentUnderPreemptionPressure repeats the equivalence
// check in the preemption-heavy regime (adversarial workload, eager
// margin), where retransmissions, NACK timing and quota state are all in
// play.
func TestIdleSkipEquivalentUnderPreemptionPressure(t *testing.T) {
	run := func(disable bool) skipFingerprint {
		w := traffic.Workload1(topology.ColumnNodes, 25_000)
		cfg := qos.DefaultConfig(w.TotalFlows())
		cfg.MarginClasses = 8
		n := MustNew(Config{
			Kind: topology.MECS, QoS: cfg, Workload: w, Seed: 21,
			DisableIdleSkip: disable,
		})
		if _, drained := n.RunUntilDrained(400_000); !drained {
			t.Fatal("did not drain")
		}
		fp := fingerprint(n)
		fp.flitsByFlow = n.Stats().FlitsByFlow()
		return fp
	}
	ticked, skipped := run(true), run(false)
	if ticked.preemptions == 0 {
		t.Fatal("test needs preemptions to be meaningful")
	}
	if !equalFingerprints(ticked, skipped) {
		t.Errorf("skipping changed results:\nticked:  %+v\nskipped: %+v", ticked, skipped)
	}
}

// TestIdleSkipHonorsFrameBoundaries pins the fast-forward bookkeeping for
// PVC frames: a mostly-idle network must still flush flow counters and
// refill quotas at every frame boundary — the wake computation may jump
// onto a boundary but never over it — so the frame count after Run is
// exactly cycles/frame, with skipping on and off.
func TestIdleSkipHonorsFrameBoundaries(t *testing.T) {
	for _, disable := range []bool{false, true} {
		w := traffic.UniformRandom(topology.ColumnNodes, 0.001)
		cfg := qos.DefaultConfig(w.TotalFlows())
		cfg.FrameCycles = 500
		n := MustNew(Config{
			Kind: topology.MeshX1, QoS: cfg, Workload: w, Seed: 11,
			DisableIdleSkip: disable,
		})
		n.Run(10_000)
		if n.Now() != 10_000 {
			t.Fatalf("skip=%v: clock at %d, want 10000", !disable, n.Now())
		}
		// Boundaries fire at 500, 1000, ..., 10000 is not stepped (Run
		// ends with the clock there), so 19 flushes.
		if got := n.Frames(); got != 19 {
			t.Errorf("skip=%v: %d frame flushes over 10000 cycles at frame 500, want 19", !disable, got)
		}
		for _, f := range n.quotaRemaining() {
			if f < 0 {
				t.Fatalf("skip=%v: negative quota remainder", !disable)
			}
		}
	}
}

// quotaRemaining snapshots the per-flow reserved-quota remainders
// (test-only helper; empty outside PVC-with-quota configurations).
func (n *Network) quotaRemaining() []int64 {
	if n.quota == nil {
		return nil
	}
	out := make([]int64, n.cfg.Workload.TotalFlows())
	for f := range out {
		out[f] = n.quota.Remaining(noc.FlowID(f))
	}
	return out
}

// TestIdleSkipHonorsStopAtExactly pins the StopAt boundary: a source
// whose next geometric arrival lands at or past StopAt must never emit
// it, and the skipping engine must generate exactly the packet population
// the ticking engine does.
func TestIdleSkipHonorsStopAtExactly(t *testing.T) {
	gen := func(disable bool, stop sim.Cycle) (int64, int64) {
		w := traffic.UniformRandom(topology.ColumnNodes, 0.03).WithStop(stop)
		cfg := qos.DefaultConfig(w.TotalFlows())
		n := MustNew(Config{
			Kind: topology.DPS, QoS: cfg, Workload: w, Seed: 5,
			DisableIdleSkip: disable,
		})
		n.RunUntilDrained(200_000)
		var generated int64
		for _, s := range n.srcs {
			generated += s.generated
		}
		return generated, n.Stats().TotalDelivered
	}
	for _, stop := range []sim.Cycle{1, 777, 5_000} {
		tg, td := gen(true, stop)
		sg, sd := gen(false, stop)
		if tg != sg || td != sd {
			t.Errorf("stop=%d: ticked generated/delivered %d/%d, skipped %d/%d", stop, tg, td, sg, sd)
		}
		if tg != td {
			t.Errorf("stop=%d: generated %d but delivered %d after drain", stop, tg, td)
		}
	}
}

// TestIdleSkipDrainOfIdleNetworkMatchesTicking pins the re-entry corner:
// calling RunUntilDrained on an already-drained network must behave like
// the tick engine, which executes one no-op Step before noticing idleness
// — so the final clock (and any frame flush that step lands on) must be
// identical with skipping on and off.
func TestIdleSkipDrainOfIdleNetworkMatchesTicking(t *testing.T) {
	run := func(disable bool) (sim.Cycle, int, bool) {
		n := MustNew(Config{
			Kind:            topology.MeshX1,
			QoS:             qos.DefaultConfig(64),
			Workload:        singlePacketWorkload(0, 3),
			Seed:            1,
			DisableIdleSkip: disable,
		})
		if _, drained := n.RunUntilDrained(500); !drained {
			t.Fatal("first drain failed")
		}
		_, again := n.RunUntilDrained(500)
		return n.Now(), n.Frames(), again
	}
	tc, tf, td := run(true)
	sc, sf, sd := run(false)
	if tc != sc || tf != sf || td != sd {
		t.Errorf("re-drain diverged: tick (clock %d, frames %d, drained %v) vs skip (clock %d, frames %d, drained %v)",
			tc, tf, td, sc, sf, sd)
	}
}

// TestIdleSkipFastForwardsTheClock sanity-checks that skipping actually
// engages: a drained PVC network running a long idle window must execute
// only the frame-boundary cycles, which this test observes through the
// clock landing exactly at the requested horizon while a single-packet
// workload is long gone.
func TestIdleSkipFastForwardsTheClock(t *testing.T) {
	n := MustNew(Config{
		Kind:     topology.MeshX1,
		QoS:      qos.DefaultConfig(64),
		Workload: singlePacketWorkload(0, 5),
		Seed:     1,
	})
	n.Run(1_000_000)
	if n.Now() != 1_000_000 {
		t.Fatalf("clock at %d after Run(1e6)", n.Now())
	}
	if n.Stats().TotalDelivered != 1 {
		t.Fatalf("delivered %d packets", n.Stats().TotalDelivered)
	}
	// Boundaries at 50K, 100K, ..., 950K; cycle 1M itself is not stepped
	// (Run ends with the clock on it), so one fewer than 1M/50K.
	if got, want := n.Frames(), int(1_000_000/qos.DefaultFrameCycles)-1; got != want {
		t.Errorf("%d frames fired, want %d", got, want)
	}
}
