// Package network is the simulator of the QoS-enabled shared region:
// eight column routers of one of five topologies, virtual cut-through
// flow control, PVC preemptive quality-of-service with its ACK network
// and source retransmission windows, and the two reference policies
// (idealized per-flow queueing and no-QoS round-robin).
//
// The engine is packet-granular with exact flit timing: a transfer
// occupies its output port for one cycle per flit, and head/tail arrival
// cycles are tracked per hop, which under virtual cut-through (no flit
// interleaving within a VC) is equivalent to flit-level simulation for
// every metric the paper reports.
//
// # Hybrid tick/event-driven execution
//
// Step is tick-driven — arbitration, preemption and frame logic are
// expressed per cycle, exactly as the hardware clocks them — but the cost
// of a cycle is proportional to the work in it, not to the machine size:
//
//   - Injection is sampled by inter-arrival time, not per cycle. Each
//     source carries a precomputed next-arrival cycle whose gaps are drawn
//     geometrically via inverse CDF (sim.RNG.Geometric) with the Bernoulli
//     process's per-cycle packet probability, which reproduces that
//     process exactly (memorylessness: every post-arrival cycle is an
//     independent trial) at one RNG draw per packet instead of one per
//     source per cycle.
//   - Arbitration visits only ports holding candidates: an ID-sorted
//     active-ports list maintained by candidate registration, replacing
//     the all-ports scan while preserving the canonical port order.
//
// On top of that, Run and RunUntilDrained are event-driven across idle
// stretches: when no port holds a candidate, nothing can happen until the
// earliest of (next scheduled event, next PVC frame boundary, and per
// live source, its injection VC freeing or its next arrival), so the
// clock fast-forwards there directly. Skipped cycles would have executed
// no state change, making the fast-forward provably mechanical: with
// Config.DisableIdleSkip the engine ticks through every cycle and
// produces bit-identical results (TestIdleSkipMechanicallyEquivalent).
// Low-load cells of the paper's latency-load sweeps thus cost O(packets),
// not O(cycles).
package network

import (
	"fmt"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Config assembles one simulated shared-region network.
type Config struct {
	Kind  topology.Kind
	Nodes int // column height; defaults to topology.ColumnNodes
	QoS   qos.Config
	// Workload supplies the traffic injectors. QoS.Rates must cover the
	// workload's full flow population (active or not).
	Workload traffic.Workload
	Seed     uint64
	// DisableIdleSkip forces Run/RunUntilDrained to tick through every
	// cycle instead of fast-forwarding the clock over provably idle
	// windows. Skipping is mechanical — results are bit-identical either
	// way (TestIdleSkipMechanicallyEquivalent) — so the knob exists only
	// for that proof and for debugging.
	DisableIdleSkip bool
}

// pktState tracks where a packet is in its lifecycle.
type pktState uint8

const (
	stAtSource pktState = iota
	stWaiting           // buffered, registered as an arbitration candidate
	stMoving            // won arbitration; flits in flight to the next buffer
	stDelivered
	stDead // preempted; awaiting NACK and retransmission
)

// pkt wraps a packet with the engine-side bookkeeping: its path, current
// residence (buffer + VC), in-progress allocation and hop accounting.
type pkt struct {
	*noc.Packet
	src  *source
	legs []topology.Leg

	state pktState
	// Current residence (nil/-1 while at source or fully in flight).
	curBuf *inBuf
	curVC  int
	// creditDelay is the wire time for this buffer's free-VC credit to
	// reach the upstream allocator, recorded at head arrival.
	creditDelay int
	// Next-hop allocation while moving.
	nxtBuf *inBuf
	nxtVC  int

	// enq is when the packet became an arbitration candidate at its
	// current position.
	enq sim.Cycle
	// gen is the recycling generation of this wrapper. The engine reuses
	// pkt+noc.Packet pairs through the network's free list once the
	// logical packet is fully acknowledged; events carry the generation
	// they were scheduled against, so an event that outlives its packet's
	// lifetime becomes a no-op instead of acting on the reused wrapper.
	gen uint32
	// frameStamp is the PVC frame in which the carried priority was
	// computed. Priorities are frame-relative: a stamp from an earlier
	// frame reads as zero consumption, exactly like the flushed
	// counters it was derived from.
	frameStamp int
	// weightedHops accumulates mesh-normalized hop traversals of the
	// current attempt; wasted on preemption.
	weightedHops int
	wasPreempted bool
}

// Network is one simulated shared-region column.
type Network struct {
	cfg   Config
	graph *topology.Graph
	mode  qos.Mode

	clock  sim.Clock
	rng    *sim.RNG
	ports  []*outPort
	bufs   []*inBuf
	srcs   []*source
	quota  *qos.ReservedQuota
	frame  *qos.FrameTimer
	events eventRing
	coll   *stats.Collector

	nextPktID  uint64
	inFlight   int // packets injected and neither delivered nor dead
	frameCount int
	// margin is the preemption hysteresis in quantized classes.
	margin noc.Priority

	// arrivals schedules packet generation: a min-heap of sources on
	// (nextArrival, idx). Step pops only the sources whose arrival cycle
	// has come, so generation costs O(packets), not O(sources x cycles).
	// A source leaves the heap for good once its next arrival would land
	// at or past its StopAt deadline (see scheduleArrival).
	arrivals srcHeap
	// offerSrcs is the subset of sources holding an injectable packet
	// (queued or awaiting retransmission) but not yet offering one, kept
	// sorted by source index. Membership is exact: markOfferable admits
	// only sources with real pending work, and the offer pass drops a
	// source the moment its packet is offered. Step's offer scan and the
	// drain test touch only this list.
	offerSrcs []*source
	// activePorts is the subset of ports holding arbitration candidates,
	// kept sorted by port ID (see register); Step arbitrates it instead
	// of scanning every port. waiterCount is the total candidate
	// population across all ports — zero means no arbitration work can
	// happen this cycle, the precondition for idle fast-forwarding.
	activePorts []*outPort
	waiterCount int
	// pktFree recycles pkt+noc.Packet pairs of fully-acknowledged
	// packets, making steady-state injection allocation-free. Disabled
	// while diagnostic hooks are installed, because hook observers may
	// retain packet pointers past the packet's lifetime.
	pktFree []*pkt
	// bidScratch and failedScratch are reusable arbitration buffers
	// (see arbitrate); valid only within one arbitrate call.
	bidScratch    []bid
	failedScratch []*inBuf

	// preemptHook and grantHook, when non-nil, observe every preemption
	// and grant (tests and diagnostics).
	preemptHook func(*inBuf, *pkt)
	grantHook   func(*outPort, *pkt)
}

// New builds a network from the configuration. It validates that the QoS
// flow population covers the workload.
func New(cfg Config) (*Network, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = topology.ColumnNodes
	}
	if err := cfg.QoS.Validate(); err != nil {
		return nil, err
	}
	if want := cfg.Workload.TotalFlows(); len(cfg.QoS.Rates) != want {
		return nil, fmt.Errorf("network: QoS covers %d flows, workload needs %d", len(cfg.QoS.Rates), want)
	}
	for _, s := range cfg.Workload.Specs {
		if int(s.Node) < 0 || int(s.Node) >= cfg.Nodes {
			return nil, fmt.Errorf("network: injector flow %d at node %d outside column of %d", s.Flow, s.Node, cfg.Nodes)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("network: %w", err)
		}
	}

	n := &Network{
		cfg:   cfg,
		graph: topology.NewGraph(cfg.Kind, cfg.Nodes),
		mode:  cfg.QoS.Mode,
		rng:   sim.NewRNG(cfg.Seed ^ 0x74616e6f71), // "tanoq"
		coll:  stats.NewCollector(cfg.Workload.TotalFlows()),
	}
	n.margin = noc.Priority(cfg.QoS.EffectiveMargin())
	n.ports = make([]*outPort, len(n.graph.Ports))
	for i, spec := range n.graph.Ports {
		p := &outPort{id: topology.PortID(i), spec: spec}
		if n.mode != qos.NoQoS {
			p.table = qos.NewFlowTableWithQuantum(cfg.QoS.Rates, cfg.QoS.EffectiveQuantum())
		}
		n.ports[i] = p
	}
	n.bufs = make([]*inBuf, len(n.graph.Bufs))
	for i, spec := range n.graph.Bufs {
		n.bufs[i] = newInBuf(topology.BufID(i), spec, n.mode == qos.PerFlowQueue)
	}
	if n.mode == qos.PVC {
		if !cfg.QoS.DisableReservedQuota {
			n.quota = qos.NewReservedQuota(cfg.QoS.Rates, cfg.QoS.FrameCycles)
		}
		n.frame = qos.NewFrameTimer(cfg.QoS.FrameCycles)
	}
	for i, spec := range cfg.Workload.Specs {
		s := newSource(n, spec)
		s.idx = i
		n.srcs = append(n.srcs, s)
		n.scheduleArrival(s)
	}
	return n, nil
}

// scheduleArrival (re-)enters a source into the arrival heap, unless its
// next arrival would land at or past the injector's StopAt deadline — the
// Bernoulli process it models would never emit that packet, so the source
// is permanently done generating and leaves the schedule for good.
func (n *Network) scheduleArrival(s *source) {
	if !s.arr.Active() {
		return
	}
	if s.spec.StopAt > 0 && s.nextArrival >= s.spec.StopAt {
		return
	}
	n.arrivals.push(s)
}

// markOfferable puts a source on the offerable list if it actually has an
// injectable packet and is not already offering or listed. The sorted
// insert keeps the list in source-index order, matching the historical
// all-sources offer scan.
func (n *Network) markOfferable(s *source) {
	if s.inOffer || s.offering != nil {
		return
	}
	if s.retx.empty() && s.queue.empty() {
		return
	}
	s.inOffer = true
	n.offerSrcs = append(n.offerSrcs, s)
	for i := len(n.offerSrcs) - 1; i > 0 && n.offerSrcs[i-1].idx > s.idx; i-- {
		n.offerSrcs[i], n.offerSrcs[i-1] = n.offerSrcs[i-1], n.offerSrcs[i]
	}
}

// MustNew is New that panics on configuration errors, for tests and
// experiment drivers with static configurations.
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Stats exposes the measurement collector.
func (n *Network) Stats() *stats.Collector { return n.coll }

// Now returns the current simulation cycle.
func (n *Network) Now() sim.Cycle { return n.clock.Now() }

// Graph exposes the topology graph (read-only use).
func (n *Network) Graph() *topology.Graph { return n.graph }

// Mode returns the QoS policy in effect.
func (n *Network) Mode() qos.Mode { return n.mode }

// InFlight returns the number of packets injected but not yet delivered
// (or awaiting retransmission).
func (n *Network) InFlight() int { return n.inFlight }

// Frames returns how many PVC frame boundaries (counter flushes and quota
// refills) have fired. Zero outside PVC mode.
func (n *Network) Frames() int { return n.frameCount }

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	now := n.clock.Now()
	n.processEvents(now)
	if n.frame != nil && n.frame.Expired(now) {
		for _, p := range n.ports {
			p.table.Flush()
		}
		if n.quota != nil {
			n.quota.Refill()
		}
		n.frameCount++
	}
	// Pop exactly the sources whose arrival cycle has come (ties in
	// source-index order, like the historical all-sources scan) and
	// reschedule each for its next draw.
	for n.arrivals.Len() > 0 && n.arrivals.items[0].nextArrival <= now {
		s := n.arrivals.pop()
		s.generate(now)
		n.scheduleArrival(s)
	}
	// Offer pass over the sources actually holding injectable packets, in
	// source-index order. A source whose packet just went on offer (or
	// that somehow lost its backlog) leaves the list; it re-enters
	// through markOfferable when new work appears.
	liveSrcs := n.offerSrcs[:0]
	for _, s := range n.offerSrcs {
		s.offer(now)
		if s.offering == nil && (!s.retx.empty() || !s.queue.empty()) {
			liveSrcs = append(liveSrcs, s)
		} else {
			s.inOffer = false
		}
	}
	for i := len(liveSrcs); i < len(n.offerSrcs); i++ {
		n.offerSrcs[i] = nil
	}
	n.offerSrcs = liveSrcs
	// Arbitrate only the ports holding candidates, dropping the ones that
	// have gone empty as they are reached. Ports emptied behind the scan
	// (an inversion preemption at a later port can withdraw a waiter from
	// an earlier, already-visited one) linger until the next pass, which
	// is harmless: the list is ID-sorted, so stale entries cost one length
	// check and can never perturb arbitration order.
	live := n.activePorts[:0]
	for _, p := range n.activePorts {
		if len(p.waiters) > 0 {
			n.arbitrate(p, now)
		}
		if len(p.waiters) > 0 {
			live = append(live, p)
		} else {
			p.inActive = false
		}
	}
	for i := len(live); i < len(n.activePorts); i++ {
		n.activePorts[i] = nil
	}
	n.activePorts = live
	n.clock.Tick()
}

// Run advances the simulation by the given number of cycles, fast-
// forwarding over provably idle windows unless Config.DisableIdleSkip is
// set. The clock lands on exactly the same final cycle either way.
func (n *Network) Run(cycles int) {
	end := n.clock.Now() + sim.Cycle(cycles)
	for now := n.clock.Now(); now < end; now = n.clock.Now() {
		if !n.cfg.DisableIdleSkip {
			if wake, ok := n.nextWake(now); ok {
				if wake > end {
					wake = end
				}
				n.clock.Advance(wake - now)
				continue
			}
		}
		n.Step()
	}
}

// neverCycle is effectively +infinity for next-wake computations.
const neverCycle = sim.Cycle(1) << 62

// nextWake reports the earliest future cycle at which the engine could
// have work, or ok=false when the current cycle itself may have work and
// must be stepped. The fast-forward is provably mechanical: a cycle is
// skippable only when no port holds an arbitration candidate (so neither
// allocation nor inversion preemption can fire), and the wake cycle is the
// minimum over everything that is scheduled to change that — the event
// heap (head arrivals, deliveries, VC releases, ACKs/NACKs), the next PVC
// frame boundary (counter flush + quota refill), and each live source's
// next act (injection-VC free at busyUntil, or the precomputed geometric
// arrival). Cycles in between execute no state change at all, so skipping
// them is bit-identical to ticking through them.
func (n *Network) nextWake(now sim.Cycle) (wake sim.Cycle, ok bool) {
	if n.waiterCount > 0 || n.events.dueNow(now) {
		return 0, false
	}
	wake = neverCycle
	if at, evOk := n.events.nextAt(now); evOk {
		if at <= now {
			return 0, false
		}
		wake = at
	}
	if n.frame != nil {
		if next := n.frame.Next(); next < wake {
			wake = next
		}
	}
	if n.arrivals.Len() > 0 {
		if a := n.arrivals.items[0].nextArrival; a < wake {
			wake = a
		}
	}
	for _, s := range n.offerSrcs {
		if w := s.nextOffer(); w < wake {
			wake = w
		}
	}
	if wake <= now {
		return 0, false
	}
	return wake, true
}

// WarmupAndMeasure runs warmup cycles with measurement paused, resets the
// collector, then runs the measurement window.
func (n *Network) WarmupAndMeasure(warmup, measure int) {
	n.coll.Pause()
	n.Run(warmup)
	n.coll.Reset(n.clock.Now())
	n.Run(measure)
}

// RunUntilDrained advances until every injector is exhausted and no packet
// remains in flight, or maxCycles elapse. It returns the cycle of the last
// delivery and whether the network fully drained. Idle windows are
// fast-forwarded like Run's unless Config.DisableIdleSkip is set.
func (n *Network) RunUntilDrained(maxCycles int) (completion sim.Cycle, drained bool) {
	end := n.clock.Now() + sim.Cycle(maxCycles)
	for now := n.clock.Now(); now < end; now = n.clock.Now() {
		if !n.cfg.DisableIdleSkip {
			if n.idle() {
				// Only reachable on the first iteration (a Step that
				// empties the network returns below; a fast-forward
				// never changes state). Mirror the tick engine, which
				// always executes one no-op Step before its idle check,
				// so the final clock — and a frame flush, if that step
				// sits on a boundary — stay bit-identical.
				n.Step()
				return n.coll.LastDelivery, true
			}
			if wake, ok := n.nextWake(now); ok {
				if wake > end {
					wake = end
				}
				n.clock.Advance(wake - now)
				continue
			}
		}
		n.Step()
		if n.idle() {
			return n.coll.LastDelivery, true
		}
	}
	return n.coll.LastDelivery, n.idle()
}

// idle reports whether no work remains anywhere in the network, in O(1):
// nothing in flight, no scheduled event, no arbitration candidate, no
// future arrival (sources leave the arrival heap permanently once their
// next draw lands past StopAt), and no source holding an injectable
// backlog. A source with outstanding window slots always has a pending
// ACK/NACK somewhere in the event chain, so the event check covers
// retransmission obligations too.
func (n *Network) idle() bool {
	return n.inFlight == 0 && n.events.Len() == 0 && n.waiterCount == 0 &&
		n.arrivals.Len() == 0 && len(n.offerSrcs) == 0
}

// newPacket mints a packet for a source, reusing a recycled pkt+noc.Packet
// pair when one is available. Every field of both structs is rewritten, so
// a recycled packet is indistinguishable from a fresh allocation and
// recycling cannot perturb simulation results.
func (n *Network) newPacket(s *source, class noc.Class, dst noc.NodeID, now sim.Cycle) *pkt {
	n.nextPktID++
	var p *pkt
	if k := len(n.pktFree); k > 0 {
		p = n.pktFree[k-1]
		n.pktFree[k-1] = nil
		n.pktFree = n.pktFree[:k-1]
		pk, gen := p.Packet, p.gen
		*pk = noc.Packet{}
		*p = pkt{Packet: pk, gen: gen}
	} else {
		p = &pkt{Packet: &noc.Packet{}}
	}
	p.Packet.ID = n.nextPktID
	p.Packet.Flow = s.spec.Flow
	p.Packet.Src = s.spec.Node
	p.Packet.Dst = dst
	p.Packet.Class = class
	p.Packet.Size = class.Flits()
	p.Packet.Created = now
	p.src = s
	p.curVC = -1
	p.nxtVC = -1
	return p
}

// recycle returns a fully-acknowledged packet's wrapper to the free list.
// The generation bump turns any event still scheduled against this wrapper
// into a no-op. Recycling is suppressed while diagnostic hooks are
// installed: hooks hand out *pkt pointers that tests may retain.
func (n *Network) recycle(p *pkt) {
	if n.preemptHook != nil || n.grantHook != nil {
		return
	}
	p.gen++
	n.pktFree = append(n.pktFree, p)
}
