// Package network is the simulator of the QoS-enabled shared region:
// eight column routers of one of five topologies, virtual cut-through
// flow control, PVC preemptive quality-of-service with its ACK network
// and source retransmission windows, and the two reference policies
// (idealized per-flow queueing and no-QoS round-robin).
//
// The engine is packet-granular with exact flit timing: a transfer
// occupies its output port for one cycle per flit, and head/tail arrival
// cycles are tracked per hop, which under virtual cut-through (no flit
// interleaving within a VC) is equivalent to flit-level simulation for
// every metric the paper reports.
//
// # Data-oriented core
//
// The engine's state lives in flat arrays, not object graphs:
//
//   - Packets occupy a single arena ([]pkt) addressed by 32-bit
//     generation-guarded handles (pktH). Candidate lists, VC ownership,
//     source queues and events all store handles, so every hot container
//     is a dense, pointer-free array the garbage collector never scans,
//     and the free list is an index stack — recycling a packet is a
//     generation bump and a push.
//   - Router state is struct-of-arrays: ports, buffers and sources are
//     value slices indexed by ID, and each buffer's virtual-channel
//     state is parallel arrays (owner handles, release generations) with
//     a free-VC occupancy bitmap, so VC allocation and victim search are
//     word scans instead of pointer walks.
//   - PVC priorities are cached in a flat per-port per-flow array
//     (qos.FlowTable), maintained eagerly on Record and cleared on frame
//     flush, so arbitration reads one word per candidate instead of
//     re-deriving quantize-and-scale per candidate per cycle.
//   - Events are 40-byte pointer-free records in a calendar ring;
//     scheduling and firing never trigger write barriers.
//
// The layout is mechanical: results are bit-identical to the historical
// pointer-based engine (pinned by the equivalence and determinism
// suites), and a Network can be Reset to a new configuration reusing
// every backing allocation — sweep workers run whole grids on one arena.
//
// # Hybrid tick/event-driven execution
//
// Step is tick-driven — arbitration, preemption and frame logic are
// expressed per cycle, exactly as the hardware clocks them — but the cost
// of a cycle is proportional to the work in it, not to the machine size:
//
//   - Injection is sampled by inter-arrival time, not per cycle. Each
//     source carries a precomputed next-arrival cycle whose gaps are drawn
//     geometrically via inverse CDF (sim.RNG.Geometric) with the Bernoulli
//     process's per-cycle packet probability, which reproduces that
//     process exactly (memorylessness: every post-arrival cycle is an
//     independent trial) at one RNG draw per packet instead of one per
//     source per cycle.
//   - Arbitration visits only ports holding candidates: an ID-sorted
//     active-ports list maintained by candidate registration, replacing
//     the all-ports scan while preserving the canonical port order.
//
// On top of that, Run and RunUntilDrained are event-driven across idle
// stretches: when no port holds a candidate, nothing can happen until the
// earliest of (next scheduled event, next PVC frame boundary, and per
// live source, its injection VC freeing or its next arrival), so the
// clock fast-forwards there directly. Skipped cycles would have executed
// no state change, making the fast-forward provably mechanical: with
// Config.DisableIdleSkip the engine ticks through every cycle and
// produces bit-identical results (TestIdleSkipMechanicallyEquivalent).
// Low-load cells of the paper's latency-load sweeps thus cost O(packets),
// not O(cycles).
//
// # Ensemble lockstep execution
//
// Sweep grids are dominated by their seed axis: cells identical except
// for Config.Seed. An Ensemble runs K such cells as lanes of one batch,
// seed-major — each lane is a complete private Network (its own arena,
// sources, clock, collector), and the only state lanes share is the
// immutable topology graph (routing tables, port specs, channel
// geometry), which the seed cannot touch. The lanes advance in rounds
// of at most ensembleQuantum cycles, so the engine's code and the
// shared read-only tables stay hot across lanes instead of faulting
// back in once per cell.
//
// Each lane runs its own engine loop inside every round, which is what
// preserves the idle-skip semantics per lane: a lane whose next wake
// lies beyond the round boundary crosses the whole round in one clock
// advance, exactly as it would standalone, while a busy sibling ticks
// through the same round cycle by cycle. A chunked Run is
// state-identical to an unchunked one (fast-forwards clamp to the
// chunk boundary; skipped cycles execute nothing), so lane i's
// simulation is bit-for-bit the standalone simulation of its
// configuration — same fingerprint for every K and every round length
// (TestEnsembleMatchesStandalone pins the matrix, and the combined
// lockstep pass stays allocation-free like Step itself).
//
// # Workload attachment
//
// External workload drivers (internal/workload) attach through three
// surfaces that are zero-cost and bit-identical when unused (see
// inject.go): SetDeliveryHook observes every delivery, SetGenHook
// observes every generation as a trace record, and ScheduleInjection
// generates a packet at an exact future cycle through the event ring —
// so closed-loop client wake-ups are first-class events the idle
// fast-forward accounts for exactly. Sources can also replay a
// prerecorded event stream verbatim (traffic.Spec.Replay) through the
// ordinary arrival schedule, consuming no randomness. Unlike the
// diagnostic preempt/grant hooks, none of these suppress packet
// recycling, and Reset clears them — drivers re-attach per cell.
package network

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Config assembles one simulated shared-region network.
type Config struct {
	Kind  topology.Kind
	Nodes int // column height; defaults to topology.ColumnNodes
	QoS   qos.Config
	// Workload supplies the traffic injectors. QoS.Rates must cover the
	// workload's full flow population (active or not).
	Workload traffic.Workload
	Seed     uint64
	// DisableIdleSkip forces Run/RunUntilDrained to tick through every
	// cycle instead of fast-forwarding the clock over provably idle
	// windows. Skipping is mechanical — results are bit-identical either
	// way (TestIdleSkipMechanicallyEquivalent) — so the knob exists only
	// for that proof and for debugging.
	DisableIdleSkip bool

	// Faults schedules hardware fault injection and configures end-to-end
	// recovery (see fault.go). The zero value disables both, at zero
	// cost: a fault-free run is fingerprint-identical to an engine
	// without the subsystem.
	Faults FaultConfig
	// WatchdogCycles, when positive, arms the no-forward-progress
	// watchdog: if candidates are waiting and no arbitration grant or
	// delivery happens for this many cycles, the engine panics with a
	// *WatchdogError carrying a structured diagnostic dump and a repro
	// trace of every generation so far (see watchdog.go). Choose a window
	// comfortably above the configured protocol delays (ACK round trips,
	// retry backoff) to avoid tripping on legitimate waits.
	WatchdogCycles sim.Cycle
	// AuditEvery, when positive, runs the invariant auditor every
	// AuditEvery stepped cycles and panics on the first violation (see
	// audit.go). The TANOQ_AUDIT environment variable enables it
	// process-wide for networks that leave this at zero.
	AuditEvery sim.Cycle
}

// Network is one simulated shared-region column.
type Network struct {
	cfg   Config
	graph *topology.Graph
	mode  qos.Mode

	clock  sim.Clock
	rng    sim.RNG
	ports  []outPort
	bufs   []inBuf
	srcs   []source
	quota  *qos.ReservedQuota
	frame  *qos.FrameTimer
	events eventRing
	coll   *stats.Collector

	// parkedTables/parkedQuota/parkedFrame hold the QoS state objects
	// across a Reset into a mode that does not use them, so a sweep
	// whose qos axis interleaves NoQoS with PVC cells keeps reusing the
	// same backing arrays instead of reallocating them at every mode
	// boundary (the tables' per-flow arrays are the bulk of a port's
	// footprint).
	parkedTables []*qos.FlowTable
	parkedQuota  *qos.ReservedQuota
	parkedFrame  *qos.FrameTimer

	nextPktID  uint64
	inFlight   int // packets injected and neither delivered nor dead
	frameCount int32
	// margin is the preemption hysteresis in quantized classes.
	margin noc.Priority

	// arena holds every live packet; slot 0 is the permanent nil-handle
	// dummy. free is the stack of recycled slots (see arena.go).
	arena []pkt
	free  []pktH

	// arrivals schedules packet generation: a calendar wheel of (cycle,
	// source index) pairs with a far-future heap spillway (see arrWheel).
	// Step fires only the sources whose arrival cycle has come, so
	// generation costs O(packets), not O(sources x cycles). A source
	// leaves the schedule for good once its next arrival would land at or
	// past its StopAt deadline (see scheduleArrival).
	arrivals arrWheel
	// relw is the dedicated calendar wheel for near-future VC releases
	// (see relWheel); out-of-horizon releases still ride the event ring.
	relw relWheel
	// headw, delivw and ackw carry the three dense per-packet event kinds
	// (see pktWheel); the ring keeps system events and far-horizon spills.
	headw  pktWheel
	delivw pktWheel
	ackw   pktWheel
	// offerSrcs is the subset of sources holding an injectable packet
	// (queued or awaiting retransmission) but not yet offering one, kept
	// sorted by source index. Membership is exact: markOfferable admits
	// only sources with real pending work, and the offer pass drops a
	// source the moment its packet is offered. Step's offer scan and the
	// drain test touch only this list.
	offerSrcs []int32
	// activeW is a bitmap over port IDs marking the ports holding
	// arbitration candidates; Step arbitrates its set bits (ascending,
	// which is exactly the ID-sorted order of the historical all-ports
	// scan) instead of scanning every port. waiterCount is the total
	// candidate population across all ports — zero means no arbitration
	// work can happen this cycle, the precondition for idle
	// fast-forwarding.
	activeW     []uint64
	waiterCount int
	// bidScratch and failedScratch are reusable arbitration buffers
	// (see arbitrate); valid only within one arbitrate call.
	bidScratch    []bid
	failedScratch []int32

	// preemptHook and grantHook, when non-nil, observe every preemption
	// and grant (tests and diagnostics). Handles passed to a hook are
	// stable for the rest of the run: installing either hook suppresses
	// slot recycling.
	preemptHook func(*inBuf, pktH)
	grantHook   func(*outPort, pktH)

	// deliveryHook and genHook are the workload-attachment surface (see
	// inject.go): value-passing observers of deliveries and generations.
	// Unlike the diagnostic hooks above they never suppress recycling,
	// and Reset clears them — workload drivers re-attach per cell.
	deliveryHook func(Delivery)
	genHook      func(traffic.TraceRecord)
	// abortFlag, when non-nil, is polled at every Run/RunUntilDrained
	// iteration: a set flag aborts the run with *AbortError (see
	// abort.go). Installed per cell by deadline-armed runners; Reset
	// clears it.
	abortFlag *atomic.Bool
	// probeFn/probeEvery/markFn are the telemetry attachment surface
	// (probe.go): a periodic read-only sampling tick riding the event
	// ring and a phase-transition observer. Per-cell like the workload
	// hooks — Reset clears all three.
	probeFn    func(sim.Cycle)
	probeEvery sim.Cycle
	markFn     func(ProbeMark)
	// injPool parks externally scheduled injections between
	// ScheduleInjection and their evInject firing; injFree is its
	// recycled-slot stack. Both are lazily allocated: open-loop runs
	// never touch them.
	injPool []pendingInj
	injFree []int32

	// Fault-injection, recovery and self-check state (fault.go,
	// watchdog.go, audit.go). fltDown/fltDead are per-port bitmaps (link
	// currently unusable / permanently failed), fltStall a per-node stall
	// bitmap; all are recomputed wholesale at every scheduled fault edge.
	// sysEvents counts pending bookkeeping events (fault edges, the
	// watchdog timer) that must not keep an otherwise-drained network
	// looking busy.
	fltOn        bool
	fltHasDead   bool
	fltDown      []uint64
	fltDead      []uint64
	fltStall     []uint64
	retryTimeout sim.Cycle
	maxRetries   int32
	sysEvents    int
	// wdWindow/lastProgress drive the no-forward-progress watchdog;
	// wdRecords is its auto-captured repro trace (every generation of the
	// run, recorded only while the watchdog is armed).
	wdWindow     sim.Cycle
	lastProgress sim.Cycle
	wdRecords    []traffic.TraceRecord
	// auditEvery/auditAt pace the invariant auditor.
	auditEvery sim.Cycle
	auditAt    sim.Cycle
}

// New builds a network from the configuration. It validates that the QoS
// flow population covers the workload.
func New(cfg Config) (*Network, error) {
	n := &Network{}
	if err := n.Reset(cfg); err != nil {
		return nil, err
	}
	return n, nil
}

// Reset rebuilds the network for a fresh simulation of cfg, reusing every
// backing allocation the previous configuration left behind — the packet
// arena, the event ring, per-port candidate lists and flow tables, buffer
// VC arrays, source queues and scratch buffers. A Reset network is
// bit-identical to a freshly built one (TestResetMatchesFreshBuild): all
// randomness derives from cfg.Seed and every piece of logical state is
// re-initialized here. Sweep drivers lean on this to run a whole grid of
// cells on one allocation per worker (runner.RunCells).
//
// The measurement collector is freshly allocated — results escape to the
// caller — and diagnostic hooks are preserved. Workload attachments
// (delivery/generation hooks, pending scheduled injections) are cleared:
// they belong to the previous cell's driver, which must re-attach
// (runner.Cell.Setup runs after every Reset for exactly this).
func (n *Network) Reset(cfg Config) error {
	if cfg.Nodes == 0 {
		cfg.Nodes = topology.ColumnNodes
	}
	if err := cfg.QoS.Validate(); err != nil {
		return err
	}
	if err := cfg.Faults.validate(cfg.Kind, cfg.Nodes); err != nil {
		return err
	}
	if cfg.WatchdogCycles < 0 {
		return fmt.Errorf("network: negative watchdog window %d", cfg.WatchdogCycles)
	}
	if cfg.AuditEvery < 0 {
		return fmt.Errorf("network: negative audit interval %d", cfg.AuditEvery)
	}
	if want := cfg.Workload.TotalFlows(); len(cfg.QoS.Rates) != want {
		return fmt.Errorf("network: QoS covers %d flows, workload needs %d", len(cfg.QoS.Rates), want)
	}
	for _, s := range cfg.Workload.Specs {
		if int(s.Node) < 0 || int(s.Node) >= cfg.Nodes {
			return fmt.Errorf("network: injector flow %d at node %d outside column of %d", s.Flow, s.Node, cfg.Nodes)
		}
		if err := s.Validate(); err != nil {
			return fmt.Errorf("network: %w", err)
		}
		if s.Replay != nil {
			for i, ev := range s.Replay.Events {
				if int(ev.Dst) >= cfg.Nodes {
					return fmt.Errorf("network: replay flow %d event %d destination %d outside column of %d",
						s.Flow, i, ev.Dst, cfg.Nodes)
				}
			}
		}
	}

	n.cfg = cfg
	n.mode = cfg.QoS.Mode
	n.clock.Reset()
	n.rng.Seed(cfg.Seed ^ 0x74616e6f71) // "tanoq"
	n.coll = stats.NewCollector(cfg.Workload.TotalFlows())
	n.margin = noc.Priority(cfg.QoS.EffectiveMargin())
	if n.graph == nil || n.graph.Kind != cfg.Kind || n.graph.Nodes != cfg.Nodes {
		n.graph = topology.NewGraph(cfg.Kind, cfg.Nodes)
	}

	if cap(n.ports) < len(n.graph.Ports) {
		n.ports = make([]outPort, len(n.graph.Ports))
	}
	n.ports = n.ports[:len(n.graph.Ports)]
	for i := range n.ports {
		p := &n.ports[i]
		p.id = topology.PortID(i)
		p.spec = n.graph.Ports[i]
		p.nextArb = 0
		if p.waiters == nil {
			p.waiters = make([]pktH, 0, waitersCap)
		}
		p.waiters = p.waiters[:0]
		p.rr = qos.RoundRobin{}
		p.waitEpoch = 0
		p.scanEpoch = 0
		p.scanFrame = 0
		p.scanValid = false
		if n.mode != qos.NoQoS {
			if p.table == nil {
				if k := len(n.parkedTables); k > 0 {
					p.table = n.parkedTables[k-1]
					n.parkedTables[k-1] = nil
					n.parkedTables = n.parkedTables[:k-1]
				}
			}
			if p.table == nil {
				p.table = qos.NewFlowTableWithQuantum(cfg.QoS.Rates, cfg.QoS.EffectiveQuantum())
			} else {
				p.table.Reinit(cfg.QoS.Rates, cfg.QoS.EffectiveQuantum())
			}
		} else if p.table != nil {
			n.parkedTables = append(n.parkedTables, p.table)
			p.table = nil
		}
	}

	if cap(n.bufs) < len(n.graph.Bufs) {
		n.bufs = make([]inBuf, len(n.graph.Bufs))
	}
	n.bufs = n.bufs[:len(n.graph.Bufs)]
	for i := range n.bufs {
		n.bufs[i].reinit(topology.BufID(i), n.graph.Bufs[i], n.mode == qos.PerFlowQueue)
	}

	if n.mode == qos.PVC && !cfg.QoS.DisableReservedQuota {
		if n.quota == nil {
			n.quota, n.parkedQuota = n.parkedQuota, nil
		}
		if n.quota == nil {
			n.quota = qos.NewReservedQuota(cfg.QoS.Rates, cfg.QoS.FrameCycles)
		} else {
			n.quota.Reinit(cfg.QoS.Rates, cfg.QoS.FrameCycles)
		}
	} else if n.quota != nil {
		n.parkedQuota, n.quota = n.quota, nil
	}
	if n.mode == qos.PVC {
		if n.frame == nil {
			n.frame, n.parkedFrame = n.parkedFrame, nil
		}
		if n.frame == nil {
			n.frame = qos.NewFrameTimer(cfg.QoS.FrameCycles)
		} else {
			n.frame.Reinit(cfg.QoS.FrameCycles)
		}
	} else if n.frame != nil {
		n.parkedFrame, n.frame = n.frame, nil
	}

	n.nextPktID = 0
	n.inFlight = 0
	n.frameCount = 0
	if n.arena == nil {
		// Slot 0 is the permanent nil-handle dummy. The arena and the
		// engine's other reusable containers are pre-sized to a
		// generous working set so that steady-state operation never
		// grows them: amortized append-doubling on stochastic depth
		// spikes was the engine's last residual allocation source
		// (TestStepAllocationFreeAtSteadyState documents the history).
		n.arena = make([]pkt, 1, arenaCap)
		n.free = make([]pktH, 0, arenaCap)
		n.bidScratch = make([]bid, 0, waitersCap)
		n.failedScratch = make([]int32, 0, waitersCap)
	}
	n.arena = n.arena[:1]
	n.free = n.free[:0]
	n.deliveryHook = nil
	n.genHook = nil
	n.abortFlag = nil
	n.probeFn = nil
	n.probeEvery = 0
	n.markFn = nil
	n.injPool = n.injPool[:0]
	n.injFree = n.injFree[:0]
	n.events.reset()
	n.relw.reset()
	n.headw.reset()
	n.delivw.reset()
	n.ackw.reset()
	n.arrivals.reset(len(cfg.Workload.Specs))
	if n.offerSrcs == nil {
		n.offerSrcs = make([]int32, 0, len(cfg.Workload.Specs))
	}
	n.offerSrcs = n.offerSrcs[:0]
	if nw := (len(n.ports) + 63) / 64; cap(n.activeW) < nw {
		n.activeW = make([]uint64, nw)
	} else {
		n.activeW = n.activeW[:nw]
		for i := range n.activeW {
			n.activeW[i] = 0
		}
	}
	n.waiterCount = 0

	if cap(n.srcs) < len(cfg.Workload.Specs) {
		n.srcs = make([]source, len(cfg.Workload.Specs))
	}
	n.srcs = n.srcs[:len(cfg.Workload.Specs)]
	for i, spec := range cfg.Workload.Specs {
		s := &n.srcs[i]
		s.reinit(&n.rng, spec, int32(i))
		n.scheduleArrival(s)
	}
	n.reinitFaults(cfg)
	return nil
}

// arrivalEligible reports whether the source's precomputed next arrival
// will actually happen: an inactive sampler never emits, and an arrival
// landing at or past the injector's StopAt deadline is one the modeled
// Bernoulli process would never produce — the source is permanently done
// generating. Both the initial scheduling and Step's in-place heap
// replacement use this single predicate, so they can never drift apart.
func (n *Network) arrivalEligible(s *source) bool {
	if s.replay != nil {
		// Replay sources are scheduled while records remain; the recorded
		// stream is explicit, so StopAt does not apply.
		return int(s.replayPos) < len(s.replay.Events)
	}
	if !s.arr.Active() {
		return false
	}
	return !(s.spec.StopAt > 0 && s.nextArrival >= s.spec.StopAt)
}

// scheduleArrival (re-)enters a source into the arrival heap, unless it
// is permanently done generating (see arrivalEligible), in which case it
// leaves the schedule for good.
func (n *Network) scheduleArrival(s *source) {
	if !n.arrivalEligible(s) {
		return
	}
	n.arrivals.add(s.nextArrival, s.idx, n.clock.Now())
}

// markOfferable puts a source on the offerable list if it actually has an
// injectable packet and is not already offering or listed. The sorted
// insert keeps the list in source-index order, matching the historical
// all-sources offer scan.
func (n *Network) markOfferable(s *source) {
	if s.inOffer || s.offering != noPkt {
		return
	}
	if s.retx.empty() && s.queue.empty() {
		return
	}
	s.inOffer = true
	n.offerSrcs = append(n.offerSrcs, s.idx)
	for i := len(n.offerSrcs) - 1; i > 0 && n.offerSrcs[i-1] > s.idx; i-- {
		n.offerSrcs[i], n.offerSrcs[i-1] = n.offerSrcs[i-1], n.offerSrcs[i]
	}
}

// MustNew is New that panics on configuration errors, for tests and
// experiment drivers with static configurations.
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Stats exposes the measurement collector.
func (n *Network) Stats() *stats.Collector { return n.coll }

// Config returns the configuration this network was last (re)built for.
// Workload drivers use it to resolve injector indices and populations.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current simulation cycle.
func (n *Network) Now() sim.Cycle { return n.clock.Now() }

// Graph exposes the topology graph (read-only use).
func (n *Network) Graph() *topology.Graph { return n.graph }

// Mode returns the QoS policy in effect.
func (n *Network) Mode() qos.Mode { return n.mode }

// InFlight returns the number of packets injected but not yet delivered
// (or awaiting retransmission).
func (n *Network) InFlight() int { return n.inFlight }

// Frames returns how many PVC frame boundaries (counter flushes and quota
// refills) have fired. Zero outside PVC mode.
func (n *Network) Frames() int { return int(n.frameCount) }

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	now := n.clock.Now()
	n.fireReleases(now)
	n.processEvents(now)
	n.fireDelivers(now)
	n.fireAcks(now)
	n.fireHeads(now)
	if n.frame != nil && n.frame.Expired(now) {
		for i := range n.ports {
			n.ports[i].table.Flush()
		}
		if n.quota != nil {
			n.quota.Refill()
		}
		n.frameCount++
	}
	// Fire exactly the sources whose arrival cycle has come (ties in
	// source-index order, like the historical all-sources scan) and
	// reschedule each for its next draw. The bucket is re-read every
	// iteration: a replay source can re-file itself for this same cycle
	// mid-loop (index-ordered after the entry being fired), and the
	// insert may grow the bucket's backing array.
	if len(n.arrivals.far.items) > 0 {
		n.arrivals.drainFar(now)
	}
	abi := int(uint64(now) & ringMask)
	if len(n.arrivals.buckets[abi]) > 0 {
		for k := 0; k < len(n.arrivals.buckets[abi]); k++ {
			idx := n.arrivals.buckets[abi][k]
			s := &n.srcs[idx]
			n.generate(s, now)
			if n.arrivalEligible(s) {
				n.arrivals.add(s.nextArrival, idx, now)
			}
		}
		b := n.arrivals.buckets[abi]
		n.arrivals.near -= len(b)
		n.arrivals.buckets[abi] = b[:0]
		n.arrivals.words[abi>>6] &^= 1 << uint(abi&63)
	}
	// Offer pass over the sources actually holding injectable packets, in
	// source-index order. A source whose packet just went on offer (or
	// that somehow lost its backlog) leaves the list; it re-enters
	// through markOfferable when new work appears.
	liveSrcs := n.offerSrcs[:0]
	for _, si := range n.offerSrcs {
		s := &n.srcs[si]
		n.offer(s, now)
		if s.offering == noPkt && (!s.retx.empty() || !s.queue.empty()) &&
			!n.windowCapped(s) {
			liveSrcs = append(liveSrcs, si)
		} else {
			s.inOffer = false
		}
	}
	n.offerSrcs = liveSrcs
	// Arbitrate only the ports holding candidates, clearing the bits of
	// the ones that have gone empty as they are reached. Ports emptied
	// behind the scan (an inversion preemption at a later port can
	// withdraw a waiter from an earlier, already-visited one) keep their
	// bit until the next pass, which is harmless: set bits fire in
	// ascending port-ID order, so a stale bit costs one length check and
	// can never perturb arbitration order. No bit is ever set mid-scan —
	// register runs only from the offer pass and head arrivals, both
	// earlier in the cycle — so iterating a per-word snapshot is exact.
	for wi := range n.activeW {
		for w := n.activeW[wi]; w != 0; {
			b := w & -w
			w &^= b
			pi := wi<<6 + bits.TrailingZeros64(b)
			p := &n.ports[pi]
			if len(p.waiters) > 0 {
				n.arbitrate(p, now)
			}
			if len(p.waiters) == 0 {
				n.activeW[wi] &^= b
			}
		}
	}
	if n.auditEvery > 0 && now >= n.auditAt {
		n.auditAt = now + n.auditEvery
		n.mustAudit(now)
	}
	n.clock.Tick()
}

// Run advances the simulation by the given number of cycles, fast-
// forwarding over provably idle windows unless Config.DisableIdleSkip is
// set. The clock lands on exactly the same final cycle either way.
func (n *Network) Run(cycles int) {
	end := n.clock.Now() + sim.Cycle(cycles)
	for now := n.clock.Now(); now < end; now = n.clock.Now() {
		n.checkAbort(now)
		if !n.cfg.DisableIdleSkip {
			if wake, ok := n.nextWake(now); ok {
				if wake > end {
					wake = end
				}
				n.clock.Advance(wake - now)
				continue
			}
		}
		n.Step()
	}
}

// neverCycle is effectively +infinity for next-wake computations.
const neverCycle = sim.Cycle(1) << 62

// nextWake reports the earliest future cycle at which the engine could
// have work, or ok=false when the current cycle itself may have work and
// must be stepped. The fast-forward is provably mechanical: a cycle is
// skippable only when no port holds an arbitration candidate (so neither
// allocation nor inversion preemption can fire), and the wake cycle is the
// minimum over everything that is scheduled to change that — the event
// heap (head arrivals, deliveries, VC releases, ACKs/NACKs), the next PVC
// frame boundary (counter flush + quota refill), and each live source's
// next act (injection-VC free at busyUntil, or the precomputed geometric
// arrival). Cycles in between execute no state change at all, so skipping
// them is bit-identical to ticking through them.
func (n *Network) nextWake(now sim.Cycle) (wake sim.Cycle, ok bool) {
	if n.waiterCount > 0 || n.events.dueNow(now) {
		return 0, false
	}
	wake = neverCycle
	if at, evOk := n.events.nextAt(now); evOk {
		if at <= now {
			return 0, false
		}
		wake = at
	}
	if n.frame != nil {
		if next := n.frame.Next(); next < wake {
			wake = next
		}
	}
	if n.arrivals.Len() > 0 {
		if a, aOk := n.arrivals.nextAt(now); aOk && a < wake {
			wake = a
		}
	}
	if n.relw.count > 0 {
		// A pending wheel occurrence must fire on its exact cycle (the
		// wheels have no late list), so the fast-forward never jumps one.
		if a, rOk := n.relw.nextAt(now); rOk && a < wake {
			wake = a
		}
	}
	if n.headw.count > 0 {
		if a, hOk := n.headw.nextAt(now); hOk && a < wake {
			wake = a
		}
	}
	if n.delivw.count > 0 {
		if a, dOk := n.delivw.nextAt(now); dOk && a < wake {
			wake = a
		}
	}
	if n.ackw.count > 0 {
		if a, aOk := n.ackw.nextAt(now); aOk && a < wake {
			wake = a
		}
	}
	for _, si := range n.offerSrcs {
		if w := n.nextOffer(&n.srcs[si]); w < wake {
			wake = w
		}
	}
	if wake <= now {
		return 0, false
	}
	return wake, true
}

// WarmupAndMeasure runs warmup cycles with measurement paused, resets the
// collector, then runs the measurement window.
func (n *Network) WarmupAndMeasure(warmup, measure int) {
	n.coll.Pause()
	n.Run(warmup)
	n.measureStart()
	n.Run(measure)
}

// measureStart resets the collector at the warmup/measure boundary and
// emits the phase mark — the single boundary path shared with
// Ensemble.WarmupAndMeasure, so probed lanes and standalone runs see
// the identical annotation (and telemetry re-baselines its deltas at
// exactly the cycle the counters restart).
func (n *Network) measureStart() {
	now := n.clock.Now()
	n.coll.Reset(now)
	n.mark(MarkMeasureStart, -1, now)
}

// RunUntilDrained advances until every injector is exhausted and no packet
// remains in flight, or maxCycles elapse. It returns the cycle of the last
// delivery and whether the network fully drained. Idle windows are
// fast-forwarded like Run's unless Config.DisableIdleSkip is set.
func (n *Network) RunUntilDrained(maxCycles int) (completion sim.Cycle, drained bool) {
	end := n.clock.Now() + sim.Cycle(maxCycles)
	for now := n.clock.Now(); now < end; now = n.clock.Now() {
		n.checkAbort(now)
		if !n.cfg.DisableIdleSkip {
			if n.idle() {
				// Only reachable on the first iteration (a Step that
				// empties the network returns below; a fast-forward
				// never changes state). Mirror the tick engine, which
				// always executes one no-op Step before its idle check,
				// so the final clock — and a frame flush, if that step
				// sits on a boundary — stay bit-identical.
				n.Step()
				return n.coll.LastDelivery, true
			}
			if wake, ok := n.nextWake(now); ok {
				if wake > end {
					wake = end
				}
				n.clock.Advance(wake - now)
				continue
			}
		}
		n.Step()
		if n.idle() {
			return n.coll.LastDelivery, true
		}
	}
	return n.coll.LastDelivery, n.idle()
}

// idle reports whether no work remains anywhere in the network, in O(1):
// nothing in flight, no scheduled event, no arbitration candidate, no
// future arrival (sources leave the arrival heap permanently once their
// next draw lands past StopAt), and no source holding an injectable
// backlog. A source with outstanding window slots always has a pending
// ACK/NACK somewhere in the event chain, so the event check covers
// retransmission obligations too. Pending bookkeeping events — unfired
// fault edges and the watchdog timer — act on no packet and are excluded:
// a drained network with a fault scheduled next week is still drained.
func (n *Network) idle() bool {
	return n.inFlight == 0 && n.events.Len() == n.sysEvents && n.relw.count == 0 &&
		n.headw.count == 0 && n.delivw.count == 0 && n.ackw.count == 0 &&
		n.waiterCount == 0 && n.arrivals.Len() == 0 && len(n.offerSrcs) == 0
}
