// Package network is the cycle-driven simulator of the QoS-enabled shared
// region: eight column routers of one of five topologies, virtual
// cut-through flow control, PVC preemptive quality-of-service with its ACK
// network and source retransmission windows, and the two reference
// policies (idealized per-flow queueing and no-QoS round-robin).
//
// The engine is packet-granular with exact flit timing: a transfer
// occupies its output port for one cycle per flit, and head/tail arrival
// cycles are tracked per hop, which under virtual cut-through (no flit
// interleaving within a VC) is equivalent to flit-level simulation for
// every metric the paper reports.
package network

import (
	"fmt"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Config assembles one simulated shared-region network.
type Config struct {
	Kind  topology.Kind
	Nodes int // column height; defaults to topology.ColumnNodes
	QoS   qos.Config
	// Workload supplies the traffic injectors. QoS.Rates must cover the
	// workload's full flow population (active or not).
	Workload traffic.Workload
	Seed     uint64
}

// pktState tracks where a packet is in its lifecycle.
type pktState uint8

const (
	stAtSource pktState = iota
	stWaiting           // buffered, registered as an arbitration candidate
	stMoving            // won arbitration; flits in flight to the next buffer
	stDelivered
	stDead // preempted; awaiting NACK and retransmission
)

// pkt wraps a packet with the engine-side bookkeeping: its path, current
// residence (buffer + VC), in-progress allocation and hop accounting.
type pkt struct {
	*noc.Packet
	src  *source
	legs []topology.Leg

	state pktState
	// Current residence (nil/-1 while at source or fully in flight).
	curBuf *inBuf
	curVC  int
	// creditDelay is the wire time for this buffer's free-VC credit to
	// reach the upstream allocator, recorded at head arrival.
	creditDelay int
	// Next-hop allocation while moving.
	nxtBuf *inBuf
	nxtVC  int

	// enq is when the packet became an arbitration candidate at its
	// current position.
	enq sim.Cycle
	// gen is the recycling generation of this wrapper. The engine reuses
	// pkt+noc.Packet pairs through the network's free list once the
	// logical packet is fully acknowledged; events carry the generation
	// they were scheduled against, so an event that outlives its packet's
	// lifetime becomes a no-op instead of acting on the reused wrapper.
	gen uint32
	// frameStamp is the PVC frame in which the carried priority was
	// computed. Priorities are frame-relative: a stamp from an earlier
	// frame reads as zero consumption, exactly like the flushed
	// counters it was derived from.
	frameStamp int
	// weightedHops accumulates mesh-normalized hop traversals of the
	// current attempt; wasted on preemption.
	weightedHops int
	wasPreempted bool
}

// Network is one simulated shared-region column.
type Network struct {
	cfg   Config
	graph *topology.Graph
	mode  qos.Mode

	clock  sim.Clock
	rng    *sim.RNG
	ports  []*outPort
	bufs   []*inBuf
	srcs   []*source
	quota  *qos.ReservedQuota
	frame  *qos.FrameTimer
	events eventHeap
	coll   *stats.Collector

	nextPktID  uint64
	inFlight   int // packets injected and neither delivered nor dead
	frameCount int
	// margin is the preemption hysteresis in quantized classes.
	margin noc.Priority

	// active is the in-order subset of srcs that may still generate or
	// offer work; Step scans it instead of the full injector population.
	// Exhaustion is permanent (a stopped source with an empty queue and
	// no outstanding window can never produce work again), so sources are
	// swept out periodically, preserving relative order for determinism.
	active []*source
	sweep  int
	// pktFree recycles pkt+noc.Packet pairs of fully-acknowledged
	// packets, making steady-state injection allocation-free. Disabled
	// while diagnostic hooks are installed, because hook observers may
	// retain packet pointers past the packet's lifetime.
	pktFree []*pkt
	// bidScratch and failedScratch are reusable arbitration buffers
	// (see arbitrate); valid only within one arbitrate call.
	bidScratch    []bid
	failedScratch []*inBuf

	// preemptHook and grantHook, when non-nil, observe every preemption
	// and grant (tests and diagnostics).
	preemptHook func(*inBuf, *pkt)
	grantHook   func(*outPort, *pkt)
}

// New builds a network from the configuration. It validates that the QoS
// flow population covers the workload.
func New(cfg Config) (*Network, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = topology.ColumnNodes
	}
	if err := cfg.QoS.Validate(); err != nil {
		return nil, err
	}
	if want := cfg.Workload.TotalFlows(); len(cfg.QoS.Rates) != want {
		return nil, fmt.Errorf("network: QoS covers %d flows, workload needs %d", len(cfg.QoS.Rates), want)
	}
	for _, s := range cfg.Workload.Specs {
		if int(s.Node) < 0 || int(s.Node) >= cfg.Nodes {
			return nil, fmt.Errorf("network: injector flow %d at node %d outside column of %d", s.Flow, s.Node, cfg.Nodes)
		}
		if s.Rate < 0 || s.Rate > 1 {
			return nil, fmt.Errorf("network: injector flow %d rate %v outside [0,1]", s.Flow, s.Rate)
		}
		if s.RequestFraction < 0 || s.RequestFraction > 1 {
			return nil, fmt.Errorf("network: injector flow %d request fraction %v outside [0,1]", s.Flow, s.RequestFraction)
		}
	}

	n := &Network{
		cfg:   cfg,
		graph: topology.NewGraph(cfg.Kind, cfg.Nodes),
		mode:  cfg.QoS.Mode,
		rng:   sim.NewRNG(cfg.Seed ^ 0x74616e6f71), // "tanoq"
		coll:  stats.NewCollector(cfg.Workload.TotalFlows()),
	}
	n.margin = noc.Priority(cfg.QoS.EffectiveMargin())
	n.ports = make([]*outPort, len(n.graph.Ports))
	for i, spec := range n.graph.Ports {
		p := &outPort{id: topology.PortID(i), spec: spec}
		if n.mode != qos.NoQoS {
			p.table = qos.NewFlowTableWithQuantum(cfg.QoS.Rates, cfg.QoS.EffectiveQuantum())
		}
		n.ports[i] = p
	}
	n.bufs = make([]*inBuf, len(n.graph.Bufs))
	for i, spec := range n.graph.Bufs {
		n.bufs[i] = newInBuf(topology.BufID(i), spec, n.mode == qos.PerFlowQueue)
	}
	if n.mode == qos.PVC {
		if !cfg.QoS.DisableReservedQuota {
			n.quota = qos.NewReservedQuota(cfg.QoS.Rates, cfg.QoS.FrameCycles)
		}
		n.frame = qos.NewFrameTimer(cfg.QoS.FrameCycles)
	}
	for _, spec := range cfg.Workload.Specs {
		n.srcs = append(n.srcs, newSource(n, spec))
	}
	n.active = append([]*source(nil), n.srcs...)
	n.compactSources(0)
	return n, nil
}

// MustNew is New that panics on configuration errors, for tests and
// experiment drivers with static configurations.
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Stats exposes the measurement collector.
func (n *Network) Stats() *stats.Collector { return n.coll }

// Now returns the current simulation cycle.
func (n *Network) Now() sim.Cycle { return n.clock.Now() }

// Graph exposes the topology graph (read-only use).
func (n *Network) Graph() *topology.Graph { return n.graph }

// Mode returns the QoS policy in effect.
func (n *Network) Mode() qos.Mode { return n.mode }

// InFlight returns the number of packets injected but not yet delivered
// (or awaiting retransmission).
func (n *Network) InFlight() int { return n.inFlight }

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	now := n.clock.Now()
	n.processEvents(now)
	if n.frame != nil && n.frame.Expired(now) {
		for _, p := range n.ports {
			p.table.Flush()
		}
		if n.quota != nil {
			n.quota.Refill()
		}
		n.frameCount++
	}
	for _, s := range n.active {
		s.generate(now)
	}
	for _, s := range n.active {
		s.offer(now)
	}
	for _, p := range n.ports {
		n.arbitrate(p, now)
	}
	if n.sweep--; n.sweep <= 0 {
		n.compactSources(now)
		n.sweep = sourceSweepInterval
	}
	n.clock.Tick()
}

// sourceSweepInterval is how often Step re-filters the active-source list.
// Sweeping is O(sources), so it is amortized over many cycles; exhaustion
// is permanent, so a late sweep only costs wasted scans, never correctness.
const sourceSweepInterval = 1024

// compactSources drops permanently-exhausted injectors from the active
// list, preserving relative order (registration order feeds the NoQoS
// round-robin arbiter, so it must be stable across sweeps).
func (n *Network) compactSources(now sim.Cycle) {
	live := n.active[:0]
	for _, s := range n.active {
		if !s.exhausted(now) {
			live = append(live, s)
		}
	}
	for i := len(live); i < len(n.active); i++ {
		n.active[i] = nil
	}
	n.active = live
}

// Run advances the simulation by the given number of cycles.
func (n *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		n.Step()
	}
}

// WarmupAndMeasure runs warmup cycles with measurement paused, resets the
// collector, then runs the measurement window.
func (n *Network) WarmupAndMeasure(warmup, measure int) {
	n.coll.Pause()
	n.Run(warmup)
	n.coll.Reset(n.clock.Now())
	n.Run(measure)
}

// RunUntilDrained steps until every injector is exhausted and no packet
// remains in flight, or maxCycles elapse. It returns the cycle of the last
// delivery and whether the network fully drained.
func (n *Network) RunUntilDrained(maxCycles int) (completion sim.Cycle, drained bool) {
	for i := 0; i < maxCycles; i++ {
		n.Step()
		if n.idle() {
			return n.coll.LastDelivery, true
		}
	}
	return n.coll.LastDelivery, n.idle()
}

// idle reports whether no work remains anywhere in the network. Sources
// missing from the active list are permanently exhausted, so scanning the
// active subset is sufficient.
func (n *Network) idle() bool {
	if n.inFlight > 0 || n.events.Len() > 0 {
		return false
	}
	for _, s := range n.active {
		if !s.exhausted(n.clock.Now()) {
			return false
		}
	}
	return true
}

// newPacket mints a packet for a source, reusing a recycled pkt+noc.Packet
// pair when one is available. Every field of both structs is rewritten, so
// a recycled packet is indistinguishable from a fresh allocation and
// recycling cannot perturb simulation results.
func (n *Network) newPacket(s *source, class noc.Class, dst noc.NodeID, now sim.Cycle) *pkt {
	n.nextPktID++
	var p *pkt
	if k := len(n.pktFree); k > 0 {
		p = n.pktFree[k-1]
		n.pktFree[k-1] = nil
		n.pktFree = n.pktFree[:k-1]
		pk, gen := p.Packet, p.gen
		*pk = noc.Packet{}
		*p = pkt{Packet: pk, gen: gen}
	} else {
		p = &pkt{Packet: &noc.Packet{}}
	}
	p.Packet.ID = n.nextPktID
	p.Packet.Flow = s.spec.Flow
	p.Packet.Src = s.spec.Node
	p.Packet.Dst = dst
	p.Packet.Class = class
	p.Packet.Size = class.Flits()
	p.Packet.Created = now
	p.src = s
	p.curVC = -1
	p.nxtVC = -1
	return p
}

// recycle returns a fully-acknowledged packet's wrapper to the free list.
// The generation bump turns any event still scheduled against this wrapper
// into a no-op. Recycling is suppressed while diagnostic hooks are
// installed: hooks hand out *pkt pointers that tests may retain.
func (n *Network) recycle(p *pkt) {
	if n.preemptHook != nil || n.grantHook != nil {
		return
	}
	p.gen++
	n.pktFree = append(n.pktFree, p)
}
