package network

import (
	"fmt"
	"os"
	"strconv"

	"tanoq/internal/sim"
)

// This file is the opt-in invariant auditor: a read-only sweep over every
// engine container that cross-checks the redundant encodings the
// data-oriented core maintains — VC occupancy bitmaps against owner
// arrays, packet residence against buffer ownership, source windows
// against live attempt censuses, the free list against slot liveness —
// and the event ring against the draining VCs and parked packets whose
// only forward reference is a scheduled event. Any disagreement is a
// state-corruption bug; the auditor turns it into an immediate, located
// failure instead of a silently wrong simulation result.
//
// The auditor runs every Config.AuditEvery stepped cycles (Step checks
// one comparison per cycle when disabled), or process-wide via the
// TANOQ_AUDIT environment variable: set it to an integer interval, or to
// any non-numeric value for the default interval. CI runs the
// equivalence and determinism suites under TANOQ_AUDIT (make audit).

// defaultAuditEvery is the audit interval when TANOQ_AUDIT is set
// without a numeric value.
const defaultAuditEvery = 1024

// envAuditEvery is the process-wide audit interval from TANOQ_AUDIT
// (zero = disabled).
var envAuditEvery = func() sim.Cycle {
	v, set := os.LookupEnv("TANOQ_AUDIT")
	if !set {
		return 0
	}
	if k, err := strconv.Atoi(v); err == nil && k > 0 {
		return sim.Cycle(k)
	}
	return defaultAuditEvery
}()

// mustAudit runs the auditor and panics on the first violation.
func (n *Network) mustAudit(now sim.Cycle) {
	if err := n.AuditInvariants(); err != nil {
		panic(fmt.Sprintf("network: invariant audit failed at cycle %d: %v", now, err))
	}
}

// forEach visits every pending event: ring buckets, the late list and the
// far-future spillway. Visit order is unspecified — audit use only.
func (r *eventRing) forEach(fn func(*event)) {
	for i := range r.buckets {
		b := r.buckets[i]
		for j := range b {
			fn(&b[j])
		}
	}
	for j := range r.late {
		fn(&r.late[j])
	}
	for j := range r.far.items {
		fn(&r.far.items[j])
	}
}

// AuditInvariants cross-checks the engine's redundant state encodings and
// returns the first violation found, or nil. It is read-only and safe to
// call between Steps at any time. Checks that depend on packet-slot
// recycling are skipped while a diagnostic hook suppresses it.
func (n *Network) AuditInvariants() error {
	// Free-list integrity, and the slot-liveness map every later check
	// prices against.
	isFree := make([]bool, len(n.arena))
	for _, h := range n.free {
		if h == noPkt || int(h) >= len(n.arena) {
			return fmt.Errorf("free list holds invalid handle %d (arena %d)", h, len(n.arena))
		}
		if isFree[h] {
			return fmt.Errorf("free list holds handle %d twice", h)
		}
		isFree[h] = true
	}

	// Pending-event census: per-packet events keyed by gen-current handle,
	// scheduled releases keyed by (buf, vc, gen), and the bookkeeping
	// events sysEvents claims are outstanding.
	type relKey struct {
		buf int32
		vc  int16
		gen uint32
	}
	pendingRel := make(map[relKey]bool)
	pktEvents := make(map[pktH]bool)
	sys := 0
	n.events.forEach(func(ev *event) {
		switch ev.kind {
		case evRelease:
			pendingRel[relKey{ev.buf, ev.vc, ev.gen}] = true
		case evFault, evWatchdog, evProbe:
			sys++
		case evInject:
		default:
			if ev.p != noPkt && int(ev.p) < len(n.arena) && n.arena[ev.p].gen == ev.pgen {
				pktEvents[ev.p] = true
			}
		}
	})
	// Near-future releases ride the dedicated release wheel rather than
	// the event ring; they justify draining VCs all the same.
	for bi := range n.relw.buckets {
		for _, rec := range n.relw.buckets[bi] {
			pendingRel[relKey{rec.buf, rec.vc, rec.gen}] = true
		}
	}
	// Likewise heads, delivers and ACKs on their wheels anchor live slots.
	for _, w := range []*pktWheel{&n.headw, &n.delivw, &n.ackw} {
		for bi := range w.buckets {
			for _, rec := range w.buckets[bi] {
				if rec.p != noPkt && int(rec.p) < len(n.arena) && n.arena[rec.p].gen == rec.pgen {
					pktEvents[rec.p] = true
				}
			}
		}
	}
	if sys != n.sysEvents {
		return fmt.Errorf("sysEvents says %d bookkeeping events pending, ring holds %d", n.sysEvents, sys)
	}

	// VC pools: bitmap/owner/occupied agreement, owner liveness, and a
	// justification for every draining VC (owned, but its packet has moved
	// on: a scheduled release with the current generation must exist).
	for bi := range n.bufs {
		b := &n.bufs[bi]
		occ := int32(0)
		for i := int32(0); i < b.nvc; i++ {
			free := b.freeW[i>>6]&(1<<uint(i&63)) != 0
			h := b.owner[i]
			if free != (h == noPkt) {
				return fmt.Errorf("buf %d (%s) vc %d: free bit %v but owner %d", bi, b.spec.Name, i, free, h)
			}
			if h == noPkt {
				continue
			}
			occ++
			if int(h) >= len(n.arena) {
				return fmt.Errorf("buf %d (%s) vc %d: owner handle %d outside arena", bi, b.spec.Name, i, h)
			}
			if isFree[h] {
				// A freed owner is legitimate only for a draining VC: the
				// packet was delivered and its slot recycled while the
				// scheduled credit-loop release is still in flight. Without
				// that release the VC is leaked to a dead slot.
				if !pendingRel[relKey{int32(bi), int16(i), b.gens[i]}] {
					return fmt.Errorf("buf %d (%s) vc %d: owned by recycled slot %d with no pending release", bi, b.spec.Name, i, h)
				}
				continue
			}
			p := &n.arena[h]
			resident := (p.curBuf == int32(bi) && p.curVC == i) || (p.nxtBuf == int32(bi) && p.nxtVC == i)
			if !resident && !pendingRel[relKey{int32(bi), int16(i), b.gens[i]}] {
				return fmt.Errorf("buf %d (%s) vc %d: held by pkt %d (flow %d, %s) that neither resides nor drains (no pending release)",
					bi, b.spec.Name, i, p.ID, p.Flow, p.state)
			}
		}
		if occ != b.occupied {
			return fmt.Errorf("buf %d (%s): occupied says %d, %d VCs actually owned", bi, b.spec.Name, b.occupied, occ)
		}
	}

	// Residence symmetry for parked packets: a buffered arbitration
	// candidate must own the VC it sits in and hold no next-hop claim.
	// (A moving or just-delivered packet's claims can legitimately trail
	// an early credit-loop release — the terminal's release fires before
	// the tail arrives — so only the stWaiting direction is invariant.)
	for h := pktH(1); int(h) < len(n.arena); h++ {
		if isFree[h] {
			continue
		}
		p := &n.arena[h]
		if p.state != stWaiting {
			continue
		}
		if p.curBuf == noBuf {
			// The injection VC: an offered packet waits at its source.
			continue
		}
		if n.bufs[p.curBuf].owner[p.curVC] != h {
			return fmt.Errorf("waiting pkt %d (slot %d) claims buf %d vc %d, owned by %d",
				p.ID, h, p.curBuf, p.curVC, n.bufs[p.curBuf].owner[p.curVC])
		}
		if p.nxtBuf != noBuf {
			return fmt.Errorf("waiting pkt %d (slot %d) holds a next-hop claim on buf %d vc %d",
				p.ID, h, p.nxtBuf, p.nxtVC)
		}
	}

	// Candidate lists: waiterCount agreement, active-list membership, and
	// live waiters only.
	waiters := 0
	for pi := range n.ports {
		port := &n.ports[pi]
		waiters += len(port.waiters)
		if len(port.waiters) > 0 && n.activeW[pi>>6]&(1<<(uint(pi)&63)) == 0 {
			return fmt.Errorf("port %d (%s) holds %d waiters but its active bit is clear", pi, port.spec.Name, len(port.waiters))
		}
		for _, h := range port.waiters {
			if int(h) >= len(n.arena) || isFree[h] {
				return fmt.Errorf("port %d (%s) waiter %d is not a live slot", pi, port.spec.Name, h)
			}
		}
	}
	if waiters != n.waiterCount {
		return fmt.Errorf("waiterCount says %d, ports hold %d", n.waiterCount, waiters)
	}

	// The remaining checks census window slots and slot reachability,
	// which assume recycling is live; a diagnostic hook suppresses it.
	if n.preemptHook != nil || n.grantHook != nil {
		return nil
	}

	// Per-source window conservation: injected-unACKed slots (in network,
	// delivered-awaiting-ACK, dead-awaiting-retry) plus the retransmission
	// queue must equal the window count. Reachability: every live slot must
	// be findable from a source container, a VC, or a pending event — an
	// unreachable live slot is a leak.
	inRetx := make(map[pktH]int32)
	queued := make(map[pktH]bool)
	for si := range n.srcs {
		s := &n.srcs[si]
		for i := s.retx.head; i < len(s.retx.items); i++ {
			inRetx[s.retx.items[i]] = s.idx
		}
		for i := s.queue.head; i < len(s.queue.items); i++ {
			queued[s.queue.items[i]] = true
		}
	}
	held := make([]int, len(n.srcs))
	for h := pktH(1); int(h) < len(n.arena); h++ {
		if isFree[h] {
			continue
		}
		p := &n.arena[h]
		if _, retx := inRetx[h]; retx {
			held[p.srcIdx]++
			continue
		}
		if queued[h] {
			continue
		}
		s := &n.srcs[p.srcIdx]
		if s.offering == h {
			continue
		}
		// Not parked at its source: the slot holds a window slot and must
		// be anchored somewhere the engine will come back to.
		held[p.srcIdx]++
		anchored := p.curBuf != noBuf || p.nxtBuf != noBuf || pktEvents[h]
		if p.state == stWaiting {
			anchored = true // registered as a candidate (checked above)
		}
		if !anchored {
			return fmt.Errorf("pkt %d (slot %d, flow %d, %s) is live but unreachable: not queued, offered, buffered or scheduled",
				p.ID, h, p.Flow, p.state)
		}
	}
	for si := range n.srcs {
		s := &n.srcs[si]
		if held[si] != s.window {
			return fmt.Errorf("source %d (flow %d): window says %d outstanding, census finds %d",
				si, s.spec.Flow, s.window, held[si])
		}
	}
	return nil
}
