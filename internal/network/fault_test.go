package network

import (
	"strings"
	"testing"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// faultCfg builds a finite uniform-random cell with the given fault
// schedule and recovery knobs.
func faultCfg(kind topology.Kind, mode qos.Mode, faults FaultConfig, seed uint64) Config {
	w := traffic.UniformRandom(topology.ColumnNodes, 0.02).WithStop(12_000)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.Mode = mode
	return Config{Kind: kind, QoS: cfg, Workload: w, Seed: seed, Faults: faults}
}

// drainFingerprint runs a cell to completion and captures every
// observable, including the recovery counters.
func drainFingerprint(t *testing.T, n *Network, maxCycles int) skipFingerprint {
	t.Helper()
	n.WarmupAndMeasure(0, 12_000)
	if _, drained := n.RunUntilDrained(maxCycles); !drained {
		t.Fatalf("did not drain (in flight %d, events %d)", n.InFlight(), n.events.Len())
	}
	fp := fingerprint(n)
	fp.flitsByFlow = n.Stats().FlitsByFlow()
	return fp
}

// transitPort returns an output port on the replica-0 route between two
// distant nodes — a link that carries real traffic in every topology.
func transitPort(g *topology.Graph) int {
	legs := g.Path(0, noc.NodeID(g.Nodes-1), 0)
	return int(legs[0].Out)
}

// hotspotEjection returns the ejection port into the hotspot node — the
// most contended link of a hotspot workload, so a fault window on it is
// guaranteed to catch transfers mid-flight.
func hotspotEjection(g *topology.Graph) int {
	legs := g.Path(noc.NodeID(g.Nodes-1), traffic.HotspotNode, 0)
	return int(legs[len(legs)-1].Out)
}

// hotspotFaultCfg builds a finite hotspot cell with the given fault
// schedule — the aggregated traffic keeps the faulted ejection port busy.
func hotspotFaultCfg(kind topology.Kind, mode qos.Mode, faults FaultConfig, seed uint64) Config {
	w := traffic.Hotspot(topology.ColumnNodes, 0.02).WithStop(12_000)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.Mode = mode
	return Config{Kind: kind, QoS: cfg, Workload: w, Seed: seed, Faults: faults}
}

// TestFaultedRunSkipEquivalence pins the faulted counterpart of the
// idle-skip proof: a run with transient and permanent faults, router
// stalls and retry timers in play is bit-identical with idle skipping on
// and off, for every topology and QoS mode. Fault edges and retry
// timeouts are first-class events, so the skip horizon covers them
// exactly.
func TestFaultedRunSkipEquivalence(t *testing.T) {
	for _, kind := range topology.Kinds() {
		for _, mode := range []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS} {
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				g := topology.NewGraph(kind, topology.ColumnNodes)
				faults := FaultConfig{
					Windows: []noc.FaultWindow{
						{Kind: noc.FaultLinkTransient, Port: transitPort(g), From: 3_000, Until: 6_000},
						{Kind: noc.FaultRouterStall, Node: 3, From: 7_000, Until: 8_000},
					},
					RetryTimeout: 500,
					MaxRetries:   6,
				}
				run := func(disable bool) skipFingerprint {
					cfg := faultCfg(kind, mode, faults, 41)
					cfg.DisableIdleSkip = disable
					return drainFingerprint(t, MustNew(cfg), 600_000)
				}
				ticked, skipped := run(true), run(false)
				if !equalFingerprints(ticked, skipped) {
					t.Errorf("faulted run diverges across idle-skip settings:\nticked:  %+v\nskipped: %+v", ticked, skipped)
				}
			})
		}
	}
}

// TestFaultedRunsAreReproducible pins run-to-run determinism with faults
// and recovery in play: two engines built from the same configuration
// produce identical observables, and a dirty engine Reset to the faulted
// configuration matches a fresh build.
func TestFaultedRunsAreReproducible(t *testing.T) {
	g := topology.NewGraph(topology.MECS, topology.ColumnNodes)
	faults := FaultConfig{
		Windows: []noc.FaultWindow{
			{Kind: noc.FaultLinkTransient, Port: hotspotEjection(g), From: 2_000, Until: 9_000},
		},
		RetryTimeout: 400,
		MaxRetries:   8,
	}
	cfg := hotspotFaultCfg(topology.MECS, qos.PVC, faults, 7)
	want := drainFingerprint(t, MustNew(cfg), 600_000)
	if want.faultDrops == 0 {
		t.Fatal("fault schedule never struck in-flight traffic; the test exercises nothing")
	}
	again := drainFingerprint(t, MustNew(cfg), 600_000)
	if !equalFingerprints(want, again) {
		t.Errorf("identical faulted runs diverged:\nfirst:  %+v\nsecond: %+v", want, again)
	}
	dirty := MustNew(hotspotFaultCfg(topology.MeshX2, qos.NoQoS, FaultConfig{}, 5))
	dirty.Run(4_000) // mid-simulation state to be cleared
	if err := dirty.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	reset := drainFingerprint(t, dirty, 600_000)
	if !equalFingerprints(want, reset) {
		t.Errorf("reset faulted run diverged from fresh build:\nfresh: %+v\nreset: %+v", want, reset)
	}
}

// TestTransientFaultRecovery pins the headline recovery contract: a
// multi-thousand-cycle link outage with end-to-end retransmission
// enabled recovers at least 99.9% delivery in every QoS mode. The RTO
// doubling makes the cumulative backoff (500+1000+...) outlast the
// outage, so some retransmission of every lost packet lands after the
// heal.
func TestTransientFaultRecovery(t *testing.T) {
	for _, mode := range []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS} {
		t.Run(mode.String(), func(t *testing.T) {
			g := topology.NewGraph(topology.MeshX1, topology.ColumnNodes)
			faults := FaultConfig{
				Windows: []noc.FaultWindow{
					{Kind: noc.FaultLinkTransient, Port: hotspotEjection(g), From: 2_000, Until: 8_000},
				},
				RetryTimeout: 500,
				MaxRetries:   8,
			}
			n := MustNew(hotspotFaultCfg(topology.MeshX1, mode, faults, 11))
			fp := drainFingerprint(t, n, 1_000_000)
			st := n.Stats()
			if st.FaultDrops == 0 {
				t.Fatal("outage never caught in-flight traffic; pick a busier port")
			}
			if st.RecoveredPackets == 0 {
				t.Error("no packet recovered through retransmission")
			}
			if frac := st.DeliveredFraction(); frac < 0.999 {
				t.Errorf("delivered fraction %.5f < 0.999 (delivered %d, dropped %d, fault kills %d, retries %d)",
					frac, st.TotalDelivered, st.TotalDropped, st.FaultDrops, st.TotalRetries)
			}
			if fp.retries == 0 {
				t.Error("recovery happened without any timeout retry being counted")
			}
		})
	}
}

// TestPermanentFaultReroute pins deterministic rerouting: on a
// replicated mesh, permanently killing a replica-0 channel link diverts
// its traffic onto the surviving replicas and every packet still
// delivers — zero drops once the in-flight casualties of the strike
// itself are retransmitted.
func TestPermanentFaultReroute(t *testing.T) {
	g := topology.NewGraph(topology.MeshX2, topology.ColumnNodes)
	dead := transitPort(g)
	if alt := int(g.Path(0, noc.NodeID(g.Nodes-1), 1)[0].Out); alt == dead {
		t.Fatalf("replicas share first-leg port %d; test assumes disjoint channels", dead)
	}
	faults := FaultConfig{
		Windows:      []noc.FaultWindow{{Kind: noc.FaultLinkPermanent, Port: dead, From: 3_000}},
		RetryTimeout: 500,
		MaxRetries:   8,
	}
	n := MustNew(faultCfg(topology.MeshX2, qos.PVC, faults, 23))
	drainFingerprint(t, n, 1_000_000)
	st := n.Stats()
	if st.TotalDropped != 0 {
		t.Errorf("%d packets dropped despite a live replica around the dead link", st.TotalDropped)
	}
	if st.DeliveredFraction() != 1 {
		t.Errorf("delivered fraction %.5f with a full reroute available", st.DeliveredFraction())
	}
}

// TestUnroutableDestinationDrops pins the no-recovery-possible path: on
// the unreplicated mesh a permanently dead link severs some
// source-destination pairs for good. Their packets must be dropped —
// counted, with the retry budget respected — and the network must still
// drain rather than wedge on unroutable backlog.
func TestUnroutableDestinationDrops(t *testing.T) {
	g := topology.NewGraph(topology.MeshX1, topology.ColumnNodes)
	faults := FaultConfig{
		Windows:      []noc.FaultWindow{{Kind: noc.FaultLinkPermanent, Port: transitPort(g), From: 2_000}},
		RetryTimeout: 300,
		MaxRetries:   2,
	}
	n := MustNew(faultCfg(topology.MeshX1, qos.PVC, faults, 29))
	fp := drainFingerprint(t, n, 1_000_000)
	st := n.Stats()
	if st.TotalDropped == 0 {
		t.Error("severed routes produced no drops")
	}
	if frac := st.DeliveredFraction(); frac >= 1 {
		t.Errorf("delivered fraction %.5f; expected real losses", frac)
	}
	if fp.clock == 0 {
		t.Error("clock did not advance")
	}
	// With recovery disabled entirely the run must still drain: kills
	// become immediate drops.
	faults.RetryTimeout, faults.MaxRetries = 0, 0
	n2 := MustNew(faultCfg(topology.MeshX1, qos.PVC, faults, 29))
	drainFingerprint(t, n2, 1_000_000)
	if n2.Stats().TotalDropped == 0 {
		t.Error("no drops with recovery disabled")
	}
}

// TestWatchdogCatchesDeadlock pins the self-checking contract: a
// permanent router stall wedges the column, and the watchdog must catch
// it within its window, panicking with a structured report that names
// the stalled node, the stuck candidates, and carries a non-empty repro
// trace.
func TestWatchdogCatchesDeadlock(t *testing.T) {
	const stalled = 3
	cfg := faultCfg(topology.MeshX1, qos.PVC, FaultConfig{
		Windows: []noc.FaultWindow{{Kind: noc.FaultRouterStall, Node: stalled, From: 1_000}},
	}, 13)
	cfg.WatchdogCycles = 2_000
	n := MustNew(cfg)
	var caught *WatchdogError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("stalled column ran to completion without tripping the watchdog")
			}
			we, ok := r.(*WatchdogError)
			if !ok {
				panic(r)
			}
			caught = we
		}()
		n.Run(200_000)
	}()
	r := &caught.Report
	if r.At-r.LastProgress < cfg.WatchdogCycles {
		t.Errorf("tripped after %d cycles without progress, window is %d", r.At-r.LastProgress, cfg.WatchdogCycles)
	}
	if r.Waiters == 0 || len(r.Ports) == 0 {
		t.Errorf("report shows no stuck candidates: %+v", r)
	}
	found := false
	for _, node := range r.StalledNodes {
		if node == stalled {
			found = true
		}
	}
	if !found {
		t.Errorf("report misses stalled node %d: %v", stalled, r.StalledNodes)
	}
	if len(r.Records) == 0 {
		t.Error("no repro trace captured")
	}
	if s := r.String(); !strings.Contains(s, "stuck at cycle") || !strings.Contains(s, "repro trace") {
		t.Errorf("dump rendering incomplete:\n%s", s)
	}
	if caught.Error() == "" {
		t.Error("empty error string")
	}
}

// TestWatchdogQuietOnHealthyRuns pins the false-positive bound: an armed
// watchdog must survive long legitimate idle stretches (a finite
// workload draining, then nothing) and bursty resumption without
// tripping, and the run must stay bit-identical to an unarmed one on
// every delivery observable.
func TestWatchdogQuietOnHealthyRuns(t *testing.T) {
	run := func(window sim.Cycle) skipFingerprint {
		cfg := faultCfg(topology.MECS, qos.PVC, FaultConfig{}, 31)
		cfg.WatchdogCycles = window
		n := MustNew(cfg)
		n.WarmupAndMeasure(0, 12_000)
		n.Run(100_000) // long idle tail under the armed timer
		fp := fingerprint(n)
		fp.flitsByFlow = n.Stats().FlitsByFlow()
		return fp
	}
	armed, unarmed := run(1_000), run(0)
	if !equalFingerprints(armed, unarmed) {
		t.Errorf("armed watchdog perturbed a healthy run:\narmed:   %+v\nunarmed: %+v", armed, unarmed)
	}
}

// TestAuditCleanOnAdversarialRun pins the auditor against the most
// state-churning configuration the engine has: PVC preemption under
// hotspot overload with transient faults and retransmission timers in
// play, audited at a tight interval throughout. Any invariant the churn
// breaks panics the run.
func TestAuditCleanOnAdversarialRun(t *testing.T) {
	for _, kind := range []topology.Kind{topology.MeshX1, topology.MECS, topology.DPS} {
		t.Run(kind.String(), func(t *testing.T) {
			g := topology.NewGraph(kind, topology.ColumnNodes)
			w := traffic.Hotspot(topology.ColumnNodes, 0.06).WithStop(8_000)
			cfg := qos.DefaultConfig(w.TotalFlows())
			cfg.Mode = qos.PVC
			n := MustNew(Config{
				Kind: kind, QoS: cfg, Workload: w, Seed: 3,
				Faults: FaultConfig{
					Windows: []noc.FaultWindow{
						{Kind: noc.FaultLinkTransient, Port: transitPort(g), From: 1_500, Until: 4_000},
					},
					RetryTimeout: 400,
					MaxRetries:   6,
				},
				AuditEvery: 64,
			})
			if _, drained := n.RunUntilDrained(2_000_000); !drained {
				t.Fatalf("did not drain (in flight %d)", n.InFlight())
			}
			if err := n.AuditInvariants(); err != nil {
				t.Errorf("post-drain audit: %v", err)
			}
		})
	}
}

// TestFaultConfigValidation pins the rejection of malformed schedules.
func TestFaultConfigValidation(t *testing.T) {
	base := faultCfg(topology.MeshX1, qos.PVC, FaultConfig{}, 1)
	cases := []struct {
		name   string
		faults FaultConfig
		wd     sim.Cycle
		audit  sim.Cycle
	}{
		{name: "negative retry timeout", faults: FaultConfig{RetryTimeout: -1}},
		{name: "negative max retries", faults: FaultConfig{MaxRetries: -2}},
		{name: "unknown kind", faults: FaultConfig{Windows: []noc.FaultWindow{{Kind: noc.FaultKind(9), From: 1, Until: 2}}}},
		{name: "zero-length window", faults: FaultConfig{Windows: []noc.FaultWindow{{Kind: noc.FaultLinkTransient, From: 5, Until: 5}}}},
		{name: "inverted window", faults: FaultConfig{Windows: []noc.FaultWindow{{Kind: noc.FaultRouterStall, From: 9, Until: 4}}}},
		{name: "unbounded transient", faults: FaultConfig{Windows: []noc.FaultWindow{{Kind: noc.FaultLinkTransient, From: 5}}}},
		{name: "bounded permanent", faults: FaultConfig{Windows: []noc.FaultWindow{{Kind: noc.FaultLinkPermanent, From: 5, Until: 9}}}},
		{name: "port out of range", faults: FaultConfig{Windows: []noc.FaultWindow{{Kind: noc.FaultLinkTransient, Port: 10_000, From: 1, Until: 2}}}},
		{name: "node out of range", faults: FaultConfig{Windows: []noc.FaultWindow{{Kind: noc.FaultRouterStall, Node: 99, From: 1, Until: 2}}}},
		{name: "negative watchdog", wd: -5},
		{name: "negative audit interval", audit: -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Faults = tc.faults
			cfg.WatchdogCycles = tc.wd
			cfg.AuditEvery = tc.audit
			if _, err := New(cfg); err == nil {
				t.Error("malformed configuration accepted")
			}
		})
	}
}
