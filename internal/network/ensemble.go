package network

import (
	"fmt"
	"sync/atomic"
)

// Ensemble batches the seed axis of a sweep: K lanes of engine state —
// one full Network per lane, identical configurations except for the
// seed — advanced together through bounded-horizon rounds. Sweep grids
// are dominated by cells that differ only in Config.Seed, and running
// them as lanes of one ensemble amortizes everything the seed cannot
// touch: the lanes share one immutable topology graph (routing tables,
// port specs, channel geometry), and the round-robin keeps the engine's
// code and the shared read-only tables hot in cache across lanes instead
// of faulting them back in once per cell.
//
// Bit-identity is the contract that makes batching safe to apply
// anywhere: each lane is a complete, private Network whose only link to
// its siblings is the shared immutable graph, so lane i's simulation is
// exactly the standalone simulation of its configuration — same
// fingerprint, cycle for cycle, for every K and every round length
// (TestEnsembleMatchesStandalone pins the matrix). Run advances each
// lane through its own engine loop, quantum by quantum, so per-lane
// idle-skip fast-forwarding applies inside every round exactly as it
// would standalone: a lane whose next wake lies beyond the round
// boundary crosses the whole round in one clock advance.
//
// An Ensemble is not safe for concurrent use; sweep workers own one
// ensemble per slot, the same discipline as their per-slot Network.
type Ensemble struct {
	lanes []*Network
}

// ensembleQuantum is the round length in cycles: how far each lane runs
// before the round-robin moves on. Long enough that per-lane loop
// overhead vanishes and idle-skip has room to leap, short enough that
// the lanes' working sets revisit the shared tables while they are
// still cached.
const ensembleQuantum = 4096

// NewEnsemble builds one lane per configuration. All configurations
// must describe the same simulation except for Seed (same topology,
// QoS, workload and schedule); the seed axis is the one thing a lane
// owns alone.
func NewEnsemble(cfgs []Config) (*Ensemble, error) {
	e := &Ensemble{}
	if err := e.Reset(cfgs); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset re-targets the ensemble to a new batch of configurations,
// reusing every lane's backing allocations exactly as Network.Reset
// does — a sweep slot runs its whole sequence of ensemble cells on K
// lane allocations. Lane count may change between Resets; a shrinking
// batch trims the live lane set (surplus lane allocations stay in the
// slice's backing array for the next wider batch, but are never driven
// again — their collectors now belong to harvested results). Like
// Network.Reset, a reset lane is bit-identical to a freshly built one.
func (e *Ensemble) Reset(cfgs []Config) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("network: ensemble needs at least one configuration")
	}
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].Kind != cfgs[0].Kind || cfgs[i].Nodes != cfgs[0].Nodes {
			return fmt.Errorf("network: ensemble lane %d is a %v/%d-node cell, lane 0 is %v/%d: lanes may differ only by seed",
				i, cfgs[i].Kind, cfgs[i].Nodes, cfgs[0].Kind, cfgs[0].Nodes)
		}
	}
	if len(cfgs) <= cap(e.lanes) {
		e.lanes = e.lanes[:len(cfgs)]
	} else {
		e.lanes = append(e.lanes[:cap(e.lanes)], make([]*Network, len(cfgs)-cap(e.lanes))...)
	}
	for i := range e.lanes {
		if e.lanes[i] == nil {
			e.lanes[i] = &Network{}
		}
	}
	for i, cfg := range cfgs {
		if i > 0 {
			// Share lane 0's immutable graph: Reset keeps a graph whose
			// kind and node count already match, so pre-seeding the field
			// makes every lane route off one table set. Lane 0 resets
			// first, so its graph is current for this batch.
			e.lanes[i].graph = e.lanes[0].graph
		}
		if err := e.lanes[i].Reset(cfg); err != nil {
			return err
		}
	}
	return nil
}

// Lanes returns the number of lanes of the current batch.
func (e *Ensemble) Lanes() int { return len(e.lanes) }

// Lane returns lane i's network — for per-lane Setup attachments, stats
// harvesting and abort wiring. The returned network belongs to the
// ensemble; drive the simulation through Run, not Network.Run, or the
// lanes' clocks fall out of lockstep.
func (e *Ensemble) Lane(i int) *Network { return e.lanes[i] }

// SetAbort arms every lane with the same cooperative abort flag: one
// deadline covers the batch, and the first lane to reach a cycle
// boundary after the flag trips panics with AbortError exactly like a
// standalone abort (the runner falls back to standalone execution, so
// per-cell deadline semantics are preserved — see runner.RunCellsCtx).
func (e *Ensemble) SetAbort(flag *atomic.Bool) {
	for _, n := range e.lanes {
		n.SetAbort(flag)
	}
}

// Run advances every lane by the given number of cycles, in rounds of
// at most ensembleQuantum cycles per lane. Within a round each lane
// runs its own engine loop with its own idle-skip horizon; a chunked
// Network.Run is state-identical to an unchunked one (fast-forwards
// clamp to the chunk boundary and skipped cycles execute nothing), so
// every lane finishes bit-identical to a standalone Run(cycles).
func (e *Ensemble) Run(cycles int) {
	for cycles > 0 {
		q := ensembleQuantum
		if q > cycles {
			q = cycles
		}
		for _, n := range e.lanes {
			n.Run(q)
		}
		cycles -= q
	}
}

// StepAll advances every lane by exactly one cycle — the lockstep pass
// the allocation and equivalence tests pin (a warm ensemble's combined
// pass allocates nothing).
func (e *Ensemble) StepAll() {
	for _, n := range e.lanes {
		n.Step()
	}
}

// WarmupAndMeasure mirrors Network.WarmupAndMeasure across the batch:
// warmup with every lane's measurement paused, collector resets at the
// warmup boundary (every lane's clock lands on exactly the same cycle),
// then the measurement window.
func (e *Ensemble) WarmupAndMeasure(warmup, measure int) {
	for _, n := range e.lanes {
		n.coll.Pause()
	}
	e.Run(warmup)
	for _, n := range e.lanes {
		n.measureStart()
	}
	e.Run(measure)
}
