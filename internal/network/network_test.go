package network

import (
	"testing"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// singlePacketWorkload builds one injector at src that emits exactly one
// 1-flit packet at cycle 0, destined for dst.
func singlePacketWorkload(src, dst noc.NodeID) traffic.Workload {
	return traffic.Workload{
		Name:  "single",
		Nodes: topology.ColumnNodes,
		Specs: []traffic.Spec{{
			Flow:            traffic.FlowOf(src, 0),
			Node:            src,
			Rate:            1.0,
			RequestFraction: 1.0, // all 1-flit requests
			Dest:            traffic.FixedDest(dst),
			StopAt:          1,
		}},
	}
}

func mustNet(t *testing.T, kind topology.Kind, w traffic.Workload, mode qos.Mode, seed uint64) *Network {
	t.Helper()
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.Mode = mode
	n, err := New(Config{Kind: kind, QoS: cfg, Workload: w, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidation(t *testing.T) {
	w := traffic.UniformRandom(8, 0.05)
	bad := qos.DefaultConfig(10) // wrong flow population
	if _, err := New(Config{Kind: topology.MeshX1, QoS: bad, Workload: w}); err == nil {
		t.Fatal("mismatched flow population accepted")
	}
	outside := traffic.Workload{Nodes: 8, Specs: []traffic.Spec{{
		Flow: 0, Node: 9, Rate: 0.1,
		Dest: traffic.FixedDest(0),
	}}}
	if _, err := New(Config{Kind: topology.MeshX1, QoS: qos.DefaultConfig(64), Workload: outside}); err == nil {
		t.Fatal("out-of-column injector accepted")
	}
	overRate := traffic.Workload{Nodes: 8, Specs: []traffic.Spec{{
		Flow: 0, Node: 0, Rate: 1.5,
		Dest: traffic.FixedDest(1),
	}}}
	if _, err := New(Config{Kind: topology.MeshX1, QoS: qos.DefaultConfig(64), Workload: overRate}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestSinglePacketLatencyMatchesPipelineModel(t *testing.T) {
	// The paper's Table 1 pipelines imply exact zero-load latencies:
	// mesh 3d+2, MECS d+6, DPS 2d+3 for a 1-flit packet at distance d.
	cases := []struct {
		kind topology.Kind
		want func(d int) int64
	}{
		{topology.MeshX1, func(d int) int64 { return int64(3*d + 2) }},
		{topology.MeshX4, func(d int) int64 { return int64(3*d + 2) }},
		{topology.MECS, func(d int) int64 { return int64(d + 6) }},
		{topology.DPS, func(d int) int64 { return int64(2*d + 3) }},
	}
	for _, tc := range cases {
		for d := 1; d <= 7; d++ {
			n := mustNet(t, tc.kind, singlePacketWorkload(0, noc.NodeID(d)), qos.PVC, 1)
			if done, ok := n.RunUntilDrained(500); !ok {
				t.Fatalf("%v d=%d: did not drain by %d", tc.kind, d, done)
			}
			if got := n.Stats().TotalDelivered; got != 1 {
				t.Fatalf("%v d=%d: delivered %d packets", tc.kind, d, got)
			}
			if got, want := n.Stats().TotalLatency, tc.want(d); got != want {
				t.Errorf("%v d=%d: latency %d, want %d", tc.kind, d, got, want)
			}
		}
	}
}

func TestIntraNodeDelivery(t *testing.T) {
	for _, kind := range topology.Kinds() {
		n := mustNet(t, kind, singlePacketWorkload(3, 3), qos.PVC, 1)
		if _, ok := n.RunUntilDrained(100); !ok {
			t.Fatalf("%v: intra-node packet stuck", kind)
		}
		if n.Stats().TotalDelivered != 1 {
			t.Fatalf("%v: intra-node packet lost", kind)
		}
	}
}

func TestFourFlitSerialization(t *testing.T) {
	// A 4-flit reply adds exactly 3 cycles of tail serialization. The
	// all-reply mix caps the per-cycle packet probability at 0.25, so
	// scan seeds for one that generates the packet in the single
	// generation cycle the workload allows.
	for seed := uint64(1); seed < 64; seed++ {
		w := singlePacketWorkload(0, 3)
		w.Specs[0].RequestFraction = 0.0 // all replies
		n := mustNet(t, topology.MECS, w, qos.PVC, seed)
		n.RunUntilDrained(500)
		if n.Stats().TotalDelivered != 1 {
			continue
		}
		if got, want := n.Stats().TotalLatency, int64(3+6+3); got != want {
			t.Errorf("4-flit MECS latency %d, want %d", got, want)
		}
		return
	}
	t.Fatal("no seed generated the single reply packet")
}

func TestAllTopologiesDrainUniformTraffic(t *testing.T) {
	for _, kind := range topology.Kinds() {
		w := traffic.UniformRandom(8, 0.05).WithStop(2000)
		n := mustNet(t, kind, w, qos.PVC, 7)
		if _, ok := n.RunUntilDrained(20000); !ok {
			t.Fatalf("%v: network did not drain (in flight %d)", kind, n.InFlight())
		}
		st := n.Stats()
		if st.TotalDelivered == 0 {
			t.Fatalf("%v: nothing delivered", kind)
		}
		// Conservation: delivered packets = injected attempts minus
		// retransmitted attempts.
		if st.InjectedPackets-st.Retransmits != st.TotalDelivered {
			t.Errorf("%v: conservation broken: injected %d, retransmits %d, delivered %d",
				kind, st.InjectedPackets, st.Retransmits, st.TotalDelivered)
		}
	}
}

func TestAllVCsFreeAfterDrain(t *testing.T) {
	for _, kind := range topology.Kinds() {
		w := traffic.UniformRandom(8, 0.08).WithStop(1500)
		n := mustNet(t, kind, w, qos.PVC, 11)
		if _, ok := n.RunUntilDrained(20000); !ok {
			t.Fatalf("%v: did not drain", kind)
		}
		n.Run(64) // let trailing credit releases fire
		for bi := range n.bufs {
			b := &n.bufs[bi]
			if b.occupied != 0 {
				t.Errorf("%v: buffer %s still holds %d VCs after drain",
					kind, b.spec.Name, b.occupied)
			}
			for i := int32(0); i < b.nvc; i++ {
				if !b.vcFree(i) {
					t.Errorf("%v: VC %d of %s not free after drain", kind, i, b.spec.Name)
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		w := traffic.UniformRandom(8, 0.10).WithStop(3000)
		n := mustNet(t, topology.DPS, w, qos.PVC, 99)
		n.RunUntilDrained(30000)
		st := n.Stats()
		return st.TotalDelivered, st.TotalLatency, st.PreemptionEvents
	}
	d1, l1, p1 := run()
	d2, l2, p2 := run()
	if d1 != d2 || l1 != l2 || p1 != p2 {
		t.Fatalf("runs diverged: (%d,%d,%d) vs (%d,%d,%d)", d1, l1, p1, d2, l2, p2)
	}
}

func TestHotspotFairnessUnderPVC(t *testing.T) {
	// All 64 injectors stream at node 0's terminal; with equal assigned
	// rates every flow should receive a near-equal share (Table 2).
	n := mustNet(t, topology.MECS, traffic.Hotspot(8, 0.10), qos.PVC, 3)
	n.WarmupAndMeasure(5000, 30000)
	flits := make([]float64, 0, 64)
	for _, v := range n.Stats().FlitsByFlow() {
		flits = append(flits, float64(v))
	}
	sum := stats.Summarize(flits)
	if sum.Mean == 0 {
		t.Fatal("no traffic delivered")
	}
	if dev := sum.MaxDeviationPct(); dev > 10 {
		t.Errorf("hotspot max deviation %.1f%% under PVC, want < 10%%", dev)
	}
	if jain := stats.JainIndex(flits); jain < 0.99 {
		t.Errorf("hotspot Jain index %.4f under PVC, want ~1", jain)
	}
}

func TestHotspotStarvationWithoutQoS(t *testing.T) {
	// The motivating failure: round-robin arbitration lets sources near
	// the hotspot capture bandwidth while distant nodes starve.
	n := mustNet(t, topology.MeshX1, traffic.Hotspot(8, 0.10), qos.NoQoS, 3)
	n.WarmupAndMeasure(5000, 30000)
	byFlow := n.Stats().FlitsByFlow()
	near, far := 0.0, 0.0
	for f, v := range byFlow {
		if traffic.NodeOfFlow(noc.FlowID(f)) <= 1 {
			near += float64(v)
		}
		if traffic.NodeOfFlow(noc.FlowID(f)) >= 6 {
			far += float64(v)
		}
	}
	if near < 2*far {
		t.Errorf("expected near-hotspot capture without QoS: near %v far %v", near, far)
	}
	// And PVC fixes exactly this, same topology and load.
	nq := mustNet(t, topology.MeshX1, traffic.Hotspot(8, 0.10), qos.PVC, 3)
	nq.WarmupAndMeasure(5000, 30000)
	var flits []float64
	for _, v := range nq.Stats().FlitsByFlow() {
		flits = append(flits, float64(v))
	}
	if jain := stats.JainIndex(flits); jain < 0.99 {
		t.Errorf("PVC Jain index %.4f, want ~1", jain)
	}
}

func TestWorkload1TriggersPreemptionsUnderPVC(t *testing.T) {
	// Section 5.3: a subset of sources exhausts the reserved quota early
	// in the frame and preemptions follow.
	n := mustNet(t, topology.MeshX1, traffic.Workload1(8, 0), qos.PVC, 5)
	n.WarmupAndMeasure(2000, 60000)
	st := n.Stats()
	if st.PreemptionEvents == 0 {
		t.Error("adversarial workload produced no preemptions")
	}
	if st.WastedHops == 0 {
		t.Error("preemptions wasted no hops")
	}
	if st.TotalDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestPerFlowQueueingNeverPreempts(t *testing.T) {
	n := mustNet(t, topology.MeshX1, traffic.Workload1(8, 0), qos.PerFlowQueue, 5)
	n.WarmupAndMeasure(2000, 30000)
	if got := n.Stats().PreemptionEvents; got != 0 {
		t.Errorf("per-flow queueing preempted %d times", got)
	}
}

func TestNoQoSNeverPreempts(t *testing.T) {
	n := mustNet(t, topology.MeshX1, traffic.Hotspot(8, 0.12), qos.NoQoS, 5)
	n.WarmupAndMeasure(2000, 20000)
	if got := n.Stats().PreemptionEvents; got != 0 {
		t.Errorf("NoQoS preempted %d times", got)
	}
}

func TestWindowBoundsInFlightPackets(t *testing.T) {
	w := traffic.Hotspot(8, 0.15)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.WindowPackets = 4
	n, err := New(Config{Kind: topology.MECS, QoS: cfg, Workload: w, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		n.Step()
		for _, s := range n.srcs {
			if s.window > 4 {
				t.Fatalf("window %d exceeds bound 4", s.window)
			}
		}
	}
}

func TestSaturationLatencyOrdering(t *testing.T) {
	// At moderate load, MECS and DPS must beat the mesh on mean latency
	// (Figure 4(a): ~13% faster on uniform random).
	lat := map[topology.Kind]float64{}
	for _, kind := range []topology.Kind{topology.MeshX1, topology.MECS, topology.DPS} {
		n := mustNet(t, kind, traffic.UniformRandom(8, 0.04), qos.PVC, 21)
		n.WarmupAndMeasure(4000, 12000)
		lat[kind] = n.Stats().MeanLatency()
		if lat[kind] == 0 {
			t.Fatalf("%v: no latency samples", kind)
		}
	}
	if lat[topology.MECS] >= lat[topology.MeshX1] || lat[topology.DPS] >= lat[topology.MeshX1] {
		t.Errorf("latency ordering wrong: mesh %.2f, mecs %.2f, dps %.2f",
			lat[topology.MeshX1], lat[topology.MECS], lat[topology.DPS])
	}
}

func TestTornadoFavoursMECSOverDPS(t *testing.T) {
	// Figure 4(b): at tornado's distance-4 transfers MECS amortizes its
	// deeper pipeline over the express channel and edges out DPS.
	mecs := mustNet(t, topology.MECS, traffic.Tornado(8, 0.04), qos.PVC, 23)
	mecs.WarmupAndMeasure(4000, 12000)
	dps := mustNet(t, topology.DPS, traffic.Tornado(8, 0.04), qos.PVC, 23)
	dps.WarmupAndMeasure(4000, 12000)
	lm, ld := mecs.Stats().MeanLatency(), dps.Stats().MeanLatency()
	if lm >= ld {
		t.Errorf("tornado: MECS %.2f should beat DPS %.2f", lm, ld)
	}
}

func TestMeshX1SaturatesFirst(t *testing.T) {
	// Figure 4(a): the baseline mesh's single-channel bisection saturates
	// well before DPS's. Compare accepted throughput at high offered load.
	accept := func(kind topology.Kind) float64 {
		n := mustNet(t, kind, traffic.UniformRandom(8, 0.12), qos.PVC, 31)
		n.WarmupAndMeasure(5000, 15000)
		return n.Stats().AcceptedFlitRate(n.Now())
	}
	if x1, dps := accept(topology.MeshX1), accept(topology.DPS); x1 >= 0.85*dps {
		t.Errorf("mesh x1 accepted %.3f f/c, DPS %.3f — x1 should saturate far lower", x1, dps)
	}
}

func TestReservedQuotaSuppressesPreemptions(t *testing.T) {
	// Table 2's setting: with all 64 sources transmitting, virtually all
	// packets fall under the reserved cap and preemptions are rare.
	n := mustNet(t, topology.MeshX1, traffic.Hotspot(8, 0.05), qos.PVC, 13)
	n.WarmupAndMeasure(5000, 50000)
	st := n.Stats()
	if st.TotalDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	if rate := st.PreemptionPacketRate(); rate > 2.0 {
		t.Errorf("preemption rate %.2f%% with all sources under quota, want ~0", rate)
	}
}

func TestRunUntilDrainedTimesOut(t *testing.T) {
	// Continuous traffic never drains; the call must return rather than
	// spin forever.
	n := mustNet(t, topology.MeshX1, traffic.Hotspot(8, 0.05), qos.PVC, 1)
	if _, drained := n.RunUntilDrained(500); drained {
		t.Fatal("continuous workload reported drained")
	}
}

func TestStepProgressesClock(t *testing.T) {
	n := mustNet(t, topology.MeshX1, singlePacketWorkload(0, 1), qos.PVC, 1)
	n.Run(10)
	if n.Now() != 10 {
		t.Fatalf("clock at %d after 10 steps", n.Now())
	}
}
