package network

import (
	"tanoq/internal/noc"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// pktH is a packet handle: the index of a packet's slot in the network's
// arena, guarded by the slot's recycling generation. Handles are what the
// engine stores everywhere a pointer used to live — candidate lists, VC
// ownership, source queues, events — which keeps every such container a
// dense, pointer-free array: the garbage collector never scans them, and
// following a handle is one indexed load into the flat arena instead of a
// pointer chase across individually-allocated wrappers.
//
// Handle 0 is reserved as the nil handle; arena slot 0 is a permanent
// dummy so that (&arena[h]) is valid for every handle without a branch.
type pktH uint32

// noPkt is the nil packet handle.
const noPkt pktH = 0

// Pre-sized working-set capacities. The engine's containers all keep
// their backing arrays across recycling and Reset, so growth only ever
// happens when a run exceeds every previous high-water mark; sizing the
// initial allocation past the depths sub-saturation traffic actually
// reaches makes steady-state operation allocation-free rather than
// merely allocation-amortized. A run that genuinely needs more (a
// saturated workload's unbounded backlog) still grows correctly.
const (
	// arenaCap is the initial packet-slot capacity (~2K slots). Live
	// slots are bounded by in-flight packets plus queued backlog; under
	// the PVC window even an 8x64-flow column stays well inside this
	// until genuinely saturated.
	arenaCap = 2048
	// waitersCap bounds the expected candidate population of one port
	// (upstream VCs routed through it plus offered sources).
	waitersCap = 32
	// srcQueueCap is the initial per-source FIFO capacity, covering
	// sub-saturation backlog spikes.
	srcQueueCap = 256
)

// pktState tracks where a packet is in its lifecycle.
type pktState uint8

const (
	stAtSource pktState = iota
	stWaiting           // buffered, registered as an arbitration candidate
	stMoving            // won arbitration; flits in flight to the next buffer
	stDelivered
	stDead // preempted; awaiting NACK and retransmission
)

// noBuf marks an unset buffer reference in a packet.
const noBuf int32 = -1

// pkt is one arena slot: the packet itself (noc.Packet inline, not behind
// a pointer) plus the engine-side bookkeeping — its path, current
// residence (buffer + VC), in-progress allocation and hop accounting.
type pkt struct {
	noc.Packet
	// legs is the packet's path, a shared read-only slice precomputed by
	// the topology graph.
	legs []topology.Leg
	// srcIdx is the index of the packet's injector in Network.srcs.
	srcIdx int32

	state pktState
	// Current residence (noBuf/-1 while at source or fully in flight).
	curBuf int32
	curVC  int32
	// Next-hop allocation while moving.
	nxtBuf int32
	nxtVC  int32
	// creditDelay is the wire time for this buffer's free-VC credit to
	// reach the upstream allocator, recorded at head arrival.
	creditDelay int32
	// frameStamp is the PVC frame in which the carried priority was
	// computed. Priorities are frame-relative: a stamp from an earlier
	// frame reads as zero consumption, exactly like the flushed
	// counters it was derived from.
	frameStamp int32
	// weightedHops accumulates mesh-normalized hop traversals of the
	// current attempt; wasted on preemption.
	weightedHops int32
	wasPreempted bool

	// retrySeq counts injections of this packet; a delivery-timeout event
	// carries the sequence it was armed for, so a reinjection turns the
	// previous injection's timer into a no-op. timeoutRetries counts
	// timeout-driven retransmissions against FaultConfig.MaxRetries and
	// indexes the RTO-doubling backoff. nackPending marks a preemption
	// victim whose NACK is still on the ACK network — the NACK owns its
	// requeue, and a concurrent delivery timeout must not double-queue it.
	retrySeq       int32
	timeoutRetries int32
	nackPending    bool

	// enq is when the packet became an arbitration candidate at its
	// current position.
	enq sim.Cycle
	// gen is the recycling generation of this slot. The engine reuses
	// slots through the free stack once the logical packet is fully
	// acknowledged; events carry the generation they were scheduled
	// against, so an event that outlives its packet's lifetime becomes a
	// no-op instead of acting on the reused slot.
	gen uint32
}

// pktAt resolves a handle to its arena slot. The returned pointer is
// valid until the next newPacket call (arena growth may move the backing
// array), so it must not be retained across engine steps.
func (n *Network) pktAt(h pktH) *pkt { return &n.arena[h] }

// newPacket mints a packet for a source, reusing a recycled arena slot
// when one is on the free stack. Every field of the slot is rewritten, so
// a recycled packet is indistinguishable from a fresh allocation and
// recycling cannot perturb simulation results.
func (n *Network) newPacket(s *source, class noc.Class, dst noc.NodeID, now sim.Cycle) pktH {
	n.nextPktID++
	var h pktH
	if k := len(n.free); k > 0 {
		h = n.free[k-1]
		n.free = n.free[:k-1]
		p := &n.arena[h]
		gen := p.gen
		*p = pkt{gen: gen}
	} else {
		n.arena = append(n.arena, pkt{})
		h = pktH(len(n.arena) - 1)
	}
	p := &n.arena[h]
	p.ID = n.nextPktID
	p.Flow = s.spec.Flow
	p.Src = s.spec.Node
	p.Dst = dst
	p.Class = class
	p.Size = class.Flits()
	p.Created = now
	p.srcIdx = s.idx
	p.curBuf, p.curVC = noBuf, -1
	p.nxtBuf, p.nxtVC = noBuf, -1
	return h
}

// recycle returns a fully-acknowledged packet's slot to the free stack.
// The generation bump turns any event still scheduled against this slot
// into a no-op. Recycling is suppressed while diagnostic hooks are
// installed: hooks hand out handles that tests may resolve after the run,
// which is only meaningful while slots are never reused.
func (n *Network) recycle(h pktH) {
	if n.preemptHook != nil || n.grantHook != nil {
		return
	}
	n.arena[h].gen++
	n.free = append(n.free, h)
}
