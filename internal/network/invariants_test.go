package network

import (
	"testing"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// These tests pin down the engine's safety properties under preemption
// pressure: who may be discarded, what the ACK protocol conserves, and
// what the frame machinery resets. They run the adversarial workloads —
// the preemption-heavy regime — and observe every discard through the
// engine's preemption hook.

func adversarialNet(t *testing.T, kind topology.Kind, seed uint64) *Network {
	t.Helper()
	w := traffic.Workload1(topology.ColumnNodes, 0)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.MarginClasses = 8 // eager enough to exercise preemption heavily
	n, err := New(Config{Kind: kind, QoS: cfg, Workload: w, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestVictimsAreNeverRateCompliant(t *testing.T) {
	// The reserved quota's guarantee: a rate-compliant packet is never
	// preempted, anywhere, ever.
	for _, kind := range topology.Kinds() {
		n := adversarialNet(t, kind, 7)
		violations := 0
		preemptions := 0
		n.preemptHook = func(_ *inBuf, victim pktH) {
			preemptions++
			if n.pktAt(victim).Reserved {
				violations++
			}
		}
		n.Run(120_000)
		if violations > 0 {
			t.Errorf("%v: %d rate-compliant packets preempted", kind, violations)
		}
		if kind == topology.MeshX1 && preemptions == 0 {
			t.Errorf("%v: adversarial workload produced no preemptions to audit", kind)
		}
	}
}

func TestVictimsAreAlwaysInTheNetwork(t *testing.T) {
	// A packet still sitting at its source has consumed nothing worth
	// replaying; discards must hit network-resident packets only.
	n := adversarialNet(t, topology.MeshX1, 11)
	n.preemptHook = func(_ *inBuf, victim pktH) {
		switch n.pktAt(victim).state {
		case stAtSource:
			t.Error("preempted a packet still at its source")
		case stDelivered, stDead:
			t.Errorf("preempted a packet in state %d", n.pktAt(victim).state)
		}
	}
	n.Run(120_000)
}

func TestEveryPreemptionIsEventuallyRedelivered(t *testing.T) {
	// Conservation through the retransmission protocol: with injection
	// stopped, every preempted packet must still drain to its
	// destination (NACK -> replay -> delivery).
	w := traffic.Workload1(topology.ColumnNodes, 30_000)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.MarginClasses = 8
	n := MustNew(Config{Kind: topology.MeshX1, QoS: cfg, Workload: w, Seed: 13})
	if _, drained := n.RunUntilDrained(400_000); !drained {
		t.Fatalf("network did not drain; %d in flight", n.InFlight())
	}
	st := n.Stats()
	if st.PreemptionEvents == 0 {
		t.Fatal("test needs preemptions to be meaningful")
	}
	if st.InjectedPackets-st.Retransmits != st.TotalDelivered {
		t.Errorf("conservation broken: injected %d - retransmits %d != delivered %d",
			st.InjectedPackets, st.Retransmits, st.TotalDelivered)
	}
	// All window slots returned.
	for i := range n.srcs {
		if s := &n.srcs[i]; s.window != 0 {
			t.Errorf("flow %d still holds %d window slots after drain", s.spec.Flow, s.window)
		}
	}
}

func TestRetransmittedPacketsKeepCreationTime(t *testing.T) {
	// End-to-end latency accounts for wasted attempts: a replayed
	// packet's latency is measured from its original creation.
	w := traffic.Workload1(topology.ColumnNodes, 20_000)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.MarginClasses = 4
	n := MustNew(Config{Kind: topology.MeshX1, QoS: cfg, Workload: w, Seed: 17})
	// Handles recorded by a hook stay resolvable for the rest of the run:
	// installing the hook suppresses slot recycling.
	var preempted []pktH
	n.preemptHook = func(_ *inBuf, victim pktH) { preempted = append(preempted, victim) }
	n.RunUntilDrained(400_000)
	if len(preempted) == 0 {
		t.Skip("no preemptions at this seed/margin")
	}
	for _, h := range preempted {
		if n.pktAt(h).Retransmits == 0 {
			t.Error("preempted packet did not record a retransmission")
		}
	}
}

func TestFrameFlushResetsPriorities(t *testing.T) {
	w := traffic.Hotspot(topology.ColumnNodes, 0.05)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.FrameCycles = 10_000
	n := MustNew(Config{Kind: topology.MECS, QoS: cfg, Workload: w, Seed: 5})
	n.Run(9_999)
	// Just before the flush, the hot terminal port has accumulated
	// consumption for many flows.
	hot := n.ports[n.graph.TerminalPort(0)]
	nonZero := 0
	for f := 0; f < 64; f++ {
		if hot.table.Consumed(noc.FlowID(f)) > 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("no consumption recorded before the frame boundary")
	}
	n.Run(2) // cross the boundary
	for f := 0; f < 64; f++ {
		if c := hot.table.Consumed(noc.FlowID(f)); c > 8 {
			t.Fatalf("flow %d retained %d flits of pre-flush consumption", f, c)
		}
	}
	if n.frameCount == 0 {
		t.Fatal("frame counter did not advance")
	}
}

func TestPerFlowQueueModeNeverBlocksOnBuffers(t *testing.T) {
	// The idealized reference grows VC pools on demand: offered load is
	// absorbed without discards even under the adversarial pattern.
	w := traffic.Workload1(topology.ColumnNodes, 20_000)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.Mode = qos.PerFlowQueue
	n := MustNew(Config{Kind: topology.MeshX1, QoS: cfg, Workload: w, Seed: 19})
	if _, drained := n.RunUntilDrained(200_000); !drained {
		t.Fatal("per-flow-queue network did not drain")
	}
	if n.Stats().PreemptionEvents != 0 || n.Stats().Retransmits != 0 {
		t.Error("ideal reference discarded packets")
	}
}

func TestModesAgreeOnDeliveredWork(t *testing.T) {
	// For a finite workload all three policies must deliver the same
	// packet population (same seed, same generation process), whatever
	// the ordering.
	delivered := map[qos.Mode]int64{}
	for _, mode := range []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS} {
		w := traffic.UniformRandom(topology.ColumnNodes, 0.06).WithStop(10_000)
		cfg := qos.DefaultConfig(w.TotalFlows())
		cfg.Mode = mode
		n := MustNew(Config{Kind: topology.DPS, QoS: cfg, Workload: w, Seed: 23})
		if _, drained := n.RunUntilDrained(200_000); !drained {
			t.Fatalf("%v: did not drain", mode)
		}
		delivered[mode] = n.Stats().TotalDelivered
	}
	if delivered[qos.PVC] != delivered[qos.PerFlowQueue] || delivered[qos.PVC] != delivered[qos.NoQoS] {
		t.Errorf("modes delivered different work: %v", delivered)
	}
}

func TestQuantumOverrideChangesArbitration(t *testing.T) {
	// Sanity for the ablation plumbing: an extreme quantum visibly
	// degrades DPS hotspot fairness versus the default.
	run := func(quantum int) float64 {
		w := traffic.Hotspot(topology.ColumnNodes, 0.05)
		cfg := qos.DefaultConfig(w.TotalFlows())
		cfg.QuantumFlits = quantum
		n := MustNew(Config{Kind: topology.DPS, QoS: cfg, Workload: w, Seed: 29})
		n.WarmupAndMeasure(3_000, 20_000)
		byFlow := n.Stats().FlitsByFlow()
		var lo, hi int64 = 1 << 62, 0
		for _, v := range byFlow {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return float64(hi-lo) / float64(hi)
	}
	if fine, coarse := run(8), run(1024); coarse <= fine {
		t.Errorf("coarse quantum spread %.3f should exceed fine %.3f", coarse, fine)
	}
}

func TestInvalidQuantumRejected(t *testing.T) {
	w := traffic.Hotspot(topology.ColumnNodes, 0.05)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.QuantumFlits = 12 // not a power of two
	if _, err := New(Config{Kind: topology.DPS, QoS: cfg, Workload: w, Seed: 1}); err == nil {
		t.Fatal("non-power-of-two quantum accepted")
	}
	cfg.QuantumFlits = 0 // default
	cfg.MarginClasses = -1
	if _, err := New(Config{Kind: topology.DPS, QoS: cfg, Workload: w, Seed: 1}); err == nil {
		t.Fatal("negative margin accepted")
	}
}

func TestDisabledQuotaMarksNothingCompliant(t *testing.T) {
	w := traffic.Hotspot(topology.ColumnNodes, 0.05)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.DisableReservedQuota = true
	n := MustNew(Config{Kind: topology.MeshX1, QoS: cfg, Workload: w, Seed: 3})
	n.Run(20_000)
	for bi := range n.bufs {
		b := &n.bufs[bi]
		for i := int32(0); i < b.nvc; i++ {
			if h := b.owner[i]; h != noPkt && n.pktAt(h).Reserved {
				t.Fatalf("compliant packet found in %s VC %d with quota disabled", b.spec.Name, i)
			}
		}
	}
}

func TestDrainLeavesNoResidualState(t *testing.T) {
	// After a full drain: no waiters registered anywhere, no events
	// pending, no packets in flight — across every topology and the
	// preemption-heavy margin.
	for _, kind := range topology.Kinds() {
		w := traffic.Workload1(topology.ColumnNodes, 15_000)
		cfg := qos.DefaultConfig(w.TotalFlows())
		cfg.MarginClasses = 8
		n := MustNew(Config{Kind: kind, QoS: cfg, Workload: w, Seed: 31})
		if _, drained := n.RunUntilDrained(300_000); !drained {
			t.Fatalf("%v: did not drain", kind)
		}
		n.Run(64) // let trailing releases fire
		for _, p := range n.ports {
			if len(p.waiters) != 0 {
				t.Errorf("%v: port %s has %d residual waiters", kind, p.spec.Name, len(p.waiters))
			}
		}
		if n.events.Len() != 0 {
			t.Errorf("%v: %d residual events", kind, n.events.Len())
		}
		if n.InFlight() != 0 {
			t.Errorf("%v: %d residual in-flight packets", kind, n.InFlight())
		}
	}
}

func TestAckDelayAffectsWindowTurnaround(t *testing.T) {
	// A huge ACK delay with a tiny window throttles throughput: the
	// window slot is held until the ACK returns.
	run := func(ack sim.Cycle) int64 {
		w := traffic.Workload{Nodes: topology.ColumnNodes, Specs: []traffic.Spec{{
			Flow: traffic.FlowOf(7, 0), Node: 7, Rate: 0.9,
			RequestFraction: 0.5,
			Dest:            traffic.FixedDest(0),
		}}}
		cfg := qos.DefaultConfig(w.TotalFlows())
		cfg.WindowPackets = 1
		cfg.AckDelay = ack
		n := MustNew(Config{Kind: topology.MECS, QoS: cfg, Workload: w, Seed: 37})
		n.WarmupAndMeasure(2_000, 20_000)
		return n.Stats().TotalDelivered
	}
	fast, slow := run(2), run(200)
	if slow >= fast {
		t.Errorf("ACK delay 200 delivered %d >= delay 2's %d", slow, fast)
	}
}
