package network

import (
	"fmt"
	"strings"

	"tanoq/internal/sim"
	"tanoq/internal/traffic"
)

// This file is the no-forward-progress watchdog: a lazy self-rescheduling
// timer (evWatchdog) armed when Config.WatchdogCycles is positive. The
// engine stamps lastProgress at every arbitration grant, every delivery,
// and the moment the network goes from no candidates to one (so a long
// legitimate idle stretch can never trip the check). When the timer fires
// with candidates still waiting and the window lapsed, the engine is
// wedged — a livelock or deadlock no event will resolve — and the
// watchdog panics with a *WatchdogError carrying a full structured dump
// of the stuck state plus a repro trace of every packet generation so
// far, replayable through traffic.Spec.Replay to reproduce the failure
// deterministically.

// WatchdogVC describes one occupied virtual channel in a watchdog dump.
type WatchdogVC struct {
	Buf   int    // buffer ID
	Name  string // buffer name (topology spec)
	VC    int
	Pkt   uint64 // owning packet's ID
	Flow  int
	State string
	Since sim.Cycle // the owner's enq cycle at its current position
}

// WatchdogPort describes one output port holding arbitration candidates.
type WatchdogPort struct {
	Port    int
	Name    string
	Node    int
	Waiters int
	Blocked bool // down link or stalled router at dump time
}

// WatchdogSource describes one injector with pending or outstanding work.
type WatchdogSource struct {
	Idx       int
	Node      int
	Flow      int
	Queue     int // generated, not yet injected
	Retx      int // awaiting retransmission
	Window    int // injected, unacknowledged
	Offering  bool
	BusyUntil sim.Cycle
}

// WatchdogReport is the structured diagnostic state captured when the
// no-forward-progress watchdog trips.
type WatchdogReport struct {
	// At is the cycle the watchdog fired; LastProgress the last grant,
	// delivery or idle-to-pending transition; Window the configured
	// no-progress budget.
	At           sim.Cycle
	LastProgress sim.Cycle
	Window       sim.Cycle

	InFlight      int
	Waiters       int
	PendingEvents int
	// NextEventAt is the cycle of the earliest pending event;
	// HasNextEvent false means the ring is empty.
	NextEventAt  sim.Cycle
	HasNextEvent bool

	// ArenaLive/ArenaFree census the packet arena (live excludes the
	// permanent slot-0 dummy).
	ArenaLive int
	ArenaFree int

	// DownPorts/StalledNodes are the fault state in effect at dump time.
	DownPorts    []int
	StalledNodes []int

	VCs     []WatchdogVC
	Ports   []WatchdogPort
	Sources []WatchdogSource

	// Records is the auto-captured repro trace: every generation of the
	// run in order. Feeding it back through traffic.Spec.Replay (one
	// replay per source, records grouped by source) reproduces the wedged
	// run deterministically.
	Records []traffic.TraceRecord
}

// WatchdogError is the panic value of a tripped watchdog.
type WatchdogError struct {
	Report WatchdogReport
}

func (e *WatchdogError) Error() string {
	r := &e.Report
	return fmt.Sprintf("network: no forward progress for %d cycles (cycle %d, last progress %d): %d waiting, %d in flight",
		r.At-r.LastProgress, r.At, r.LastProgress, r.Waiters, r.InFlight)
}

// String renders the full dump, one line per stuck resource.
func (r *WatchdogReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: stuck at cycle %d (last progress %d, window %d)\n", r.At, r.LastProgress, r.Window)
	fmt.Fprintf(&b, "  in-flight %d, waiters %d, pending events %d", r.InFlight, r.Waiters, r.PendingEvents)
	if r.HasNextEvent {
		fmt.Fprintf(&b, " (next at %d)", r.NextEventAt)
	}
	fmt.Fprintf(&b, "\n  arena: %d live, %d free\n", r.ArenaLive, r.ArenaFree)
	if len(r.DownPorts) > 0 {
		fmt.Fprintf(&b, "  down ports: %v\n", r.DownPorts)
	}
	if len(r.StalledNodes) > 0 {
		fmt.Fprintf(&b, "  stalled nodes: %v\n", r.StalledNodes)
	}
	for _, p := range r.Ports {
		fmt.Fprintf(&b, "  port %d %s (node %d): %d waiting", p.Port, p.Name, p.Node, p.Waiters)
		if p.Blocked {
			b.WriteString(" [blocked]")
		}
		b.WriteByte('\n')
	}
	for _, v := range r.VCs {
		fmt.Fprintf(&b, "  buf %d %s vc %d: pkt %d flow %d %s since %d\n", v.Buf, v.Name, v.VC, v.Pkt, v.Flow, v.State, v.Since)
	}
	for _, s := range r.Sources {
		fmt.Fprintf(&b, "  src %d (node %d, flow %d): queue %d, retx %d, window %d, offering %v, busy until %d\n",
			s.Idx, s.Node, s.Flow, s.Queue, s.Retx, s.Window, s.Offering, s.BusyUntil)
	}
	fmt.Fprintf(&b, "  repro trace: %d records", len(r.Records))
	return b.String()
}

// onWatchdog fires the watchdog timer: trip if candidates have been
// waiting past the window with no grant or delivery, otherwise reschedule
// against the latest progress stamp. The timer is lazy — it never fires
// more than once per window — so an armed watchdog costs one event per
// window, not per cycle.
func (n *Network) onWatchdog(now sim.Cycle) {
	n.sysEvents--
	if n.waiterCount > 0 && now-n.lastProgress >= n.wdWindow {
		n.mark(MarkWatchdogTrip, -1, now)
		panic(&WatchdogError{Report: n.watchdogReport(now)})
	}
	next := n.lastProgress + n.wdWindow
	if next <= now {
		next = now + n.wdWindow
	}
	n.sysEvents++
	n.schedule(&event{kind: evWatchdog}, next, now)
}

func (s pktState) String() string {
	switch s {
	case stAtSource:
		return "at-source"
	case stWaiting:
		return "waiting"
	case stMoving:
		return "moving"
	case stDelivered:
		return "delivered"
	case stDead:
		return "dead"
	}
	return "unknown"
}

// watchdogReport captures the engine's stuck state.
func (n *Network) watchdogReport(now sim.Cycle) WatchdogReport {
	r := WatchdogReport{
		At:           now,
		LastProgress: n.lastProgress,
		Window:       n.wdWindow,
		InFlight:     n.inFlight,
		Waiters:      n.waiterCount,
		ArenaLive:    len(n.arena) - 1 - len(n.free),
		ArenaFree:    len(n.free),
	}
	// The watchdog's own pending timer was consumed before this capture.
	r.PendingEvents = n.events.Len()
	if at, ok := n.events.nextAt(now); ok {
		r.NextEventAt, r.HasNextEvent = at, true
	}
	if n.fltOn {
		for i := range n.ports {
			if testBit(n.fltDown, i) {
				r.DownPorts = append(r.DownPorts, i)
			}
		}
		for i := 0; i < n.cfg.Nodes; i++ {
			if testBit(n.fltStall, i) {
				r.StalledNodes = append(r.StalledNodes, i)
			}
		}
	}
	for pi := range n.ports {
		port := &n.ports[pi]
		if len(port.waiters) == 0 {
			continue
		}
		blocked := n.fltOn && n.portBlocked(port)
		r.Ports = append(r.Ports, WatchdogPort{
			Port: pi, Name: port.spec.Name, Node: port.spec.Node,
			Waiters: len(port.waiters), Blocked: blocked,
		})
	}
	for bi := range n.bufs {
		b := &n.bufs[bi]
		for i := int32(0); i < b.nvc; i++ {
			h := b.owner[i]
			if h == noPkt {
				continue
			}
			p := &n.arena[h]
			r.VCs = append(r.VCs, WatchdogVC{
				Buf: bi, Name: b.spec.Name, VC: int(i),
				Pkt: p.ID, Flow: int(p.Flow), State: p.state.String(), Since: p.enq,
			})
		}
	}
	for si := range n.srcs {
		s := &n.srcs[si]
		if s.queue.len() == 0 && s.retx.len() == 0 && s.window == 0 && s.offering == noPkt {
			continue
		}
		r.Sources = append(r.Sources, WatchdogSource{
			Idx: si, Node: int(s.spec.Node), Flow: int(s.spec.Flow),
			Queue: s.queue.len(), Retx: s.retx.len(), Window: s.window,
			Offering: s.offering != noPkt, BusyUntil: s.busyUntil,
		})
	}
	r.Records = append([]traffic.TraceRecord(nil), n.wdRecords...)
	return r
}
