package network

import (
	"tanoq/internal/noc"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// inBuf is a router input buffer: a pool of virtual channels, each deep
// enough to hold the largest packet (virtual cut-through). One VC per
// network port is reserved for rate-compliant traffic (Table 1). In
// per-flow-queue mode the pool grows on demand, modelling a dedicated
// queue per flow — the idealized preemption-free reference.
type inBuf struct {
	id   topology.BufID
	spec topology.BufSpec
	vcs  []*noc.VC
	// owners mirrors vcs with the engine-side packet wrappers, so the
	// preemption logic can inspect victim state without a lookup table.
	owners []*pkt
	// gens guards against stale release events: each VC's generation is
	// bumped on release, and release events name the generation they
	// were scheduled for.
	gens      []uint32
	unlimited bool
	occupied  int
}

func newInBuf(id topology.BufID, spec topology.BufSpec, unlimited bool) *inBuf {
	b := &inBuf{id: id, spec: spec, unlimited: unlimited}
	for i := 0; i < spec.VCs; i++ {
		b.vcs = append(b.vcs, &noc.VC{Index: i})
	}
	b.owners = make([]*pkt, len(b.vcs))
	b.gens = make([]uint32, len(b.vcs))
	if spec.Reserved && !unlimited && len(b.vcs) > 0 {
		b.vcs[len(b.vcs)-1].ReservedForCompliant = true
	}
	return b
}

// node returns the router this buffer belongs to.
func (b *inBuf) node() int { return b.spec.Node }

// allocVC claims a free VC for p, honouring the reserved-VC policy:
// ordinary packets may not take the compliant-reserved VC; compliant
// packets prefer ordinary VCs and fall back to the reserved one, keeping
// it available as the preemption safety valve. Returns the VC index or -1.
func (b *inBuf) allocVC(p *pkt, headArr, tailArr sim.Cycle) int {
	if b.unlimited {
		// Per-flow queueing: find any free VC or grow the pool.
		for i, vc := range b.vcs {
			if vc.State == noc.VCFree {
				vc.Allocate(p.Packet, headArr, tailArr)
				b.owners[i] = p
				b.occupied++
				return i
			}
		}
		vc := &noc.VC{Index: len(b.vcs)}
		b.vcs = append(b.vcs, vc)
		b.owners = append(b.owners, nil)
		b.gens = append(b.gens, 0)
		vc.Allocate(p.Packet, headArr, tailArr)
		b.owners[vc.Index] = p
		b.occupied++
		return vc.Index
	}
	for i, vc := range b.vcs {
		if vc.State != noc.VCFree {
			continue
		}
		if vc.ReservedForCompliant && !p.Reserved {
			continue
		}
		vc.Allocate(p.Packet, headArr, tailArr)
		b.owners[i] = p
		b.occupied++
		return i
	}
	return -1
}

// release frees VC i if its generation still matches (stale events from
// preempted packets are ignored; an immediate preemption-time release
// bumps the generation so the scheduled release becomes a no-op).
func (b *inBuf) release(i int, gen uint32) {
	if b.gens[i] != gen {
		return
	}
	b.gens[i]++
	b.vcs[i].Release()
	b.owners[i] = nil
	b.occupied--
}

// gen returns the current generation of VC i, captured when scheduling its
// release.
func (b *inBuf) gen(i int) uint32 { return b.gens[i] }

// findVictim returns the index of the VC holding the best preemption
// victim for a requester with the given priority. prioOf evaluates a
// buffered packet's *current* dynamic priority — the preemption logic
// lives at the upstream output port (Figure 2(a)) and prices both the
// requester and the buffered packets off the same flow table, so a flow
// that has been over-served since its packet was buffered becomes
// preemptable. The victim is the packet with the numerically largest
// (worst) priority strictly worse than the requester's that is not
// rate-compliant and still genuinely occupies this buffer (resident, or
// in flight into it — not a departed packet whose tail is draining out).
// Returns -1 when nothing may be preempted.
func (b *inBuf) findVictim(prio noc.Priority, prioOf func(*pkt) noc.Priority) int {
	worst := -1
	var worstPrio noc.Priority
	for i, vc := range b.vcs {
		if vc.State != noc.VCBusy || vc.Owner == nil {
			continue
		}
		if vc.Owner.Reserved {
			continue
		}
		w := b.owners[i]
		if w == nil || w.state == stDelivered || w.state == stDead {
			continue
		}
		resident := (w.curBuf == b && w.curVC == i) || (w.nxtBuf == b && w.nxtVC == i)
		if !resident {
			continue // already moved on; this VC is only draining
		}
		vp := prioOf(w)
		if vp <= prio {
			continue
		}
		if worst < 0 || vp > worstPrio {
			worst = i
			worstPrio = vp
		}
	}
	return worst
}

// allocVCPeek reports the VC index allocVC would claim for p, without
// allocating (-1 when the buffer would refuse). Used by the round-robin
// arbiter to test eligibility.
func (b *inBuf) allocVCPeek(p *pkt) int {
	if b.unlimited {
		return len(b.vcs) // always admissible
	}
	for i, vc := range b.vcs {
		if vc.State != noc.VCFree {
			continue
		}
		if vc.ReservedForCompliant && !p.Reserved {
			continue
		}
		return i
	}
	return -1
}

// freeVCs counts currently free VCs (diagnostics and tests).
func (b *inBuf) freeVCs() int {
	n := 0
	for _, vc := range b.vcs {
		if vc.State == noc.VCFree {
			n++
		}
	}
	return n
}
