package network

import (
	"fmt"
	"math/bits"

	"tanoq/internal/noc"
	"tanoq/internal/topology"
)

// inBuf is a router input buffer: a pool of virtual channels, each deep
// enough to hold the largest packet (virtual cut-through). One VC per
// network port is reserved for rate-compliant traffic (Table 1). In
// per-flow-queue mode the pool grows on demand, modelling a dedicated
// queue per flow — the idealized preemption-free reference.
//
// The pool is struct-of-arrays: per-VC state lives in parallel flat
// arrays (owner handle, release generation) plus a free-VC occupancy
// bitmap, so allocation is a word scan for the first eligible set bit and
// victim search walks only the busy indices — no per-VC objects, no
// pointer chasing. A VC is busy exactly when its owner handle is set;
// its free bit is the inverse.
type inBuf struct {
	id   topology.BufID
	spec topology.BufSpec
	// owner[i] is the handle of the packet holding VC i (noPkt = free).
	owner []pktH
	// gens guards against stale release events: each VC's generation is
	// bumped on release, and release events name the generation they
	// were scheduled for.
	gens []uint32
	// freeW is the free-VC bitmap (bit i set = VC i free), sized to nvc
	// bits; per-flow-queue pools grow it on demand.
	freeW []uint64
	nvc   int32
	// reservedIdx is the index of the compliant-reserved VC, -1 if none.
	reservedIdx int32
	unlimited   bool
	occupied    int32
}

// reinit configures the buffer for a fresh simulation, reusing the
// backing arrays when capacity suffices.
func (b *inBuf) reinit(id topology.BufID, spec topology.BufSpec, unlimited bool) {
	b.id = id
	b.spec = spec
	b.unlimited = unlimited
	b.occupied = 0
	b.nvc = int32(spec.VCs)
	b.reservedIdx = -1
	if spec.Reserved && !unlimited && spec.VCs > 0 {
		b.reservedIdx = b.nvc - 1
	}
	n := spec.VCs
	if cap(b.owner) < n {
		b.owner = make([]pktH, n)
		b.gens = make([]uint32, n)
	}
	b.owner = b.owner[:n]
	b.gens = b.gens[:n]
	for i := range b.owner {
		b.owner[i] = noPkt
		b.gens[i] = 0
	}
	// Always at least one word, so firstFree's single-word fast path
	// never bounds-checks an empty bitmap.
	words := (n + 63) / 64
	if words == 0 {
		words = 1
	}
	if cap(b.freeW) < words {
		b.freeW = make([]uint64, words)
	}
	b.freeW = b.freeW[:words]
	for i := range b.freeW {
		b.freeW[i] = ^uint64(0)
	}
	if rem := n & 63; rem != 0 {
		b.freeW[words-1] = (1 << uint(rem)) - 1
	}
	if n == 0 {
		b.freeW[0] = 0
	}
}

// node returns the router this buffer belongs to.
func (b *inBuf) node() int { return b.spec.Node }

// grow adds one VC to an unlimited pool and returns its index.
func (b *inBuf) grow() int32 {
	i := b.nvc
	b.nvc++
	b.owner = append(b.owner, noPkt)
	b.gens = append(b.gens, 0)
	if int(i)>>6 >= len(b.freeW) {
		b.freeW = append(b.freeW, 0)
	}
	b.freeW[i>>6] |= 1 << uint(i&63)
	return i
}

// firstFree returns the lowest free VC index excluding the reserved VC
// when skipReserved is set, or -1 when none is eligible. Every
// fixed-size pool fits one bitmap word (the paper's deepest pool is 5
// VCs), so the common case is a single masked trailing-zeros scan; only
// grown per-flow-queue pools take the multi-word loop.
func (b *inBuf) firstFree(skipReserved bool) int32 {
	w := b.freeW[0]
	if skipReserved && b.reservedIdx >= 0 && b.reservedIdx < 64 {
		w &^= 1 << uint(b.reservedIdx)
	}
	if w != 0 {
		return int32(bits.TrailingZeros64(w))
	}
	for wi := 1; wi < len(b.freeW); wi++ {
		w := b.freeW[wi]
		if skipReserved && b.reservedIdx>>6 == int32(wi) {
			w &^= 1 << uint(b.reservedIdx&63)
		}
		if w != 0 {
			return int32(wi<<6 + bits.TrailingZeros64(w))
		}
	}
	return -1
}

// allocVC claims a free VC for the packet, honouring the reserved-VC
// policy: ordinary packets may not take the compliant-reserved VC;
// compliant packets prefer ordinary VCs and fall back to the reserved
// one (it is the highest index, so the lowest-index-first scan reaches it
// last), keeping it available as the preemption safety valve. Returns the
// VC index or -1.
func (b *inBuf) allocVC(h pktH, reserved bool) int32 {
	var i int32
	if b.unlimited {
		// Per-flow queueing: find any free VC or grow the pool.
		i = b.firstFree(false)
		if i < 0 {
			i = b.grow()
		}
	} else {
		i = b.firstFree(!reserved)
		if i < 0 {
			return -1
		}
	}
	if b.owner[i] != noPkt {
		// The allocator must never double-book a buffer; a hard failure
		// turns a free-bitmap bug into an immediate, debuggable crash
		// at the fault site instead of silent flit corruption.
		panic(fmt.Sprintf("network: allocating busy VC %d of %s (owner %d)", i, b.spec.Name, b.owner[i]))
	}
	b.owner[i] = h
	b.freeW[i>>6] &^= 1 << uint(i&63)
	b.occupied++
	return i
}

// release frees VC i if its generation still matches (stale events from
// preempted packets are ignored; an immediate preemption-time release
// bumps the generation so the scheduled release becomes a no-op).
func (b *inBuf) release(i int32, gen uint32) {
	if b.gens[i] != gen {
		return
	}
	b.gens[i]++
	b.owner[i] = noPkt
	b.freeW[i>>6] |= 1 << uint(i&63)
	b.occupied--
}

// gen returns the current generation of VC i, captured when scheduling its
// release.
func (b *inBuf) gen(i int32) uint32 { return b.gens[i] }

// vcFree reports whether VC i currently holds no packet.
func (b *inBuf) vcFree(i int32) bool { return b.owner[i] == noPkt }

// findVictim returns the index of the VC holding the best preemption
// victim for a requester with the given priority, pricing buffered
// packets off the flat cached-priority array of the upstream output
// port's flow table — the preemption logic lives at that port (Figure
// 2(a)) and prices both the requester and the buffered packets off the
// same table, so a flow that has been over-served since its packet was
// buffered becomes preemptable. The victim is the packet with the
// numerically largest (worst) priority strictly worse than the
// requester's that is not rate-compliant and still genuinely occupies
// this buffer (resident, or in flight into it — not a departed packet
// whose tail is draining out). Returns -1 when nothing may be preempted.
func (n *Network) findVictim(b *inBuf, prio noc.Priority, prios []noc.Priority) int32 {
	worst := int32(-1)
	var worstPrio noc.Priority
	for wi, w := range b.freeW {
		busy := ^w
		if int32(wi) == b.nvc>>6 {
			if rem := b.nvc & 63; rem != 0 {
				busy &= (1 << uint(rem)) - 1
			}
		}
		for busy != 0 {
			i := int32(wi<<6 + bits.TrailingZeros64(busy))
			busy &= busy - 1
			h := b.owner[i]
			if h == noPkt {
				continue
			}
			v := &n.arena[h]
			if v.Reserved || v.state == stDelivered || v.state == stDead {
				continue
			}
			resident := (v.curBuf == int32(b.id) && v.curVC == i) || (v.nxtBuf == int32(b.id) && v.nxtVC == i)
			if !resident {
				continue // already moved on; this VC is only draining
			}
			vp := prios[v.Flow]
			if vp <= prio {
				continue
			}
			if worst < 0 || vp > worstPrio {
				worst = i
				worstPrio = vp
			}
		}
	}
	return worst
}

// canAlloc reports whether allocVC would succeed for a packet with the
// given compliance bit, without allocating. Used by the round-robin
// arbiter to test eligibility.
func (b *inBuf) canAlloc(reserved bool) bool {
	if b.unlimited {
		return true // always admissible
	}
	return b.firstFree(!reserved) >= 0
}
