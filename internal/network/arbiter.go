package network

import (
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// outPort is one contended output resource: a column channel, a subnet
// port, or the terminal (ejection) port. Exactly one packet wins each
// allocation and streams its flits across at one per cycle.
type outPort struct {
	id   topology.PortID
	spec topology.PortSpec
	// table is this output's PVC flow state (nil under NoQoS);
	// priorities are computed and bandwidth recorded here on every
	// non-intermediate traversal.
	table *qos.FlowTable
	// nextArb is the earliest cycle a new packet may be granted,
	// maintaining one flit per cycle across the channel with the next
	// allocation pipelined behind the current transfer.
	nextArb sim.Cycle
	// waiters are the registered candidates: head packets of upstream
	// VCs routed through this port, plus offered source packets.
	waiters []*pkt
	rr      qos.RoundRobin
	// inActive marks membership in the network's active-ports list (ports
	// holding candidates), which Step arbitrates instead of scanning
	// every port.
	inActive bool
}

// bid is one arbitration candidate with its dynamic priority, resolved
// once per allocation round.
type bid struct {
	w    *pkt
	prio noc.Priority
}

// register adds a packet to a port's candidate list, activating the port
// if this is its first candidate. The active-ports list is kept sorted by
// port ID so that per-cycle arbitration visits ports in the same canonical
// order as the historical all-ports scan, independent of activation
// history — which is also what makes idle skipping mechanical (stale list
// entries can never reorder arbitration).
func (n *Network) register(p *outPort, w *pkt) {
	w.state = stateForRegistration(w)
	p.waiters = append(p.waiters, w)
	n.waiterCount++
	if !p.inActive {
		p.inActive = true
		n.activePorts = append(n.activePorts, p)
		for i := len(n.activePorts) - 1; i > 0 && n.activePorts[i-1].id > p.id; i-- {
			n.activePorts[i], n.activePorts[i-1] = n.activePorts[i-1], n.activePorts[i]
		}
	}
}

func stateForRegistration(w *pkt) pktState {
	if w.curBuf == nil {
		return stAtSource
	}
	return stWaiting
}

// unregister removes a packet from a port's candidate list. The port stays
// on the active list until the next arbitration pass drops it (lazy
// deactivation keeps removal O(1) here).
func (n *Network) unregister(p *outPort, w *pkt) {
	for i, c := range p.waiters {
		if c == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			n.waiterCount--
			return
		}
	}
}

// arbitrate runs one virtual-channel allocation for the port: the winning
// candidate is granted a VC at its downstream buffer and begins its
// transfer. Under PVC, a candidate that finds the buffer full may preempt
// a strictly-lower-priority, non-compliant packet (Section 3.1).
func (n *Network) arbitrate(port *outPort, now sim.Cycle) {
	if len(port.waiters) == 0 {
		return
	}
	if now < port.nextArb {
		// Mid-transfer: the channel is busy. The arrival of a
		// higher-priority packet does not interrupt the on-going
		// transfer, but PVC's preemption logic still resolves the
		// priority inversion it observes at the output: a buffered
		// packet that trails the best waiting packet by more than the
		// hysteresis margin is discarded and must be retransmitted.
		// This is where MECS's destination-side discards come from —
		// the victim has already crossed its whole express channel,
		// so its full hop distance is replayed (Figure 5) — while the
		// contended output port itself never carries the victim.
		if n.mode == qos.PVC {
			n.tryInversionPreempt(port, now)
		}
		return
	}
	if n.mode == qos.NoQoS {
		n.arbitrateRoundRobin(port, now)
		return
	}

	// Candidates bid with their dynamic priority: looked up in the
	// port's flow table, except at DPS intermediate hops, which reuse
	// the priority carried in the header. The bid list lives in a
	// network-owned scratch buffer: arbitration runs once per port per
	// cycle on the engine's single thread, so the buffer is reused
	// across every allocation round instead of reallocated.
	bids := n.bidScratch[:0]
	for _, w := range port.waiters {
		leg := &w.legs[w.Hop()]
		prio := w.Priority
		if !leg.Intermediate {
			prio = port.table.Priority(w.Flow)
		} else if w.frameStamp != n.frameCount {
			// Carried priorities are frame-relative: a stamp from
			// a flushed frame reads as zero consumption, like the
			// counters it came from.
			prio = 0
		}
		bids = append(bids, bid{w, prio})
	}
	n.bidScratch = bids[:0]
	// Serve in priority order until one candidate can be granted.
	// Candidates that cannot obtain (or steal) a VC are skipped, as in
	// hardware VA where only credit-holding requesters bid. Ties within
	// a priority class are broken by packet age (oldest creation time
	// first): age-based arbitration keeps merge points globally fair —
	// a starved flow's queue head is the oldest packet in the system,
	// so it wins every tie until it catches up, instead of splitting
	// tie bandwidth by how many candidates each input happens to
	// present.
	tried := 0
	failedBufs := n.failedScratch[:0]
	for tried < len(bids) {
		best := -1
		for i := range bids {
			if bids[i].w == nil {
				continue
			}
			if best < 0 || better(bids[i].w, bids[i].prio, bids[best].w, bids[best].prio) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		w, prio := bids[best].w, bids[best].prio
		bids[best].w = nil
		tried++

		leg := &w.legs[w.Hop()]
		buf := n.bufs[leg.In]
		// If an equally-eligible earlier candidate already failed on
		// this buffer, this one fails too (unless it can use the
		// reserved VC or preempt with a better priority — both
		// rechecked below only when the buffer state could differ).
		skip := false
		for _, fb := range failedBufs {
			if fb == buf {
				skip = true
				break
			}
		}
		if skip && !w.Reserved {
			continue
		}
		vcIdx := buf.allocVC(w, 0, 0) // timing filled in by grant
		// Preemption resolves priority inversion in buffers, but only
		// where the preemption logic physically exists — at output
		// ports with flow state (Figure 2), which excludes DPS
		// intermediate muxes. At the destination router it discards
		// ejection-VC holders whose whole path is then wasted: exactly
		// why MECS's wasted-hop fraction equals its packet fraction in
		// Figure 5 (every express packet loses its full flight).
		if vcIdx < 0 && n.mode == qos.PVC && !leg.Intermediate {
			// Victim and requester are priced off the same flow
			// table, with hysteresis: equally-served flows jitter
			// within a few classes and must not preempt each other.
			threshold := prio + n.margin*port.table.PriorityStep(w.Flow)
			prioOf := func(v *pkt) noc.Priority { return port.table.Priority(v.Flow) }
			if victim := buf.findVictim(threshold, prioOf); victim >= 0 {
				n.preempt(buf, victim, now)
				vcIdx = buf.allocVC(w, 0, 0)
			}
		}
		if vcIdx < 0 {
			failedBufs = append(failedBufs, buf)
			n.failedScratch = failedBufs[:0] // keep the grown backing array
			continue
		}
		n.grant(port, w, leg, buf, vcIdx, prio, now)
		return
	}
}

// tryInversionPreempt resolves a priority inversion at a busy output port:
// among the waiting candidates, the packet with the worst priority is
// discarded if it trails the best candidate by more than the hysteresis
// margin, is not rate-compliant, and is already buffered in the network
// (a packet still at its source has nothing to replay). At most one
// victim per cycle, as in hardware. Inversion preemption only exists
// where the preemption logic does: at ports with flow state.
func (n *Network) tryInversionPreempt(port *outPort, now sim.Cycle) {
	if port.table == nil || len(port.waiters) < 2 {
		return
	}
	bestPrio := noc.WorstPriority
	worstPrio := noc.Priority(0)
	var worst *pkt
	var step noc.Priority
	for _, w := range port.waiters {
		leg := &w.legs[w.Hop()]
		prio := w.Priority
		if !leg.Intermediate {
			prio = port.table.Priority(w.Flow)
		} else if w.frameStamp != n.frameCount {
			prio = 0
		}
		if prio < bestPrio {
			bestPrio = prio
			step = port.table.PriorityStep(w.Flow)
		}
		if prio > worstPrio && !w.Reserved && w.state == stWaiting && w.curBuf != nil {
			worstPrio = prio
			worst = w
		}
	}
	if worst == nil || bestPrio == noc.WorstPriority {
		return
	}
	if worstPrio > bestPrio+n.margin*step {
		n.preemptPacket(worst, port.spec.Node, now)
	}
}

// better orders two candidates: lower priority class first, then the
// older packet (global age by creation time), then lower ID for
// determinism.
func better(a *pkt, ap noc.Priority, b *pkt, bp noc.Priority) bool {
	if ap != bp {
		return ap < bp
	}
	if a.Created != b.Created {
		return a.Created < b.Created
	}
	return a.ID < b.ID
}

// arbitrateRoundRobin is the NoQoS policy: rotate among candidates,
// granting the first that can obtain a VC. Locally fair, globally not —
// the starvation the paper motivates QoS with.
func (n *Network) arbitrateRoundRobin(port *outPort, now sim.Cycle) {
	granted := -1
	idx := port.rr.Pick(len(port.waiters), func(i int) bool {
		w := port.waiters[i]
		leg := &w.legs[w.Hop()]
		buf := n.bufs[leg.In]
		if buf.allocVCPeek(w) < 0 {
			return false
		}
		return true
	})
	if idx < 0 {
		return
	}
	granted = idx
	w := port.waiters[granted]
	leg := &w.legs[w.Hop()]
	buf := n.bufs[leg.In]
	vcIdx := buf.allocVC(w, 0, 0)
	if vcIdx < 0 {
		return
	}
	n.grant(port, w, leg, buf, vcIdx, w.Priority, now)
}

// grant commits the winner: flow-state update, transfer timing, VC and
// port occupancy, and the scheduled arrival/delivery/release events.
func (n *Network) grant(port *outPort, w *pkt, leg *topology.Leg, buf *inBuf, vcIdx int, prio noc.Priority, now sim.Cycle) {
	if n.grantHook != nil {
		n.grantHook(port, w)
	}
	if !leg.Intermediate && port.table != nil {
		w.Priority = prio
		w.frameStamp = n.frameCount
		port.table.Record(w.Flow, w.Size)
	}

	headDep := now + sim.Cycle(leg.RouterDelay)
	headArr := headDep + sim.Cycle(leg.WireDelay)
	tailArr := headArr + sim.Cycle(w.Size-1)
	tailDep := headDep + sim.Cycle(w.Size-1)
	port.nextArb = now + sim.Cycle(w.Size)

	vc := buf.vcs[vcIdx]
	vc.HeadArrival = headArr
	vc.TailArrival = tailArr
	w.nxtBuf, w.nxtVC = buf, vcIdx

	n.unregister(port, w)
	if w.curBuf == nil {
		w.src.onInjected(w, tailDep, now)
	} else {
		// The upstream VC frees once the tail departs and the credit
		// crosses back to its allocator.
		rel := tailDep + sim.Cycle(w.creditDelay)
		n.schedule(event{kind: evRelease, buf: w.curBuf, vc: int16(w.curVC), gen: w.curBuf.gen(w.curVC)}, rel)
		w.curBuf, w.curVC = nil, -1
	}
	w.state = stMoving

	if leg.Final {
		n.schedule(event{kind: evDeliver, p: w, attempt: int32(w.Retransmits)}, tailArr)
		// The terminal consumes the ejection buffer at link rate, so
		// its credit loop is local to the destination router: the VC
		// recycles one cycle behind the port cadence, letting the two
		// ejection VCs sustain a full flit per cycle even for streams
		// of single-flit packets (the paper's saturated hotspot runs
		// the terminal port at ~100%).
		n.schedule(event{kind: evRelease, buf: buf, vc: int16(vcIdx), gen: buf.gen(vcIdx)},
			now+sim.Cycle(w.Size)+1)
	} else {
		n.schedule(event{kind: evHead, p: w, attempt: int32(w.Retransmits)}, headArr)
	}
}

// preempt discards the packet in the given VC of buf.
func (n *Network) preempt(buf *inBuf, vcIdx int, now sim.Cycle) {
	victim := buf.owners[vcIdx]
	if victim == nil {
		panic("network: preempting unowned VC")
	}
	if n.preemptHook != nil {
		n.preemptHook(buf, victim)
	}
	n.preemptPacket(victim, buf.node(), now)
}

// preemptPacket discards a packet outright: all resources it holds are
// freed, in-flight events become stale, and a NACK is dispatched on the
// dedicated ACK network from the preemption site so the source replays it
// (Section 3.1).
func (n *Network) preemptPacket(victim *pkt, siteNode int, now sim.Cycle) {
	n.coll.Preempted(victim.weightedHops, !victim.wasPreempted)
	victim.wasPreempted = true

	// Free the victim's residence and any allocation it holds ahead of
	// itself; generation bumps turn the scheduled releases into no-ops.
	if victim.state == stWaiting {
		// Registered at its next leg's port: withdraw the bid.
		n.unregister(n.ports[victim.legs[victim.Hop()].Out], victim)
	}
	if victim.curBuf != nil {
		victim.curBuf.release(victim.curVC, victim.curBuf.gen(victim.curVC))
		victim.curBuf, victim.curVC = nil, -1
	}
	if victim.nxtBuf != nil {
		victim.nxtBuf.release(victim.nxtVC, victim.nxtBuf.gen(victim.nxtVC))
		victim.nxtBuf, victim.nxtVC = nil, -1
	}
	victim.state = stDead
	victim.weightedHops = 0
	victim.ResetForRetransmit()

	// NACK travels back to the source on the ACK network.
	dist := sim.Cycle(topology.Distance(noc.NodeID(siteNode), victim.Src))
	n.schedule(event{kind: evNack, p: victim}, now+dist+n.cfg.QoS.AckDelay)
}
