package network

import (
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// outPort is one contended output resource: a column channel, a subnet
// port, or the terminal (ejection) port. Exactly one packet wins each
// allocation and streams its flits across at one per cycle. Ports live by
// value in the network's flat port array.
type outPort struct {
	id   topology.PortID
	spec topology.PortSpec
	// table is this output's PVC flow state (nil under NoQoS);
	// priorities are cached per flow and bandwidth recorded here on
	// every non-intermediate traversal.
	table *qos.FlowTable
	// nextArb is the earliest cycle a new packet may be granted,
	// maintaining one flit per cycle across the channel with the next
	// allocation pipelined behind the current transfer.
	nextArb sim.Cycle
	// waiters are the registered candidates: head packets of upstream
	// VCs routed through this port, plus offered source packets.
	waiters []pktH
	rr      qos.RoundRobin
	// Inversion-preempt scan memo. While a transfer occupies the port,
	// tryInversionPreempt would otherwise rescan the same waiters every
	// cycle — but its verdict depends only on the waiter set (membership,
	// and every per-packet field read by the scan, all frozen while a
	// packet stays registered), this port's cached flow priorities
	// (changed only by grant here, which edits the waiter set, or by a
	// frame flush) and the frame counter. waitEpoch counts waiter-set
	// edits; a completed no-victim scan records (epoch, frame) and the
	// scan is skipped until either moves. A scan that preempts records a
	// stale epoch (the victim's unregister bumps it), so the next cycle
	// rescans — preserving the one-victim-per-cycle cadence exactly.
	waitEpoch uint32
	scanEpoch uint32
	scanFrame int32
	scanValid bool
}

// bid is one arbitration candidate with its dynamic priority and
// tie-break keys, resolved once per allocation round. Carrying the age
// and ID here keeps the serve loop's best-candidate scan inside the bid
// array — no arena lookups per comparison.
type bid struct {
	prio    noc.Priority
	created sim.Cycle
	id      uint64
	h       pktH // noPkt once the candidate has been served
}

// register adds a packet to a port's candidate list, activating the port
// if this is its first candidate. Active ports live in a bitmap over port
// IDs, so per-cycle arbitration (which fires set bits in ascending order)
// visits ports in the same canonical order as the historical all-ports
// scan, independent of activation history — which is also what makes idle
// skipping mechanical (stale bits can never reorder arbitration).
func (n *Network) register(p *outPort, h pktH) {
	w := &n.arena[h]
	if w.curBuf == noBuf {
		w.state = stAtSource
	} else {
		w.state = stWaiting
	}
	p.waiters = append(p.waiters, h)
	p.waitEpoch++
	n.waiterCount++
	if n.waiterCount == 1 {
		// The watchdog's progress clock restarts when the network goes
		// from no candidates to some: an idle stretch must not count
		// against the first packet to arrive after it.
		n.lastProgress = n.clock.Now()
	}
	n.activeW[int(p.id)>>6] |= 1 << (uint(p.id) & 63)
}

// unregister removes a packet from a port's candidate list. The port's
// active bit stays set until the next arbitration pass clears it (lazy
// deactivation keeps removal O(1) here).
func (n *Network) unregister(p *outPort, h pktH) {
	if len(p.waiters) == 1 && p.waiters[0] == h {
		// Sole candidate (the low-load common case): no splice scan.
		p.waiters = p.waiters[:0]
		p.waitEpoch++
		n.waiterCount--
		return
	}
	for i, c := range p.waiters {
		if c == h {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			p.waitEpoch++
			n.waiterCount--
			return
		}
	}
}

// arbitrate runs one virtual-channel allocation for the port: the winning
// candidate is granted a VC at its downstream buffer and begins its
// transfer. Under PVC, a candidate that finds the buffer full may preempt
// a strictly-lower-priority, non-compliant packet (Section 3.1).
func (n *Network) arbitrate(port *outPort, now sim.Cycle) {
	if len(port.waiters) == 0 {
		return
	}
	if n.fltOn && n.portBlocked(port) {
		// The link is down or the router stalled: no grant, and no
		// preemption either — the port's allocation logic is what is
		// modeled as failed. Candidates simply wait.
		return
	}
	if now < port.nextArb {
		// Mid-transfer: the channel is busy. The arrival of a
		// higher-priority packet does not interrupt the on-going
		// transfer, but PVC's preemption logic still resolves the
		// priority inversion it observes at the output: a buffered
		// packet that trails the best waiting packet by more than the
		// hysteresis margin is discarded and must be retransmitted.
		// This is where MECS's destination-side discards come from —
		// the victim has already crossed its whole express channel,
		// so its full hop distance is replayed (Figure 5) — while the
		// contended output port itself never carries the victim.
		if n.mode == qos.PVC {
			n.tryInversionPreempt(port, now)
		}
		return
	}
	if n.mode == qos.NoQoS {
		n.arbitrateRoundRobin(port, now)
		return
	}

	// Candidates bid with their dynamic priority: read off the port's
	// flat cached-priority array, except at DPS intermediate hops, which
	// reuse the priority carried in the header. The bid list lives in a
	// network-owned scratch buffer: arbitration runs once per port per
	// cycle on the engine's single thread, so the buffer is reused
	// across every allocation round instead of reallocated.
	prios := port.table.Priorities()
	if len(port.waiters) == 1 {
		// Sole candidate: the bid build and best-of scan are pure
		// overhead — serve it directly through the same alloc/preempt/
		// grant sequence the general loop would run.
		h := port.waiters[0]
		w := &n.arena[h]
		leg := &w.legs[w.Hop()]
		prio := w.Priority
		if !leg.Intermediate {
			prio = prios[w.Flow]
		} else if w.frameStamp != n.frameCount {
			prio = 0
		}
		buf := &n.bufs[leg.In]
		vcIdx := buf.allocVC(h, w.Reserved)
		if vcIdx < 0 && n.mode == qos.PVC && !leg.Intermediate {
			threshold := prio + n.margin*port.table.PriorityStep(w.Flow)
			if victim := n.findVictim(buf, threshold, prios); victim >= 0 {
				n.preempt(buf, victim, now)
				vcIdx = buf.allocVC(h, w.Reserved)
			}
		}
		if vcIdx < 0 {
			return
		}
		n.grant(port, h, leg, buf, vcIdx, prio, now)
		return
	}
	bids := n.bidScratch[:0]
	for _, h := range port.waiters {
		w := &n.arena[h]
		leg := &w.legs[w.Hop()]
		prio := w.Priority
		if !leg.Intermediate {
			prio = prios[w.Flow]
		} else if w.frameStamp != n.frameCount {
			// Carried priorities are frame-relative: a stamp from
			// a flushed frame reads as zero consumption, like the
			// counters it came from.
			prio = 0
		}
		bids = append(bids, bid{prio: prio, created: w.Created, id: w.ID, h: h})
	}
	n.bidScratch = bids[:0]
	// Serve in priority order until one candidate can be granted.
	// Candidates that cannot obtain (or steal) a VC are skipped, as in
	// hardware VA where only credit-holding requesters bid. Ties within
	// a priority class are broken by packet age (oldest creation time
	// first): age-based arbitration keeps merge points globally fair —
	// a starved flow's queue head is the oldest packet in the system,
	// so it wins every tie until it catches up, instead of splitting
	// tie bandwidth by how many candidates each input happens to
	// present.
	tried := 0
	failedBufs := n.failedScratch[:0]
	for tried < len(bids) {
		best := -1
		for i := range bids {
			if bids[i].h == noPkt {
				continue
			}
			if best < 0 || betterBid(&bids[i], &bids[best]) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		h, prio := bids[best].h, bids[best].prio
		bids[best].h = noPkt
		tried++

		w := &n.arena[h]
		leg := &w.legs[w.Hop()]
		buf := &n.bufs[leg.In]
		// If an equally-eligible earlier candidate already failed on
		// this buffer, this one fails too (unless it can use the
		// reserved VC or preempt with a better priority — both
		// rechecked below only when the buffer state could differ).
		skip := false
		for _, fb := range failedBufs {
			if fb == int32(leg.In) {
				skip = true
				break
			}
		}
		if skip && !w.Reserved {
			continue
		}
		vcIdx := buf.allocVC(h, w.Reserved)
		// Preemption resolves priority inversion in buffers, but only
		// where the preemption logic physically exists — at output
		// ports with flow state (Figure 2), which excludes DPS
		// intermediate muxes. At the destination router it discards
		// ejection-VC holders whose whole path is then wasted: exactly
		// why MECS's wasted-hop fraction equals its packet fraction in
		// Figure 5 (every express packet loses its full flight).
		if vcIdx < 0 && n.mode == qos.PVC && !leg.Intermediate {
			// Victim and requester are priced off the same flow
			// table, with hysteresis: equally-served flows jitter
			// within a few classes and must not preempt each other.
			threshold := prio + n.margin*port.table.PriorityStep(w.Flow)
			if victim := n.findVictim(buf, threshold, prios); victim >= 0 {
				n.preempt(buf, victim, now)
				vcIdx = buf.allocVC(h, w.Reserved)
			}
		}
		if vcIdx < 0 {
			failedBufs = append(failedBufs, int32(leg.In))
			n.failedScratch = failedBufs[:0] // keep the grown backing array
			continue
		}
		n.grant(port, h, leg, buf, vcIdx, prio, now)
		return
	}
}

// tryInversionPreempt resolves a priority inversion at a busy output port:
// among the waiting candidates, the packet with the worst priority is
// discarded if it trails the best candidate by more than the hysteresis
// margin, is not rate-compliant, and is already buffered in the network
// (a packet still at its source has nothing to replay). At most one
// victim per cycle, as in hardware. Inversion preemption only exists
// where the preemption logic does: at ports with flow state.
func (n *Network) tryInversionPreempt(port *outPort, now sim.Cycle) {
	if port.table == nil || len(port.waiters) < 2 {
		return
	}
	if port.scanValid && port.scanEpoch == port.waitEpoch && port.scanFrame == n.frameCount {
		// Nothing the scan reads has changed since it last found no
		// victim — rescanning would reproduce the same verdict.
		return
	}
	port.scanValid, port.scanEpoch, port.scanFrame = true, port.waitEpoch, n.frameCount
	prios := port.table.Priorities()
	bestPrio := noc.WorstPriority
	worstPrio := noc.Priority(0)
	worst := noPkt
	var step noc.Priority
	for _, h := range port.waiters {
		w := &n.arena[h]
		leg := &w.legs[w.Hop()]
		prio := w.Priority
		if !leg.Intermediate {
			prio = prios[w.Flow]
		} else if w.frameStamp != n.frameCount {
			prio = 0
		}
		if prio < bestPrio {
			bestPrio = prio
			step = port.table.PriorityStep(w.Flow)
		}
		if prio > worstPrio && !w.Reserved && w.state == stWaiting && w.curBuf != noBuf {
			worstPrio = prio
			worst = h
		}
	}
	if worst == noPkt || bestPrio == noc.WorstPriority {
		return
	}
	if worstPrio > bestPrio+n.margin*step {
		n.preemptPacket(worst, port.spec.Node, now)
	}
}

// betterBid orders two candidates: lower priority class first, then the
// older packet (global age by creation time), then lower ID for
// determinism.
func betterBid(a, b *bid) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	if a.created != b.created {
		return a.created < b.created
	}
	return a.id < b.id
}

// arbitrateRoundRobin is the NoQoS policy: rotate among candidates,
// granting the first that can obtain a VC. Locally fair, globally not —
// the starvation the paper motivates QoS with.
func (n *Network) arbitrateRoundRobin(port *outPort, now sim.Cycle) {
	idx := port.rr.Pick(len(port.waiters), func(i int) bool {
		w := &n.arena[port.waiters[i]]
		return n.bufs[w.legs[w.Hop()].In].canAlloc(w.Reserved)
	})
	if idx < 0 {
		return
	}
	h := port.waiters[idx]
	w := &n.arena[h]
	leg := &w.legs[w.Hop()]
	buf := &n.bufs[leg.In]
	vcIdx := buf.allocVC(h, w.Reserved)
	if vcIdx < 0 {
		return
	}
	n.grant(port, h, leg, buf, vcIdx, w.Priority, now)
}

// grant commits the winner: flow-state update, transfer timing, VC and
// port occupancy, and the scheduled arrival/delivery/release events.
func (n *Network) grant(port *outPort, h pktH, leg *topology.Leg, buf *inBuf, vcIdx int32, prio noc.Priority, now sim.Cycle) {
	if n.grantHook != nil {
		n.grantHook(port, h)
	}
	n.lastProgress = now
	w := &n.arena[h]
	if !leg.Intermediate && port.table != nil {
		w.Priority = prio
		w.frameStamp = n.frameCount
		port.table.Record(w.Flow, w.Size)
	}

	headDep := now + sim.Cycle(leg.RouterDelay)
	headArr := headDep + sim.Cycle(leg.WireDelay)
	tailArr := headArr + sim.Cycle(w.Size-1)
	tailDep := headDep + sim.Cycle(w.Size-1)
	port.nextArb = now + sim.Cycle(w.Size)

	w.nxtBuf, w.nxtVC = int32(buf.id), vcIdx

	n.unregister(port, h)
	if w.curBuf == noBuf {
		n.onInjected(&n.srcs[w.srcIdx], h, tailDep, now)
	} else {
		// The upstream VC frees once the tail departs and the credit
		// crosses back to its allocator.
		rel := tailDep + sim.Cycle(w.creditDelay)
		cb := &n.bufs[w.curBuf]
		n.scheduleRelease(w.curBuf, int16(w.curVC), cb.gen(w.curVC), rel, now)
		w.curBuf, w.curVC = noBuf, -1
	}
	w.state = stMoving

	if leg.Final {
		n.scheduleDeliver(h, w.gen, int32(w.Retransmits), tailArr, now)
		// The terminal consumes the ejection buffer at link rate, so
		// its credit loop is local to the destination router: the VC
		// recycles one cycle behind the port cadence, letting the two
		// ejection VCs sustain a full flit per cycle even for streams
		// of single-flit packets (the paper's saturated hotspot runs
		// the terminal port at ~100%).
		n.scheduleRelease(int32(buf.id), int16(vcIdx), buf.gen(vcIdx),
			now+sim.Cycle(w.Size)+1, now)
	} else {
		n.scheduleHead(h, w.gen, int32(w.Retransmits), headArr, now)
	}
}

// preempt discards the packet in the given VC of buf.
func (n *Network) preempt(buf *inBuf, vcIdx int32, now sim.Cycle) {
	victim := buf.owner[vcIdx]
	if victim == noPkt {
		panic("network: preempting unowned VC")
	}
	if n.preemptHook != nil {
		n.preemptHook(buf, victim)
	}
	n.preemptPacket(victim, buf.node(), now)
}

// preemptPacket discards a packet outright: all resources it holds are
// freed, in-flight events become stale, and a NACK is dispatched on the
// dedicated ACK network from the preemption site so the source replays it
// (Section 3.1).
func (n *Network) preemptPacket(h pktH, siteNode int, now sim.Cycle) {
	victim := &n.arena[h]
	n.coll.Preempted(int(victim.weightedHops), !victim.wasPreempted)
	victim.wasPreempted = true

	// Free the victim's residence and any allocation it holds ahead of
	// itself; generation bumps turn the scheduled releases into no-ops.
	n.releaseAttempt(h, victim)
	victim.state = stDead
	victim.weightedHops = 0
	victim.ResetForRetransmit()

	// NACK travels back to the source on the ACK network. Until it lands
	// the victim's requeue belongs to it, not to any delivery timeout.
	victim.nackPending = true
	dist := sim.Cycle(topology.Distance(noc.NodeID(siteNode), victim.Src))
	n.schedule(&event{kind: evNack, p: h, pgen: victim.gen}, now+dist+n.cfg.QoS.AckDelay, now)
}
