package network

import (
	"testing"

	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// ensembleCfg builds one lane configuration of the equivalence matrix.
func ensembleCfg(kind topology.Kind, mode qos.Mode, seed uint64, disableSkip bool) Config {
	w := traffic.UniformRandom(topology.ColumnNodes, 0.02).WithStop(9_000)
	qc := qos.DefaultConfig(w.TotalFlows())
	qc.Mode = mode
	return Config{Kind: kind, QoS: qc, Workload: w, Seed: seed, DisableIdleSkip: disableSkip}
}

// TestEnsembleMatchesStandalone is the batching contract's equivalence
// matrix: across every topology, every QoS mode, idle skipping on and
// off, and lane counts 1, 2, 4 and 8, every lane of an ensemble must
// finish with exactly its standalone engine's fingerprint. The
// standalone references are computed once per (topology, mode, skip)
// point and shared across the K axis, so a divergence pins both the
// lane and the batch shape that produced it.
func TestEnsembleMatchesStandalone(t *testing.T) {
	const maxLanes = 8
	seeds := make([]uint64, maxLanes)
	for i := range seeds {
		seeds[i] = 100 + uint64(i)
	}
	for _, kind := range topology.Kinds() {
		for _, mode := range []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS} {
			for _, disableSkip := range []bool{false, true} {
				name := kind.String() + "/" + mode.String() + "/skip"
				if disableSkip {
					name = kind.String() + "/" + mode.String() + "/ticked"
				}
				t.Run(name, func(t *testing.T) {
					want := make([]skipFingerprint, maxLanes)
					for i, seed := range seeds {
						n := MustNew(ensembleCfg(kind, mode, seed, disableSkip))
						n.WarmupAndMeasure(2_000, 4_000)
						want[i] = fingerprint(n)
						want[i].flitsByFlow = n.Stats().FlitsByFlow()
					}
					for _, k := range []int{1, 2, 4, 8} {
						cfgs := make([]Config, k)
						for i := range cfgs {
							cfgs[i] = ensembleCfg(kind, mode, seeds[i], disableSkip)
						}
						e, err := NewEnsemble(cfgs)
						if err != nil {
							t.Fatal(err)
						}
						e.WarmupAndMeasure(2_000, 4_000)
						for i := 0; i < k; i++ {
							got := fingerprint(e.Lane(i))
							got.flitsByFlow = e.Lane(i).Stats().FlitsByFlow()
							if !equalFingerprints(got, want[i]) {
								t.Errorf("K=%d lane %d diverged from standalone:\nlane:       %+v\nstandalone: %+v", k, i, got, want[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestEnsembleMixedLaneDrain pins lane isolation under maximally uneven
// load: one lane saturated the whole run, one lane that stops injecting
// early and spends most of the run idle. The idle lane's skip horizon
// must leap its own dead cycles (quantum by quantum) without being
// dragged forward or held back by its busy sibling — both lanes finish
// bit-identical to standalone runs of the same cells.
func TestEnsembleMixedLaneDrain(t *testing.T) {
	mkCfg := func(rate float64, stop sim.Cycle) Config {
		w := traffic.UniformRandom(topology.ColumnNodes, rate)
		if stop > 0 {
			w = w.WithStop(stop)
		}
		return Config{Kind: topology.MeshX2, QoS: qos.DefaultConfig(w.TotalFlows()), Workload: w, Seed: 9}
	}
	cfgs := []Config{
		mkCfg(0.30, 0),     // saturated: arbitration pressure every cycle
		mkCfg(0.01, 3_000), // drains early, then idles for ~90% of the run
	}
	want := make([]skipFingerprint, len(cfgs))
	for i, cfg := range cfgs {
		n := MustNew(cfg)
		n.WarmupAndMeasure(5_000, 25_000)
		want[i] = fingerprint(n)
		want[i].flitsByFlow = n.Stats().FlitsByFlow()
	}
	e, err := NewEnsemble(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	e.WarmupAndMeasure(5_000, 25_000)
	for i := range cfgs {
		got := fingerprint(e.Lane(i))
		got.flitsByFlow = e.Lane(i).Stats().FlitsByFlow()
		if !equalFingerprints(got, want[i]) {
			t.Errorf("lane %d diverged from standalone:\nlane:       %+v\nstandalone: %+v", i, got, want[i])
		}
	}
	if e.Lane(1).InFlight() != 0 {
		t.Errorf("idle lane still holds %d packets in flight", e.Lane(1).InFlight())
	}
}

// TestEnsembleResetReuse pins the sweep slot's reuse contract: an
// ensemble reset to a new batch — different topology, different lane
// count — produces lanes bit-identical to a freshly built ensemble,
// exactly as Network.Reset does for a single cell.
func TestEnsembleResetReuse(t *testing.T) {
	first := []Config{
		ensembleCfg(topology.MECS, qos.PVC, 1, false),
		ensembleCfg(topology.MECS, qos.PVC, 2, false),
		ensembleCfg(topology.MECS, qos.PVC, 3, false),
	}
	second := []Config{
		ensembleCfg(topology.MeshX4, qos.NoQoS, 11, false),
		ensembleCfg(topology.MeshX4, qos.NoQoS, 12, false),
	}
	dirty, err := NewEnsemble(first)
	if err != nil {
		t.Fatal(err)
	}
	dirty.WarmupAndMeasure(2_000, 4_000)
	if err := dirty.Reset(second); err != nil {
		t.Fatal(err)
	}
	dirty.WarmupAndMeasure(2_000, 4_000)

	fresh, err := NewEnsemble(second)
	if err != nil {
		t.Fatal(err)
	}
	fresh.WarmupAndMeasure(2_000, 4_000)
	for i := range second {
		got := fingerprint(dirty.Lane(i))
		got.flitsByFlow = dirty.Lane(i).Stats().FlitsByFlow()
		want := fingerprint(fresh.Lane(i))
		want.flitsByFlow = fresh.Lane(i).Stats().FlitsByFlow()
		if !equalFingerprints(got, want) {
			t.Errorf("reused lane %d diverged from fresh build:\nreused: %+v\nfresh:  %+v", i, got, want)
		}
	}
}

// TestEnsembleRejectsMixedTopology pins the batching precondition: lanes
// may differ only by seed, so a batch mixing topologies is refused.
func TestEnsembleRejectsMixedTopology(t *testing.T) {
	_, err := NewEnsemble([]Config{
		ensembleCfg(topology.MECS, qos.PVC, 1, false),
		ensembleCfg(topology.MeshX1, qos.PVC, 2, false),
	})
	if err == nil {
		t.Fatal("mixed-topology ensemble was accepted")
	}
	if _, err := NewEnsemble(nil); err == nil {
		t.Fatal("empty ensemble was accepted")
	}
}

// TestEnsembleLanesShareGraph pins what makes batching cheap: every lane
// routes off lane 0's topology graph (one immutable table set per
// batch), across builds and Resets alike.
func TestEnsembleLanesShareGraph(t *testing.T) {
	cfgs := []Config{
		ensembleCfg(topology.DPS, qos.PVC, 1, false),
		ensembleCfg(topology.DPS, qos.PVC, 2, false),
		ensembleCfg(topology.DPS, qos.PVC, 3, false),
	}
	e, err := NewEnsemble(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < e.Lanes(); i++ {
		if e.Lane(i).Graph() != e.Lane(0).Graph() {
			t.Fatalf("lane %d built its own graph", i)
		}
	}
	if err := e.Reset(cfgs); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < e.Lanes(); i++ {
		if e.Lane(i).Graph() != e.Lane(0).Graph() {
			t.Fatalf("lane %d re-built its own graph after Reset", i)
		}
	}
}

// TestEnsembleStepAllocationFree extends the engine's exact-zero
// allocation contract to batched execution: at steady state a warm
// K-lane ensemble's combined lockstep pass allocates nothing, for K > 1.
func TestEnsembleStepAllocationFree(t *testing.T) {
	const k = 4
	cfgs := make([]Config, k)
	for i := range cfgs {
		w := traffic.UniformRandom(topology.ColumnNodes, 0.04)
		cfgs[i] = Config{
			Kind: topology.MECS, QoS: qos.DefaultConfig(w.TotalFlows()),
			Workload: w, Seed: 3 + uint64(i),
		}
	}
	e, err := NewEnsemble(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(30_000)
	if avg := testing.AllocsPerRun(5_000, e.StepAll); avg != 0 {
		t.Errorf("%v allocs per combined %d-lane step at steady state, want exactly 0", avg, k)
	}
}
