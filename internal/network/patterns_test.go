package network

import (
	"testing"

	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// These tests pin the engine-facing contracts of the synthetic pattern
// library: every pattern drives every topology under every QoS mode, the
// bursty (MMPP on/off) arrival sampler is covered by the same mechanical
// idle-skip equivalence as smooth injection, and neither patterns nor
// bursts reintroduce allocations on the steady-state hot path.

// newPatterns are the destination permutations and weighted hotspot added
// on top of the paper's uniform/tornado/hotspot trio.
func newPatterns() []traffic.Pattern {
	return []traffic.Pattern{
		traffic.TransposeTraffic(),
		traffic.BitComplementTraffic(),
		traffic.BitReversalTraffic(),
		traffic.ShuffleTraffic(),
		traffic.HotspotTraffic([]float64{4, 0, 1, 1, 0, 1, 0, 1}),
	}
}

func TestNewPatternsRunOnAllTopologiesAndModes(t *testing.T) {
	for _, pat := range newPatterns() {
		w, err := traffic.Synthetic(pat, topology.ColumnNodes, 0.03, traffic.Burst{})
		if err != nil {
			t.Fatalf("%s: %v", pat.Name(), err)
		}
		for _, kind := range topology.Kinds() {
			for _, mode := range []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS} {
				t.Run(pat.Name()+"/"+kind.String()+"/"+mode.String(), func(t *testing.T) {
					cfg := qos.DefaultConfig(w.TotalFlows())
					cfg.Mode = mode
					n := MustNew(Config{Kind: kind, QoS: cfg, Workload: w, Seed: 11})
					n.WarmupAndMeasure(1_000, 5_000)
					if n.Stats().TotalDelivered == 0 {
						t.Fatal("no packets delivered")
					}
				})
			}
		}
	}
}

// burstyWorkload builds a mixed workload exercising both bursty and
// smooth sources over a permutation pattern.
func burstyWorkload(t *testing.T) traffic.Workload {
	t.Helper()
	w, err := traffic.Synthetic(traffic.BitReversalTraffic(), topology.ColumnNodes, 0.04,
		traffic.Burst{MeanOn: 120, MeanOff: 360})
	if err != nil {
		t.Fatal(err)
	}
	// Leave half the injectors smooth so both sampler paths interleave.
	for i := range w.Specs {
		if i%2 == 0 {
			w.Specs[i].Burst = traffic.Burst{}
		}
	}
	return w
}

func TestIdleSkipEquivalentWithBurstySources(t *testing.T) {
	for _, kind := range []topology.Kind{topology.MeshX1, topology.MECS, topology.DPS} {
		t.Run(kind.String(), func(t *testing.T) {
			run := func(disable bool) skipFingerprint {
				w := burstyWorkload(t).WithStop(9_000)
				cfg := qos.DefaultConfig(w.TotalFlows())
				n := MustNew(Config{
					Kind: kind, QoS: cfg, Workload: w, Seed: 123,
					DisableIdleSkip: disable,
				})
				n.WarmupAndMeasure(2_000, 4_000)
				if _, drained := n.RunUntilDrained(200_000); !drained {
					t.Fatalf("did not drain (in flight %d)", n.InFlight())
				}
				fp := fingerprint(n)
				fp.flitsByFlow = n.Stats().FlitsByFlow()
				return fp
			}
			ticked, skipped := run(true), run(false)
			if ticked.delivered == 0 {
				t.Fatal("bursty workload delivered nothing")
			}
			if !equalFingerprints(ticked, skipped) {
				t.Errorf("skipping changed bursty results:\nticked:  %+v\nskipped: %+v", ticked, skipped)
			}
		})
	}
}

func TestStepAllocationFreeWithPatternsAndBursts(t *testing.T) {
	w := burstyWorkload(t)
	// Add a weighted-hotspot stream so the Float64-draw picker is on the
	// measured path too.
	hs, err := traffic.HotspotTraffic([]float64{2, 1, 1, 1, 1, 1, 1, 1}).DestFor(3, topology.ColumnNodes)
	if err != nil {
		t.Fatal(err)
	}
	w.Specs[3*topology.InjectorsPerNode].Dest = hs
	n := MustNew(Config{
		Kind:     topology.MECS,
		QoS:      qos.DefaultConfig(w.TotalFlows()),
		Workload: w,
		Seed:     3,
	})
	n.Run(30_000)
	if avg := testing.AllocsPerRun(5_000, n.Step); avg != 0 {
		t.Errorf("%v allocs per Step with patterns+bursts at steady state, want exactly 0", avg)
	}
}
