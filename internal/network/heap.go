package network

// heapElem is the ordering contract of minHeap elements. Generics keep
// the dispatch static (the comparator is resolved at instantiation, no
// interface boxing or indirect calls), which is why this exists instead
// of container/heap: pushing through the standard interface converts
// every element to an interface value, which allocates on a per-event,
// per-arrival hot path.
type heapElem[T any] interface {
	lessThan(T) bool
}

// minHeap is the engine's shared binary min-heap: the event ring's
// far-future spillway (minHeap[event]) and the source arrival schedule
// (minHeap[*source]).
type minHeap[T heapElem[T]] struct {
	items []T
}

func (h *minHeap[T]) Len() int { return len(h.items) }

func (h *minHeap[T]) push(v T) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].lessThan(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *minHeap[T]) pop() T {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		child := l
		if r < last && h.items[r].lessThan(h.items[l]) {
			child = r
		}
		if !h.items[child].lessThan(h.items[i]) {
			break
		}
		h.items[i], h.items[child] = h.items[child], h.items[i]
		i = child
	}
	return top
}
