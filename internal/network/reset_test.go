package network

import (
	"testing"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// resetCfg builds one cell configuration of the reuse matrix.
func resetCfg(kind topology.Kind, mode qos.Mode, rate float64, seed uint64) Config {
	w := traffic.UniformRandom(topology.ColumnNodes, rate)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.Mode = mode
	return Config{Kind: kind, QoS: cfg, Workload: w, Seed: seed}
}

// runFingerprint measures one warmup+measure cell plus a preemption-prone
// tail and captures every observable.
func runFingerprint(n *Network) skipFingerprint {
	n.WarmupAndMeasure(2_000, 6_000)
	fp := fingerprint(n)
	fp.flitsByFlow = n.Stats().FlitsByFlow()
	return fp
}

// TestResetMatchesFreshBuild pins the tentpole reuse contract: a network
// Reset to a configuration behaves bit-identically to one freshly built
// from it, for every topology x QoS mode — including Resets that cross
// topology and mode boundaries mid-stream, the way a sweep worker's
// engine hops across grid cells. The dirty network is left mid-simulation
// (packets in flight, events pending, priorities accumulated) before
// every Reset, so any state the Reset fails to clear shows up as a
// fingerprint mismatch.
func TestResetMatchesFreshBuild(t *testing.T) {
	// One long-lived engine, Reset across the whole matrix.
	reused, err := New(resetCfg(topology.DPS, qos.PVC, 0.08, 3))
	if err != nil {
		t.Fatal(err)
	}
	reused.Run(5_000) // leave it dirty before the first Reset
	for _, kind := range topology.Kinds() {
		for _, mode := range []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS} {
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				cfg := resetCfg(kind, mode, 0.05, 17)
				fresh := MustNew(cfg)
				want := runFingerprint(fresh)
				if err := reused.Reset(cfg); err != nil {
					t.Fatal(err)
				}
				got := runFingerprint(reused)
				if !equalFingerprints(want, got) {
					t.Errorf("reset diverged from fresh build:\nfresh: %+v\nreset: %+v", want, got)
				}
			})
		}
	}
}

// TestResetMatchesFreshBuildUnderPreemption repeats the reuse check in
// the preemption-heavy regime, where the retransmission machinery, quota
// and ACK chains all carry state a sloppy Reset could leak.
func TestResetMatchesFreshBuildUnderPreemption(t *testing.T) {
	w := traffic.Workload1(topology.ColumnNodes, 20_000)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.MarginClasses = 8
	adv := Config{Kind: topology.MECS, QoS: cfg, Workload: w, Seed: 21}

	fresh := MustNew(adv)
	fresh.RunUntilDrained(300_000)
	want := fingerprint(fresh)
	want.flitsByFlow = fresh.Stats().FlitsByFlow()
	if want.preemptions == 0 {
		t.Fatal("test needs preemptions to be meaningful")
	}

	reused := MustNew(resetCfg(topology.MeshX1, qos.NoQoS, 0.06, 9))
	reused.Run(4_000) // dirty: different topology, mode and flow count
	if err := reused.Reset(adv); err != nil {
		t.Fatal(err)
	}
	reused.RunUntilDrained(300_000)
	got := fingerprint(reused)
	got.flitsByFlow = reused.Stats().FlitsByFlow()
	if !equalFingerprints(want, got) {
		t.Errorf("reset diverged under preemption pressure:\nfresh: %+v\nreset: %+v", want, got)
	}
}

// TestResetRejectsInvalidConfig pins that a failed Reset reports the same
// validation errors New does.
func TestResetRejectsInvalidConfig(t *testing.T) {
	n := MustNew(resetCfg(topology.MeshX1, qos.PVC, 0.05, 1))
	bad := resetCfg(topology.MeshX1, qos.PVC, 0.05, 1)
	bad.QoS.Rates = bad.QoS.Rates[:4] // flow population mismatch
	if err := n.Reset(bad); err == nil {
		t.Fatal("Reset accepted a mismatched flow population")
	}
}

// TestResetClearsFaultState pins the robustness-subsystem reuse
// contract: a network torn down mid-outage — fault windows active, retry
// timers pending, watchdog armed and capturing its repro trace, auditor
// pacing — Reset to a fault-free configuration is bit-identical to a
// fresh build, with no bookkeeping event, bitmap bit or captured record
// leaking across.
func TestResetClearsFaultState(t *testing.T) {
	g := topology.NewGraph(topology.MeshX1, topology.ColumnNodes)
	legs := g.Path(0, noc.NodeID(g.Nodes-1), 0)
	faulted := resetCfg(topology.MeshX1, qos.PVC, 0.05, 19)
	faulted.Faults = FaultConfig{
		Windows: []noc.FaultWindow{
			{Kind: noc.FaultLinkTransient, Port: int(legs[0].Out), From: 1_000, Until: 40_000},
			{Kind: noc.FaultRouterStall, Node: 2, From: 2_000, Until: 50_000},
		},
		RetryTimeout: 400,
		MaxRetries:   6,
	}
	faulted.WatchdogCycles = 60_000
	faulted.AuditEvery = 256

	dirty := MustNew(faulted)
	dirty.Run(5_000) // mid-outage: down bits set, timers and records live
	if dirty.sysEvents == 0 || len(dirty.wdRecords) == 0 {
		t.Fatal("faulted run left no robustness state to clear; test is vacuous")
	}

	clean := resetCfg(topology.MECS, qos.PVC, 0.05, 17)
	if err := dirty.Reset(clean); err != nil {
		t.Fatal(err)
	}
	if dirty.fltOn || dirty.fltHasDead || dirty.sysEvents != 0 ||
		dirty.retryTimeout != 0 || dirty.wdWindow != 0 ||
		len(dirty.wdRecords) != 0 || dirty.auditEvery != envAuditEvery {
		t.Errorf("Reset left robustness state armed: fltOn=%v dead=%v sys=%d rto=%d wd=%d records=%d audit=%d",
			dirty.fltOn, dirty.fltHasDead, dirty.sysEvents, dirty.retryTimeout,
			dirty.wdWindow, len(dirty.wdRecords), dirty.auditEvery)
	}
	for _, bm := range [][]uint64{dirty.fltDown, dirty.fltDead, dirty.fltStall} {
		for _, w := range bm {
			if w != 0 {
				t.Fatalf("Reset left fault bitmap bits set: %v %v %v", dirty.fltDown, dirty.fltDead, dirty.fltStall)
			}
		}
	}
	got := runFingerprint(dirty)
	want := runFingerprint(MustNew(clean))
	if !equalFingerprints(want, got) {
		t.Errorf("reset out of a faulted run diverged from fresh build:\nfresh: %+v\nreset: %+v", want, got)
	}
}
