package network

import (
	"testing"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// arenaNet builds a minimal network whose arena can be driven by hand:
// one silent injector (rate is irrelevant — the tests below call
// newPacket directly).
func arenaNet(t *testing.T) *Network {
	t.Helper()
	w := traffic.Workload{Nodes: topology.ColumnNodes, Specs: []traffic.Spec{{
		Flow: traffic.FlowOf(0, 0), Node: 0, Rate: 0.01,
		Dest: traffic.FixedDest(1),
	}}}
	n := MustNew(Config{Kind: topology.MeshX1, QoS: qos.DefaultConfig(w.TotalFlows()), Workload: w, Seed: 1})
	return n
}

// TestArenaGenerationGuardsStaleHandles is the arena-layer mirror of
// TestRecycledPacketsAreIndistinguishable: it drives random interleavings
// of allocation and recycling directly against the arena and proves that
// a handle captured before a recycle can never be mistaken for the slot's
// new occupant — the recorded (handle, generation) pair stops matching
// the slot the moment the slot is recycled, which is exactly the check
// every packet-borne event performs before firing.
func TestArenaGenerationGuardsStaleHandles(t *testing.T) {
	n := arenaNet(t)
	s := &n.srcs[0]
	rng := sim.NewRNG(0xa3e1a)

	type stale struct {
		h   pktH
		gen uint32
		id  uint64
	}
	var live []stale // handles of packets not yet recycled
	var dead []stale // handles captured before their recycle
	for step := 0; step < 10_000; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			h := n.newPacket(s, noc.ClassRequest, 1, sim.Cycle(step))
			p := n.pktAt(h)
			live = append(live, stale{h: h, gen: p.gen, id: p.ID})
		} else {
			pick := rng.Intn(len(live))
			v := live[pick]
			live[pick] = live[len(live)-1]
			live = live[:len(live)-1]
			n.recycle(v.h)
			dead = append(dead, v)
		}
	}
	if len(dead) == 0 {
		t.Fatal("test did not exercise recycling")
	}

	// Every live handle still resolves to its packet.
	for _, v := range live {
		p := n.pktAt(v.h)
		if p.gen != v.gen || p.ID != v.id {
			t.Fatalf("live handle %d drifted: gen %d/%d id %d/%d", v.h, p.gen, v.gen, p.ID, v.id)
		}
	}
	// Every recycled handle is unreachable through its recorded
	// generation: the guard comparison that protects events fails.
	for _, v := range dead {
		if n.pktAt(v.h).gen == v.gen {
			t.Fatalf("stale handle %d still matches generation %d after recycle", v.h, v.gen)
		}
	}

	// And an event scheduled against a pre-recycle generation is a no-op:
	// dispatch must not mutate the slot's current occupant.
	h := n.newPacket(s, noc.ClassRequest, 1, 0)
	p := n.pktAt(h)
	staleGen := p.gen
	staleID := p.ID
	n.recycle(h)
	h2 := n.newPacket(s, noc.ClassRequest, 1, 0) // reuses the slot
	if h2 != h {
		t.Fatalf("free stack did not reuse slot %d (got %d)", h, h2)
	}
	reborn := n.pktAt(h2)
	if reborn.ID == staleID || reborn.gen == staleGen {
		t.Fatal("recycled slot kept its old identity")
	}
	beforeState, beforeRetx := reborn.state, s.retx.len()
	n.dispatch(event{kind: evNack, p: h, pgen: staleGen}, 0)
	if got := n.pktAt(h2); got.state != beforeState || s.retx.len() != beforeRetx {
		t.Fatal("stale event mutated the slot's new occupant")
	}
}

// TestArenaSlotZeroIsReserved pins the nil-handle convention: handle 0
// must never be handed out, so (&arena[h]) stays branch-free everywhere.
func TestArenaSlotZeroIsReserved(t *testing.T) {
	n := arenaNet(t)
	s := &n.srcs[0]
	for i := 0; i < 100; i++ {
		if h := n.newPacket(s, noc.ClassRequest, 1, 0); h == noPkt {
			t.Fatal("arena handed out the nil handle")
		}
	}
}
