package network

import "tanoq/internal/sim"

// Telemetry probe surface. A probe is a periodic bookkeeping event on
// the calendar ring — scheduled exactly like a fault window edge or the
// watchdog timer — whose handler only *reads* engine state. Putting the
// sampling tick on the ring (instead of, say, checking a modulus in
// Step) buys three properties at once: the idle-skip horizon covers the
// next sample automatically (nextWake already folds ring events in, so
// a fast-forwarded run wakes exactly at every tick), sysEvents
// accounting keeps a pending probe from holding a drained network
// alive, and the tick sequence is a pure function of the interval —
// bit-identical across worker counts, ensemble lanes, and skip on/off.
// The telemetry package builds its Sampler on top of this surface; the
// engine itself stores only two words and a function value, all cleared
// by Reset like every other per-cell attachment.

// MarkKind labels a phase-transition annotation emitted to the mark
// hook alongside probe samples.
type MarkKind uint8

const (
	// MarkMeasureStart is the warmup/measure boundary: the collector
	// was just reset, so cumulative counters restart from zero.
	MarkMeasureStart MarkKind = iota
	// MarkFaultStrike and MarkFaultHeal are fault window edges; Arg is
	// the window index into Config.Faults.Windows.
	MarkFaultStrike
	MarkFaultHeal
	// MarkWatchdogTrip fires just before the no-forward-progress
	// watchdog panics with its diagnostic report.
	MarkWatchdogTrip
)

// String returns the mark's wire name (constant strings — the call
// never allocates).
func (k MarkKind) String() string {
	switch k {
	case MarkMeasureStart:
		return "measure-start"
	case MarkFaultStrike:
		return "fault-strike"
	case MarkFaultHeal:
		return "fault-heal"
	case MarkWatchdogTrip:
		return "watchdog-trip"
	}
	return "unknown"
}

// ProbeMark is one phase annotation: a point in simulated time where
// the run changed regime. Arg carries a kind-specific index (the fault
// window for strike/heal edges) and is -1 otherwise.
type ProbeMark struct {
	At   sim.Cycle
	Kind MarkKind
	Arg  int32
}

// SetProbe installs a periodic telemetry probe: fn fires every `every`
// cycles of simulated time, starting one interval from now. The probe
// rides the event ring as a system event, so instrumented runs stay
// bit-identical to uninstrumented ones (the handler must only read
// state) and idle-skip horizons remain exact. Like the workload hooks,
// the probe is a per-cell attachment: Reset clears it, and the caller
// re-installs after each Reset. One probe per network.
func (n *Network) SetProbe(every sim.Cycle, fn func(now sim.Cycle)) {
	if every <= 0 {
		panic("network: probe interval must be positive")
	}
	if n.probeFn != nil {
		panic("network: a probe is already installed")
	}
	n.probeFn = fn
	n.probeEvery = every
	now := n.clock.Now()
	n.sysEvents++
	n.schedule(&event{kind: evProbe}, now+every, now)
}

// SetMarkHook installs the phase-mark observer: it fires at the
// warmup/measure boundary, on fault window edges, and on a watchdog
// trip. Cleared by Reset alongside the probe.
func (n *Network) SetMarkHook(fn func(ProbeMark)) { n.markFn = fn }

// onProbe fires one sampling tick and re-arms the next. The decrement/
// increment pair keeps sysEvents balanced, so idle() still recognizes a
// drained network with a pending probe, and an uninstalled probe (the
// hook was cleared mid-flight) simply lets the tick chain die.
func (n *Network) onProbe(now sim.Cycle) {
	n.sysEvents--
	if n.probeFn == nil {
		return
	}
	n.probeFn(now)
	n.sysEvents++
	n.schedule(&event{kind: evProbe}, now+n.probeEvery, now)
}

// mark emits one phase annotation to the installed hook, if any.
func (n *Network) mark(kind MarkKind, arg int32, at sim.Cycle) {
	if n.markFn != nil {
		n.markFn(ProbeMark{At: at, Kind: kind, Arg: arg})
	}
}

// FillVCOccupancy adds each input buffer's occupied-VC count into
// dst[node] and returns the network-wide total. Buffers whose node
// falls outside dst are still counted in the total, so a nil dst is a
// cheap "total only" query. The walk is read-only and allocation-free —
// safe from inside a probe handler.
func (n *Network) FillVCOccupancy(dst []int32) int64 {
	var total int64
	for i := range n.bufs {
		b := &n.bufs[i]
		if node := b.spec.Node; node >= 0 && node < len(dst) {
			dst[node] += b.occupied
		}
		total += int64(b.occupied)
	}
	return total
}

// FillVCCapacities adds each input buffer's VC pool size into
// dst[node] — the static normalization row for an occupancy heatmap.
func (n *Network) FillVCCapacities(dst []int32) {
	for i := range n.bufs {
		b := &n.bufs[i]
		if node := b.spec.Node; node >= 0 && node < len(dst) {
			dst[node] += b.nvc
		}
	}
}
