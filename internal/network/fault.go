package network

import (
	"fmt"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// This file is the fault-injection and end-to-end recovery subsystem.
//
// Faults are first-class events: every window edge (the cycle a fault
// strikes and, for healing windows, the cycle it lifts) is scheduled on
// the engine's calendar ring at Reset, so idle fast-forward horizons stay
// exact and a faulted run is bit-identical across worker counts and skip
// settings. Between edges the fault state is a pair of per-port bitmaps
// (down, permanently dead) plus a per-node stall bitmap that the
// arbitration hot path consults with a single gated branch — a fault-free
// configuration costs exactly one predictable-false comparison per
// arbitrated port and nothing else.
//
// Recovery is source-level: when FaultConfig.RetryTimeout is set, every
// injection arms a delivery-timeout event with RTO doubling (the timeout
// for retransmission k is RetryTimeout << k), and a timer that finds its
// packet undelivered declares the attempt lost, reclaims any in-network
// resources it still holds, and requeues the packet on the source's
// retransmission queue — the same queue NACKed preemption victims use, so
// PVC window accounting and priority bookkeeping stay honest. After
// MaxRetries timeout retransmissions the packet is abandoned and counted
// as a drop. With RetryTimeout unset, a fault-killed attempt becomes a
// drop immediately, so runs still drain.
//
// Routing recomputes deterministically around permanent faults: the
// source's offer path probes replica channels in the usual round-robin
// order and takes the first whose legs avoid every dead port; a
// destination no replica can reach is an unroutable drop. The probe is a
// pure function of the replica counter and the dead set, so it is
// deterministic and replayable.

// FaultConfig schedules hardware fault injection and configures
// end-to-end recovery for one network. The zero value disables both at
// zero cost: fault-free runs are fingerprint-identical to an engine
// without the subsystem.
type FaultConfig struct {
	// Windows are the scheduled faults, applied in order at their edges.
	Windows []noc.FaultWindow
	// RetryTimeout, when positive, arms a delivery timeout on every
	// injection: an unacknowledged packet is declared lost after
	// RetryTimeout << k cycles (k = its timeout retransmissions so far,
	// capped) and retransmitted from the source. Zero disables recovery;
	// fault-killed attempts then become final drops.
	RetryTimeout sim.Cycle
	// MaxRetries bounds timeout retransmissions per packet; once
	// exhausted the packet is abandoned and counted as a drop. Only
	// meaningful with RetryTimeout set.
	MaxRetries int
}

// Enabled reports whether the configuration injects faults or arms
// delivery timeouts.
func (c FaultConfig) Enabled() bool {
	return len(c.Windows) > 0 || c.RetryTimeout > 0
}

// retryBackoffCap bounds the RTO-doubling shift so the backoff cannot
// overflow a cycle count.
const retryBackoffCap = 16

// validate checks the fault configuration against the topology it will
// run on. Scheduling conflicts (overlapping windows on one port) are a
// scenario-level concern; the engine recomputes the full fault state at
// every edge, so overlap is well-defined here.
func (c FaultConfig) validate(kind topology.Kind, nodes int) error {
	if c.RetryTimeout < 0 {
		return fmt.Errorf("network: negative retry timeout %d", c.RetryTimeout)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("network: negative max retries %d", c.MaxRetries)
	}
	ports := topology.NumPorts(kind, nodes)
	for i, w := range c.Windows {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("network: fault window %d: %w", i, err)
		}
		switch w.Kind {
		case noc.FaultRouterStall:
			if w.Node >= nodes {
				return fmt.Errorf("network: fault window %d stalls node %d outside column of %d", i, w.Node, nodes)
			}
		default:
			if w.Port >= ports {
				return fmt.Errorf("network: fault window %d names port %d, topology %v has %d", i, w.Port, kind, ports)
			}
		}
	}
	return nil
}

// reinitFaults installs cfg's fault schedule and recovery knobs on a
// freshly Reset network: state bitmaps sized and cleared, every window
// edge scheduled as an evFault on the event ring (attempt 1 = strike,
// 0 = heal), and the watchdog timer armed. Runs after Reset rebuilds the
// event ring and sources, so edge events get the first sequence numbers
// of the run and fire ahead of any same-cycle packet event.
func (n *Network) reinitFaults(cfg Config) {
	n.fltOn = len(cfg.Faults.Windows) > 0
	n.fltHasDead = false
	n.retryTimeout = cfg.Faults.RetryTimeout
	n.maxRetries = int32(cfg.Faults.MaxRetries)
	n.sysEvents = 0
	n.wdWindow = cfg.WatchdogCycles
	n.lastProgress = 0
	n.wdRecords = n.wdRecords[:0]
	n.auditEvery = cfg.AuditEvery
	if n.auditEvery == 0 && envAuditEvery > 0 {
		n.auditEvery = envAuditEvery
	}
	n.auditAt = 0

	words := (len(n.ports) + 63) / 64
	if cap(n.fltDown) < words {
		n.fltDown = make([]uint64, words)
		n.fltDead = make([]uint64, words)
	}
	n.fltDown = n.fltDown[:words]
	n.fltDead = n.fltDead[:words]
	for i := range n.fltDown {
		n.fltDown[i], n.fltDead[i] = 0, 0
	}
	nwords := (n.cfg.Nodes + 63) / 64
	if cap(n.fltStall) < nwords {
		n.fltStall = make([]uint64, nwords)
	}
	n.fltStall = n.fltStall[:nwords]
	for i := range n.fltStall {
		n.fltStall[i] = 0
	}

	for i, w := range cfg.Faults.Windows {
		n.sysEvents++
		n.schedule(&event{kind: evFault, buf: int32(i), attempt: 1}, w.From, 0)
		if w.Until > 0 {
			n.sysEvents++
			n.schedule(&event{kind: evFault, buf: int32(i), attempt: 0}, w.Until, 0)
		}
	}
	if n.wdWindow > 0 {
		n.sysEvents++
		n.schedule(&event{kind: evWatchdog}, n.wdWindow, 0)
	}
}

func setBit(bm []uint64, i int)       { bm[i>>6] |= 1 << uint(i&63) }
func testBit(bm []uint64, i int) bool { return bm[i>>6]&(1<<uint(i&63)) != 0 }

// portBlocked reports whether the port can grant nothing this cycle: its
// link is down, or its router is stalled. Only consulted when fault
// windows are configured.
func (n *Network) portBlocked(port *outPort) bool {
	return testBit(n.fltDown, int(port.id)) || testBit(n.fltStall, port.spec.Node)
}

// onFaultEdge fires one scheduled window edge: the down/dead/stall state
// is recomputed wholesale from the schedule (robust under any overlap),
// and a striking link fault kills the traffic it catches.
func (n *Network) onFaultEdge(idx int32, strike bool, now sim.Cycle) {
	n.sysEvents--
	if strike {
		n.mark(MarkFaultStrike, idx, now)
	} else {
		n.mark(MarkFaultHeal, idx, now)
	}
	n.recomputeFaultState(now)
	if !strike {
		return
	}
	w := n.cfg.Faults.Windows[idx]
	if w.Kind == noc.FaultRouterStall {
		return // nothing is lost: traffic queues up behind the stall
	}
	n.applyLinkFault(w.Port, w.Kind == noc.FaultLinkPermanent, now)
}

// recomputeFaultState rebuilds the fault bitmaps from the window schedule
// at cycle now. Edges are rare, so the wholesale recompute costs nothing
// measurable and makes overlapping or abutting windows trivially correct.
func (n *Network) recomputeFaultState(now sim.Cycle) {
	for i := range n.fltDown {
		n.fltDown[i], n.fltDead[i] = 0, 0
	}
	for i := range n.fltStall {
		n.fltStall[i] = 0
	}
	n.fltHasDead = false
	for _, w := range n.cfg.Faults.Windows {
		if w.From > now || (w.Until > 0 && now >= w.Until) {
			continue
		}
		switch w.Kind {
		case noc.FaultRouterStall:
			setBit(n.fltStall, w.Node)
		case noc.FaultLinkPermanent:
			setBit(n.fltDown, w.Port)
			setBit(n.fltDead, w.Port)
			n.fltHasDead = true
		case noc.FaultLinkTransient:
			setBit(n.fltDown, w.Port)
		}
	}
}

// legsCrossDead reports whether any leg from index from onward uses a
// permanently dead output port.
func (n *Network) legsCrossDead(legs []topology.Leg, from int) bool {
	for i := from; i < len(legs); i++ {
		if testBit(n.fltDead, int(legs[i].Out)) {
			return true
		}
	}
	return false
}

// applyLinkFault kills the traffic a striking link fault catches: packets
// whose flits are in flight on the faulted port are dropped (transient
// and permanent), and for a permanent fault, anything whose remaining
// route crosses a now-dead port can never arrive and is dropped too,
// while offered-but-ungranted source packets are withdrawn so their next
// offer recomputes the route.
func (n *Network) applyLinkFault(port int, permanent bool, now sim.Cycle) {
	for h := pktH(1); int(h) < len(n.arena); h++ {
		p := &n.arena[h]
		switch p.state {
		case stMoving:
			// legs[Hop()] is the in-transfer leg (hop advances at head
			// arrival), so its Out is the link the flits occupy.
			if int(p.legs[p.Hop()].Out) == port {
				n.faultKill(h, now)
			} else if permanent && n.legsCrossDead(p.legs, p.Hop()+1) {
				n.faultKill(h, now)
			}
		case stWaiting:
			// Buffered traffic survives a transient outage (it waits out
			// the window), but a permanently severed route is fatal.
			if permanent && n.legsCrossDead(p.legs, p.Hop()) {
				n.faultKill(h, now)
			}
		}
	}
	if !permanent {
		return
	}
	for i := range n.srcs {
		s := &n.srcs[i]
		if s.offering == noPkt {
			continue
		}
		p := &n.arena[s.offering]
		if n.legsCrossDead(p.legs, 0) {
			n.unregister(&n.ports[p.legs[0].Out], s.offering)
			s.offering = noPkt
			n.markOfferable(s)
		}
	}
}

// faultKill discards one in-network transmission attempt: resources are
// released exactly as for a preemption, but no NACK travels — recovery
// belongs to the delivery timeout armed at injection, or, with recovery
// disabled, the packet is abandoned on the spot.
func (n *Network) faultKill(h pktH, now sim.Cycle) {
	p := &n.arena[h]
	n.releaseAttempt(h, p)
	p.state = stDead
	p.weightedHops = 0
	n.coll.FaultDropped()
	p.ResetForRetransmit() // in-flight events of this attempt go stale
	if n.retryTimeout == 0 {
		n.abandon(h)
	}
}

// releaseAttempt withdraws a packet's arbitration bid and frees the VCs
// it still owns; generation bumps turn any scheduled release into a
// no-op. A claim whose VC is no longer owned by this packet (its
// credit-loop release already fired, and the VC may belong to a
// successor) is only disclaimed, never released. Shared by preemption,
// fault kills and timeout losses.
func (n *Network) releaseAttempt(h pktH, p *pkt) {
	if p.state == stWaiting {
		n.unregister(&n.ports[p.legs[p.Hop()].Out], h)
	}
	if p.curBuf != noBuf {
		cb := &n.bufs[p.curBuf]
		if cb.owner[p.curVC] == h {
			cb.release(p.curVC, cb.gen(p.curVC))
		}
		p.curBuf, p.curVC = noBuf, -1
	}
	if p.nxtBuf != noBuf {
		nb := &n.bufs[p.nxtBuf]
		if nb.owner[p.nxtVC] == h {
			nb.release(p.nxtVC, nb.gen(p.nxtVC))
		}
		p.nxtBuf, p.nxtVC = noBuf, -1
	}
}

// abandon drops an injected packet for good: its window slot and
// in-flight count are returned, the drop is charged to its flow, and the
// slot recycles. The freed window may unblock the source.
func (n *Network) abandon(h pktH) {
	p := &n.arena[h]
	s := &n.srcs[p.srcIdx]
	s.window--
	if s.window < 0 {
		panic("network: abandoning packet without outstanding window slot")
	}
	n.inFlight--
	n.coll.Dropped(p.Flow)
	p.state = stDead
	n.recycle(h)
	n.markOfferable(s)
}

// armRetryTimer schedules the delivery timeout for a fresh injection with
// deterministic exponential backoff: attempt k times out after
// RetryTimeout << k cycles. The event carries the packet's injection
// sequence number, so a NACK-driven reinjection (which re-arms its own
// timer) supersedes it.
func (n *Network) armRetryTimer(h pktH, p *pkt, now sim.Cycle) {
	shift := p.timeoutRetries
	if shift > retryBackoffCap {
		shift = retryBackoffCap
	}
	d := n.retryTimeout << uint(shift)
	n.schedule(&event{kind: evRetry, p: h, pgen: p.gen, attempt: p.retrySeq}, now+d, now)
}

// onRetryTimeout fires a delivery timeout. Stale timers — the packet was
// reinjected since (sequence mismatch), delivered (ACK in flight), is
// already queued at the source, or has a NACK on the wire that will
// requeue it — are no-ops. A live timer declares the attempt lost:
// either requeue for retransmission with the retry charged to the flow,
// or, with the budget exhausted, abandon the packet.
func (n *Network) onRetryTimeout(h pktH, p *pkt, attempt int32, now sim.Cycle) {
	if attempt != p.retrySeq || p.state == stDelivered || p.state == stAtSource || p.nackPending {
		return
	}
	if p.timeoutRetries >= n.maxRetries {
		if p.state != stDead {
			n.releaseAttempt(h, p)
			p.weightedHops = 0
		}
		p.state = stDead
		n.abandon(h)
		return
	}
	p.timeoutRetries++
	n.coll.TimeoutRetry(p.Flow)
	if p.state != stDead {
		// Still somewhere in the network: treat it as lost (the
		// end-to-end model's duplicate suppression) and reclaim its
		// resources.
		n.releaseAttempt(h, p)
		p.weightedHops = 0
	}
	p.ResetForRetransmit()
	p.state = stAtSource
	s := &n.srcs[p.srcIdx]
	s.retx.push(h)
	n.markOfferable(s)
}

// reroute probes the remaining replica channels for a path that avoids
// every dead port, continuing the source's round-robin where offer left
// it. Returns false when no replica reaches the destination — the caller
// drops the packet as unroutable. Pure in the replica counter and dead
// set, hence deterministic.
func (n *Network) reroute(s *source, p *pkt) bool {
	for k := 1; k < n.graph.NumReplicas(); k++ {
		legs := n.graph.Path(p.Src, p.Dst, s.replica)
		s.replica++
		if !n.legsCrossDead(legs, 0) {
			p.legs = legs
			return true
		}
	}
	return false
}
