package network

import (
	"fmt"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
	"tanoq/internal/traffic"
)

// This file is the engine's workload-attachment surface: a delivery hook
// observing every completed delivery, a generation hook observing every
// packet generation (the injection stream a trace recorder captures), and
// ScheduleInjection, which lets an external driver — the closed-loop
// client controller of internal/workload — generate packets at exact
// future cycles. All three are zero-cost and bit-identical when unused:
// the hooks are a nil check on paths that already run once per packet,
// and scheduled injections ride the existing event ring, so they are
// first-class events the idle fast-forward accounts for exactly.
//
// Unlike the diagnostic preempt/grant hooks, none of these suppress
// packet-slot recycling: they hand out value copies, never handles, so
// the arena keeps recycling and the steady-state allocation guarantee
// holds with them installed (TestStepAllocationFreeWithDeliveryHook).

// Delivery describes one delivered packet, passed by value to the
// delivery hook at the cycle the tail flit crosses the destination
// terminal (after statistics are charged, before the ACK is scheduled).
type Delivery struct {
	// ID is the packet's unique ID; Parent is the opaque parent-
	// transaction metadata the workload layer propagated into it.
	ID     uint64
	Parent uint64
	Flow   noc.FlowID
	Src    noc.NodeID
	Dst    noc.NodeID
	Class  noc.Class
	Kind   noc.PacketKind
	// SrcIdx is the injector's index in the workload spec order.
	SrcIdx int32
	// Created is the cycle the logical packet was generated, Injected
	// the cycle this (final) transmission entered the network, and At
	// the delivery cycle.
	Created  sim.Cycle
	Injected sim.Cycle
	At       sim.Cycle
}

// SetDeliveryHook installs fn to observe every delivery (nil uninstalls).
// The hook may call ScheduleInjection — that is how closed-loop replies
// and window credits are wired — and runs on the engine's single thread
// in deterministic event order. Reset uninstalls it: workload drivers
// re-attach per cell.
func (n *Network) SetDeliveryHook(fn func(Delivery)) { n.deliveryHook = fn }

// SetGenHook installs fn to observe every packet generation as a
// traffic.TraceRecord (nil uninstalls) — the injection stream, exactly
// what a trace recorder persists. Like the delivery hook it is cleared by
// Reset.
func (n *Network) SetGenHook(fn func(traffic.TraceRecord)) { n.genHook = fn }

// injPoolCap pre-sizes the pending-injection pool to the closed-loop
// working set (clients x outstanding window slots); see the working-set
// capacities in arena.go.
const injPoolCap = 256

// pendingInj is one scheduled external injection, parked between
// ScheduleInjection and its evInject firing. Records live in a reusable
// pool indexed by the event's buf field.
type pendingInj struct {
	parent uint64
	dst    noc.NodeID
	flow   noc.FlowID // QoS flow charged (-1 = the source's own)
	si     int32
	class  noc.Class
	kind   noc.PacketKind
}

// ScheduleInjection schedules the generation of one packet: at cycle at
// (clamped to the current cycle if in the past), source srcIdx generates
// a packet of the given class and kind for dst, carrying parent as its
// parent-transaction metadata. The generated packet enters the source's
// queue exactly as a sampler arrival would — it still competes for the
// injection VC, the PVC window and first-leg arbitration.
//
// flow selects the QoS flow the packet is charged to: pass a negative
// flow for the source's own, or an explicit flow within the provisioned
// population for carried charging — a closed-loop reply travels on the
// server node's injector but is charged to the requesting client's flow,
// the accounting request–reply hardware uses (a memory controller's
// replies bill the requestor), and the reason QoS can equalize per-client
// reply bandwidth on the contended path back.
//
// The injection is a first-class event: the idle fast-forward wakes for
// it exactly, and same-cycle injections fire in schedule order. Calling
// from within a delivery hook with at equal to the delivery cycle
// generates the packet in that very cycle, before the cycle's offer pass
// (the closed-loop "reply at the ejection side" path).
func (n *Network) ScheduleInjection(srcIdx int, flow noc.FlowID, dst noc.NodeID, class noc.Class, kind noc.PacketKind, parent uint64, at sim.Cycle) {
	if srcIdx < 0 || srcIdx >= len(n.srcs) {
		panic(fmt.Sprintf("network: ScheduleInjection source index %d outside workload of %d", srcIdx, len(n.srcs)))
	}
	if int(dst) < 0 || int(dst) >= n.cfg.Nodes {
		panic(fmt.Sprintf("network: ScheduleInjection destination %d outside column of %d", dst, n.cfg.Nodes))
	}
	if int(flow) >= n.cfg.Workload.TotalFlows() {
		panic(fmt.Sprintf("network: ScheduleInjection flow %d outside population of %d", flow, n.cfg.Workload.TotalFlows()))
	}
	if flow < 0 {
		flow = -1
	}
	if n.injPool == nil {
		n.injPool = make([]pendingInj, 0, injPoolCap)
		n.injFree = make([]int32, 0, injPoolCap)
	}
	var slot int32
	if k := len(n.injFree); k > 0 {
		slot = n.injFree[k-1]
		n.injFree = n.injFree[:k-1]
	} else {
		n.injPool = append(n.injPool, pendingInj{})
		slot = int32(len(n.injPool) - 1)
	}
	n.injPool[slot] = pendingInj{
		parent: parent, dst: dst, flow: flow, si: int32(srcIdx), class: class, kind: kind,
	}
	now := n.clock.Now()
	if at < now {
		at = now
	}
	n.schedule(&event{kind: evInject, buf: slot}, at, now)
}

// generateScheduled emits one externally scheduled packet (an evInject
// firing): the mirror of generate without any RNG draw — class,
// destination and timing were fixed at scheduling time.
func (n *Network) generateScheduled(rec pendingInj, now sim.Cycle) {
	s := &n.srcs[rec.si]
	h := n.newPacket(s, rec.class, rec.dst, now)
	p := &n.arena[h]
	p.Kind = rec.kind
	p.Parent = rec.parent
	if rec.flow >= 0 {
		p.Flow = rec.flow
	}
	s.queue.push(h)
	s.generated++
	if n.genHook != nil {
		n.genHook(traffic.TraceRecord{At: now, Flow: p.Flow, Src: s.spec.Node, Dst: rec.dst, Class: rec.class})
	}
	if n.wdWindow > 0 {
		n.wdRecords = append(n.wdRecords, traffic.TraceRecord{At: now, Flow: p.Flow, Src: s.spec.Node, Dst: rec.dst, Class: rec.class})
	}
	n.markOfferable(s)
}
