package network

import (
	"fmt"
	"sync/atomic"

	"tanoq/internal/sim"
)

// This file is the engine's cooperative-abort surface. The cycle-based
// watchdog (watchdog.go) catches simulations that stop making *simulated*
// progress, but a cell can also wedge at the host level — a workload hook
// spinning, a pathological configuration whose cycles are legal but
// crawl — without ever tripping a cycle budget. For that, a runner arms a
// wall-clock deadline: it installs an atomic abort flag, flips it from a
// timer goroutine, and the engine panics with *AbortError at the next
// cycle boundary. The check is a nil-pointer test on the hot loop — zero
// atomics, zero allocations and bit-identical results when no flag is
// installed — and hooks can poll Aborted() to bail out of their own
// host-level loops.

// AbortError is the panic value raised when an installed abort flag is
// observed set: the engine stopped at a cycle boundary with its collector
// state consistent but the run incomplete. Runners convert it into a
// per-cell error (a deadline kill, a cancelled sweep) instead of a dead
// process.
type AbortError struct {
	// Cycle is the simulation cycle at which the abort was observed.
	Cycle sim.Cycle
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("network: run aborted at cycle %d (wall-clock deadline or cancellation)", e.Cycle)
}

// SetAbort installs an external abort flag (nil uninstalls). Once the
// flag is set — typically by a time.AfterFunc deadline timer or a sweep
// cancellation path on another goroutine — the next Run/RunUntilDrained
// iteration panics with *AbortError. Reset uninstalls the flag, so a
// stale timer from a previous cell can never abort its slot's next cell.
func (n *Network) SetAbort(flag *atomic.Bool) { n.abortFlag = flag }

// Aborted reports whether an installed abort flag has been set. Workload
// hooks that loop at host level should poll it so a wall-clock deadline
// can interrupt them too.
func (n *Network) Aborted() bool { return n.abortFlag != nil && n.abortFlag.Load() }

// checkAbort panics with *AbortError when the installed flag is set; the
// common no-flag case is a single nil check.
func (n *Network) checkAbort(now sim.Cycle) {
	if n.abortFlag != nil && n.abortFlag.Load() {
		panic(&AbortError{Cycle: now})
	}
}
