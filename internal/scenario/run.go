package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/runner"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
	"tanoq/internal/telemetry"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
	"tanoq/internal/workload"
)

// Point labels one cell of an expanded sweep grid.
type Point struct {
	// Pattern is the synthetic pattern name, or "flows" for explicit
	// injector lists.
	Pattern  string
	Topology topology.Kind
	Mode     qos.Mode
	Seed     uint64
	// Rate is the per-injector offered load of the point; explicit-flows
	// scenarios report their aggregate offered load instead. Closed-loop
	// and replay cells have no offered-load axis and report zero.
	Rate float64
	// Workload is the cell's workload class: "open", "closed", or
	// "replay:<trace>" for trace-replay cells.
	Workload string
	// Outstanding and Think are the closed-loop axes (zero elsewhere).
	Outstanding int
	Think       float64
	// RetryTimeout and MaxRetries are the end-to-end recovery axes from
	// the [faults] table (zero when the scenario arms no recovery).
	RetryTimeout sim.Cycle
	MaxRetries   int
}

// Grid is a fully-expanded scenario: the cross product of the sweep axes
// (pattern × topology × qos × seed × rate), one independent simulation
// cell per point, in that nesting order — the same cell layout the
// built-in experiment drivers use, which is what makes a scenario file
// reproduce them bit-identically.
type Grid struct {
	Scenario *Scenario
	Points   []Point
	cells    []runner.Cell
	meta     []cellMeta
	// refCells are hidden victim-only reference cells (one per topology ×
	// qos × seed when the scenario declares victim roles), run alongside
	// the grid to anchor the victim-slowdown metric. They produce no
	// result rows of their own.
	refCells []runner.Cell
}

// cellMeta carries what Run needs beyond the cell itself: the flows the
// fairness dispersion is computed over (open/flows/replay cells) or the
// closed-loop marker (dispersion over clients instead), plus the victim
// flows and the reference cell their slowdown is measured against.
type cellMeta struct {
	active  []noc.FlowID
	closed  bool
	victims []noc.FlowID
	// ref indexes refCells; only consulted when victims is non-empty.
	ref int
	// trace is the resolved trace-file path of a replay cell (empty
	// elsewhere); the result cache digests the file into the cell's key.
	trace string
}

// cellAux bundles what a telemetry-armed cell's Setup returns: the
// inner attachment (the closed-loop controller, or nil) plus the
// sampler whose timeline the row derivation surfaces.
type cellAux struct {
	inner   any
	sampler *telemetry.Sampler
}

// armTelemetry wraps a visible cell's Setup to attach an in-run sampler
// when the scenario declares a [telemetry] table. Attachment happens
// per execution on the freshly-reset engine (standalone or ensemble
// lane), exactly like the closed-loop controller, so probed cells stay
// bit-identical across workers, lanes and idle-skip. Hidden victim
// reference cells are never armed — their rows are internal baselines.
func armTelemetry(cell *runner.Cell, sc *Scenario) {
	tcfg := sc.Telemetry
	if tcfg == nil {
		return
	}
	opts := telemetry.Options{
		Interval: tcfg.Interval,
		Horizon:  sim.Cycle(sc.Warmup + sc.Measure),
		TopFlows: tcfg.TopFlows,
		Series:   tcfg.Series,
	}
	inner := cell.Setup
	cell.Setup = func(n *network.Network) any {
		var aux any
		if inner != nil {
			aux = inner(n)
		}
		return &cellAux{inner: aux, sampler: telemetry.Attach(n, opts)}
	}
}

// activeFlows lists the flows a workload actually injects on.
func activeFlows(w traffic.Workload) []noc.FlowID {
	var out []noc.FlowID
	for _, s := range w.Specs {
		if s.Rate > 0 || s.Replay != nil {
			out = append(out, s.Flow)
		}
	}
	return out
}

// Grid expands the scenario into its run grid.
func (sc *Scenario) Grid() (*Grid, error) {
	g := &Grid{Scenario: sc}
	add := func(p Point, cell runner.Cell, m cellMeta) {
		cell.Warmup, cell.Measure = sc.Warmup, sc.Measure
		armTelemetry(&cell, sc)
		g.Points = append(g.Points, p)
		g.cells = append(g.cells, cell)
		g.meta = append(g.meta, m)
	}
	if len(sc.Traces) > 0 {
		return g, sc.expandTraces(add)
	}
	if len(sc.Flows) > 0 {
		w := sc.flowWorkload()
		active := activeFlows(w)
		victims := sc.victimFlows()
		var vw traffic.Workload
		if len(victims) > 0 {
			vw = sc.victimWorkload()
		}
		for _, kind := range sc.Topologies {
			for _, mode := range sc.Modes {
				for _, seed := range sc.Seeds {
					ref := -1
					if len(victims) > 0 {
						// One clean victim-only reference per topology ×
						// qos × seed, shared across that point's fault axes.
						ref = len(g.refCells)
						g.refCells = append(g.refCells, runner.Cell{
							Config: network.Config{
								Kind: kind, Nodes: sc.Nodes,
								QoS:      sc.qosConfig(mode, vw.TotalFlows()),
								Workload: vw, Seed: seed,
							},
							Warmup: sc.Warmup, Measure: sc.Measure,
						})
					}
					for _, rto := range sc.RetryTimeouts {
						for _, mr := range sc.MaxRetriesAxis {
							add(Point{Pattern: "flows", Topology: kind, Mode: mode, Seed: seed,
								Rate: w.OfferedLoad(), Workload: "open",
								RetryTimeout: rto, MaxRetries: mr},
								runner.Cell{Config: network.Config{
									Kind: kind, Nodes: sc.Nodes,
									QoS:      sc.qosConfig(mode, w.TotalFlows()),
									Workload: w, Seed: seed,
									Faults:         sc.faultConfig(rto, mr),
									WatchdogCycles: sc.WatchdogCycles,
								}},
								cellMeta{active: active, victims: victims, ref: ref})
						}
					}
				}
			}
		}
		return g, nil
	}
	for _, pat := range sc.Patterns {
		for _, wmode := range sc.WorkloadModes {
			if wmode == "closed" {
				if err := sc.expandClosed(pat, add); err != nil {
					return nil, err
				}
				continue
			}
			// Workloads depend only on (pattern, rate); Dest pickers are
			// stateless and safe to share across the cells of the
			// topology × mode × seed fan-out.
			ws := make([]traffic.Workload, len(sc.Rates))
			actives := make([][]noc.FlowID, len(sc.Rates))
			for ri, rate := range sc.Rates {
				w, err := sc.workload(pat, rate)
				if err != nil {
					return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
				}
				ws[ri] = w
				actives[ri] = activeFlows(w)
			}
			for _, kind := range sc.Topologies {
				for _, mode := range sc.Modes {
					for _, seed := range sc.Seeds {
						for ri, rate := range sc.Rates {
							for _, rto := range sc.RetryTimeouts {
								for _, mr := range sc.MaxRetriesAxis {
									add(Point{Pattern: pat, Topology: kind, Mode: mode, Seed: seed,
										Rate: rate, Workload: "open",
										RetryTimeout: rto, MaxRetries: mr},
										runner.Cell{Config: network.Config{
											Kind: kind, Nodes: sc.Nodes,
											QoS:      sc.qosConfig(mode, ws[ri].TotalFlows()),
											Workload: ws[ri], Seed: seed,
											Faults:         sc.faultConfig(rto, mr),
											WatchdogCycles: sc.WatchdogCycles,
										}},
										cellMeta{active: actives[ri]})
								}
							}
						}
					}
				}
			}
		}
	}
	return g, nil
}

// expandClosed appends the closed-loop cells of one pattern: topology ×
// qos × seed × outstanding × think_time, each with a Setup that attaches
// a fresh client controller to the cell's reset network.
func (sc *Scenario) expandClosed(patName string, add func(Point, runner.Cell, cellMeta)) error {
	pattern, err := sc.pattern(patName)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	w := workload.ClientWorkload("closed-"+patName, sc.Nodes)
	for _, kind := range sc.Topologies {
		for _, mode := range sc.Modes {
			for _, seed := range sc.Seeds {
				for _, out := range sc.Outstanding {
					for _, think := range sc.ThinkTimes {
						ccfg := workload.ClientConfig{
							Outstanding: out, ThinkMean: think,
							Pattern: pattern, Seed: seed,
							RequestFlits: sc.RequestFlits, ReplyFlits: sc.ReplyFlits,
						}
						add(Point{Pattern: patName, Topology: kind, Mode: mode, Seed: seed,
							Workload: "closed", Outstanding: out, Think: think},
							runner.Cell{
								Config: network.Config{
									Kind: kind, Nodes: sc.Nodes,
									QoS:      sc.qosConfig(mode, w.TotalFlows()),
									Workload: w, Seed: seed,
								},
								Setup: func(n *network.Network) any {
									ct, err := workload.NewController(n, ccfg)
									if err != nil {
										panic(err)
									}
									return ct
								},
							},
							cellMeta{closed: true})
					}
				}
			}
		}
	}
	return nil
}

// expandTraces appends the replay cells: trace × topology × qos × seed,
// each replaying the decoded injection stream verbatim. Relative trace
// paths resolve against the scenario file's directory.
func (sc *Scenario) expandTraces(add func(Point, runner.Cell, cellMeta)) error {
	for _, trPath := range sc.Traces {
		path := trPath
		if !filepath.IsAbs(path) && sc.baseDir != "" {
			path = filepath.Join(sc.baseDir, path)
		}
		tr, err := workload.ReadTraceFile(path)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		if tr.Header.Nodes != sc.Nodes {
			return fmt.Errorf("scenario %s: trace %s recorded a %d-node column, scenario has %d",
				sc.Name, trPath, tr.Header.Nodes, sc.Nodes)
		}
		label := "replay:" + strings.TrimSuffix(filepath.Base(trPath), filepath.Ext(trPath))
		w, err := tr.Workload(label)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		active := activeFlows(w)
		for _, kind := range sc.Topologies {
			for _, mode := range sc.Modes {
				for _, seed := range sc.Seeds {
					add(Point{Pattern: "trace", Topology: kind, Mode: mode, Seed: seed, Workload: label},
						runner.Cell{Config: network.Config{
							Kind: kind, Nodes: sc.Nodes,
							QoS:      sc.qosConfig(mode, w.TotalFlows()),
							Workload: w, Seed: seed,
						}},
						cellMeta{active: active, trace: path})
				}
			}
		}
	}
	return nil
}

// faultConfig assembles one cell's fault configuration: the scenario's
// shared windows plus the cell's recovery axes.
func (sc *Scenario) faultConfig(rto sim.Cycle, mr int) network.FaultConfig {
	return network.FaultConfig{Windows: sc.FaultWindows, RetryTimeout: rto, MaxRetries: mr}
}

// Size returns the number of grid cells.
func (g *Grid) Size() int { return len(g.cells) }

// Cell returns a copy of grid cell i — the runner cell the sweep would
// execute — for drivers that run cells individually (noctool trace
// record).
func (g *Grid) Cell(i int) runner.Cell { return g.cells[i] }

// RunOpts carries the runtime knobs that never change results: worker
// count (bit-identical for every value), the idle-skip proof toggle, and
// the ensemble lane count (cells differing only by seed batch into one
// lockstep engine pass — bit-identical per lane, only faster).
type RunOpts struct {
	Workers         int
	DisableIdleSkip bool
	// EnsembleLanes is the maximum number of same-group cells batched
	// into one network.Ensemble; 0 or 1 runs every cell standalone.
	EnsembleLanes int
	// OnCell, when non-nil, observes every finished visible cell as it
	// lands — the live accounting feed for progress lines and the sweep
	// metrics endpoint. It fires on worker goroutines (make it
	// concurrency-safe) and never changes results.
	OnCell func(CellEvent)
}

// CellEvent is one live accounting record: a visible cell finished —
// executed, served from cache, failed, or skipped by cancellation.
type CellEvent struct {
	// Cell indexes the grid point.
	Cell int
	// Exactly one of Cached/Failed/Skipped is set for non-executed
	// outcomes; all false means the cell executed successfully.
	Cached  bool
	Failed  bool
	Skipped bool
	// Attempts/Wall/Cycles describe the run that produced the row
	// (zero for skipped cells); Worker is the runner slot that executed
	// it (-1 for cache hits).
	Attempts int
	Wall     time.Duration
	Cycles   int64
	Worker   int
}

// groupIDs assigns a runner group ID to every visible cell and every
// hidden victim-reference cell: cells sharing an ID describe the same
// simulation except for Config.Seed, the precondition for running them
// as ensemble lanes. The visible key is the cell's Point with the seed
// zeroed plus its resolved trace path (two traces can share a display
// label, never a path); references — identical victim workloads fanned
// over topology × mode × seed — key on topology and mode. One counter
// spans both, so IDs never collide across the namespaces.
func (g *Grid) groupIDs() (vis, refs []int) {
	type visKey struct {
		p     Point
		trace string
	}
	type refKey struct {
		kind topology.Kind
		mode qos.Mode
	}
	vis = make([]int, len(g.cells))
	refs = make([]int, len(g.refCells))
	next := 1
	vids := map[visKey]int{}
	for i := range g.cells {
		k := visKey{p: g.Points[i], trace: g.meta[i].trace}
		k.p.Seed = 0
		id, ok := vids[k]
		if !ok {
			id = next
			next++
			vids[k] = id
		}
		vis[i] = id
	}
	rids := map[refKey]int{}
	for r := range g.refCells {
		k := refKey{kind: g.refCells[r].Config.Kind, mode: g.refCells[r].Config.QoS.Mode}
		id, ok := rids[k]
		if !ok {
			id = next
			next++
			rids[k] = id
		}
		refs[r] = id
	}
	return vis, refs
}

// Result is the measured outcome of one grid point.
type Result struct {
	Point
	// MeanLatency and P99Latency are delivered-packet latencies in
	// cycles, measured from generation (saturation shows as source
	// queueing, the hockey stick).
	MeanLatency float64
	P99Latency  float64
	// Accepted is delivered flits per cycle network-wide.
	Accepted float64
	// PreemptionPct is the preemption event rate over delivered packets.
	PreemptionPct float64
	// Delivered counts delivered packets in the measurement window.
	Delivered int64
	// End is the cycle at the end of the measurement window.
	End sim.Cycle
	// Throughput fairness dispersion, Table-2 style: min/max/stddev of
	// per-unit throughput as percentages of its mean, where the unit is
	// a flow's delivered flits (open/flows/replay cells) or a client's
	// completed requests (closed cells).
	TputMinPct    float64
	TputMaxPct    float64
	TputStdDevPct float64
	// Closed-loop metrics (zero elsewhere): completed round trips and
	// their latency distribution over the measurement window.
	Completed int64
	MeanRTT   float64
	P99RTT    float64
	// Robustness columns: the delivered fraction (1.0 on a healthy run),
	// timeout-driven end-to-end retransmissions, packets abandoned for
	// good, and the mean end-to-end latency of packets that needed at
	// least one retransmission (0 when none did).
	DeliveredFraction float64
	Retries           int64
	Drops             int64
	MeanRecovery      float64
	// VictimSlowdown is the victim flows' mean-latency inflation versus
	// the hidden victim-only reference cell (0 when the scenario declares
	// no victim roles, or when either side delivered nothing).
	VictimSlowdown float64
	// Wall is the wall-clock time the cell's successful run spent
	// simulating; a cell executed as an ensemble lane reports its
	// batch's time divided by the lane count (the amortized per-seed
	// cost). Cache-served rows report the wall-clock of the run that
	// produced them. CyclesPerSec is simulated cycles per wall second
	// (End / Wall) — the throughput the wall-clock buys.
	Wall         time.Duration
	CyclesPerSec float64
	// Error reports a cell that failed on every attempt (tripped
	// watchdog, failed invariant audit, invalid configuration, missed
	// wall-clock deadline) or was skipped by a cancelled sweep; the
	// metric columns of a failed row are zero.
	Error string
	// Attempts is how many times the cell executed (1 normally, more
	// after retries, 0 when cancellation skipped it). Cache-served rows
	// report the attempts of the run that produced them.
	Attempts int
	// Timeline is the cell's in-run telemetry record — non-nil only when
	// the scenario declares a [telemetry] table and the cell actually
	// executed this process (cache-served rows carry none; the knobs are
	// display-only and excluded from cache keys). It never enters the
	// CSV/JSON row columns — the timeline emitters render it.
	Timeline *telemetry.Timeline
}

// Run executes every cell across the parallel runner and collects the
// results in grid order — deterministic and bit-identical for any worker
// count, with or without idle skipping. Hidden victim-only reference
// cells ride the same pool after the visible grid. A cell that fails on
// every runner attempt (tripped watchdog, failed audit) yields a row with
// its Error set and the rest of the grid intact.
func (g *Grid) Run(opts RunOpts) []Result {
	cells := make([]runner.Cell, 0, len(g.cells)+len(g.refCells))
	cells = append(cells, g.cells...)
	cells = append(cells, g.refCells...)
	for i := range cells {
		cells[i].Config.DisableIdleSkip = opts.DisableIdleSkip
	}
	if opts.EnsembleLanes > 1 {
		vis, refs := g.groupIDs()
		for i := range vis {
			cells[i].Group = vis[i]
		}
		for r := range refs {
			cells[len(g.cells)+r].Group = refs[r]
		}
	}
	ropts := runner.Options{Workers: opts.Workers, Retries: 1, Lanes: opts.EnsembleLanes}
	if opts.OnCell != nil {
		onCell := opts.OnCell
		nvis := len(g.cells)
		ropts.OnResult = func(i int, r *runner.Result) {
			// Hidden victim-reference cells stay out of the accounting.
			if i < nvis {
				onCell(cellEventOf(i, r))
			}
		}
	}
	res := runner.RunCellsCtx(context.Background(), cells, ropts)
	refRes := res[len(g.cells):]
	out := make([]Result, len(g.cells))
	for i := range res[:len(g.cells)] {
		base := 0.0
		if m := g.meta[i]; len(m.victims) > 0 && !refRes[m.ref].Failed() {
			base = victimMeanLatency(refRes[m.ref].Stats, m.victims)
		}
		out[i] = g.row(i, &res[i], base)
	}
	return out
}

// cellEventOf derives the live accounting record of one finished cell
// from its runner result.
func cellEventOf(i int, r *runner.Result) CellEvent {
	ev := CellEvent{Cell: i, Attempts: r.Attempts, Wall: r.Elapsed, Cycles: int64(r.End), Worker: r.Worker}
	if r.Err != nil {
		if errors.Is(r.Err, runner.ErrSkipped) {
			ev.Skipped = true
		} else {
			ev.Failed = true
		}
	}
	return ev
}

// row computes the result row of grid point i from its runner result and
// the victim-reference latency baseline (0 when the point has no victims
// or the reference failed). It is the single row-derivation path shared
// by Run and the durable sweep, so cached and freshly-computed rows can
// never drift.
func (g *Grid) row(i int, r *runner.Result, base float64) Result {
	out := Result{Point: g.Points[i], Attempts: r.Attempts}
	if r.Failed() {
		out.Error = r.Err.Error()
		return out
	}
	aux := r.Aux
	if ca, ok := aux.(*cellAux); ok {
		out.Timeline = ca.sampler.Timeline()
		aux = ca.inner
	}
	st := r.Stats
	out.MeanLatency = st.MeanLatency()
	out.P99Latency = float64(st.Latencies.Percentile(99))
	out.Accepted = st.AcceptedFlitRate(r.End)
	out.PreemptionPct = st.PreemptionPacketRate()
	out.Delivered = st.TotalDelivered
	out.End = r.End
	out.DeliveredFraction = st.DeliveredFraction()
	out.Retries = st.TotalRetries
	out.Drops = st.TotalDropped
	out.MeanRecovery = st.MeanRecoveryLatency()
	out.Wall = r.Elapsed
	if r.Elapsed > 0 {
		out.CyclesPerSec = float64(out.End) / r.Elapsed.Seconds()
	}
	m := g.meta[i]
	var summary stats.Summary
	if m.closed {
		ct := aux.(*workload.Controller)
		summary = stats.Summarize(ct.RT.PerClient())
		out.Completed = ct.RT.TotalCompleted()
		out.MeanRTT = ct.RT.MeanRTT()
		out.P99RTT = float64(ct.RT.Latencies.Percentile(99))
	} else {
		flits := st.FlitsByFlow()
		vals := make([]float64, 0, len(m.active))
		for _, f := range m.active {
			vals = append(vals, float64(flits[f]))
		}
		summary = stats.Summarize(vals)
	}
	out.TputMinPct = summary.MinPctOfMean()
	out.TputMaxPct = summary.MaxPctOfMean()
	out.TputStdDevPct = summary.StdDevPctOfMean()
	if len(m.victims) > 0 {
		if mean := victimMeanLatency(st, m.victims); base > 0 && mean > 0 {
			out.VictimSlowdown = mean / base
		}
	}
	return out
}

// victimMeanLatency averages delivered-packet latency over the victim
// flows of one cell.
func victimMeanLatency(st *stats.Collector, victims []noc.FlowID) float64 {
	var pkts, lat int64
	for _, f := range victims {
		pkts += st.DeliveredPackets[f]
		lat += st.LatencySumByFlow[f]
	}
	if pkts == 0 {
		return 0
	}
	return float64(lat) / float64(pkts)
}

// CSV renders results as one row per grid point. Alongside the latency
// and throughput aggregates, every row carries the Table-2-style fairness
// dispersion of its cell (min/max/stddev of per-flow — or per-client —
// throughput as % of mean), and closed-loop rows add round-trip columns.
func CSV(name string, results []Result) string {
	var b strings.Builder
	b.WriteString("scenario,workload,pattern,topology,qos,seed,rate,outstanding,think_time,retry_timeout,max_retries," +
		"mean_latency_cycles,p99_latency_cycles,accepted_flits_per_cycle,preemption_pct,delivered_packets," +
		"tput_min_pct_of_mean,tput_max_pct_of_mean,tput_stddev_pct_of_mean," +
		"completed_requests,mean_rtt_cycles,p99_rtt_cycles," +
		"delivered_fraction,retries,drops,mean_recovery_cycles,victim_slowdown,wall_ms,cycles_per_sec,attempts,error\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%d,%.4f,%d,%.1f,%d,%d,%.3f,%.0f,%.4f,%.4f,%d,%.2f,%.2f,%.2f,%d,%.3f,%.0f,%.6f,%d,%d,%.1f,%.3f,%.1f,%.0f,%d,%s\n",
			csvEscape(name), csvEscape(r.Workload), csvEscape(r.Pattern), csvEscape(r.Topology.String()), csvEscape(r.Mode.String()),
			r.Seed, r.Rate, r.Outstanding, r.Think, r.RetryTimeout, r.MaxRetries,
			r.MeanLatency, r.P99Latency, r.Accepted, r.PreemptionPct, r.Delivered,
			r.TputMinPct, r.TputMaxPct, r.TputStdDevPct,
			r.Completed, r.MeanRTT, r.P99RTT,
			r.DeliveredFraction, r.Retries, r.Drops, r.MeanRecovery, r.VictimSlowdown,
			float64(r.Wall)/float64(time.Millisecond), r.CyclesPerSec, r.Attempts, csvEscape(r.Error))
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// resultJSON is the machine-readable per-point record of JSONReport.
type resultJSON struct {
	Workload          string  `json:"workload"`
	Pattern           string  `json:"pattern"`
	Topology          string  `json:"topology"`
	QoS               string  `json:"qos"`
	Seed              uint64  `json:"seed"`
	Rate              float64 `json:"rate"`
	Outstanding       int     `json:"outstanding,omitempty"`
	Think             float64 `json:"think_time,omitempty"`
	RetryTimeout      int64   `json:"retry_timeout,omitempty"`
	MaxRetries        int     `json:"max_retries,omitempty"`
	MeanLatency       float64 `json:"mean_latency_cycles"`
	P99Latency        float64 `json:"p99_latency_cycles"`
	Accepted          float64 `json:"accepted_flits_per_cycle"`
	PreemptionPct     float64 `json:"preemption_pct"`
	Delivered         int64   `json:"delivered_packets"`
	TputMinPct        float64 `json:"tput_min_pct_of_mean"`
	TputMaxPct        float64 `json:"tput_max_pct_of_mean"`
	TputStdDevPct     float64 `json:"tput_stddev_pct_of_mean"`
	Completed         int64   `json:"completed_requests,omitempty"`
	MeanRTT           float64 `json:"mean_rtt_cycles,omitempty"`
	P99RTT            float64 `json:"p99_rtt_cycles,omitempty"`
	DeliveredFraction float64 `json:"delivered_fraction"`
	Retries           int64   `json:"retries,omitempty"`
	Drops             int64   `json:"drops,omitempty"`
	MeanRecovery      float64 `json:"mean_recovery_cycles,omitempty"`
	VictimSlowdown    float64 `json:"victim_slowdown,omitempty"`
	WallMS            float64 `json:"wall_ms,omitempty"`
	CyclesPerSec      float64 `json:"cycles_per_sec,omitempty"`
	Attempts          int     `json:"attempts"`
	Error             string  `json:"error,omitempty"`
}

// JSONReport marshals a sweep's results.
func JSONReport(name string, results []Result) ([]byte, error) {
	rows := make([]resultJSON, len(results))
	for i, r := range results {
		rows[i] = resultJSON{
			Workload: r.Workload, Pattern: r.Pattern, Topology: r.Topology.String(), QoS: r.Mode.String(),
			Seed: r.Seed, Rate: r.Rate, Outstanding: r.Outstanding, Think: r.Think,
			RetryTimeout: int64(r.RetryTimeout), MaxRetries: r.MaxRetries,
			MeanLatency: r.MeanLatency, P99Latency: r.P99Latency,
			Accepted: r.Accepted, PreemptionPct: r.PreemptionPct, Delivered: r.Delivered,
			TputMinPct: r.TputMinPct, TputMaxPct: r.TputMaxPct, TputStdDevPct: r.TputStdDevPct,
			Completed: r.Completed, MeanRTT: r.MeanRTT, P99RTT: r.P99RTT,
			DeliveredFraction: r.DeliveredFraction, Retries: r.Retries, Drops: r.Drops,
			MeanRecovery: r.MeanRecovery, VictimSlowdown: r.VictimSlowdown,
			WallMS:       float64(r.Wall) / float64(time.Millisecond),
			CyclesPerSec: r.CyclesPerSec,
			Attempts:     r.Attempts, Error: r.Error,
		}
	}
	blob, err := json.MarshalIndent(struct {
		Scenario string       `json:"scenario"`
		Results  []resultJSON `json:"results"`
	}{Scenario: name, Results: rows}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// Render prints results as an aligned table, one row per point. Open and
// replay rows show offered rate and packet latency; closed rows show the
// window/think axes and round-trip metrics; every row shows its fairness
// dispersion (stddev of per-flow or per-client throughput, % of mean).
func Render(name string, results []Result) string {
	var b strings.Builder
	title := fmt.Sprintf("Sweep: %s (%d cells)", name, len(results))
	b.WriteString(title + "\n" + strings.Repeat("-", len(title)) + "\n")
	fmt.Fprintf(&b, "%-16s %-14s %-9s %-14s %10s %11s %10s %9s %9s %9s %8s %8s %7s %9s %8s\n",
		"workload", "pattern", "topology", "qos", "seed", "rate/window", "latency", "p99", "accepted", "preempt", "fair-sd", "dlv", "vslow", "wall-ms", "Mcyc/s")
	for _, r := range results {
		axis := fmt.Sprintf("%6.2f%%", r.Rate*100)
		lat, p99 := r.MeanLatency, r.P99Latency
		if r.Workload == "closed" {
			axis = fmt.Sprintf("w%d/t%.0f", r.Outstanding, r.Think)
			lat, p99 = r.MeanRTT, r.P99RTT
		}
		if r.Error != "" {
			fmt.Fprintf(&b, "%-16s %-14s %-9s %-14s %10d %11s  FAILED (%d attempts): %s\n",
				r.Workload, r.Pattern, r.Topology, r.Mode, r.Seed, axis, r.Attempts, r.Error)
			continue
		}
		vslow := "-"
		if r.VictimSlowdown > 0 {
			vslow = fmt.Sprintf("%.2fx", r.VictimSlowdown)
		}
		fmt.Fprintf(&b, "%-16s %-14s %-9s %-14s %10d %11s %10.1f %9.0f %9.3f %8.2f%% %7.2f%% %7.2f%% %7s %9.1f %8.2f\n",
			r.Workload, r.Pattern, r.Topology, r.Mode, r.Seed, axis,
			lat, p99, r.Accepted, r.PreemptionPct, r.TputStdDevPct,
			100*r.DeliveredFraction, vslow,
			float64(r.Wall)/float64(time.Millisecond), r.CyclesPerSec/1e6)
	}
	return b.String()
}
