package scenario

import (
	"encoding/json"
	"fmt"
	"strings"

	"tanoq/internal/network"
	"tanoq/internal/qos"
	"tanoq/internal/runner"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Point labels one cell of an expanded sweep grid.
type Point struct {
	// Pattern is the synthetic pattern name, or "flows" for explicit
	// injector lists.
	Pattern  string
	Topology topology.Kind
	Mode     qos.Mode
	Seed     uint64
	// Rate is the per-injector offered load of the point; explicit-flows
	// scenarios report their aggregate offered load instead.
	Rate float64
}

// Grid is a fully-expanded scenario: the cross product of the sweep axes
// (pattern × topology × qos × seed × rate), one independent simulation
// cell per point, in that nesting order — the same cell layout the
// built-in experiment drivers use, which is what makes a scenario file
// reproduce them bit-identically.
type Grid struct {
	Scenario *Scenario
	Points   []Point
	cells    []runner.Cell
}

// Grid expands the scenario into its run grid.
func (sc *Scenario) Grid() (*Grid, error) {
	g := &Grid{Scenario: sc}
	add := func(p Point, cfg network.Config) {
		g.Points = append(g.Points, p)
		g.cells = append(g.cells, runner.Cell{Config: cfg, Warmup: sc.Warmup, Measure: sc.Measure})
	}
	if len(sc.Flows) > 0 {
		w := sc.flowWorkload()
		for _, kind := range sc.Topologies {
			for _, mode := range sc.Modes {
				for _, seed := range sc.Seeds {
					add(Point{Pattern: "flows", Topology: kind, Mode: mode, Seed: seed, Rate: w.OfferedLoad()},
						network.Config{
							Kind: kind, Nodes: sc.Nodes,
							QoS:      sc.qosConfig(mode, w.TotalFlows()),
							Workload: w, Seed: seed,
						})
				}
			}
		}
		return g, nil
	}
	for _, pat := range sc.Patterns {
		// Workloads depend only on (pattern, rate); Dest pickers are
		// stateless and safe to share across the cells of the
		// topology × mode × seed fan-out.
		ws := make([]traffic.Workload, len(sc.Rates))
		for ri, rate := range sc.Rates {
			w, err := sc.workload(pat, rate)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
			ws[ri] = w
		}
		for _, kind := range sc.Topologies {
			for _, mode := range sc.Modes {
				for _, seed := range sc.Seeds {
					for ri, rate := range sc.Rates {
						add(Point{Pattern: pat, Topology: kind, Mode: mode, Seed: seed, Rate: rate},
							network.Config{
								Kind: kind, Nodes: sc.Nodes,
								QoS:      sc.qosConfig(mode, ws[ri].TotalFlows()),
								Workload: ws[ri], Seed: seed,
							})
					}
				}
			}
		}
	}
	return g, nil
}

// Size returns the number of grid cells.
func (g *Grid) Size() int { return len(g.cells) }

// RunOpts carries the runtime knobs that never change results: worker
// count (bit-identical for every value) and the idle-skip proof toggle.
type RunOpts struct {
	Workers         int
	DisableIdleSkip bool
}

// Result is the measured outcome of one grid point.
type Result struct {
	Point
	// MeanLatency and P99Latency are delivered-packet latencies in
	// cycles, measured from generation (saturation shows as source
	// queueing, the hockey stick).
	MeanLatency float64
	P99Latency  float64
	// Accepted is delivered flits per cycle network-wide.
	Accepted float64
	// PreemptionPct is the preemption event rate over delivered packets.
	PreemptionPct float64
	// Delivered counts delivered packets in the measurement window.
	Delivered int64
	// End is the cycle at the end of the measurement window.
	End sim.Cycle
}

// Run executes every cell across the parallel runner and collects the
// results in grid order — deterministic and bit-identical for any worker
// count, with or without idle skipping.
func (g *Grid) Run(opts RunOpts) []Result {
	cells := make([]runner.Cell, len(g.cells))
	copy(cells, g.cells)
	for i := range cells {
		cells[i].Config.DisableIdleSkip = opts.DisableIdleSkip
	}
	res := runner.RunCells(cells, opts.Workers)
	out := make([]Result, len(res))
	for i, r := range res {
		st := r.Stats
		out[i] = Result{
			Point:         g.Points[i],
			MeanLatency:   st.MeanLatency(),
			P99Latency:    float64(st.Latencies.Percentile(99)),
			Accepted:      st.AcceptedFlitRate(r.End),
			PreemptionPct: st.PreemptionPacketRate(),
			Delivered:     st.TotalDelivered,
			End:           r.End,
		}
	}
	return out
}

// CSV renders results as one row per grid point.
func CSV(name string, results []Result) string {
	var b strings.Builder
	b.WriteString("scenario,pattern,topology,qos,seed,rate,mean_latency_cycles,p99_latency_cycles,accepted_flits_per_cycle,preemption_pct,delivered_packets\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%d,%.4f,%.3f,%.0f,%.4f,%.4f,%d\n",
			csvEscape(name), csvEscape(r.Pattern), csvEscape(r.Topology.String()), csvEscape(r.Mode.String()),
			r.Seed, r.Rate, r.MeanLatency, r.P99Latency, r.Accepted, r.PreemptionPct, r.Delivered)
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// resultJSON is the machine-readable per-point record of JSONReport.
type resultJSON struct {
	Pattern       string  `json:"pattern"`
	Topology      string  `json:"topology"`
	QoS           string  `json:"qos"`
	Seed          uint64  `json:"seed"`
	Rate          float64 `json:"rate"`
	MeanLatency   float64 `json:"mean_latency_cycles"`
	P99Latency    float64 `json:"p99_latency_cycles"`
	Accepted      float64 `json:"accepted_flits_per_cycle"`
	PreemptionPct float64 `json:"preemption_pct"`
	Delivered     int64   `json:"delivered_packets"`
}

// JSONReport marshals a sweep's results.
func JSONReport(name string, results []Result) ([]byte, error) {
	rows := make([]resultJSON, len(results))
	for i, r := range results {
		rows[i] = resultJSON{
			Pattern: r.Pattern, Topology: r.Topology.String(), QoS: r.Mode.String(),
			Seed: r.Seed, Rate: r.Rate,
			MeanLatency: r.MeanLatency, P99Latency: r.P99Latency,
			Accepted: r.Accepted, PreemptionPct: r.PreemptionPct, Delivered: r.Delivered,
		}
	}
	blob, err := json.MarshalIndent(struct {
		Scenario string       `json:"scenario"`
		Results  []resultJSON `json:"results"`
	}{Scenario: name, Results: rows}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// Render prints results as an aligned table, one row per point.
func Render(name string, results []Result) string {
	var b strings.Builder
	title := fmt.Sprintf("Sweep: %s (%d cells)", name, len(results))
	b.WriteString(title + "\n" + strings.Repeat("-", len(title)) + "\n")
	fmt.Fprintf(&b, "%-14s %-9s %-14s %10s %7s %10s %9s %9s %9s\n",
		"pattern", "topology", "qos", "seed", "rate", "latency", "p99", "accepted", "preempt")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s %-9s %-14s %10d %6.2f%% %10.1f %9.0f %9.3f %8.2f%%\n",
			r.Pattern, r.Topology, r.Mode, r.Seed, r.Rate*100,
			r.MeanLatency, r.P99Latency, r.Accepted, r.PreemptionPct)
	}
	return b.String()
}
