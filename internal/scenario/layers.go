package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Origin records where one resolved key's value came from: the layer
// that set it (the Layer* constants; profiles are "profile:<name>") and,
// when the layer has a source, the file (or environment variable, or CLI
// flag expression) and 1-based line.
type Origin struct {
	Layer string
	File  string
	Line  int
}

func (o Origin) String() string {
	s := o.Layer
	if s == "" {
		s = "?"
	}
	if o.File != "" {
		s += " " + o.File
		if o.Line > 0 {
			s += ":" + strconv.Itoa(o.Line)
		}
	} else if o.Line > 0 {
		s += " line " + strconv.Itoa(o.Line)
	}
	return s
}

// Layer is one step of the resolver pipeline. Layers are applied in the
// order given to Resolve; a later layer's keys override an earlier
// layer's (deep-merge for tables, replace-wholesale for scalars and
// lists). Construct layers with FileLayer, BlobLayer, ProfileLayer,
// EnvLayer, SetLayer and OverrideLayer.
type Layer interface {
	apply(r *Resolution) error
}

// Resolution is the record of one Resolve call: the merged raw tree,
// per-key provenance, the profiles collected from the include chain, and
// the files loaded. Its Explain dump is what `noctool sweep -explain`
// prints.
type Resolution struct {
	merged   map[string]any
	prov     map[string]Origin
	profiles map[string]map[string]any
	profProv map[string]Origin // "<profile>.<path>" -> origin
	profile  string
	files    []string // load order: deepest include first
	stack    []string // absolute paths of the active include chain
	rootFile string
	baseDir  string
	defName  string
	sc       *Scenario // set once resolution succeeds
}

// Profile returns the selected profile name ("" when none).
func (r *Resolution) Profile() string { return r.profile }

// Files lists the scenario files loaded, include chain first.
func (r *Resolution) Files() []string { return append([]string(nil), r.files...) }

// Origin returns the provenance of a resolved dotted key path.
func (r *Resolution) Origin(path string) (Origin, bool) {
	o, ok := r.prov[path]
	return o, ok
}

// Resolve runs the layered resolver pipeline: each layer's raw tree is
// deep-merged over the previous layers' (tables merge key by key;
// scalars and lists replace the old value wholesale), singular/plural
// axis spellings override each other across layers, and every key
// records which layer and file:line set it. The merged tree is then
// decoded, defaulted and validated exactly like a single-file scenario.
// Load and Parse are facades over this.
func Resolve(layers ...Layer) (*Scenario, *Resolution, error) {
	r := &Resolution{
		merged:   map[string]any{},
		prov:     map[string]Origin{},
		profiles: map[string]map[string]any{},
		profProv: map[string]Origin{},
	}
	for _, l := range layers {
		if err := l.apply(r); err != nil {
			return nil, nil, err
		}
	}
	sc, err := fromRaw(r.merged, r)
	if err != nil {
		return nil, nil, err
	}
	if sc.Name == "" {
		sc.Name = r.defName
	}
	sc.baseDir = r.baseDir
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	r.sc = sc
	return sc, r, nil
}

// FileLayer loads a scenario file (.json or .toml), first merging its
// include chain (`include = ["base.toml"]`, paths relative to the
// including file, cycles rejected), then the file's own keys over it.
// [profiles.<name>] tables are collected for ProfileLayer rather than
// merged. The first FileLayer anchors relative trace paths and the
// default scenario name.
func FileLayer(path string) Layer { return fileLayer{path} }

type fileLayer struct{ path string }

func (l fileLayer) apply(r *Resolution) error { return r.loadFile(l.path, LayerFile) }

// BlobLayer is FileLayer for in-memory bytes (Parse's path): no include
// chain (in-memory scenarios have no directory to resolve against, so
// `include` is rejected), profiles still collected. name labels errors.
func BlobLayer(name string, blob []byte, ext string) Layer { return blobLayer{name, blob, ext} }

type blobLayer struct {
	name string
	blob []byte
	ext  string
}

func (l blobLayer) apply(r *Resolution) error {
	raw, lines, err := decodeBlob(l.blob, l.ext)
	if err != nil {
		var pe *ParseError
		if errors.As(err, &pe) && pe.File == "" {
			pe.File, pe.Layer = l.name, LayerFile
		}
		return err
	}
	if _, ok := raw["include"]; ok {
		return &ParseError{File: l.name, Line: lines["include"], Layer: LayerFile, Key: "include",
			Err: errors.New("include needs a file-backed scenario (in-memory parse has no base directory)")}
	}
	if err := r.extractProfiles(raw, lines, l.name, LayerFile); err != nil {
		return err
	}
	r.mergeFileTree(raw, lines, l.name, LayerFile)
	return nil
}

func (r *Resolution) loadFile(path, layerName string) error {
	abs, err := filepath.Abs(path)
	if err != nil {
		abs = path
	}
	for _, p := range r.stack {
		if p == abs {
			return &ParseError{File: path, Layer: layerName,
				Err: fmt.Errorf("%w: %s already on the include chain", ErrIncludeCycle, path)}
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return &ParseError{File: path, Layer: layerName, Err: err}
	}
	raw, lines, err := decodeBlob(blob, strings.ToLower(filepath.Ext(path)))
	if err != nil {
		var pe *ParseError
		if errors.As(err, &pe) && pe.File == "" {
			pe.File, pe.Layer = path, layerName
		}
		return err
	}
	// Includes merge first: they are the layers below this file's own
	// keys, recursively (an include's includes sit below it in turn).
	if inc, ok := raw["include"]; ok {
		delete(raw, "include")
		paths, ok := stringListOf(inc)
		if !ok {
			return &ParseError{File: path, Line: lines["include"], Layer: layerName, Key: "include",
				Err: errors.New("include must be a list of file paths")}
		}
		r.stack = append(r.stack, abs)
		for _, p := range paths {
			child := p
			if !filepath.IsAbs(child) {
				child = filepath.Join(filepath.Dir(path), p)
			}
			if err := r.loadFile(child, LayerInclude); err != nil {
				r.stack = r.stack[:len(r.stack)-1]
				return err
			}
		}
		r.stack = r.stack[:len(r.stack)-1]
	}
	if err := r.extractProfiles(raw, lines, path, layerName); err != nil {
		return err
	}
	r.mergeFileTree(raw, lines, path, layerName)
	r.files = append(r.files, path)
	if layerName == LayerFile {
		r.rootFile = path
		r.baseDir = filepath.Dir(path)
		r.defName = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return nil
}

func (r *Resolution) mergeFileTree(raw map[string]any, lines map[string]int, file, layerName string) {
	r.mergeTree(r.merged, raw, "", r.prov, func(p string) Origin {
		return Origin{Layer: layerName, File: file, Line: lines[p]}
	}, "")
}

// extractProfiles pulls a file's [profiles.<name>] tables out of its raw
// tree into the resolution's profile store, deep-merging over the same
// profile from files lower in the include chain. Every patch is
// key-checked at its top level immediately — even profiles never
// selected — so a typo cannot hide in an unused profile.
func (r *Resolution) extractProfiles(raw map[string]any, lines map[string]int, file, layerName string) error {
	pv, ok := raw["profiles"]
	if !ok {
		return nil
	}
	delete(raw, "profiles")
	pm, ok := pv.(map[string]any)
	if !ok {
		return &ParseError{File: file, Line: lines["profiles"], Layer: layerName, Key: "profiles",
			Err: errors.New("profiles must be a table of tables ([profiles.<name>])")}
	}
	names := make([]string, 0, len(pm))
	for name := range pm {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ppath := "profiles." + name
		patch, ok := pm[name].(map[string]any)
		if !ok {
			return &ParseError{File: file, Line: lines[ppath], Layer: layerName, Key: ppath,
				Err: fmt.Errorf("profile %q must be a table ([profiles.%s])", name, name)}
		}
		for k := range patch {
			if !scenarioKeys[k] {
				return &ParseError{File: file, Line: lines[ppath+"."+k], Layer: layerName, Key: ppath + "." + k,
					Err: fmt.Errorf("%w %q in profile %q", ErrUnknownKey, k, name)}
			}
		}
		dst := r.profiles[name]
		if dst == nil {
			dst = map[string]any{}
			r.profiles[name] = dst
		}
		r.mergeTree(dst, patch, name, r.profProv, func(p string) Origin {
			return Origin{Layer: layerName, File: file, Line: lines[ppath+strings.TrimPrefix(p, name)]}
		}, name+".")
	}
	return nil
}

// ProfileLayer applies a named [profiles.<name>] patch collected from
// the file layers below it. Selecting a profile no file defines is an
// ErrUnknownProfile listing what is available.
func ProfileLayer(name string) Layer { return profileLayer{name} }

type profileLayer struct{ name string }

func (l profileLayer) apply(r *Resolution) error {
	patch, ok := r.profiles[l.name]
	if !ok {
		avail := make([]string, 0, len(r.profiles))
		for n := range r.profiles {
			avail = append(avail, n)
		}
		sort.Strings(avail)
		have := "none defined"
		if len(avail) > 0 {
			have = strings.Join(avail, ", ")
		}
		return &ParseError{File: r.rootFile, Layer: LayerProfile, Key: "profiles." + l.name,
			Err: fmt.Errorf("%w %q (available: %s)", ErrUnknownProfile, l.name, have)}
	}
	r.profile = l.name
	layer := LayerProfile + ":" + l.name
	r.mergeTree(r.merged, patch, "", r.prov, func(p string) Origin {
		o := r.profProv[l.name+"."+p]
		return Origin{Layer: layer, File: o.File, Line: o.Line}
	}, "")
	return nil
}

// envPrefix marks scenario-override environment variables: the variable
// name after the prefix is the lowercased dotted key path with "__" for
// the dots, so TANOQ_SET_WORKLOAD__MODE=closed sets workload.mode.
const envPrefix = "TANOQ_SET_"

// EnvLayer applies TANOQ_SET_* overrides from an environment list (pass
// os.Environ(); tests pass literals). Values parse like TOML values,
// falling back to a bare string.
func EnvLayer(environ []string) Layer { return envLayer{environ} }

type envLayer struct{ environ []string }

func (l envLayer) apply(r *Resolution) error {
	for _, kv := range l.environ {
		if !strings.HasPrefix(kv, envPrefix) {
			continue
		}
		name, val, _ := strings.Cut(kv, "=")
		path := strings.ReplaceAll(strings.ToLower(strings.TrimPrefix(name, envPrefix)), "__", ".")
		if err := r.setPath(path, val, Origin{Layer: LayerEnv, File: name}); err != nil {
			return err
		}
	}
	return nil
}

// SetLayer applies CLI `-set key=value` overrides — the top of the
// pipeline. Dotted paths reach nested tables (`-set workload.mode=closed`);
// values parse like TOML values, falling back to a bare string.
func SetLayer(exprs ...string) Layer { return kvLayer{"", exprs} }

// OverrideLayer applies key=value overrides on behalf of a dedicated CLI
// flag (noctool's -quick/-seed/-warmup/-measure), so every CLI knob
// rides the same precedence and provenance mechanism; origin labels the
// flag in -explain output and errors.
func OverrideLayer(origin string, exprs ...string) Layer { return kvLayer{origin, exprs} }

type kvLayer struct {
	origin string // "" = label each expression "-set <expr>"
	exprs  []string
}

func (l kvLayer) apply(r *Resolution) error {
	for _, e := range l.exprs {
		origin := l.origin
		if origin == "" {
			origin = "-set " + e
		}
		key, val, ok := strings.Cut(e, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return &ParseError{File: origin, Layer: LayerCLI,
				Err: fmt.Errorf("want key=value, got %q", e)}
		}
		if err := r.setPath(key, val, Origin{Layer: LayerCLI, File: origin}); err != nil {
			return err
		}
	}
	return nil
}

// setPath merges one dotted key path and pre-parsed value into the tree
// (env and CLI layers).
func (r *Resolution) setPath(path, rawVal string, org Origin) error {
	segs := strings.Split(path, ".")
	for _, s := range segs {
		if !validKey(s) {
			return &ParseError{File: org.File, Layer: org.Layer, Key: path,
				Err: fmt.Errorf("bad key path %q", path)}
		}
	}
	src := map[string]any{}
	node := src
	for _, s := range segs[:len(segs)-1] {
		child := map[string]any{}
		node[s] = child
		node = child
	}
	node[segs[len(segs)-1]] = parseSetValue(rawVal)
	r.mergeTree(r.merged, src, "", r.prov, func(string) Origin { return org }, "")
	return nil
}

// parseSetValue parses an env/CLI override value with TOML value syntax
// (numbers, booleans, quoted strings, single-line arrays); anything that
// does not parse is taken as a bare string, so -set pattern=uniform
// needs no quoting.
func parseSetValue(s string) any {
	t := strings.TrimSpace(s)
	if v, err := parseTOMLValue(t, 0); err == nil {
		return v
	}
	return t
}

// axisAlias maps each singular/plural axis spelling to its counterpart:
// a layer setting either spelling retires the other, so a profile's
// `rate = 0.05` overrides a base file's `rates = [...]` instead of
// colliding with it in the decoder.
var axisAlias = func() map[string]string {
	pairs := map[string]string{
		"pattern":              "patterns",
		"topology":             "topologies",
		"rate":                 "rates",
		"seed":                 "seeds",
		"workload.mode":        "workload.modes",
		"workload.think_time":  "workload.think_times",
		"workload.trace":       "workload.traces",
		"faults.retry_timeout": "faults.retry_timeouts",
	}
	m := map[string]string{}
	for a, b := range pairs {
		m[a], m[b] = b, a
	}
	return m
}()

// mergeTree deep-merges src into dst at the given path prefix, recording
// provenance (from org) for every path it sets into prov and purging the
// provenance of anything it replaces. Tables merge key by key; scalars
// and lists replace the previous value wholesale. aliasStrip is the
// prefix to remove before axis-alias lookup (profile trees are stored
// under "<name>."), "" for the main tree.
func (r *Resolution) mergeTree(dst, src map[string]any, prefix string, prov map[string]Origin, org func(path string) Origin, aliasStrip string) {
	for k, v := range src {
		path := joinPath(prefix, k)
		if alias, ok := axisAlias[strings.TrimPrefix(path, aliasStrip)]; ok {
			aliasPath := aliasStrip + alias
			aliasKey := alias[strings.LastIndexByte(alias, '.')+1:]
			// Retire only a lower layer's alternate spelling: a single
			// source setting both spellings is the decoder's "set either,
			// not both" error, not an override.
			if _, sameSource := src[aliasKey]; !sameSource {
				if _, exists := dst[aliasKey]; exists {
					delete(dst, aliasKey)
					purgeProv(prov, aliasPath)
				}
			}
		}
		if sm, ok := v.(map[string]any); ok {
			dm, ok := dst[k].(map[string]any)
			if !ok {
				purgeProv(prov, path)
				dm = map[string]any{}
				dst[k] = dm
			}
			r.mergeTree(dm, sm, path, prov, org, aliasStrip)
			continue
		}
		purgeProv(prov, path)
		dst[k] = v
		recordProv(prov, path, v, org)
	}
}

// purgeProv drops the provenance of a path and everything beneath it
// (a replaced subtree must not keep its old layers' provenance).
func purgeProv(prov map[string]Origin, path string) {
	delete(prov, path)
	for p := range prov {
		if strings.HasPrefix(p, path+".") || strings.HasPrefix(p, path+"[") {
			delete(prov, p)
		}
	}
}

// recordProv records provenance for a set value: the path itself, plus
// every nested path of a list of tables ([[flows]] elements and their
// keys), so errors anywhere in the subtree locate their source line.
func recordProv(prov map[string]Origin, path string, v any, org func(string) Origin) {
	prov[path] = org(path)
	if list, ok := v.([]any); ok {
		for i, el := range list {
			if m, ok := el.(map[string]any); ok {
				epath := fmt.Sprintf("%s[%d]", path, i)
				prov[epath] = org(epath)
				for k, cv := range m {
					recordProv(prov, joinPath(epath, k), cv, org)
				}
			}
		}
	}
}

// originOf resolves the provenance of a key path, walking up the path
// segments when the exact path was never recorded (a defaulted or
// synthesized key reports its nearest recorded ancestor).
func (r *Resolution) originOf(path string) Origin {
	p := path
	for {
		if o, ok := r.prov[p]; ok {
			return o
		}
		i := strings.LastIndexAny(p, ".[")
		if i < 0 {
			return Origin{}
		}
		p = p[:i]
	}
}

// Explain renders the resolved scenario with per-key provenance: every
// key of the merged tree as `path = value  # layer file:line`, sorted by
// path, plus the axis defaults the validator filled in. This is the
// `noctool sweep -explain` dump.
func (r *Resolution) Explain() string {
	var b strings.Builder
	name := r.defName
	if r.sc != nil {
		name = r.sc.Name
	}
	fmt.Fprintf(&b, "# scenario %s\n", name)
	if r.profile != "" {
		fmt.Fprintf(&b, "# profile %s\n", r.profile)
	}
	if len(r.files) > 0 {
		fmt.Fprintf(&b, "# files %s\n", strings.Join(r.files, " < "))
	}
	type row struct{ path, val, origin string }
	var rows []row
	var collect func(prefix string, m map[string]any)
	collect = func(prefix string, m map[string]any) {
		for k, v := range m {
			path := joinPath(prefix, k)
			switch t := v.(type) {
			case map[string]any:
				collect(path, t)
			case []any:
				if tables, ok := tableList(t); ok {
					for i, el := range tables {
						collect(fmt.Sprintf("%s[%d]", path, i), el)
					}
					continue
				}
				rows = append(rows, row{path, renderValue(v), r.originOf(path).String()})
			default:
				rows = append(rows, row{path, renderValue(v), r.originOf(path).String()})
			}
		}
	}
	collect("", r.merged)
	for _, d := range r.defaultRows() {
		rows = append(rows, d)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].path < rows[j].path })
	width := 0
	for _, row := range rows {
		if n := len(row.path) + 3 + len(row.val); n > width {
			width = n
		}
	}
	for _, row := range rows {
		entry := row.path + " = " + row.val
		fmt.Fprintf(&b, "%-*s  # %s\n", width, entry, row.origin)
	}
	return b.String()
}

// defaultRows lists the axis defaults the validator applied — resolved
// values whose keys appear in no layer.
func (r *Resolution) defaultRows() []struct{ path, val, origin string } {
	if r.sc == nil {
		return nil
	}
	type row = struct{ path, val, origin string }
	var rows []row
	add := func(path string, val string) {
		rows = append(rows, row{path, val, LayerDefault})
	}
	has := func(keys ...string) bool {
		for _, k := range keys {
			if _, ok := r.merged[k]; ok {
				return true
			}
		}
		return false
	}
	quoteList := func(ss []string) string {
		parts := make([]string, len(ss))
		for i, s := range ss {
			parts[i] = strconv.Quote(s)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	sc := r.sc
	if !has("pattern", "patterns") && len(sc.Patterns) > 0 {
		add("patterns", quoteList(sc.Patterns))
	}
	if !has("topology", "topologies") {
		names := make([]string, len(sc.Topologies))
		for i, k := range sc.Topologies {
			names[i] = k.String()
		}
		add("topologies", quoteList(names))
	}
	if !has("qos") {
		names := make([]string, len(sc.Modes))
		for i, m := range sc.Modes {
			names[i] = m.String()
		}
		add("qos", quoteList(names))
	}
	if !has("seed", "seeds") {
		parts := make([]string, len(sc.Seeds))
		for i, s := range sc.Seeds {
			parts[i] = strconv.FormatUint(s, 10)
		}
		add("seeds", "["+strings.Join(parts, ", ")+"]")
	}
	if !has("nodes") {
		add("nodes", strconv.Itoa(sc.Nodes))
	}
	if !has("warmup") {
		add("warmup", strconv.Itoa(sc.Warmup))
	}
	if !has("measure") {
		add("measure", strconv.Itoa(sc.Measure))
	}
	return rows
}

// tableList reports whether a list holds only tables (array-of-tables),
// returning the typed elements.
func tableList(list []any) ([]map[string]any, bool) {
	if len(list) == 0 {
		return nil, false
	}
	out := make([]map[string]any, len(list))
	for i, el := range list {
		m, ok := el.(map[string]any)
		if !ok {
			return nil, false
		}
		out[i] = m
	}
	return out, true
}

// renderValue renders a raw value in TOML-flavoured syntax for Explain.
func renderValue(v any) string {
	switch t := v.(type) {
	case string:
		return strconv.Quote(t)
	case bool:
		return strconv.FormatBool(t)
	case float64:
		if t == float64(int64(t)) {
			return strconv.FormatInt(int64(t), 10)
		}
		return strconv.FormatFloat(t, 'g', -1, 64)
	case []any:
		parts := make([]string, len(t))
		for i, el := range t {
			parts[i] = renderValue(el)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%v", t)
	}
}

// SplitProfile splits the CLI's "<scenario>#<profile>" argument form.
func SplitProfile(arg string) (path, profile string) {
	if i := strings.LastIndexByte(arg, '#'); i >= 0 {
		return arg[:i], arg[i+1:]
	}
	return arg, ""
}

// joinPath joins dotted key-path segments.
func joinPath(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}

// stringListOf coerces a raw value to a string list (the include key).
func stringListOf(v any) ([]string, bool) {
	list, ok := v.([]any)
	if !ok {
		return nil, false
	}
	out := make([]string, len(list))
	for i, el := range list {
		s, ok := el.(string)
		if !ok {
			return nil, false
		}
		out[i] = s
	}
	return out, true
}

// decodeBlob decodes scenario bytes in either format into the shared raw
// tree plus a dotted-path -> line source map.
func decodeBlob(blob []byte, ext string) (map[string]any, map[string]int, error) {
	switch ext {
	case ".json":
		var raw map[string]any
		if err := json.Unmarshal(blob, &raw); err != nil {
			return nil, nil, jsonParseError(blob, err)
		}
		return raw, jsonLineIndex(blob), nil
	case ".toml":
		return parseTOMLLines(string(blob))
	default:
		return nil, nil, fmt.Errorf("unsupported scenario format %q (want .json or .toml)", ext)
	}
}

// jsonParseError attaches a line number to encoding/json's offset-based
// syntax and type errors.
func jsonParseError(blob []byte, err error) error {
	var off int64
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		off = syn.Offset
	case errors.As(err, &typ):
		off = typ.Offset
	default:
		return &ParseError{Err: err}
	}
	return &ParseError{Line: lineAt(blob, off), Err: err}
}

// lineAt converts a byte offset to a 1-based line number.
func lineAt(blob []byte, off int64) int {
	if off > int64(len(blob)) {
		off = int64(len(blob))
	}
	return 1 + bytes.Count(blob[:off], []byte{'\n'})
}

// jsonLineIndex walks a JSON document with the streaming tokenizer and
// records the line of every object key and array element by dotted path,
// mirroring parseTOMLLines' source map. Best effort: on any tokenizer
// error the partial map is returned (the document already unmarshalled,
// so errors here cannot happen in practice).
func jsonLineIndex(blob []byte) map[string]int {
	lines := map[string]int{}
	dec := json.NewDecoder(bytes.NewReader(blob))
	var walk func(path string) error
	walk = func(path string) error {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		delim, ok := tok.(json.Delim)
		if !ok {
			return nil // scalar: line recorded at its key/element
		}
		switch delim {
		case '{':
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return err
				}
				key, _ := keyTok.(string)
				kpath := joinPath(path, key)
				if lines[kpath] == 0 {
					lines[kpath] = lineAt(blob, dec.InputOffset())
				}
				if err := walk(kpath); err != nil {
					return err
				}
			}
			_, err = dec.Token() // consume '}'
			return err
		case '[':
			for i := 0; dec.More(); i++ {
				epath := fmt.Sprintf("%s[%d]", path, i)
				if lines[epath] == 0 {
					lines[epath] = lineAt(blob, dec.InputOffset())
				}
				if err := walk(epath); err != nil {
					return err
				}
			}
			_, err = dec.Token() // consume ']'
			return err
		}
		return nil
	}
	_ = walk("")
	return lines
}
