// Package scenario is the declarative workload layer: it resolves JSON
// or TOML scenario files into validated, defaulted sweep grids over the
// simulator's full configuration space — synthetic traffic pattern,
// topology, QoS mode, injection rate, seed — and runs them through the
// parallel experiment runner. What previously required a hand-written Go
// driver per workload (internal/experiments' figure drivers) is now a
// small text file; the paper's own evaluation grids are re-expressed as
// built-in scenarios (Builtin) and pinned bit-identical to the original
// drivers by tests.
//
// # Layered resolution
//
// A scenario is not one flat file but the merge of an ordered layer
// stack, resolved by Resolve(...Layer). Precedence, lowest first:
//
//	defaults < include chain < file < profile < env < CLI overrides
//
// FileLayer loads a file and recursively loads its `include` list first
// (paths resolve against the including file's directory; cycles are
// detected and rejected with ErrIncludeCycle). ProfileLayer applies one
// named [profiles.<name>] patch — a table that may override any subset
// of scenario keys; profiles defined in included files are inherited and
// may be extended by the includer. EnvLayer applies TANOQ_SET_*
// variables (TANOQ_SET_WORKLOAD__MODE=closed sets workload.mode), and
// SetLayer/OverrideLayer apply `key=value` expressions on behalf of CLI
// flags (noctool's repeatable -set, and -quick/-seed/-warmup/-measure).
//
// Merging is deep for tables (maps merge key by key) and replacing for
// scalars and lists. The singular/plural axis spellings are aliases
// across layers: a later layer setting either spelling retires the
// other, so a profile's `rate = 0.05` overrides a base file's
// `rates = [...]` instead of colliding with it — while a single source
// setting both spellings is still rejected. Every resolved key carries
// an Origin (layer + file:line); Resolution.Explain renders the whole
// resolved scenario with per-key provenance (noctool sweep -explain),
// and Resolution.Origin answers for one key. Unknown keys are rejected
// at every layer, and every load/decode error is a *ParseError carrying
// the offending file, line, key and layer (errors.Is/As compatible, with
// ErrUnknownKey/ErrUnknownProfile/ErrIncludeCycle sentinels).
//
// Load (path or built-in name) and Parse (in-memory blob) remain as
// single-layer facades over Resolve. Cache keys (Grid.Keys) are computed
// over the resolved canonical scenario, so two routes to the same
// resolved grid — a profile selection or a hand-flattened file — share
// cache entries; includes and profiles are cache-transparent.
//
// # File format
//
// A scenario is one JSON object or TOML document. Every list-valued
// field is a sweep axis; the run grid is the cross product, expanded in
// the order pattern × topology × qos × seed × rate. Fields (singular and
// plural spellings both accepted on the axes):
//
//	include           list of parent scenario files merged below this one
//	                  (file-backed scenarios only; paths are relative to
//	                  the including file)
//	name              label for output rows (default: file base name)
//	pattern(s)        uniform | tornado | transpose | bit-complement |
//	                  bit-reversal | shuffle | hotspot   (default uniform)
//	topology(ies)     mesh_x1 | mesh_x2 | mesh_x4 | mecs | dps | all
//	                  (default all)
//	qos               pvc | per-flow-queue | no-qos | all  (default pvc)
//	rate(s)           per-injector offered load in flits/cycle, (0,1]
//	seed(s)           RNG seeds (default 42)
//	nodes             column height (default 8; bit-permutation patterns
//	                  need a power of two)
//	warmup, measure   per-cell schedule in cycles (default 20000/100000)
//	stop_at           cycle at which injection halts (0 = never)
//	request_fraction  1-flit-request share of packets (default 0.5)
//	hotspot_weights   per-node destination weights for pattern "hotspot"
//	burst             { mean_on, mean_off }: MMPP-style on/off windows in
//	                  cycles; rate stays the long-run mean
//	flows             explicit injector list replacing pattern × rates:
//	                  each { node, injector, rate, dest, stop_at, role }
//	                  with dest a node index or "hotspot"; role tags a
//	                  flow "victim" or "aggressor" — any victim makes
//	                  every row report the victims' mean-latency slowdown
//	                  versus a hidden victim-only reference cell
//	frame_cycles, window_packets, quantum_flits, margin_classes
//	                  QoS parameter overrides (defaults from package qos)
//
// The [workload] table selects the workload class and its axes
// (internal/workload):
//
//	mode(s)           open | closed, an axis (default open). Closed cells
//	                  run per-node request–reply clients — the pattern
//	                  axis picks request destinations — and fan out over
//	                  outstanding × think_time instead of the rate axis.
//	outstanding       closed: window of outstanding requests per client,
//	                  an axis (default 4)
//	think_time(s)     closed: mean think cycles between reply and next
//	                  request, an axis (default 0 = back-to-back)
//	request_flits, reply_flits
//	                  closed: transaction shape, 1 or 4 (default 1/4 =
//	                  read-shaped; 4/1 models write-shaped traffic whose
//	                  bandwidth rides the request path)
//	trace(s)          replay axis: recorded binary traces (relative paths
//	                  resolve against the scenario file) replayed verbatim
//	                  as trace × topology × qos × seed cells; mutually
//	                  exclusive with patterns/rates/flows and mode
//
// The [faults] table schedules hardware fault injection and arms
// end-to-end recovery (open-loop cells only; see internal/network's
// FaultConfig). Windows are dotted array-of-tables — the [faults] header
// must precede its [[faults.link]]/[[faults.router]] entries:
//
//	retry_timeout(s)  source delivery-timeout axis in cycles (0 = no
//	                  recovery; fault-killed packets become final drops).
//	                  Timeouts back off exponentially per retransmission.
//	max_retries       retransmissions per packet before it is abandoned,
//	                  an axis (default 3 when any retry_timeout is set)
//	watchdog_cycles   no-forward-progress watchdog budget (0 = disarmed);
//	                  a trip fails the cell with a structured dump and an
//	                  auto-captured repro trace
//	[[faults.link]]   { port, from, until, permanent }: output port loses
//	                  its flits in flight and stalls for [from, until), or
//	                  dies for good with permanent = true (until omitted)
//	[[faults.router]] { node, from, until }: every output of one router
//	                  freezes for the window — nothing is lost, traffic
//	                  queues and resumes; omit until for a permanent wedge
//
// Faulted rows add delivered fraction, retry/drop counts and mean
// recovery latency; Degrade additionally joins each faulted point
// against its fault-free baseline (noctool's degrade subcommand).
//
// The [run] table tunes durable execution. None of its knobs can change
// a result — only whether and how cells execute — so they stay out of
// the cells' cache keys:
//
//	deadline_ms       wall-clock budget per cell (must be positive when
//	                  present; a cell past its deadline is aborted
//	                  cooperatively at a cycle boundary and retried)
//	retries           extra attempts per failed cell (default 1; an
//	                  explicit 0 disables retries)
//	backoff_ms        base delay before retrying a failed cell, doubling
//	                  per attempt (default 0 = immediate)
//	cache             opt the scenario into the content-addressed result
//	                  cache (noctool's -cache/-resume flags also enable
//	                  it; see Grid.RunDurable and internal/store)
//
// Grid.Keys content-addresses every cell — a SHA-256 over the canonical
// encoding of everything that can change its result, including a replay
// cell's trace-file bytes and the engine version stamp — and
// Grid.RunDurable runs a grid through the cache: hits are served without
// simulating, misses execute with the deadline/retry budget and are
// checkpointed (store entry + journal line) the moment they finish, and
// cancelling the context drains in-flight cells and returns the partial
// grid with never-issued cells marked skipped. Because cells are
// deterministic, a resumed sweep's table is byte-identical to an
// uninterrupted one and a fully cached sweep executes zero simulations.
//
// [profiles.<name>] tables hold named patches over any subset of the
// keys above (including nested tables like [profiles.durable.run]);
// nothing applies until a profile is selected — `noctool sweep
// file.toml#quick` or -profile. Unknown keys are rejected at every
// layer, so typos fail loudly instead of silently dropping an axis. See
// examples/sweep/ for runnable files (base.toml is the shared include)
// and cmd/noctool's sweep subcommand for the CLI entry point.
//
// Every result row carries Table-2-style fairness dispersion —
// min/max/stddev of per-flow delivered flits (open/replay cells) or
// per-client completed requests (closed cells) as percentages of the
// mean — alongside the latency and throughput aggregates.
//
// # Determinism
//
// A grid cell's randomness derives entirely from its (workload, seed)
// pair, so results are bit-identical for every worker count and with
// idle skipping on or off — the same contract the built-in experiment
// drivers carry, enforced for scenarios by this package's tests.
package scenario
