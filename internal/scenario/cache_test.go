package scenario

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tanoq/internal/store"
	"tanoq/internal/topology"
	"tanoq/internal/workload"
)

// gridOf parses a TOML scenario and expands its grid.
func gridOf(t *testing.T, toml string) *Grid {
	t.Helper()
	sc, err := Parse([]byte(toml), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// zeroWall returns a copy of the rows with the wall-clock columns — the
// one legitimately non-deterministic part of a result — cleared, so
// separately-executed runs can be compared bit-for-bit.
func zeroWall(rs []Result) []Result {
	out := append([]Result(nil), rs...)
	for i := range out {
		out[i].Wall, out[i].CyclesPerSec = 0, 0
	}
	return out
}

// keysOf returns the grid's cache keys as a set.
func keysOf(t *testing.T, toml string) map[string]bool {
	t.Helper()
	keys, err := gridOf(t, toml).Keys()
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return set
}

// TestRunTableDecoding pins the [run] table: the knobs decode into
// Deadline/Retries/Backoff/Cache (with `retries = 0` mapping to the
// runner's explicit no-retries sentinel), and nonsense — non-positive
// deadlines, negative retries or backoff, unknown keys, non-table
// values — is rejected at parse time.
func TestRunTableDecoding(t *testing.T) {
	sc, err := Parse([]byte("rate = 0.05\n[run]\ndeadline_ms = 60000\nretries = 2\nbackoff_ms = 250\ncache = true\n"), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Deadline != 60*time.Second || sc.Retries != 2 || sc.Backoff != 250*time.Millisecond || !sc.Cache {
		t.Fatalf("run table decoded wrong: deadline %v retries %d backoff %v cache %v",
			sc.Deadline, sc.Retries, sc.Backoff, sc.Cache)
	}
	sc, err = Parse([]byte("rate = 0.05\n[run]\nretries = 0\n"), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Retries != -1 {
		t.Errorf("explicit retries = 0 decoded to %d, want the -1 no-retries sentinel", sc.Retries)
	}
	sc, err = Parse([]byte("rate = 0.05\n"), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Deadline != 0 || sc.Retries != 0 || sc.Backoff != 0 || sc.Cache {
		t.Errorf("absent run table left non-zero knobs: %+v", sc)
	}
	for name, src := range map[string]string{
		"zero deadline":     "rate = 0.05\n[run]\ndeadline_ms = 0\n",
		"negative deadline": "rate = 0.05\n[run]\ndeadline_ms = -5\n",
		"negative retries":  "rate = 0.05\n[run]\nretries = -1\n",
		"negative backoff":  "rate = 0.05\n[run]\nbackoff_ms = -10\n",
		"unknown key":       "rate = 0.05\n[run]\nwall_clock = 9\n",
		"not a table":       "rate = 0.05\nrun = 3\n",
	} {
		if _, err := Parse([]byte(src), ".toml"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

const cacheBase = `
pattern = "uniform"
topology = "mesh_x1"
qos = ["pvc"]
rates = [0.03]
seeds = [42]
warmup = 200
measure = 800
`

// TestCacheKeyStability is the table-driven key contract over the full
// cell schema: re-encoding the same semantics — any file-key order, any
// display name, any execution-only knob — produces identical keys, and
// every semantic change produces disjoint ones.
func TestCacheKeyStability(t *testing.T) {
	base := keysOf(t, cacheBase)
	for name, tc := range map[string]struct {
		toml string
		same bool
	}{
		"key order":  {"measure = 800\nwarmup = 200\nseeds = [42]\nrates = [0.03]\nqos = [\"pvc\"]\ntopology = \"mesh_x1\"\npattern = \"uniform\"\n", true},
		"name":       {cacheBase + "name = \"renamed\"\n", true},
		"run knobs":  {cacheBase + "[run]\ndeadline_ms = 60000\nretries = 2\nbackoff_ms = 10\ncache = true\n", true},
		"rate":       {strings.Replace(cacheBase, "0.03", "0.04", 1), false},
		"seed":       {strings.Replace(cacheBase, "[42]", "[43]", 1), false},
		"topology":   {strings.Replace(cacheBase, "mesh_x1", "mecs", 1), false},
		"qos mode":   {strings.Replace(cacheBase, `"pvc"`, `"no-qos"`, 1), false},
		"pattern":    {strings.Replace(cacheBase, "uniform", "transpose", 1), false},
		"warmup":     {strings.Replace(cacheBase, "warmup = 200", "warmup = 300", 1), false},
		"measure":    {strings.Replace(cacheBase, "measure = 800", "measure = 900", 1), false},
		"stop_at":    {cacheBase + "stop_at = 600\n", false},
		"burst":      {cacheBase + "[burst]\nmean_on = 50\nmean_off = 150\n", false},
		"req frac":   {cacheBase + "request_fraction = 0.9\n", false},
		"frame":      {cacheBase + "frame_cycles = 4096\n", false},
		"window":     {cacheBase + "window_packets = 8\n", false},
		"quantum":    {cacheBase + "quantum_flits = 16\n", false},
		"margin":     {cacheBase + "margin_classes = 2\n", false},
		"watchdog":   {cacheBase + "[faults]\nwatchdog_cycles = 5000\n", false},
		"recovery":   {cacheBase + "[faults]\nretry_timeout = 300\nmax_retries = 2\n", false},
		"fault win":  {cacheBase + "[faults]\n[[faults.router]]\nnode = 3\nfrom = 100\nuntil = 200\n", false},
		"hs weights": {strings.Replace(cacheBase, `"uniform"`, `"hotspot"`, 1) + "hotspot_weights = [1, 2, 1, 1, 1, 1, 1, 1]\n", false},
	} {
		t.Run(name, func(t *testing.T) {
			got := keysOf(t, tc.toml)
			if tc.same {
				if !reflect.DeepEqual(got, base) {
					t.Errorf("expected identical keys, got %v vs %v", got, base)
				}
				return
			}
			for k := range got {
				if base[k] {
					t.Errorf("semantic change still maps to base key %s", k)
				}
			}
		})
	}
}

// TestCacheKeyFlowAndClosedAxes extends the stability table to the
// flows and closed-loop workload classes.
func TestCacheKeyFlowAndClosedAxes(t *testing.T) {
	flowBase := `
topology = "mesh_x1"
qos = ["pvc"]
seeds = [7]
warmup = 200
measure = 800
[[flows]]
node = 1
rate = 0.2
dest = 5
role = "victim"
[[flows]]
node = 2
rate = 0.5
dest = 5
role = "aggressor"
`
	base := keysOf(t, flowBase)
	for name, tc := range map[string]struct {
		toml string
		same bool
	}{
		"same flows":   {flowBase, true},
		"flow rate":    {strings.Replace(flowBase, "0.5", "0.6", 1), false},
		"flow dest":    {strings.Replace(flowBase, "dest = 5\nrole = \"aggressor\"", "dest = 6\nrole = \"aggressor\"", 1), false},
		"flow role":    {strings.Replace(flowBase, `"aggressor"`, `"victim"`, 1), false},
		"role dropped": {strings.Replace(flowBase, "role = \"victim\"\n", "", 1), false},
	} {
		t.Run(name, func(t *testing.T) {
			got := keysOf(t, tc.toml)
			if tc.same != reflect.DeepEqual(got, base) {
				t.Errorf("same=%v violated", tc.same)
			}
		})
	}

	closedBase := `
pattern = "uniform"
topology = "mesh_x1"
qos = ["pvc"]
seeds = [7]
warmup = 200
measure = 800
[workload]
mode = "closed"
outstanding = [4]
think_times = [0]
`
	cb := keysOf(t, closedBase)
	for name, tc := range map[string]struct {
		toml string
		same bool
	}{
		"same closed":  {closedBase, true},
		"outstanding":  {strings.Replace(closedBase, "[4]", "[8]", 1), false},
		"think":        {strings.Replace(closedBase, "think_times = [0]", "think_times = [50]", 1), false},
		"packet shape": {closedBase + "request_flits = 4\nreply_flits = 1\n", false},
	} {
		t.Run(name, func(t *testing.T) {
			got := keysOf(t, tc.toml)
			if tc.same != reflect.DeepEqual(got, cb) {
				t.Errorf("same=%v violated", tc.same)
			}
		})
	}

	// A closed cell and an open cell of the same pattern/seed must never
	// collide.
	for k := range cb {
		if base[k] {
			t.Error("closed and flows cells share a key")
		}
	}
}

// TestCacheKeyTraceDigest pins the replay rule: a cell's key follows the
// trace file's *content*, so editing a trace in place retires its rows.
func TestCacheKeyTraceDigest(t *testing.T) {
	dir := t.TempDir()
	rec := recordRun(t)
	tr := rec.Trace(workload.TraceHeader{
		Nodes: topology.ColumnNodes, Topology: "mesh_x1", QoS: "pvc",
		Seed: 42, Warmup: 200, Measure: 800,
	})
	path := filepath.Join(dir, "t.trace")
	if err := workload.WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	scPath := filepath.Join(dir, "replay.toml")
	if err := os.WriteFile(scPath, []byte(
		"topology = \"mesh_x1\"\nqos = [\"pvc\"]\nwarmup = 200\nmeasure = 800\n[workload]\ntrace = \"t.trace\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	load := func() []string {
		sc, err := Load(scPath)
		if err != nil {
			t.Fatal(err)
		}
		g, err := sc.Grid()
		if err != nil {
			t.Fatal(err)
		}
		keys, err := g.Keys()
		if err != nil {
			t.Fatal(err)
		}
		return keys
	}
	k1 := load()
	if k2 := load(); !reflect.DeepEqual(k1, k2) {
		t.Fatal("identical trace produced different keys")
	}
	// Overwrite with a valid but different capture (the header seed
	// differs): same path, different content, different keys.
	tr2 := rec.Trace(workload.TraceHeader{
		Nodes: topology.ColumnNodes, Topology: "mesh_x1", QoS: "pvc",
		Seed: 43, Warmup: 200, Measure: 800,
	})
	if err := workload.WriteTraceFile(path, tr2); err != nil {
		t.Fatal(err)
	}
	if k3 := load(); reflect.DeepEqual(k1, k3) {
		t.Fatal("edited trace kept its cache keys")
	}
}

// durableGrid is a small two-cell grid for lifecycle tests.
const durableToml = `
pattern = "uniform"
topology = "mesh_x1"
qos = ["pvc"]
rates = [0.02, 0.05]
seeds = [42]
warmup = 200
measure = 800
`

// TestRunDurableCacheLifecycle is the memoization contract: a first run
// executes everything, a re-run against the same store executes nothing
// and returns bit-identical rows.
func TestRunDurableCacheLifecycle(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := gridOf(t, durableToml)
	plain := g.Run(RunOpts{Workers: 1})

	first, err := gridOf(t, durableToml).RunDurable(context.Background(), DurableOpts{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if first.Hits != 0 || first.Executed != g.Size() || first.Interrupted {
		t.Fatalf("first run: %+v, want all executed", first)
	}
	if !reflect.DeepEqual(zeroWall(first.Results), zeroWall(plain)) {
		t.Fatalf("durable run diverged from Grid.Run:\n%+v\n%+v", first.Results, plain)
	}

	second, err := gridOf(t, durableToml).RunDurable(context.Background(), DurableOpts{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if second.Hits != g.Size() || second.Executed != 0 {
		t.Fatalf("re-run: hits %d executed %d, want %d/0", second.Hits, second.Executed, g.Size())
	}
	if !reflect.DeepEqual(zeroWall(second.Results), zeroWall(plain)) {
		t.Fatal("cached rows diverge from executed rows")
	}

	// The verify pass re-runs hits and must confirm them.
	verified, err := gridOf(t, durableToml).RunDurable(context.Background(),
		DurableOpts{Store: st, VerifySample: g.Size()})
	if err != nil {
		t.Fatal(err)
	}
	if verified.Verified != g.Size() || len(verified.VerifyBad) != 0 {
		t.Fatalf("verify pass: %d verified, bad %v", verified.Verified, verified.VerifyBad)
	}
}

// TestRunDurableResumeCompletesPartialCache pins resume: with only part
// of the grid cached (an interrupted earlier run), a resumed sweep
// serves the cached rows, executes the rest, and the final table is
// bit-identical to a never-interrupted run.
func TestRunDurableResumeCompletesPartialCache(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	journal, err := store.OpenJournal(filepath.Join(st.Dir(), "journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()

	// "Interrupted" first pass: only the first rate is swept, so the
	// store holds half the full grid.
	partial := strings.Replace(durableToml, "[0.02, 0.05]", "[0.02]", 1)
	if _, err := gridOf(t, partial).RunDurable(context.Background(),
		DurableOpts{Store: st, Journal: journal}); err != nil {
		t.Fatal(err)
	}
	if journal.Len() != 1 {
		t.Fatalf("journal holds %d keys after partial run, want 1", journal.Len())
	}

	full := gridOf(t, durableToml)
	rep, err := full.RunDurable(context.Background(), DurableOpts{Store: st, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits != 1 || rep.Executed != 1 {
		t.Fatalf("resume: hits %d executed %d, want 1/1", rep.Hits, rep.Executed)
	}
	uninterrupted := gridOf(t, durableToml).Run(RunOpts{Workers: 1})
	resumed, fresh := zeroWall(rep.Results), zeroWall(uninterrupted)
	if !reflect.DeepEqual(resumed, fresh) {
		t.Fatalf("resumed table diverges from uninterrupted run:\n%+v\n%+v", rep.Results, uninterrupted)
	}
	// The rendered artifacts must be byte-identical too — the CLI-level
	// resume contract (modulo the wall-clock columns, which record each
	// run's own elapsed time).
	if Render("x", resumed) != Render("x", fresh) ||
		CSV("x", resumed) != CSV("x", fresh) {
		t.Error("rendered output differs between resumed and uninterrupted runs")
	}
	if journal.Len() != 2 {
		t.Errorf("journal holds %d keys after resume, want 2", journal.Len())
	}
}

// TestRunDurableCancellation pins graceful cancellation: a cancelled
// sweep returns rows marked skipped and reports itself interrupted.
func TestRunDurableCancellation(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gridOf(t, durableToml)
	rep, err := g.RunDurable(ctx, DurableOpts{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted || rep.Skipped != g.Size() {
		t.Fatalf("cancelled sweep: %+v, want all skipped", rep)
	}
	for _, r := range rep.Results {
		if r.Error != skippedError || r.Attempts != 0 {
			t.Errorf("skipped row: %+v", r)
		}
	}
	// Rendering marks them FAILED rather than printing zero metrics.
	if out := Render("x", rep.Results); !strings.Contains(out, "FAILED") || !strings.Contains(out, "cancelled") {
		t.Errorf("skipped rows render without an interrupted marker:\n%s", out)
	}
}

// TestRunDurableVictimBaselineCached pins the reference-cell contract:
// victim-slowdown rows cache and re-serve without re-running the hidden
// reference cells, and a fully-cached re-run matches Grid.Run exactly.
func TestRunDurableVictimBaselineCached(t *testing.T) {
	toml := `
topology = "mesh_x1"
qos = ["no-qos"]
seeds = [42]
warmup = 300
measure = 1500
[[flows]]
node = 1
rate = 0.05
dest = 7
role = "victim"
[[flows]]
node = 2
rate = 0.9
dest = 7
[[flows]]
node = 3
rate = 0.9
dest = 7
`
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plain := gridOf(t, toml).Run(RunOpts{Workers: 1})
	if plain[0].VictimSlowdown <= 1 {
		t.Fatalf("scenario does not exercise the slowdown column: %+v", plain[0])
	}
	first, err := gridOf(t, toml).RunDurable(context.Background(), DurableOpts{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zeroWall(first.Results), zeroWall(plain)) {
		t.Fatal("durable victim run diverges from Grid.Run")
	}
	second, err := gridOf(t, toml).RunDurable(context.Background(), DurableOpts{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 || second.Hits != 1 {
		t.Fatalf("victim re-run executed %d cells, want 0", second.Executed)
	}
	if !reflect.DeepEqual(zeroWall(second.Results), zeroWall(plain)) {
		t.Fatal("cached victim rows diverge")
	}
}

// TestRunDurableVerifyCatchesCorruption pins -cache-verify: a tampered
// cache entry is detected by the verification re-run.
func TestRunDurableVerifyCatchesCorruption(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := gridOf(t, durableToml)
	if _, err := g.RunDurable(context.Background(), DurableOpts{Store: st}); err != nil {
		t.Fatal(err)
	}
	// Tamper with the first cell's payload: valid envelope, wrong data.
	keys, err := g.Keys()
	if err != nil {
		t.Fatal(err)
	}
	blob, ok := st.Get(keys[0])
	if !ok {
		t.Fatal("entry missing after run")
	}
	var row cachedRow
	if err := json.Unmarshal(blob, &row); err != nil {
		t.Fatal(err)
	}
	row.MeanLatency += 1000
	forged, _ := json.Marshal(row)
	if err := st.Put(keys[0], forged); err != nil {
		t.Fatal(err)
	}

	rep, err := gridOf(t, durableToml).RunDurable(context.Background(),
		DurableOpts{Store: st, VerifySample: g.Size()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.VerifyBad) != 1 || rep.Verified != g.Size()-1 {
		t.Fatalf("verification missed the forged entry: verified %d bad %v", rep.Verified, rep.VerifyBad)
	}
}
