package scenario

import (
	"fmt"
	"sort"

	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// The built-in registry re-expresses the paper's own experiment workloads
// as scenarios, proving the declarative layer carries them: the Figure 4
// load-latency sweeps map to pattern×rate grids, and the Section 5.3
// adversarial workloads map to explicit flow lists. Each entry returns a
// fresh value — callers may mutate the result (CLI overrides do).
var builtins = map[string]func() *Scenario{
	// Figure 4(a)/(b) at paper scale: every topology, PVC, 1–15 % rates.
	"fig4a": func() *Scenario { return fig4("fig4a", "uniform", fig4Rates(), 20_000, 100_000) },
	"fig4b": func() *Scenario { return fig4("fig4b", "tornado", fig4Rates(), 20_000, 100_000) },
	// The -quick grids used by tests and benchmarks. The rate list and
	// schedule mirror experiments.QuickFig4Rates/QuickParams; the
	// scenario tests assert they stay in lockstep.
	"fig4a-quick": func() *Scenario { return fig4("fig4a-quick", "uniform", quickRates(), 3_000, 15_000) },
	"fig4b-quick": func() *Scenario { return fig4("fig4b-quick", "tornado", quickRates(), 3_000, 15_000) },
	// Section 5.3's adversarial preemption workloads (Figures 5 and 6):
	// explicit injector lists streaming at the hotspot.
	"workload1": func() *Scenario {
		sc := adversarial("workload1")
		for n, rate := range traffic.Workload1Rates {
			sc.Flows = append(sc.Flows, FlowSpec{Node: n, Injector: 0, Rate: rate, Dest: int(traffic.HotspotNode)})
		}
		return sc
	},
	"workload2": func() *Scenario {
		sc := adversarial("workload2")
		far := topology.ColumnNodes - 1
		for i, rate := range traffic.Workload2NodeRates {
			sc.Flows = append(sc.Flows, FlowSpec{Node: far, Injector: i, Rate: rate, Dest: int(traffic.HotspotNode)})
		}
		sc.Flows = append(sc.Flows, FlowSpec{Node: far - 1, Injector: 0, Rate: traffic.Workload2ExtraRate, Dest: int(traffic.HotspotNode)})
		return sc
	},
}

func fig4(name, pattern string, rates []float64, warmup, measure int) *Scenario {
	return &Scenario{
		Name:            name,
		Patterns:        []string{pattern},
		Topologies:      topology.Kinds(),
		Rates:           rates,
		Nodes:           topology.ColumnNodes,
		Warmup:          warmup,
		Measure:         measure,
		RequestFraction: traffic.DefaultRequestFraction,
	}
}

func adversarial(name string) *Scenario {
	return &Scenario{
		Name:            name,
		Topologies:      topology.Kinds(),
		Nodes:           topology.ColumnNodes,
		Warmup:          20_000,
		Measure:         100_000,
		RequestFraction: traffic.DefaultRequestFraction,
	}
}

// fig4Rates is Figure 4's X axis: injection rates 1–15 %.
func fig4Rates() []float64 {
	var rates []float64
	for r := 1; r <= 15; r++ {
		rates = append(rates, float64(r)/100)
	}
	return rates
}

// quickRates mirrors experiments.QuickFig4Rates (pinned by test).
func quickRates() []float64 {
	return []float64{0.01, 0.02, 0.05, 0.08, 0.11, 0.14}
}

// Builtin returns a fresh copy of a built-in scenario by name, validated
// and defaulted like a loaded file.
func Builtin(name string) (*Scenario, error) {
	f, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("scenario: no file and no built-in named %q (built-ins: %v)", name, BuiltinNames())
	}
	sc := f()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// BuiltinNames lists the built-in scenario names in sorted order.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
