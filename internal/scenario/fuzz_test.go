package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzScenarioDecode drives arbitrary bytes through both scenario
// decoders — the hand-rolled TOML subset and the JSON path — hunting
// panics, hangs and validation escapes in the parser/decoder/validator
// stack. The seed corpus is every shipped example scenario plus a set of
// shapes covering each decoder feature (tables, array-of-tables, the
// [workload] and [burst] tables, flows lists, escapes, comments).
func FuzzScenarioDecode(f *testing.F) {
	seeds := []string{
		`{"rates":[0.05],"topologies":["mesh_x1"]}`,
		`{"flows":[{"node":1,"rate":0.2,"dest":"hotspot"}],"qos":["all"]}`,
		"rate = 0.05\ntopology = \"all\"\n",
		"rates = [0.01, 0.05]\n[burst]\nmean_on = 50\nmean_off = 150\n",
		"pattern = \"hotspot\"\nhotspot_weights = [1, 0, 2.5]\n",
		"[workload]\nmode = \"closed\"\noutstanding = [2, 8]\nthink_time = 50\n",
		"[workload]\ntrace = \"no/such/file.trace\"\n",
		"[[flows]]\nnode = 1\nrate = 0.2\n[[flows]]\nnode = 2\nrate = 0.1\ndest = 0\n",
		"name = \"esc \\\"q\\\" # not a comment\" # comment\nrate = 1_000e-4\n",
		"seed = [1, 2, 3]\nqos = [\"pvc\", \"no-qos\"]\nmeasure = 5000\n",
		// The [faults] table and its dotted array-of-tables windows — a
		// healthy mix plus malformed schedules the validator must reject
		// cleanly (zero-length windows, unbounded transients, out-of-range
		// ports, bad dotted headers, recovery knobs on closed loops).
		"rate = 0.05\n[faults]\nretry_timeouts = [0, 400]\nmax_retries = 6\nwatchdog_cycles = 50_000\n" +
			"[[faults.link]]\nport = 3\nfrom = 1000\nuntil = 2000\n" +
			"[[faults.link]]\nport = 4\nfrom = 2500\npermanent = true\n" +
			"[[faults.router]]\nnode = 2\nfrom = 3000\nuntil = 3500\n",
		"rate = 0.05\n[[faults.link]]\nport = 1\nfrom = 20\nuntil = 20\n",
		"rate = 0.05\n[[faults.link]]\nport = 99\nfrom = 10\n",
		"rate = 0.05\n[[faults.router]]\nnode = -1\nfrom = 10\nuntil = 5\n",
		"[[faults..link]]\nport = 1\n",
		"[faults]\nlink = 3\n",
		"[workload]\nmode = \"closed\"\n[faults]\nretry_timeout = 500\n",
		`{"faults":{"retry_timeout":400,"link":[{"port":3,"from":10,"until":20}]},"rates":[0.05]}`,
		// The [run] table: durable-execution knobs — valid shapes plus the
		// nonsense the decoder must reject (zero/negative deadlines,
		// negative retries or backoff, non-table values, unknown keys).
		"rate = 0.05\n[run]\ndeadline_ms = 60_000\nretries = 2\nbackoff_ms = 250\ncache = true\n",
		"rate = 0.05\n[run]\nretries = 0\ncache = false\n",
		"rate = 0.05\n[run]\ndeadline_ms = 0\n",
		"rate = 0.05\n[run]\ndeadline_ms = -5\n",
		"rate = 0.05\n[run]\nretries = -1\n",
		"rate = 0.05\n[run]\nbackoff_ms = -10\n",
		"rate = 0.05\n[run]\nwall_clock = 9\n",
		"rate = 0.05\nrun = 3\n",
		`{"rates":[0.05],"run":{"deadline_ms":1000,"retries":1,"cache":true}}`,
		// Layered-composition surface: include lists (rejected by the blob
		// path — only file-backed scenarios can include), [profiles.*]
		// patch tables in valid and malformed shapes, dotted table headers,
		// and singular/plural alias collisions a profile would retire.
		"include = [\"base.toml\"]\nrate = 0.05\n",
		"include = \"base.toml\"\n",
		"include = [3]\n",
		"rate = 0.05\n[profiles.quick]\nwarmup = 200\nmeasure = 2000\n",
		"rates = [0.01, 0.05]\n[profiles.one]\nrate = 0.03\n[profiles.two]\nrates = [0.09]\n",
		"rate = 0.05\n[profiles.bad]\nbogus = 1\n",
		"rate = 0.05\n[profiles.durable.run]\ndeadline_ms = 1000\n",
		"rate = 0.05\nprofiles = 3\n",
		"rate = 0.05\n[profiles]\nquick = 1\n",
		"rate = 0.05\n[profiles.a.b.c.d]\nx = 1\n",
		"[profiles.quick]\nwarmup = 1\n[profiles.quick]\nwarmup = 2\n",
		`{"rates":[0.05],"profiles":{"quick":{"warmup":200}}}`,
		`{"include":["base.toml"],"rates":[0.05]}`,
		// The [telemetry] table: probe interval, series selection and
		// top-K — valid shapes plus malformed intervals, unknown series
		// and non-table values the validator must reject cleanly.
		"rate = 0.05\n[telemetry]\ninterval = 500\nseries = [\"flits\", \"heatmap\"]\ntop_flows = 4\n",
		"rate = 0.05\n[telemetry]\ninterval = 1\n",
		"rate = 0.05\n[telemetry]\ninterval = 0\n",
		"rate = 0.05\n[telemetry]\ninterval = -250\n",
		"rate = 0.05\n[telemetry]\nseries = [\"flits\"]\n",
		"rate = 0.05\n[telemetry]\ninterval = 500\nseries = [\"latency\"]\n",
		"rate = 0.05\n[telemetry]\ninterval = 500\nseries = 3\n",
		"rate = 0.05\n[telemetry]\ninterval = 500\ntop_flows = -1\n",
		"rate = 0.05\n[telemetry]\ninterval = 500\nheat = true\n",
		"rate = 0.05\ntelemetry = 3\n",
		`{"rates":[0.05],"telemetry":{"interval":500,"series":["events"],"top_flows":8}}`,
	}
	// Every shipped example file is a seed: the fuzzer starts from the
	// real surface users feed the decoder.
	if paths, err := filepath.Glob("../../examples/sweep/*"); err == nil {
		for _, p := range paths {
			if blob, err := os.ReadFile(p); err == nil {
				seeds = append(seeds, string(blob))
			}
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		for _, ext := range []string{".json", ".toml"} {
			sc, err := Parse([]byte(data), ext)
			if err != nil {
				continue
			}
			if sc == nil {
				t.Fatalf("%s: Parse returned nil scenario without error", ext)
			}
			// A scenario that parsed and validated must expand, unless it
			// names trace files (Grid reads those from disk; missing
			// files are an expected, clean error).
			if len(sc.Traces) > 0 {
				continue
			}
			if _, err := sc.Grid(); err != nil {
				t.Fatalf("%s: validated scenario failed to expand: %v\ninput: %q", ext, err, data)
			}
		}
	})
}
