package scenario

import (
	"fmt"
	"strings"

	"tanoq/internal/sim"
)

// This file is the degradation sweep: it runs a faulted scenario twice —
// once as written and once with the [faults] table stripped — and joins
// the grids point by point, so every row reports how far the faulted
// network fell from its healthy self: delivered fraction, victim
// slowdown, and mean/p99 latency inflation, per QoS mode. That is the
// robustness question the fault subsystem exists to answer: which QoS
// discipline degrades gracefully.

// DegradeRow pairs one faulted grid point with its fault-free baseline.
type DegradeRow struct {
	Point
	// DeliveredFraction, Retries, Drops and VictimSlowdown are the
	// faulted cell's robustness columns (Result).
	DeliveredFraction float64
	Retries           int64
	Drops             int64
	VictimSlowdown    float64
	// Faulted and baseline latencies, and their ratios (0 when the
	// baseline delivered nothing).
	MeanLatency     float64
	BaseMeanLatency float64
	P99Latency      float64
	BaseP99Latency  float64
	MeanInflation   float64
	P99Inflation    float64
	// Error marks a faulted cell that failed outright (e.g. a watchdog
	// trip under a permanent stall) — itself a degradation datum.
	Error string
}

// degradeKey identifies a grid point with the fault axes projected away,
// which is what a faulted row and its healthy baseline share.
type degradeKey struct {
	Pattern  string
	Topology string
	Mode     string
	Seed     uint64
	Rate     float64
	Workload string
}

func keyOf(p Point) degradeKey {
	return degradeKey{
		Pattern: p.Pattern, Topology: p.Topology.String(), Mode: p.Mode.String(),
		Seed: p.Seed, Rate: p.Rate, Workload: p.Workload,
	}
}

// Degrade expands and runs the faulted scenario and its fault-free
// baseline, and joins the results per point. The scenario must schedule
// faults or arm recovery — a degradation sweep of a healthy network is a
// no-op by construction.
func Degrade(sc *Scenario, opts RunOpts) ([]DegradeRow, error) {
	if len(sc.FaultWindows) == 0 {
		return nil, fmt.Errorf("scenario %s: degrade needs a [faults] table with fault windows", sc.Name)
	}
	base := *sc
	base.FaultWindows = nil
	base.RetryTimeouts = []sim.Cycle{0}
	base.MaxRetriesAxis = []int{0}
	base.WatchdogCycles = 0
	fg, err := sc.Grid()
	if err != nil {
		return nil, err
	}
	bg, err := base.Grid()
	if err != nil {
		return nil, err
	}
	fres := fg.Run(opts)
	bres := bg.Run(opts)
	baseBy := make(map[degradeKey]Result, len(bres))
	for _, r := range bres {
		baseBy[keyOf(r.Point)] = r
	}
	rows := make([]DegradeRow, len(fres))
	for i, r := range fres {
		row := DegradeRow{
			Point:             r.Point,
			DeliveredFraction: r.DeliveredFraction,
			Retries:           r.Retries,
			Drops:             r.Drops,
			VictimSlowdown:    r.VictimSlowdown,
			MeanLatency:       r.MeanLatency,
			P99Latency:        r.P99Latency,
			Error:             r.Error,
		}
		if b, ok := baseBy[keyOf(r.Point)]; ok && b.Error == "" {
			row.BaseMeanLatency = b.MeanLatency
			row.BaseP99Latency = b.P99Latency
			if b.MeanLatency > 0 {
				row.MeanInflation = r.MeanLatency / b.MeanLatency
			}
			if b.P99Latency > 0 {
				row.P99Inflation = r.P99Latency / b.P99Latency
			}
		}
		rows[i] = row
	}
	return rows, nil
}

// DegradeCSV renders degradation rows, one per faulted grid point.
func DegradeCSV(name string, rows []DegradeRow) string {
	var b strings.Builder
	b.WriteString("scenario,pattern,topology,qos,seed,rate,retry_timeout,max_retries," +
		"delivered_fraction,retries,drops,victim_slowdown," +
		"mean_latency_cycles,base_mean_latency_cycles,mean_inflation," +
		"p99_latency_cycles,base_p99_latency_cycles,p99_inflation,error\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%s,%s,%d,%.4f,%d,%d,%.6f,%d,%d,%.3f,%.3f,%.3f,%.3f,%.0f,%.0f,%.3f,%s\n",
			csvEscape(name), csvEscape(r.Pattern), csvEscape(r.Topology.String()), csvEscape(r.Mode.String()),
			r.Seed, r.Rate, r.RetryTimeout, r.MaxRetries,
			r.DeliveredFraction, r.Retries, r.Drops, r.VictimSlowdown,
			r.MeanLatency, r.BaseMeanLatency, r.MeanInflation,
			r.P99Latency, r.BaseP99Latency, r.P99Inflation, csvEscape(r.Error))
	}
	return b.String()
}

// RenderDegrade prints the degradation table: per-point delivered
// fraction, recovery traffic and latency inflation versus the healthy
// baseline.
func RenderDegrade(name string, rows []DegradeRow) string {
	var b strings.Builder
	title := fmt.Sprintf("Degradation sweep: %s (%d faulted cells vs healthy baseline)", name, len(rows))
	b.WriteString(title + "\n" + strings.Repeat("-", len(title)) + "\n")
	fmt.Fprintf(&b, "%-14s %-9s %-14s %8s %8s %8s %8s %8s %9s %9s %9s %8s\n",
		"pattern", "topology", "qos", "seed", "rto", "dlv", "retries", "drops", "latency", "p99-infl", "mean-infl", "vslow")
	for _, r := range rows {
		if r.Error != "" {
			fmt.Fprintf(&b, "%-14s %-9s %-14s %8d %8d  FAILED: %s\n",
				r.Pattern, r.Topology, r.Mode, r.Seed, r.RetryTimeout, r.Error)
			continue
		}
		vslow := "-"
		if r.VictimSlowdown > 0 {
			vslow = fmt.Sprintf("%.2fx", r.VictimSlowdown)
		}
		fmt.Fprintf(&b, "%-14s %-9s %-14s %8d %8d %7.2f%% %8d %8d %9.1f %8.2fx %8.2fx %8s\n",
			r.Pattern, r.Topology, r.Mode, r.Seed, r.RetryTimeout,
			100*r.DeliveredFraction, r.Retries, r.Drops,
			r.MeanLatency, r.P99Inflation, r.MeanInflation, vslow)
	}
	return b.String()
}
