package scenario

import (
	"fmt"
	"os"
	"strings"
	"time"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/telemetry"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Scenario is one declarative workload description, decoded from a JSON
// or TOML file (see the package documentation for the file format). The
// list-valued fields are sweep axes: the expanded grid is their cross
// product, one independent simulation cell per point.
type Scenario struct {
	// Name labels output rows; defaults to the file's base name.
	Name string
	// Patterns are synthetic-pattern sweep values (traffic.PatternNames).
	// Mutually exclusive with Flows.
	Patterns []string
	// Topologies and Modes are the topology × QoS sweep axes.
	Topologies []topology.Kind
	Modes      []qos.Mode
	// Rates is the per-injector offered-load axis (flits/cycle).
	Rates []float64
	// Seeds is the RNG-seed axis.
	Seeds []uint64
	// Nodes is the column height (default topology.ColumnNodes).
	Nodes int
	// Warmup and Measure are the per-cell schedule in cycles.
	Warmup  int
	Measure int
	// StopAt, when positive, halts injection at that cycle (a finite
	// horizon inside the measurement window).
	StopAt sim.Cycle
	// RequestFraction is the 1-flit-request share of generated packets.
	RequestFraction float64
	// Burst, when enabled, applies MMPP-style on/off modulation to every
	// injector (traffic.Burst).
	Burst traffic.Burst
	// HotspotWeights configures the "hotspot" pattern's per-node
	// destination weights (nil = all load on node 0).
	HotspotWeights []float64
	// Flows, when non-empty, replaces the pattern×rate product with an
	// explicit injector list (the adversarial-workload shape).
	Flows []FlowSpec

	// The [workload] table: the workload-class axes. WorkloadModes fans
	// cells out over injection regimes — "open" (the stochastic
	// generators; the default) and "closed" (request–reply clients with
	// a bounded outstanding window and geometric think time, driven by
	// internal/workload). Closed cells additionally fan out over the
	// Outstanding × ThinkTimes axes and use the pattern axis for request
	// destinations; the rate axis does not apply to them (demand is
	// feedback-driven).
	WorkloadModes []string
	Outstanding   []int
	ThinkTimes    []float64
	// RequestFlits/ReplyFlits select the closed-loop transaction shape
	// (0 = the defaults: 1-flit requests, 4-flit replies; setting 4/1
	// models write-shaped traffic whose bandwidth rides the request
	// path).
	RequestFlits int
	ReplyFlits   int
	// Traces is the trace-replay axis: each entry names a recorded
	// binary trace (relative paths resolve against the scenario file's
	// directory) replayed verbatim as the workload of trace × topology ×
	// qos × seed cells. Mutually exclusive with patterns/rates/flows and
	// the mode axes.
	Traces []string
	// baseDir anchors relative trace paths (set by Resolve from the root
	// file layer; empty for in-memory scenarios, which resolve against
	// the process CWD).
	baseDir string

	// The [faults] table: hardware fault schedules and end-to-end
	// recovery (internal/network's fault subsystem). FaultWindows are
	// installed on every cell; RetryTimeouts and MaxRetriesAxis are sweep
	// axes (the grid fans out over retry_timeout × max_retries), and
	// WatchdogCycles arms the no-forward-progress watchdog per cell.
	// Open-loop cells only.
	FaultWindows   []noc.FaultWindow
	RetryTimeouts  []sim.Cycle
	MaxRetriesAxis []int
	WatchdogCycles sim.Cycle

	// QoS parameter overrides; zero values keep the defaults.
	FrameCycles   sim.Cycle
	WindowPackets int
	QuantumFlits  int
	MarginClasses int

	// The [run] table: durable-execution knobs. None of them changes
	// results — they bound and retry the execution of cells, so they stay
	// out of cache keys. Deadline is the per-attempt wall-clock budget of
	// every cell (0 = unlimited); Retries the per-cell failure budget
	// (0 = inherit the runner default of one retry, -1 = no retries —
	// decoded from `retries = 0`); Backoff the base delay before a retry
	// (exponential per extra attempt). Cache asks the sweep to memoize
	// rows through the content-addressed result store (noctool's -cache
	// flag overrides).
	Deadline time.Duration
	Retries  int
	Backoff  time.Duration
	Cache    bool

	// The [telemetry] table: deterministic in-run probes. Display-only —
	// a probed cell's rows are bit-identical to an unprobed cell's, so
	// like [run] the knobs stay out of cache keys (cache-served rows
	// simply carry no timeline; see cache.go).
	Telemetry *Telemetry
}

// Telemetry configures the in-run probe attachment of every visible
// grid cell (internal/telemetry): a Sampler fires every Interval cycles
// and records the selected series. TopFlows bounds how many flows the
// JSON/table emitters print (0 = default 8); Series empty selects all.
type Telemetry struct {
	Interval sim.Cycle
	Series   []string
	TopFlows int
}

// FlowSpec is one explicitly-declared injector.
type FlowSpec struct {
	// Node hosts the injector; Injector is its position (0 = terminal
	// port, 1..7 the MECS row inputs).
	Node     int
	Injector int
	// Rate is the injector's offered load in flits/cycle.
	Rate float64
	// Dest is the fixed destination node (default traffic.HotspotNode).
	Dest int
	// StopAt optionally overrides the scenario-level injection stop.
	StopAt sim.Cycle
	// Role optionally tags the flow "victim" or "aggressor". When any
	// flow is a victim, every result row reports the victims'
	// mean-latency slowdown versus a hidden victim-only reference cell.
	Role string
}

// Load reads a scenario from a .json or .toml file, or — when the
// argument names no existing file — from the built-in scenario registry
// (see Builtin). The result is validated and defaulted. Load is a
// facade over Resolve with a single file layer; callers wanting
// includes-plus-profile-plus-override composition build the layer list
// themselves (cmd/noctool does).
func Load(pathOrName string) (*Scenario, error) {
	if _, err := os.Stat(pathOrName); err != nil {
		if os.IsNotExist(err) && !strings.ContainsAny(pathOrName, "/\\.") {
			return Builtin(pathOrName)
		}
	}
	sc, _, err := Resolve(FileLayer(pathOrName))
	return sc, err
}

// Parse decodes scenario bytes in the given format (".json" or ".toml")
// and validates the result: a facade over Resolve with a single
// in-memory blob layer (no include chain, no profile selection).
func Parse(blob []byte, ext string) (*Scenario, error) {
	sc, _, err := Resolve(BlobLayer("", blob, ext))
	return sc, err
}

// scenarioKeys lists every accepted top-level key (singular/plural pairs
// both work for the sweep axes); unknown keys are rejected so a typo
// cannot silently drop an axis.
var scenarioKeys = map[string]bool{
	"name": true, "pattern": true, "patterns": true,
	"topology": true, "topologies": true, "qos": true,
	"rate": true, "rates": true, "seed": true, "seeds": true,
	"nodes": true, "warmup": true, "measure": true, "stop_at": true,
	"request_fraction": true, "burst": true, "hotspot_weights": true,
	"flows": true, "frame_cycles": true, "window_packets": true,
	"quantum_flits": true, "margin_classes": true, "workload": true,
	"faults": true, "run": true, "telemetry": true,
}

func fromRaw(raw map[string]any, res *Resolution) (*Scenario, error) {
	for k := range raw {
		if !scenarioKeys[k] {
			return nil, perr(res, k, "%w %q", ErrUnknownKey, k)
		}
	}
	d := decoder{raw: raw, res: res}
	sc := &Scenario{
		Name:            d.str("name", ""),
		Patterns:        d.strList("pattern", "patterns"),
		Rates:           d.floatList("rate", "rates"),
		Nodes:           d.int("nodes", topology.ColumnNodes),
		Warmup:          d.int("warmup", 20_000),
		Measure:         d.int("measure", 100_000),
		StopAt:          sim.Cycle(d.int("stop_at", 0)),
		RequestFraction: d.float("request_fraction", traffic.DefaultRequestFraction),
		HotspotWeights:  d.floatList("hotspot_weights", ""),
		FrameCycles:     sim.Cycle(d.int("frame_cycles", 0)),
		WindowPackets:   d.int("window_packets", 0),
		QuantumFlits:    d.int("quantum_flits", 0),
		MarginClasses:   d.int("margin_classes", 0),
	}
	for _, s := range d.intList("seed", "seeds") {
		sc.Seeds = append(sc.Seeds, uint64(s))
	}
	if b, ok := raw["burst"]; ok {
		bm, ok := b.(map[string]any)
		if !ok {
			return nil, perr(res, "burst", "burst must be a table/object")
		}
		bd := decoder{raw: bm, res: res, prefix: "burst"}
		sc.Burst = traffic.Burst{MeanOn: bd.float("mean_on", 0), MeanOff: bd.float("mean_off", 0)}
		bd.allowOnly("mean_on", "mean_off")
		if bd.err != nil {
			return nil, bd.err
		}
	}
	if wl, ok := raw["workload"]; ok {
		wm, ok := wl.(map[string]any)
		if !ok {
			return nil, perr(res, "workload", "workload must be a table/object")
		}
		wd := decoder{raw: wm, res: res, prefix: "workload"}
		sc.WorkloadModes = wd.strList("mode", "modes")
		for _, o := range wd.intList("outstanding", "") {
			sc.Outstanding = append(sc.Outstanding, int(o))
		}
		sc.ThinkTimes = wd.floatList("think_time", "think_times")
		sc.RequestFlits = wd.int("request_flits", 0)
		sc.ReplyFlits = wd.int("reply_flits", 0)
		sc.Traces = wd.strList("trace", "traces")
		wd.allowOnly("mode", "modes", "outstanding", "think_time", "think_times",
			"request_flits", "reply_flits", "trace", "traces")
		if wd.err != nil {
			return nil, wd.err
		}
	}
	if rv, ok := raw["run"]; ok {
		rm, ok := rv.(map[string]any)
		if !ok {
			return nil, perr(res, "run", "run must be a table/object")
		}
		rd := decoder{raw: rm, res: res, prefix: "run"}
		if _, set := rm["deadline_ms"]; set {
			ms := rd.int("deadline_ms", 0)
			if ms <= 0 && rd.err == nil {
				return nil, perr(res, "run.deadline_ms", "run: deadline_ms %d must be positive (omit the key for no deadline)", ms)
			}
			sc.Deadline = time.Duration(ms) * time.Millisecond
		}
		if _, set := rm["retries"]; set {
			r := rd.int("retries", 0)
			if r < 0 && rd.err == nil {
				return nil, perr(res, "run.retries", "run: negative retries %d", r)
			}
			if r == 0 {
				sc.Retries = -1 // explicit zero: no retries (0 means "default")
			} else {
				sc.Retries = r
			}
		}
		if _, set := rm["backoff_ms"]; set {
			ms := rd.int("backoff_ms", 0)
			if ms < 0 && rd.err == nil {
				return nil, perr(res, "run.backoff_ms", "run: negative backoff_ms %d", ms)
			}
			sc.Backoff = time.Duration(ms) * time.Millisecond
		}
		sc.Cache = rd.boolean("cache", false)
		rd.allowOnly("deadline_ms", "retries", "backoff_ms", "cache")
		if rd.err != nil {
			return nil, rd.err
		}
	}
	if tv, ok := raw["telemetry"]; ok {
		tm, ok := tv.(map[string]any)
		if !ok {
			return nil, perr(res, "telemetry", "telemetry must be a table/object")
		}
		td := decoder{raw: tm, res: res, prefix: "telemetry"}
		sc.Telemetry = &Telemetry{
			Interval: sim.Cycle(td.int("interval", 0)),
			Series:   td.strList("series", ""),
			TopFlows: td.int("top_flows", 0),
		}
		td.allowOnly("interval", "series", "top_flows")
		if td.err != nil {
			return nil, td.err
		}
	}
	if fv, ok := raw["faults"]; ok {
		fm, ok := fv.(map[string]any)
		if !ok {
			return nil, perr(res, "faults", "faults must be a table/object")
		}
		fd := decoder{raw: fm, res: res, prefix: "faults"}
		for _, t := range fd.intList("retry_timeout", "retry_timeouts") {
			sc.RetryTimeouts = append(sc.RetryTimeouts, sim.Cycle(t))
		}
		for _, m := range fd.intList("max_retries", "") {
			sc.MaxRetriesAxis = append(sc.MaxRetriesAxis, int(m))
		}
		sc.WatchdogCycles = sim.Cycle(fd.int("watchdog_cycles", 0))
		fd.allowOnly("link", "router", "retry_timeout", "retry_timeouts",
			"max_retries", "watchdog_cycles")
		if fd.err != nil {
			return nil, fd.err
		}
		windows, err := faultWindows(fm, res)
		if err != nil {
			return nil, err
		}
		sc.FaultWindows = windows
	}
	topoKey := "topology"
	if _, ok := raw["topologies"]; ok {
		topoKey = "topologies"
	}
	for _, name := range d.strList("topology", "topologies") {
		kinds, err := topologyByName(name)
		if err != nil {
			return nil, locate(res, topoKey, err)
		}
		sc.Topologies = append(sc.Topologies, kinds...)
	}
	for _, name := range d.strList("qos", "") {
		modes, err := modeByName(name)
		if err != nil {
			return nil, locate(res, "qos", err)
		}
		sc.Modes = append(sc.Modes, modes...)
	}
	if fl, ok := raw["flows"]; ok {
		list, ok := fl.([]any)
		if !ok {
			return nil, perr(res, "flows", "flows must be a list")
		}
		for i, el := range list {
			epath := fmt.Sprintf("flows[%d]", i)
			fm, ok := el.(map[string]any)
			if !ok {
				return nil, perr(res, epath, "%s must be a table/object", epath)
			}
			fd := decoder{raw: fm, res: res, prefix: epath}
			f := FlowSpec{
				Node:     fd.int("node", 0),
				Injector: fd.int("injector", 0),
				Rate:     fd.float("rate", 0),
				StopAt:   sim.Cycle(fd.int("stop_at", 0)),
				Role:     fd.str("role", ""),
			}
			switch dv := fm["dest"].(type) {
			case nil:
				f.Dest = int(traffic.HotspotNode)
			case string:
				if dv != "hotspot" {
					return nil, perr(res, epath+".dest", "%s: dest %q (want a node index or \"hotspot\")", epath, dv)
				}
				f.Dest = int(traffic.HotspotNode)
			default:
				f.Dest = fd.int("dest", 0)
			}
			fd.allowOnly("node", "injector", "rate", "dest", "stop_at", "role")
			if fd.err != nil {
				return nil, fd.err
			}
			sc.Flows = append(sc.Flows, f)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return sc, nil
}

// faultWindows decodes the [[faults.link]] and [[faults.router]] lists
// into fault windows: link entries name a dense output-port index and
// default to transient (permanent = true kills the port for good), router
// entries name a node whose every output stalls for the window.
func faultWindows(fm map[string]any, res *Resolution) ([]noc.FaultWindow, error) {
	var out []noc.FaultWindow
	decode := func(key string, kind noc.FaultKind) error {
		lv, ok := fm[key]
		if !ok {
			return nil
		}
		list, ok := lv.([]any)
		if !ok {
			return perr(res, "faults."+key, "faults.%s must be a list of tables ([[faults.%s]])", key, key)
		}
		for i, el := range list {
			epath := fmt.Sprintf("faults.%s[%d]", key, i)
			wm, ok := el.(map[string]any)
			if !ok {
				return perr(res, epath, "%s must be a table/object", epath)
			}
			wd := decoder{raw: wm, res: res, prefix: epath}
			w := noc.FaultWindow{
				Kind:  kind,
				From:  sim.Cycle(wd.int("from", 0)),
				Until: sim.Cycle(wd.int("until", 0)),
			}
			if kind == noc.FaultRouterStall {
				w.Node = wd.int("node", 0)
				wd.allowOnly("node", "from", "until")
			} else {
				w.Port = wd.int("port", 0)
				if wd.boolean("permanent", false) {
					w.Kind = noc.FaultLinkPermanent
				}
				wd.allowOnly("port", "from", "until", "permanent")
			}
			if wd.err != nil {
				return wd.err
			}
			out = append(out, w)
		}
		return nil
	}
	if err := decode("link", noc.FaultLinkTransient); err != nil {
		return nil, err
	}
	if err := decode("router", noc.FaultRouterStall); err != nil {
		return nil, err
	}
	return out, nil
}

// Validate checks cross-field consistency and applies defaults for the
// axes left unset (all topologies, PVC, seed 42).
func (sc *Scenario) Validate() error {
	if len(sc.Topologies) == 0 {
		sc.Topologies = topology.Kinds()
	}
	if len(sc.Modes) == 0 {
		sc.Modes = []qos.Mode{qos.PVC}
	}
	if len(sc.Seeds) == 0 {
		sc.Seeds = []uint64{42}
	}
	if sc.Nodes < 2 {
		return fmt.Errorf("scenario %s: need at least 2 nodes, got %d", sc.Name, sc.Nodes)
	}
	if sc.Warmup < 0 || sc.Measure <= 0 {
		return fmt.Errorf("scenario %s: schedule warmup %d / measure %d invalid", sc.Name, sc.Warmup, sc.Measure)
	}
	if sc.RequestFraction < 0 || sc.RequestFraction > 1 {
		return fmt.Errorf("scenario %s: request_fraction %v outside [0,1]", sc.Name, sc.RequestFraction)
	}
	if err := sc.Burst.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if err := sc.validateWorkloadAxes(); err != nil {
		return err
	}
	if err := sc.validateFaults(); err != nil {
		return err
	}
	if err := sc.validateTelemetry(); err != nil {
		return err
	}
	if len(sc.Traces) > 0 {
		// Replay cells carry their complete injection stream; the other
		// workload descriptions cannot coexist with them.
		return nil
	}
	if len(sc.Flows) > 0 {
		if len(sc.Patterns) > 0 || len(sc.Rates) > 0 {
			return fmt.Errorf("scenario %s: flows and pattern/rates are mutually exclusive", sc.Name)
		}
		for i, f := range sc.Flows {
			if f.Node < 0 || f.Node >= sc.Nodes {
				return fmt.Errorf("scenario %s: flows[%d] node %d outside column of %d", sc.Name, i, f.Node, sc.Nodes)
			}
			if f.Injector < 0 || f.Injector >= topology.InjectorsPerNode {
				return fmt.Errorf("scenario %s: flows[%d] injector %d outside [0,%d)", sc.Name, i, f.Injector, topology.InjectorsPerNode)
			}
			if f.Dest < 0 || f.Dest >= sc.Nodes {
				return fmt.Errorf("scenario %s: flows[%d] dest %d outside column of %d", sc.Name, i, f.Dest, sc.Nodes)
			}
			if f.Rate <= 0 || f.Rate > 1 {
				return fmt.Errorf("scenario %s: flows[%d] rate %v outside (0,1]", sc.Name, i, f.Rate)
			}
			switch f.Role {
			case "", "victim", "aggressor":
			default:
				return fmt.Errorf("scenario %s: flows[%d] role %q (want victim or aggressor)", sc.Name, i, f.Role)
			}
		}
	} else {
		if len(sc.Patterns) == 0 {
			sc.Patterns = []string{"uniform"}
		}
		if sc.hasMode("open") {
			if len(sc.Rates) == 0 {
				return fmt.Errorf("scenario %s: empty sweep — no rates and no flows", sc.Name)
			}
		} else if len(sc.Rates) > 0 {
			return fmt.Errorf("scenario %s: rates set but the workload mode axis has no open cells", sc.Name)
		}
		for _, r := range sc.Rates {
			if r <= 0 || r > 1 {
				return fmt.Errorf("scenario %s: rate %v outside (0,1]", sc.Name, r)
			}
		}
		for _, name := range sc.Patterns {
			p, err := sc.pattern(name)
			if err != nil {
				return fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
			// Surface population incompatibilities (non-power-of-two
			// columns under bit permutations, weight-vector mismatches)
			// at load time rather than mid-grid.
			if len(sc.Rates) > 0 {
				if _, err := sc.workload(name, sc.Rates[0]); err != nil {
					return fmt.Errorf("scenario %s: %w", sc.Name, err)
				}
			} else {
				for node := 0; node < sc.Nodes; node++ {
					if _, err := p.DestFor(noc.NodeID(node), sc.Nodes); err != nil {
						return fmt.Errorf("scenario %s: %w", sc.Name, err)
					}
				}
			}
		}
	}
	for _, s := range specsOf(sc) {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}
	return nil
}

// rejectOpenOnlyFields errors when open-loop-only shaping fields are set
// in a scenario with no open cells (closed-only mode axis, or the trace
// axis): burst, stop_at and request_fraction only shape the stochastic
// generators, and silently ignoring them would break the "typos fail
// loudly" contract. kind names the workload class for the message.
func (sc *Scenario) rejectOpenOnlyFields(kind string) error {
	if sc.Burst.Enabled() {
		return fmt.Errorf("scenario %s: burst only shapes open-loop injection; a %s scenario cannot set it", sc.Name, kind)
	}
	if sc.StopAt > 0 {
		return fmt.Errorf("scenario %s: stop_at only bounds open-loop injection; a %s scenario cannot set it", sc.Name, kind)
	}
	if sc.RequestFraction != traffic.DefaultRequestFraction {
		return fmt.Errorf("scenario %s: request_fraction only shapes open-loop packet mix; a %s scenario cannot set it (closed cells use request_flits/reply_flits)", sc.Name, kind)
	}
	return nil
}

// hasMode reports whether the workload mode axis includes the given mode.
func (sc *Scenario) hasMode(mode string) bool {
	for _, m := range sc.WorkloadModes {
		if m == mode {
			return true
		}
	}
	return false
}

// validateWorkloadAxes defaults and checks the [workload] table: the mode
// axis (default open-only), the closed-cell axes, and the trace axis's
// exclusivity with every other workload description.
func (sc *Scenario) validateWorkloadAxes() error {
	if len(sc.Traces) > 0 {
		if len(sc.WorkloadModes) > 0 {
			return fmt.Errorf("scenario %s: the trace axis and the workload mode axis are mutually exclusive", sc.Name)
		}
		if len(sc.Patterns) > 0 || len(sc.Rates) > 0 || len(sc.Flows) > 0 {
			return fmt.Errorf("scenario %s: traces carry their complete injection stream; patterns/rates/flows cannot be set with them", sc.Name)
		}
		for _, tr := range sc.Traces {
			if tr == "" {
				return fmt.Errorf("scenario %s: empty trace path", sc.Name)
			}
		}
		if err := sc.rejectOpenOnlyFields("trace"); err != nil {
			return err
		}
		return nil
	}
	if len(sc.WorkloadModes) == 0 {
		sc.WorkloadModes = []string{"open"}
	}
	if !sc.hasMode("open") {
		// No open cells anywhere: the open-loop shaping fields would be
		// silently ignored, so reject them loudly like the other
		// cross-axis conflicts.
		if err := sc.rejectOpenOnlyFields("closed-only"); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for _, m := range sc.WorkloadModes {
		if m != "open" && m != "closed" {
			return fmt.Errorf("scenario %s: unknown workload mode %q (want open, closed)", sc.Name, m)
		}
		if seen[m] {
			return fmt.Errorf("scenario %s: workload mode %q repeated", sc.Name, m)
		}
		seen[m] = true
	}
	if sc.hasMode("closed") && len(sc.Flows) > 0 {
		return fmt.Errorf("scenario %s: closed-loop cells use the pattern axis; flows cannot be set with them", sc.Name)
	}
	if !sc.hasMode("closed") && (len(sc.Outstanding) > 0 || len(sc.ThinkTimes) > 0) {
		return fmt.Errorf("scenario %s: outstanding/think_time set but the workload mode axis has no closed cells", sc.Name)
	}
	if sc.hasMode("closed") {
		if len(sc.Outstanding) == 0 {
			sc.Outstanding = []int{4}
		}
		if len(sc.ThinkTimes) == 0 {
			sc.ThinkTimes = []float64{0}
		}
		for _, o := range sc.Outstanding {
			if o < 1 {
				return fmt.Errorf("scenario %s: outstanding %d below 1", sc.Name, o)
			}
		}
		for _, th := range sc.ThinkTimes {
			if th < 0 {
				return fmt.Errorf("scenario %s: think_time %v negative", sc.Name, th)
			}
		}
		for _, fl := range []int{sc.RequestFlits, sc.ReplyFlits} {
			if fl != 0 && fl != noc.RequestFlits && fl != noc.ReplyFlits {
				return fmt.Errorf("scenario %s: %d-flit packets not modeled (want %d or %d)",
					sc.Name, fl, noc.RequestFlits, noc.ReplyFlits)
			}
		}
	} else if sc.RequestFlits != 0 || sc.ReplyFlits != 0 {
		return fmt.Errorf("scenario %s: request_flits/reply_flits set but the workload mode axis has no closed cells", sc.Name)
	}
	return nil
}

// validateFaults defaults and checks the [faults] table: windows against
// the smallest topology on the axis, non-negative recovery axes (defaults
// retry_timeout 0 = recovery off; max_retries 3 when recovery is armed),
// and exclusivity with the workload classes the fault subsystem does not
// model (closed-loop clients, trace replay).
// validateTelemetry checks the [telemetry] table: the interval is
// required and positive, the series names must be known, and top_flows
// cannot be negative. All knobs are display-only (see cache.go).
func (sc *Scenario) validateTelemetry() error {
	t := sc.Telemetry
	if t == nil {
		return nil
	}
	if t.Interval <= 0 {
		return fmt.Errorf("scenario %s: telemetry interval %d must be positive", sc.Name, t.Interval)
	}
	if t.TopFlows < 0 {
		return fmt.Errorf("scenario %s: negative telemetry top_flows %d", sc.Name, t.TopFlows)
	}
	for _, s := range t.Series {
		if !telemetry.ValidSeries(s) {
			return fmt.Errorf("scenario %s: unknown telemetry series %q (known: %s)",
				sc.Name, s, strings.Join(telemetry.KnownSeries(), ", "))
		}
	}
	return nil
}

func (sc *Scenario) validateFaults() error {
	if len(sc.RetryTimeouts) == 0 {
		sc.RetryTimeouts = []sim.Cycle{0}
	}
	if len(sc.MaxRetriesAxis) == 0 {
		sc.MaxRetriesAxis = []int{0}
		for _, t := range sc.RetryTimeouts {
			if t > 0 {
				sc.MaxRetriesAxis = []int{3}
				break
			}
		}
	}
	for _, t := range sc.RetryTimeouts {
		if t < 0 {
			return fmt.Errorf("scenario %s: negative retry_timeout %d", sc.Name, t)
		}
	}
	for _, m := range sc.MaxRetriesAxis {
		if m < 0 {
			return fmt.Errorf("scenario %s: negative max_retries %d", sc.Name, m)
		}
	}
	if sc.WatchdogCycles < 0 {
		return fmt.Errorf("scenario %s: negative watchdog_cycles %d", sc.Name, sc.WatchdogCycles)
	}
	if !sc.faultsEnabled() {
		return nil
	}
	if len(sc.Traces) > 0 || sc.hasMode("closed") {
		return fmt.Errorf("scenario %s: the [faults] table only applies to open-loop cells (no traces or closed workload mode)", sc.Name)
	}
	for i, w := range sc.FaultWindows {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("scenario %s: faults window %d: %w", sc.Name, i, err)
		}
		if w.Kind == noc.FaultRouterStall {
			if w.Node >= sc.Nodes {
				return fmt.Errorf("scenario %s: faults window %d stalls node %d outside column of %d", sc.Name, i, w.Node, sc.Nodes)
			}
			continue
		}
		// The port index must exist on every topology of the axis, so the
		// grid cannot fail mid-run on the smallest port count.
		for _, kind := range sc.Topologies {
			if ports := topology.NumPorts(kind, sc.Nodes); w.Port >= ports {
				return fmt.Errorf("scenario %s: faults window %d names port %d, topology %v has %d",
					sc.Name, i, w.Port, kind, ports)
			}
		}
	}
	return nil
}

// faultsEnabled reports whether the scenario schedules faults, arms
// recovery, or arms the watchdog on its cells.
func (sc *Scenario) faultsEnabled() bool {
	if len(sc.FaultWindows) > 0 || sc.WatchdogCycles > 0 {
		return true
	}
	for _, t := range sc.RetryTimeouts {
		if t > 0 {
			return true
		}
	}
	return false
}

// victimFlows lists the flow IDs of flows declared role = "victim".
func (sc *Scenario) victimFlows() []noc.FlowID {
	var out []noc.FlowID
	for _, f := range sc.Flows {
		if f.Role == "victim" {
			out = append(out, traffic.FlowOf(noc.NodeID(f.Node), f.Injector))
		}
	}
	return out
}

// specsOf samples one representative spec set for validation: the first
// pattern at the highest rate (peak burst demand scales with rate), or
// the explicit flows.
func specsOf(sc *Scenario) []traffic.Spec {
	if len(sc.Flows) > 0 {
		return sc.flowWorkload().Specs
	}
	maxRate := 0.0
	for _, r := range sc.Rates {
		if r > maxRate {
			maxRate = r
		}
	}
	w, err := sc.workload(sc.Patterns[0], maxRate)
	if err != nil {
		return nil // already reported by Validate's pattern probe
	}
	return w.Specs
}

// pattern resolves a pattern name, threading the scenario's hotspot
// weights into the hotspot pattern.
func (sc *Scenario) pattern(name string) (traffic.Pattern, error) {
	if name == "hotspot" && sc.HotspotWeights != nil {
		return traffic.HotspotTraffic(sc.HotspotWeights), nil
	}
	return traffic.PatternByName(name)
}

// workload builds the synthetic workload of one (pattern, rate) point.
func (sc *Scenario) workload(patternName string, rate float64) (traffic.Workload, error) {
	p, err := sc.pattern(patternName)
	if err != nil {
		return traffic.Workload{}, err
	}
	w, err := traffic.Synthetic(p, sc.Nodes, rate, sc.Burst)
	if err != nil {
		return traffic.Workload{}, err
	}
	if sc.RequestFraction != traffic.DefaultRequestFraction {
		for i := range w.Specs {
			w.Specs[i].RequestFraction = sc.RequestFraction
		}
	}
	if sc.StopAt > 0 {
		w = w.WithStop(sc.StopAt)
	}
	return w, nil
}

// flowWorkload builds the workload of an explicit-flows scenario.
func (sc *Scenario) flowWorkload() traffic.Workload { return sc.flowWorkloadOf(sc.Flows) }

// victimWorkload builds the victim-only workload of the hidden reference
// cells the victim-slowdown metric compares against. The flow population
// (Nodes) is unchanged, so victim flow IDs and QoS tables line up with
// the full scenario's.
func (sc *Scenario) victimWorkload() traffic.Workload {
	var victims []FlowSpec
	for _, f := range sc.Flows {
		if f.Role == "victim" {
			victims = append(victims, f)
		}
	}
	return sc.flowWorkloadOf(victims)
}

func (sc *Scenario) flowWorkloadOf(flows []FlowSpec) traffic.Workload {
	w := traffic.Workload{Name: sc.Name, Nodes: sc.Nodes}
	for _, f := range flows {
		stop := f.StopAt
		if stop == 0 {
			stop = sc.StopAt
		}
		w.Specs = append(w.Specs, traffic.Spec{
			Flow:            traffic.FlowOf(noc.NodeID(f.Node), f.Injector),
			Node:            noc.NodeID(f.Node),
			Rate:            f.Rate,
			RequestFraction: sc.RequestFraction,
			Dest:            traffic.FixedDest(noc.NodeID(f.Dest)),
			Burst:           sc.Burst,
			StopAt:          stop,
		})
	}
	return w
}

// qosConfig assembles the QoS configuration of one grid point.
func (sc *Scenario) qosConfig(mode qos.Mode, flows int) qos.Config {
	cfg := qos.DefaultConfig(flows)
	cfg.Mode = mode
	if sc.FrameCycles > 0 {
		cfg.FrameCycles = sc.FrameCycles
	}
	if sc.WindowPackets > 0 {
		cfg.WindowPackets = sc.WindowPackets
	}
	if sc.QuantumFlits > 0 {
		cfg.QuantumFlits = sc.QuantumFlits
	}
	if sc.MarginClasses > 0 {
		cfg.MarginClasses = sc.MarginClasses
	}
	return cfg
}

// topologyByName maps a scenario topology name ("all" fans out;
// single names resolve through topology.KindByName).
func topologyByName(name string) ([]topology.Kind, error) {
	if name == "all" {
		return topology.Kinds(), nil
	}
	k, err := topology.KindByName(name)
	if err != nil {
		return nil, err
	}
	return []topology.Kind{k}, nil
}

// modeByName maps a scenario QoS name ("all" fans out; single names
// resolve through qos.ModeByName).
func modeByName(name string) ([]qos.Mode, error) {
	if name == "all" {
		return qos.Modes(), nil
	}
	m, err := qos.ModeByName(name)
	if err != nil {
		return nil, err
	}
	return []qos.Mode{m}, nil
}
