package scenario

import (
	"reflect"
	"strings"
	"testing"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
)

func TestParseTOMLFaults(t *testing.T) {
	sc, err := Parse([]byte(`
name = "faulted"
topology = "mesh_x1"
rate = 0.02
stop_at = 6000
warmup = 0
measure = 8000

[faults]
retry_timeouts = [0, 400]
max_retries = 6
watchdog_cycles = 50_000

[[faults.link]]
port = 3
from = 1000
until = 2000

[[faults.link]]
port = 4
from = 2500
permanent = true

[[faults.router]]
node = 2
from = 3000
until = 3500
`), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	want := []noc.FaultWindow{
		{Kind: noc.FaultLinkTransient, Port: 3, From: 1000, Until: 2000},
		{Kind: noc.FaultLinkPermanent, Port: 4, From: 2500},
		{Kind: noc.FaultRouterStall, Node: 2, From: 3000, Until: 3500},
	}
	if !reflect.DeepEqual(sc.FaultWindows, want) {
		t.Errorf("windows: %+v, want %+v", sc.FaultWindows, want)
	}
	if !reflect.DeepEqual(sc.RetryTimeouts, []sim.Cycle{0, 400}) {
		t.Errorf("retry timeouts: %v", sc.RetryTimeouts)
	}
	if !reflect.DeepEqual(sc.MaxRetriesAxis, []int{6}) || sc.WatchdogCycles != 50_000 {
		t.Errorf("max retries %v / watchdog %d", sc.MaxRetriesAxis, sc.WatchdogCycles)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	// 1 pattern × 1 topology × 1 mode × 1 seed × 1 rate × 2 retry timeouts.
	if g.Size() != 2 {
		t.Fatalf("grid size %d, want 2", g.Size())
	}
	if g.Points[0].RetryTimeout != 0 || g.Points[1].RetryTimeout != 400 {
		t.Errorf("retry axis points: %+v", g.Points)
	}
	for i := range g.cells {
		cfg := g.cells[i].Config
		if len(cfg.Faults.Windows) != 3 || cfg.WatchdogCycles != 50_000 || cfg.Faults.MaxRetries != 6 {
			t.Errorf("cell %d fault config: %+v wd=%d", i, cfg.Faults, cfg.WatchdogCycles)
		}
	}
	results := g.Run(RunOpts{Workers: 2})
	for i, r := range results {
		if r.Error != "" {
			t.Fatalf("row %d failed: %s", i, r.Error)
		}
		if r.Delivered == 0 || r.DeliveredFraction <= 0 || r.DeliveredFraction > 1 {
			t.Errorf("row %d delivered %d fraction %v", i, r.Delivered, r.DeliveredFraction)
		}
	}
}

// TestScenarioFaultAxesDefault pins that a scenario without a [faults]
// table expands to exactly the same cell layout as before the fault axes
// existed: defaulted axes contribute one iteration with zero values.
func TestScenarioFaultAxesDefault(t *testing.T) {
	sc, err := Parse([]byte(`{"rates":[0.02,0.05],"topologies":["mecs"],"seeds":[1,2]}`), ".json")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 4 || len(g.refCells) != 0 {
		t.Fatalf("grid %d cells, %d ref cells; want 4, 0", g.Size(), len(g.refCells))
	}
	for i := range g.cells {
		if g.cells[i].Config.Faults.Enabled() || g.cells[i].Config.WatchdogCycles != 0 {
			t.Errorf("cell %d carries fault config: %+v", i, g.cells[i].Config.Faults)
		}
		if g.Points[i].RetryTimeout != 0 || g.Points[i].MaxRetries != 0 {
			t.Errorf("point %d carries recovery axes: %+v", i, g.Points[i])
		}
	}
}

func TestScenarioFaultValidation(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown faults key", "rate = 0.05\n[faults]\nbogus = 1\n"},
		{"negative retry timeout", "rate = 0.05\n[faults]\nretry_timeout = -1\n"},
		{"negative max retries", "rate = 0.05\n[faults]\nretry_timeout = 100\nmax_retries = -2\n"},
		{"port out of range", "rate = 0.05\ntopology = \"mesh_x1\"\n[[faults.link]]\nport = 99\nfrom = 10\nuntil = 20\n"},
		{"node out of range", "rate = 0.05\n[[faults.router]]\nnode = 64\nfrom = 10\nuntil = 20\n"},
		{"unbounded transient", "rate = 0.05\n[[faults.link]]\nport = 1\nfrom = 10\n"},
		{"permanent with until", "rate = 0.05\n[[faults.link]]\nport = 1\nfrom = 10\nuntil = 20\npermanent = true\n"},
		{"empty window", "rate = 0.05\n[[faults.link]]\nport = 1\nfrom = 20\nuntil = 20\n"},
		{"link window extra key", "rate = 0.05\n[[faults.link]]\nport = 1\nfrom = 10\nuntil = 20\nnode = 2\n"},
		{"router window permanent key", "rate = 0.05\n[[faults.router]]\nnode = 1\nfrom = 10\nuntil = 20\npermanent = true\n"},
		{"faults with closed cells", "[workload]\nmode = \"closed\"\n[faults]\nretry_timeout = 500\n"},
		{"faults with traces", "[workload]\ntrace = \"x.trace\"\n[faults]\nretry_timeout = 500\n"},
		{"windows not a list", "rate = 0.05\n[faults]\nlink = 3\n"},
		{"bad flow role", "[[flows]]\nnode = 1\nrate = 0.1\nrole = \"bystander\"\n"},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.src), ".toml"); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestVictimSlowdown checks the aggressor/victim machinery end to end:
// hidden victim-only reference cells stay hidden, the slowdown column is
// populated, and the whole pipeline is deterministic across worker counts.
func TestVictimSlowdown(t *testing.T) {
	sc, err := Parse([]byte(`
name = "dos"
topology = "mesh_x1"
qos = ["pvc", "no-qos"]
warmup = 500
measure = 4000

[[flows]]
node = 7
rate = 0.05
role = "victim"

[[flows]]
node = 1
rate = 0.5
role = "aggressor"

[[flows]]
node = 2
rate = 0.5
role = "aggressor"
`), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 || len(g.refCells) != 2 {
		t.Fatalf("grid %d cells, %d ref cells; want 2, 2", g.Size(), len(g.refCells))
	}
	results := g.Run(RunOpts{Workers: 1})
	if len(results) != 2 {
		t.Fatalf("got %d result rows, want 2 (reference cells must stay hidden)", len(results))
	}
	for i, r := range results {
		if r.Error != "" {
			t.Fatalf("row %d failed: %s", i, r.Error)
		}
		if r.VictimSlowdown <= 0 {
			t.Errorf("row %d (%s): victim slowdown %v, want > 0", i, r.Mode, r.VictimSlowdown)
		}
	}
	// Two aggressors saturating the victim's destination must slow the
	// victim down without QoS protection.
	if results[1].VictimSlowdown <= 1 {
		t.Errorf("no-qos victim slowdown %v, want > 1", results[1].VictimSlowdown)
	}
	again := g.Run(RunOpts{Workers: 4})
	for i := range again {
		// Wall-clock is legitimately non-deterministic across runs.
		results[i].Wall, results[i].CyclesPerSec = 0, 0
		again[i].Wall, again[i].CyclesPerSec = 0, 0
	}
	if !reflect.DeepEqual(results, again) {
		t.Error("victim-slowdown sweep differs across worker counts")
	}
}

// TestDegrade pins the degradation sweep: every faulted point joins its
// fault-free baseline, inflation ratios come out positive, and a healthy
// scenario is rejected outright.
func TestDegrade(t *testing.T) {
	sc, err := Parse([]byte(`
name = "degraded"
topology = "mesh_x1"
qos = ["pvc", "no-qos"]
rate = 0.05
warmup = 500
measure = 6000

[faults]
retry_timeout = 400
max_retries = 6

[[faults.link]]
port = 3
from = 1000
until = 3000
`), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Degrade(sc, RunOpts{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 2 QoS modes × 1 of everything else: one row per faulted grid point.
	if len(rows) != 2 {
		t.Fatalf("got %d degradation rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.Error != "" {
			t.Fatalf("row %d failed: %s", i, r.Error)
		}
		if r.DeliveredFraction <= 0 || r.DeliveredFraction > 1 {
			t.Errorf("row %d delivered fraction %v", i, r.DeliveredFraction)
		}
		if r.BaseMeanLatency <= 0 || r.BaseP99Latency <= 0 {
			t.Errorf("row %d missing baseline join: %+v", i, r)
		}
		if r.MeanInflation <= 0 || r.P99Inflation <= 0 {
			t.Errorf("row %d inflation %v / %v, want > 0", i, r.MeanInflation, r.P99Inflation)
		}
	}
	if out := DegradeCSV(sc.Name, rows); !strings.Contains(out, "p99_inflation") {
		t.Error("CSV header misses inflation column")
	}
	if out := RenderDegrade(sc.Name, rows); !strings.Contains(out, "Degradation sweep") {
		t.Error("render misses title")
	}

	sc.FaultWindows = nil
	if _, err := Degrade(sc, RunOpts{}); err == nil {
		t.Error("degrade accepted a scenario without fault windows")
	}
}

// TestFailedCellReportsError wedges a cell (permanent router stall with a
// watchdog armed) and checks the failure surfaces as a row-level error
// instead of a dead sweep.
func TestFailedCellReportsError(t *testing.T) {
	sc, err := Parse([]byte(`
name = "wedged"
topology = "mesh_x1"
rate = 0.05
warmup = 0
measure = 6000

[faults]
watchdog_cycles = 1500

[[faults.router]]
node = 3
from = 500
`), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	results := g.Run(RunOpts{Workers: 1})
	if len(results) != 1 {
		t.Fatalf("got %d rows, want 1", len(results))
	}
	r := results[0]
	if r.Error == "" {
		t.Fatal("wedged cell produced no error")
	}
	if !strings.Contains(r.Error, "no forward progress") {
		t.Errorf("error %q does not name the watchdog trip", r.Error)
	}
	if r.Delivered != 0 || r.DeliveredFraction != 0 {
		t.Errorf("failed row carries metrics: %+v", r)
	}
	if out := CSV(sc.Name, results); !strings.Contains(out, "no forward progress") {
		t.Error("CSV drops the error column")
	}
	if out := Render(sc.Name, results); !strings.Contains(out, "FAILED") {
		t.Error("Render does not mark the failed row")
	}
}
