package scenario

import (
	"encoding/json"
	"reflect"
	"testing"

	"tanoq/internal/sim"
)

// telemetryBase is a small two-seed grid: two seeds of the same axis
// point, so -lanes 2 batches them into one lockstep ensemble group.
const telemetryBase = `
pattern = "uniform"
topology = "mesh_x1"
qos = ["pvc"]
rates = [0.03]
seeds = [42, 43]
warmup = 400
measure = 1600
`

// TestTelemetryTableDecoding pins the [telemetry] scenario surface:
// interval/series/top_flows decode, and nonsense — non-positive
// intervals, unknown series, negative top-K, unknown keys, non-table
// values — is rejected at parse time.
func TestTelemetryTableDecoding(t *testing.T) {
	sc, err := Parse([]byte(telemetryBase+"[telemetry]\ninterval = 500\nseries = [\"flits\", \"heatmap\"]\ntop_flows = 4\n"), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Telemetry == nil {
		t.Fatal("telemetry table dropped")
	}
	if sc.Telemetry.Interval != 500 || sc.Telemetry.TopFlows != 4 ||
		!reflect.DeepEqual(sc.Telemetry.Series, []string{"flits", "heatmap"}) {
		t.Errorf("telemetry decoded wrong: %+v", sc.Telemetry)
	}
	sc, err = Parse([]byte(telemetryBase), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Telemetry != nil {
		t.Errorf("absent telemetry table decoded non-nil: %+v", sc.Telemetry)
	}
	for name, src := range map[string]string{
		"zero interval":     telemetryBase + "[telemetry]\ninterval = 0\n",
		"negative interval": telemetryBase + "[telemetry]\ninterval = -5\n",
		"missing interval":  telemetryBase + "[telemetry]\nseries = [\"flits\"]\n",
		"unknown series":    telemetryBase + "[telemetry]\ninterval = 500\nseries = [\"latency\"]\n",
		"negative top":      telemetryBase + "[telemetry]\ninterval = 500\ntop_flows = -1\n",
		"unknown key":       telemetryBase + "[telemetry]\ninterval = 500\nheat = true\n",
		"not a table":       telemetryBase + "telemetry = 3\n",
	} {
		if _, err := Parse([]byte(src), ".toml"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// stripTimelines clears wall-clock and the timeline pointers so probed
// and unprobed runs compare bit-for-bit on the simulation columns.
func stripTimelines(rs []Result) []Result {
	out := zeroWall(rs)
	for i := range out {
		out[i].Timeline = nil
	}
	return out
}

// TestProbedGridEquivalentToUnprobed pins display-only telemetry at the
// scenario layer: the same grid with and without a [telemetry] table
// produces bit-identical result rows — which is exactly why the
// telemetry knobs stay out of the cache key.
func TestProbedGridEquivalentToUnprobed(t *testing.T) {
	plain := gridOf(t, telemetryBase).Run(RunOpts{Workers: 1})
	probed := gridOf(t, telemetryBase+"[telemetry]\ninterval = 400\n").Run(RunOpts{Workers: 1})
	for i := range probed {
		if probed[i].Timeline == nil || probed[i].Timeline.Samples() == 0 {
			t.Fatalf("cell %d: probed run carries no timeline", i)
		}
	}
	if !reflect.DeepEqual(stripTimelines(plain), stripTimelines(probed)) {
		t.Errorf("telemetry changed result rows:\nplain:  %+v\nprobed: %+v", stripTimelines(plain), stripTimelines(probed))
	}
}

// TestTelemetryCacheKeysUnchanged pins the key exclusion directly:
// adding or changing a [telemetry] table never moves a cache key.
func TestTelemetryCacheKeysUnchanged(t *testing.T) {
	base := keysOf(t, telemetryBase)
	for name, src := range map[string]string{
		"probed":         telemetryBase + "[telemetry]\ninterval = 400\n",
		"other interval": telemetryBase + "[telemetry]\ninterval = 900\nseries = [\"flits\"]\n",
		"full selection": telemetryBase + "[telemetry]\ninterval = 250\ntop_flows = 16\n",
	} {
		if got := keysOf(t, src); !reflect.DeepEqual(got, base) {
			t.Errorf("%s: telemetry table moved cache keys", name)
		}
	}
}

// TestTimelineDeterministicAcrossWorkersAndLanes is the sweep-level
// acceptance check: a probed grid's timelines (full JSON, marks and
// all) are byte-identical whether the grid ran on one worker or four,
// standalone or lane-batched, with idle skipping on or off.
func TestTimelineDeterministicAcrossWorkersAndLanes(t *testing.T) {
	src := telemetryBase + "[telemetry]\ninterval = 400\ntop_flows = 4\n"
	collect := func(opts RunOpts) [][]byte {
		results := gridOf(t, src).Run(opts)
		blobs := make([][]byte, len(results))
		for i, r := range results {
			if r.Error != "" {
				t.Fatalf("cell %d failed: %s", i, r.Error)
			}
			blob, err := json.Marshal(r.Timeline)
			if err != nil {
				t.Fatal(err)
			}
			blobs[i] = blob
		}
		return blobs
	}
	base := collect(RunOpts{Workers: 1})
	for name, opts := range map[string]RunOpts{
		"workers=4":         {Workers: 4},
		"lanes=2":           {Workers: 1, EnsembleLanes: 2},
		"workers+lanes":     {Workers: 4, EnsembleLanes: 2},
		"no idle skip":      {Workers: 1, DisableIdleSkip: true},
		"skipless ensemble": {Workers: 2, EnsembleLanes: 2, DisableIdleSkip: true},
	} {
		got := collect(opts)
		for i := range base {
			if string(got[i]) != string(base[i]) {
				t.Errorf("%s: cell %d timeline diverged:\nbase: %s\ngot:  %s", name, i, base[i], got[i])
			}
		}
	}
}

// TestTelemetryHorizonFollowsSchedule pins the preallocation contract
// end-to-end: the runner arms samplers with the scenario's
// warmup+measure horizon, so an in-schedule run drops nothing.
func TestTelemetryHorizonFollowsSchedule(t *testing.T) {
	results := gridOf(t, telemetryBase+"[telemetry]\ninterval = 100\n").Run(RunOpts{Workers: 1})
	for i, r := range results {
		tl := r.Timeline
		if tl.DroppedSamples != 0 || tl.DroppedMarks != 0 {
			t.Errorf("cell %d dropped %d samples / %d marks inside the declared schedule", i, tl.DroppedSamples, tl.DroppedMarks)
		}
		// 2000 cycles at interval 100: ticks at 100..1900. The final
		// cycle is not stepped (the run ends with the clock on it, the
		// same convention frame flushes follow), so one fewer than
		// cycles/interval.
		if want := sim.Cycle(2000)/tl.Interval - 1; sim.Cycle(tl.Samples()) != want {
			t.Errorf("cell %d collected %d samples, want %d", i, tl.Samples(), want)
		}
	}
}
