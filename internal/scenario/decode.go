package scenario

import (
	"fmt"
	"math"
)

// decoder pulls typed fields out of the map[string]any both file formats
// decode into, recording the first error instead of forcing a check at
// every call site. Sweep-axis accessors accept a scalar or a list under
// either the singular or plural key. When a Resolution is attached,
// failures become ParseErrors located at the offending key's source
// (layer + file:line); prefix is the decoder's dotted path from the
// scenario root ("" at the top level, "workload", "flows[2]", ...).
type decoder struct {
	raw    map[string]any
	err    error
	res    *Resolution
	prefix string
}

func (d *decoder) failKey(key, format string, args ...any) {
	if d.err != nil {
		return
	}
	cause := fmt.Errorf(format, args...)
	if d.prefix != "" {
		cause = fmt.Errorf("%s: %w", d.prefix, cause)
	}
	d.err = locate(d.res, joinPath(d.prefix, key), cause)
}

// pick returns the value under whichever of the two keys is present
// (empty key names are skipped); setting both is an error.
func (d *decoder) pick(keyA, keyB string) (any, string, bool) {
	va, oka := d.raw[keyA]
	var vb any
	okb := false
	if keyB != "" {
		vb, okb = d.raw[keyB]
	}
	switch {
	case oka && okb:
		d.failKey(keyA, "set either %q or %q, not both", keyA, keyB)
		return nil, "", false
	case oka:
		return va, keyA, true
	case okb:
		return vb, keyB, true
	}
	return nil, "", false
}

func (d *decoder) str(key, def string) string {
	v, ok := d.raw[key]
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.failKey(key, "%s must be a string, got %T", key, v)
		return def
	}
	return s
}

func (d *decoder) float(key string, def float64) float64 {
	v, ok := d.raw[key]
	if !ok {
		return def
	}
	f, ok := v.(float64)
	if !ok {
		d.failKey(key, "%s must be a number, got %T", key, v)
		return def
	}
	return f
}

func (d *decoder) int(key string, def int) int {
	v, ok := d.raw[key]
	if !ok {
		return def
	}
	f, ok := v.(float64)
	if !ok || f != math.Trunc(f) {
		d.failKey(key, "%s must be an integer, got %v", key, v)
		return def
	}
	return int(f)
}

func (d *decoder) boolean(key string, def bool) bool {
	v, ok := d.raw[key]
	if !ok {
		return def
	}
	b, ok := v.(bool)
	if !ok {
		d.failKey(key, "%s must be a boolean, got %T", key, v)
		return def
	}
	return b
}

// asList normalizes a scalar-or-list value to a list.
func asList(v any) []any {
	if l, ok := v.([]any); ok {
		return l
	}
	return []any{v}
}

func (d *decoder) strList(keyA, keyB string) []string {
	v, key, ok := d.pick(keyA, keyB)
	if !ok {
		return nil
	}
	var out []string
	for _, el := range asList(v) {
		s, ok := el.(string)
		if !ok {
			d.failKey(key, "%s must hold strings, got %T", key, el)
			return nil
		}
		out = append(out, s)
	}
	return out
}

func (d *decoder) floatList(keyA, keyB string) []float64 {
	v, key, ok := d.pick(keyA, keyB)
	if !ok {
		return nil
	}
	var out []float64
	for _, el := range asList(v) {
		f, ok := el.(float64)
		if !ok {
			d.failKey(key, "%s must hold numbers, got %T", key, el)
			return nil
		}
		out = append(out, f)
	}
	return out
}

func (d *decoder) intList(keyA, keyB string) []int64 {
	v, key, ok := d.pick(keyA, keyB)
	if !ok {
		return nil
	}
	var out []int64
	for _, el := range asList(v) {
		f, ok := el.(float64)
		if !ok || f != math.Trunc(f) {
			d.failKey(key, "%s must hold integers, got %v", key, el)
			return nil
		}
		out = append(out, int64(f))
	}
	return out
}

// allowOnly rejects keys outside the given set (nested tables have their
// own key budget, unlike the top level's scenarioKeys map).
func (d *decoder) allowOnly(keys ...string) {
	allowed := map[string]bool{}
	for _, k := range keys {
		allowed[k] = true
	}
	for k := range d.raw {
		if !allowed[k] {
			d.failKey(k, "%w %q", ErrUnknownKey, k)
			return
		}
	}
}
