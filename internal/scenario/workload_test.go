package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tanoq/internal/network"
	"tanoq/internal/topology"
	"tanoq/internal/workload"
)

// TestWorkloadTableDecode pins the [workload] table: the mode axis, the
// closed-loop axes and the transaction shape all decode and default.
func TestWorkloadTableDecode(t *testing.T) {
	sc, err := Parse([]byte(`
rates = [0.05]
topology = "mesh_x1"

[workload]
mode = ["open", "closed"]
outstanding = [2, 8]
think_time = [0, 50]
request_flits = 4
reply_flits = 1
`), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.WorkloadModes) != 2 || sc.WorkloadModes[0] != "open" || sc.WorkloadModes[1] != "closed" {
		t.Errorf("modes %v", sc.WorkloadModes)
	}
	if len(sc.Outstanding) != 2 || sc.Outstanding[1] != 8 {
		t.Errorf("outstanding %v", sc.Outstanding)
	}
	if len(sc.ThinkTimes) != 2 || sc.ThinkTimes[1] != 50 {
		t.Errorf("think times %v", sc.ThinkTimes)
	}
	if sc.RequestFlits != 4 || sc.ReplyFlits != 1 {
		t.Errorf("shape %d/%d", sc.RequestFlits, sc.ReplyFlits)
	}

	// Defaults: no table means open-only; closed mode defaults its axes.
	sc, err = Parse([]byte(`{"rates":[0.05]}`), ".json")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.WorkloadModes) != 1 || sc.WorkloadModes[0] != "open" {
		t.Errorf("default modes %v", sc.WorkloadModes)
	}
	sc, err = Parse([]byte("[workload]\nmode = \"closed\"\n"), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Outstanding) != 1 || sc.Outstanding[0] != 4 || len(sc.ThinkTimes) != 1 {
		t.Errorf("closed defaults: outstanding %v think %v", sc.Outstanding, sc.ThinkTimes)
	}
}

// TestWorkloadTableRejections pins the validation surface of the new
// axes.
func TestWorkloadTableRejections(t *testing.T) {
	cases := map[string]string{
		"unknown mode":          "[workload]\nmode = \"batch\"\n",
		"repeated mode":         "rates = [0.1]\n[workload]\nmode = [\"open\", \"open\"]\n",
		"unknown workload key":  "[workload]\nmode = \"closed\"\nwindow = 4\n",
		"closed axes open-only": "rates = [0.1]\n[workload]\noutstanding = 4\n",
		"zero outstanding":      "[workload]\nmode = \"closed\"\noutstanding = 0\n",
		"negative think":        "[workload]\nmode = \"closed\"\nthink_time = -1\n",
		"bad flits":             "[workload]\nmode = \"closed\"\nrequest_flits = 2\n",
		"shape without closed":  "rates = [0.1]\n[workload]\nrequest_flits = 4\n",
		"rates closed-only":     "rates = [0.1]\n[workload]\nmode = \"closed\"\n",
		"open without rates":    "[workload]\nmode = [\"closed\", \"open\"]\n",
		"trace plus mode":       "[workload]\nmode = \"closed\"\ntrace = \"x.trace\"\n",
		"burst closed-only":     "[burst]\nmean_on = 5\nmean_off = 5\n[workload]\nmode = \"closed\"\n",
		"stop_at with trace":    "stop_at = 100\n[workload]\ntrace = \"x.trace\"\n",
		"req_fraction closed":   "request_fraction = 0.9\n[workload]\nmode = \"closed\"\n",
		"trace plus rates":      "rates = [0.1]\n[workload]\ntrace = \"x.trace\"\n",
		"empty trace path":      "[workload]\ntrace = \"\"\n",
		"closed plus flows":     "[[flows]]\nnode = 1\nrate = 0.2\n[workload]\nmode = \"closed\"\n",
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src), ".toml"); err == nil {
			t.Errorf("%s: accepted:\n%s", name, src)
		}
	}
}

// TestClosedGridExpansion pins the closed-loop fan-out: pattern ×
// topology × qos × seed × outstanding × think cells, each carrying a
// Setup that attaches a controller, and closed cells coexisting with the
// open rate grid of the same scenario.
func TestClosedGridExpansion(t *testing.T) {
	sc, err := Parse([]byte(`
rates = [0.01, 0.02]
pattern = "uniform"
topologies = ["mesh_x1", "mecs"]
qos = ["pvc", "no-qos"]
seeds = [1, 2]
warmup = 100
measure = 400

[workload]
mode = ["open", "closed"]
outstanding = [2, 4]
think_time = [0, 30]
`), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	// open: 2 topo x 2 qos x 2 seed x 2 rate = 16; closed: 2x2x2 x (2
	// outstanding x 2 think) = 32.
	if g.Size() != 48 {
		t.Fatalf("grid has %d cells, want 48", g.Size())
	}
	var open, closed int
	for i, p := range g.Points {
		switch p.Workload {
		case "open":
			open++
			if g.Cell(i).Setup != nil {
				t.Fatalf("open cell %d has a Setup", i)
			}
		case "closed":
			closed++
			if g.Cell(i).Setup == nil {
				t.Fatalf("closed cell %d missing Setup", i)
			}
			if p.Outstanding == 0 {
				t.Fatalf("closed cell %d missing outstanding axis", i)
			}
			if p.Rate != 0 {
				t.Fatalf("closed cell %d carries a rate", i)
			}
		default:
			t.Fatalf("cell %d has workload %q", i, p.Workload)
		}
	}
	if open != 16 || closed != 32 {
		t.Fatalf("open/closed split %d/%d, want 16/32", open, closed)
	}

	// The closed cells run end to end through the grid and surface
	// round-trip results.
	sc2, err := Parse([]byte("warmup = 200\nmeasure = 1000\ntopology = \"mesh_x1\"\n[workload]\nmode = \"closed\"\nthink_time = 20\n"), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := sc2.Grid()
	if err != nil {
		t.Fatal(err)
	}
	res := g2.Run(RunOpts{Workers: 1})
	if len(res) != 1 {
		t.Fatalf("%d results", len(res))
	}
	r := res[0]
	if r.Completed == 0 || r.MeanRTT <= 0 || r.P99RTT <= 0 {
		t.Errorf("closed result missing round-trip metrics: %+v", r)
	}
	if r.TputStdDevPct < 0 {
		t.Errorf("negative dispersion: %+v", r)
	}
	if !strings.Contains(CSV("x", res), ",closed,") {
		t.Error("CSV row does not mark the closed workload class")
	}
}

// TestOpenCellsCarryFairnessDispersion pins the satellite: every sweep
// row reports Table-2-style per-flow throughput dispersion.
func TestOpenCellsCarryFairnessDispersion(t *testing.T) {
	sc, err := Parse([]byte(`{"rates":[0.05],"topologies":["mesh_x1"],"warmup":200,"measure":2000}`), ".json")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run(RunOpts{Workers: 1})
	r := res[0]
	if r.TputMinPct <= 0 || r.TputMaxPct < 100 || r.TputStdDevPct <= 0 {
		t.Errorf("dispersion not populated: min %.2f max %.2f sd %.2f", r.TputMinPct, r.TputMaxPct, r.TputStdDevPct)
	}
	if r.Completed != 0 || r.MeanRTT != 0 {
		t.Errorf("open cell carries closed metrics: %+v", r)
	}
}

// TestTraceAxisGridExpansion records a real run, then drives the
// scenario trace axis over the capture: trace × topology × qos × seed
// cells replaying it, with relative paths anchored at the scenario file.
func TestTraceAxisGridExpansion(t *testing.T) {
	dir := t.TempDir()
	rec := recordRun(t)
	tr := rec.Trace(workload.TraceHeader{
		Nodes: topology.ColumnNodes, Topology: "mesh_x1", QoS: "pvc",
		Seed: 42, Warmup: 200, Measure: 800,
	})
	if err := workload.WriteTraceFile(filepath.Join(dir, "t.trace"), tr); err != nil {
		t.Fatal(err)
	}
	scPath := filepath.Join(dir, "replay.toml")
	if err := os.WriteFile(scPath, []byte(
		"topology = \"mesh_x1\"\nqos = [\"pvc\", \"no-qos\"]\nwarmup = 200\nmeasure = 800\n[workload]\ntrace = \"t.trace\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := Load(scPath)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Fatalf("grid has %d cells, want 2", g.Size())
	}
	res := g.Run(RunOpts{Workers: 1})
	for _, r := range res {
		if !strings.HasPrefix(r.Workload, "replay:") {
			t.Errorf("replay cell labeled %q", r.Workload)
		}
		if r.Delivered == 0 {
			t.Errorf("replay cell delivered nothing: %+v", r)
		}
	}
	// Replays are deterministic: both modes consumed the identical
	// injection stream, so the injected population matches.
	if res[0].Delivered == 0 || res[0].TputStdDevPct < 0 {
		t.Errorf("replay dispersion missing: %+v", res[0])
	}
}

// recordRun captures a short open-loop run on mesh x1.
func recordRun(t *testing.T) *workload.Recorder {
	t.Helper()
	sc, err := Parse([]byte(`{"rates":[0.05],"topologies":["mesh_x1"],"warmup":200,"measure":800}`), ".json")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	cell := g.Cell(0)
	n, err := network.New(cell.Config)
	if err != nil {
		t.Fatal(err)
	}
	rec := &workload.Recorder{}
	rec.Attach(n)
	n.WarmupAndMeasure(cell.Warmup, cell.Measure)
	if rec.Len() == 0 {
		t.Fatal("recorded nothing")
	}
	return rec
}
