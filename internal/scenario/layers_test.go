package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeTree writes a map of relative path -> contents under a temp dir
// and returns the dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLayerPrecedence pins the resolver's ordering contract: every later
// layer overrides the same key set by any earlier one, one layer at a
// time across the whole pipeline.
func TestLayerPrecedence(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"base.toml": "rate = 0.01\nwarmup = 100\nmeasure = 1000\n",
		"child.toml": "include = [\"base.toml\"]\nrate = 0.02\n\n" +
			"[profiles.p]\nrate = 0.03\n",
	})
	file := filepath.Join(dir, "child.toml")

	steps := []struct {
		name   string
		layers []Layer
		want   float64
	}{
		{"include", []Layer{FileLayer(filepath.Join(dir, "base.toml"))}, 0.01},
		{"file over include", []Layer{FileLayer(file)}, 0.02},
		{"profile over file", []Layer{FileLayer(file), ProfileLayer("p")}, 0.03},
		{"env over profile", []Layer{FileLayer(file), ProfileLayer("p"),
			EnvLayer([]string{"TANOQ_SET_RATE=0.04"})}, 0.04},
		{"flag over env", []Layer{FileLayer(file), ProfileLayer("p"),
			EnvLayer([]string{"TANOQ_SET_RATE=0.04"}), OverrideLayer("-rate", "rate=0.05")}, 0.05},
		{"set over flag", []Layer{FileLayer(file), ProfileLayer("p"),
			EnvLayer([]string{"TANOQ_SET_RATE=0.04"}), OverrideLayer("-rate", "rate=0.05"),
			SetLayer("rate=0.06")}, 0.06},
	}
	for _, st := range steps {
		sc, _, err := Resolve(st.layers...)
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		if !reflect.DeepEqual(sc.Rates, []float64{st.want}) {
			t.Errorf("%s: rates = %v, want [%v]", st.name, sc.Rates, st.want)
		}
	}
}

// TestIncludeChain checks a two-deep include chain merges deepest-first
// and that Files() reports the load order.
func TestIncludeChain(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"grand.toml":  "rate = 0.01\nseed = 7\nwarmup = 50\n",
		"parent.toml": "include = [\"grand.toml\"]\nwarmup = 99\n",
		"child.toml":  "include = [\"parent.toml\"]\nmeasure = 777\n",
	})
	sc, res, err := Resolve(FileLayer(filepath.Join(dir, "child.toml")))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Warmup != 99 || sc.Measure != 777 || !reflect.DeepEqual(sc.Seeds, []uint64{7}) {
		t.Errorf("merged chain: warmup=%d measure=%d seeds=%v", sc.Warmup, sc.Measure, sc.Seeds)
	}
	files := res.Files()
	if len(files) != 3 || !strings.HasSuffix(files[0], "grand.toml") || !strings.HasSuffix(files[2], "child.toml") {
		t.Errorf("files order: %v", files)
	}
	if org, ok := res.Origin("warmup"); !ok || org.Layer != LayerInclude || !strings.HasSuffix(org.File, "parent.toml") {
		t.Errorf("warmup origin: %+v %v", org, ok)
	}
	if org, ok := res.Origin("measure"); !ok || org.Layer != LayerFile {
		t.Errorf("measure origin: %+v %v", org, ok)
	}
}

// TestIncludeCycle requires the resolver to reject a cyclic include
// chain with ErrIncludeCycle instead of recursing forever.
func TestIncludeCycle(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"a.toml": "include = [\"b.toml\"]\n",
		"b.toml": "include = [\"a.toml\"]\n",
	})
	_, _, err := Resolve(FileLayer(filepath.Join(dir, "a.toml")))
	if !errors.Is(err, ErrIncludeCycle) {
		t.Fatalf("want ErrIncludeCycle, got %v", err)
	}
	var pe *ParseError
	if !errors.As(err, &pe) || !strings.HasSuffix(pe.File, "a.toml") {
		t.Errorf("cycle ParseError: %v", err)
	}
}

// TestUnknownKeyEveryLayer pins the contract that typo rejection holds
// at every layer of the pipeline, and that the resulting ParseError
// names the layer that introduced the bad key.
func TestUnknownKeyEveryLayer(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"badinc.toml":  "bogus = 1\n",
		"useinc.toml":  "include = [\"badinc.toml\"]\nrate = 0.05\n",
		"badfile.toml": "rate = 0.05\nbogus = 1\n",
		"badprof.toml": "rate = 0.05\n\n[profiles.p]\nbogus = 1\n",
		"ok.toml":      "rate = 0.05\n",
	})
	cases := []struct {
		name   string
		layers []Layer
		layer  string
	}{
		{"include", []Layer{FileLayer(filepath.Join(dir, "useinc.toml"))}, LayerInclude},
		{"file", []Layer{FileLayer(filepath.Join(dir, "badfile.toml"))}, LayerFile},
		{"profile", []Layer{FileLayer(filepath.Join(dir, "badprof.toml"))}, LayerFile},
		{"env", []Layer{FileLayer(filepath.Join(dir, "ok.toml")),
			EnvLayer([]string{"TANOQ_SET_BOGUS=1"})}, LayerEnv},
		{"set", []Layer{FileLayer(filepath.Join(dir, "ok.toml")),
			SetLayer("bogus=1")}, LayerCLI},
	}
	for _, c := range cases {
		_, _, err := Resolve(c.layers...)
		if !errors.Is(err, ErrUnknownKey) {
			t.Errorf("%s: want ErrUnknownKey, got %v", c.name, err)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: not a ParseError: %v", c.name, err)
			continue
		}
		if pe.Layer != c.layer {
			t.Errorf("%s: layer %q, want %q (err: %v)", c.name, pe.Layer, c.layer, err)
		}
	}
}

// TestUnknownProfile checks profile selection fails loudly and lists
// what is available.
func TestUnknownProfile(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"s.toml": "rate = 0.05\n\n[profiles.quick]\nwarmup = 1\n\n[profiles.full]\nwarmup = 2\n",
	})
	_, _, err := Resolve(FileLayer(filepath.Join(dir, "s.toml")), ProfileLayer("nope"))
	if !errors.Is(err, ErrUnknownProfile) {
		t.Fatalf("want ErrUnknownProfile, got %v", err)
	}
	if !strings.Contains(err.Error(), "full, quick") {
		t.Errorf("available profiles not listed: %v", err)
	}
}

// TestProfileThroughInclude checks profiles defined in an included base
// are selectable from the including scenario, and that the includer can
// extend them.
func TestProfileThroughInclude(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"base.toml": "rate = 0.05\nwarmup = 1000\n\n[profiles.quick]\nwarmup = 10\n",
		"child.toml": "include = [\"base.toml\"]\nmeasure = 500\n\n" +
			"[profiles.quick]\nmeasure = 20\n",
	})
	sc, res, err := Resolve(FileLayer(filepath.Join(dir, "child.toml")), ProfileLayer("quick"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Warmup != 10 || sc.Measure != 20 {
		t.Errorf("inherited+extended profile: warmup=%d measure=%d", sc.Warmup, sc.Measure)
	}
	if res.Profile() != "quick" {
		t.Errorf("Profile() = %q", res.Profile())
	}
	if org, ok := res.Origin("warmup"); !ok || org.Layer != "profile:quick" || !strings.HasSuffix(org.File, "base.toml") {
		t.Errorf("profile key origin: %+v %v", org, ok)
	}
}

// TestAliasRetirementAcrossLayers pins the singular/plural axis contract
// across layers: a later layer setting either spelling replaces the
// other spelling set below it, while a single source setting both is
// still the decoder's set-either-not-both error.
func TestAliasRetirementAcrossLayers(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"s.toml": "rates = [0.01, 0.02]\ntopology = \"mesh_x1\"\n",
	})
	sc, _, err := Resolve(FileLayer(filepath.Join(dir, "s.toml")),
		SetLayer("rate=0.07", `topologies=["mecs"]`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Rates, []float64{0.07}) {
		t.Errorf("singular -set should retire the file's plural: rates = %v", sc.Rates)
	}
	if len(sc.Topologies) != 1 || sc.Topologies[0].String() != "mecs" {
		t.Errorf("plural -set should retire the file's singular: topologies = %v", sc.Topologies)
	}

	// Both spellings in ONE source stay a decoder error.
	_, _, err = Resolve(BlobLayer("both", []byte("rate = 0.01\nrates = [0.02]\n"), ".toml"))
	if err == nil || !strings.Contains(err.Error(), "not both") {
		t.Errorf("single-source double spelling: %v", err)
	}
}

// TestDeepMergeTables checks nested tables merge key-by-key across
// layers (maps recurse; scalars replace).
func TestDeepMergeTables(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"base.toml":  "rate = 0.05\n\n[burst]\nmean_on = 40\nmean_off = 400\n",
		"child.toml": "include = [\"base.toml\"]\n\n[burst]\nmean_off = 120\n",
	})
	sc, _, err := Resolve(FileLayer(filepath.Join(dir, "child.toml")),
		EnvLayer([]string{"TANOQ_SET_BURST__MEAN_ON=60"}))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Burst.MeanOn != 60 || sc.Burst.MeanOff != 120 {
		t.Errorf("deep merge: burst = %+v", sc.Burst)
	}
}

// TestExplainProvenance spot-checks the -explain rendering: every
// resolved key is listed with the layer and file:line that set it.
func TestExplainProvenance(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"base.toml":  "warmup = 100\nmeasure = 1000\n",
		"child.toml": "include = [\"base.toml\"]\nrate = 0.05\n\n[profiles.q]\nwarmup = 5\n",
	})
	_, res, err := Resolve(FileLayer(filepath.Join(dir, "child.toml")), ProfileLayer("q"),
		SetLayer("measure=50"))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Explain()
	for _, want := range []string{
		"# profile q",
		"rate = 0.05",
		"child.toml:2",
		"warmup = 5",
		"profile:q",
		"measure = 50",
		"-set measure=50",
		"# default",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain() missing %q:\n%s", want, out)
		}
	}
}

// TestSetValueParsing pins the override value grammar: TOML scalars and
// arrays parse as such, anything else is a bare string.
func TestSetValueParsing(t *testing.T) {
	dir := writeTree(t, map[string]string{"s.toml": "rate = 0.05\n"})
	sc, _, err := Resolve(FileLayer(filepath.Join(dir, "s.toml")),
		SetLayer("pattern=tornado", "seeds=[1, 2]"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Patterns, []string{"tornado"}) {
		t.Errorf("bare string: %v", sc.Patterns)
	}
	if !reflect.DeepEqual(sc.Seeds, []uint64{1, 2}) {
		t.Errorf("array value: %v", sc.Seeds)
	}

	// Dotted paths reach nested tables (a closed-loop cell, so no rate
	// axis in the base file).
	closed := writeTree(t, map[string]string{"c.toml": "pattern = \"uniform\"\n"})
	sc, _, err = Resolve(FileLayer(filepath.Join(closed, "c.toml")),
		SetLayer("workload.mode=closed"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.WorkloadModes, []string{"closed"}) {
		t.Errorf("dotted path: %v", sc.WorkloadModes)
	}

	_, _, err = Resolve(FileLayer(filepath.Join(dir, "s.toml")), SetLayer("justakey"))
	if err == nil || !strings.Contains(err.Error(), "key=value") {
		t.Errorf("malformed -set: %v", err)
	}
}

// TestBlobLayerRejectsInclude pins that in-memory scenarios cannot
// include (no base directory to resolve against).
func TestBlobLayerRejectsInclude(t *testing.T) {
	_, err := Parse([]byte("include = [\"base.toml\"]\n"), ".toml")
	if err == nil || !strings.Contains(err.Error(), "include") {
		t.Fatalf("blob include: %v", err)
	}
}

// TestParseErrorShape checks the structured error carries file, line,
// key and layer, and renders the same line-numbered message style the
// flat loader always had.
func TestParseErrorShape(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"s.toml": "rate = 0.05\nwarmup = \"soon\"\n",
	})
	_, _, err := Resolve(FileLayer(filepath.Join(dir, "s.toml")))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("not a ParseError: %v", err)
	}
	if !strings.HasSuffix(pe.File, "s.toml") || pe.Line != 2 || pe.Key != "warmup" {
		t.Errorf("ParseError fields: %+v", pe)
	}
	if !strings.Contains(err.Error(), "s.toml:2") {
		t.Errorf("message not line-numbered: %v", err)
	}
}

// TestSplitProfile pins the file#profile argument syntax.
func TestSplitProfile(t *testing.T) {
	for arg, want := range map[string][2]string{
		"a.toml":         {"a.toml", ""},
		"a.toml#quick":   {"a.toml", "quick"},
		"dir#x/a.toml#q": {"dir#x/a.toml", "q"},
	} {
		if p, prof := SplitProfile(arg); p != want[0] || prof != want[1] {
			t.Errorf("SplitProfile(%q) = %q, %q", arg, p, prof)
		}
	}
}

// TestProfileCacheTransparency is the PR's cache contract: selecting a
// profile changes the grid's cache keys exactly when it changes a
// result-affecting field. A profile patching only the [run] table leaves
// every key identical; one touching the rate axis changes them.
func TestProfileCacheTransparency(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"s.toml": "rate = 0.05\nwarmup = 100\nmeasure = 1000\n\n" +
			"[profiles.durable]\n[profiles.durable.run]\ndeadline_ms = 60000\nretries = 3\n\n" +
			"[profiles.hot]\nrate = 0.09\n",
	})
	keys := func(layers ...Layer) []string {
		t.Helper()
		sc, _, err := Resolve(layers...)
		if err != nil {
			t.Fatal(err)
		}
		g, err := sc.Grid()
		if err != nil {
			t.Fatal(err)
		}
		ks, err := g.Keys()
		if err != nil {
			t.Fatal(err)
		}
		return ks
	}
	file := filepath.Join(dir, "s.toml")
	plain := keys(FileLayer(file))
	durable := keys(FileLayer(file), ProfileLayer("durable"))
	hot := keys(FileLayer(file), ProfileLayer("hot"))
	if !reflect.DeepEqual(plain, durable) {
		t.Errorf("[run]-only profile changed cache keys:\n%v\nvs\n%v", plain, durable)
	}
	if reflect.DeepEqual(plain, hot) {
		t.Errorf("rate-changing profile left cache keys identical: %v", plain)
	}
}
