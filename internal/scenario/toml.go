package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// parseTOML parses the TOML subset scenario files use into the same
// map[string]any shape encoding/json produces, so one decoder serves both
// formats. Supported: `key = value` pairs, `[table]` headers — including
// dotted paths, `[profiles.quick]` — `[[array]]` array-of-tables headers
// with one dotted level (`[[parent.child]]` appends to a list inside the
// parent table), `#` comments, and values that are basic strings ("..."),
// integers, floats, booleans, or single-line arrays of those. Unsupported
// TOML (dotted keys in key/value position, multi-line strings, dates,
// inline tables) is rejected with a line-numbered error rather than
// misread. Numbers decode to float64, like JSON.
func parseTOML(src string) (map[string]any, error) {
	m, _, err := parseTOMLLines(src)
	return m, err
}

// parseTOMLLines is parseTOML plus a source map: for every key it sets,
// the 1-based line of the dotted path ("faults.link[1].port"). The
// resolver threads these lines into per-key provenance.
func parseTOMLLines(src string) (map[string]any, map[string]int, error) {
	root := map[string]any{}
	lines := map[string]int{}
	defined := map[string]bool{}
	cur, curPath := root, ""
	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "[["):
			name, ok := strings.CutSuffix(strings.TrimPrefix(line, "[["), "]]")
			name = strings.TrimSpace(name)
			parent, parentPath := root, ""
			if head, rest, dotted := strings.Cut(name, "."); ok && dotted {
				if !validKey(head) || !validKey(rest) {
					return nil, nil, tomlErr(ln, "malformed array-of-tables header %q (one dotted level supported)", line)
				}
				sub, exists := root[head]
				if !exists {
					sub = map[string]any{}
					root[head] = sub
				}
				m, isTable := sub.(map[string]any)
				if !isTable {
					return nil, nil, tomlErr(ln, "key %q redefined as a table by %q", head, line)
				}
				parent, parentPath, name = m, head, rest
			}
			if !ok || !validKey(name) {
				return nil, nil, tomlErr(ln, "malformed array-of-tables header %q", line)
			}
			t := map[string]any{}
			arr, _ := parent[name].([]any)
			if _, exists := parent[name]; exists && arr == nil {
				return nil, nil, tomlErr(ln, "key %q redefined as array of tables", name)
			}
			curPath = joinPath(parentPath, fmt.Sprintf("%s[%d]", name, len(arr)))
			parent[name] = append(arr, any(t))
			cur = t
			lines[curPath] = ln + 1
		case strings.HasPrefix(line, "["):
			name, ok := strings.CutSuffix(strings.TrimPrefix(line, "["), "]")
			name = strings.TrimSpace(name)
			if !ok || name == "" {
				return nil, nil, tomlErr(ln, "malformed table header %q", line)
			}
			node, path := root, ""
			segs := strings.Split(name, ".")
			for i, seg := range segs {
				if !validKey(seg) {
					return nil, nil, tomlErr(ln, "malformed table header %q", line)
				}
				path = joinPath(path, seg)
				ex, exists := node[seg]
				if !exists {
					m := map[string]any{}
					node[seg] = m
					node = m
					continue
				}
				m, isTable := ex.(map[string]any)
				if !isTable {
					return nil, nil, tomlErr(ln, "key %q redefined as a table", path)
				}
				if i == len(segs)-1 && defined[path] {
					return nil, nil, tomlErr(ln, "table %q redefined", path)
				}
				node = m
			}
			defined[path] = true
			cur, curPath = node, path
			if lines[path] == 0 {
				lines[path] = ln + 1
			}
		default:
			key, rest, ok := strings.Cut(line, "=")
			key = strings.TrimSpace(key)
			if !ok || !validKey(key) {
				return nil, nil, tomlErr(ln, "expected `key = value`, got %q", line)
			}
			if _, exists := cur[key]; exists {
				return nil, nil, tomlErr(ln, "key %q redefined", key)
			}
			v, err := parseTOMLValue(strings.TrimSpace(rest), ln)
			if err != nil {
				return nil, nil, err
			}
			cur[key] = v
			lines[joinPath(curPath, key)] = ln + 1
		}
	}
	return root, lines, nil
}

// tomlErr is a line-numbered ParseError; the loading layer fills in the
// file path.
func tomlErr(line int, format string, args ...any) error {
	return &ParseError{Line: line + 1, Err: fmt.Errorf(format, args...)}
}

// stripComment removes a trailing # comment, respecting quoted strings.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if !inStr || i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// validKey accepts TOML bare keys: letters, digits, dashes, underscores.
func validKey(k string) bool {
	if k == "" {
		return false
	}
	for _, c := range k {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func parseTOMLValue(s string, ln int) (any, error) {
	switch {
	case s == "":
		return nil, tomlErr(ln, "missing value")
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case strings.HasPrefix(s, `"`):
		body, ok := strings.CutSuffix(strings.TrimPrefix(s, `"`), `"`)
		if !ok || len(s) < 2 {
			return nil, tomlErr(ln, "malformed string %s", s)
		}
		// Quotes inside the body must be backslash-escaped, and a lone
		// trailing backslash would have escaped the closing quote.
		for i := 0; i < len(body); i++ {
			switch body[i] {
			case '\\':
				if i++; i == len(body) {
					return nil, tomlErr(ln, "unterminated string %s", s)
				}
			case '"':
				return nil, tomlErr(ln, "malformed string %s", s)
			}
		}
		return strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n", `\t`, "\t").Replace(body), nil
	case strings.HasPrefix(s, "["):
		body, ok := strings.CutSuffix(strings.TrimPrefix(s, "["), "]")
		if !ok {
			return nil, tomlErr(ln, "unterminated array %q (arrays must be single-line)", s)
		}
		var out []any
		for _, el := range splitArray(body) {
			el = strings.TrimSpace(el)
			if el == "" {
				continue
			}
			v, err := parseTOMLValue(el, ln)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	default:
		// TOML permits underscore digit separators in numbers.
		f, err := strconv.ParseFloat(strings.ReplaceAll(s, "_", ""), 64)
		if err != nil {
			return nil, tomlErr(ln, "unsupported value %q", s)
		}
		return f, nil
	}
}

// splitArray splits a single-line array body on top-level commas,
// respecting quoted strings (nested arrays are not supported and will
// fail element parsing downstream).
func splitArray(body string) []string {
	var parts []string
	start, inStr := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if !inStr || body[i-1] != '\\' {
				inStr = !inStr
			}
		case ',':
			if !inStr {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, body[start:])
}
