package scenario

import (
	"errors"
	"fmt"
	"strings"
)

// Layer names, as carried by Origin.Layer and ParseError.Layer. The
// resolver applies layers in exactly this precedence order (later wins):
// defaults < include chain < file < profile < env < cli. A profile
// origin is spelled "profile:<name>".
const (
	LayerDefault = "default"
	LayerInclude = "include"
	LayerFile    = "file"
	LayerProfile = "profile"
	LayerEnv     = "env"
	LayerCLI     = "cli"
)

// Sentinel errors for the failure classes callers branch on; match them
// with errors.Is through a ParseError.
var (
	// ErrUnknownKey marks a key outside the scenario schema — at the top
	// level, inside a nested table, or inside a profile patch.
	ErrUnknownKey = errors.New("unknown key")
	// ErrUnknownProfile marks a profile selection ("file#name" or
	// -profile) that no loaded file defines.
	ErrUnknownProfile = errors.New("unknown profile")
	// ErrIncludeCycle marks an include chain that revisits a file.
	ErrIncludeCycle = errors.New("include cycle")
)

// ParseError is a structured scenario-loading error: what went wrong
// (Err), where it came from (File and Line of the offending source), on
// which key (the dotted resolved path, e.g. "workload.mode"), and at
// which layer of the resolver pipeline. It supports errors.Is/errors.As
// through Unwrap, so callers can match the sentinel classes above
// without parsing messages.
type ParseError struct {
	// File is the source of the failing layer: a scenario file path, an
	// environment variable name, or a CLI flag expression. Empty for
	// in-memory parses.
	File string
	// Line is the 1-based source line, when the source has lines.
	Line int
	// Key is the dotted path of the offending key ("faults.link[1].port");
	// empty for errors not tied to one key.
	Key string
	// Layer names the resolver layer the error surfaced at (the Layer*
	// constants; profiles are "profile:<name>").
	Layer string
	// Err is the underlying cause.
	Err error
}

func (e *ParseError) Error() string {
	var b strings.Builder
	switch {
	case e.File != "" && e.Line > 0:
		fmt.Fprintf(&b, "%s:%d: ", e.File, e.Line)
	case e.File != "":
		fmt.Fprintf(&b, "%s: ", e.File)
	case e.Line > 0:
		fmt.Fprintf(&b, "line %d: ", e.Line)
	}
	b.WriteString(e.Err.Error())
	if e.Layer != "" && e.Layer != LayerFile {
		fmt.Fprintf(&b, " [%s layer]", e.Layer)
	}
	return b.String()
}

func (e *ParseError) Unwrap() error { return e.Err }

// locate wraps cause in a ParseError carrying the provenance of the
// given key path, when a resolution is available to look it up.
func locate(res *Resolution, path string, cause error) error {
	if res == nil {
		return cause
	}
	o := res.originOf(path)
	return &ParseError{File: o.File, Line: o.Line, Layer: o.Layer, Key: path, Err: cause}
}

// perr builds a located ParseError from a format string (fromRaw's
// non-decoder validation failures).
func perr(res *Resolution, path, format string, args ...any) error {
	return locate(res, path, fmt.Errorf(format, args...))
}
