package scenario

import (
	"reflect"
	"strings"
	"testing"

	"tanoq/internal/experiments"
	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

func TestParseJSONScenario(t *testing.T) {
	sc, err := Parse([]byte(`{
		"name": "demo",
		"pattern": "transpose",
		"topologies": ["mecs", "dps"],
		"qos": ["pvc", "no-qos"],
		"rates": [0.02, 0.05],
		"seeds": [1, 2, 3],
		"warmup": 500,
		"measure": 2000,
		"burst": {"mean_on": 100, "mean_off": 300}
	}`), ".json")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "demo" || !reflect.DeepEqual(sc.Patterns, []string{"transpose"}) {
		t.Errorf("name/patterns: %q %v", sc.Name, sc.Patterns)
	}
	if !reflect.DeepEqual(sc.Topologies, []topology.Kind{topology.MECS, topology.DPS}) {
		t.Errorf("topologies: %v", sc.Topologies)
	}
	if !reflect.DeepEqual(sc.Modes, []qos.Mode{qos.PVC, qos.NoQoS}) {
		t.Errorf("modes: %v", sc.Modes)
	}
	if !reflect.DeepEqual(sc.Seeds, []uint64{1, 2, 3}) || sc.Warmup != 500 || sc.Measure != 2000 {
		t.Errorf("seeds/schedule: %v %d %d", sc.Seeds, sc.Warmup, sc.Measure)
	}
	if sc.Burst != (traffic.Burst{MeanOn: 100, MeanOff: 300}) {
		t.Errorf("burst: %+v", sc.Burst)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	// 1 pattern x 2 topologies x 2 modes x 3 seeds x 2 rates.
	if g.Size() != 24 {
		t.Errorf("grid size %d, want 24", g.Size())
	}
}

func TestParseTOMLScenario(t *testing.T) {
	sc, err := Parse([]byte(`
# comment
name = "toml-demo"
patterns = ["uniform", "shuffle"]  # inline comment
topology = "mesh_x1"
qos = "all"
rates = [0.01, 0.03]
seed = 7
nodes = 8
warmup = 1_000
measure = 4000

[burst]
mean_on = 50
mean_off = 150
`), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "toml-demo" || len(sc.Patterns) != 2 {
		t.Errorf("name/patterns: %q %v", sc.Name, sc.Patterns)
	}
	if !reflect.DeepEqual(sc.Topologies, []topology.Kind{topology.MeshX1}) {
		t.Errorf("topologies: %v", sc.Topologies)
	}
	if len(sc.Modes) != 3 {
		t.Errorf("qos=all expanded to %v", sc.Modes)
	}
	if sc.Warmup != 1000 || !reflect.DeepEqual(sc.Seeds, []uint64{7}) {
		t.Errorf("warmup/seeds: %d %v", sc.Warmup, sc.Seeds)
	}
	if sc.Burst != (traffic.Burst{MeanOn: 50, MeanOff: 150}) {
		t.Errorf("burst: %+v", sc.Burst)
	}
}

func TestParseTOMLFlows(t *testing.T) {
	sc, err := Parse([]byte(`
name = "flows-demo"
topology = "mecs"

[[flows]]
node = 7
injector = 0
rate = 0.2
dest = "hotspot"

[[flows]]
node = 3
injector = 2
rate = 0.1
dest = 5
stop_at = 9000
`), ".toml")
	if err != nil {
		t.Fatal(err)
	}
	want := []FlowSpec{
		{Node: 7, Injector: 0, Rate: 0.2, Dest: 0},
		{Node: 3, Injector: 2, Rate: 0.1, Dest: 5, StopAt: 9000},
	}
	if !reflect.DeepEqual(sc.Flows, want) {
		t.Errorf("flows: %+v, want %+v", sc.Flows, want)
	}
	w := sc.flowWorkload()
	if len(w.Specs) != 2 || w.Specs[0].Flow != traffic.FlowOf(7, 0) {
		t.Errorf("flow workload: %+v", w.Specs)
	}
}

func TestScenarioDefaults(t *testing.T) {
	sc, err := Parse([]byte(`{"rates": [0.05]}`), ".json")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Topologies, topology.Kinds()) {
		t.Errorf("default topologies: %v", sc.Topologies)
	}
	if !reflect.DeepEqual(sc.Modes, []qos.Mode{qos.PVC}) {
		t.Errorf("default modes: %v", sc.Modes)
	}
	if !reflect.DeepEqual(sc.Seeds, []uint64{42}) || !reflect.DeepEqual(sc.Patterns, []string{"uniform"}) {
		t.Errorf("default seeds/patterns: %v %v", sc.Seeds, sc.Patterns)
	}
	if sc.Nodes != topology.ColumnNodes || sc.Warmup != 20_000 || sc.Measure != 100_000 {
		t.Errorf("default nodes/schedule: %d %d %d", sc.Nodes, sc.Warmup, sc.Measure)
	}
	if sc.RequestFraction != traffic.DefaultRequestFraction {
		t.Errorf("default request fraction: %v", sc.RequestFraction)
	}
}

func TestScenarioValidationErrors(t *testing.T) {
	cases := map[string]string{
		"bad topology":      `{"rates":[0.05],"topologies":["hypercube"]}`,
		"bad qos":           `{"rates":[0.05],"qos":["besteffort"]}`,
		"bad pattern":       `{"rates":[0.05],"pattern":"nearest"}`,
		"rate over 1":       `{"rates":[1.5]}`,
		"rate zero":         `{"rates":[0]}`,
		"empty sweep":       `{"pattern":"uniform"}`,
		"unknown key":       `{"rates":[0.05],"ratess":[0.05]}`,
		"both rate forms":   `{"rate":0.05,"rates":[0.05]}`,
		"nodes too small":   `{"rates":[0.05],"nodes":1}`,
		"bad measure":       `{"rates":[0.05],"measure":0}`,
		"bit perm non-pow2": `{"rates":[0.05],"pattern":"shuffle","nodes":6}`,
		"burst peak over 1": `{"rates":[0.9],"burst":{"mean_on":10,"mean_off":90}}`,
		"burst sub-cycle":   `{"rates":[0.05],"burst":{"mean_on":0.2,"mean_off":10}}`,
		"flow bad node":     `{"flows":[{"node":12,"rate":0.1}]}`,
		"flow bad injector": `{"flows":[{"node":0,"injector":9,"rate":0.1}]}`,
		"flow bad dest":     `{"flows":[{"node":0,"rate":0.1,"dest":11}]}`,
		"flow bad rate":     `{"flows":[{"node":0,"rate":2}]}`,
		"flows and rates":   `{"rates":[0.05],"flows":[{"node":0,"rate":0.1}]}`,
		"hotspot weights":   `{"rates":[0.05],"pattern":"hotspot","hotspot_weights":[1,2]}`,
		"bad frame":         `{"rates":[0.05],"frame_cycles":1.5}`,
	}
	for name, blob := range cases {
		if _, err := Parse([]byte(blob), ".json"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTOMLParserErrors(t *testing.T) {
	cases := map[string]string{
		"bare value":      "rates = [0.05]\noops",
		"bad header":      "[burst\nmean_on = 5",
		"redefined key":   "rate = 0.05\nrate = 0.06",
		"redefined table": "[burst]\nmean_on = 5\n[burst]\nmean_off = 5",
		"unterminated":    `name = "x`,
		"bad number":      "rate = 0.05.5",
		"multiline array": "rates = [0.01,\n0.02]",
	}
	for name, src := range cases {
		if _, err := parseTOML(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTOMLCommentsInsideStrings(t *testing.T) {
	m, err := parseTOML(`name = "a # not a comment" # real comment`)
	if err != nil {
		t.Fatal(err)
	}
	if m["name"] != "a # not a comment" {
		t.Errorf("got %q", m["name"])
	}
}

func TestTOMLEscapedStrings(t *testing.T) {
	m, err := parseTOML(`name = "say \"hi\" to a\\b"`)
	if err != nil {
		t.Fatal(err)
	}
	if want := `say "hi" to a\b`; m["name"] != want {
		t.Errorf("got %q, want %q", m["name"], want)
	}
	for name, src := range map[string]string{
		"bare quote":      `name = "a"b"`,
		"dangling escape": `name = "ab\"`,
	} {
		if _, err := parseTOML(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFig4QuickScenarioBitIdentical is the subsystem's acceptance test:
// the examples/sweep/fig4-quick.json scenario must reproduce the built-in
// quick Figure 4 grid bit-identically — same workload construction, same
// RNG streams, same cell order, same numbers.
func TestFig4QuickScenarioBitIdentical(t *testing.T) {
	sc, err := Load("../../examples/sweep/fig4-quick.json")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	got := g.Run(RunOpts{})

	p := experiments.QuickParams()
	rates := experiments.QuickFig4Rates()
	series := experiments.Fig4(experiments.Uniform, rates, p)

	if sc.Warmup != p.Warmup || sc.Measure != p.Measure {
		t.Fatalf("scenario schedule %d/%d drifted from QuickParams %d/%d",
			sc.Warmup, sc.Measure, p.Warmup, p.Measure)
	}
	if !reflect.DeepEqual(sc.Rates, rates) {
		t.Fatalf("scenario rates %v drifted from QuickFig4Rates %v", sc.Rates, rates)
	}
	if want := len(series) * len(rates); len(got) != want {
		t.Fatalf("grid has %d cells, driver grid %d", len(got), want)
	}
	for ki, s := range series {
		for ri, pt := range s.Points {
			r := got[ki*len(rates)+ri]
			if r.Topology != s.Kind || r.Rate != pt.Rate {
				t.Fatalf("cell (%d,%d) is (%v, %v), want (%v, %v)", ki, ri, r.Topology, r.Rate, s.Kind, pt.Rate)
			}
			if r.MeanLatency != pt.MeanLatency || r.P99Latency != pt.P99Latency ||
				r.Accepted != pt.Accepted || r.PreemptionPct != pt.PreemptionPct {
				t.Errorf("%v rate %v: scenario (%v, %v, %v, %v) != driver (%v, %v, %v, %v)",
					s.Kind, pt.Rate,
					r.MeanLatency, r.P99Latency, r.Accepted, r.PreemptionPct,
					pt.MeanLatency, pt.P99Latency, pt.Accepted, pt.PreemptionPct)
			}
		}
	}
}

// TestBuiltinQuickMatchesExampleFile pins the built-in registry's quick
// scenario to the shipped example file, so neither can drift alone.
func TestBuiltinQuickMatchesExampleFile(t *testing.T) {
	file, err := Load("../../examples/sweep/fig4-quick.json")
	if err != nil {
		t.Fatal(err)
	}
	builtin, err := Builtin("fig4a-quick")
	if err != nil {
		t.Fatal(err)
	}
	// Names differ (file base vs registry key) and only files carry a
	// base directory; everything else must not.
	file.Name = builtin.Name
	file.baseDir = builtin.baseDir
	if !reflect.DeepEqual(file, builtin) {
		t.Errorf("example file %+v != builtin %+v", file, builtin)
	}
}

// TestWorkloadBuiltinsMatchTrafficConstructors pins the adversarial
// built-in scenarios to the traffic package's Workload1/Workload2.
func TestWorkloadBuiltinsMatchTrafficConstructors(t *testing.T) {
	for name, ref := range map[string]traffic.Workload{
		"workload1": traffic.Workload1(topology.ColumnNodes, 0),
		"workload2": traffic.Workload2(topology.ColumnNodes, 0),
	} {
		sc, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		w := sc.flowWorkload()
		if len(w.Specs) != len(ref.Specs) {
			t.Fatalf("%s: %d specs, want %d", name, len(w.Specs), len(ref.Specs))
		}
		for i := range w.Specs {
			g, r := w.Specs[i], ref.Specs[i]
			if g.Flow != r.Flow || g.Node != r.Node || g.Rate != r.Rate ||
				g.RequestFraction != r.RequestFraction || g.StopAt != r.StopAt {
				t.Errorf("%s spec %d: %+v != %+v", name, i, g, r)
			}
		}
	}
	if _, err := Builtin("fig9"); err == nil {
		t.Error("unknown builtin accepted")
	}
}

// TestPatternsSweepCoversAllTopologiesAndModes runs the shipped
// patterns.toml example: four permutation patterns over every topology
// and QoS mode, the acceptance grid of the scenario subsystem.
func TestPatternsSweepCoversAllTopologiesAndModes(t *testing.T) {
	sc, err := Load("../../examples/sweep/patterns.toml")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 5 * 3; g.Size() != want {
		t.Fatalf("grid size %d, want %d", g.Size(), want)
	}
	results := g.Run(RunOpts{})
	seen := map[string]bool{}
	for _, r := range results {
		if r.Delivered == 0 {
			t.Errorf("%s/%v/%v delivered nothing", r.Pattern, r.Topology, r.Mode)
		}
		seen[r.Pattern+"/"+r.Topology.String()+"/"+r.Mode.String()] = true
	}
	if len(seen) != g.Size() {
		t.Errorf("only %d distinct cells", len(seen))
	}
}

// TestSweepDeterministicAcrossWorkersAndSkip runs the bursty example on
// 1 worker vs many and with idle skipping on vs off; every variant must
// be bit-identical.
func TestSweepDeterministicAcrossWorkersAndSkip(t *testing.T) {
	sc, err := Load("../../examples/sweep/bursty-hotspot.toml")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock is the one legitimately non-deterministic column; every
	// measured field must be bit-identical across the matrix.
	stripWall := func(rs []Result) {
		for i := range rs {
			rs[i].Wall, rs[i].CyclesPerSec = 0, 0
		}
	}
	base := g.Run(RunOpts{Workers: 1})
	stripWall(base)
	for _, opts := range []RunOpts{
		{Workers: 0},
		{Workers: 3},
		{Workers: 1, DisableIdleSkip: true},
		{Workers: 0, DisableIdleSkip: true},
		{Workers: 1, EnsembleLanes: 4},
		{Workers: 3, EnsembleLanes: 2},
		{Workers: 0, DisableIdleSkip: true, EnsembleLanes: 8},
	} {
		got := g.Run(opts)
		stripWall(got)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("results diverged for %+v", opts)
		}
	}
}

func TestCSVAndJSONEmission(t *testing.T) {
	sc, err := Parse([]byte(`{"rates":[0.02],"topologies":["mesh_x1"],"warmup":500,"measure":2000}`), ".json")
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Grid()
	if err != nil {
		t.Fatal(err)
	}
	res := g.Run(RunOpts{})
	csv := CSV("emit-test", res)
	if lines := strings.Count(csv, "\n"); lines != 2 {
		t.Errorf("CSV has %d lines, want header + 1 row:\n%s", lines, csv)
	}
	if !strings.Contains(csv, "emit-test,open,uniform,mesh_x1,pvc,42,0.0200") {
		t.Errorf("CSV row malformed:\n%s", csv)
	}
	if !strings.Contains(csv, "tput_stddev_pct_of_mean") {
		t.Errorf("CSV header missing fairness dispersion columns:\n%s", csv)
	}
	blob, err := JSONReport("emit-test", res)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"scenario": "emit-test"`, `"topology": "mesh_x1"`, `"qos": "pvc"`, `"mean_latency_cycles"`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("JSON missing %s:\n%s", want, blob)
		}
	}
	if out := Render("emit-test", res); !strings.Contains(out, "mesh_x1") {
		t.Errorf("render missing row:\n%s", out)
	}
}

func TestLoadRejectsUnknownExtension(t *testing.T) {
	if _, err := Parse([]byte("{}"), ".yaml"); err == nil {
		t.Error("yaml accepted")
	}
}
