package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"tanoq/internal/network"
	"tanoq/internal/runner"
	"tanoq/internal/sim"
	"tanoq/internal/store"
)

// This file makes sweep grids durable: every cell gets a content address
// derived from its complete semantic description, and RunDurable runs a
// grid through the result cache — serving previously-computed rows as
// hits, executing only the misses, checkpointing each row the moment it
// exists, and surviving cancellation with partial results.
//
// What goes into a key is exactly what can change a result: topology,
// node count, QoS mode and parameter overrides, seed, warmup/measure
// schedule, the full workload description (pattern+rate shaping, the
// explicit flow list with roles, the closed-loop axes, or a replay
// trace's content digest), the fault schedule and recovery axes, and
// the engine version stamp. What stays out is exactly what cannot:
// worker count and the idle-skip toggle (results are bit-identical
// either way — a tested engine invariant), deadlines, retry budgets,
// the scenario's display name, and the whole [telemetry] table (probes
// are display-only by the same tested invariant — a probed cell's row
// is bit-identical to an unprobed one's, so the knobs never enter
// cellCanon and cache-served rows simply carry no timeline). Because the simulator is deterministic,
// a cache hit is indistinguishable from a re-run; the float64 metric
// fields round-trip JSON exactly, so a resumed sweep renders its table
// bit-identically to an uninterrupted one.

// canonFormat versions the canonical cell encoding itself; bumping it
// (on any change to the canon structs) retires every existing key.
const canonFormat = "tanoq-cell/v1"

// cellCanon is the canonical description of one simulation cell. Fields
// marshal in declaration order, giving stable bytes for hashing; none
// of them is omitempty, so a zero axis is encoded identically every
// time rather than appearing and disappearing.
type cellCanon struct {
	Format   string        `json:"format"`
	Engine   string        `json:"engine"`
	Topology string        `json:"topology"`
	Nodes    int           `json:"nodes"`
	QoS      qosCanon      `json:"qos"`
	Seed     uint64        `json:"seed"`
	Warmup   int           `json:"warmup"`
	Measure  int           `json:"measure"`
	Workload workloadCanon `json:"workload"`
	Faults   faultsCanon   `json:"faults"`
}

type qosCanon struct {
	Mode          string `json:"mode"`
	FrameCycles   int64  `json:"frame_cycles"`
	WindowPackets int    `json:"window_packets"`
	QuantumFlits  int    `json:"quantum_flits"`
	MarginClasses int    `json:"margin_classes"`
}

// workloadCanon covers every workload class one tagged struct: Kind
// selects which fields are meaningful ("open", "flows", "closed",
// "replay", "victim-ref"); the rest stay zero and therefore inert.
type workloadCanon struct {
	Kind string `json:"kind"`
	// Open-pattern fields (also shaping for flows and victim-ref).
	Pattern         string    `json:"pattern"`
	Rate            float64   `json:"rate"`
	RequestFraction float64   `json:"request_fraction"`
	BurstOn         float64   `json:"burst_on"`
	BurstOff        float64   `json:"burst_off"`
	HotspotWeights  []float64 `json:"hotspot_weights"`
	StopAt          int64     `json:"stop_at"`
	// Explicit-flows field (flows and victim-ref kinds). Roles ride
	// along: a victim role changes the row (the slowdown column), so it
	// must change the key.
	Flows []flowCanon `json:"flows"`
	// Closed-loop fields.
	Outstanding  int     `json:"outstanding"`
	Think        float64 `json:"think"`
	RequestFlits int     `json:"request_flits"`
	ReplyFlits   int     `json:"reply_flits"`
	// Replay fields: the label and the SHA-256 of the trace file's
	// bytes — editing a trace in place retires its cached rows.
	Trace       string `json:"trace"`
	TraceSHA256 string `json:"trace_sha256"`
}

type flowCanon struct {
	Node     int     `json:"node"`
	Injector int     `json:"injector"`
	Rate     float64 `json:"rate"`
	Dest     int     `json:"dest"`
	StopAt   int64   `json:"stop_at"`
	Role     string  `json:"role"`
}

type faultsCanon struct {
	Windows      []windowCanon `json:"windows"`
	RetryTimeout int64         `json:"retry_timeout"`
	MaxRetries   int           `json:"max_retries"`
	Watchdog     int64         `json:"watchdog"`
}

type windowCanon struct {
	Kind  string `json:"kind"`
	Port  int    `json:"port"`
	Node  int    `json:"node"`
	From  int64  `json:"from"`
	Until int64  `json:"until"`
}

// qosCanonOf canonizes the scenario's QoS description for one mode: the
// mode plus the raw parameter overrides (0 = engine default; the engine
// version stamp covers default changes).
func (sc *Scenario) qosCanonOf(p *Point) qosCanon {
	return qosCanon{
		Mode:          p.Mode.String(),
		FrameCycles:   int64(sc.FrameCycles),
		WindowPackets: sc.WindowPackets,
		QuantumFlits:  sc.QuantumFlits,
		MarginClasses: sc.MarginClasses,
	}
}

func (sc *Scenario) flowCanons(flows []FlowSpec) []flowCanon {
	out := make([]flowCanon, len(flows))
	for i, f := range flows {
		out[i] = flowCanon{Node: f.Node, Injector: f.Injector, Rate: f.Rate,
			Dest: f.Dest, StopAt: int64(f.StopAt), Role: f.Role}
	}
	return out
}

func (sc *Scenario) faultsCanonOf(p *Point) faultsCanon {
	fc := faultsCanon{
		Windows:      make([]windowCanon, len(sc.FaultWindows)),
		RetryTimeout: int64(p.RetryTimeout),
		MaxRetries:   p.MaxRetries,
		Watchdog:     int64(sc.WatchdogCycles),
	}
	for i, w := range sc.FaultWindows {
		fc.Windows[i] = windowCanon{Kind: w.Kind.String(), Port: w.Port,
			Node: w.Node, From: int64(w.From), Until: int64(w.Until)}
	}
	return fc
}

// canonOf builds the canonical description of visible grid cell i.
// traceDigest memoizes trace-file hashing across the cells sharing one
// trace.
func (g *Grid) canonOf(i int, traceDigest map[string]string) (cellCanon, error) {
	sc, p, m := g.Scenario, &g.Points[i], &g.meta[i]
	c := cellCanon{
		Format:   canonFormat,
		Engine:   network.EngineVersion(),
		Topology: p.Topology.String(),
		Nodes:    sc.Nodes,
		QoS:      sc.qosCanonOf(p),
		Seed:     p.Seed,
		Warmup:   sc.Warmup,
		Measure:  sc.Measure,
		Faults:   sc.faultsCanonOf(p),
	}
	w := &c.Workload
	w.RequestFraction = sc.RequestFraction
	w.BurstOn, w.BurstOff = sc.Burst.MeanOn, sc.Burst.MeanOff
	w.StopAt = int64(sc.StopAt)
	switch {
	case m.trace != "":
		w.Kind = "replay"
		w.Trace = p.Workload
		digest, ok := traceDigest[m.trace]
		if !ok {
			blob, err := os.ReadFile(m.trace)
			if err != nil {
				return cellCanon{}, fmt.Errorf("scenario %s: digest trace: %w", sc.Name, err)
			}
			sum := sha256.Sum256(blob)
			digest = hex.EncodeToString(sum[:])
			traceDigest[m.trace] = digest
		}
		w.TraceSHA256 = digest
	case m.closed:
		w.Kind = "closed"
		w.Pattern = p.Pattern
		w.Outstanding = p.Outstanding
		w.Think = p.Think
		w.RequestFlits = sc.RequestFlits
		w.ReplyFlits = sc.ReplyFlits
	case len(sc.Flows) > 0:
		w.Kind = "flows"
		w.Flows = sc.flowCanons(sc.Flows)
	default:
		w.Kind = "open"
		w.Pattern = p.Pattern
		w.Rate = p.Rate
		w.HotspotWeights = sc.HotspotWeights
	}
	return c, nil
}

// refCanonOf builds the canonical description of hidden victim-only
// reference cell r. The reference grid index identifies topology, mode
// and seed through the refCells expansion order, so the canon is built
// straight from its runner cell plus the victim flow list.
func (g *Grid) refCanonOf(r int) cellCanon {
	sc := g.Scenario
	cell := &g.refCells[r]
	var victims []FlowSpec
	for _, f := range sc.Flows {
		if f.Role == "victim" {
			victims = append(victims, f)
		}
	}
	return cellCanon{
		Format:   canonFormat,
		Engine:   network.EngineVersion(),
		Topology: cell.Config.Kind.String(),
		Nodes:    sc.Nodes,
		QoS: qosCanon{Mode: cell.Config.QoS.Mode.String(),
			FrameCycles: int64(sc.FrameCycles), WindowPackets: sc.WindowPackets,
			QuantumFlits: sc.QuantumFlits, MarginClasses: sc.MarginClasses},
		Seed:    cell.Config.Seed,
		Warmup:  sc.Warmup,
		Measure: sc.Measure,
		Workload: workloadCanon{
			Kind:            "victim-ref",
			RequestFraction: sc.RequestFraction,
			BurstOn:         sc.Burst.MeanOn,
			BurstOff:        sc.Burst.MeanOff,
			StopAt:          int64(sc.StopAt),
			Flows:           sc.flowCanons(victims),
		},
	}
}

// keyOf content-addresses a canon.
func canonKey(c cellCanon) (string, error) {
	blob, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("scenario: canonical encode: %w", err)
	}
	return store.KeyOf(blob), nil
}

// Keys returns the content-address of every visible grid cell, in grid
// order. Two grids whose cells describe the same simulations — same
// scenario semantics under any file-key ordering, spelling, or display
// name — produce identical keys; any semantic difference produces
// different ones.
func (g *Grid) Keys() ([]string, error) {
	keys := make([]string, len(g.cells))
	digests := map[string]string{}
	for i := range g.cells {
		c, err := g.canonOf(i, digests)
		if err != nil {
			return nil, err
		}
		if keys[i], err = canonKey(c); err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// refKeys returns the content-address of every hidden victim-reference
// cell.
func (g *Grid) refKeys() ([]string, error) {
	keys := make([]string, len(g.refCells))
	for r := range g.refCells {
		var err error
		if keys[r], err = canonKey(g.refCanonOf(r)); err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// cachedRow is a visible cell's cache payload: every measured column of
// its Result plus the attempts that produced it. The Point is not
// stored — it is re-derived from the grid on every read, so a cached
// row can never carry a stale label.
type cachedRow struct {
	MeanLatency       float64 `json:"mean_latency"`
	P99Latency        float64 `json:"p99_latency"`
	Accepted          float64 `json:"accepted"`
	PreemptionPct     float64 `json:"preemption_pct"`
	Delivered         int64   `json:"delivered"`
	End               int64   `json:"end"`
	TputMinPct        float64 `json:"tput_min_pct"`
	TputMaxPct        float64 `json:"tput_max_pct"`
	TputStdDevPct     float64 `json:"tput_stddev_pct"`
	Completed         int64   `json:"completed"`
	MeanRTT           float64 `json:"mean_rtt"`
	P99RTT            float64 `json:"p99_rtt"`
	DeliveredFraction float64 `json:"delivered_fraction"`
	Retries           int64   `json:"retries"`
	Drops             int64   `json:"drops"`
	MeanRecovery      float64 `json:"mean_recovery"`
	VictimSlowdown    float64 `json:"victim_slowdown"`
	Attempts          int     `json:"attempts"`
	// WallNS is the wall-clock of the run that produced the row —
	// informational provenance, never compared (cache verification
	// excludes it; see verifyHits).
	WallNS int64 `json:"wall_ns"`
}

// refPayload is a victim-reference cell's cache payload: the baseline
// the slowdown column divides by.
type refPayload struct {
	VictimMean float64 `json:"victim_mean"`
}

func rowToPayload(r *Result) cachedRow {
	return cachedRow{
		MeanLatency: r.MeanLatency, P99Latency: r.P99Latency,
		Accepted: r.Accepted, PreemptionPct: r.PreemptionPct,
		Delivered: r.Delivered, End: int64(r.End),
		TputMinPct: r.TputMinPct, TputMaxPct: r.TputMaxPct, TputStdDevPct: r.TputStdDevPct,
		Completed: r.Completed, MeanRTT: r.MeanRTT, P99RTT: r.P99RTT,
		DeliveredFraction: r.DeliveredFraction, Retries: r.Retries,
		Drops: r.Drops, MeanRecovery: r.MeanRecovery,
		VictimSlowdown: r.VictimSlowdown, Attempts: r.Attempts,
		WallNS: int64(r.Wall),
	}
}

func payloadToRow(p Point, c *cachedRow) Result {
	cps := 0.0
	if c.WallNS > 0 {
		cps = float64(c.End) / (float64(c.WallNS) / 1e9)
	}
	return Result{
		Point:       p,
		MeanLatency: c.MeanLatency, P99Latency: c.P99Latency,
		Accepted: c.Accepted, PreemptionPct: c.PreemptionPct,
		Delivered: c.Delivered, End: sim.Cycle(c.End),
		TputMinPct: c.TputMinPct, TputMaxPct: c.TputMaxPct, TputStdDevPct: c.TputStdDevPct,
		Completed: c.Completed, MeanRTT: c.MeanRTT, P99RTT: c.P99RTT,
		DeliveredFraction: c.DeliveredFraction, Retries: c.Retries,
		Drops: c.Drops, MeanRecovery: c.MeanRecovery,
		VictimSlowdown: c.VictimSlowdown, Attempts: c.Attempts,
		Wall: time.Duration(c.WallNS), CyclesPerSec: cps,
	}
}

// DurableOpts tunes RunDurable. The zero value behaves like Grid.Run:
// no cache, no deadline, the historical one-retry budget.
type DurableOpts struct {
	RunOpts
	// Store, when non-nil, memoizes result rows: hits are served without
	// simulating, misses are executed and written back. Failed cells are
	// never cached — a transient failure re-runs on the next attempt.
	Store *store.Store
	// Journal, when non-nil, records each completed cell's key as its
	// row is checkpointed (after the cache write, so every journaled key
	// is backed by a durable entry).
	Journal *store.Journal
	// Deadline, Retries and Backoff are passed through to the runner for
	// every executed cell (Retries: 0 = the historical single retry,
	// negative = none).
	Deadline time.Duration
	Retries  int
	Backoff  time.Duration
	// VerifySample, when positive, re-executes up to that many evenly-
	// spaced cache hits and compares the recomputed rows against the
	// cached ones; mismatches are reported on DurableReport.VerifyBad.
	VerifySample int
}

// DurableReport is RunDurable's outcome: the rows in grid order plus
// the execution accounting a resumable sweep needs to report.
type DurableReport struct {
	Results []Result
	// Hits counts rows served from the cache; Executed counts visible
	// cells actually simulated (0 on a fully-cached re-run); Failed
	// counts executed cells whose every attempt died (their rows carry
	// Error); Skipped counts cells abandoned by cancellation.
	Hits     int
	Executed int
	Failed   int
	Skipped  int
	// Interrupted is set when cancellation cut the sweep short.
	Interrupted bool
	// Groups counts the ensemble batches the executed cells ran in
	// (units of two or more lanes); Lanes echoes the configured cap.
	// Both are zero when ensemble execution is disabled.
	Groups int
	Lanes  int
	// Verified counts re-executed hits that matched their cached rows;
	// VerifyBad describes the ones that did not.
	Verified  int
	VerifyBad []string
}

// skippedError marks rows of cells a cancelled sweep never ran.
const skippedError = "skipped: sweep cancelled"

// RunDurable executes the grid through the result cache. Rows whose
// content address hits the store are served without simulating; the
// misses run on the parallel runner with the configured deadlines and
// retry budgets, and each finished row is written back and journaled
// the moment it exists, so an interrupted process loses at most its
// in-flight cells. Hidden victim-reference cells are themselves cached
// and only executed when a missed cell needs their baseline — a fully
// cached sweep executes zero simulations. Once ctx is cancelled no new
// cells are issued; in-flight cells drain and checkpoint, and the
// never-issued ones come back as rows marked skipped.
func (g *Grid) RunDurable(ctx context.Context, opts DurableOpts) (*DurableReport, error) {
	rep := &DurableReport{Results: make([]Result, len(g.cells))}
	keys, err := g.Keys()
	if err != nil {
		return nil, err
	}

	// Phase 1: serve hits, collect misses.
	missed := make([]int, 0, len(g.cells))
	hitIdx := make([]int, 0, len(g.cells))
	for i := range g.cells {
		if opts.Store != nil {
			if blob, ok := opts.Store.Get(keys[i]); ok {
				var row cachedRow
				if json.Unmarshal(blob, &row) == nil {
					rep.Results[i] = payloadToRow(g.Points[i], &row)
					rep.Hits++
					hitIdx = append(hitIdx, i)
					if opts.OnCell != nil {
						opts.OnCell(CellEvent{Cell: i, Cached: true, Worker: -1,
							Attempts: row.Attempts, Wall: time.Duration(row.WallNS), Cycles: row.End})
					}
					continue
				}
			}
		}
		missed = append(missed, i)
	}

	// Phase 2: baselines. A missed cell with victims needs its reference
	// cell's mean latency; references resolve through the cache first and
	// only the unresolved ones simulate.
	refBase := make(map[int]float64)
	if err := g.resolveRefs(ctx, &opts, missed, refBase); err != nil {
		return nil, err
	}

	// Phase 3: run the misses, checkpointing each row as it lands.
	ropts := runner.Options{
		Workers:  opts.Workers,
		Retries:  opts.Retries,
		Backoff:  opts.Backoff,
		Deadline: opts.Deadline,
	}
	if ropts.Retries == 0 {
		ropts.Retries = 1 // Grid.Run's historical budget
	}
	cells := make([]runner.Cell, len(missed))
	for mi, i := range missed {
		cells[mi] = g.cells[i]
		cells[mi].Config.DisableIdleSkip = opts.DisableIdleSkip
	}
	if opts.EnsembleLanes > 1 {
		vis, _ := g.groupIDs()
		for mi, i := range missed {
			cells[mi].Group = vis[i]
		}
		// Cache hits shrink groups naturally: only the missed members of
		// a seed group batch together. The plan is the same deterministic
		// function the runner applies, so this accounting is exact.
		ropts.Lanes = opts.EnsembleLanes
		rep.Lanes = opts.EnsembleLanes
		for _, unit := range runner.PlanUnits(cells, opts.EnsembleLanes) {
			if len(unit) > 1 {
				rep.Groups++
			}
		}
	}
	var (
		ckMu          sync.Mutex
		checkpointErr error
	)
	ropts.OnResult = func(mi int, r *runner.Result) {
		i := missed[mi]
		row := g.row(i, r, refBase[g.meta[i].ref])
		rep.Results[i] = row
		if opts.OnCell != nil {
			opts.OnCell(cellEventOf(i, r))
		}
		if row.Error != "" || opts.Store == nil {
			return // failures re-run next time; never cache them
		}
		blob, _ := json.Marshal(rowToPayload(&row))
		err := opts.Store.Put(keys[i], blob)
		if err == nil && opts.Journal != nil {
			err = opts.Journal.Record(keys[i])
		}
		if err != nil {
			ckMu.Lock()
			if checkpointErr == nil {
				checkpointErr = err
			}
			ckMu.Unlock()
		}
	}
	res := runner.RunCellsCtx(ctx, cells, ropts)
	for mi, i := range missed {
		if res[mi].Err == runner.ErrSkipped {
			rep.Results[i] = Result{Point: g.Points[i], Error: skippedError}
			rep.Skipped++
			if opts.OnCell != nil {
				opts.OnCell(CellEvent{Cell: i, Skipped: true, Worker: -1})
			}
			continue
		}
		rep.Executed++
		if rep.Results[i].Error != "" {
			rep.Failed++
		}
	}
	rep.Interrupted = rep.Skipped > 0 || ctx.Err() != nil
	if checkpointErr != nil {
		return rep, fmt.Errorf("scenario %s: checkpoint: %w", g.Scenario.Name, checkpointErr)
	}

	// Phase 4: optional hit verification — re-run a sample of served
	// rows and fail loudly on any divergence (a corrupted store, a
	// mis-stamped engine).
	if opts.VerifySample > 0 && len(hitIdx) > 0 && !rep.Interrupted {
		if err := g.verifyHits(ctx, &opts, hitIdx, refBase, rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// resolveRefs fills refBase for every reference cell some missed cell
// depends on: from the cache when possible, by simulation otherwise
// (writing the baseline back). A failed reference leaves its baseline
// at zero — dependents report no slowdown, matching Grid.Run.
func (g *Grid) resolveRefs(ctx context.Context, opts *DurableOpts, missed []int, refBase map[int]float64) error {
	needed := map[int]bool{}
	for _, i := range missed {
		if m := &g.meta[i]; len(m.victims) > 0 {
			needed[m.ref] = true
		}
	}
	if len(needed) == 0 {
		return nil
	}
	rkeys, err := g.refKeys()
	if err != nil {
		return err
	}
	var torun []int
	for r := range needed {
		if opts.Store != nil {
			if blob, ok := opts.Store.Get(rkeys[r]); ok {
				var p refPayload
				if json.Unmarshal(blob, &p) == nil {
					refBase[r] = p.VictimMean
					continue
				}
			}
		}
		torun = append(torun, r)
	}
	if len(torun) == 0 {
		return nil
	}
	cells := make([]runner.Cell, len(torun))
	for ti, r := range torun {
		cells[ti] = g.refCells[r]
		cells[ti].Config.DisableIdleSkip = opts.DisableIdleSkip
	}
	ropts := runner.Options{Workers: opts.Workers, Retries: opts.Retries,
		Backoff: opts.Backoff, Deadline: opts.Deadline, Lanes: opts.EnsembleLanes}
	if opts.EnsembleLanes > 1 {
		_, refs := g.groupIDs()
		for ti, r := range torun {
			cells[ti].Group = refs[r]
		}
	}
	if ropts.Retries == 0 {
		ropts.Retries = 1
	}
	res := runner.RunCellsCtx(ctx, cells, ropts)
	for ti, r := range torun {
		if res[ti].Failed() {
			continue
		}
		// The victim set is shared by every reference cell (it is the
		// scenario's victim-role flows), so any dependent's meta works.
		base := 0.0
		for _, i := range missed {
			if m := &g.meta[i]; m.ref == r && len(m.victims) > 0 {
				base = victimMeanLatency(res[ti].Stats, m.victims)
				break
			}
		}
		refBase[r] = base
		if opts.Store != nil && base > 0 {
			blob, _ := json.Marshal(refPayload{VictimMean: base})
			if err := opts.Store.Put(rkeys[r], blob); err != nil {
				return fmt.Errorf("scenario %s: checkpoint reference: %w", g.Scenario.Name, err)
			}
		}
	}
	return nil
}

// verifyHits re-executes up to opts.VerifySample evenly-spaced cache
// hits and compares the recomputed rows to the served ones.
func (g *Grid) verifyHits(ctx context.Context, opts *DurableOpts, hitIdx []int, refBase map[int]float64, rep *DurableReport) error {
	sample := hitIdx
	if opts.VerifySample < len(sample) {
		step := len(hitIdx) / opts.VerifySample
		sample = make([]int, 0, opts.VerifySample)
		for k := 0; k < opts.VerifySample; k++ {
			sample = append(sample, hitIdx[k*step])
		}
	}
	// Verification may need baselines the miss path never resolved.
	if err := g.resolveRefs(ctx, opts, sample, refBase); err != nil {
		return err
	}
	cells := make([]runner.Cell, len(sample))
	for si, i := range sample {
		cells[si] = g.cells[i]
		cells[si].Config.DisableIdleSkip = opts.DisableIdleSkip
	}
	res := runner.RunCellsCtx(ctx, cells, runner.Options{Workers: opts.Workers,
		Retries: 1, Deadline: opts.Deadline})
	for si, i := range sample {
		if res[si].Err == runner.ErrSkipped {
			continue
		}
		fresh := g.row(i, &res[si], refBase[g.meta[i].ref])
		served := rep.Results[i]
		// Attempts and wall-clock legitimately differ between the original
		// run and the verification re-run; everything measured must match
		// exactly.
		fresh.Attempts, served.Attempts = 0, 0
		fresh.Wall, served.Wall = 0, 0
		fresh.CyclesPerSec, served.CyclesPerSec = 0, 0
		if fresh != served {
			rep.VerifyBad = append(rep.VerifyBad,
				fmt.Sprintf("cell %d (%s/%s/%s seed %d): cached row diverges from re-execution",
					i, g.Points[i].Pattern, g.Points[i].Topology, g.Points[i].Mode, g.Points[i].Seed))
			continue
		}
		rep.Verified++
	}
	return nil
}
