package experiments

import (
	"fmt"
	"strings"

	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/runner"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
	"tanoq/internal/workload"
)

// The closed-loop hotspot experiment extends the paper's evaluation to
// the workload class its open-loop methodology cannot express: clients
// that wait for replies before issuing more work. Every node hosts a
// client streaming write-shaped transactions at node 0's shared resource
// — 4-flit write requests into the contended ejection port (exactly
// Table 2's resource), acknowledged by 1-flit completions — with a
// bounded outstanding window. The transaction's bandwidth rides the
// request path, so per-client QoS arbitration at the hotspot decides who
// completes work. Under no-QoS round-robin the distant clients'
// starvation compounds — each lost arbitration stalls a window slot for
// a full round trip — while PVC holds per-client completion level. This
// is the regime where QoS changes end-to-end throughput, not just
// latency tails.

// ClosedLoopRow is one topology × QoS-mode cell: the dispersion of
// per-client completed requests (Table-2 style) plus round-trip latency.
type ClosedLoopRow struct {
	Kind topology.Kind
	Mode qos.Mode
	// Summary is the per-client completed-request dispersion over the
	// measurement window.
	Summary stats.Summary
	// Completed is the total completed round trips; MeanRTT/P99RTT the
	// round-trip latency aggregates in cycles.
	Completed int64
	MeanRTT   float64
	P99RTT    float64
}

// Closed-loop experiment shape: every client keeps ClosedLoopWindow
// requests in flight at the node-0 hotspot with a short think time — deep
// enough to keep the server saturated, so arbitration (not client
// demand) decides who completes work.
const (
	ClosedLoopWindow    = 32
	ClosedLoopThinkMean = 10.0
)

// ClosedLoop runs the closed-loop hotspot experiment over every topology
// and QoS mode, one parallel runner cell per combination.
func ClosedLoop(p Params) []ClosedLoopRow {
	kinds := topology.Kinds()
	modes := []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS}
	var cells []runner.Cell
	var rows []ClosedLoopRow
	for _, kind := range kinds {
		for _, mode := range modes {
			w := workload.ClientWorkload("closed-hotspot", topology.ColumnNodes)
			cells = append(cells, runner.Cell{
				Config: p.netConfig(kind, w, mode),
				Warmup: p.Warmup, Measure: p.Measure,
				Setup: func(n *network.Network) any {
					ct, err := workload.NewController(n, workload.ClientConfig{
						Outstanding:  ClosedLoopWindow,
						ThinkMean:    ClosedLoopThinkMean,
						Pattern:      traffic.HotspotTraffic(nil),
						RequestFlits: noc.ReplyFlits,   // 4-flit writes in
						ReplyFlits:   noc.RequestFlits, // 1-flit acks back
						Seed:         p.Seed,
					})
					if err != nil {
						panic(err)
					}
					return ct
				},
			})
			rows = append(rows, ClosedLoopRow{Kind: kind, Mode: mode})
		}
	}
	res := runner.RunCells(cells, p.Workers)
	runner.MustOK(res)
	for i := range rows {
		ct := res[i].Aux.(*workload.Controller)
		rows[i].Summary = stats.Summarize(ct.RT.PerClient())
		rows[i].Completed = ct.RT.TotalCompleted()
		rows[i].MeanRTT = ct.RT.MeanRTT()
		rows[i].P99RTT = float64(ct.RT.Latencies.Percentile(99))
	}
	return rows
}

// RenderClosedLoop prints the experiment in Table 2's format, extended
// with round-trip latency: per-client completed requests with
// min/max/stddev as percentages of the mean.
func RenderClosedLoop(rows []ClosedLoopRow) string {
	var b strings.Builder
	b.WriteString(header("Closed loop: per-client completed requests under a hotspot server"))
	fmt.Fprintf(&b, "%-9s %-14s %9s %8s %16s %16s %16s %10s %9s\n",
		"topology", "qos", "completed", "mean", "min (% of mean)", "max (% of mean)", "stddev (% mean)", "mean rtt", "p99 rtt")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-14s %9d %8.0f %7.0f (%5.1f%%) %7.0f (%5.1f%%) %7.1f (%5.1f%%) %10.1f %9.0f\n",
			r.Kind, r.Mode, r.Completed, r.Summary.Mean,
			r.Summary.Min, r.Summary.MinPctOfMean(),
			r.Summary.Max, r.Summary.MaxPctOfMean(),
			r.Summary.StdDev, r.Summary.StdDevPctOfMean(),
			r.MeanRTT, r.P99RTT)
	}
	return b.String()
}

// ClosedLoopCSV renders the experiment as CSV rows.
func ClosedLoopCSV(rows []ClosedLoopRow) string {
	var b strings.Builder
	b.WriteString("topology,qos,completed_requests,mean_completed_per_client,min_pct_of_mean,max_pct_of_mean,stddev_pct_of_mean,mean_rtt_cycles,p99_rtt_cycles\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%d,%.1f,%.2f,%.2f,%.2f,%.2f,%.0f\n",
			r.Kind, r.Mode, r.Completed, r.Summary.Mean,
			r.Summary.MinPctOfMean(), r.Summary.MaxPctOfMean(), r.Summary.StdDevPctOfMean(),
			r.MeanRTT, r.P99RTT)
	}
	return b.String()
}
