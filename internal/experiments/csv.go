package experiments

import (
	"fmt"
	"strings"
)

// CSV emitters, one per artifact, for plotting the regenerated figures
// with external tooling. Columns mirror the paper's axes.

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Fig3CSV renders the area breakdown: topology,row_buf,col_buf,xbar,
// flow_state,total (mm²).
func Fig3CSV(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("topology,row_buf_mm2,col_buf_mm2,xbar_mm2,flow_state_mm2,total_mm2\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			csvEscape(r.Kind.String()), r.Area.RowBuffers, r.Area.ColBuffers,
			r.Area.Crossbar, r.Area.FlowState, r.Area.Total())
	}
	return b.String()
}

// Fig4CSV renders the latency curves: rate_pct then one latency column per
// topology (the paper's X/Y axes).
func Fig4CSV(series []Fig4Series) string {
	var b strings.Builder
	b.WriteString("rate_pct")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s_latency_cycles,%s_p99_cycles", csvEscape(s.Kind.String()), csvEscape(s.Kind.String()))
	}
	b.WriteString("\n")
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%.1f", series[0].Points[i].Rate*100)
		for _, s := range series {
			fmt.Fprintf(&b, ",%.2f,%.0f", s.Points[i].MeanLatency, s.Points[i].P99Latency)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2CSV renders the fairness table: topology,mean,min,max,stddev and
// the percent-of-mean columns.
func Table2CSV(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("topology,mean_flits,min_flits,max_flits,stddev_flits,min_pct,max_pct,stddev_pct,preempt_pct\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.0f,%.0f,%.0f,%.2f,%.2f,%.2f,%.2f,%.3f\n",
			csvEscape(r.Kind.String()), r.Summary.Mean, r.Summary.Min, r.Summary.Max,
			r.Summary.StdDev, r.Summary.MinPctOfMean(), r.Summary.MaxPctOfMean(),
			r.Summary.StdDevPctOfMean(), r.PreemptionPct)
	}
	return b.String()
}

// Fig5CSV renders the preemption bars: topology,packets_pct,hops_pct.
func Fig5CSV(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("topology,packets_pct,hops_pct\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.2f,%.2f\n", csvEscape(r.Kind.String()), r.PacketsPct, r.HopsPct)
	}
	return b.String()
}

// Fig6CSV renders slowdown and deviation: topology,slowdown_pct,
// avg_dev_pct,min_dev_pct,max_dev_pct.
func Fig6CSV(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("topology,slowdown_pct,avg_dev_pct,min_dev_pct,max_dev_pct\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.2f,%.2f,%.2f,%.2f\n",
			csvEscape(r.Kind.String()), r.SlowdownPct, r.AvgDeviationPct,
			r.MinDeviationPct, r.MaxDeviationPct)
	}
	return b.String()
}

// Fig7CSV renders hop energies: topology,hop_type,buffers_nj,xbar_nj,
// flow_table_nj,total_nj — long format, one row per (topology, hop type).
func Fig7CSV(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("topology,hop_type,buffers_nj,xbar_nj,flow_table_nj,total_nj\n")
	for _, r := range rows {
		emit := func(name string, e interface {
			Total() float64
		}, buffers, xbar, flow float64) {
			fmt.Fprintf(&b, "%s,%s,%.3f,%.3f,%.3f,%.3f\n",
				csvEscape(r.Kind.String()), name, buffers, xbar, flow, e.Total())
		}
		emit("src", r.Src, r.Src.Buffers, r.Src.Crossbar, r.Src.FlowTable)
		if r.Intermediate.Total() > 0 {
			emit("intermediate", r.Intermediate, r.Intermediate.Buffers,
				r.Intermediate.Crossbar, r.Intermediate.FlowTable)
		}
		emit("dest", r.Dest, r.Dest.Buffers, r.Dest.Crossbar, r.Dest.FlowTable)
		emit("3hops", r.ThreeHops, r.ThreeHops.Buffers, r.ThreeHops.Crossbar, r.ThreeHops.FlowTable)
	}
	return b.String()
}
