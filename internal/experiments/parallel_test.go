package experiments

import (
	"reflect"
	"testing"

	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// withWorkers returns tiny() with the given runner parallelism.
func withWorkers(workers int) Params {
	p := tiny()
	p.Workers = workers
	return p
}

// TestExperimentsDeterministicAcrossWorkerCounts is the PR's headline
// contract: every experiment driver produces field-for-field identical
// results whether its simulation cells run sequentially or across eight
// workers. Each cell owns its seeded RNG and the runner returns results
// in input order, so parallelism must be unobservable in the output.
func TestExperimentsDeterministicAcrossWorkerCounts(t *testing.T) {
	rates := []float64{0.03, 0.08}
	type experiment struct {
		name string
		run  func(p Params) any
	}
	for _, e := range []experiment{
		{"Fig4", func(p Params) any { return Fig4(Uniform, rates, p) }},
		{"SaturationPreemptions", func(p Params) any { return SaturationPreemptions(p) }},
		{"Fig5", func(p Params) any { return Fig5(Workload1, p) }},
		{"Fig6", func(p Params) any { return Fig6(Workload2, p) }},
		{"Table2", func(p Params) any { return Table2(p) }},
		{"Motivation", func(p Params) any { return Motivation(topology.MeshX1, p) }},
		{"AblateMargin", func(p Params) any { return AblateMargin(topology.MeshX1, []int{1, 64}, p) }},
		{"AblateQuota", func(p Params) any { return AblateQuota(topology.MeshX1, p) }},
		{"AblateFrame", func(p Params) any { return AblateFrame(topology.DPS, []sim.Cycle{12_500, 50_000}, p) }},
		{"AblateQuantum", func(p Params) any { return AblateQuantum(topology.DPS, []int{8, 128}, p) }},
		{"AblateWindow", func(p Params) any { return AblateWindow(topology.MeshX1, []int{1, 8}, p) }},
	} {
		t.Run(e.name, func(t *testing.T) {
			seq := e.run(withWorkers(1))
			par := e.run(withWorkers(8))
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("parallel result differs from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// TestExperimentsIdenticalWithIdleSkipDisabled is the experiments-level
// face of the engine's skipping proof: a driver's results must be
// field-for-field identical whether its cells fast-forward idle windows
// or tick through every cycle. Run over the drivers with the most
// distinct schedules (plain warmup/measure grid, and Fig6's
// inject/snapshot/drain choreography).
func TestExperimentsIdenticalWithIdleSkipDisabled(t *testing.T) {
	withSkip := func(on bool) Params {
		p := tiny()
		p.DisableIdleSkip = !on
		return p
	}
	for _, e := range []struct {
		name string
		run  func(p Params) any
	}{
		{"Fig4", func(p Params) any { return Fig4(Uniform, []float64{0.01, 0.05}, p) }},
		{"Fig6", func(p Params) any { return Fig6(Workload1, p) }},
		{"Table2", func(p Params) any { return Table2(p) }},
	} {
		t.Run(e.name, func(t *testing.T) {
			skipped := e.run(withSkip(true))
			ticked := e.run(withSkip(false))
			if !reflect.DeepEqual(skipped, ticked) {
				t.Errorf("idle skipping changed results:\nskip: %+v\ntick: %+v", skipped, ticked)
			}
		})
	}
}
