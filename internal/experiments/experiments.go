// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment has a driver returning
// structured results and a renderer printing the same rows/series the
// paper reports. cmd/noctool and the repository benchmarks are thin
// wrappers over this package; EXPERIMENTS.md records paper-vs-measured
// values for each artifact.
package experiments

import (
	"fmt"
	"strings"

	"tanoq/internal/network"
	"tanoq/internal/qos"
	"tanoq/internal/runner"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Params controls simulation length, seeding and parallelism for the
// dynamic experiments. The zero value is unusable; use DefaultParams or
// QuickParams.
type Params struct {
	Seed    uint64
	Warmup  int
	Measure int
	// Workers caps the experiment runner's parallelism: 0 runs one
	// worker per CPU, 1 forces sequential execution. Results are
	// bit-identical for every value — each simulation cell owns its
	// seeded RNG, and the runner returns results in input order.
	Workers int
	// DisableIdleSkip forces every cell's engine to tick through each
	// cycle instead of fast-forwarding over provably idle windows
	// (network.Config.DisableIdleSkip, passed through verbatim).
	// Skipping is mechanical — results are bit-identical either way —
	// so this knob exists only for that proof, for debugging, and for
	// benchmarking the tick-driven engine. Like the network field, the
	// zero value selects the fast path, so plain Params literals cannot
	// silently lose it.
	DisableIdleSkip bool
}

// DefaultParams reproduces the paper-scale runs: a warmup transient plus
// a multi-frame measurement window.
func DefaultParams() Params {
	return Params{Seed: 42, Warmup: 20_000, Measure: 100_000}
}

// QuickParams scales runs down for tests and benchmark iterations while
// keeping every qualitative shape.
func QuickParams() Params {
	return Params{Seed: 42, Warmup: 3_000, Measure: 15_000}
}

// QuickFig4Rates is the reduced Figure 4 rate grid used by -quick runs and
// the repository benchmarks. The 1 % row is the near-idle regime the
// event-driven engine targets: its cells cost O(packets), not O(cycles).
func QuickFig4Rates() []float64 {
	return []float64{0.01, 0.02, 0.05, 0.08, 0.11, 0.14}
}

// FlowPopulation is the QoS flow population of the 8-node shared column:
// eight injectors per node.
const FlowPopulation = topology.ColumnNodes * topology.InjectorsPerNode

// defaultQoS builds the evaluation's QoS configuration: PVC with a 50K
// frame and equal assigned rates over the full flow population — the
// provisioning under which the adversarial subsets of Workloads 1 and 2
// exhaust their reserved quotas.
func defaultQoS(mode qos.Mode) qos.Config {
	cfg := qos.DefaultConfig(FlowPopulation)
	cfg.Mode = mode
	return cfg
}

// netConfig assembles one shared-column network configuration — the unit
// the parallel experiment runner fans out over — carrying p's seed and
// idle-skip setting.
func (p Params) netConfig(kind topology.Kind, w traffic.Workload, mode qos.Mode) network.Config {
	return network.Config{
		Kind:            kind,
		Nodes:           topology.ColumnNodes,
		QoS:             defaultQoS(mode),
		Workload:        w,
		Seed:            p.Seed,
		DisableIdleSkip: p.DisableIdleSkip,
	}
}

// buildNet assembles one shared-column network (single-simulation paths;
// grid experiments go through runner.RunCells instead).
func (p Params) buildNet(kind topology.Kind, w traffic.Workload, mode qos.Mode) *network.Network {
	return network.MustNew(p.netConfig(kind, w, mode))
}

// cell pairs a network configuration with p's warmup/measure schedule.
func (p Params) cell(cfg network.Config) runner.Cell {
	return runner.Cell{Config: cfg, Warmup: p.Warmup, Measure: p.Measure}
}

// header renders an underlined section title.
func header(title string) string {
	return title + "\n" + strings.Repeat("-", len(title)) + "\n"
}

// fmtPct renders a percentage with one decimal.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
