package experiments

import (
	"fmt"
	"strings"

	"tanoq/internal/qos"
	"tanoq/internal/runner"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Table2Row is one topology's hotspot-fairness line: the dispersion of
// per-flow delivered flits when all 64 injectors stream at node 0's
// terminal.
type Table2Row struct {
	Kind    topology.Kind
	Summary stats.Summary
	// PreemptionPct is the (very low) preemption incidence in this
	// experiment; PVC's reserved quota throttles discards when every
	// source transmits within its allocation (Section 5.3).
	PreemptionPct float64
}

// hotspotRate is the per-injector offered load of the Table 2 experiment:
// with 64 flows sharing one terminal's flit/cycle, anything beyond
// 1/64 ≈ 1.6 % saturates the hotspot; 5 % holds it deep in saturation.
const hotspotRate = 0.05

// Table2Params sizes the measurement window so each flow's fair share is
// the ~4.2 K flits the paper's table reports (64 flows x 4,190 flits ≈
// 268 K cycles of saturated ejection).
func Table2Params() Params {
	return Params{Seed: 42, Warmup: 20_000, Measure: 268_288}
}

// Table2 runs the hotspot fairness experiment for every topology, one
// parallel cell per topology.
func Table2(p Params) []Table2Row {
	kinds := topology.Kinds()
	cells := make([]runner.Cell, len(kinds))
	for i, kind := range kinds {
		cells[i] = p.cell(p.netConfig(kind, traffic.Hotspot(topology.ColumnNodes, hotspotRate), qos.PVC))
	}
	res := runner.RunCells(cells, p.Workers)
	runner.MustOK(res)
	out := make([]Table2Row, len(kinds))
	for i, kind := range kinds {
		st := res[i].Stats
		flits := make([]float64, 0, FlowPopulation)
		for _, v := range st.FlitsByFlow() {
			flits = append(flits, float64(v))
		}
		out[i] = Table2Row{
			Kind:          kind,
			Summary:       stats.Summarize(flits),
			PreemptionPct: st.PreemptionPacketRate(),
		}
	}
	return out
}

// RenderTable2 prints the table in the paper's format: mean flits with
// min/max/stddev as percentages of the mean.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString(header("Table 2: relative throughput under hotspot traffic, in flits"))
	fmt.Fprintf(&b, "%-9s %8s %18s %18s %18s\n",
		"topology", "mean", "min (% of mean)", "max (% of mean)", "stddev (% of mean)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %8.0f %8.0f (%5.1f%%) %8.0f (%5.1f%%) %8.1f (%5.1f%%)\n",
			r.Kind, r.Summary.Mean,
			r.Summary.Min, r.Summary.MinPctOfMean(),
			r.Summary.Max, r.Summary.MaxPctOfMean(),
			r.Summary.StdDev, r.Summary.StdDevPctOfMean())
	}
	return b.String()
}
