package experiments

import (
	"strings"
	"testing"

	"tanoq/internal/stats"
	"tanoq/internal/topology"
)

func countLines(s string) int {
	return len(strings.Split(strings.TrimRight(s, "\n"), "\n"))
}

func TestFig3CSV(t *testing.T) {
	out := Fig3CSV(Fig3())
	if countLines(out) != 6 { // header + 5 topologies
		t.Fatalf("lines = %d:\n%s", countLines(out), out)
	}
	if !strings.HasPrefix(out, "topology,row_buf_mm2") {
		t.Errorf("bad header:\n%s", out)
	}
	if !strings.Contains(out, "mesh_x4") {
		t.Errorf("missing topology row:\n%s", out)
	}
}

func TestFig4CSV(t *testing.T) {
	series := []Fig4Series{
		{Kind: topology.MeshX1, Points: []Fig4Point{{Rate: 0.05, MeanLatency: 20.5, P99Latency: 44}}},
		{Kind: topology.DPS, Points: []Fig4Point{{Rate: 0.05, MeanLatency: 11.25, P99Latency: 30}}},
	}
	out := Fig4CSV(series)
	want := "rate_pct,mesh_x1_latency_cycles,mesh_x1_p99_cycles,dps_latency_cycles,dps_p99_cycles\n" +
		"5.0,20.50,44,11.25,30\n"
	if out != want {
		t.Errorf("got:\n%s\nwant:\n%s", out, want)
	}
	if Fig4CSV(nil) != "rate_pct\n" {
		t.Error("empty series should emit only the header")
	}
}

func TestMotivationStarvationContrast(t *testing.T) {
	rows := Motivation(topology.MeshX1, tiny())
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (no-qos, pvc)", len(rows))
	}
	noqos, pvc := rows[0], rows[1]
	// The paper's premise: locally-fair round-robin starves distant
	// nodes (parking-lot effect); PVC equalizes them.
	if noqos.NearFarRatio < 5 {
		t.Errorf("no-QoS near/far ratio %.1f, expected heavy capture", noqos.NearFarRatio)
	}
	if pvc.NearFarRatio > 1.3 || pvc.NearFarRatio < 0.77 {
		t.Errorf("PVC near/far ratio %.2f, expected ~1", pvc.NearFarRatio)
	}
	if pvc.Jain < 0.99 || noqos.Jain > 0.9 {
		t.Errorf("Jain indices: no-qos %.3f, pvc %.3f", noqos.Jain, pvc.Jain)
	}
	out := RenderMotivation(topology.MeshX1, rows)
	if !strings.Contains(out, "near/far") || !strings.Contains(out, "pvc") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestFig4P99AtLeastMean(t *testing.T) {
	series := Fig4(Uniform, []float64{0.04}, tiny())
	for _, s := range series {
		for _, pt := range s.Points {
			if pt.P99Latency+1 < pt.MeanLatency {
				t.Errorf("%v: p99 %.0f below mean %.1f", s.Kind, pt.P99Latency, pt.MeanLatency)
			}
		}
	}
}

func TestTable2CSV(t *testing.T) {
	rows := []Table2Row{{
		Kind:    topology.MECS,
		Summary: stats.Summarize([]float64{100, 110, 90}),
	}}
	out := Table2CSV(rows)
	if countLines(out) != 2 || !strings.Contains(out, "mecs,100") {
		t.Errorf("csv:\n%s", out)
	}
}

func TestFig5Fig6CSV(t *testing.T) {
	f5 := Fig5CSV([]Fig5Row{{Kind: topology.MeshX2, PacketsPct: 28.1, HopsPct: 24.0}})
	if !strings.Contains(f5, "mesh_x2,28.10,24.00") {
		t.Errorf("fig5 csv:\n%s", f5)
	}
	f6 := Fig6CSV([]Fig6Row{{Kind: topology.DPS, SlowdownPct: 4.2, AvgDeviationPct: -3.5,
		MinDeviationPct: -7.4, MaxDeviationPct: 2.2}})
	if !strings.Contains(f6, "dps,4.20,-3.50,-7.40,2.20") {
		t.Errorf("fig6 csv:\n%s", f6)
	}
}

func TestFig7CSVLongFormat(t *testing.T) {
	out := Fig7CSV(Fig7())
	// MECS has no intermediate row: 5 topologies x 4 rows - 1 + header.
	if got := countLines(out); got != 5*4-1+1 {
		t.Fatalf("lines = %d:\n%s", got, out)
	}
	if strings.Contains(out, "mecs,intermediate") {
		t.Error("MECS must not emit an intermediate hop row")
	}
	if !strings.Contains(out, "dps,intermediate") {
		t.Error("DPS must emit its intermediate hop row")
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Error("plain strings must pass through")
	}
	if csvEscape(`a,b`) != `"a,b"` {
		t.Error("commas must be quoted")
	}
	if csvEscape(`say "hi"`) != `"say ""hi"""` {
		t.Error("quotes must be doubled")
	}
}
