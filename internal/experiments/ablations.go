package experiments

import (
	"fmt"
	"strings"

	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/runner"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// This file holds the ablation studies DESIGN.md calls out: sweeps over
// the PVC design parameters whose values the paper fixes (frame length,
// priority quantization, preemption hysteresis, retransmission window,
// reserved quota) showing why each sits where it does. Every ablation
// runs the saturating hotspot workload — the configuration under which
// each mechanism is load-bearing — on a single topology and reports
// fairness dispersion and preemption incidence.

// AblationRow is one design point of a parameter sweep.
type AblationRow struct {
	// Value is the swept parameter (unit depends on the sweep).
	Value int64
	// MaxDevPct is the worst per-flow throughput deviation from the
	// mean, in percent (fairness).
	MaxDevPct float64
	// StdDevPct is the dispersion of per-flow throughput.
	StdDevPct float64
	// PreemptPct is the preemption event rate over delivered packets.
	PreemptPct float64
	// MeanLatency in cycles.
	MeanLatency float64
	// AcceptedRate is delivered flits per cycle (used by the window
	// sweep, where the window caps per-flow bandwidth).
	AcceptedRate float64
}

// hotspotCell builds one hotspot-workload cell with a customized QoS
// configuration — the unit every ablation sweep fans out over.
func hotspotCell(kind topology.Kind, mut func(*qos.Config), p Params) runner.Cell {
	cfg := p.netConfig(kind, traffic.Hotspot(topology.ColumnNodes, hotspotRate), qos.PVC)
	mut(&cfg.QoS)
	return p.cell(cfg)
}

// hotspotRow summarizes one hotspot cell's fairness and preemption.
func hotspotRow(r runner.Result) AblationRow {
	st := r.Stats
	flits := make([]float64, 0, FlowPopulation)
	for _, v := range st.FlitsByFlow() {
		flits = append(flits, float64(v))
	}
	sum := stats.Summarize(flits)
	return AblationRow{
		MaxDevPct:   sum.MaxDeviationPct(),
		StdDevPct:   sum.StdDevPctOfMean(),
		PreemptPct:  st.PreemptionPacketRate(),
		MeanLatency: st.MeanLatency(),
	}
}

// DefaultFrameSweep is the frame-length grid (cycles).
var DefaultFrameSweep = []sim.Cycle{12_500, 25_000, 50_000, 100_000}

// AblateFrame sweeps the PVC frame duration. Shorter frames give
// finer-grained guarantees (counters reset more often, so transient
// imbalances are forgiven quickly) at the cost of more frequent priority
// upheaval; 50 K cycles is the paper's operating point.
func AblateFrame(kind topology.Kind, frames []sim.Cycle, p Params) []AblationRow {
	values := make([]int64, len(frames))
	for i, f := range frames {
		values[i] = int64(f)
	}
	return ablateSweep(kind, values, func(v int64, c *qos.Config) { c.FrameCycles = sim.Cycle(v) }, p)
}

// ablateSweep fans one hotspot parameter sweep out over the runner: one
// cell per value, with mut applying the value to that cell's QoS config.
func ablateSweep(kind topology.Kind, values []int64, mut func(int64, *qos.Config), p Params) []AblationRow {
	cells := make([]runner.Cell, len(values))
	for i, v := range values {
		v := v
		cells[i] = hotspotCell(kind, func(c *qos.Config) { mut(v, c) }, p)
	}
	res := runner.RunCells(cells, p.Workers)
	runner.MustOK(res)
	out := make([]AblationRow, len(values))
	for i, v := range values {
		out[i] = hotspotRow(res[i])
		out[i].Value = v
	}
	return out
}

// DefaultQuantumSweep is the priority-quantization grid (flits).
var DefaultQuantumSweep = []int{4, 8, 32, 128, 512}

// AblateQuantum sweeps the priority quantum: how many flits of bandwidth
// one priority class spans. Fine quanta propagate service imbalances to
// distributed arbiters within a couple of packets; coarse quanta leave
// merge points tie-broken for long stretches and fairness decays — the
// distributed-topology failure mode quantization exists to prevent.
func AblateQuantum(kind topology.Kind, quanta []int, p Params) []AblationRow {
	values := make([]int64, len(quanta))
	for i, q := range quanta {
		values[i] = int64(q)
	}
	return ablateSweep(kind, values, func(v int64, c *qos.Config) { c.QuantumFlits = int(v) }, p)
}

// DefaultWindowSweep is the retransmission-window grid (packets).
var DefaultWindowSweep = []int{1, 2, 4, 8, 32}

// AblateWindow sweeps the per-source outstanding-packet window against a
// single high-rate flow crossing the whole column: a source may not have
// more than window unacknowledged packets in the network, so its accepted
// bandwidth is capped at roughly window x packet / round-trip — the
// classic windowed-protocol ceiling. The window must cover the delivery +
// ACK round trip of the fastest flow it should not throttle.
func AblateWindow(kind topology.Kind, windows []int, p Params) []AblationRow {
	far := noc.NodeID(topology.ColumnNodes - 1)
	w := traffic.Workload{Name: "window-probe", Nodes: topology.ColumnNodes}
	w.Specs = append(w.Specs, traffic.Spec{
		Flow:            traffic.FlowOf(far, 0),
		Node:            far,
		Rate:            0.9,
		RequestFraction: traffic.DefaultRequestFraction,
		Dest:            traffic.FixedDest(traffic.HotspotNode),
	})
	cells := make([]runner.Cell, len(windows))
	for i, wnd := range windows {
		cfg := defaultQoS(qos.PVC)
		cfg.WindowPackets = wnd
		cells[i] = p.cell(network.Config{
			Kind: kind, Nodes: topology.ColumnNodes,
			QoS: cfg, Workload: w, Seed: p.Seed,
			DisableIdleSkip: p.DisableIdleSkip,
		})
	}
	res := runner.RunCells(cells, p.Workers)
	runner.MustOK(res)
	out := make([]AblationRow, len(windows))
	for i, wnd := range windows {
		st := res[i].Stats
		out[i] = AblationRow{
			Value:        int64(wnd),
			MeanLatency:  st.MeanLatency(),
			AcceptedRate: st.AcceptedFlitRate(res[i].End),
		}
	}
	return out
}

// DefaultMarginSweep is the preemption-hysteresis grid (classes).
var DefaultMarginSweep = []int{1, 8, 64, 256}

// MarginAblationRow extends the sweep with the adversarial-workload
// preemption incidence, where the margin's trade-off lives.
type MarginAblationRow struct {
	MarginClasses int
	// Adversarial Workload 1 preemption rates (Figure 5's metrics).
	PacketsPct float64
	HopsPct    float64
	// Hotspot fairness under the same margin.
	MaxDevPct float64
}

// AblateMargin sweeps the preemption hysteresis. Tiny margins discard on
// every statistical wobble (bandwidth burned on replays); huge margins
// stop resolving real inversions. The sweep shows the adversarial
// preemption rate falling with the margin while hotspot fairness stays
// flat — preemption is a safety valve, not the fairness mechanism.
func AblateMargin(kind topology.Kind, margins []int, p Params) []MarginAblationRow {
	// Two cells per margin: the adversarial workload (preemption
	// incidence) and the hotspot (fairness), interleaved so the whole
	// sweep fans out in one pass.
	cells := make([]runner.Cell, 0, 2*len(margins))
	for _, m := range margins {
		margin := m
		mut := func(c *qos.Config) { c.MarginClasses = margin }
		adv := p.netConfig(kind, traffic.Workload1(topology.ColumnNodes, 0), qos.PVC)
		mut(&adv.QoS)
		cells = append(cells, p.cell(adv), hotspotCell(kind, mut, p))
	}
	res := runner.RunCells(cells, p.Workers)
	runner.MustOK(res)
	out := make([]MarginAblationRow, len(margins))
	for i, m := range margins {
		st := res[2*i].Stats
		out[i] = MarginAblationRow{
			MarginClasses: m,
			PacketsPct:    st.PreemptionPacketRate(),
			HopsPct:       st.WastedHopRate(),
			MaxDevPct:     hotspotRow(res[2*i+1]).MaxDevPct,
		}
	}
	return out
}

// QuotaAblationRow compares PVC with and without its reserved
// (rate-compliant) quota under the adversarial workload.
type QuotaAblationRow struct {
	QuotaEnabled bool
	PacketsPct   float64
	HopsPct      float64
	MeanLatency  float64
}

// AblateQuota toggles the reserved quota under the saturating hotspot with
// an eager (margin 1) preemption setting — the regime where the quota is
// load-bearing: with it, every source transmitting within its allocation
// is rate-compliant and non-preemptable, and discards vanish ("with all
// sources transmitting, virtually all packets fall under the reserved
// cap, throttling preemptions", Section 5.3); without it, the same
// statistical wobbles turn into discards.
func AblateQuota(kind topology.Kind, p Params) []QuotaAblationRow {
	toggles := []bool{true, false}
	cells := make([]runner.Cell, len(toggles))
	for i, enabled := range toggles {
		on := enabled
		cells[i] = hotspotCell(kind, func(c *qos.Config) {
			c.DisableReservedQuota = !on
			c.MarginClasses = 1
		}, p)
	}
	res := runner.RunCells(cells, p.Workers)
	runner.MustOK(res)
	out := make([]QuotaAblationRow, len(toggles))
	for i, enabled := range toggles {
		st := res[i].Stats
		out[i] = QuotaAblationRow{
			QuotaEnabled: enabled,
			PacketsPct:   st.PreemptionPacketRate(),
			HopsPct:      st.WastedHopRate(),
			MeanLatency:  st.MeanLatency(),
		}
	}
	return out
}

// RenderAblation prints a generic parameter sweep.
func RenderAblation(title, unit string, rows []AblationRow) string {
	var b strings.Builder
	b.WriteString(header(title))
	fmt.Fprintf(&b, "%12s %12s %12s %12s %12s %12s\n", unit, "max dev", "stddev", "preempt", "latency", "accepted")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d %11.1f%% %11.1f%% %11.2f%% %12.1f %12.3f\n",
			r.Value, r.MaxDevPct, r.StdDevPct, r.PreemptPct, r.MeanLatency, r.AcceptedRate)
	}
	return b.String()
}

// RenderMarginAblation prints the hysteresis sweep.
func RenderMarginAblation(rows []MarginAblationRow) string {
	var b strings.Builder
	b.WriteString(header("Ablation: preemption hysteresis (adversarial workload 1 + hotspot)"))
	fmt.Fprintf(&b, "%12s %12s %12s %14s\n", "margin", "packets", "hops", "hotspot dev")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d %11.1f%% %11.1f%% %13.1f%%\n",
			r.MarginClasses, r.PacketsPct, r.HopsPct, r.MaxDevPct)
	}
	return b.String()
}

// RenderQuotaAblation prints the reserved-quota toggle.
func RenderQuotaAblation(rows []QuotaAblationRow) string {
	var b strings.Builder
	b.WriteString(header("Ablation: reserved (rate-compliant) quota under adversarial workload 1"))
	fmt.Fprintf(&b, "%12s %12s %12s %12s\n", "quota", "packets", "hops", "latency")
	for _, r := range rows {
		state := "off"
		if r.QuotaEnabled {
			state = "on"
		}
		fmt.Fprintf(&b, "%12s %11.1f%% %11.1f%% %12.1f\n", state, r.PacketsPct, r.HopsPct, r.MeanLatency)
	}
	return b.String()
}
