package experiments

import (
	"fmt"
	"strings"

	"tanoq/internal/qos"
	"tanoq/internal/runner"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Adversarial selects one of Section 5.3's crafted preemption workloads.
type Adversarial uint8

const (
	// Workload1: only the eight terminal injectors stream at the
	// hotspot, with widely different rates (5–20 %, average ≈ 14 %),
	// exhausting each source's reserved quota early in every frame.
	Workload1 Adversarial = iota
	// Workload2: all eight injectors of node 7 plus one at node 6
	// pressure one downstream MECS port and the destination output.
	Workload2
)

func (a Adversarial) String() string {
	if a == Workload2 {
		return "workload 2"
	}
	return "workload 1"
}

func (a Adversarial) workload(stopAt sim.Cycle) traffic.Workload {
	if a == Workload2 {
		return traffic.Workload2(topology.ColumnNodes, stopAt)
	}
	return traffic.Workload1(topology.ColumnNodes, stopAt)
}

// Fig5Row is one topology's pair of bars in Figure 5: preemption events
// as a share of delivered packets, and wasted (replayed) hop traversals as
// a share of all hop traversals, mesh-normalized.
type Fig5Row struct {
	Kind       topology.Kind
	PacketsPct float64
	HopsPct    float64
}

// Fig5 measures preemption incidence under an adversarial workload, one
// parallel cell per topology.
func Fig5(a Adversarial, p Params) []Fig5Row {
	kinds := topology.Kinds()
	cells := make([]runner.Cell, len(kinds))
	for i, kind := range kinds {
		cells[i] = p.cell(p.netConfig(kind, a.workload(0), qos.PVC))
	}
	res := runner.RunCells(cells, p.Workers)
	runner.MustOK(res)
	out := make([]Fig5Row, len(kinds))
	for i, kind := range kinds {
		st := res[i].Stats
		out[i] = Fig5Row{
			Kind:       kind,
			PacketsPct: st.PreemptionPacketRate(),
			HopsPct:    st.WastedHopRate(),
		}
	}
	return out
}

// RenderFig5 prints Figure 5's bars.
func RenderFig5(a Adversarial, rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Figure 5: preemption rate — %s", a)))
	fmt.Fprintf(&b, "%-9s %10s %10s\n", "topology", "packets", "hops")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %10s %10s\n", r.Kind, fmtPct(r.PacketsPct), fmtPct(r.HopsPct))
	}
	return b.String()
}

// Fig6Row is one topology's entry in Figure 6: the slowdown preemptions
// impose relative to preemption-free per-flow queueing, and the deviation
// of each source's throughput from its max-min fair expectation.
type Fig6Row struct {
	Kind topology.Kind
	// SlowdownPct is (PVC completion / per-flow-queueing completion - 1)
	// on the identical finite workload.
	SlowdownPct float64
	// AvgDeviationPct averages, over the active sources, the deviation
	// of delivered throughput from the max-min fair expectation during
	// the contended interval; Min/Max give the per-source range (the
	// error bars).
	AvgDeviationPct float64
	MinDeviationPct float64
	MaxDeviationPct float64
}

// fig6Run injects the finite workload for `duration` cycles, snapshots
// per-flow throughput at injection stop (the contended interval), then
// drains and returns the completion time.
func fig6Run(kind topology.Kind, a Adversarial, mode qos.Mode, duration int, p Params) (completion sim.Cycle, flitsAtStop []int64) {
	n := p.buildNet(kind, a.workload(sim.Cycle(duration)), mode)
	n.Run(duration)
	flitsAtStop = n.Stats().FlitsByFlow()
	completion, _ = n.RunUntilDrained(8 * duration)
	return completion, flitsAtStop
}

// fig6Result is one fig6Run outcome, collected through the runner.
type fig6Result struct {
	completion sim.Cycle
	flits      []int64
}

// Fig6 measures preemption slowdown and max-min fairness deviation. Each
// (topology, policy) run has a custom schedule (inject, snapshot, drain),
// so the fan-out goes through runner.Map rather than plain cells; results
// still come back in input order for every worker count.
func Fig6(a Adversarial, p Params) []Fig6Row {
	duration := p.Measure
	w := a.workload(0)
	demands := w.ActiveRates()
	// The contended resource is the hotspot terminal: 1 flit/cycle.
	shares := stats.MaxMinShares(demands, 1.0)

	kinds := topology.Kinds()
	modes := []qos.Mode{qos.PVC, qos.PerFlowQueue}
	runs := runner.Map(len(kinds)*len(modes), p.Workers, func(i int) fig6Result {
		kind, mode := kinds[i/len(modes)], modes[i%len(modes)]
		completion, flits := fig6Run(kind, a, mode, duration, p)
		return fig6Result{completion: completion, flits: flits}
	})

	var out []Fig6Row
	for ki, kind := range kinds {
		pvcDone, flits := runs[ki*len(modes)].completion, runs[ki*len(modes)].flits
		pfqDone := runs[ki*len(modes)+1].completion

		var devs []float64
		for f, share := range shares {
			if share <= 0 {
				continue
			}
			expected := share * float64(duration)
			devs = append(devs, 100*(float64(flits[f])-expected)/expected)
		}
		lo, hi := stats.MinMax(devs)
		row := Fig6Row{
			Kind:            kind,
			AvgDeviationPct: stats.Mean(devs),
			MinDeviationPct: lo,
			MaxDeviationPct: hi,
		}
		if pfqDone > 0 {
			row.SlowdownPct = 100 * (float64(pvcDone) - float64(pfqDone)) / float64(pfqDone)
		}
		out = append(out, row)
	}
	return out
}

// RenderFig6 prints Figure 6's bars and error ranges.
func RenderFig6(a Adversarial, rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Figure 6: preemption slowdown and max-min deviation — %s", a)))
	fmt.Fprintf(&b, "%-9s %10s %12s %22s\n", "topology", "slowdown", "avg dev", "dev range [min,max]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %10s %12s %10s,%10s\n",
			r.Kind, fmtPct(r.SlowdownPct), fmtPct(r.AvgDeviationPct),
			fmtPct(r.MinDeviationPct), fmtPct(r.MaxDeviationPct))
	}
	return b.String()
}
