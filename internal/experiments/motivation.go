package experiments

import (
	"fmt"
	"strings"

	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/runner"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Motivation quantifies the paper's Section 1 problem statement: without
// QoS, on-chip arbitration is only locally fair, so under a hotspot the
// sources close to the contended resource capture its bandwidth and the
// distant ones starve (the parking-lot effect) — the reason CMP-level QoS
// support is necessary at all.

// MotivationRow is one QoS policy's per-node hotspot throughput profile.
type MotivationRow struct {
	Mode qos.Mode
	// FlitsByNode aggregates delivered flits over each node's eight
	// injectors, nearest-to-hotspot first.
	FlitsByNode []int64
	// Jain is Jain's fairness index over the per-flow throughputs
	// (1 = perfectly fair).
	Jain float64
	// NearFarRatio is the throughput ratio of the closest to the
	// farthest node.
	NearFarRatio float64
}

// Motivation runs the saturating hotspot on the baseline mesh under
// round-robin (no QoS) and under PVC, both policies in parallel.
func Motivation(kind topology.Kind, p Params) []MotivationRow {
	modes := []qos.Mode{qos.NoQoS, qos.PVC}
	cells := make([]runner.Cell, len(modes))
	for i, mode := range modes {
		cells[i] = p.cell(p.netConfig(kind, traffic.Hotspot(topology.ColumnNodes, hotspotRate), mode))
	}
	res := runner.RunCells(cells, p.Workers)
	runner.MustOK(res)
	var out []MotivationRow
	for i, mode := range modes {
		byFlow := res[i].Stats.FlitsByFlow()
		row := MotivationRow{Mode: mode, FlitsByNode: make([]int64, topology.ColumnNodes)}
		perFlow := make([]float64, 0, len(byFlow))
		for f, v := range byFlow {
			row.FlitsByNode[traffic.NodeOfFlow(noc.FlowID(f))] += v
			perFlow = append(perFlow, float64(v))
		}
		row.Jain = stats.JainIndex(perFlow)
		if far := row.FlitsByNode[topology.ColumnNodes-1]; far > 0 {
			row.NearFarRatio = float64(row.FlitsByNode[0]) / float64(far)
		}
		out = append(out, row)
	}
	return out
}

// RenderMotivation prints the starvation comparison.
func RenderMotivation(kind topology.Kind, rows []MotivationRow) string {
	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Motivation: hotspot throughput by node distance — %s", kind)))
	fmt.Fprintf(&b, "%-15s", "policy")
	for n := 0; n < topology.ColumnNodes; n++ {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("node %d", n))
	}
	fmt.Fprintf(&b, " %8s %10s\n", "Jain", "near/far")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s", r.Mode)
		for _, v := range r.FlitsByNode {
			fmt.Fprintf(&b, " %8d", v)
		}
		fmt.Fprintf(&b, " %8.3f %10.2f\n", r.Jain, r.NearFarRatio)
	}
	b.WriteString("\nnode 0 hosts the hotspot terminal; without QoS its neighbours capture\n")
	b.WriteString("the bandwidth (near/far >> 1), with PVC every node gets an equal share.\n")
	return b.String()
}
