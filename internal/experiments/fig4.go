package experiments

import (
	"fmt"
	"strings"

	"tanoq/internal/qos"
	"tanoq/internal/runner"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Pattern selects the synthetic traffic of the load-latency sweeps.
type Pattern uint8

const (
	Uniform Pattern = iota
	TornadoPattern
)

func (p Pattern) String() string {
	if p == TornadoPattern {
		return "tornado"
	}
	return "uniform random"
}

func (p Pattern) workload(rate float64) traffic.Workload {
	if p == TornadoPattern {
		return traffic.Tornado(topology.ColumnNodes, rate)
	}
	return traffic.UniformRandom(topology.ColumnNodes, rate)
}

// Fig4Point is one (injection rate, latency) sample of a Figure 4 curve.
type Fig4Point struct {
	// Rate is the per-injector offered load in flits/cycle.
	Rate float64
	// MeanLatency is the average delivered-packet latency in cycles
	// (from generation, so source queueing in saturation shows as the
	// hockey stick).
	MeanLatency float64
	// P99Latency is the 99th-percentile latency — the tail a QoS scheme
	// is judged on.
	P99Latency float64
	// Accepted is delivered flits per cycle network-wide.
	Accepted float64
	// PreemptionPct is the preemption event rate (Section 5.2 quotes
	// the in-saturation values).
	PreemptionPct float64
}

// Fig4Series is one topology's latency curve.
type Fig4Series struct {
	Kind   topology.Kind
	Points []Fig4Point
}

// DefaultFig4Rates sweeps injection rates 1–15 %, Figure 4's X axis.
func DefaultFig4Rates() []float64 {
	var rates []float64
	for r := 1; r <= 15; r++ {
		rates = append(rates, float64(r)/100)
	}
	return rates
}

// Fig4 runs the load-latency sweep for every topology under the given
// pattern (Figure 4(a) uniform random, Figure 4(b) tornado). The
// (topology × rate) grid is fully independent, so every point runs as
// its own cell on the parallel experiment runner.
func Fig4(pattern Pattern, rates []float64, p Params) []Fig4Series {
	kinds := topology.Kinds()
	cells := make([]runner.Cell, 0, len(kinds)*len(rates))
	for _, kind := range kinds {
		for _, rate := range rates {
			cells = append(cells, p.cell(p.netConfig(kind, pattern.workload(rate), qos.PVC)))
		}
	}
	res := runner.RunCells(cells, p.Workers)
	runner.MustOK(res)

	out := make([]Fig4Series, 0, len(kinds))
	for ki, kind := range kinds {
		s := Fig4Series{Kind: kind, Points: make([]Fig4Point, 0, len(rates))}
		for ri, rate := range rates {
			r := res[ki*len(rates)+ri]
			st := r.Stats
			s.Points = append(s.Points, Fig4Point{
				Rate:          rate,
				MeanLatency:   st.MeanLatency(),
				P99Latency:    float64(st.Latencies.Percentile(99)),
				Accepted:      st.AcceptedFlitRate(r.End),
				PreemptionPct: st.PreemptionPacketRate(),
			})
		}
		out = append(out, s)
	}
	return out
}

// RenderFig4 prints the latency curves as aligned columns, one row per
// injection rate.
func RenderFig4(pattern Pattern, series []Fig4Series) string {
	var b strings.Builder
	b.WriteString(header(fmt.Sprintf("Figure 4: latency vs injection rate — %s", pattern)))
	fmt.Fprintf(&b, "%8s", "rate")
	for _, s := range series {
		fmt.Fprintf(&b, " %12s", s.Kind)
	}
	b.WriteString("\n")
	if len(series) == 0 || len(series[0].Points) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%7.0f%%", series[0].Points[i].Rate*100)
		for _, s := range series {
			fmt.Fprintf(&b, " %12.1f", s.Points[i].MeanLatency)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SaturationPreemption is the in-saturation packet replay rate the paper
// quotes in Section 5.2 (mesh x1 ~7 %, MECS ~0.04 %, ...).
type SaturationPreemption struct {
	Kind          topology.Kind
	PreemptionPct float64
}

// SaturationPreemptions measures the packet discard rate of each topology
// on saturating uniform-random traffic, one parallel cell per topology.
func SaturationPreemptions(p Params) []SaturationPreemption {
	kinds := topology.Kinds()
	cells := make([]runner.Cell, len(kinds))
	for i, kind := range kinds {
		cells[i] = p.cell(p.netConfig(kind, traffic.UniformRandom(topology.ColumnNodes, 0.15), qos.PVC))
	}
	res := runner.RunCells(cells, p.Workers)
	runner.MustOK(res)
	out := make([]SaturationPreemption, len(kinds))
	for i, kind := range kinds {
		out[i] = SaturationPreemption{
			Kind:          kind,
			PreemptionPct: res[i].Stats.PreemptionPacketRate(),
		}
	}
	return out
}

// RenderSaturationPreemptions prints the Section 5.2 replay rates.
func RenderSaturationPreemptions(rows []SaturationPreemption) string {
	var b strings.Builder
	b.WriteString(header("Section 5.2: packet replay rate in saturation (uniform random, 15%)"))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %8.2f%%\n", r.Kind, r.PreemptionPct)
	}
	return b.String()
}
