package experiments

import (
	"strings"
	"testing"

	"tanoq/internal/topology"
)

// tiny returns fast parameters for unit tests; shapes that need longer
// windows are asserted with generous margins.
func tiny() Params { return Params{Seed: 42, Warmup: 2_000, Measure: 10_000} }

func byKind[T any](t *testing.T, rows []T, kind func(T) topology.Kind) map[topology.Kind]T {
	t.Helper()
	if len(rows) != len(topology.Kinds()) {
		t.Fatalf("%d rows, want %d", len(rows), len(topology.Kinds()))
	}
	out := map[topology.Kind]T{}
	for _, r := range rows {
		out[kind(r)] = r
	}
	return out
}

func TestFig3RowsAndRendering(t *testing.T) {
	rows := Fig3()
	m := byKind(t, rows, func(r Fig3Row) topology.Kind { return r.Kind })
	if m[topology.MeshX4].Area.Total() <= m[topology.MeshX1].Area.Total() {
		t.Error("fig3 ordering broken")
	}
	s := RenderFig3(rows)
	for _, want := range []string{"mesh_x1", "mecs", "dps", "xbar", "flowstate"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestFig7RowsAndRendering(t *testing.T) {
	rows := Fig7()
	m := byKind(t, rows, func(r Fig7Row) topology.Kind { return r.Kind })
	if m[topology.MECS].Intermediate.Total() != 0 {
		t.Error("MECS must have no intermediate hop energy")
	}
	if m[topology.DPS].Intermediate.Total() >= m[topology.DPS].Src.Total() {
		t.Error("DPS intermediate must be cheaper than source")
	}
	if m[topology.DPS].ThreeHops.Total() >= m[topology.MeshX1].ThreeHops.Total() {
		t.Error("DPS must win the 3-hop comparison vs mesh x1")
	}
	s := RenderFig7(rows)
	if !strings.Contains(s, "3 hops") || !strings.Contains(s, "-") {
		t.Errorf("render malformed:\n%s", s)
	}
}

func TestFig4UniformShape(t *testing.T) {
	rates := []float64{0.02, 0.06}
	series := Fig4(Uniform, rates, tiny())
	m := byKind(t, series, func(s Fig4Series) topology.Kind { return s.Kind })
	for kind, s := range m {
		if len(s.Points) != len(rates) {
			t.Fatalf("%v: %d points", kind, len(s.Points))
		}
		for _, pt := range s.Points {
			if pt.MeanLatency <= 0 {
				t.Fatalf("%v: zero latency at rate %v", kind, pt.Rate)
			}
		}
		// Latency grows with load.
		if s.Points[1].MeanLatency < s.Points[0].MeanLatency {
			t.Errorf("%v: latency fell with load: %v", kind, s.Points)
		}
	}
	// The headline: MECS and DPS beat every mesh at low load.
	for _, mesh := range []topology.Kind{topology.MeshX1, topology.MeshX2, topology.MeshX4} {
		if m[topology.MECS].Points[0].MeanLatency >= m[mesh].Points[0].MeanLatency {
			t.Errorf("MECS should beat %v at low load", mesh)
		}
		if m[topology.DPS].Points[0].MeanLatency >= m[mesh].Points[0].MeanLatency {
			t.Errorf("DPS should beat %v at low load", mesh)
		}
	}
	out := RenderFig4(Uniform, series)
	if !strings.Contains(out, "uniform random") || !strings.Contains(out, "2%") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestFig4TornadoMECSAdvantage(t *testing.T) {
	series := Fig4(TornadoPattern, []float64{0.04}, tiny())
	m := byKind(t, series, func(s Fig4Series) topology.Kind { return s.Kind })
	if m[topology.MECS].Points[0].MeanLatency >= m[topology.DPS].Points[0].MeanLatency {
		t.Error("tornado distance-4 transfers should favour MECS over DPS")
	}
}

func TestTable2Fairness(t *testing.T) {
	rows := Table2(Params{Seed: 42, Warmup: 5_000, Measure: 30_000})
	m := byKind(t, rows, func(r Table2Row) topology.Kind { return r.Kind })
	for kind, r := range m {
		if r.Summary.Mean <= 0 {
			t.Fatalf("%v: no throughput", kind)
		}
		// Replicated meshes spread each flow's counters across replica
		// ports, coarsening the fairness granularity; the paper's
		// unreplicated topologies hold ~1-2 %.
		limit := 6.0
		if kind == topology.MeshX2 || kind == topology.MeshX4 {
			limit = 15.0
		}
		if dev := r.Summary.MaxDeviationPct(); dev > limit {
			t.Errorf("%v: hotspot deviation %.1f%%, want < %.0f%%", kind, dev, limit)
		}
		if r.PreemptionPct > 3 {
			t.Errorf("%v: preemption %.2f%% despite reserved quotas", kind, r.PreemptionPct)
		}
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "stddev") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestFig5AdversarialPreemptions(t *testing.T) {
	rows := Fig5(Workload1, Params{Seed: 42, Warmup: 2_000, Measure: 60_000})
	m := byKind(t, rows, func(r Fig5Row) topology.Kind { return r.Kind })
	// Someone must preempt under the adversarial pattern; the paper sees
	// rates from ~9% (x1/DPS hops) to ~35% (replicated mesh packets).
	any := false
	for kind, r := range m {
		if r.PacketsPct < 0 || r.HopsPct < 0 {
			t.Fatalf("%v: negative rates", kind)
		}
		if r.PacketsPct > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("workload 1 triggered no preemptions anywhere")
	}
	out := RenderFig5(Workload1, rows)
	if !strings.Contains(out, "workload 1") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestFig6SlowdownSmallAndFair(t *testing.T) {
	rows := Fig6(Workload1, Params{Seed: 42, Warmup: 0, Measure: 60_000})
	m := byKind(t, rows, func(r Fig6Row) topology.Kind { return r.Kind })
	for kind, r := range m {
		// Figure 6: slowdown below ~5%; allow slack for the short run.
		if r.SlowdownPct > 10 {
			t.Errorf("%v: slowdown %.1f%%, want small", kind, r.SlowdownPct)
		}
		if r.MinDeviationPct > r.AvgDeviationPct || r.AvgDeviationPct > r.MaxDeviationPct {
			t.Errorf("%v: deviation ordering broken: %+v", kind, r)
		}
		// Average deviation within a few percent of expectation.
		if r.AvgDeviationPct < -15 || r.AvgDeviationPct > 15 {
			t.Errorf("%v: avg deviation %.1f%% too large", kind, r.AvgDeviationPct)
		}
	}
	out := RenderFig6(Workload1, rows)
	if !strings.Contains(out, "slowdown") {
		t.Errorf("render malformed:\n%s", out)
	}
	_ = m
}

func TestSaturationPreemptionsLow(t *testing.T) {
	rows := SaturationPreemptions(tiny())
	m := byKind(t, rows, func(r SaturationPreemption) topology.Kind { return r.Kind })
	// Section 5.2: discard rates in saturation are very low for every
	// topology (0.04–7 % in the paper); benign symmetric traffic never
	// builds the gross priority inversions that trigger preemption.
	for kind, r := range m {
		if r.PreemptionPct > 7.5 {
			t.Errorf("%v: saturation preemption %.2f%%, want low", kind, r.PreemptionPct)
		}
	}
	out := RenderSaturationPreemptions(rows)
	if !strings.Contains(out, "saturation") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestChipCostRendering(t *testing.T) {
	r := ChipCost()
	if r.RoutersWithQoS >= r.RoutersTotal {
		t.Fatal("topology-aware design must protect a minority of routers")
	}
	out := RenderChipCost(r)
	if !strings.Contains(out, "saved") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestParamsPresets(t *testing.T) {
	d, q := DefaultParams(), QuickParams()
	if d.Measure <= q.Measure {
		t.Error("default params should run longer than quick params")
	}
	if t2 := Table2Params(); t2.Measure < 200_000 {
		t.Error("table 2 window must cover the paper's ~4.2K flits per flow")
	}
}

func TestAdversarialStrings(t *testing.T) {
	if Workload1.String() != "workload 1" || Workload2.String() != "workload 2" {
		t.Error("adversarial names wrong")
	}
	if Uniform.String() != "uniform random" || TornadoPattern.String() != "tornado" {
		t.Error("pattern names wrong")
	}
}
