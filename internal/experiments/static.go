package experiments

import (
	"fmt"
	"strings"

	"tanoq/internal/core"
	"tanoq/internal/physical"
	"tanoq/internal/topology"
)

// Fig3Row is one bar of Figure 3: router area overhead by component.
type Fig3Row struct {
	Kind topology.Kind
	Area physical.AreaBreakdown
}

// Fig3 evaluates the router area model for every topology (Figure 3).
func Fig3() []Fig3Row {
	var rows []Fig3Row
	for _, k := range topology.Kinds() {
		s := topology.StructureOf(k, topology.ColumnNodes, FlowPopulation)
		rows = append(rows, Fig3Row{Kind: k, Area: physical.RouterArea(s)})
	}
	return rows
}

// RenderFig3 prints Figure 3's stacked bars as a table (mm² per router).
func RenderFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString(header("Figure 3: router area overhead (mm^2)"))
	fmt.Fprintf(&b, "%-9s %10s %10s %10s %10s %10s\n",
		"topology", "row-buf", "col-buf", "xbar", "flowstate", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			r.Kind, r.Area.RowBuffers, r.Area.ColBuffers, r.Area.Crossbar,
			r.Area.FlowState, r.Area.Total())
	}
	return b.String()
}

// Fig7Row is one topology's group of bars in Figure 7: per-flit router
// energy by hop type with component breakdown.
type Fig7Row struct {
	Kind         topology.Kind
	Src          physical.EnergyBreakdown
	Intermediate physical.EnergyBreakdown // zero for MECS (no such hops)
	Dest         physical.EnergyBreakdown
	ThreeHops    physical.EnergyBreakdown
}

// Fig7 evaluates the router energy model (Figure 7). The "3 hops" bar is
// the route energy at the average uniform-random communication distance.
func Fig7() []Fig7Row {
	var rows []Fig7Row
	for _, k := range topology.Kinds() {
		s := topology.StructureOf(k, topology.ColumnNodes, FlowPopulation)
		row := Fig7Row{
			Kind:      k,
			Src:       physical.HopEnergy(s, physical.HopSource),
			Dest:      physical.HopEnergy(s, physical.HopDest),
			ThreeHops: physical.RouteEnergy(s, 3),
		}
		if k != topology.MECS {
			row.Intermediate = physical.HopEnergy(s, physical.HopIntermediate)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFig7 prints Figure 7's bars (nJ per flit) with the flow-table /
// crossbar / buffer split.
func RenderFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString(header("Figure 7: router energy per flit (nJ) [buffers+xbar+flowtable]"))
	fmt.Fprintf(&b, "%-9s %22s %22s %22s %22s\n", "topology", "src", "intermediate", "dest", "3 hops")
	part := func(e physical.EnergyBreakdown) string {
		if e.Total() == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f+%.1f+%.1f=%.1f", e.Buffers, e.Crossbar, e.FlowTable, e.Total())
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %22s %22s %22s %22s\n",
			r.Kind, part(r.Src), part(r.Intermediate), part(r.Dest), part(r.ThreeHops))
	}
	return b.String()
}

// ChipCost evaluates the chip-wide QoS hardware saving of the
// topology-aware architecture (the Section 2 motivation).
func ChipCost() core.CostReport {
	return core.MustNewSystem(core.DefaultConfig()).Cost()
}

// RenderChipCost prints the cost report.
func RenderChipCost(r core.CostReport) string {
	var b strings.Builder
	b.WriteString(header("Topology-aware QoS: chip-wide hardware savings"))
	fmt.Fprintf(&b, "routers on chip:            %d\n", r.RoutersTotal)
	fmt.Fprintf(&b, "routers needing QoS:        %d (shared columns only)\n", r.RoutersWithQoS)
	fmt.Fprintf(&b, "QoS logic per router:       %.4f mm^2\n", r.QoSAreaPerRouter)
	fmt.Fprintf(&b, "baseline (QoS everywhere):  %.3f mm^2\n", r.BaselineQoSArea)
	fmt.Fprintf(&b, "topology-aware:             %.3f mm^2\n", r.TopoAwareQoSArea)
	fmt.Fprintf(&b, "saved:                      %.3f mm^2 (%.0f%%)\n", r.SavedArea, 100*r.SavedAreaFraction)
	return b.String()
}
