package experiments

import (
	"strings"
	"testing"

	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

func ablTiny() Params { return Params{Seed: 42, Warmup: 3_000, Measure: 20_000} }

func TestAblateQuantumFairnessDecaysWhenCoarse(t *testing.T) {
	rows := AblateQuantum(topology.DPS, []int{8, 512}, ablTiny())
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	fine, coarse := rows[0], rows[1]
	if fine.Value != 8 || coarse.Value != 512 {
		t.Fatal("sweep values not preserved")
	}
	// The load-bearing claim: fine quanta keep the distributed DPS
	// merges fair; coarse quanta let them drift.
	if coarse.MaxDevPct <= fine.MaxDevPct {
		t.Errorf("coarse quantum (dev %.1f%%) should be less fair than fine (%.1f%%)",
			coarse.MaxDevPct, fine.MaxDevPct)
	}
	if fine.MaxDevPct > 8 {
		t.Errorf("fine quantum deviation %.1f%%, want small", fine.MaxDevPct)
	}
}

func TestAblateWindowCapsBandwidth(t *testing.T) {
	rows := AblateWindow(topology.MeshX1, []int{1, 32}, ablTiny())
	tiny, big := rows[0], rows[1]
	// A 1-packet window stops-and-waits: accepted bandwidth collapses
	// to ~packet/RTT; a 32-packet window passes the offered load.
	if tiny.AcceptedRate >= 0.6*big.AcceptedRate {
		t.Errorf("window 1 accepted %.3f f/c vs window 32 %.3f — expected a hard cap",
			tiny.AcceptedRate, big.AcceptedRate)
	}
	if big.AcceptedRate < 0.7 {
		t.Errorf("large window accepted only %.3f f/c of 0.9 offered", big.AcceptedRate)
	}
}

func TestAblateFrameFairnessHolds(t *testing.T) {
	// Fairness should hold across frame durations on the centralized
	// MECS arbiter; the frame sets guarantee granularity, not fairness.
	rows := AblateFrame(topology.MECS, []sim.Cycle{12_500, 50_000}, ablTiny())
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MaxDevPct > 10 {
			t.Errorf("frame %d: deviation %.1f%%", r.Value, r.MaxDevPct)
		}
	}
	out := RenderAblation("Ablation: frame", "frame", rows)
	if !strings.Contains(out, "12500") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestAblateMarginTradeoff(t *testing.T) {
	rows := AblateMargin(topology.MeshX1, []int{1, 256}, ablTiny())
	eager, lazy := rows[0], rows[1]
	// Eager preemption (margin 1) must discard more than a huge margin.
	if eager.PacketsPct < lazy.PacketsPct {
		t.Errorf("margin 1 preempted %.1f%%, margin 256 %.1f%% — expected the opposite ordering",
			eager.PacketsPct, lazy.PacketsPct)
	}
	out := RenderMarginAblation(rows)
	if !strings.Contains(out, "hysteresis") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestAblateQuotaThrottlesPreemptions(t *testing.T) {
	rows := AblateQuota(topology.MeshX1, Params{Seed: 42, Warmup: 3_000, Measure: 60_000})
	if len(rows) != 2 || !rows[0].QuotaEnabled || rows[1].QuotaEnabled {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	with, without := rows[0], rows[1]
	// Section 5.3: the reserved quota is the key preemption throttle.
	if without.PacketsPct <= with.PacketsPct {
		t.Errorf("quota off preempted %.1f%%, on %.1f%% — quota should throttle",
			without.PacketsPct, with.PacketsPct)
	}
	out := RenderQuotaAblation(rows)
	if !strings.Contains(out, "quota") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestRenderAblation(t *testing.T) {
	rows := []AblationRow{{Value: 8, MaxDevPct: 1.5, StdDevPct: 0.4, PreemptPct: 0.1, MeanLatency: 30}}
	out := RenderAblation("Ablation: test", "quantum", rows)
	for _, want := range []string{"quantum", "max dev", "1.5%", "30.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
