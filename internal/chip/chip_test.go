package chip

import (
	"testing"
	"testing/quick"
)

func newChip(t *testing.T) *Chip {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewChipValidation(t *testing.T) {
	cases := []Config{
		{Width: 1, Height: 8, SharedCols: []int{0}},
		{Width: 8, Height: 8, SharedCols: []int{9}},
		{Width: 8, Height: 8, SharedCols: []int{3, 3}},
		{Width: 8, Height: 8, SharedCols: []int{0}, CoresPerNode: 9},
		{Width: 2, Height: 2, SharedCols: []int{0, 1}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestDefaultChipLayout(t *testing.T) {
	c := newChip(t)
	// 8x8 nodes x 4 terminals = 256 tiles, the paper's target scale.
	tiles := 0
	mcs := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			n := c.Node(Coord{x, y})
			tiles += len(n.Terminals)
			for _, term := range n.Terminals {
				if term.Kind == TileMC {
					mcs++
				}
			}
			if (x == 4) != n.Shared {
				t.Errorf("node (%d,%d) shared=%v", x, y, n.Shared)
			}
		}
	}
	if tiles != 256 {
		t.Fatalf("%d tiles, want 256", tiles)
	}
	if mcs != 32 { // 8 shared nodes x 4 MC terminals
		t.Fatalf("%d MC tiles, want 32", mcs)
	}
	if c.Node(Coord{-1, 0}) != nil || c.Node(Coord{0, 8}) != nil {
		t.Error("out-of-bounds lookup should return nil")
	}
}

func TestXYPath(t *testing.T) {
	p := XYPath(Coord{1, 1}, Coord{3, 2})
	want := []Coord{{1, 1}, {2, 1}, {3, 1}, {3, 2}}
	if len(p) != len(want) {
		t.Fatalf("path %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path %v, want %v", p, want)
		}
	}
	if q := XYPath(Coord{2, 2}, Coord{2, 2}); len(q) != 1 {
		t.Errorf("self path %v", q)
	}
}

func TestXYPathProperties(t *testing.T) {
	check := func(ax, ay, bx, by uint8) bool {
		a := Coord{int(ax % 8), int(ay % 8)}
		b := Coord{int(bx % 8), int(by % 8)}
		p := XYPath(a, b)
		if p[0] != a || p[len(p)-1] != b {
			return false
		}
		// Length = manhattan distance + 1.
		manh := abs(a.X-b.X) + abs(a.Y-b.Y)
		if len(p) != manh+1 {
			return false
		}
		// Row-first: Y never changes before X reaches b.X.
		for i := 1; i < len(p); i++ {
			if p[i].Y != p[i-1].Y && p[i-1].X != b.X {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestIsConvex(t *testing.T) {
	rect := []Coord{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	if !IsConvex(rect) {
		t.Error("rectangle should be convex")
	}
	lShape := []Coord{{0, 0}, {0, 1}, {1, 1}}
	if IsConvex(lShape) {
		t.Error("L-shape must not be convex (XY route 0,0->1,1 exits it)")
	}
	if IsConvex(nil) {
		t.Error("empty region is not a valid domain")
	}
	single := []Coord{{3, 3}}
	if !IsConvex(single) {
		t.Error("single node is trivially convex")
	}
	disconnected := []Coord{{0, 0}, {2, 0}}
	if IsConvex(disconnected) {
		t.Error("disconnected region must not be convex")
	}
}

func TestRectanglesAlwaysConvexProperty(t *testing.T) {
	check := func(x0, y0, w, h uint8) bool {
		x, y := int(x0%6), int(y0%6)
		ww, hh := int(w%3)+1, int(h%3)+1
		var nodes []Coord
		for dy := 0; dy < hh; dy++ {
			for dx := 0; dx < ww; dx++ {
				nodes = append(nodes, Coord{x + dx, y + dy})
			}
		}
		return IsConvex(nodes)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAllocateDomain(t *testing.T) {
	c := newChip(t)
	d, err := c.AllocateDomain(1, []Coord{{0, 0}, {1, 0}, {0, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 4 || c.Node(Coord{0, 0}).VM != 1 {
		t.Fatal("allocation not applied")
	}
	// Double allocation of the VM or the nodes must fail.
	if _, err := c.AllocateDomain(1, []Coord{{5, 5}}); err == nil {
		t.Error("same VM allocated twice")
	}
	if _, err := c.AllocateDomain(2, []Coord{{1, 1}}); err == nil {
		t.Error("node double-booked")
	}
	// Shared column nodes are off limits.
	if _, err := c.AllocateDomain(3, []Coord{{4, 0}}); err == nil {
		t.Error("shared column node allocated to a VM")
	}
	// Non-convex shapes are rejected.
	if _, err := c.AllocateDomain(4, []Coord{{6, 0}, {6, 1}, {7, 1}}); err == nil {
		t.Error("non-convex domain accepted")
	}
	if _, err := c.AllocateDomain(5, nil); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := c.AllocateDomain(-1, []Coord{{7, 7}}); err == nil {
		t.Error("negative VM id accepted")
	}
	if _, err := c.AllocateDomain(6, []Coord{{7, 7}, {7, 7}}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestDomainTrafficContained(t *testing.T) {
	c := newChip(t)
	if _, err := c.AllocateDomain(1, []Coord{{0, 0}, {1, 0}, {0, 1}, {1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.DomainTrafficContained(1); err != nil {
		t.Errorf("convex domain leaked traffic: %v", err)
	}
	if err := c.DomainTrafficContained(9); err == nil {
		t.Error("missing VM should error")
	}
}

func TestAutoAllocate(t *testing.T) {
	c := newChip(t)
	d1, err := c.AutoAllocate(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Nodes) < 6 {
		t.Fatalf("allocated %d nodes, want >= 6", len(d1.Nodes))
	}
	if !IsConvex(d1.Nodes) {
		t.Fatal("auto-allocated domain not convex")
	}
	// Fill more VMs; every allocation must be disjoint and convex.
	d2, err := c.AutoAllocate(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Coord]bool{}
	for _, n := range d1.Nodes {
		seen[n] = true
	}
	for _, n := range d2.Nodes {
		if seen[n] {
			t.Fatalf("node %v allocated twice", n)
		}
	}
	// The shared column can never be handed out.
	for _, d := range []*Domain{d1, d2} {
		for _, n := range d.Nodes {
			if n.X == 4 {
				t.Fatalf("shared node %v allocated", n)
			}
		}
	}
	// Exhaustion: the chip has 56 compute nodes.
	if _, err := c.AutoAllocate(3, 56); err == nil {
		t.Error("over-allocation should fail")
	}
	if _, err := c.AutoAllocate(4, 0); err == nil {
		t.Error("zero-node request should fail")
	}
}

func TestRelease(t *testing.T) {
	c := newChip(t)
	if _, err := c.AutoAllocate(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.ScheduleThreads(1, []int{100, 101}); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(1); err != nil {
		t.Fatal(err)
	}
	if c.Domain(1) != nil {
		t.Fatal("domain persists after release")
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			n := c.Node(Coord{x, y})
			if n.VM != NoVM {
				t.Fatalf("node %v still owned", n.Coord)
			}
			for _, term := range n.Terminals {
				if term.Thread >= 0 {
					t.Fatalf("thread still scheduled at %v", n.Coord)
				}
			}
		}
	}
	if err := c.Release(1); err == nil {
		t.Error("double release should fail")
	}
}

func TestDomainsSorted(t *testing.T) {
	c := newChip(t)
	for _, vm := range []VMID{3, 1, 2} {
		if _, err := c.AutoAllocate(vm, 2); err != nil {
			t.Fatal(err)
		}
	}
	ds := c.Domains()
	if len(ds) != 3 || ds[0].VM != 1 || ds[1].VM != 2 || ds[2].VM != 3 {
		t.Fatalf("domains not sorted: %v", ds)
	}
}
