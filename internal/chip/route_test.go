package chip

import (
	"testing"
	"testing/quick"

	"tanoq/internal/topology"
)

func TestDirectRouteIsAtMostTwoHops(t *testing.T) {
	check := func(ax, ay, bx, by uint8) bool {
		a := Coord{int(ax % 8), int(ay % 8)}
		b := Coord{int(bx % 8), int(by % 8)}
		r := DirectRoute(a, b)
		if len(r.Hops) > 2 {
			return false
		}
		nodes := r.Nodes()
		return nodes[len(nodes)-1] == b && nodes[0] == a
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDirectRouteRowThenColumn(t *testing.T) {
	r := DirectRoute(Coord{1, 2}, Coord{6, 5})
	if len(r.Hops) != 2 {
		t.Fatalf("%d hops, want 2", len(r.Hops))
	}
	if !r.Hops[0].Ch.Row || r.Hops[1].Ch.Row {
		t.Fatal("XY order violated")
	}
	if r.Hops[0].Dest != (Coord{6, 2}) {
		t.Fatalf("turn at %v, want (6,2)", r.Hops[0].Dest)
	}
	// Channel ownership: each hop's channel belongs to the node it
	// departs from (point-to-multipoint).
	if r.Hops[0].Ch.Owner != (Coord{1, 2}) || r.Hops[1].Ch.Owner != (Coord{6, 2}) {
		t.Fatal("channel ownership wrong")
	}
}

func TestSingleHopReachabilityToSharedColumn(t *testing.T) {
	// The architecture's key topological property: every node reaches
	// its row's shared-column node in ONE express hop, crossing no other
	// node's switches.
	c := newChip(t)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x == 4 {
				continue
			}
			r, err := c.RouteToShared(Coord{x, y}, 4, y)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Hops) != 1 {
				t.Fatalf("(%d,%d) needs %d hops to its shared node, want 1", x, y, len(r.Hops))
			}
			if c.Class(r.Hops[0].Ch) != RowChannel {
				t.Fatal("row access should use an unprotected dedicated row channel")
			}
		}
	}
}

func TestRouteToSharedRejectsComputeColumn(t *testing.T) {
	c := newChip(t)
	if _, err := c.RouteToShared(Coord{0, 0}, 3, 5); err == nil {
		t.Fatal("routing to a non-shared column accepted")
	}
}

func TestRouteToSharedColumnHopIsProtected(t *testing.T) {
	c := newChip(t)
	r, err := c.RouteToShared(Coord{1, 2}, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hops) != 2 {
		t.Fatalf("%d hops", len(r.Hops))
	}
	if c.Class(r.Hops[1].Ch) != SharedColumnChannel {
		t.Fatalf("column hop class %v, want shared-column", c.Class(r.Hops[1].Ch))
	}
}

func TestRouteInterVMTransitsSharedColumn(t *testing.T) {
	// The Figure 1(b) scenario: VM #1's top-left node talks to VM #3's
	// bottom-right node; direct XY routing would turn inside VM #2, so
	// the route must detour through the shared column.
	c := newChip(t)
	r, err := c.RouteInterVM(Coord{0, 0}, Coord{7, 7})
	if err != nil {
		t.Fatal(err)
	}
	// Any vertical movement must happen inside the shared column.
	for _, h := range r.Hops {
		if !h.Ch.Row && c.Class(h.Ch) != SharedColumnChannel {
			t.Fatalf("inter-VM column hop outside shared region: %+v", h)
		}
	}
	nodes := r.Nodes()
	if nodes[len(nodes)-1] != (Coord{7, 7}) {
		t.Fatal("route does not reach destination")
	}
	// Non-minimal is expected and accepted: hop count may exceed 2.
	if len(r.Hops) != 3 {
		t.Fatalf("expected 3 hops (in, down, out), got %d", len(r.Hops))
	}
}

func TestRouteInterVMSameRow(t *testing.T) {
	c := newChip(t)
	r, err := c.RouteInterVM(Coord{0, 3}, Coord{7, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Same row: into the column, no vertical hop, out.
	for _, h := range r.Hops {
		if !h.Ch.Row {
			t.Fatal("same-row inter-VM route should not move vertically")
		}
	}
	if got := r.Nodes(); got[len(got)-1] != (Coord{7, 3}) {
		t.Fatal("route does not terminate at destination")
	}
}

func TestVerifyIsolationPassesForLegalTraffic(t *testing.T) {
	c := newChip(t)
	if _, err := c.AllocateDomain(1, []Coord{{0, 0}, {1, 0}, {0, 1}, {1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocateDomain(2, []Coord{{5, 0}, {6, 0}, {5, 1}, {6, 1}}); err != nil {
		t.Fatal(err)
	}
	var flows []Flow
	// Intra-domain traffic for both VMs.
	flows = append(flows, Flow{VM: 1, Route: DirectRoute(Coord{0, 0}, Coord{1, 1})})
	flows = append(flows, Flow{VM: 2, Route: DirectRoute(Coord{5, 0}, Coord{6, 1})})
	// Memory traffic from both VMs into the shared column.
	r1, _ := c.RouteToShared(Coord{1, 0}, 4, 3)
	r2, _ := c.RouteToShared(Coord{5, 1}, 4, 3)
	flows = append(flows, Flow{VM: 1, Route: r1}, Flow{VM: 2, Route: r2})
	// Inter-VM communication through the protected column.
	r3, _ := c.RouteInterVM(Coord{1, 1}, Coord{5, 0})
	flows = append(flows, Flow{VM: 1, Route: r3})
	if v := c.VerifyIsolation(flows); len(v) != 0 {
		t.Fatalf("legal traffic flagged: %v", v)
	}
}

func TestVerifyIsolationCatchesIllegalTurn(t *testing.T) {
	// Direct XY routing between different VMs turns on an unprotected
	// column channel — exactly the interference Section 2.2 forbids.
	c := newChip(t)
	flows := []Flow{
		{VM: 1, Route: DirectRoute(Coord{0, 0}, Coord{7, 7})},
		{VM: 2, Route: DirectRoute(Coord{6, 1}, Coord{7, 6})},
	}
	// Both routes use the column channels of x=7 owned by (7,0)/(7,1):
	// craft overlap by sending VM 2 from the same turn node.
	flows = append(flows, Flow{VM: 2, Route: DirectRoute(Coord{5, 0}, Coord{7, 5})})
	v := c.VerifyIsolation(append(flows, Flow{VM: 1, Route: DirectRoute(Coord{3, 0}, Coord{7, 5})}))
	if len(v) == 0 {
		t.Fatal("cross-VM unprotected sharing not detected")
	}
	if v[0].Error() == "" {
		t.Fatal("violation must describe itself")
	}
}

func TestVerifyIsolationAllowsSharedColumnMerging(t *testing.T) {
	c := newChip(t)
	r1, _ := c.RouteToShared(Coord{0, 0}, 4, 7)
	r2, _ := c.RouteToShared(Coord{4, 0}, 4, 7) // the shared node itself
	flows := []Flow{{VM: 1, Route: r1}, {VM: 2, Route: r2}}
	if v := c.VerifyIsolation(flows); len(v) != 0 {
		t.Fatalf("QoS-protected merging flagged: %v", v)
	}
}

func TestNearestSharedCol(t *testing.T) {
	c := MustNew(Config{Width: 8, Height: 8, SharedCols: []int{2, 6}})
	cases := map[int]int{0: 2, 2: 2, 3: 2, 5: 6, 7: 6}
	for x, want := range cases {
		got, err := c.NearestSharedCol(x)
		if err != nil || got != want {
			t.Errorf("NearestSharedCol(%d) = %d (%v), want %d", x, got, err, want)
		}
	}
	empty := MustNew(Config{Width: 4, Height: 4})
	if _, err := empty.NearestSharedCol(0); err == nil {
		t.Error("chip without shared columns should error")
	}
}

func TestChannelClassStrings(t *testing.T) {
	if RowChannel.String() != "row" || ColumnChannel.String() != "column" ||
		SharedColumnChannel.String() != "shared-column" {
		t.Error("channel class strings wrong")
	}
}

func TestColumnInjectorMapping(t *testing.T) {
	c := newChip(t)
	// The shared node's own terminal is injector 0.
	node, inj, err := c.ColumnInjector(Coord{4, 3}, 4)
	if err != nil || node != 3 || inj != 0 {
		t.Fatalf("shared node maps to (%d,%d) err %v", node, inj, err)
	}
	// Row inputs rank by X, skipping the shared column.
	node, inj, err = c.ColumnInjector(Coord{0, 5}, 4)
	if err != nil || node != 5 || inj != 1 {
		t.Fatalf("(0,5) maps to (%d,%d) err %v", node, inj, err)
	}
	node, inj, err = c.ColumnInjector(Coord{5, 5}, 4)
	if err != nil || node != 5 || inj != 5 {
		t.Fatalf("(5,5) maps to (%d,%d) err %v, want injector 5", node, inj, err)
	}
	node, inj, err = c.ColumnInjector(Coord{7, 0}, 4)
	if err != nil || node != 0 || inj != 7 {
		t.Fatalf("(7,0) maps to (%d,%d) err %v, want injector 7", node, inj, err)
	}
	if _, _, err := c.ColumnInjector(Coord{0, 0}, 3); err == nil {
		t.Error("non-shared column accepted")
	}
	if _, _, err := c.ColumnInjector(Coord{-1, 0}, 4); err == nil {
		t.Error("out-of-grid source accepted")
	}
}

func TestColumnInjectorsAreUniquePerRow(t *testing.T) {
	c := newChip(t)
	for y := 0; y < 8; y++ {
		seen := map[int]bool{}
		for x := 0; x < 8; x++ {
			_, inj, err := c.ColumnInjector(Coord{x, y}, 4)
			if err != nil {
				t.Fatal(err)
			}
			if seen[inj] {
				t.Fatalf("row %d: injector %d assigned twice", y, inj)
			}
			if inj < 0 || inj >= topology.InjectorsPerNode {
				t.Fatalf("injector %d out of range", inj)
			}
			seen[inj] = true
		}
	}
}

func TestScheduleThreads(t *testing.T) {
	c := newChip(t)
	if _, err := c.AllocateDomain(1, []Coord{{0, 0}, {1, 0}}); err != nil {
		t.Fatal(err)
	}
	// 2 nodes x 2 cores = 4 thread slots.
	if err := c.ScheduleThreads(1, []int{10, 11, 12, 13}); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyCoScheduling(); err != nil {
		t.Fatal(err)
	}
	// Over capacity fails.
	if _, err := c.AllocateDomain(2, []Coord{{3, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := c.ScheduleThreads(2, []int{1, 2, 3}); err == nil {
		t.Error("over-capacity scheduling accepted")
	}
	// Unknown VM fails.
	if err := c.ScheduleThreads(9, []int{1}); err == nil {
		t.Error("scheduling on missing domain accepted")
	}
	// Double-scheduling the same cores fails.
	if err := c.ScheduleThreads(1, []int{20}); err == nil {
		t.Error("double-scheduled core accepted")
	}
}

func TestVMRates(t *testing.T) {
	c := newChip(t)
	if _, err := c.AllocateDomain(1, []Coord{{0, 0}, {1, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocateDomain(2, []Coord{{0, 4}, {1, 4}, {0, 5}, {1, 5}}); err != nil {
		t.Fatal(err)
	}
	rates, err := c.VMRates(4, map[VMID]float64{1: 0.5, 2: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 64 {
		t.Fatalf("rates len %d", len(rates))
	}
	f1, _ := c.ColumnFlow(Coord{0, 0}, 4)
	f2, _ := c.ColumnFlow(Coord{0, 4}, 4)
	if rates[f1] != 0.25 { // 0.5 over 2 nodes
		t.Errorf("VM1 per-node rate %v, want 0.25", rates[f1])
	}
	if rates[f2] != 0.0625 { // 0.25 over 4 nodes
		t.Errorf("VM2 per-node rate %v, want 0.0625", rates[f2])
	}
	// All rates strictly positive (PVC requirement).
	for f, r := range rates {
		if r <= 0 {
			t.Fatalf("flow %d rate %v not positive", f, r)
		}
	}
	// Error paths.
	if _, err := c.VMRates(3, map[VMID]float64{1: 0.5}); err == nil {
		t.Error("non-shared column accepted")
	}
	if _, err := c.VMRates(4, map[VMID]float64{9: 0.5}); err == nil {
		t.Error("missing VM accepted")
	}
	if _, err := c.VMRates(4, map[VMID]float64{1: 0}); err == nil {
		t.Error("zero share accepted")
	}
}
