package chip

import (
	"testing"
)

// Multi-column chips: the paper allows "one or more" shared-resource
// columns; these tests pin down routing, rate programming and isolation
// when two columns are configured.

func twoColChip(t *testing.T) *Chip {
	t.Helper()
	c, err := New(Config{Width: 8, Height: 8, SharedCols: []int{2, 6}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTwoColumnLayout(t *testing.T) {
	c := twoColChip(t)
	sharedNodes := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if c.IsShared(Coord{x, y}) {
				sharedNodes++
				if x != 2 && x != 6 {
					t.Fatalf("unexpected shared node at (%d,%d)", x, y)
				}
			}
		}
	}
	if sharedNodes != 16 {
		t.Fatalf("%d shared nodes, want 16", sharedNodes)
	}
}

func TestInterVMUsesNearestColumn(t *testing.T) {
	c := twoColChip(t)
	// A source at x=7 should transit column 6, not column 2.
	r, err := c.RouteInterVM(Coord{7, 0}, Coord{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range r.Hops {
		if !h.Ch.Row && h.Ch.Owner.X != 6 {
			t.Fatalf("vertical hop outside nearest shared column: %+v", h)
		}
	}
	// And a source at x=0 transits column 2.
	r, err = c.RouteInterVM(Coord{0, 0}, Coord{1, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range r.Hops {
		if !h.Ch.Row && h.Ch.Owner.X != 2 {
			t.Fatalf("vertical hop outside nearest shared column: %+v", h)
		}
	}
}

func TestVMRatesPerColumn(t *testing.T) {
	c := twoColChip(t)
	if _, err := c.AllocateDomain(1, []Coord{{X: 0, Y: 0}, {X: 1, Y: 0}}); err != nil {
		t.Fatal(err)
	}
	for _, col := range []int{2, 6} {
		rates, err := c.VMRates(col, map[VMID]float64{1: 0.5})
		if err != nil {
			t.Fatalf("column %d: %v", col, err)
		}
		f, err := c.ColumnFlow(Coord{X: 0, Y: 0}, col)
		if err != nil {
			t.Fatal(err)
		}
		if rates[f] != 0.25 {
			t.Errorf("column %d: rate %v, want 0.25", col, rates[f])
		}
	}
}

func TestColumnInjectorRanksSkipOwnColumn(t *testing.T) {
	c := twoColChip(t)
	// Row inputs rank by X, skipping only the target shared column —
	// the other shared column's nodes are row inputs like any other.
	_, inj, err := c.ColumnInjector(Coord{X: 6, Y: 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inj != 6 { // x = 6 is the 6th non-col-2 position (0,1,3,4,5,6 -> rank 6)
		t.Errorf("injector %d, want 6", inj)
	}
	seen := map[int]bool{}
	for x := 0; x < 8; x++ {
		_, inj, err := c.ColumnInjector(Coord{X: x, Y: 3}, 6)
		if err != nil {
			t.Fatal(err)
		}
		if seen[inj] {
			t.Fatalf("duplicate injector %d in row", inj)
		}
		seen[inj] = true
	}
}

func TestIsolationAcrossTwoColumns(t *testing.T) {
	c := twoColChip(t)
	if _, err := c.AllocateDomain(1, []Coord{{X: 0, Y: 0}, {X: 1, Y: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocateDomain(2, []Coord{{X: 7, Y: 7}}); err != nil {
		t.Fatal(err)
	}
	r1, err := c.RouteInterVM(Coord{X: 0, Y: 0}, Coord{X: 7, Y: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.RouteInterVM(Coord{X: 7, Y: 7}, Coord{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	flows := []Flow{{VM: 1, Route: r1}, {VM: 2, Route: r2}}
	if v := c.VerifyIsolation(flows); len(v) != 0 {
		t.Fatalf("two-column inter-VM routing flagged: %v", v)
	}
}

func TestAutoAllocateAvoidsBothColumns(t *testing.T) {
	c := twoColChip(t)
	// 48 compute nodes remain (64 - 16 shared); a wide allocation must
	// thread between the shared columns.
	d, err := c.AutoAllocate(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range d.Nodes {
		if at.X == 2 || at.X == 6 {
			t.Fatalf("allocated shared node %v", at)
		}
	}
	if !IsConvex(d.Nodes) {
		t.Fatal("allocation not convex")
	}
}
