// Package chip models the paper's target system (Section 2): a 256-tile
// chip multiprocessor reduced to an 8x8 grid of network nodes by four-way
// concentration, interconnected by MECS express channels, with shared
// resources (memory controllers, accelerators) segregated into dedicated
// QoS-protected columns.
//
// The package implements the architecture's three pillars:
//
//   - Topology: single-hop reachability from any node to a shared column
//     over a dedicated point-to-multipoint row channel, giving physical
//     isolation for memory traffic outside the protected region;
//   - Shared regions: identification of which channels require hardware
//     QoS (only those inside shared columns), for the chip-wide cost
//     accounting;
//   - OS support: allocation of virtual machines into convex domains,
//     co-scheduling of friendly threads onto nodes, and verification that
//     the resulting traffic can never interfere across VMs outside the
//     protected region.
package chip

import (
	"fmt"
	"sort"
)

// VMID identifies a virtual machine (or application) sharing the chip.
type VMID int

// NoVM marks unallocated resources.
const NoVM VMID = -1

// Coord locates a network node on the chip's node grid.
type Coord struct{ X, Y int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// TileKind is the resource type of one terminal (tile) at a node.
type TileKind uint8

const (
	TileCore TileKind = iota
	TileCache
	TileMC // memory controller (shared columns only)
)

func (k TileKind) String() string {
	switch k {
	case TileCore:
		return "core"
	case TileCache:
		return "cache"
	case TileMC:
		return "mc"
	default:
		return "tile"
	}
}

// Concentration is the paper's four-way concentration: four terminals
// share each network node through a fast crossbar.
const Concentration = 4

// Terminal is one tile at a node.
type Terminal struct {
	Kind TileKind
	// Thread is the scheduled software thread (-1 when idle or the
	// tile is not a core).
	Thread int
}

// Node is one network node: four terminals behind one router.
type Node struct {
	Coord  Coord
	Shared bool // lives in a shared-resource column
	// VM owns all four terminals (the co-scheduling rule: only threads
	// of the same application or VM run on a node).
	VM        VMID
	Terminals [Concentration]Terminal
}

// Cores returns how many core tiles the node has.
func (n *Node) Cores() int {
	c := 0
	for _, t := range n.Terminals {
		if t.Kind == TileCore {
			c++
		}
	}
	return c
}

// Config describes a chip.
type Config struct {
	// Width and Height of the node grid (8x8 for the 256-tile target).
	Width, Height int
	// SharedCols are the X coordinates of the shared-resource columns.
	SharedCols []int
	// CoresPerNode (remaining terminals are cache tiles). Default 2.
	CoresPerNode int
}

// DefaultConfig is the paper's target: a 256-tile CMP as an 8x8 grid of
// 4-way concentrated nodes with one shared column in the middle.
func DefaultConfig() Config {
	return Config{Width: 8, Height: 8, SharedCols: []int{4}, CoresPerNode: 2}
}

// Domain is a VM's allocation: a convex set of nodes.
type Domain struct {
	VM    VMID
	Nodes []Coord
}

// Chip is the allocated state of one CMP.
type Chip struct {
	cfg     Config
	nodes   [][]*Node // [y][x]
	domains map[VMID]*Domain
}

// New builds a chip. Shared columns hold memory-controller terminals; the
// remaining nodes mix core and cache tiles.
func New(cfg Config) (*Chip, error) {
	if cfg.Width < 2 || cfg.Height < 2 {
		return nil, fmt.Errorf("chip: grid %dx%d too small", cfg.Width, cfg.Height)
	}
	if cfg.CoresPerNode == 0 {
		cfg.CoresPerNode = 2
	}
	if cfg.CoresPerNode < 0 || cfg.CoresPerNode > Concentration {
		return nil, fmt.Errorf("chip: %d cores per node with %d terminals", cfg.CoresPerNode, Concentration)
	}
	shared := map[int]bool{}
	for _, c := range cfg.SharedCols {
		if c < 0 || c >= cfg.Width {
			return nil, fmt.Errorf("chip: shared column %d outside grid width %d", c, cfg.Width)
		}
		if shared[c] {
			return nil, fmt.Errorf("chip: duplicate shared column %d", c)
		}
		shared[c] = true
	}
	if len(shared) == len(cfg.SharedCols) && len(shared) == cfg.Width {
		return nil, fmt.Errorf("chip: every column shared leaves no compute nodes")
	}
	ch := &Chip{cfg: cfg, domains: map[VMID]*Domain{}}
	for y := 0; y < cfg.Height; y++ {
		row := make([]*Node, cfg.Width)
		for x := 0; x < cfg.Width; x++ {
			n := &Node{Coord: Coord{x, y}, VM: NoVM, Shared: shared[x]}
			for i := range n.Terminals {
				kind := TileCache
				if n.Shared {
					kind = TileMC
				} else if i < cfg.CoresPerNode {
					kind = TileCore
				}
				n.Terminals[i] = Terminal{Kind: kind, Thread: -1}
			}
			row[x] = n
		}
		ch.nodes = append(ch.nodes, row)
	}
	return ch, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Chip {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the chip's configuration.
func (c *Chip) Config() Config { return c.cfg }

// Node returns the node at a coordinate (nil outside the grid).
func (c *Chip) Node(at Coord) *Node {
	if !c.inBounds(at) {
		return nil
	}
	return c.nodes[at.Y][at.X]
}

func (c *Chip) inBounds(at Coord) bool {
	return at.X >= 0 && at.X < c.cfg.Width && at.Y >= 0 && at.Y < c.cfg.Height
}

// IsShared reports whether a coordinate lies in a shared column.
func (c *Chip) IsShared(at Coord) bool {
	n := c.Node(at)
	return n != nil && n.Shared
}

// Domain returns a VM's allocation (nil if none).
func (c *Chip) Domain(vm VMID) *Domain { return c.domains[vm] }

// Domains returns all allocations ordered by VM id.
func (c *Chip) Domains() []*Domain {
	out := make([]*Domain, 0, len(c.domains))
	for _, d := range c.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VM < out[j].VM })
	return out
}

// XYPath returns the XY dimension-order route from a to b as the node
// coordinates traversed, inclusive of endpoints: along the row first,
// then the column — the order the MECS interconnect routes in.
func XYPath(a, b Coord) []Coord {
	path := []Coord{a}
	at := a
	for at.X != b.X {
		if b.X > at.X {
			at.X++
		} else {
			at.X--
		}
		path = append(path, at)
	}
	for at.Y != b.Y {
		if b.Y > at.Y {
			at.Y++
		} else {
			at.Y--
		}
		path = append(path, at)
	}
	return path
}

// containsAll reports whether every coordinate of path is in the set.
func containsAll(set map[Coord]bool, path []Coord) bool {
	for _, p := range path {
		if !set[p] {
			return false
		}
	}
	return true
}

// IsConvex implements the paper's convex-shape property for a candidate
// domain: for every pair of member nodes, the XY dimension-order route
// between them stays inside the set — so intra-VM cache traffic can never
// leave the allocated region. (A rectangle always qualifies; an L-shape
// generally does not.)
func IsConvex(nodes []Coord) bool {
	if len(nodes) == 0 {
		return false
	}
	set := make(map[Coord]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if !containsAll(set, XYPath(a, b)) {
				return false
			}
		}
	}
	return true
}

// AllocateDomain assigns the given nodes to a VM, enforcing the OS
// contract: nodes must exist, be compute nodes (not shared columns), be
// unowned, and form a convex region.
func (c *Chip) AllocateDomain(vm VMID, nodes []Coord) (*Domain, error) {
	if vm < 0 {
		return nil, fmt.Errorf("chip: invalid VM id %d", vm)
	}
	if _, ok := c.domains[vm]; ok {
		return nil, fmt.Errorf("chip: VM %d already has a domain", vm)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("chip: empty domain for VM %d", vm)
	}
	seen := map[Coord]bool{}
	for _, at := range nodes {
		n := c.Node(at)
		if n == nil {
			return nil, fmt.Errorf("chip: node %v outside grid", at)
		}
		if n.Shared {
			return nil, fmt.Errorf("chip: node %v is in a shared column", at)
		}
		if n.VM != NoVM {
			return nil, fmt.Errorf("chip: node %v already owned by VM %d", at, n.VM)
		}
		if seen[at] {
			return nil, fmt.Errorf("chip: node %v listed twice", at)
		}
		seen[at] = true
	}
	if !IsConvex(nodes) {
		return nil, fmt.Errorf("chip: domain for VM %d is not convex", vm)
	}
	d := &Domain{VM: vm, Nodes: append([]Coord(nil), nodes...)}
	for _, at := range nodes {
		c.Node(at).VM = vm
	}
	c.domains[vm] = d
	return d, nil
}

// AutoAllocate finds a free rectangular region of at least the requested
// node count and allocates it to the VM (rectangles trivially satisfy the
// convexity property). It scans candidate shapes nearest to square first.
func (c *Chip) AutoAllocate(vm VMID, nodeCount int) (*Domain, error) {
	if nodeCount <= 0 {
		return nil, fmt.Errorf("chip: requested %d nodes", nodeCount)
	}
	type shape struct{ w, h int }
	var shapes []shape
	for h := 1; h <= c.cfg.Height; h++ {
		w := (nodeCount + h - 1) / h
		if w <= c.cfg.Width {
			shapes = append(shapes, shape{w, h})
		}
	}
	// Prefer the smallest area (least over-allocation), then the most
	// square shape (minimal perimeter keeps intra-domain distance low).
	// A full rectangle is allocated even when it slightly exceeds the
	// request — truncating a rectangle breaks the convexity contract.
	sort.Slice(shapes, func(i, j int) bool {
		ai, aj := shapes[i].w*shapes[i].h, shapes[j].w*shapes[j].h
		if ai != aj {
			return ai < aj
		}
		return shapes[i].w+shapes[i].h < shapes[j].w+shapes[j].h
	})
	for _, s := range shapes {
		for y := 0; y+s.h <= c.cfg.Height; y++ {
			for x := 0; x+s.w <= c.cfg.Width; x++ {
				nodes := c.freeRect(x, y, s.w, s.h)
				if nodes == nil {
					continue
				}
				return c.AllocateDomain(vm, nodes)
			}
		}
	}
	return nil, fmt.Errorf("chip: no free convex region of %d nodes for VM %d", nodeCount, vm)
}

// freeRect returns the nodes of a rectangle if every node in it is free
// and outside shared columns; nil otherwise. Rows are truncated in the
// last row only if the remainder still forms a convex shape (we keep it
// simple: full rectangles only).
func (c *Chip) freeRect(x, y, w, h int) []Coord {
	var nodes []Coord
	for dy := 0; dy < h; dy++ {
		for dx := 0; dx < w; dx++ {
			at := Coord{x + dx, y + dy}
			n := c.Node(at)
			if n == nil || n.Shared || n.VM != NoVM {
				return nil
			}
			nodes = append(nodes, at)
		}
	}
	return nodes
}

// Release frees a VM's domain and unschedules its threads.
func (c *Chip) Release(vm VMID) error {
	d, ok := c.domains[vm]
	if !ok {
		return fmt.Errorf("chip: VM %d has no domain", vm)
	}
	for _, at := range d.Nodes {
		n := c.Node(at)
		n.VM = NoVM
		for i := range n.Terminals {
			n.Terminals[i].Thread = -1
		}
	}
	delete(c.domains, vm)
	return nil
}
