package chip

import (
	"fmt"
	"sort"

	"tanoq/internal/noc"
	"tanoq/internal/topology"
)

// ScheduleThreads places a VM's threads onto the core tiles of its domain,
// in node order. It enforces the co-scheduling rule by construction: a
// node's terminals only ever host threads of the node's owning VM.
func (c *Chip) ScheduleThreads(vm VMID, threads []int) error {
	d := c.domains[vm]
	if d == nil {
		return fmt.Errorf("chip: VM %d has no domain", vm)
	}
	capacity := 0
	for _, at := range d.Nodes {
		capacity += c.Node(at).Cores()
	}
	if len(threads) > capacity {
		return fmt.Errorf("chip: VM %d has %d core tiles for %d threads", vm, capacity, len(threads))
	}
	i := 0
	for _, at := range d.Nodes {
		n := c.Node(at)
		for t := range n.Terminals {
			if n.Terminals[t].Kind != TileCore || i >= len(threads) {
				continue
			}
			if n.Terminals[t].Thread >= 0 {
				return fmt.Errorf("chip: core %d at %v already runs thread %d", t, at, n.Terminals[t].Thread)
			}
			n.Terminals[t].Thread = threads[i]
			i++
		}
	}
	return nil
}

// VerifyCoScheduling audits the whole chip for the OS rule that only
// threads of a single VM run on any node — the property that lets row
// channels go without QoS hardware.
func (c *Chip) VerifyCoScheduling() error {
	for y := 0; y < c.cfg.Height; y++ {
		for x := 0; x < c.cfg.Width; x++ {
			n := c.nodes[y][x]
			for t, term := range n.Terminals {
				if term.Thread >= 0 && n.VM == NoVM {
					return fmt.Errorf("chip: node %v terminal %d runs a thread with no owning VM", n.Coord, t)
				}
			}
		}
	}
	return nil
}

// ColumnInjector maps a chip-level source node to its injector position in
// the shared-column network simulator: traffic from row Y enters column
// node Y; the injector index is 0 for the column node's own terminal and
// 1..7 for the row inputs, ranked by source X coordinate. This is the
// bridge between the chip model and the cycle-level shared-region
// simulation.
func (c *Chip) ColumnInjector(src Coord, sharedCol int) (noc.NodeID, int, error) {
	if !c.inBounds(src) {
		return 0, 0, fmt.Errorf("chip: source %v outside grid", src)
	}
	if !c.IsShared(Coord{sharedCol, src.Y}) {
		return 0, 0, fmt.Errorf("chip: column %d is not shared", sharedCol)
	}
	node := noc.NodeID(src.Y)
	if src.X == sharedCol {
		return node, 0, nil
	}
	rank := 1
	for x := 0; x < c.cfg.Width; x++ {
		if x == sharedCol {
			continue
		}
		if x == src.X {
			return node, rank, nil
		}
		rank++
	}
	return 0, 0, fmt.Errorf("chip: source %v not found in row", src)
}

// ColumnFlow returns the QoS flow ID of a chip node's traffic in the
// shared column's network.
func (c *Chip) ColumnFlow(src Coord, sharedCol int) (noc.FlowID, error) {
	node, inj, err := c.ColumnInjector(src, sharedCol)
	if err != nil {
		return 0, err
	}
	return noc.FlowID(int(node)*topology.InjectorsPerNode + inj), nil
}

// VMRates builds a per-flow service-rate vector for the shared column:
// each VM's bandwidth share is split evenly across its nodes' injectors,
// and unallocated flows receive a small residual rate (PVC requires
// strictly positive rates). This is the memory-mapped-register programming
// the OS performs on QoS-enabled routers (Section 2.2).
func (c *Chip) VMRates(sharedCol int, shares map[VMID]float64) ([]float64, error) {
	if !c.IsShared(Coord{sharedCol, 0}) {
		return nil, fmt.Errorf("chip: column %d is not shared", sharedCol)
	}
	flows := c.cfg.Height * topology.InjectorsPerNode
	rates := make([]float64, flows)
	const residual = 1e-3
	for i := range rates {
		rates[i] = residual
	}
	vms := make([]VMID, 0, len(shares))
	for vm := range shares {
		vms = append(vms, vm)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	for _, vm := range vms {
		share := shares[vm]
		d := c.domains[vm]
		if d == nil {
			return nil, fmt.Errorf("chip: VM %d has no domain", vm)
		}
		if share <= 0 {
			return nil, fmt.Errorf("chip: VM %d share %v must be positive", vm, share)
		}
		per := share / float64(len(d.Nodes))
		for _, at := range d.Nodes {
			f, err := c.ColumnFlow(at, sharedCol)
			if err != nil {
				return nil, err
			}
			rates[f] = per
		}
	}
	return rates, nil
}
