package chip

import (
	"fmt"
	"sort"
)

// ChannelClass distinguishes how a route segment is protected.
type ChannelClass uint8

const (
	// RowChannel is a MECS point-to-multipoint row channel, owned by
	// its source node: it needs no QoS because only the (co-scheduled,
	// friendly) terminals of one node ever inject into it.
	RowChannel ChannelClass = iota
	// ColumnChannel is a column channel outside the shared regions:
	// usable only by intra-domain traffic, isolation comes from the
	// convex-domain rule.
	ColumnChannel
	// SharedColumnChannel is a channel inside a shared column: the only
	// place flows from different VMs merge, protected by hardware QoS.
	SharedColumnChannel
)

func (c ChannelClass) String() string {
	switch c {
	case RowChannel:
		return "row"
	case ColumnChannel:
		return "column"
	case SharedColumnChannel:
		return "shared-column"
	default:
		return "channel"
	}
}

// Channel identifies one physical channel: the MECS express channel owned
// by a source node in a direction. Dir is +1/-1 along the axis.
type Channel struct {
	Owner Coord
	// Row is true for a horizontal (X-axis) channel.
	Row bool
	Dir int
}

// Class returns the protection class of the channel on this chip. Every
// output of a QoS-equipped shared-column router is protected — including
// its row channels, which carry inter-VM traffic back out of the column —
// because the 'Q' routers of Figure 1(b) arbitrate all of their ports
// under PVC.
func (c *Chip) Class(ch Channel) ChannelClass {
	if c.IsShared(ch.Owner) {
		return SharedColumnChannel
	}
	if ch.Row {
		return RowChannel
	}
	return ColumnChannel
}

// Hop is one MECS express traversal: a single channel carries the packet
// from the channel owner to Dest without switching at intermediate nodes.
type Hop struct {
	Ch   Channel
	Dest Coord
}

// Route is a sequence of express hops.
type Route struct {
	Src, Dst Coord
	Hops     []Hop
}

// Nodes returns every node coordinate the route switches at (the
// endpoints of each hop; intermediate drop-off points are passed on the
// wire without switching).
func (r Route) Nodes() []Coord {
	out := []Coord{r.Src}
	for _, h := range r.Hops {
		out = append(out, h.Dest)
	}
	return out
}

// dirTo returns the unit step from a to b along one axis.
func dirTo(a, b int) int {
	switch {
	case b > a:
		return 1
	case b < a:
		return -1
	default:
		return 0
	}
}

// DirectRoute is plain XY dimension-order MECS routing: at most one row
// hop then one column hop. It is legal for intra-domain traffic and for
// reaching a shared column (whose column hop is QoS-protected).
func DirectRoute(src, dst Coord) Route {
	r := Route{Src: src, Dst: dst}
	at := src
	if dx := dirTo(src.X, dst.X); dx != 0 {
		next := Coord{dst.X, src.Y}
		r.Hops = append(r.Hops, Hop{Ch: Channel{Owner: at, Row: true, Dir: dx}, Dest: next})
		at = next
	}
	if dy := dirTo(src.Y, dst.Y); dy != 0 {
		r.Hops = append(r.Hops, Hop{Ch: Channel{Owner: at, Row: false, Dir: dy}, Dest: dst})
	}
	return r
}

// NearestSharedCol returns the shared column closest to x.
func (c *Chip) NearestSharedCol(x int) (int, error) {
	if len(c.cfg.SharedCols) == 0 {
		return 0, fmt.Errorf("chip: no shared columns configured")
	}
	best, bestDist := 0, 1<<30
	cols := append([]int(nil), c.cfg.SharedCols...)
	sort.Ints(cols)
	for _, col := range cols {
		d := col - x
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = col, d
		}
	}
	return best, nil
}

// RouteToShared routes a node's memory traffic to a terminal in a shared
// column: a single dedicated row hop (physically isolated), then the
// QoS-protected column. This is the architecture's key property — the
// richly connected topology reaches the protected region without crossing
// any other node's switches.
func (c *Chip) RouteToShared(src Coord, sharedCol, dstY int) (Route, error) {
	if !c.IsShared(Coord{sharedCol, 0}) {
		return Route{}, fmt.Errorf("chip: column %d is not shared", sharedCol)
	}
	return DirectRoute(src, Coord{sharedCol, dstY}), nil
}

// RouteInterVM routes communication between different VMs. Per Section 2.2
// it must transit a QoS-equipped shared column even when that is
// non-minimal, so the turn never happens inside a third VM's domain:
// row hop into the shared column, QoS-protected column hop to the
// destination's row, then a row hop out.
func (c *Chip) RouteInterVM(src, dst Coord) (Route, error) {
	col, err := c.NearestSharedCol(src.X)
	if err != nil {
		return Route{}, err
	}
	r := Route{Src: src, Dst: dst}
	at := src
	if at.X != col {
		next := Coord{col, at.Y}
		r.Hops = append(r.Hops, Hop{Ch: Channel{Owner: at, Row: true, Dir: dirTo(at.X, col)}, Dest: next})
		at = next
	}
	if at.Y != dst.Y {
		next := Coord{col, dst.Y}
		r.Hops = append(r.Hops, Hop{Ch: Channel{Owner: at, Row: false, Dir: dirTo(at.Y, dst.Y)}, Dest: next})
		at = next
	}
	if at.X != dst.X {
		r.Hops = append(r.Hops, Hop{Ch: Channel{Owner: at, Row: true, Dir: dirTo(at.X, dst.X)}, Dest: dst})
	}
	return r, nil
}

// Flow is one chip-level traffic flow for isolation analysis.
type Flow struct {
	VM    VMID
	Route Route
}

// Violation reports two VMs meeting on an unprotected channel.
type Violation struct {
	Ch       Channel
	Class    ChannelClass
	VMa, VMb VMID
}

func (v Violation) Error() string {
	return fmt.Sprintf("chip: VMs %d and %d share unprotected %s channel owned by %v",
		v.VMa, v.VMb, v.Class, v.Ch.Owner)
}

// VerifyIsolation checks the architecture's central safety property over a
// set of flows: any channel carrying traffic of more than one VM must be a
// QoS-protected shared-column channel. Row channels are owned by their
// source node, whose terminals are co-scheduled to a single VM, so a row
// channel carrying two VMs indicates a scheduling violation; an
// unprotected column channel carrying two VMs indicates a domain-shape
// violation.
func (c *Chip) VerifyIsolation(flows []Flow) []Violation {
	users := map[Channel][]VMID{}
	var order []Channel
	for _, f := range flows {
		for _, h := range f.Route.Hops {
			prev := users[h.Ch]
			dup := false
			for _, vm := range prev {
				if vm == f.VM {
					dup = true
					break
				}
			}
			if !dup {
				if len(prev) == 0 {
					order = append(order, h.Ch)
				}
				users[h.Ch] = append(prev, f.VM)
			}
		}
	}
	var out []Violation
	for _, ch := range order {
		vms := users[ch]
		if len(vms) < 2 {
			continue
		}
		if c.Class(ch) == SharedColumnChannel {
			continue // hardware QoS arbitrates here by design
		}
		out = append(out, Violation{Ch: ch, Class: c.Class(ch), VMa: vms[0], VMb: vms[1]})
	}
	return out
}

// DomainTrafficContained verifies that every intra-domain route of a VM
// stays inside its convex domain (the property AllocateDomain's convexity
// check is designed to guarantee).
func (c *Chip) DomainTrafficContained(vm VMID) error {
	d := c.domains[vm]
	if d == nil {
		return fmt.Errorf("chip: VM %d has no domain", vm)
	}
	set := map[Coord]bool{}
	for _, n := range d.Nodes {
		set[n] = true
	}
	for _, a := range d.Nodes {
		for _, b := range d.Nodes {
			for _, at := range XYPath(a, b) {
				if !set[at] {
					return fmt.Errorf("chip: VM %d route %v->%v escapes its domain at %v", vm, a, b, at)
				}
			}
		}
	}
	return nil
}
