package telemetry_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"tanoq/internal/network"
	"tanoq/internal/qos"
	"tanoq/internal/telemetry"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
	"tanoq/internal/workload"
)

// probeCell builds one standard cell for the equivalence tests.
func probeCell(kind topology.Kind, mode qos.Mode, skip bool) *network.Network {
	w := traffic.UniformRandom(topology.ColumnNodes, 0.03)
	cfg := qos.DefaultConfig(w.TotalFlows())
	cfg.Mode = mode
	return network.MustNew(network.Config{
		Kind: kind, QoS: cfg, Workload: w, Seed: 7,
		DisableIdleSkip: !skip,
	})
}

// TestProbedRunEquivalentToUnprobed pins the tentpole contract: because
// the sampling probe is an ordinary calendar-ring event whose handler
// only reads engine state, installing a sampler must not move a single
// observable. Every topology × QoS mode × idle-skip setting runs the
// same cell probed and unprobed and compares full delivery
// fingerprints.
func TestProbedRunEquivalentToUnprobed(t *testing.T) {
	for _, kind := range topology.Kinds() {
		for _, mode := range []qos.Mode{qos.PVC, qos.PerFlowQueue, qos.NoQoS} {
			for _, skip := range []bool{true, false} {
				name := kind.String() + "/" + mode.String() + "/skip=" + map[bool]string{true: "on", false: "off"}[skip]
				t.Run(name, func(t *testing.T) {
					run := func(probed bool) (string, *telemetry.Timeline) {
						n := probeCell(kind, mode, skip)
						var s *telemetry.Sampler
						if probed {
							s = telemetry.Attach(n, telemetry.Options{Interval: 500, Horizon: 12_000})
						}
						n.WarmupAndMeasure(4_000, 8_000)
						fp := workload.Fingerprint(n.Stats(), n.Now())
						if probed {
							return fp, s.Timeline()
						}
						return fp, nil
					}
					plain, _ := run(false)
					probed, tl := run(true)
					if plain != probed {
						t.Errorf("probe changed the simulation: unprobed %s, probed %s", plain, probed)
					}
					if tl.Samples() == 0 {
						t.Fatal("sampler collected no samples")
					}
					if len(tl.Marks) == 0 || tl.Marks[0].Kind != "measure-start" {
						t.Errorf("missing measure-start mark: %+v", tl.Marks)
					}
				})
			}
		}
	}
}

// TestTimelineDeterministicAcrossIdleSkip pins the other direction: not
// only must probes leave the run unchanged, the collected timeline
// itself must be byte-identical whether the engine ticked every cycle
// or fast-forwarded idle windows — probes ride the ring, so skip
// horizons stop exactly on probe ticks.
func TestTimelineDeterministicAcrossIdleSkip(t *testing.T) {
	collect := func(skip bool) []byte {
		n := probeCell(topology.MECS, qos.PVC, skip)
		s := telemetry.Attach(n, telemetry.Options{Interval: 250, Horizon: 12_000, TopFlows: 4})
		n.WarmupAndMeasure(4_000, 8_000)
		blob, err := json.Marshal(s.Timeline())
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	ticked, skipped := collect(false), collect(true)
	if !bytes.Equal(ticked, skipped) {
		t.Errorf("timeline differs across idle-skip:\nticked:  %s\nskipped: %s", ticked, skipped)
	}
}

// TestProbedEnsembleLaneEquivalentToStandalone runs the same cell
// standalone and as one lane of a lockstep ensemble, both probed, and
// requires identical fingerprints and byte-identical timelines: lane
// batching is pure scheduling, and the probe schedule rides inside each
// lane's own event ring.
func TestProbedEnsembleLaneEquivalentToStandalone(t *testing.T) {
	mk := func(seed uint64) network.Config {
		w := traffic.UniformRandom(topology.ColumnNodes, 0.03)
		cfg := qos.DefaultConfig(w.TotalFlows())
		return network.Config{Kind: topology.MeshX1, QoS: cfg, Workload: w, Seed: seed}
	}
	probe := func(n *network.Network) *telemetry.Sampler {
		return telemetry.Attach(n, telemetry.Options{Interval: 500, Horizon: 12_000})
	}

	// Standalone probed run of the seed-3 cell.
	solo := network.MustNew(mk(3))
	soloS := probe(solo)
	solo.WarmupAndMeasure(4_000, 8_000)
	soloFP := workload.Fingerprint(solo.Stats(), solo.Now())
	soloTL, err := json.Marshal(soloS.Timeline())
	if err != nil {
		t.Fatal(err)
	}

	// The same cell as lane 0 of a two-lane ensemble (lane 1 differs by
	// seed, as the runner's seed-axis grouping produces).
	ens, err2 := network.NewEnsemble([]network.Config{mk(3), mk(4)})
	if err2 != nil {
		t.Fatal(err2)
	}
	laneS := probe(ens.Lane(0))
	probe(ens.Lane(1))
	ens.WarmupAndMeasure(4_000, 8_000)
	laneFP := workload.Fingerprint(ens.Lane(0).Stats(), ens.Lane(0).Now())
	laneTL, err := json.Marshal(laneS.Timeline())
	if err != nil {
		t.Fatal(err)
	}

	if soloFP != laneFP {
		t.Errorf("ensemble lane diverged from standalone: solo %s, lane %s", soloFP, laneFP)
	}
	if !bytes.Equal(soloTL, laneTL) {
		t.Errorf("lane timeline differs from standalone:\nsolo: %s\nlane: %s", soloTL, laneTL)
	}
}

// TestStepAllocationFreeWithSamplerInstalled extends the engine's
// zero-alloc pin to an instrumented run: every buffer a sampler writes
// during the run is preallocated at Attach, so Step must stay at
// exactly 0 allocs/op with a full-series sampler (flows + heatmap
// included) firing throughout the measured window.
func TestStepAllocationFreeWithSamplerInstalled(t *testing.T) {
	w := traffic.UniformRandom(topology.ColumnNodes, 0.04)
	n := network.MustNew(network.Config{
		Kind:     topology.MECS,
		QoS:      qos.DefaultConfig(w.TotalFlows()),
		Workload: w,
		Seed:     3,
	})
	s := telemetry.Attach(n, telemetry.Options{Interval: 100, Horizon: 100_000})
	n.Run(30_000)
	before := s.Timeline().Samples()
	if avg := testing.AllocsPerRun(5_000, n.Step); avg != 0 {
		t.Errorf("%v allocs per Step with a sampler installed, want exactly 0", avg)
	}
	if s.Timeline().Samples() == before {
		t.Fatal("probe never fired during the measured window")
	}
	if s.Timeline().DroppedSamples != 0 {
		t.Fatalf("%d samples dropped: horizon undersized for the measured window", s.Timeline().DroppedSamples)
	}
}

// TestTimelineOverflowDropsInsteadOfGrowing pins the bounded-storage
// contract: ticks past the preallocated horizon are counted in
// DroppedSamples, never appended (an append would reallocate on the
// hot path).
func TestTimelineOverflowDropsInsteadOfGrowing(t *testing.T) {
	w := traffic.UniformRandom(topology.ColumnNodes, 0.03)
	n := network.MustNew(network.Config{
		Kind: topology.MeshX1, QoS: qos.DefaultConfig(w.TotalFlows()), Workload: w, Seed: 9,
	})
	s := telemetry.Attach(n, telemetry.Options{Interval: 100, Horizon: 1_000})
	n.Run(10_000)
	tl := s.Timeline()
	if tl.DroppedSamples == 0 {
		t.Fatal("test expected the horizon to overflow")
	}
	if got, max := tl.Samples(), cap(tl.At); got != max {
		t.Errorf("timeline holds %d samples with capacity %d: overflow should stop exactly at capacity", got, max)
	}
}
