// Package telemetry turns one run of the engine into a deterministic
// time series. A Sampler attaches to a network as a periodic probe on
// the calendar ring (network.SetProbe) and, at every interval boundary,
// differences the stats collector's cumulative counters into
// per-interval series — injected/delivered/retried flits, preemption
// and fault counts, per-flow throughput — and snapshots instantaneous
// VC occupancy, per router for the congestion heatmap. Phase marks
// (the warmup/measure boundary, fault window edges, watchdog trips)
// annotate the series via the network's mark hook.
//
// # Why probes ride the calendar ring
//
// The obvious way to sample a simulator is from outside the engine:
// check `now % interval == 0` in the step loop, or poll from the
// driver between Run calls. Both break the properties this repository
// is built on.
//
// A modulo check in Step taxes every cycle of every run — including
// the unprobed ones — on the one path the allocation and ns/cycle
// gates pin. Polling between Run calls is worse: the idle-skip engine
// does not visit every cycle, so a wall-clock or driver-paced sampler
// observes different cycles depending on whether skipping is enabled,
// how cells are batched into ensemble lanes, and how workers
// interleave — the same simulation would produce different timelines
// on different machines.
//
// Scheduling the probe as a first-class event on the calendar ring —
// the same ring evFault and evWatchdog already ride — dissolves all of
// it:
//
//   - Unprobed runs pay nothing. No branch in Step, no hook check per
//     cycle; a run without a sampler has no probe event in the ring.
//   - Idle skipping stays exact. The engine's wake computation already
//     takes the earliest ring event into account, so a fast-forward
//     stops precisely on every sample boundary; probed timelines are
//     byte-identical with skipping on and off.
//   - Determinism is inherited, not re-proved. The probe fires at an
//     exact simulated cycle, in the engine's deterministic event
//     order, so the timeline is a pure function of the cell — the same
//     bytes for every worker count and lane grouping.
//   - Probing cannot perturb. The handler only reads engine state
//     (counter deltas and occupancy scans); it schedules nothing but
//     its own next tick, which the event census tracks as bookkeeping
//     (sysEvents) so a drained network still terminates. A probed run
//     is bit-identical to an unprobed one, pinned by fingerprint A/B
//     tests across topologies, QoS modes, skip settings and lanes.
//
// Every buffer the sampler writes during a run is preallocated at
// Attach time from the declared horizon, so an installed sampler keeps
// Step at exactly zero allocations per cycle; ticks beyond the
// preallocated capacity are counted (DroppedSamples), not stored.
package telemetry
