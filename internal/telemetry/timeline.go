package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"tanoq/internal/sim"
)

// Mark is one phase annotation on a timeline: a cycle where the run
// changed regime (measure start, a fault window edge, a watchdog trip).
type Mark struct {
	At   sim.Cycle `json:"at"`
	Kind string    `json:"kind"`
	Arg  int32     `json:"arg"`
}

// Timeline is the per-interval record of one run. The series slices are
// parallel — index i is the interval ending at At[i] — and a deselected
// series is nil. Flow and Heat are flat row-major matrices (sample ×
// Flows and sample × Nodes).
type Timeline struct {
	Interval sim.Cycle
	Nodes    int
	Flows    int
	TopFlows int

	hasFlits, hasEvts, hasOcc, hasFlow, hasHeat bool

	At []sim.Cycle
	// Flit deltas per interval.
	Injected, Delivered, Retried []int64
	// Event deltas per interval.
	Preempted, Retries, Dropped, Faulted []int64
	// Occupied VCs network-wide at the tick instant.
	Occupied []int64
	// Flow is the delivered-flit delta matrix, sample-major.
	Flow []int64
	// Heat is the per-node occupied-VC matrix, sample-major; Capacity
	// is the static per-node VC pool row that normalizes it.
	Heat     []int32
	Capacity []int32

	Marks []Mark
	// DroppedSamples/DroppedMarks count ticks past the preallocated
	// horizon — recorded, never silently lost.
	DroppedSamples int
	DroppedMarks   int
}

// Samples returns the number of recorded intervals.
func (tl *Timeline) Samples() int { return len(tl.At) }

// TopFlowIDs ranks flows by total delivered flits over the recorded
// samples and returns the ids of the top k (ties break toward the lower
// id, so the ranking is deterministic). Nil when the flows series was
// not collected.
func (tl *Timeline) TopFlowIDs(k int) []int {
	if tl.Flow == nil || tl.Flows == 0 {
		return nil
	}
	totals := make([]int64, tl.Flows)
	for i := 0; i < tl.Samples(); i++ {
		row := tl.Flow[i*tl.Flows : (i+1)*tl.Flows]
		for f, v := range row {
			totals[f] += v
		}
	}
	ids := make([]int, tl.Flows)
	for f := range ids {
		ids[f] = f
	}
	sort.SliceStable(ids, func(a, b int) bool { return totals[ids[a]] > totals[ids[b]] })
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// marksIn returns the marks with At in (lo, hi].
func (tl *Timeline) marksIn(lo, hi sim.Cycle) []Mark {
	var out []Mark
	for _, m := range tl.Marks {
		if m.At > lo && m.At <= hi {
			out = append(out, m)
		}
	}
	return out
}

// WriteTable renders the compact per-interval table (`noctool
// timeline`): one row per sample with the scalar series and any marks
// falling inside the interval.
func (tl *Timeline) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%10s %8s %8s %8s %8s %8s %8s %8s  %s\n",
		"cycle", "inj", "dlv", "rtx", "preempt", "retry", "fault", "vc_occ", "marks"); err != nil {
		return err
	}
	get := func(s []int64, i int) int64 {
		if s == nil {
			return 0
		}
		return s[i]
	}
	for i := 0; i < tl.Samples(); i++ {
		lo := tl.At[i] - tl.Interval
		var marks []string
		for _, m := range tl.marksIn(lo, tl.At[i]) {
			marks = append(marks, fmt.Sprintf("%s@%d", m.Kind, m.At))
		}
		if _, err := fmt.Fprintf(w, "%10d %8d %8d %8d %8d %8d %8d %8d  %s\n",
			tl.At[i], get(tl.Injected, i), get(tl.Delivered, i), get(tl.Retried, i),
			get(tl.Preempted, i), get(tl.Retries, i), get(tl.Faulted, i),
			get(tl.Occupied, i), strings.Join(marks, " ")); err != nil {
			return err
		}
	}
	if tl.DroppedSamples > 0 {
		if _, err := fmt.Fprintf(w, "(+%d samples past the preallocated horizon were dropped)\n", tl.DroppedSamples); err != nil {
			return err
		}
	}
	return nil
}

// WriteHeatmap renders the congestion heatmap as a CSV matrix: one row
// per node, one column per sample (occupied VCs at each tick), with a
// trailing capacity column for normalization.
func (tl *Timeline) WriteHeatmap(w io.Writer) error {
	if tl.Heat == nil {
		return fmt.Errorf("telemetry: heatmap series was not collected")
	}
	var b strings.Builder
	b.WriteString("node")
	for i := 0; i < tl.Samples(); i++ {
		fmt.Fprintf(&b, ",t%d", tl.At[i])
	}
	b.WriteString(",vc_capacity\n")
	for node := 0; node < tl.Nodes; node++ {
		fmt.Fprintf(&b, "%d", node)
		for i := 0; i < tl.Samples(); i++ {
			fmt.Fprintf(&b, ",%d", tl.Heat[i*tl.Nodes+node])
		}
		fmt.Fprintf(&b, ",%d\n", tl.Capacity[node])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSVHeader is the long-format header WriteCSV rows follow; the label
// column carries the caller's cell identity.
const CSVHeader = "label,sample,cycle,injected_flits,delivered_flits,retried_flits,preemptions,retries,dropped,fault_drops,vc_occupied\n"

// WriteCSV appends the timeline's samples in long format, one row per
// interval, prefixed by label. Flow and heatmap matrices are JSON-only.
func (tl *Timeline) WriteCSV(w io.Writer, label string) error {
	get := func(s []int64, i int) int64 {
		if s == nil {
			return 0
		}
		return s[i]
	}
	var b strings.Builder
	for i := 0; i < tl.Samples(); i++ {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			label, i, tl.At[i], get(tl.Injected, i), get(tl.Delivered, i), get(tl.Retried, i),
			get(tl.Preempted, i), get(tl.Retries, i), get(tl.Dropped, i), get(tl.Faulted, i),
			get(tl.Occupied, i))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonTimeline is the wire shape of a timeline: scalar series as
// parallel arrays, the top-K flow series by delivered flits, and the
// heatmap as per-node rows.
type jsonTimeline struct {
	Interval       int64       `json:"interval"`
	Nodes          int         `json:"nodes"`
	Flows          int         `json:"flows"`
	At             []sim.Cycle `json:"at"`
	Injected       []int64     `json:"injected_flits,omitempty"`
	Delivered      []int64     `json:"delivered_flits,omitempty"`
	Retried        []int64     `json:"retried_flits,omitempty"`
	Preempted      []int64     `json:"preemptions,omitempty"`
	Retries        []int64     `json:"retries,omitempty"`
	Dropped        []int64     `json:"dropped,omitempty"`
	Faulted        []int64     `json:"fault_drops,omitempty"`
	Occupied       []int64     `json:"vc_occupied,omitempty"`
	TopFlows       []jsonFlow  `json:"top_flows,omitempty"`
	Heatmap        [][]int32   `json:"heatmap,omitempty"`
	VCCapacity     []int32     `json:"vc_capacity,omitempty"`
	Marks          []Mark      `json:"marks,omitempty"`
	DroppedSamples int         `json:"dropped_samples,omitempty"`
	DroppedMarks   int         `json:"dropped_marks,omitempty"`
}

type jsonFlow struct {
	Flow  int     `json:"flow"`
	Flits []int64 `json:"flits"`
}

// view assembles the wire shape (shared by MarshalJSON and the CLI
// emitters).
func (tl *Timeline) view() jsonTimeline {
	v := jsonTimeline{
		Interval: int64(tl.Interval), Nodes: tl.Nodes, Flows: tl.Flows,
		At: tl.At, Injected: tl.Injected, Delivered: tl.Delivered, Retried: tl.Retried,
		Preempted: tl.Preempted, Retries: tl.Retries, Dropped: tl.Dropped, Faulted: tl.Faulted,
		Occupied: tl.Occupied, Marks: tl.Marks,
		DroppedSamples: tl.DroppedSamples, DroppedMarks: tl.DroppedMarks,
	}
	for _, f := range tl.TopFlowIDs(tl.TopFlows) {
		series := make([]int64, tl.Samples())
		for i := range series {
			series[i] = tl.Flow[i*tl.Flows+f]
		}
		v.TopFlows = append(v.TopFlows, jsonFlow{Flow: f, Flits: series})
	}
	if tl.Heat != nil {
		v.Heatmap = make([][]int32, tl.Nodes)
		for node := 0; node < tl.Nodes; node++ {
			row := make([]int32, tl.Samples())
			for i := range row {
				row[i] = tl.Heat[i*tl.Nodes+node]
			}
			v.Heatmap[node] = row
		}
		v.VCCapacity = tl.Capacity
	}
	return v
}

// MarshalJSON renders the timeline in its wire shape.
func (tl *Timeline) MarshalJSON() ([]byte, error) { return json.Marshal(tl.view()) }
