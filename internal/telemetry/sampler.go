package telemetry

import (
	"tanoq/internal/network"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
)

// Series selection names: which groups of columns a sampler collects.
const (
	// SeriesFlits: injected/delivered/retransmitted flit deltas.
	SeriesFlits = "flits"
	// SeriesEvents: preemption, retry, drop and fault-drop deltas.
	SeriesEvents = "events"
	// SeriesOccupancy: network-wide occupied-VC count at each tick.
	SeriesOccupancy = "occupancy"
	// SeriesFlows: the per-flow delivered-flit delta matrix.
	SeriesFlows = "flows"
	// SeriesHeatmap: the per-router occupied-VC matrix.
	SeriesHeatmap = "heatmap"
)

// KnownSeries lists every valid series name, in canonical order.
func KnownSeries() []string {
	return []string{SeriesFlits, SeriesEvents, SeriesOccupancy, SeriesFlows, SeriesHeatmap}
}

// ValidSeries reports whether name is a known series selector.
func ValidSeries(name string) bool {
	for _, s := range KnownSeries() {
		if s == name {
			return true
		}
	}
	return false
}

// Options configures a sampler attachment.
type Options struct {
	// Interval is the sampling period in cycles (required, positive).
	Interval sim.Cycle
	// Horizon is the expected run length in cycles; it sizes the
	// preallocated sample buffers (ticks past the horizon are dropped
	// and counted). Zero defaults to 1024 intervals.
	Horizon sim.Cycle
	// TopFlows is how many flows the JSON/table emitters rank and
	// print (collection is always all-flow). Zero defaults to 8.
	TopFlows int
	// Series selects the column groups to collect; empty selects all.
	Series []string
}

// Sampler is one network's installed probe and the timeline it fills.
type Sampler struct {
	net      *network.Network
	tl       *Timeline
	prev     stats.Totals
	prevFlow []int64
	occ      []int32 // per-node scratch, zeroed each tick
}

// Attach installs a sampler on n, which must be freshly Reset (the
// probe schedule starts at n's current cycle). All storage for the
// declared horizon is allocated here, so the per-tick path never
// allocates. The returned sampler's Timeline is live — read it after
// the run.
func Attach(n *network.Network, o Options) *Sampler {
	if o.Interval <= 0 {
		panic("telemetry: sampling interval must be positive")
	}
	if o.TopFlows <= 0 {
		o.TopFlows = 8
	}
	all := len(o.Series) == 0
	has := func(name string) bool {
		if all {
			return true
		}
		for _, s := range o.Series {
			if s == name {
				return true
			}
		}
		return false
	}
	capSamples := 1024
	if o.Horizon > 0 {
		capSamples = int(o.Horizon/o.Interval) + 2
	}
	nodes := n.Config().Nodes
	flows := n.Stats().Flows()
	tl := &Timeline{
		Interval: o.Interval,
		Nodes:    nodes,
		Flows:    flows,
		TopFlows: o.TopFlows,
		hasFlits: has(SeriesFlits),
		hasEvts:  has(SeriesEvents),
		hasOcc:   has(SeriesOccupancy),
		hasFlow:  has(SeriesFlows),
		hasHeat:  has(SeriesHeatmap),
		At:       make([]sim.Cycle, 0, capSamples),
		Marks:    make([]Mark, 0, 2*len(n.Config().Faults.Windows)+8),
	}
	if tl.hasFlits {
		tl.Injected = make([]int64, 0, capSamples)
		tl.Delivered = make([]int64, 0, capSamples)
		tl.Retried = make([]int64, 0, capSamples)
	}
	if tl.hasEvts {
		tl.Preempted = make([]int64, 0, capSamples)
		tl.Retries = make([]int64, 0, capSamples)
		tl.Dropped = make([]int64, 0, capSamples)
		tl.Faulted = make([]int64, 0, capSamples)
	}
	if tl.hasOcc || tl.hasHeat {
		tl.Occupied = make([]int64, 0, capSamples)
	}
	if tl.hasFlow {
		tl.Flow = make([]int64, 0, capSamples*flows)
	}
	if tl.hasHeat {
		tl.Heat = make([]int32, 0, capSamples*nodes)
		tl.Capacity = make([]int32, nodes)
		n.FillVCCapacities(tl.Capacity)
	}
	s := &Sampler{net: n, tl: tl}
	if tl.hasFlow {
		s.prevFlow = make([]int64, flows)
	}
	if tl.hasHeat {
		s.occ = make([]int32, nodes)
	}
	n.SetProbe(o.Interval, s.fire)
	n.SetMarkHook(s.mark)
	return s
}

// Timeline returns the sampler's live timeline.
func (s *Sampler) Timeline() *Timeline { return s.tl }

// fire is the probe handler: one sample, zero allocations (every append
// lands in capacity reserved by Attach; overflow is dropped and
// counted).
func (s *Sampler) fire(now sim.Cycle) {
	tl := s.tl
	if len(tl.At) == cap(tl.At) {
		tl.DroppedSamples++
		return
	}
	st := s.net.Stats()
	cur := st.Totals()
	d := cur.Sub(s.prev)
	s.prev = cur
	tl.At = append(tl.At, now)
	if tl.hasFlits {
		tl.Injected = append(tl.Injected, d.InjectedFlits)
		tl.Delivered = append(tl.Delivered, d.DeliveredFlits)
		tl.Retried = append(tl.Retried, d.Retransmits)
	}
	if tl.hasEvts {
		tl.Preempted = append(tl.Preempted, d.Preemptions)
		tl.Retries = append(tl.Retries, d.Retries)
		tl.Dropped = append(tl.Dropped, d.Dropped)
		tl.Faulted = append(tl.Faulted, d.FaultDrops)
	}
	if tl.hasFlow {
		flits := st.DeliveredFlits
		for f := 0; f < tl.Flows; f++ {
			v := flits[f]
			tl.Flow = append(tl.Flow, v-s.prevFlow[f])
			s.prevFlow[f] = v
		}
	}
	switch {
	case tl.hasHeat:
		for i := range s.occ {
			s.occ[i] = 0
		}
		total := s.net.FillVCOccupancy(s.occ)
		tl.Occupied = append(tl.Occupied, total)
		tl.Heat = append(tl.Heat, s.occ...)
	case tl.hasOcc:
		tl.Occupied = append(tl.Occupied, s.net.FillVCOccupancy(nil))
	}
}

// mark is the phase-mark hook: record the annotation and, at the
// warmup/measure boundary, re-baseline the cumulative deltas (the
// collector was just reset to zero at exactly this cycle).
func (s *Sampler) mark(m network.ProbeMark) {
	if m.Kind == network.MarkMeasureStart {
		s.prev = stats.Totals{}
		for i := range s.prevFlow {
			s.prevFlow[i] = 0
		}
	}
	tl := s.tl
	if len(tl.Marks) == cap(tl.Marks) {
		tl.DroppedMarks++
		return
	}
	tl.Marks = append(tl.Marks, Mark{At: m.At, Kind: m.Kind.String(), Arg: m.Arg})
}
