package traffic

import (
	"math"
	"testing"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

func TestFlowNumbering(t *testing.T) {
	if FlowOf(0, 0) != 0 {
		t.Error("node 0 terminal should be flow 0")
	}
	if FlowOf(3, 5) != noc.FlowID(3*topology.InjectorsPerNode+5) {
		t.Error("flow numbering broken")
	}
	for f := noc.FlowID(0); f < 64; f++ {
		n := NodeOfFlow(f)
		if n < 0 || int(n) >= 8 {
			t.Fatalf("flow %d maps to node %d", f, n)
		}
	}
	if NodeOfFlow(FlowOf(5, 7)) != 5 {
		t.Error("NodeOfFlow does not invert FlowOf")
	}
}

func TestUniformRandomPopulation(t *testing.T) {
	w := UniformRandom(8, 0.10)
	if len(w.Specs) != 64 {
		t.Fatalf("uniform activates %d injectors, want 64", len(w.Specs))
	}
	if w.TotalFlows() != 64 {
		t.Fatalf("total flows %d, want 64", w.TotalFlows())
	}
	seen := map[noc.FlowID]bool{}
	for _, s := range w.Specs {
		if seen[s.Flow] {
			t.Fatalf("duplicate flow %d", s.Flow)
		}
		seen[s.Flow] = true
		if s.Rate != 0.10 {
			t.Errorf("flow %d rate %v", s.Flow, s.Rate)
		}
	}
}

func TestUniformRandomExcludesSelf(t *testing.T) {
	w := UniformRandom(8, 0.10)
	r := sim.NewRNG(1)
	for _, s := range w.Specs {
		for i := 0; i < 200; i++ {
			d := s.Dest.Pick(r)
			if d == s.Node {
				t.Fatalf("injector at node %d generated self-destined packet", s.Node)
			}
			if d < 0 || int(d) >= 8 {
				t.Fatalf("destination %d out of range", d)
			}
		}
	}
}

func TestUniformRandomCoversAllDests(t *testing.T) {
	w := UniformRandom(8, 0.10)
	r := sim.NewRNG(7)
	counts := make([]int, 8)
	s := w.Specs[0] // node 0 terminal
	const draws = 70000
	for i := 0; i < draws; i++ {
		counts[s.Dest.Pick(r)]++
	}
	if counts[0] != 0 {
		t.Fatal("self-destination drawn")
	}
	want := float64(draws) / 7
	for d := 1; d < 8; d++ {
		if math.Abs(float64(counts[d])-want) > 0.05*want {
			t.Errorf("dest %d drawn %d times, want ~%.0f", d, counts[d], want)
		}
	}
}

func TestTornadoPattern(t *testing.T) {
	w := Tornado(8, 0.10)
	r := sim.NewRNG(1)
	for _, s := range w.Specs {
		want := noc.NodeID((int(s.Node) + 4) % 8)
		if got := s.Dest.Pick(r); got != want {
			t.Errorf("tornado from node %d goes to %d, want %d", s.Node, got, want)
		}
	}
	// Tornado distance is the half-dimension everywhere.
	for _, s := range w.Specs {
		if d := topology.Distance(s.Node, s.Dest.Pick(r)); d != 4 {
			t.Errorf("tornado distance %d, want 4", d)
		}
	}
}

func TestHotspotAllToNodeZero(t *testing.T) {
	w := Hotspot(8, 0.05)
	if len(w.Specs) != 64 {
		t.Fatalf("hotspot activates %d injectors", len(w.Specs))
	}
	r := sim.NewRNG(1)
	for _, s := range w.Specs {
		if s.Dest.Pick(r) != HotspotNode {
			t.Fatal("hotspot packet not destined for node 0")
		}
	}
}

func TestWorkload1Shape(t *testing.T) {
	w := Workload1(8, 0)
	if len(w.Specs) != 8 {
		t.Fatalf("workload 1 activates %d injectors, want 8", len(w.Specs))
	}
	// Section 5.3: rates range 5–20 % with average around 14 %, which
	// oversubscribes the 12.5 % fair share.
	sum := 0.0
	for i, s := range w.Specs {
		if s.Flow != FlowOf(noc.NodeID(i), 0) {
			t.Errorf("injector %d is not a terminal port", i)
		}
		if s.Rate < 0.05 || s.Rate > 0.20 {
			t.Errorf("rate %v outside 5–20%%", s.Rate)
		}
		sum += s.Rate
	}
	avg := sum / 8
	if avg < 0.13 || avg > 0.15 {
		t.Errorf("average rate %v, want ~0.14", avg)
	}
	if sum <= 1.0 {
		t.Errorf("offered load %v must oversubscribe the hotspot", sum)
	}
}

func TestWorkload2Shape(t *testing.T) {
	w := Workload2(8, 0)
	if len(w.Specs) != 9 {
		t.Fatalf("workload 2 activates %d injectors, want 9", len(w.Specs))
	}
	at7 := 0
	at6 := 0
	for _, s := range w.Specs {
		switch s.Node {
		case 7:
			at7++
		case 6:
			at6++
		default:
			t.Errorf("workload 2 injector at node %d", s.Node)
		}
	}
	if at7 != 8 || at6 != 1 {
		t.Errorf("workload 2 placement: %d at node 7, %d at node 6", at7, at6)
	}
}

func TestWorkloadPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"workload1 wrong size": func() { Workload1(4, 0) },
		"workload2 too small":  func() { Workload2(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestActiveRates(t *testing.T) {
	w := Workload1(8, 0)
	rates := w.ActiveRates()
	if len(rates) != 64 {
		t.Fatalf("rates len %d, want 64", len(rates))
	}
	active := 0
	for _, r := range rates {
		if r > 0 {
			active++
		}
	}
	if active != 8 {
		t.Errorf("%d active flows, want 8", active)
	}
	if rates[FlowOf(0, 0)] != Workload1Rates[0] {
		t.Error("terminal rate not mapped")
	}
}

func TestOfferedLoad(t *testing.T) {
	w := UniformRandom(8, 0.10)
	if got := w.OfferedLoad(); math.Abs(got-6.4) > 1e-9 {
		t.Errorf("offered load %v, want 6.4", got)
	}
}

func TestWithStop(t *testing.T) {
	w := UniformRandom(8, 0.10)
	s := w.WithStop(5000)
	for _, spec := range s.Specs {
		if spec.StopAt != 5000 {
			t.Fatal("WithStop did not set stop cycle")
		}
	}
	// Original untouched.
	for _, spec := range w.Specs {
		if spec.StopAt != 0 {
			t.Fatal("WithStop mutated the original workload")
		}
	}
}

func TestMeanFlitsPerPacket(t *testing.T) {
	s := Spec{RequestFraction: 0.5}
	if got := s.MeanFlitsPerPacket(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("mean flits %v, want 2.5", got)
	}
	s.RequestFraction = 1.0
	if got := s.MeanFlitsPerPacket(); got != 1 {
		t.Errorf("all-request mean %v, want 1", got)
	}
}
