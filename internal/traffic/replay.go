package traffic

import (
	"fmt"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
)

// TraceRecord is one record of a captured injection stream: at cycle At,
// the injector of flow Flow at node Src generated a packet of the given
// class for node Dst. A run's trace is the sequence of these records in
// generation order (non-decreasing cycles); internal/workload encodes
// them into the compact binary trace format and turns them back into
// replayable workloads. The engine's generation hook
// (network.SetGenHook) emits exactly this type, so a recorder is a
// one-line closure.
type TraceRecord struct {
	At    sim.Cycle
	Flow  noc.FlowID
	Src   noc.NodeID
	Dst   noc.NodeID
	Class noc.Class
}

// Flits returns the record's packet size, the unit the on-disk trace
// format stores (1 = request, 4 = reply; see noc.Class.Flits).
func (r TraceRecord) Flits() int { return r.Class.Flits() }

// ReplayEvent is one scheduled generation of a replay source: emit a
// packet of the given class for Dst at cycle At. It is TraceRecord with
// the per-stream constants (flow, source node) factored out.
type ReplayEvent struct {
	At    sim.Cycle
	Dst   noc.NodeID
	Class noc.Class
}

// Replay drives one injector from a prerecorded event stream instead of a
// stochastic process: the engine emits exactly Events, in order, at their
// recorded cycles, consuming no randomness at all. A Spec with Replay set
// ignores Rate, RequestFraction, Dest, Burst and StopAt — the records are
// the complete, explicit injection stream. Replay values are read-only
// after construction and safe to share across simulation cells (each
// source keeps its own cursor).
type Replay struct {
	Events []ReplayEvent
}

// Validate checks the event stream: cycles must be non-decreasing (the
// engine's arrival schedule pops them in order) and classes valid.
func (r *Replay) Validate() error {
	var prev sim.Cycle
	for i, ev := range r.Events {
		if ev.At < prev {
			return fmt.Errorf("traffic: replay event %d at cycle %d precedes cycle %d", i, ev.At, prev)
		}
		prev = ev.At
		if ev.Class != noc.ClassRequest && ev.Class != noc.ClassReply {
			return fmt.Errorf("traffic: replay event %d has invalid class %d", i, ev.Class)
		}
		if ev.Dst < 0 {
			return fmt.Errorf("traffic: replay event %d has negative destination %d", i, ev.Dst)
		}
	}
	return nil
}
