package traffic

import (
	"math"
	"testing"
	"time"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
)

// permutationPatterns lists the fixed src->dst bijections of the library.
func permutationPatterns() []Pattern {
	return []Pattern{
		TornadoTraffic(),
		TransposeTraffic(),
		BitComplementTraffic(),
		BitReversalTraffic(),
		ShuffleTraffic(),
	}
}

func TestPermutationPatternsAreBijective(t *testing.T) {
	r := sim.NewRNG(1)
	for _, p := range permutationPatterns() {
		for _, nodes := range []int{2, 4, 8, 16, 64} {
			seen := make(map[noc.NodeID]noc.NodeID, nodes)
			for src := 0; src < nodes; src++ {
				d, err := p.DestFor(noc.NodeID(src), nodes)
				if err != nil {
					t.Fatalf("%s: DestFor(%d, %d): %v", p.Name(), src, nodes, err)
				}
				dst := d.Pick(r)
				if dst < 0 || int(dst) >= nodes {
					t.Fatalf("%s: %d nodes, src %d -> dst %d out of range", p.Name(), nodes, src, dst)
				}
				if prev, dup := seen[dst]; dup {
					t.Fatalf("%s: %d nodes, both %d and %d map to %d", p.Name(), nodes, prev, src, dst)
				}
				seen[dst] = noc.NodeID(src)
			}
			if len(seen) != nodes {
				t.Fatalf("%s: %d nodes, image has %d members", p.Name(), nodes, len(seen))
			}
		}
	}
}

func TestPermutationDestsAreStable(t *testing.T) {
	// A permutation source's destination never varies across packets.
	r := sim.NewRNG(9)
	for _, p := range permutationPatterns() {
		d, err := p.DestFor(5, 8)
		if err != nil {
			t.Fatal(err)
		}
		first := d.Pick(r)
		for i := 0; i < 100; i++ {
			if got := d.Pick(r); got != first {
				t.Fatalf("%s: destination drifted %d -> %d", p.Name(), first, got)
			}
		}
	}
}

func TestBitPatternsOnEightNodes(t *testing.T) {
	// Pin the concrete 8-node (3-bit) maps so a definition change cannot
	// slip through the bijectivity test unnoticed.
	cases := []struct {
		pattern Pattern
		want    [8]noc.NodeID
	}{
		// transpose: rotate right by 1 (b/2 = 1 for b = 3).
		{TransposeTraffic(), [8]noc.NodeID{0, 4, 1, 5, 2, 6, 3, 7}},
		// bit-complement: d = ^s.
		{BitComplementTraffic(), [8]noc.NodeID{7, 6, 5, 4, 3, 2, 1, 0}},
		// bit-reversal: d2d1d0 = s0s1s2.
		{BitReversalTraffic(), [8]noc.NodeID{0, 4, 2, 6, 1, 5, 3, 7}},
		// shuffle: rotate left by 1.
		{ShuffleTraffic(), [8]noc.NodeID{0, 2, 4, 6, 1, 3, 5, 7}},
	}
	r := sim.NewRNG(1)
	for _, c := range cases {
		for src := 0; src < 8; src++ {
			d, err := c.pattern.DestFor(noc.NodeID(src), 8)
			if err != nil {
				t.Fatal(err)
			}
			if got := d.Pick(r); got != c.want[src] {
				t.Errorf("%s: src %d -> %d, want %d", c.pattern.Name(), src, got, c.want[src])
			}
		}
	}
}

func TestBitPatternsRejectNonPowerOfTwo(t *testing.T) {
	for _, p := range []Pattern{TransposeTraffic(), BitComplementTraffic(), BitReversalTraffic(), ShuffleTraffic()} {
		for _, nodes := range []int{3, 6, 12} {
			if _, err := p.DestFor(0, nodes); err == nil {
				t.Errorf("%s accepted %d nodes", p.Name(), nodes)
			}
		}
	}
}

// chiSquare computes sum((obs-exp)^2/exp) over the bins with expected
// mass; it fails the test when a bin with zero expectation is hit.
func chiSquare(t *testing.T, obs []int, exp []float64) float64 {
	t.Helper()
	x2 := 0.0
	for i := range obs {
		if exp[i] == 0 {
			if obs[i] != 0 {
				t.Fatalf("bin %d: %d observations with zero expected mass", i, obs[i])
			}
			continue
		}
		d := float64(obs[i]) - exp[i]
		x2 += d * d / exp[i]
	}
	return x2
}

func TestUniformDestinationChiSquare(t *testing.T) {
	const nodes, draws = 8, 140_000
	d, err := UniformTraffic().DestFor(3, nodes)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(12345)
	obs := make([]int, nodes)
	for i := 0; i < draws; i++ {
		obs[d.Pick(r)]++
	}
	exp := make([]float64, nodes)
	for i := range exp {
		if i != 3 {
			exp[i] = float64(draws) / (nodes - 1)
		}
	}
	// 7 occupied bins -> 6 degrees of freedom; chi2(0.999, 6) = 22.46.
	// The RNG is seeded, so this is a regression pin, not a flaky gate.
	if x2 := chiSquare(t, obs, exp); x2 > 22.46 {
		t.Errorf("uniform chi-square %.2f exceeds 22.46 (df 6, p=0.001)", x2)
	}
	if obs[3] != 0 {
		t.Error("uniform pattern drew the source's own node")
	}
}

func TestWeightedHotspotDistribution(t *testing.T) {
	const nodes, draws = 8, 200_000
	weights := []float64{8, 0, 2, 1, 1, 0, 0, 4}
	d, err := HotspotTraffic(weights).DestFor(6, nodes)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(777)
	obs := make([]int, nodes)
	for i := 0; i < draws; i++ {
		obs[d.Pick(r)]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	exp := make([]float64, nodes)
	for i, w := range weights {
		exp[i] = float64(draws) * w / total
	}
	// 5 occupied bins -> 4 degrees of freedom; chi2(0.999, 4) = 18.47.
	if x2 := chiSquare(t, obs, exp); x2 > 18.47 {
		t.Errorf("weighted hotspot chi-square %.2f exceeds 18.47 (df 4, p=0.001)", x2)
	}
}

func TestHotspotDefaultTargetsNodeZero(t *testing.T) {
	d, err := HotspotTraffic(nil).DestFor(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(1)
	for i := 0; i < 50; i++ {
		if got := d.Pick(r); got != HotspotNode {
			t.Fatalf("default hotspot picked %d", got)
		}
	}
}

func TestHotspotWeightValidation(t *testing.T) {
	cases := map[string][]float64{
		"wrong length":    {1, 2, 3},
		"negative weight": {1, 1, 1, 1, -1, 1, 1, 1},
		"all zero":        {0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, w := range cases {
		if _, err := HotspotTraffic(w).DestFor(0, 8); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestPatternByName(t *testing.T) {
	for _, name := range PatternNames() {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("pattern %q reports name %q", name, p.Name())
		}
	}
	if _, err := PatternByName("nearest-neighbor"); err == nil {
		t.Error("unknown pattern name accepted")
	}
}

func TestSyntheticMatchesLegacyConstructors(t *testing.T) {
	legacy := UniformRandom(8, 0.1)
	built, err := Synthetic(UniformTraffic(), 8, 0.1, Burst{})
	if err != nil {
		t.Fatal(err)
	}
	if built.Name != legacy.Name || built.Nodes != legacy.Nodes || len(built.Specs) != len(legacy.Specs) {
		t.Fatalf("Synthetic shape (%s, %d, %d) != legacy (%s, %d, %d)",
			built.Name, built.Nodes, len(built.Specs), legacy.Name, legacy.Nodes, len(legacy.Specs))
	}
	for i := range built.Specs {
		b, l := built.Specs[i], legacy.Specs[i]
		if b.Flow != l.Flow || b.Node != l.Node || b.Rate != l.Rate || b.RequestFraction != l.RequestFraction {
			t.Fatalf("spec %d differs: %+v vs %+v", i, b, l)
		}
	}
}

func TestBurstMeanRatePinned(t *testing.T) {
	// The sampler's long-run arrival rate must equal the spec's modeled
	// packet rate (Rate / mean packet size) regardless of burst shape.
	for _, c := range []struct {
		b Burst
		// tol scales with the burst's window variance: rare long OFF
		// windows dominate the gap total, so fewer effective samples.
		tol float64
	}{
		{Burst{}, 0.02},                              // smooth
		{Burst{MeanOn: 50, MeanOff: 150}, 0.02},      // 25% duty
		{Burst{MeanOn: 400, MeanOff: 100}, 0.02},     // long bursts
		{Burst{MeanOn: 2, MeanOff: 2}, 0.02},         // churning windows
		{Burst{MeanOn: 1000, MeanOff: 10_000}, 0.06}, // rare intense bursts
	} {
		b := c.b
		spec := Spec{Rate: 0.08, RequestFraction: DefaultRequestFraction, Dest: FixedDest(0), Burst: b}
		if err := spec.Validate(); err != nil {
			t.Fatalf("burst %+v: %v", b, err)
		}
		r := sim.NewRNG(4242)
		a := spec.NewArrivalSampler(r)
		const arrivals = 300_000
		total := int64(0)
		for i := 0; i < arrivals; i++ {
			total += int64(a.NextGap(r))
		}
		wantGap := spec.MeanFlitsPerPacket() / spec.Rate // 31.25 cycles
		gotGap := float64(total) / arrivals
		if math.Abs(gotGap-wantGap)/wantGap > c.tol {
			t.Errorf("burst %+v: mean gap %.2f cycles, want %.2f +-%.0f%%", b, gotGap, wantGap, c.tol*100)
		}
	}
}

func TestBurstPeakProbability(t *testing.T) {
	spec := Spec{Rate: 0.1, RequestFraction: DefaultRequestFraction,
		Dest: FixedDest(0), Burst: Burst{MeanOn: 100, MeanOff: 300}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	a := spec.NewArrivalSampler(sim.NewRNG(1))
	// rate 0.1 over mean size 2.5 = 0.04 packets/cycle; duty 0.25 -> ON
	// probability 0.16.
	if got := a.PeakProb(); math.Abs(got-0.16) > 1e-12 {
		t.Errorf("peak probability %v, want 0.16", got)
	}
}

func TestBurstValidation(t *testing.T) {
	base := Spec{Rate: 0.9, RequestFraction: 1.0, Dest: FixedDest(0)}
	// Peak demand 0.9 packets/cycle / 0.25 duty = 3.6 > 1.
	over := base
	over.Burst = Burst{MeanOn: 100, MeanOff: 300}
	if err := over.Validate(); err == nil {
		t.Error("burst peak demand above 1 packet/cycle accepted")
	}
	// Sub-cycle window means are meaningless for a discrete process.
	tiny := base
	tiny.Rate = 0.01
	tiny.Burst = Burst{MeanOn: 0.5, MeanOff: 10}
	if err := tiny.Validate(); err == nil {
		t.Error("sub-cycle ON window accepted")
	}
	ok := base
	ok.Rate = 0.1
	ok.Burst = Burst{MeanOn: 200, MeanOff: 200}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid burst rejected: %v", err)
	}
}

func TestBurstWalkIsBoundedForTinyRates(t *testing.T) {
	// A valid but absurdly small rate draws astronomically long gaps;
	// the window walk must cap instead of spinning for billions of
	// iterations. The arrival still lands far beyond any simulable
	// horizon, so the truncation is unobservable.
	spec := Spec{Rate: 1e-9, RequestFraction: DefaultRequestFraction,
		Dest: FixedDest(0), Burst: Burst{MeanOn: 1, MeanOff: 1}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(5)
	a := spec.NewArrivalSampler(r)
	done := make(chan sim.Cycle, 1)
	go func() { done <- a.NextGap(r) }()
	select {
	case gap := <-done:
		if gap < maxWalkWindows {
			t.Errorf("tiny-rate gap %d implausibly small", gap)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("NextGap did not return; window walk is unbounded")
	}
}

func TestSmoothSamplerMatchesPlainGeometric(t *testing.T) {
	// A smooth spec's sampler must consume the RNG exactly like the
	// historical direct Geometric draws — seeds reproduce old runs.
	spec := Spec{Rate: 0.12, RequestFraction: DefaultRequestFraction, Dest: FixedDest(0)}
	p := spec.Rate / spec.MeanFlitsPerPacket()
	r1, r2 := sim.NewRNG(99), sim.NewRNG(99)
	a := spec.NewArrivalSampler(r1)
	for i := 0; i < 1000; i++ {
		if got, want := a.NextGap(r1), sim.Cycle(r2.Geometric(p)); got != want {
			t.Fatalf("draw %d: sampler gap %d != direct geometric %d", i, got, want)
		}
	}
}
