// Package traffic builds synthetic workloads: the paper's evaluation
// patterns (uniform random and tornado load-latency sweeps, the hotspot
// fairness pattern of Table 2, the two adversarial preemption workloads
// of Section 5.3) plus the wider synthetic canon — bit-permutation
// patterns (transpose, bit-complement, bit-reversal, shuffle), weighted
// hotspots, and MMPP-style bursty on/off injection (see pattern.go and
// arrival.go). A workload is a set of injector specifications; the
// network engine samples each injector's arrivals by inter-arrival time
// and delegates destination selection to its Dest pattern.
//
// Injector numbering: each of the eight column nodes hosts
// topology.InjectorsPerNode = 8 injectors — index 0 is the shared-resource
// terminal port, indices 1..7 are the MECS row inputs arriving from the
// node's row. FlowID = node*8 + index; QoS state is provisioned for the
// full population even when a workload activates only a subset (that is
// precisely how the adversarial workloads exhaust PVC's reserved quota).
package traffic

import (
	"fmt"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// Spec describes one traffic injector.
type Spec struct {
	Flow noc.FlowID
	Node noc.NodeID
	// Rate is the offered load in flits per cycle (0.12 = 12 %). Bursty
	// specs keep Rate as the long-run mean; see Burst.
	Rate float64
	// RequestFraction is the probability a generated packet is a 1-flit
	// request; the remainder are 4-flit replies. The paper's stochastic
	// 1-and-4-flit mix uses 0.5.
	RequestFraction float64
	// Dest picks each packet's destination (see the Dest interface and
	// the Pattern library in pattern.go).
	Dest Dest
	// Burst, when enabled, gates injection with MMPP-style on/off
	// windows (see Burst); the zero value injects smoothly.
	Burst Burst
	// StopAt, when positive, halts generation at that cycle (used by
	// the finite run-to-drain workloads of Figure 6).
	StopAt sim.Cycle
	// Replay, when set, drives this injector from a prerecorded event
	// stream (see Replay): the stochastic fields above are ignored and
	// the source consumes no randomness.
	Replay *Replay
}

// Validate checks a spec's parameters: rates and fractions must be
// probabilities, an active injector needs a destination picker, and a
// bursty spec's peak (ON-window) demand may not exceed one packet per
// cycle — the injection process it models has one trial per cycle. A
// replay spec is validated through its event stream instead; the
// stochastic fields are ignored.
func (s Spec) Validate() error {
	if s.Replay != nil {
		return s.Replay.Validate()
	}
	if s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("traffic: injector flow %d rate %v outside [0,1]", s.Flow, s.Rate)
	}
	if s.RequestFraction < 0 || s.RequestFraction > 1 {
		return fmt.Errorf("traffic: injector flow %d request fraction %v outside [0,1]", s.Flow, s.RequestFraction)
	}
	if s.Rate > 0 && s.Dest == nil {
		return fmt.Errorf("traffic: injector flow %d has no destination picker", s.Flow)
	}
	if err := s.Burst.Validate(); err != nil {
		return fmt.Errorf("injector flow %d: %w", s.Flow, err)
	}
	if s.Burst.Enabled() && s.Rate > 0 {
		if peak := s.Rate / s.MeanFlitsPerPacket() / s.Burst.Duty(); peak > 1 {
			return fmt.Errorf("traffic: injector flow %d burst peak demand %.3f packets/cycle exceeds 1 (rate %v over duty %.3f)",
				s.Flow, peak, s.Rate, s.Burst.Duty())
		}
	}
	return nil
}

// DefaultRequestFraction is the paper's packet mix: an equal stochastic
// blend of 1-flit requests and 4-flit replies.
const DefaultRequestFraction = 0.5

// MeanFlitsPerPacket returns the expected packet size under the spec's
// class mix.
func (s Spec) MeanFlitsPerPacket() float64 {
	return s.RequestFraction*float64(noc.RequestFlits) + (1-s.RequestFraction)*float64(noc.ReplyFlits)
}

// Workload is a named set of injectors over a column of nodes.
type Workload struct {
	Name  string
	Nodes int
	Specs []Spec
}

// TotalFlows returns the QoS flow population (all potential injectors,
// active or not): qos.Config.Rates must cover every flow ID.
func (w Workload) TotalFlows() int { return w.Nodes * topology.InjectorsPerNode }

// FlowOf returns the flow ID of an injector position.
func FlowOf(node noc.NodeID, injector int) noc.FlowID {
	return noc.FlowID(int(node)*topology.InjectorsPerNode + injector)
}

// NodeOfFlow returns the column node hosting a flow.
func NodeOfFlow(f noc.FlowID) noc.NodeID {
	return noc.NodeID(int(f) / topology.InjectorsPerNode)
}

// Synthetic activates every injector of an nodes-node column at the given
// per-injector rate under the pattern, with optional burst modulation.
// Specs are appended node-major in flow order, the canonical workload
// layout every constructor in this package follows.
func Synthetic(p Pattern, nodes int, rate float64, burst Burst) (Workload, error) {
	w := Workload{Name: fmt.Sprintf("%s-%.3f", p.Name(), rate), Nodes: nodes}
	for n := 0; n < nodes; n++ {
		node := noc.NodeID(n)
		dest, err := p.DestFor(node, nodes)
		if err != nil {
			return Workload{}, err
		}
		for i := 0; i < topology.InjectorsPerNode; i++ {
			w.Specs = append(w.Specs, Spec{
				Flow:            FlowOf(node, i),
				Node:            node,
				Rate:            rate,
				RequestFraction: DefaultRequestFraction,
				Dest:            dest,
				Burst:           burst,
			})
		}
	}
	return w, nil
}

// mustSynthetic backs the legacy constructors, whose patterns are defined
// for every node count.
func mustSynthetic(p Pattern, nodes int, rate float64) Workload {
	w, err := Synthetic(p, nodes, rate, Burst{})
	if err != nil {
		panic(err)
	}
	return w
}

// UniformRandom activates every injector at the given per-injector rate,
// spreading destinations uniformly over the other column nodes — the
// benign pattern of Figure 4(a).
func UniformRandom(nodes int, rate float64) Workload {
	return mustSynthetic(UniformTraffic(), nodes, rate)
}

// Tornado concentrates each node's traffic on the destination half-way
// across the dimension ((i + n/2) mod n) — the challenge pattern for rings
// and meshes of Figure 4(b).
func Tornado(nodes int, rate float64) Workload {
	return mustSynthetic(TornadoTraffic(), nodes, rate)
}

// HotspotNode is where the contended shared resource (e.g. the busiest
// memory controller) sits in the fairness experiments.
const HotspotNode noc.NodeID = 0

// Hotspot streams every injector — including the row inputs at node 0
// itself — at the terminal of node 0, following the methodology of the
// PVC paper that Table 2 reproduces. Without QoS, sources close to the
// hotspot capture the bandwidth and distant ones starve.
func Hotspot(nodes int, rate float64) Workload {
	return mustSynthetic(HotspotTraffic(nil), nodes, rate)
}

// Workload1Rates are the widely different injection rates (5–20 %,
// average ≈ 14 %) assigned to the eight terminal injectors of adversarial
// Workload 1. Only a subset of the 64 provisioned flows communicates, so
// each active source exhausts its reserved quota early in every frame and
// preemptions follow (Section 5.3).
var Workload1Rates = []float64{0.05, 0.09, 0.12, 0.14, 0.16, 0.18, 0.19, 0.20}

// Workload1 activates only the terminal injector of each node, all
// streaming at the hotspot with Workload1Rates.
func Workload1(nodes int, stopAt sim.Cycle) Workload {
	if nodes != len(Workload1Rates) {
		panic(fmt.Sprintf("traffic: workload 1 defined for %d nodes, got %d", len(Workload1Rates), nodes))
	}
	w := Workload{Name: "workload1", Nodes: nodes}
	for n := 0; n < nodes; n++ {
		node := noc.NodeID(n)
		w.Specs = append(w.Specs, Spec{
			Flow:            FlowOf(node, 0),
			Node:            node,
			Rate:            Workload1Rates[n],
			RequestFraction: DefaultRequestFraction,
			Dest:            fixedDest(HotspotNode),
			StopAt:          stopAt,
		})
	}
	return w
}

// Workload2NodeRates are the rates of the eight injectors co-located at
// node 7 (the farthest from the hotspot), crafted to pressure one
// downstream MECS port; Workload2ExtraRate drives the additional injector
// at node 6 that keeps the destination output port contended.
var (
	Workload2NodeRates = []float64{0.05, 0.08, 0.11, 0.13, 0.15, 0.17, 0.19, 0.20}
	Workload2ExtraRate = 0.18
)

// Workload2 activates all eight injectors of node 7 plus one injector at
// node 6, all streaming at the hotspot (Section 5.3's MECS stress).
func Workload2(nodes int, stopAt sim.Cycle) Workload {
	if nodes < 8 {
		panic(fmt.Sprintf("traffic: workload 2 needs at least 8 nodes, got %d", nodes))
	}
	w := Workload{Name: "workload2", Nodes: nodes}
	far := noc.NodeID(nodes - 1)
	for i := 0; i < topology.InjectorsPerNode; i++ {
		w.Specs = append(w.Specs, Spec{
			Flow:            FlowOf(far, i),
			Node:            far,
			Rate:            Workload2NodeRates[i],
			RequestFraction: DefaultRequestFraction,
			Dest:            fixedDest(HotspotNode),
			StopAt:          stopAt,
		})
	}
	w.Specs = append(w.Specs, Spec{
		Flow:            FlowOf(far-1, 0),
		Node:            far - 1,
		Rate:            Workload2ExtraRate,
		RequestFraction: DefaultRequestFraction,
		Dest:            fixedDest(HotspotNode),
		StopAt:          stopAt,
	})
	return w
}

// ActiveRates returns the offered rate per flow over the full flow
// population (zero for inactive flows) — the demand vector handed to the
// max-min fairness expectation.
func (w Workload) ActiveRates() []float64 {
	rates := make([]float64, w.TotalFlows())
	for _, s := range w.Specs {
		rates[s.Flow] = s.Rate
	}
	return rates
}

// OfferedLoad returns the total offered load in flits per cycle.
func (w Workload) OfferedLoad() float64 {
	total := 0.0
	for _, s := range w.Specs {
		total += s.Rate
	}
	return total
}

// WithStop returns a copy of the workload whose injectors all stop at the
// given cycle.
func (w Workload) WithStop(stopAt sim.Cycle) Workload {
	out := Workload{Name: w.Name, Nodes: w.Nodes, Specs: make([]Spec, len(w.Specs))}
	copy(out.Specs, w.Specs)
	for i := range out.Specs {
		out.Specs[i].StopAt = stopAt
	}
	return out
}
