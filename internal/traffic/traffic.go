// Package traffic builds the synthetic workloads of the paper's
// evaluation (Section 4): uniform random and tornado load-latency sweeps,
// the hotspot fairness pattern of Table 2, and the two adversarial
// preemption workloads of Section 5.3. A workload is a set of injector
// specifications the network engine samples every cycle.
//
// Injector numbering: each of the eight column nodes hosts
// topology.InjectorsPerNode = 8 injectors — index 0 is the shared-resource
// terminal port, indices 1..7 are the MECS row inputs arriving from the
// node's row. FlowID = node*8 + index; QoS state is provisioned for the
// full population even when a workload activates only a subset (that is
// precisely how the adversarial workloads exhaust PVC's reserved quota).
package traffic

import (
	"fmt"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
)

// DestFn picks the destination node of a freshly generated packet.
type DestFn func(r *sim.RNG) noc.NodeID

// Spec describes one traffic injector.
type Spec struct {
	Flow noc.FlowID
	Node noc.NodeID
	// Rate is the offered load in flits per cycle (0.12 = 12 %).
	Rate float64
	// RequestFraction is the probability a generated packet is a 1-flit
	// request; the remainder are 4-flit replies. The paper's stochastic
	// 1-and-4-flit mix uses 0.5.
	RequestFraction float64
	// Dest picks each packet's destination.
	Dest DestFn
	// StopAt, when positive, halts generation at that cycle (used by
	// the finite run-to-drain workloads of Figure 6).
	StopAt sim.Cycle
}

// DefaultRequestFraction is the paper's packet mix: an equal stochastic
// blend of 1-flit requests and 4-flit replies.
const DefaultRequestFraction = 0.5

// MeanFlitsPerPacket returns the expected packet size under the spec's
// class mix.
func (s Spec) MeanFlitsPerPacket() float64 {
	return s.RequestFraction*float64(noc.RequestFlits) + (1-s.RequestFraction)*float64(noc.ReplyFlits)
}

// Workload is a named set of injectors over a column of nodes.
type Workload struct {
	Name  string
	Nodes int
	Specs []Spec
}

// TotalFlows returns the QoS flow population (all potential injectors,
// active or not): qos.Config.Rates must cover every flow ID.
func (w Workload) TotalFlows() int { return w.Nodes * topology.InjectorsPerNode }

// FlowOf returns the flow ID of an injector position.
func FlowOf(node noc.NodeID, injector int) noc.FlowID {
	return noc.FlowID(int(node)*topology.InjectorsPerNode + injector)
}

// NodeOfFlow returns the column node hosting a flow.
func NodeOfFlow(f noc.FlowID) noc.NodeID {
	return noc.NodeID(int(f) / topology.InjectorsPerNode)
}

// UniformRandom activates every injector at the given per-injector rate,
// spreading destinations uniformly over the other column nodes — the
// benign pattern of Figure 4(a).
func UniformRandom(nodes int, rate float64) Workload {
	w := Workload{Name: fmt.Sprintf("uniform-%.3f", rate), Nodes: nodes}
	for n := 0; n < nodes; n++ {
		node := noc.NodeID(n)
		for i := 0; i < topology.InjectorsPerNode; i++ {
			w.Specs = append(w.Specs, Spec{
				Flow:            FlowOf(node, i),
				Node:            node,
				Rate:            rate,
				RequestFraction: DefaultRequestFraction,
				Dest:            uniformExcluding(nodes, n),
			})
		}
	}
	return w
}

func uniformExcluding(nodes, self int) DestFn {
	return func(r *sim.RNG) noc.NodeID {
		d := r.Intn(nodes - 1)
		if d >= self {
			d++
		}
		return noc.NodeID(d)
	}
}

// Tornado concentrates each node's traffic on the destination half-way
// across the dimension ((i + n/2) mod n) — the challenge pattern for rings
// and meshes of Figure 4(b).
func Tornado(nodes int, rate float64) Workload {
	w := Workload{Name: fmt.Sprintf("tornado-%.3f", rate), Nodes: nodes}
	for n := 0; n < nodes; n++ {
		node := noc.NodeID(n)
		dst := noc.NodeID((n + nodes/2) % nodes)
		for i := 0; i < topology.InjectorsPerNode; i++ {
			w.Specs = append(w.Specs, Spec{
				Flow:            FlowOf(node, i),
				Node:            node,
				Rate:            rate,
				RequestFraction: DefaultRequestFraction,
				Dest:            fixedDest(dst),
			})
		}
	}
	return w
}

func fixedDest(d noc.NodeID) DestFn {
	return func(*sim.RNG) noc.NodeID { return d }
}

// HotspotNode is where the contended shared resource (e.g. the busiest
// memory controller) sits in the fairness experiments.
const HotspotNode noc.NodeID = 0

// Hotspot streams every injector — including the row inputs at node 0
// itself — at the terminal of node 0, following the methodology of the
// PVC paper that Table 2 reproduces. Without QoS, sources close to the
// hotspot capture the bandwidth and distant ones starve.
func Hotspot(nodes int, rate float64) Workload {
	w := Workload{Name: fmt.Sprintf("hotspot-%.3f", rate), Nodes: nodes}
	for n := 0; n < nodes; n++ {
		node := noc.NodeID(n)
		for i := 0; i < topology.InjectorsPerNode; i++ {
			w.Specs = append(w.Specs, Spec{
				Flow:            FlowOf(node, i),
				Node:            node,
				Rate:            rate,
				RequestFraction: DefaultRequestFraction,
				Dest:            fixedDest(HotspotNode),
			})
		}
	}
	return w
}

// Workload1Rates are the widely different injection rates (5–20 %,
// average ≈ 14 %) assigned to the eight terminal injectors of adversarial
// Workload 1. Only a subset of the 64 provisioned flows communicates, so
// each active source exhausts its reserved quota early in every frame and
// preemptions follow (Section 5.3).
var Workload1Rates = []float64{0.05, 0.09, 0.12, 0.14, 0.16, 0.18, 0.19, 0.20}

// Workload1 activates only the terminal injector of each node, all
// streaming at the hotspot with Workload1Rates.
func Workload1(nodes int, stopAt sim.Cycle) Workload {
	if nodes != len(Workload1Rates) {
		panic(fmt.Sprintf("traffic: workload 1 defined for %d nodes, got %d", len(Workload1Rates), nodes))
	}
	w := Workload{Name: "workload1", Nodes: nodes}
	for n := 0; n < nodes; n++ {
		node := noc.NodeID(n)
		w.Specs = append(w.Specs, Spec{
			Flow:            FlowOf(node, 0),
			Node:            node,
			Rate:            Workload1Rates[n],
			RequestFraction: DefaultRequestFraction,
			Dest:            fixedDest(HotspotNode),
			StopAt:          stopAt,
		})
	}
	return w
}

// Workload2NodeRates are the rates of the eight injectors co-located at
// node 7 (the farthest from the hotspot), crafted to pressure one
// downstream MECS port; Workload2ExtraRate drives the additional injector
// at node 6 that keeps the destination output port contended.
var (
	Workload2NodeRates = []float64{0.05, 0.08, 0.11, 0.13, 0.15, 0.17, 0.19, 0.20}
	Workload2ExtraRate = 0.18
)

// Workload2 activates all eight injectors of node 7 plus one injector at
// node 6, all streaming at the hotspot (Section 5.3's MECS stress).
func Workload2(nodes int, stopAt sim.Cycle) Workload {
	if nodes < 8 {
		panic(fmt.Sprintf("traffic: workload 2 needs at least 8 nodes, got %d", nodes))
	}
	w := Workload{Name: "workload2", Nodes: nodes}
	far := noc.NodeID(nodes - 1)
	for i := 0; i < topology.InjectorsPerNode; i++ {
		w.Specs = append(w.Specs, Spec{
			Flow:            FlowOf(far, i),
			Node:            far,
			Rate:            Workload2NodeRates[i],
			RequestFraction: DefaultRequestFraction,
			Dest:            fixedDest(HotspotNode),
			StopAt:          stopAt,
		})
	}
	w.Specs = append(w.Specs, Spec{
		Flow:            FlowOf(far-1, 0),
		Node:            far - 1,
		Rate:            Workload2ExtraRate,
		RequestFraction: DefaultRequestFraction,
		Dest:            fixedDest(HotspotNode),
		StopAt:          stopAt,
	})
	return w
}

// ActiveRates returns the offered rate per flow over the full flow
// population (zero for inactive flows) — the demand vector handed to the
// max-min fairness expectation.
func (w Workload) ActiveRates() []float64 {
	rates := make([]float64, w.TotalFlows())
	for _, s := range w.Specs {
		rates[s.Flow] = s.Rate
	}
	return rates
}

// OfferedLoad returns the total offered load in flits per cycle.
func (w Workload) OfferedLoad() float64 {
	total := 0.0
	for _, s := range w.Specs {
		total += s.Rate
	}
	return total
}

// WithStop returns a copy of the workload whose injectors all stop at the
// given cycle.
func (w Workload) WithStop(stopAt sim.Cycle) Workload {
	out := Workload{Name: w.Name, Nodes: w.Nodes, Specs: make([]Spec, len(w.Specs))}
	copy(out.Specs, w.Specs)
	for i := range out.Specs {
		out.Specs[i].StopAt = stopAt
	}
	return out
}
