package traffic

import (
	"fmt"
	"sort"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
)

// Dest picks the destination node of a freshly generated packet. The
// engine calls Pick once per generated packet on its hot path, so
// implementations must be allocation-free and must not mutate shared
// state: a workload (and therefore its Dest values) may be shared by
// simulation cells running on different worker goroutines, and every
// source supplies its own private RNG stream.
type Dest interface {
	Pick(r *sim.RNG) noc.NodeID
}

// DestFunc adapts a plain function to the Dest interface (tests and
// one-off drivers; the built-in patterns use dedicated value types).
type DestFunc func(r *sim.RNG) noc.NodeID

// Pick calls the wrapped function.
func (f DestFunc) Pick(r *sim.RNG) noc.NodeID { return f(r) }

// fixedDest always picks the same node, consuming no randomness.
type fixedDest noc.NodeID

func (d fixedDest) Pick(*sim.RNG) noc.NodeID { return noc.NodeID(d) }

// FixedDest returns a Dest that always picks d.
func FixedDest(d noc.NodeID) Dest { return fixedDest(d) }

// uniformDest spreads destinations uniformly over the other nodes of the
// column, excluding the source's own node — one Intn draw per packet.
type uniformDest struct {
	nodes, self int
}

func (d uniformDest) Pick(r *sim.RNG) noc.NodeID {
	v := r.Intn(d.nodes - 1)
	if v >= d.self {
		v++
	}
	return noc.NodeID(v)
}

// weightedDest draws destinations from a fixed discrete distribution over
// the column nodes — one Float64 draw per packet, then a linear walk of
// the cumulative weights (columns are single-digit nodes, so a search
// structure would cost more than it saves).
type weightedDest struct {
	cum []float64 // cumulative weights, one entry per node
}

func (d *weightedDest) Pick(r *sim.RNG) noc.NodeID {
	total := d.cum[len(d.cum)-1]
	x := r.Float64() * total
	prev := 0.0
	for i, c := range d.cum {
		// Skip zero-weight nodes exactly: x can only land in a strictly
		// widening interval.
		if x < c && c > prev {
			return noc.NodeID(i)
		}
		prev = c
	}
	// Rounding pushed x to the very top of the range; return the last
	// node carrying weight.
	for i := len(d.cum) - 1; i > 0; i-- {
		if d.cum[i] > d.cum[i-1] {
			return noc.NodeID(i)
		}
	}
	return 0
}

// Pattern derives, for each source node of a column, the destination
// picker its injectors use. A Pattern is pure configuration: DestFor is
// called once per source at workload-construction time and the returned
// Dest does the per-packet work.
type Pattern interface {
	Name() string
	// DestFor returns the destination picker for sources at node src in a
	// column of the given node count. It errors when the pattern cannot be
	// defined for that population (bit-permutation patterns need a
	// power-of-two node count, weight vectors must match the column).
	DestFor(src noc.NodeID, nodes int) (Dest, error)
}

// UniformTraffic spreads each source's packets uniformly over the other
// column nodes — the benign pattern of Figure 4(a).
func UniformTraffic() Pattern { return uniformPattern{} }

type uniformPattern struct{}

func (uniformPattern) Name() string { return "uniform" }

func (uniformPattern) DestFor(src noc.NodeID, nodes int) (Dest, error) {
	return uniformDest{nodes: nodes, self: int(src)}, nil
}

// TornadoTraffic concentrates each node's traffic on the destination
// half-way across the dimension ((i + n/2) mod n) — the challenge pattern
// for rings and meshes of Figure 4(b).
func TornadoTraffic() Pattern { return tornadoPattern{} }

type tornadoPattern struct{}

func (tornadoPattern) Name() string { return "tornado" }

func (tornadoPattern) DestFor(src noc.NodeID, nodes int) (Dest, error) {
	return fixedDest((int(src) + nodes/2) % nodes), nil
}

// HotspotTraffic streams every source at a contended subset of nodes.
// With nil weights all traffic targets HotspotNode (the classic single
// hotspot of Table 2); otherwise weights[i] is node i's relative share of
// the destinations, and zero-weight nodes are never targeted.
func HotspotTraffic(weights []float64) Pattern { return hotspotPattern{weights: weights} }

type hotspotPattern struct {
	weights []float64
}

func (hotspotPattern) Name() string { return "hotspot" }

func (p hotspotPattern) DestFor(src noc.NodeID, nodes int) (Dest, error) {
	if p.weights == nil {
		return fixedDest(HotspotNode), nil
	}
	if len(p.weights) != nodes {
		return nil, fmt.Errorf("traffic: hotspot weights cover %d nodes, column has %d", len(p.weights), nodes)
	}
	cum := make([]float64, nodes)
	total := 0.0
	for i, w := range p.weights {
		if w < 0 {
			return nil, fmt.Errorf("traffic: hotspot weight for node %d is negative (%v)", i, w)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("traffic: hotspot weights sum to zero")
	}
	return &weightedDest{cum: cum}, nil
}

// The bit-permutation patterns of the synthetic-traffic canon (Dally &
// Towles §3.2) map each source to one fixed destination by permuting the
// b = log2(nodes) bits of the node index, so they require a power-of-two
// column. All four are bijections: every node sends to exactly one node
// and receives from exactly one node, concentrating load on specific
// channels instead of spreading it like uniform random.

// TransposeTraffic rotates the node-index bits by b/2 (for even b this is
// the matrix transpose d_i = s_{(i+b/2) mod b}; odd b uses the floor,
// the nearest defined analogue).
func TransposeTraffic() Pattern {
	return permPattern{name: "transpose", perm: func(s, b int) int {
		return rotateRight(s, b/2, b)
	}}
}

// BitComplementTraffic inverts every node-index bit (d = ~s), pairing
// each node with its mirror across the column midpoint.
func BitComplementTraffic() Pattern {
	return permPattern{name: "bit-complement", perm: func(s, b int) int {
		return ^s & (1<<b - 1)
	}}
}

// BitReversalTraffic reverses the node-index bits (d_i = s_{b-1-i}).
func BitReversalTraffic() Pattern {
	return permPattern{name: "bit-reversal", perm: func(s, b int) int {
		d := 0
		for i := 0; i < b; i++ {
			d |= (s >> i & 1) << (b - 1 - i)
		}
		return d
	}}
}

// ShuffleTraffic rotates the node-index bits left by one (the perfect
// shuffle d_i = s_{(i-1) mod b}).
func ShuffleTraffic() Pattern {
	return permPattern{name: "shuffle", perm: func(s, b int) int {
		return rotateRight(s, b-1, b)
	}}
}

// rotateRight rotates the low b bits of s right by k (d_i = s_{(i+k) mod b}).
func rotateRight(s, k, b int) int {
	if b == 0 {
		return 0
	}
	k %= b
	mask := 1<<b - 1
	return (s>>k | s<<(b-k)) & mask
}

type permPattern struct {
	name string
	perm func(src, bits int) int
}

func (p permPattern) Name() string { return p.name }

func (p permPattern) DestFor(src noc.NodeID, nodes int) (Dest, error) {
	b, ok := log2(nodes)
	if !ok {
		return nil, fmt.Errorf("traffic: %s pattern needs a power-of-two node count, got %d", p.name, nodes)
	}
	return fixedDest(p.perm(int(src), b)), nil
}

// log2 returns b with 1<<b == n, reporting whether n is a power of two.
func log2(n int) (int, bool) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, false
	}
	b := 0
	for 1<<b < n {
		b++
	}
	return b, true
}

// patternFactories maps every built-in pattern name to its
// default-configured constructor.
var patternFactories = map[string]func() Pattern{
	"uniform":        UniformTraffic,
	"tornado":        TornadoTraffic,
	"transpose":      TransposeTraffic,
	"bit-complement": BitComplementTraffic,
	"bit-reversal":   BitReversalTraffic,
	"shuffle":        ShuffleTraffic,
	"hotspot":        func() Pattern { return HotspotTraffic(nil) },
}

// PatternByName resolves a built-in pattern by name (see PatternNames).
// The hotspot pattern comes back with its default single-hot-node
// weighting; use HotspotTraffic directly for custom weights.
func PatternByName(name string) (Pattern, error) {
	f, ok := patternFactories[name]
	if !ok {
		return nil, fmt.Errorf("traffic: unknown pattern %q (have %v)", name, PatternNames())
	}
	return f(), nil
}

// PatternNames lists the built-in pattern names in sorted order.
func PatternNames() []string {
	names := make([]string, 0, len(patternFactories))
	for n := range patternFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
