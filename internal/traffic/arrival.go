package traffic

import (
	"fmt"
	"math"

	"tanoq/internal/sim"
)

// Burst turns an injector into an MMPP-style on/off source: the
// underlying Bernoulli packet process is gated by a two-state Markov
// chain that alternates ON windows (mean MeanOn cycles) and OFF windows
// (mean MeanOff cycles), both geometrically distributed. The spec's Rate
// stays the long-run offered load — during ON windows the source injects
// at Rate divided by the duty cycle, and during OFF windows not at all —
// so a bursty workload stresses queues and preemption with the same mean
// demand as its smooth counterpart. The zero value disables modulation.
type Burst struct {
	// MeanOn is the mean ON-window length in cycles (>= 1 when enabled).
	MeanOn float64
	// MeanOff is the mean OFF-window length in cycles (>= 1 when enabled).
	MeanOff float64
}

// Enabled reports whether the burst modulation is in effect.
func (b Burst) Enabled() bool { return b.MeanOn != 0 || b.MeanOff != 0 }

// Duty returns the long-run fraction of cycles the source spends ON.
func (b Burst) Duty() float64 { return b.MeanOn / (b.MeanOn + b.MeanOff) }

// Validate checks the window means of an enabled burst.
func (b Burst) Validate() error {
	if !b.Enabled() {
		return nil
	}
	if b.MeanOn < 1 || b.MeanOff < 1 {
		return fmt.Errorf("traffic: burst windows need mean >= 1 cycle, got on %v / off %v", b.MeanOn, b.MeanOff)
	}
	return nil
}

// ArrivalSampler draws the packet inter-arrival gaps of one injector.
// For a smooth spec every cycle is an independent Bernoulli(pktProb)
// trial, so gaps are geometric and NextGap is a single draw — exactly the
// engine's O(work) injection sampling. For a bursty spec only ON cycles
// are trials: NextGap draws the number of ON cycles to the next arrival
// (geometric again, by memorylessness) and walks it across the on/off
// window sequence, adding the OFF cycles it jumps over. Window lengths
// are themselves geometric draws, which makes the ON/OFF alternation the
// two-state Markov chain of the MMPP model.
type ArrivalSampler struct {
	// pktProb is the per-trial packet probability: the flit rate over the
	// mean packet size, divided by the duty cycle when bursty (so the
	// long-run rate stays the spec's Rate).
	pktProb float64
	// onExit / offExit are the per-cycle window-termination probabilities
	// (1/mean), zero for smooth specs.
	onExit, offExit float64
	// logPkt/logOn/logOff cache log(1-p) for the three geometric draws —
	// the denominator of the inverse CDF is a per-distribution constant,
	// and hoisting it out of the per-packet draw halves the transcendental
	// cost of injection sampling. The cached values are exactly what
	// sim.RNG.Geometric would recompute, so drawn gaps are bit-identical.
	logPkt, logOn, logOff float64
	// pktTab is the shared inverse-CDF table for the per-packet draw —
	// the one geometric the engine evaluates per generated packet. Its
	// draws are bit-identical to the cached-log formula (sim.GeoTable);
	// the rare per-window draws below stay on the formula.
	pktTab *sim.GeoTable
	// onLeft counts the ON cycles remaining in the current window.
	onLeft int64
	bursty bool
}

// NewArrivalSampler builds the sampler for a spec. For bursty specs it
// draws the initial ON-window length from r (the source starts at the
// beginning of an ON window); smooth specs consume no randomness here, so
// pre-existing seeded runs are untouched. Call Spec.Validate first: a
// spec whose burst-peak rate exceeds one packet per cycle is rejected
// there, not here.
func (s Spec) NewArrivalSampler(r *sim.RNG) ArrivalSampler {
	a := ArrivalSampler{}
	if s.Rate <= 0 {
		return a
	}
	a.pktProb = s.Rate / s.MeanFlitsPerPacket()
	if s.Burst.Enabled() {
		a.bursty = true
		a.pktProb /= s.Burst.Duty()
		a.onExit = 1 / s.Burst.MeanOn
		a.offExit = 1 / s.Burst.MeanOff
		a.logOn = math.Log1p(-a.onExit)
		a.logOff = math.Log1p(-a.offExit)
		a.onLeft = r.GeometricLog(a.onExit, a.logOn)
	}
	a.logPkt = math.Log1p(-a.pktProb)
	a.pktTab = sim.SharedGeoTable(a.pktProb)
	return a
}

// Active reports whether the sampler will ever emit an arrival.
func (a *ArrivalSampler) Active() bool { return a.pktProb > 0 }

// PeakProb returns the per-cycle packet probability while the source is
// injecting (the Bernoulli parameter of its ON state).
func (a *ArrivalSampler) PeakProb() float64 { return a.pktProb }

// maxWalkWindows bounds NextGap's window walk per arrival. A draw that
// crosses this many ON windows has already pushed the arrival at least
// maxWalkWindows*(1 + MeanOff-ish) cycles into the future — an injector
// that inactive contributes nothing observable to any simulable horizon
// — so the remaining trials are taken as contiguous ON time instead of
// walking window-by-window. This keeps construction and generation O(1)
// in practice even for absurdly small (but valid) rates, where the
// unbounded walk would spin for billions of iterations.
const maxWalkWindows = 1 << 16

// NextGap returns the number of cycles until the next packet arrival,
// always >= 1. Smooth sources cost one geometric draw per packet; bursty
// sources add one draw per window boundary crossed, which the window
// means keep far below one per packet.
func (a *ArrivalSampler) NextGap(r *sim.RNG) sim.Cycle {
	g := a.pktTab.Draw(r)
	if !a.bursty {
		return sim.Cycle(g)
	}
	gap := int64(0)
	for walked := 0; g > a.onLeft; walked++ {
		if walked == maxWalkWindows {
			a.onLeft = g
			break
		}
		g -= a.onLeft
		gap += a.onLeft
		gap += r.GeometricLog(a.offExit, a.logOff)
		a.onLeft = r.GeometricLog(a.onExit, a.logOn)
	}
	a.onLeft -= g
	return sim.Cycle(gap + g)
}
