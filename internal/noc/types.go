// Package noc defines the datatypes shared by every network model in tanoq:
// nodes, flows, packets, virtual channels and traffic classes. The
// terminology follows the paper: a *node* is a network node (a router); a
// *terminal* is a discrete system resource (core, cache tile, memory
// controller) with a dedicated port at a node; a *flow* is the unit of QoS
// accounting — one traffic injector with an assigned rate of service.
package noc

import (
	"fmt"

	"tanoq/internal/sim"
)

// NodeID identifies a router in the simulated network. In the shared-region
// column study nodes are numbered 0..7 top to bottom.
type NodeID int

// FlowID identifies a QoS flow: one injector (a terminal port or one of the
// MECS row inputs feeding the column). PVC tracks bandwidth per FlowID.
type FlowID int

// InvalidNode marks an unset node reference.
const InvalidNode NodeID = -1

// Class is the traffic class of a packet. The paper models two packet sizes
// corresponding to request (1 flit) and reply (4 flit) traffic, without
// specializing buffers by class.
type Class uint8

const (
	// ClassRequest packets are single-flit (e.g. a read request or
	// coherence control message).
	ClassRequest Class = iota
	// ClassReply packets are four flits (a cache-line-bearing reply on
	// 16-byte links).
	ClassReply
)

// PacketKind is the closed-loop role of a packet. Open-loop synthetic
// traffic leaves it at the zero value; the closed-loop workload layer
// (internal/workload) marks client-issued packets as requests and the
// server-side answers as replies, and uses the distinction at delivery
// time to trigger replies and credit client windows.
type PacketKind uint8

const (
	// KindOpen is open-loop synthetic traffic (the zero value, so every
	// pre-existing workload is unchanged).
	KindOpen PacketKind = iota
	// KindRequest is a closed-loop client request awaiting a reply.
	KindRequest
	// KindReply answers a request; its delivery credits the issuing
	// client's window of outstanding requests.
	KindReply
)

func (k PacketKind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindReply:
		return "reply"
	default:
		return "open"
	}
}

// Flits returns the packet size in flits for the class.
func (c Class) Flits() int {
	if c == ClassReply {
		return ReplyFlits
	}
	return RequestFlits
}

func (c Class) String() string {
	if c == ClassReply {
		return "reply"
	}
	return "request"
}

// Link and packet geometry shared by every topology in the study
// (Section 4, Table 1 of the paper).
const (
	// LinkBytes is the physical channel width: 16-byte (128-bit) links.
	LinkBytes = 16
	// FlitBytes equals the link width: one flit crosses a link per cycle.
	FlitBytes = LinkBytes
	// RequestFlits is the size of request packets.
	RequestFlits = 1
	// ReplyFlits is the size of reply packets and the maximum packet
	// size; with virtual cut-through each VC must hold a full packet.
	ReplyFlits = 4
	// FlitsPerVC is the buffer depth of one virtual channel.
	FlitsPerVC = ReplyFlits
	// WireDelay is the wire latency in cycles between adjacent routers.
	WireDelay = 1
)

// Priority is a PVC dynamic priority. Lower values are *better* (served
// first): a flow's priority is its accumulated bandwidth consumption scaled
// by its assigned rate of service, so lightly-served flows win arbitration.
type Priority uint64

// WorstPriority compares as lower-priority than any real priority value.
const WorstPriority Priority = ^Priority(0)

// Packet is the unit of transfer. Packets are created by traffic injectors,
// carried through the network by virtual cut-through switching, and either
// delivered (then ACKed to the source) or preempted (discarded; then NACKed
// and retransmitted from the source window).
type Packet struct {
	// ID is unique per logical packet for the lifetime of a simulation.
	// A retransmission keeps the ID of the packet it replays.
	ID uint64
	// Flow is the injector this packet belongs to.
	Flow FlowID
	// Src is the column node at which the packet enters the network.
	Src NodeID
	// Dst is the column node whose terminal the packet must reach.
	Dst NodeID
	// Class determines the size in flits.
	Class Class
	// Size is the length in flits (cached from Class at creation).
	Size int

	// Kind is the closed-loop role of the packet (open/request/reply);
	// open-loop traffic leaves the zero value.
	Kind PacketKind
	// Parent is opaque parent-transaction metadata propagated by the
	// closed-loop workload layer: a reply carries its request's Parent
	// verbatim, letting the layer correlate the two ends of a round trip
	// without any lookup state (the layer stores the request's issue
	// cycle here). Zero for open-loop traffic.
	Parent uint64

	// Priority is the PVC priority carried in the header. It is computed
	// from the flow table at injection and refreshed at flow-table-
	// equipped routers ("priority reuse" lets intermediate DPS hops use
	// the carried value without a table lookup).
	Priority Priority
	// Reserved marks a rate-compliant packet: it was injected within the
	// source's reserved quota for the current frame, may claim the
	// reserved VC at each port, and must never be preempted.
	Reserved bool

	// Created is the cycle the logical packet was first generated.
	Created sim.Cycle
	// Injected is the cycle this (re)transmission entered the network.
	Injected sim.Cycle

	// Retransmits counts how many times the packet was preempted and
	// replayed.
	Retransmits int
	// HopsDone counts completed hop traversals of the current
	// transmission attempt; on preemption these are the wasted hops that
	// must be replayed.
	HopsDone int
	// hop is the index of the current leg on the packet's path.
	hop int
}

// Hop returns the index of the path leg the packet is currently on.
func (p *Packet) Hop() int { return p.hop }

// AdvanceHop moves the packet to its next path leg and records the
// completed traversal.
func (p *Packet) AdvanceHop() {
	p.hop++
	p.HopsDone++
}

// ResetForRetransmit rewinds the packet to its source for replay after a
// preemption. The original creation time is kept so end-to-end latency
// accounts for the wasted attempt; priority will be recomputed at
// re-injection.
func (p *Packet) ResetForRetransmit() {
	p.hop = 0
	p.HopsDone = 0
	p.Retransmits++
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt %d flow %d %d->%d %s prio %d hop %d",
		p.ID, p.Flow, p.Src, p.Dst, p.Class, p.Priority, p.hop)
}

// Virtual-channel state lives in the network engine's struct-of-arrays
// buffers (internal/network), not in a per-VC object here: under virtual
// cut-through a VC is owned by exactly one packet at a time and must be
// deep enough (FlitsPerVC) to hold the largest packet, and the engine
// tracks that ownership as flat handle/generation arrays with a free-VC
// occupancy bitmap.
