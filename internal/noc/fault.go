package noc

import (
	"fmt"

	"tanoq/internal/sim"
)

// FaultKind distinguishes the three modelled hardware failures.
type FaultKind uint8

const (
	// FaultLinkTransient takes one output port down for a window: flits
	// in flight on the link when the fault strikes are dropped, waiting
	// candidates stall until the window closes, and the port resumes
	// untouched afterwards.
	FaultLinkTransient FaultKind = iota
	// FaultLinkPermanent kills an output port for the rest of the run:
	// in-flight and queued traffic whose remaining route crosses the dead
	// port is dropped, and sources deterministically recompute routes
	// around it from the next injection on.
	FaultLinkPermanent
	// FaultRouterStall freezes every output port of one router for a
	// window: no arbitration grants happen at the node, but no state is
	// lost — traffic queues up and resumes when the stall lifts. A stall
	// with Until == 0 never lifts, which is the canonical way to induce a
	// deadlock for watchdog tests.
	FaultRouterStall
)

func (k FaultKind) String() string {
	switch k {
	case FaultLinkTransient:
		return "link-transient"
	case FaultLinkPermanent:
		return "link-permanent"
	case FaultRouterStall:
		return "router-stall"
	default:
		return fmt.Sprintf("FaultKind(%d)", uint8(k))
	}
}

// FaultWindow schedules one fault. Link faults name an output port (the
// engine's dense port index); router stalls name a node. From is the cycle
// the fault strikes; Until is the cycle it heals, exclusive, with 0 meaning
// it never heals. Permanent link faults must leave Until at 0.
type FaultWindow struct {
	Kind  FaultKind
	Port  int
	Node  int
	From  sim.Cycle
	Until sim.Cycle
}

// Permanent reports whether the window never heals.
func (w FaultWindow) Permanent() bool { return w.Until == 0 }

func (w FaultWindow) String() string {
	target := fmt.Sprintf("port %d", w.Port)
	if w.Kind == FaultRouterStall {
		target = fmt.Sprintf("node %d", w.Node)
	}
	if w.Permanent() {
		return fmt.Sprintf("%s %s from cycle %d (permanent)", w.Kind, target, w.From)
	}
	return fmt.Sprintf("%s %s cycles [%d,%d)", w.Kind, target, w.From, w.Until)
}

// Validate checks the window's internal consistency: non-negative schedule,
// a strictly positive span for healing windows, and Until == 0 for
// permanent link faults. Range checks against a concrete topology (port and
// node bounds) belong to the network that installs the window.
func (w FaultWindow) Validate() error {
	switch w.Kind {
	case FaultLinkTransient, FaultLinkPermanent, FaultRouterStall:
	default:
		return fmt.Errorf("noc: unknown fault kind %d", uint8(w.Kind))
	}
	if w.From < 0 || w.Until < 0 {
		return fmt.Errorf("noc: fault window %v has a negative cycle", w)
	}
	if w.Kind == FaultLinkPermanent && w.Until != 0 {
		return fmt.Errorf("noc: permanent link fault must leave until at 0, got %d", w.Until)
	}
	if w.Kind == FaultLinkTransient && w.Until == 0 {
		return fmt.Errorf("noc: transient link fault must heal; use %v for a dead link", FaultLinkPermanent)
	}
	if w.Until != 0 && w.Until <= w.From {
		return fmt.Errorf("noc: fault window %v is empty (until <= from)", w)
	}
	if w.Port < 0 || w.Node < 0 {
		return fmt.Errorf("noc: fault window %v names a negative target", w)
	}
	return nil
}
